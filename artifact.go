package mpcspanner

import (
	"context"

	"mpcspanner/internal/artifact"
	"mpcspanner/internal/core"
	"mpcspanner/internal/oracle"
)

// Artifact is a saved build opened for serving: a versioned, checksummed
// container holding a frozen graph (for a build artifact, the spanner), the
// build's determinism fingerprint, and optionally a set of precomputed
// oracle rows. On 64-bit little-endian platforms it is mmapped read-only —
// the graph is served zero-copy out of the page cache, shared by every
// process on the box that opens the same file — with a portable heap loader
// everywhere else. Create one with Open, serve it with
// Serve(ctx, nil, WithArtifact(a)), and Close it only after its sessions
// are done. See DESIGN.md §11 for the on-disk format.
type Artifact = artifact.Artifact

// Fingerprint is the determinism identity of the computation behind an
// artifact: algorithm family, seed, structural parameters, and worker
// count. Under the library's seed contract, equal fingerprints on equal
// inputs mean bit-identical results at every worker count.
type Fingerprint = artifact.Fingerprint

// Open loads and verifies the artifact at path: header, section table, and
// every section checksum are checked before anything is adopted, so a
// truncated, corrupted, foreign, or future-versioned file returns an
// ErrArtifact-classified *ArtifactError instead of failing later. The
// returned Artifact owns its memory (possibly a read-only file mapping);
// Close it after every Session serving from it is done.
//
//	a, err := mpcspanner.Open(ctx, "spanner.art")
//	if err != nil { ... }
//	defer a.Close()
//	s, err := mpcspanner.Serve(ctx, nil, mpcspanner.WithArtifact(a))
func Open(ctx context.Context, path string) (*Artifact, error) {
	if err := core.Check(ctx); err != nil {
		return nil, err
	}
	return artifact.Open(path, artifact.OpenOptions{})
}

// Save persists the build result to path as a versioned artifact: the
// spanner's frozen CSR, the edge ids into the source graph, and the build's
// determinism fingerprint. The file is written atomically (assembled beside
// path, then renamed in). Reload it with Open and serve it with
// WithArtifact; the restored session answers every query bit-identical to
// one served from r.Spanner() directly.
func (r *BuildResult) Save(path string) error {
	if r.g == nil {
		return core.ArtifactErrorf(path, "", nil,
			"cannot save a BuildResult that did not come from Build")
	}
	return artifact.Write(path, artifact.Payload{
		Graph:       r.Spanner(),
		EdgeIDs:     r.EdgeIDs,
		SourceN:     r.g.N(),
		SourceM:     r.g.M(),
		Fingerprint: r.fp,
	})
}

// Save persists the session's served graph, provenance, and warm state to
// path as a versioned artifact: every distance row currently resident in
// the cache (plus any frozen rows the session itself was loaded with) is
// frozen into the file, so a replica restarted from it serves the hot set
// without recomputing a single row. The write is atomic and the session
// stays usable.
func (s *Session) Save(path string) error {
	srcs, rows := oracle.SnapshotRows(s.oracle)
	if s.frozen != nil {
		// Union in the rows this session was itself loaded with: cached
		// rows never duplicate frozen ones (frozen sources bypass the
		// cache), so save→load→save keeps accumulating warmth.
		for _, src := range s.frozen.Sources() {
			row, _ := s.frozen.FrozenRow(src)
			srcs = append(srcs, src)
			rows = append(rows, row)
		}
	}
	return artifact.Write(path, artifact.Payload{
		Graph:       s.served,
		EdgeIDs:     s.savedEdgeIDs(),
		SourceN:     s.input.N(),
		SourceM:     s.input.M(),
		Fingerprint: s.fp,
		RowSources:  srcs,
		Rows:        rows,
	})
}

// savedEdgeIDs returns the spanner edge ids a saved session should record:
// the pipeline's selection when one ran, nil for exact or artifact-served
// sessions (their served graph is the source of truth).
func (s *Session) savedEdgeIDs() []int {
	if s.apsp != nil {
		return s.apsp.SpannerEdgeIDs
	}
	return nil
}

// Fingerprint returns the provenance of what the session serves: the
// pipeline parameters for a Serve-built session, "exact" for WithExact,
// or the stored fingerprint of the artifact it was loaded from.
func (s *Session) Fingerprint() Fingerprint { return s.fp }

// Artifact returns the artifact the session was loaded from, or nil when
// it was built in-process.
func (s *Session) Artifact() *Artifact { return s.art }
