package mpcspanner

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"testing"

	"mpcspanner/internal/artifact"
)

func artifactTestGraph() *Graph {
	return Connectify(GNP(400, 0.03, UniformWeight(1, 50), 9), 5)
}

func artifactTestPairs(n int) []Pair {
	var pairs []Pair
	for u := 0; u < n; u += 23 {
		for v := 1; v < n; v += 61 {
			pairs = append(pairs, Pair{U: u, V: v})
		}
	}
	return pairs
}

// TestSaveOpenBitIdentity is the determinism acceptance test: build, save,
// reload, and the restored session must answer every query bit-identical to
// a session served directly from the in-process result — at every worker
// count (1, 3, and the GOMAXPROCS default).
func TestSaveOpenBitIdentity(t *testing.T) {
	ctx := context.Background()
	g := artifactTestGraph()
	pairs := artifactTestPairs(g.N())
	for _, workers := range []int{1, 3, 0} {
		res, err := Build(ctx, g,
			WithAlgorithm(AlgoMPC), WithK(6), WithSeed(42), WithWorkers(workers),
			WithSaveTo(filepath.Join(t.TempDir(), "spanner.art")))
		if err != nil {
			t.Fatalf("workers=%d: Build: %v", workers, err)
		}
		path := filepath.Join(t.TempDir(), "spanner.art")
		if err := res.Save(path); err != nil {
			t.Fatalf("workers=%d: Save: %v", workers, err)
		}

		direct, err := Serve(ctx, res.Spanner(), WithExact())
		if err != nil {
			t.Fatalf("workers=%d: Serve direct: %v", workers, err)
		}
		want, err := direct.QueryMany(ctx, pairs)
		if err != nil {
			t.Fatalf("workers=%d: direct QueryMany: %v", workers, err)
		}

		a, err := Open(ctx, path)
		if err != nil {
			t.Fatalf("workers=%d: Open: %v", workers, err)
		}
		loaded, err := Serve(ctx, nil, WithArtifact(a), WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: Serve loaded: %v", workers, err)
		}
		got, err := loaded.QueryMany(ctx, pairs)
		if err != nil {
			t.Fatalf("workers=%d: loaded QueryMany: %v", workers, err)
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("workers=%d: pair %d (%d,%d): loaded %v != direct %v",
					workers, i, pairs[i].U, pairs[i].V, got[i], want[i])
			}
		}

		// Provenance survives the round trip.
		fp := loaded.Fingerprint()
		if fp.Algorithm != string(AlgoMPC) || fp.Seed != 42 || fp.K != 6 || fp.Workers != workers {
			t.Fatalf("workers=%d: restored fingerprint %+v", workers, fp)
		}
		if loaded.Artifact() != a {
			t.Fatalf("workers=%d: Session.Artifact does not return the served artifact", workers)
		}
		if ids := a.EdgeIDs(); len(ids) != len(res.EdgeIDs) {
			t.Fatalf("workers=%d: artifact records %d edge ids, build selected %d",
				workers, len(ids), len(res.EdgeIDs))
		}
		if sn, sm := a.SourceShape(); sn != g.N() || sm != g.M() {
			t.Fatalf("workers=%d: source shape (%d,%d), want (%d,%d)", workers, sn, sm, g.N(), g.M())
		}
		a.Close()
	}
}

// TestWithSaveTo pins that the one-step save writes exactly the file an
// explicit Save writes.
func TestWithSaveTo(t *testing.T) {
	ctx := context.Background()
	g := artifactTestGraph()
	dir := t.TempDir()
	auto := filepath.Join(dir, "auto.art")
	manual := filepath.Join(dir, "manual.art")
	res, err := Build(ctx, g, WithAlgorithm(AlgoMPC), WithK(5), WithSeed(3), WithSaveTo(auto))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Save(manual); err != nil {
		t.Fatal(err)
	}
	aa, err := Open(ctx, auto)
	if err != nil {
		t.Fatalf("WithSaveTo produced an unopenable artifact: %v", err)
	}
	defer aa.Close()
	am, err := Open(ctx, manual)
	if err != nil {
		t.Fatal(err)
	}
	defer am.Close()
	if aa.Checksum() != am.Checksum() {
		t.Fatalf("WithSaveTo checksum %s != Save checksum %s", aa.Checksum(), am.Checksum())
	}
}

// TestSessionSaveWarmRows pins the warm-restart contract: a session saved
// after serving freezes its resident rows, and a replica restarted from the
// file answers those sources without a single Dijkstra. A second
// save→load cycle keeps accumulating warmth.
func TestSessionSaveWarmRows(t *testing.T) {
	ctx := context.Background()
	g := artifactTestGraph()
	s, err := Serve(ctx, g, WithExact())
	if err != nil {
		t.Fatal(err)
	}
	warm := []Pair{{U: 0, V: 5}, {U: 17, V: 3}, {U: 99, V: 1}}
	want, err := s.QueryMany(ctx, warm)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	p1 := filepath.Join(dir, "warm1.art")
	if err := s.Save(p1); err != nil {
		t.Fatal(err)
	}

	a1, err := Open(ctx, p1)
	if err != nil {
		t.Fatal(err)
	}
	defer a1.Close()
	if got := artifact.RowsOf(a1).Len(); got != 3 {
		t.Fatalf("saved artifact froze %d rows, want 3", got)
	}
	s1, err := Serve(ctx, nil, WithArtifact(a1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s1.QueryMany(ctx, warm)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("warm pair %d: got %v, want %v", i, got[i], want[i])
		}
	}
	st := s1.Stats()
	if st.Misses != 0 {
		t.Fatalf("restored replica ran %d Dijkstras on its warm set", st.Misses)
	}
	if st.Hits == 0 {
		t.Fatal("frozen rows did not count as hits")
	}

	// Warm a new source on the restored session, save again: the second
	// artifact carries the union.
	if _, err := s1.Query(ctx, 42, 7); err != nil {
		t.Fatal(err)
	}
	p2 := filepath.Join(dir, "warm2.art")
	if err := s1.Save(p2); err != nil {
		t.Fatal(err)
	}
	a2, err := Open(ctx, p2)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	if got := artifact.RowsOf(a2).Len(); got != 4 {
		t.Fatalf("second save froze %d rows, want 4 (3 inherited + 1 new)", got)
	}
}

// TestArtifactOptionValidation sweeps the option-combination surface the
// redesign added.
func TestArtifactOptionValidation(t *testing.T) {
	ctx := context.Background()
	g := artifactTestGraph()
	path := filepath.Join(t.TempDir(), "a.art")
	res, err := Build(ctx, g, WithAlgorithm(AlgoMPC), WithK(5), WithSeed(1), WithSaveTo(path))
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	a, err := Open(ctx, path)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	cases := []struct {
		name string
		run  func() error
	}{
		{"WithArtifact on Build", func() error {
			_, err := Build(ctx, g, WithK(4), WithArtifact(a))
			return err
		}},
		{"WithSaveTo on Serve", func() error {
			_, err := Serve(ctx, g, WithExact(), WithSaveTo(path))
			return err
		}},
		{"empty SaveTo path", func() error {
			_, err := Build(ctx, g, WithK(4), WithSaveTo(""))
			return err
		}},
		{"nil artifact", func() error {
			_, err := Serve(ctx, nil, WithArtifact(nil))
			return err
		}},
		{"graph together with artifact", func() error {
			_, err := Serve(ctx, g, WithArtifact(a))
			return err
		}},
		{"nil graph without artifact", func() error {
			_, err := Serve(ctx, nil)
			return err
		}},
		{"build option with artifact", func() error {
			_, err := Serve(ctx, nil, WithArtifact(a), WithSeed(1))
			return err
		}},
		{"exact with artifact", func() error {
			_, err := Serve(ctx, nil, WithArtifact(a), WithExact())
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			if err == nil {
				t.Fatal("accepted an invalid combination")
			}
			if !errors.Is(err, ErrInvalidOption) {
				t.Fatalf("want ErrInvalidOption, got %v", err)
			}
			var oe *OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("want *OptionError, got %v", err)
			}
		})
	}
}

// TestOpenErrors pins the facade's typed-error surface for bad files.
func TestOpenErrors(t *testing.T) {
	ctx := context.Background()
	_, err := Open(ctx, filepath.Join(t.TempDir(), "missing.art"))
	if err == nil {
		t.Fatal("Open accepted a missing file")
	}
	if !errors.Is(err, ErrArtifact) {
		t.Fatalf("want ErrArtifact, got %v", err)
	}
	var ae *ArtifactError
	if !errors.As(err, &ae) {
		t.Fatalf("want *ArtifactError, got %v", err)
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Open(canceled, "anything.art"); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Open under a canceled context: want ErrCanceled, got %v", err)
	}
}

// TestSaveOnForeignResult pins that a hand-assembled BuildResult (no source
// graph) fails Save with a typed error instead of panicking.
func TestSaveOnForeignResult(t *testing.T) {
	var r BuildResult
	err := r.Save(filepath.Join(t.TempDir(), "x.art"))
	if !errors.Is(err, ErrArtifact) {
		t.Fatalf("want ErrArtifact, got %v", err)
	}
}

// TestServeBuiltSessionFingerprint pins the provenance of the two in-process
// session kinds.
func TestServeBuiltSessionFingerprint(t *testing.T) {
	ctx := context.Background()
	g := artifactTestGraph()
	exact, err := Serve(ctx, g, WithExact())
	if err != nil {
		t.Fatal(err)
	}
	if fp := exact.Fingerprint(); fp.Algorithm != "exact" {
		t.Fatalf("exact session fingerprint %+v", fp)
	}
	if exact.Artifact() != nil {
		t.Fatal("in-process session reports an artifact")
	}
	piped, err := Serve(ctx, g, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	fp := piped.Fingerprint()
	if fp.Algorithm != "apsp-mpc" || fp.Seed != 5 || fp.K == 0 || fp.T == 0 {
		t.Fatalf("pipeline session fingerprint %+v", fp)
	}
}
