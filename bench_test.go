// Benchmark harness: one testing.B target per reproduced experiment
// (DESIGN.md §2 maps each to the paper's claim), plus micro-benchmarks of
// the core construction at increasing scale. Regenerate the experiment
// tables themselves with `go run ./cmd/experiments`.
package mpcspanner

import (
	"fmt"
	"testing"

	"mpcspanner/internal/bench"
	"mpcspanner/internal/dist"
	"mpcspanner/internal/graph"
	"mpcspanner/internal/mpc"
	"mpcspanner/internal/spanner"
)

// benchCfg keeps benchmark iterations affordable; cmd/experiments runs the
// full sizes recorded in EXPERIMENTS.md.
func benchCfg() bench.Config { return bench.Config{Quick: true, Seed: 2024} }

func runTable(b *testing.B, gen func(bench.Config) bench.Table) {
	b.Helper()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		tb := gen(cfg)
		if len(tb.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkT1GeneralTradeoff(b *testing.B)      { runTable(b, bench.T1GeneralTradeoff) }
func BenchmarkT2ClusterMerge(b *testing.B)         { runTable(b, bench.T2ClusterMerge) }
func BenchmarkT3StretchEps(b *testing.B)           { runTable(b, bench.T3StretchEps) }
func BenchmarkT4NearLinear(b *testing.B)           { runTable(b, bench.T4NearLinear) }
func BenchmarkT5SqrtK(b *testing.B)                { runTable(b, bench.T5SqrtK) }
func BenchmarkT6ClusterMergeWeighted(b *testing.B) { runTable(b, bench.T6ClusterMergeWeighted) }
func BenchmarkT7Unweighted(b *testing.B)           { runTable(b, bench.T7Unweighted) }
func BenchmarkT8MPCRounds(b *testing.B)            { runTable(b, bench.T8MPCRounds) }
func BenchmarkT9APSP(b *testing.B)                 { runTable(b, bench.T9APSP) }
func BenchmarkT10CongestedClique(b *testing.B)     { runTable(b, bench.T10CongestedClique) }
func BenchmarkT11PRAMDepth(b *testing.B)           { runTable(b, bench.T11PRAMDepth) }
func BenchmarkT12Baseline(b *testing.B)            { runTable(b, bench.T12Baseline) }
func BenchmarkF1TradeoffCurve(b *testing.B)        { runTable(b, bench.F1TradeoffCurve) }
func BenchmarkF2SizeCurve(b *testing.B)            { runTable(b, bench.F2SizeCurve) }
func BenchmarkF3ApproxCDF(b *testing.B)            { runTable(b, bench.F3ApproxCDF) }
func BenchmarkA1EqualRoundBudget(b *testing.B)     { runTable(b, bench.A1EqualRoundBudget) }
func BenchmarkA2RepetitionPicker(b *testing.B)     { runTable(b, bench.A2RepetitionPicker) }

// --- Core construction micro-benchmarks -------------------------------

func benchGraph(n int) *graph.Graph {
	return graph.GNP(n, 12/float64(n), graph.UniformWeight(1, 100), 7)
}

func BenchmarkGeneralSpanner(b *testing.B) {
	for _, n := range []int{10_000, 50_000, 200_000} {
		g := benchGraph(n)
		b.Run(fmt.Sprintf("n=%d/k=16/t=4", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := spanner.General(g, 16, 4, spanner.Options{Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(r.Size()), "spanner-edges")
			}
		})
	}
}

func BenchmarkClusterMergeVsBaswanaSen(b *testing.B) {
	g := benchGraph(50_000)
	b.Run("cluster-merge/k=16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := spanner.ClusterMerge(g, 16, spanner.Options{Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("baswana-sen/k=16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := spanner.BaswanaSen(g, 16, spanner.Options{Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkMPCDriver(b *testing.B) {
	g := benchGraph(20_000)
	for _, gamma := range []float64{0.5, 0.33} {
		b.Run(fmt.Sprintf("gamma=%.2f", gamma), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := mpc.BuildSpanner(g, 8, 2, gamma, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(r.Rounds), "mpc-rounds")
			}
		})
	}
}

func BenchmarkUnweightedSpanner(b *testing.B) {
	g := graph.GNP(20_000, 12.0/20_000, graph.UnitWeight, 9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := spanner.Unweighted(g, 3, spanner.UnweightedOptions{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDijkstra(b *testing.B) {
	g := benchGraph(100_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := dist.Dijkstra(g, i%g.N())
		if len(d) != g.N() {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkStretchVerification(b *testing.B) {
	g := benchGraph(20_000)
	r, err := spanner.General(g, 8, 3, spanner.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	h := r.Spanner(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dist.SampledEdgeStretch(g, h, 200, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
