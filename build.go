package mpcspanner

import (
	"context"
	"math"

	"mpcspanner/internal/artifact"
	"mpcspanner/internal/cclique"
	"mpcspanner/internal/dist"
	"mpcspanner/internal/mpc"
	"mpcspanner/internal/par"
	"mpcspanner/internal/spanner"
)

// Option configures Build and Serve. Options are applied in order and
// validated together when the call starts; an invalid combination returns an
// error satisfying errors.Is(err, ErrInvalidOption) whose *OptionError names
// the offending field. Later options override earlier ones (last write
// wins); see DESIGN.md §8 for the precedence and default table.
type Option func(*config)

// config is the merged option state of one Build or Serve call.
type config struct {
	algo     Algorithm
	k, t     int
	gamma    float64
	seed     uint64
	workers  int
	reps     int
	radius   bool
	progress func(ProgressEvent)
	metrics  *Metrics
	tracer   *Tracer

	// Serving-side knobs (Serve only).
	exact   bool
	shards  int
	maxRows int
	art     *Artifact

	// Row-fill engine selection (effective wherever full distance rows are
	// computed: Serve's oracle and the pipeline's stretch measurers).
	sssp  SSSPEngine
	delta float64

	// Persistence knob (Build only).
	saveTo string

	// Out-of-core knob (MPC-plane builds only).
	memBudget int64

	// set tracks which options were supplied, so each entry point can
	// reject the ones it does not accept instead of silently ignoring them.
	set map[string]bool
}

func (c *config) mark(field string) {
	if c.set == nil {
		c.set = make(map[string]bool)
	}
	c.set[field] = true
}

// WithAlgorithm selects the construction family (default AlgoGeneral).
// Accepted by Build only.
func WithAlgorithm(a Algorithm) Option {
	return func(c *config) { c.algo = a; c.mark("Algorithm") }
}

// WithK sets the stretch parameter k ≥ 1. Required by Build; not accepted
// by Serve (the §7 pipeline fixes k = ⌈log₂ n⌉).
func WithK(k int) Option {
	return func(c *config) { c.k = k; c.mark("K") }
}

// WithT sets the epoch length t ≥ 1 of the general/MPC/Congested-Clique
// families (default: the paper's per-family sweet spot — ⌈log₂ k⌉ for
// Build, ⌈log₂ log₂ n⌉ for Serve's §7 pipeline). Ignored by the other
// algorithms, exactly as the flat API ignored SpannerOptions.T for them.
func WithT(t int) Option {
	return func(c *config) { c.t = t; c.mark("T") }
}

// WithGamma sets the memory exponent γ of the simulated machines (AlgoMPC,
// AlgoUnweighted, and Serve's build phase; default 0.5).
func WithGamma(gamma float64) Option {
	return func(c *config) { c.gamma = gamma; c.mark("Gamma") }
}

// WithSeed pins all randomness: equal seeds give bit-identical results at
// every worker count (default 0).
func WithSeed(seed uint64) Option {
	return func(c *config) { c.seed = seed; c.mark("Seed") }
}

// WithWorkers sizes the real goroutine pool: 0 selects GOMAXPROCS (the
// default), 1 forces the serial path, larger values pin the pool. Negative
// values are rejected. Results never depend on the worker count.
func WithWorkers(w int) Option {
	return func(c *config) { c.workers = w; c.mark("Workers") }
}

// WithRepetitions runs that many independent builds (derived seeds) and
// keeps the smallest spanner — the w.h.p. mechanism of Theorem 8.1 /
// Section 6. Supported by the local engine families only (AlgoGeneral,
// AlgoClusterMerge, AlgoSqrtK, AlgoBaswanaSen).
func WithRepetitions(r int) Option {
	return func(c *config) { c.reps = r; c.mark("Repetitions") }
}

// WithMeasureRadius additionally reports final cluster-tree radii in
// BuildResult.Stats.Radius (local engine families only).
func WithMeasureRadius() Option {
	return func(c *config) { c.radius = true; c.mark("MeasureRadius") }
}

// WithProgress installs a synchronous progress callback. Events arrive from
// the construction loop's cancellation checkpoints (one per grow iteration /
// contraction / phase); the callback must be fast, must not call back into
// the library, and must be safe for concurrent use when WithRepetitions is
// in effect. Canceling the build's context from inside the callback stops
// the build at the next checkpoint.
func WithProgress(fn func(ProgressEvent)) Option {
	return func(c *config) { c.progress = fn; c.mark("Progress") }
}

// WithExact makes Serve answer distances on the supplied graph as given,
// skipping the §7 approximation pipeline. Use it to serve exact distances,
// or to serve a spanner you already built (e.g. Build(...).Spanner()).
// Accepted by Serve only.
func WithExact() Option {
	return func(c *config) { c.exact = true; c.mark("Exact") }
}

// WithCacheShards sets the serving cache's independently locked shard count
// (0 = default 16). Accepted by Serve only.
func WithCacheShards(n int) Option {
	return func(c *config) { c.shards = n; c.mark("CacheShards") }
}

// WithCacheRows sets the serving cache's row budget across all shards (one
// row = n float64s; 0 = default 1024). Accepted by Serve only.
func WithCacheRows(n int) Option {
	return func(c *config) { c.maxRows = n; c.mark("CacheRows") }
}

// WithSaveTo persists the build result to path as a versioned artifact
// (see Open) immediately after a successful build, atomically — equivalent
// to calling BuildResult.Save(path) yourself, but in one step. A failed
// save fails the Build call with an ErrArtifact-classified error. Accepted
// by Build only.
func WithSaveTo(path string) Option {
	return func(c *config) { c.saveTo = path; c.mark("SaveTo") }
}

// WithMemoryBudget caps the bytes the simulated MPC cluster's tuple store
// may keep resident in the host process: contents past the budget spill to
// checksummed run files (internal/extmem) and the global sorts run as
// external merge sorts, so builds far larger than RAM complete under a
// fixed footprint. The constructed spanner and the simulated round bill are
// bit-identical to an unbudgeted build at every worker count — the budget
// constrains the host process, not the simulated machines (their memory
// exponent stays WithGamma).
//
// Accepted where the MPC simulation is the construction plane: Build with
// WithAlgorithm(AlgoMPC), and Serve's default §7 pipeline. Rejected by the
// other Build families, WithExact, WithArtifact, and CliqueAPSP (nothing
// spills there). bytes must be positive.
func WithMemoryBudget(bytes int64) Option {
	return func(c *config) { c.memBudget = bytes; c.mark("MemoryBudget") }
}

// WithArtifact serves a previously saved artifact instead of running any
// pipeline: pass a nil graph to Serve and the session answers distance
// queries on the artifact's frozen graph, serving its precomputed rows (if
// any) ahead of the cache. The session's provenance (Session.Fingerprint)
// is the artifact's. The artifact must stay open for the session's
// lifetime — for mmapped artifacts the session reads the mapping directly.
// Only the cache, row-fill and observability options (WithCacheShards,
// WithCacheRows, WithWorkers, WithMetrics, WithSSSP, WithDelta) combine
// with it. Accepted by Serve only.
func WithArtifact(a *Artifact) Option {
	return func(c *config) { c.art = a; c.mark("Artifact") }
}

// SSSPEngine selects the single-source shortest-path engine behind full-row
// distance fills (see WithSSSP). Every engine returns bit-identical
// distances on every graph at every worker count — the dist package's
// exactness contract — so the choice is purely a speed knob.
type SSSPEngine = dist.Engine

const (
	// SSSPAuto (the default) resolves by graph size: delta-stepping at
	// construction scale, the pooled binary heap below it.
	SSSPAuto = dist.EngineAuto
	// SSSPHeap forces the binary-heap Dijkstra.
	SSSPHeap = dist.EngineHeap
	// SSSPDeltaStepping forces the bucketed delta-stepping engine, which
	// parallelizes the relaxations *within* one source over the worker pool.
	SSSPDeltaStepping = dist.EngineDelta
)

// WithSSSP selects the engine behind every full distance row the call's
// results compute: Serve's oracle row fills (cold cache misses) and the §7
// pipeline's stretch measurers (APSPResult.Measure / MeasureCDF). Build
// accepts it for option-slice symmetry but runs no full-row fills —
// construction and BuildResult.Verify keep their early-exit heap queries by
// design — so there it is validated and otherwise inert, the way WithT is
// carried but unused by the non-epoch families.
func WithSSSP(e SSSPEngine) Option {
	return func(c *config) { c.sssp = e; c.mark("SSSP") }
}

// WithDelta overrides delta-stepping's bucket width Δ (default: auto-tuned
// to average edge weight / average degree). The width must be positive and
// finite, and combining it with WithSSSP(SSSPHeap) is rejected — the heap
// has no buckets. Under SSSPAuto the width applies only when the resolver
// picks delta-stepping; a small graph still runs the heap and the width is
// simply unused.
func WithDelta(d float64) Option {
	return func(c *config) { c.delta = d; c.mark("Delta") }
}

// buildOnly / serveOnly / cliqueAPSPForeign name the options each entry
// point rejects.
var (
	buildOnly = []string{"Algorithm", "K", "Repetitions", "MeasureRadius", "SaveTo"}
	serveOnly = []string{"Exact", "CacheShards", "CacheRows", "Artifact"}
	// The Corollary 1.5 pipeline fixes its structural parameters, so only
	// WithSeed / WithWorkers / WithProgress apply.
	cliqueAPSPForeign = []string{"Algorithm", "K", "T", "Gamma", "Repetitions",
		"MeasureRadius", "Exact", "CacheShards", "CacheRows", "Metrics", "Tracer",
		"SaveTo", "Artifact", "SSSP", "Delta", "MemoryBudget"}
)

// newConfig folds opts and rejects the ones foreign to the calling entry
// point.
func newConfig(entry string, reject []string, opts []Option) (*config, error) {
	c := &config{}
	for _, opt := range opts {
		opt(c)
	}
	for _, field := range reject {
		if c.set[field] {
			return nil, &OptionError{Field: "mpcspanner: " + field, Value: "(set)",
				Reason: "not accepted by " + entry}
		}
	}
	if err := par.CheckWorkers("mpcspanner: Workers", c.workers); err != nil {
		return nil, err
	}
	if c.t < 0 {
		return nil, &OptionError{Field: "mpcspanner: T", Value: c.t,
			Reason: "must be >= 1 (0 selects the default)"}
	}
	if c.set["Gamma"] && (c.gamma <= 0 || c.gamma > 1) {
		return nil, &OptionError{Field: "mpcspanner: Gamma", Value: c.gamma,
			Reason: "must lie in (0, 1]"}
	}
	if c.shards < 0 {
		return nil, &OptionError{Field: "mpcspanner: CacheShards", Value: c.shards,
			Reason: "must be >= 0 (0 selects the default)"}
	}
	if c.maxRows < 0 {
		return nil, &OptionError{Field: "mpcspanner: CacheRows", Value: c.maxRows,
			Reason: "must be >= 0 (0 selects the default)"}
	}
	if c.set["SSSP"] {
		switch c.sssp {
		case SSSPAuto, SSSPHeap, SSSPDeltaStepping:
		default:
			return nil, &OptionError{Field: "mpcspanner: SSSP", Value: int(c.sssp),
				Reason: "unknown engine (use SSSPAuto, SSSPHeap, or SSSPDeltaStepping)"}
		}
	}
	if c.set["Delta"] {
		if !(c.delta > 0) || math.IsInf(c.delta, 1) {
			return nil, &OptionError{Field: "mpcspanner: Delta", Value: c.delta,
				Reason: "bucket width must be positive and finite"}
		}
		if c.set["SSSP"] && c.sssp == SSSPHeap {
			return nil, &OptionError{Field: "mpcspanner: Delta", Value: c.delta,
				Reason: "the heap engine has no bucket width (drop WithDelta or select SSSPDeltaStepping)"}
		}
	}
	if c.set["MemoryBudget"] && c.memBudget <= 0 {
		return nil, &OptionError{Field: "mpcspanner: MemoryBudget", Value: c.memBudget,
			Reason: "byte budget must be positive (omit the option to keep everything resident)"}
	}
	if c.set["SaveTo"] && c.saveTo == "" {
		return nil, &OptionError{Field: "mpcspanner: SaveTo", Value: "",
			Reason: "path must be non-empty"}
	}
	if c.set["Artifact"] && c.art == nil {
		return nil, &OptionError{Field: "mpcspanner: Artifact", Value: nil,
			Reason: "artifact must be non-nil"}
	}
	return c, nil
}

// BuildResult is the unified outcome of Build: the spanner edge set plus the
// per-family artifacts of the algorithm that produced it.
type BuildResult struct {
	// Algorithm is the family that ran (after defaulting).
	Algorithm Algorithm

	// EdgeIDs is the spanner: sorted unique indexes into the input graph's
	// edge list.
	EdgeIDs []int

	// Stats carries the engine's structural costs for the local families
	// and AlgoCongestedClique; it is zero for AlgoUnweighted and AlgoMPC
	// (see Unweighted and MPC below).
	Stats SpannerStats

	// Unweighted holds the Appendix B statistics when Algorithm is
	// AlgoUnweighted; nil otherwise.
	Unweighted *UnweightedStats

	// MPC holds the simulated-cluster cost profile (rounds, memory, sorts)
	// when Algorithm is AlgoMPC; nil otherwise.
	MPC *MPCResult

	// CC holds the clique round bill and WHP selection statistics when
	// Algorithm is AlgoCongestedClique; nil otherwise.
	CC *CCSpannerResult

	g  *Graph
	fp artifact.Fingerprint
}

// Size returns the number of spanner edges.
func (r *BuildResult) Size() int { return len(r.EdgeIDs) }

// Spanner materializes the spanner as a graph on the input's vertex set.
func (r *BuildResult) Spanner() *Graph { return r.g.Subgraph(r.EdgeIDs) }

// Verify checks that the result is a valid spanner of its input graph
// within maxStretch and returns the measured stretch report. It works for
// every algorithm family (it needs only the edge set, not the per-family
// statistics), so callers never reassemble a SpannerResult by hand.
func (r *BuildResult) Verify(maxStretch float64) (dist.StretchReport, error) {
	return spanner.Verify(r.g, &spanner.Result{EdgeIDs: r.EdgeIDs, Stats: r.Stats}, maxStretch)
}

// Build constructs a spanner of g under ctx. It is the single entry point
// for every construction family of the paper — select one with
// WithAlgorithm, parameterize it with the other options:
//
//	res, err := mpcspanner.Build(ctx, g,
//	    mpcspanner.WithK(8),
//	    mpcspanner.WithSeed(1),
//	    mpcspanner.WithProgress(func(ev mpcspanner.ProgressEvent) { ... }))
//
// Cancellation is cooperative: the construction loops checkpoint ctx once
// per grow iteration (and per contraction / phase transition), so a
// canceled build returns within one iteration's work, with every pool
// goroutine joined. The returned error then satisfies both
// errors.Is(err, ErrCanceled) and errors.Is(err, ctx.Err()). Equal seeds
// give bit-identical spanners at every worker count, canceled or not —
// checkpoints never change what is computed.
//
// Option validation happens before any work: a rejected value returns an
// error satisfying errors.Is(err, ErrInvalidOption) carrying a *OptionError.
func Build(ctx context.Context, g *Graph, opts ...Option) (*BuildResult, error) {
	cfg, err := newConfig("Build", serveOnly, opts)
	if err != nil {
		return nil, err
	}
	if cfg.k < 1 {
		return nil, &OptionError{Field: "mpcspanner: K", Value: cfg.k,
			Reason: "stretch parameter is required and must be >= 1 (use WithK)"}
	}
	if cfg.reps < 0 {
		return nil, &OptionError{Field: "mpcspanner: Repetitions", Value: cfg.reps,
			Reason: "must be >= 0 (0 and 1 both mean a single run)"}
	}

	cfg.hookPoolMetrics()
	engineOpts := spanner.Options{
		Seed:          cfg.seed,
		Repetitions:   cfg.reps,
		Workers:       cfg.workers,
		MeasureRadius: cfg.radius,
		Progress:      cfg.progress,
		Metrics:       cfg.metrics,
		Tracer:        cfg.tracer,
	}
	gamma := cfg.gamma
	if gamma == 0 {
		gamma = 0.5
	}

	algo := cfg.algo
	if algo == "" {
		algo = AlgoGeneral
	}
	switch algo {
	case AlgoUnweighted, AlgoMPC, AlgoCongestedClique:
		if cfg.reps > 1 {
			return nil, &OptionError{Field: "mpcspanner: Repetitions", Value: cfg.reps,
				Reason: "only the local engine algorithms support repetitions"}
		}
		if cfg.radius {
			return nil, &OptionError{Field: "mpcspanner: MeasureRadius", Value: true,
				Reason: "only the local engine algorithms report cluster-tree radii"}
		}
	}
	if cfg.set["MemoryBudget"] && algo != AlgoMPC {
		return nil, &OptionError{Field: "mpcspanner: MemoryBudget", Value: cfg.memBudget,
			Reason: "only the MPC simulation spills (use WithAlgorithm(AlgoMPC))"}
	}
	if algo == AlgoUnweighted && cfg.set["Gamma"] && cfg.gamma >= 1 {
		// Appendix B needs γ strictly below 1; catch it with the other
		// option checks instead of deep inside the construction.
		return nil, &OptionError{Field: "mpcspanner: Gamma", Value: cfg.gamma,
			Reason: "must lie in (0, 1) for AlgoUnweighted"}
	}

	// The engine families differ only in which constructor runs; every
	// family funnels through the common tail below, which stamps the
	// determinism fingerprint and honors WithSaveTo. fpT / fpGamma record
	// the structural parameters the family actually ran with (after
	// defaulting), so a saved artifact identifies the build exactly.
	var out *BuildResult
	var engineResult *spanner.Result
	fpT, fpGamma := 0, 0.0
	switch algo {
	case AlgoGeneral:
		t := cfg.t
		if t <= 0 {
			t = defaultT(cfg.k)
		}
		fpT = t
		engineResult, err = spanner.GeneralCtx(ctx, g, cfg.k, t, engineOpts)
	case AlgoClusterMerge:
		engineResult, err = spanner.ClusterMergeCtx(ctx, g, cfg.k, engineOpts)
	case AlgoSqrtK:
		engineResult, err = spanner.SqrtKCtx(ctx, g, cfg.k, engineOpts)
	case AlgoBaswanaSen:
		engineResult, err = spanner.BaswanaSenCtx(ctx, g, cfg.k, engineOpts)
	case AlgoUnweighted:
		fpGamma = cfg.gamma
		r, err := spanner.UnweightedCtx(ctx, g, cfg.k, spanner.UnweightedOptions{
			Seed: cfg.seed, Gamma: cfg.gamma, Workers: cfg.workers,
			Progress: traceProgress(cfg.tracer, cfg.progress),
		})
		if err != nil {
			return nil, err
		}
		out = &BuildResult{Algorithm: algo, EdgeIDs: r.EdgeIDs, Unweighted: &r.Stats, g: g}
	case AlgoMPC:
		t := cfg.t
		if t <= 0 {
			t = defaultT(cfg.k)
		}
		fpT, fpGamma = t, gamma
		r, err := mpc.BuildSpannerCtx(ctx, g, cfg.k, t, cfg.seed, mpc.Options{
			Gamma: gamma, Workers: cfg.workers,
			Progress:     traceProgress(cfg.tracer, cfg.progress),
			Metrics:      cfg.metrics,
			MemoryBudget: cfg.memBudget,
		})
		if err != nil {
			return nil, err
		}
		out = &BuildResult{Algorithm: algo, EdgeIDs: r.EdgeIDs, MPC: r, g: g}
	case AlgoCongestedClique:
		t := cfg.t
		if t <= 0 {
			t = defaultT(cfg.k)
		}
		fpT = t
		r, err := cclique.BuildSpannerCtx(ctx, g, cfg.k, t, cfg.seed, cclique.BuildOptions{
			Workers: cfg.workers, Progress: traceProgress(cfg.tracer, cfg.progress),
		})
		if err != nil {
			return nil, err
		}
		out = &BuildResult{Algorithm: algo, EdgeIDs: r.EdgeIDs, Stats: r.Stats, CC: r, g: g}
	default:
		return nil, &OptionError{Field: "mpcspanner: Algorithm", Value: string(cfg.algo),
			Reason: "unknown algorithm"}
	}
	if out == nil {
		if err != nil {
			return nil, err
		}
		out = &BuildResult{Algorithm: algo, EdgeIDs: engineResult.EdgeIDs, Stats: engineResult.Stats, g: g}
	}
	out.fp = artifact.Fingerprint{
		Algorithm: string(algo), Seed: cfg.seed, K: cfg.k, T: fpT,
		Gamma: fpGamma, Workers: cfg.workers,
	}
	if cfg.saveTo != "" {
		if err := out.Save(cfg.saveTo); err != nil {
			return nil, err
		}
	}
	return out, nil
}
