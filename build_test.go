package mpcspanner

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"
)

func testGraphSmall() *Graph {
	return GNP(400, 0.03, UniformWeight(1, 50), 9)
}

// TestBuildMatchesFlatSurface pins the redesign's compatibility contract:
// for every algorithm family and worker count, Build produces bit-identical
// spanners and statistics to the deprecated flat entry points (which are
// themselves unchanged relative to the pre-redesign outputs, as the
// per-package parallel_test.go pins enforce).
func TestBuildMatchesFlatSurface(t *testing.T) {
	g := testGraphSmall()
	unit := GNP(300, 0.04, UnitWeight, 10)
	ctx := context.Background()
	for _, workers := range []int{1, 3, 0} {
		// Engine families.
		for _, algo := range []Algorithm{AlgoGeneral, AlgoClusterMerge, AlgoSqrtK, AlgoBaswanaSen} {
			old, err := BuildSpanner(g, SpannerOptions{Algorithm: algo, K: 6, Seed: 21, Workers: workers, MeasureRadius: true})
			if err != nil {
				t.Fatalf("%s flat: %v", algo, err)
			}
			neu, err := Build(ctx, g, WithAlgorithm(algo), WithK(6), WithSeed(21),
				WithWorkers(workers), WithMeasureRadius())
			if err != nil {
				t.Fatalf("%s Build: %v", algo, err)
			}
			if !reflect.DeepEqual(old.EdgeIDs, neu.EdgeIDs) || !reflect.DeepEqual(old.Stats, neu.Stats) {
				t.Fatalf("%s: Build differs from flat surface at workers=%d", algo, workers)
			}
		}
		// Repetitions path.
		oldR, err := BuildSpanner(g, SpannerOptions{K: 5, Seed: 33, Workers: workers, Repetitions: 3})
		if err != nil {
			t.Fatal(err)
		}
		neuR, err := Build(ctx, g, WithK(5), WithSeed(33), WithWorkers(workers), WithRepetitions(3))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(oldR.EdgeIDs, neuR.EdgeIDs) || oldR.Stats.Repetition != neuR.Stats.Repetition {
			t.Fatalf("repetitions: Build differs from flat surface at workers=%d", workers)
		}
		// MPC plane.
		oldM, err := BuildSpannerMPCOpts(g, 6, 2, 21, MPCOptions{Gamma: 0.5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		neuM, err := Build(ctx, g, WithAlgorithm(AlgoMPC), WithK(6), WithT(2), WithSeed(21),
			WithGamma(0.5), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(oldM, neuM.MPC) {
			t.Fatalf("mpc: Build differs from flat surface at workers=%d", workers)
		}
		// Congested Clique.
		oldC, err := BuildSpannerCongestedCliqueWorkers(g, 6, 2, 21, workers)
		if err != nil {
			t.Fatal(err)
		}
		neuC, err := Build(ctx, g, WithAlgorithm(AlgoCongestedClique), WithK(6), WithT(2),
			WithSeed(21), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(oldC, neuC.CC) {
			t.Fatalf("congested-clique: Build differs from flat surface at workers=%d", workers)
		}
		// Unweighted (Appendix B).
		oldU, err := BuildUnweightedSpanner(unit, 3, UnweightedOptions{Seed: 21, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		neuU, err := Build(ctx, unit, WithAlgorithm(AlgoUnweighted), WithK(3), WithSeed(21),
			WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(oldU.EdgeIDs, neuU.EdgeIDs) || !reflect.DeepEqual(oldU.Stats, *neuU.Unweighted) {
			t.Fatalf("unweighted: Build differs from flat surface at workers=%d", workers)
		}
	}
}

// TestBuildOptionValidation exercises the typed error taxonomy: every
// rejected option classifies as ErrInvalidOption and carries a structured
// *OptionError naming the field.
func TestBuildOptionValidation(t *testing.T) {
	g := testGraphSmall()
	ctx := context.Background()
	cases := []struct {
		name  string
		opts  []Option
		field string
	}{
		{"missing K", nil, "K"},
		{"bad K", []Option{WithK(-2)}, "K"},
		{"negative workers", []Option{WithK(4), WithWorkers(-1)}, "Workers"},
		{"negative T", []Option{WithK(4), WithT(-3)}, "T"},
		{"bad gamma", []Option{WithK(4), WithGamma(1.5)}, "Gamma"},
		{"unweighted gamma 1", []Option{WithK(4), WithAlgorithm(AlgoUnweighted), WithGamma(1)}, "Gamma"},
		{"negative repetitions", []Option{WithK(4), WithRepetitions(-1)}, "Repetitions"},
		{"unknown algorithm", []Option{WithK(4), WithAlgorithm("bogus")}, "Algorithm"},
		{"reps on mpc", []Option{WithK(4), WithAlgorithm(AlgoMPC), WithRepetitions(2)}, "Repetitions"},
		{"radius on mpc", []Option{WithK(4), WithAlgorithm(AlgoMPC), WithMeasureRadius()}, "MeasureRadius"},
		{"serve-only option", []Option{WithK(4), WithExact()}, "Exact"},
		{"zero memory budget", []Option{WithK(4), WithAlgorithm(AlgoMPC), WithMemoryBudget(0)}, "MemoryBudget"},
		{"negative memory budget", []Option{WithK(4), WithAlgorithm(AlgoMPC), WithMemoryBudget(-1)}, "MemoryBudget"},
		{"memory budget off the MPC plane", []Option{WithK(4), WithMemoryBudget(1 << 20)}, "MemoryBudget"},
	}
	for _, tc := range cases {
		_, err := Build(ctx, g, tc.opts...)
		if err == nil {
			t.Fatalf("%s: expected an error", tc.name)
		}
		if !errors.Is(err, ErrInvalidOption) {
			t.Fatalf("%s: error %v does not classify as ErrInvalidOption", tc.name, err)
		}
		var oe *OptionError
		if !errors.As(err, &oe) {
			t.Fatalf("%s: error %v carries no *OptionError", tc.name, err)
		}
		if want := "mpcspanner: " + tc.field; oe.Field != want && oe.Field != tc.field {
			t.Fatalf("%s: OptionError names field %q, want %q", tc.name, oe.Field, want)
		}
	}
}

// TestUnweightedFacadeWorkersValidation pins the closed validation gap: the
// deprecated BuildUnweightedSpanner now performs the same facade-level
// worker validation as every other entry point — a negative Workers is
// rejected as ErrInvalidOption before the graph is inspected, even when the
// graph would fail the unit-weight requirement.
func TestUnweightedFacadeWorkersValidation(t *testing.T) {
	weighted := testGraphSmall() // not unit-weight
	_, err := BuildUnweightedSpanner(weighted, 3, UnweightedOptions{Workers: -1})
	if err == nil {
		t.Fatal("expected an error for Workers = -1")
	}
	if !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("error %v does not classify as ErrInvalidOption", err)
	}
	var oe *OptionError
	if !errors.As(err, &oe) || oe.Field != "mpcspanner: Workers" {
		t.Fatalf("workers rejection reports field %+v, want the facade-level Workers check", oe)
	}
	// The new surface closes the same gap.
	if _, err := Build(context.Background(), weighted, WithAlgorithm(AlgoUnweighted), WithK(3), WithWorkers(-1)); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("Build(unweighted, Workers=-1) = %v, want ErrInvalidOption", err)
	}
}

// TestBuildCancellation is the acceptance criterion: a canceled context
// returns an error satisfying errors.Is(err, context.Canceled) — and the
// package sentinel ErrCanceled — from every algorithm family.
func TestBuildCancellation(t *testing.T) {
	g := testGraphSmall()
	unit := GNP(300, 0.04, UnitWeight, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	families := map[Algorithm]*Graph{
		AlgoGeneral:         g,
		AlgoClusterMerge:    g,
		AlgoSqrtK:           g,
		AlgoBaswanaSen:      g,
		AlgoUnweighted:      unit,
		AlgoMPC:             g,
		AlgoCongestedClique: g,
	}
	for algo, gr := range families {
		_, err := Build(ctx, gr, WithAlgorithm(algo), WithK(4), WithSeed(7))
		if err == nil {
			t.Fatalf("%s: canceled context returned no error", algo)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: error %v does not classify as context.Canceled", algo, err)
		}
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("%s: error %v does not classify as ErrCanceled", algo, err)
		}
	}
}

// TestBuildCancelMidRun cancels from inside the progress callback — the
// checkpoint structure guarantees the loop notices at the next iteration —
// and checks no goroutines outlive the canceled build.
func TestBuildCancelMidRun(t *testing.T) {
	g := GNP(1200, 0.02, UniformWeight(1, 80), 5)
	before := runtime.NumGoroutine()
	for _, algo := range []Algorithm{AlgoGeneral, AlgoMPC, AlgoCongestedClique} {
		ctx, cancel := context.WithCancel(context.Background())
		events := 0
		_, err := Build(ctx, g, WithAlgorithm(algo), WithK(8), WithSeed(3), WithWorkers(4),
			WithProgress(func(ev ProgressEvent) {
				events++
				cancel()
			}))
		cancel()
		if err == nil {
			t.Fatalf("%s: mid-run cancel returned no error", algo)
		}
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("%s: mid-run cancel error %v is not ErrCanceled", algo, err)
		}
		if events == 0 {
			t.Fatalf("%s: no progress event fired before cancellation", algo)
		}
	}
	// Goroutine hygiene: allow the runtime a moment to retire pool workers.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after canceled builds", before, runtime.NumGoroutine())
}

// TestServeSession exercises the serving half: exact sessions answer real
// distances, approx sessions honor the certified bound machinery, batches
// are deterministic, and cancellation classifies correctly.
func TestServeSession(t *testing.T) {
	ctx := context.Background()
	g := testGraphSmall()

	s, err := Serve(ctx, g, WithExact(), WithCacheRows(8))
	if err != nil {
		t.Fatal(err)
	}
	if s.APSP() != nil {
		t.Fatal("exact session should carry no APSP result")
	}
	if s.Served() != g {
		t.Fatal("exact session must serve the input graph")
	}
	row, err := s.Row(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.Query(ctx, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d != row[5] {
		t.Fatalf("Query(0,5) = %v, want row value %v", d, row[5])
	}
	batch, err := s.QueryMany(ctx, []Pair{{U: 0, V: 1}, {U: 2, V: 3}, {U: 0, V: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if batch[2] != d {
		t.Fatalf("QueryMany disagrees with Query: %v vs %v", batch[2], d)
	}
	if _, err := s.Query(ctx, -1, 0); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("bad vertex error %v, want ErrInvalidOption", err)
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := s.QueryMany(canceled, []Pair{{U: 7, V: 8}}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled batch error %v, want ErrCanceled", err)
	}

	// Approx mode wraps the Corollary 1.4 pipeline and matches ApproxAPSP.
	sa, err := Serve(ctx, g, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ApproxAPSP(g, APSPOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if sa.APSP() == nil || !reflect.DeepEqual(sa.APSP().SpannerEdgeIDs, ref.SpannerEdgeIDs) {
		t.Fatal("approx session spanner differs from ApproxAPSP")
	}
	if got, err := sa.Query(ctx, 0, 9); err != nil || got != ref.DistancesFrom(0)[9] {
		t.Fatalf("approx session query = (%v, %v), want the pipeline's distance", got, err)
	}
	// Serve rejects build-only options and malformed cache sizing.
	if _, err := Serve(ctx, g, WithK(4)); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("Serve(WithK) = %v, want ErrInvalidOption", err)
	}
	if _, err := Serve(ctx, g, WithExact(), WithCacheShards(-4)); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("Serve(WithCacheShards(-4)) = %v, want ErrInvalidOption", err)
	}
	if _, err := Serve(ctx, g, WithExact(), WithCacheRows(-1)); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("Serve(WithCacheRows(-1)) = %v, want ErrInvalidOption", err)
	}
	// The clique APSP pipeline rejects structural options it cannot honor.
	if _, err := ApproxAPSPCongestedCliqueCtx(ctx, g, WithK(4)); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("ApproxAPSPCongestedCliqueCtx(WithK) = %v, want ErrInvalidOption", err)
	}
	// Exact mode runs no pipeline, so pipeline-only options are rejected.
	if _, err := Serve(ctx, g, WithExact(), WithSeed(3)); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("Serve(WithExact, WithSeed) = %v, want ErrInvalidOption", err)
	}
	// Default-sized approx sessions share the pipeline's oracle: a row
	// served through the session is a cache hit for the APSP result.
	shared, err := Serve(ctx, g, WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shared.Row(ctx, 3); err != nil {
		t.Fatal(err)
	}
	misses := shared.Stats().Misses
	shared.APSP().DistancesFrom(3) // same source, same cache
	if got := shared.Stats().Misses; got != misses {
		t.Fatalf("APSP query after session query recomputed the row: misses %d -> %d", misses, got)
	}
}

// TestMemoryBudgetFacade pins the out-of-core surface at the facade: a
// budgeted MPC Build really spills, reports its profile on Result.MPC, and
// selects the identical spanner; planes that never run an MPC build reject
// the option with the usual typed taxonomy.
func TestMemoryBudgetFacade(t *testing.T) {
	g := testGraphSmall()
	ctx := context.Background()
	ref, err := Build(ctx, g, WithAlgorithm(AlgoMPC), WithK(4), WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Build(ctx, g, WithAlgorithm(AlgoMPC), WithK(4), WithSeed(21),
		WithMemoryBudget(32<<10))
	if err != nil {
		t.Fatal(err)
	}
	if got.MPC.MemoryBudget != 32<<10 || got.MPC.SpilledBytes <= 0 || got.MPC.SpillRuns <= 0 {
		t.Fatalf("budgeted build reported no spill profile: %+v", got.MPC)
	}
	if ref.MPC.MemoryBudget != 0 || ref.MPC.SpilledBytes != 0 {
		t.Fatalf("resident build reports a spill profile: %+v", ref.MPC)
	}
	if !reflect.DeepEqual(got.EdgeIDs, ref.EdgeIDs) {
		t.Fatal("budgeted build selected a different spanner than the resident build")
	}
	if _, err := Serve(ctx, g, WithExact(), WithMemoryBudget(1<<20)); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("Serve(WithExact, WithMemoryBudget) = %v, want ErrInvalidOption", err)
	}
	var oe *OptionError
	if _, err := Serve(ctx, g, WithExact(), WithMemoryBudget(1<<20)); !errors.As(err, &oe) || oe.Field != "mpcspanner: MemoryBudget" {
		t.Fatalf("Serve rejection names field %+v, want MemoryBudget", oe)
	}
}
