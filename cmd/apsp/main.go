// Command apsp demonstrates the paper's distance-approximation application
// (Section 7 / Corollary 1.4): it builds the near-linear-size spanner on the
// simulated MPC cluster, collects it to one machine, and answers distance
// queries with the certified O(log^{1+o(1)} n) approximation.
//
//	go run ./cmd/apsp -n 5000 -deg 10 -queries 5
//	go run ./cmd/apsp -n 5000 -clique        # Corollary 1.5 in the Congested Clique
//
// Ctrl-C cancels the build at its next simulated-round checkpoint and
// reports how far it got.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"

	"mpcspanner"
	"mpcspanner/cmd/internal/cliutil"
	"mpcspanner/internal/dist"
)

func main() {
	n := flag.Int("n", 5000, "vertices")
	deg := flag.Float64("deg", 10, "average degree")
	maxW := flag.Float64("maxw", 100, "maximum edge weight")
	t := flag.Int("t", 0, "epoch length (0 = Corollary 1.4 default loglog n)")
	seed := flag.Uint64("seed", 1, "random seed")
	queries := flag.Int("queries", 3, "sample source vertices to query and check")
	clique := flag.Bool("clique", false, "run the Congested Clique variant (Corollary 1.5; not instrumented by -metrics)")
	met := cliutil.MetricsFlag()
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	g := mpcspanner.Connectify(
		mpcspanner.GNP(*n, *deg/float64(*n), mpcspanner.UniformWeight(1, *maxW), *seed), *maxW)
	fmt.Printf("graph: n=%d m=%d\n", g.N(), g.M())

	var last atomic.Pointer[mpcspanner.ProgressEvent]

	if *clique {
		res, err := mpcspanner.ApproxAPSPCongestedCliqueCtx(ctx, g,
			mpcspanner.WithSeed(*seed),
			mpcspanner.WithProgress(func(ev mpcspanner.ProgressEvent) { last.Store(&ev) }))
		if err != nil {
			fatal(err, last.Load())
		}
		fmt.Printf("congested clique: k=%d t=%d spannerRounds=%d collectRounds=%d total=%d\n",
			res.K, res.T, res.SpannerRounds, res.CollectionRounds, res.Rounds)
		fmt.Printf("spanner: %d edges, certified approximation <= %.2f\n",
			len(res.SpannerEdgeIDs), res.Bound)
		rep, err := res.MeasureApproximation(*queries, *seed+1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("measured over %d pairs: max %.3f, mean %.3f\n", rep.Checked, rep.Max, rep.Mean)
		return
	}

	res, err := mpcspanner.ApproxAPSPCtx(ctx, g, mpcspanner.APSPOptions{
		Seed: *seed, T: *t,
		Progress: func(ev mpcspanner.ProgressEvent) { last.Store(&ev) },
		Metrics:  met.Registry(),
	})
	if err != nil {
		fatal(err, last.Load())
	}
	fmt.Printf("mpc: k=%d t=%d buildRounds=%d collectRounds=%d total=%d\n",
		res.K, res.T, res.BuildRounds, res.CollectRounds, res.Rounds)
	fmt.Printf("spanner: %d edges, fits Õ(n)=%d words on one machine: %v, bound <= %.2f\n",
		res.SpannerSize, res.CollectorWords, res.FitsOneMachine, res.Bound)

	for q := 0; q < *queries; q++ {
		src := int(uint64(q)*2654435761+*seed) % g.N()
		approx := res.DistancesFrom(src)
		exact := dist.Dijkstra(g, src)
		worst, at := 0.0, -1
		for v := range exact {
			if exact[v] > 0 && exact[v] != dist.Inf {
				if r := approx[v] / exact[v]; r > worst {
					worst, at = r, v
				}
			}
		}
		fmt.Printf("query src=%d: worst ratio %.3f (at vertex %d)\n", src, worst, at)
	}
	if err := met.Dump(); err != nil {
		log.Fatal(err)
	}
}

// fatal reports an interrupted or failed build, including partial progress
// when the failure was a cancellation.
func fatal(err error, ev *mpcspanner.ProgressEvent) {
	if errors.Is(err, mpcspanner.ErrCanceled) {
		if ev != nil {
			fmt.Fprintf(os.Stderr, "canceled at %s %d/%d: %d simulated rounds, %d spanner edges so far\n",
				ev.Stage, ev.Iteration, ev.TotalIterations, ev.Rounds, ev.SpannerEdges)
		} else {
			fmt.Fprintln(os.Stderr, "canceled before the first checkpoint")
		}
	}
	log.Fatal(err)
}
