// Command benchjson is the bench-regression gate's plumbing: it converts
// `go test -bench` output into a stable JSON profile and compares two such
// profiles against a regression threshold. It exists so CI needs no
// third-party benchstat dependency.
//
// Convert (reads bench output from stdin; -benchmem columns, when present,
// are recorded as bytes_per_op / allocs_per_op, and any custom
// testing.B.ReportMetric columns — edges/s, peak_rss_bytes, mpc-rounds — land
// in the per-benchmark "extra" map):
//
//	go test -run '^$' -bench . -benchtime 3x -count 3 -benchmem ./... | benchjson -out BENCH_spanner.json
//
// Compare (exit 1 if any benchmark present in both profiles slowed down —
// allocated more, or lost custom "/s" throughput — by more than the
// threshold factor; flags must precede the file arguments, as Go's flag
// parsing stops at the first positional):
//
//	benchjson -compare -threshold 1.25 [-md summary.md] BENCH_spanner.json BENCH_new.json
//
// -md additionally writes the comparison as a markdown delta table (CI
// appends it to the job summary so a regression is diagnosable without
// rerunning locally).
//
// Profiles key benchmarks by their name with the trailing -GOMAXPROCS
// suffix stripped, and record the minimum ns/op (and minimum B/op and
// allocs/op) over all samples of a name (the least-noise estimator for
// -count repeats). Comparison only considers names present in both
// profiles, so machines with different core counts — which emit different
// workers=N sub-benchmarks — compare on their shared serial rows; names
// missing from either side are reported as warnings. Alloc gating is
// additionally skipped for rows whose baseline predates the -benchmem
// schema (no allocs_per_op recorded) and for regressions of fewer than
// allocSlack objects — a 0→2 allocs/op jump on a near-allocation-free
// benchmark is noise, not a leak.
//
// Raw ns/op is only comparable on like hardware, so profiles record the
// `cpu:` line go test prints. When the two profiles come from different
// CPUs the comparison report still prints but the gate exits 0 with a
// calibration notice — commit the freshly produced profile as the new
// baseline to arm the gate on that hardware. On matching CPUs the
// threshold is enforced strictly. Alloc counts are hardware-independent in
// principle, but scheduling-dependent in practice (pool misses, goroutine
// closures), so they gate under the same like-hardware rule.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's recorded cost. HasMem marks rows measured with
// -benchmem; when it is false BytesPerOp/AllocsPerOp hold zero values and
// carry no meaning (profiles predating the memory schema omit all three
// fields). Extra carries every custom-unit column a benchmark reported via
// testing.B.ReportMetric (edges/s, peak_rss_bytes, mpc-rounds, …), keyed by
// unit; across -count samples a "/s" unit keeps its maximum (throughput:
// higher is better) and everything else its minimum.
type Entry struct {
	NsPerOp     float64            `json:"ns_per_op"`
	Samples     int                `json:"samples"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	HasMem      bool               `json:"has_mem,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// MarshalJSON emits the memory columns explicitly whenever the row was
// measured with -benchmem: a 0-alloc benchmark records literal zeros instead
// of omitting the fields, so has_mem:true rows always carry both columns —
// an omitted column means "not measured", never "measured zero".
func (e Entry) MarshalJSON() ([]byte, error) {
	type wire struct {
		NsPerOp     float64            `json:"ns_per_op"`
		Samples     int                `json:"samples"`
		BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
		AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
		HasMem      bool               `json:"has_mem,omitempty"`
		Extra       map[string]float64 `json:"extra,omitempty"`
	}
	w := wire{NsPerOp: e.NsPerOp, Samples: e.Samples, HasMem: e.HasMem, Extra: e.Extra}
	if e.HasMem {
		w.BytesPerOp, w.AllocsPerOp = &e.BytesPerOp, &e.AllocsPerOp
	}
	return json.Marshal(w)
}

// Profile is the serialized BENCH_*.json shape.
type Profile struct {
	CPU        string           `json:"cpu,omitempty"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// benchLine matches "BenchmarkName-8   3   12345678 ns/op ..." (the value
// may be fractional, e.g. "0.5 ns/op").
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+(?:e[+-]?\d+)?) ns/op`)

// memCols matches the -benchmem suffix "... 456 B/op  7 allocs/op".
var memCols = regexp.MustCompile(`([0-9.]+(?:e[+-]?\d+)?) B/op\s+([0-9.]+(?:e[+-]?\d+)?) allocs/op`)

// extraCols matches one "value unit" column — the shape every
// testing.B.ReportMetric metric prints in (the standard ns/op and -benchmem
// columns match too and are filtered by name).
var extraCols = regexp.MustCompile(`([0-9.]+(?:e[+-]?\d+)?)\s+([A-Za-z][A-Za-z0-9_./%-]*)`)

// standardUnits are the columns already captured by the dedicated fields.
var standardUnits = map[string]bool{"ns/op": true, "B/op": true, "allocs/op": true}

// procSuffix strips the trailing -GOMAXPROCS decoration go test appends, so
// profiles from machines with different core counts share keys.
var procSuffix = regexp.MustCompile(`-\d+$`)

// allocSlack is the absolute allocs/op increase below which the alloc gate
// never fires: ratio thresholds are meaningless against a ~0 baseline.
const allocSlack = 16.0

func main() {
	out := flag.String("out", "", "write the converted profile to this file (default stdout)")
	compare := flag.Bool("compare", false, "compare two profiles: benchjson -compare baseline.json new.json")
	threshold := flag.Float64("threshold", 1.25, "fail -compare when new/baseline ns/op (or allocs/op) exceeds this factor")
	md := flag.String("md", "", "with -compare, also write a markdown delta table to this file")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fatalf("usage: benchjson -compare [-threshold 1.25] [-md summary.md] baseline.json new.json")
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *threshold, *md))
	}
	if flag.NArg() != 0 {
		fatalf("usage: benchjson [-out file] < bench-output")
	}
	prof := parse(os.Stdin)
	if len(prof.Benchmarks) == 0 {
		fatalf("benchjson: no benchmark lines found on stdin")
	}
	data, err := json.MarshalIndent(prof, "", "  ")
	if err != nil {
		fatalf("benchjson: %v", err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatalf("benchjson: %v", err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(prof.Benchmarks), *out)
}

// parse folds bench output into a profile, keeping the minimum ns/op (and
// minimum memory columns) per (suffix-stripped) name.
func parse(f *os.File) Profile {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	prof := parseLines(sc)
	if err := sc.Err(); err != nil {
		fatalf("benchjson: reading stdin: %v", err)
	}
	return prof
}

func parseLines(sc *bufio.Scanner) Profile {
	prof := Profile{Benchmarks: map[string]Entry{}}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok && prof.CPU == "" {
			prof.CPU = cpu
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := procSuffix.ReplaceAllString(m[1], "")
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		e, ok := prof.Benchmarks[name]
		if !ok || ns < e.NsPerOp {
			e.NsPerOp = ns
		}
		if mm := memCols.FindStringSubmatch(line); mm != nil {
			bytes, errB := strconv.ParseFloat(mm[1], 64)
			allocs, errA := strconv.ParseFloat(mm[2], 64)
			if errB == nil && errA == nil {
				if !e.HasMem || bytes < e.BytesPerOp {
					e.BytesPerOp = bytes
				}
				if !e.HasMem || allocs < e.AllocsPerOp {
					e.AllocsPerOp = allocs
				}
				e.HasMem = true
			}
		}
		for _, mm := range extraCols.FindAllStringSubmatch(line, -1) {
			unit := mm[2]
			if standardUnits[unit] {
				continue
			}
			v, err := strconv.ParseFloat(mm[1], 64)
			if err != nil {
				continue
			}
			if e.Extra == nil {
				e.Extra = map[string]float64{}
			}
			old, seen := e.Extra[unit]
			throughput := strings.HasSuffix(unit, "/s")
			if !seen || (throughput && v > old) || (!throughput && v < old) {
				e.Extra[unit] = v
			}
		}
		e.Samples++
		prof.Benchmarks[name] = e
	}
	return prof
}

func load(path string) Profile {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("benchjson: %v", err)
	}
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		fatalf("benchjson: parsing %s: %v", path, err)
	}
	return p
}

// row is one comparison line, retained so the text report and the markdown
// table render from the same verdicts.
type row struct {
	name           string
	status         string // "ok", "FAIL", "WARN", "NEW"
	base, fresh    Entry
	ratio          float64 // ns/op ratio
	allocRatio     float64 // allocs/op ratio when both sides carry mem data
	hasAllocs      bool
	timeRegressed  bool
	allocRegressed bool
	extras         []extraDelta // shared custom-unit metrics, sorted by unit
	extraRegressed bool         // any "/s" unit fell below baseline/threshold
}

// extraDelta is one shared custom-unit metric's old-vs-new verdict. Only
// throughput units ("/s" suffix: higher is better) gate — a drop such that
// base/fresh exceeds the threshold is a regression, mirroring the ns/op rule
// with the polarity flipped. Gauge-style units (peak_rss_bytes, mpc-rounds)
// are carried for the report but never fail the gate.
type extraDelta struct {
	unit        string
	base, fresh float64
	regressed   bool
}

// compareProfiles builds the per-benchmark verdicts.
func compareProfiles(base, fresh Profile, threshold float64) []row {
	var names []string
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var rows []row
	for _, name := range names {
		b := base.Benchmarks[name]
		n, ok := fresh.Benchmarks[name]
		if !ok {
			rows = append(rows, row{name: name, status: "WARN", base: b})
			continue
		}
		r := row{name: name, base: b, fresh: n, ratio: n.NsPerOp / b.NsPerOp, status: "ok"}
		if r.ratio > threshold {
			r.timeRegressed = true
		}
		if b.HasMem && n.HasMem {
			r.hasAllocs = true
			if b.AllocsPerOp > 0 {
				r.allocRatio = n.AllocsPerOp / b.AllocsPerOp
				r.allocRegressed = r.allocRatio > threshold && n.AllocsPerOp-b.AllocsPerOp > allocSlack
			} else {
				// Zero-alloc baseline: the true ratio is infinite, so no
				// finite threshold may waive the regression — gate purely on
				// the absolute jump. The display ratio is jump+1 (what the
				// ratio would be against a 1-alloc baseline).
				r.allocRatio = n.AllocsPerOp + 1
				r.allocRegressed = n.AllocsPerOp > allocSlack
			}
		}
		var units []string
		for u := range b.Extra {
			if _, ok := n.Extra[u]; ok {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		for _, u := range units {
			d := extraDelta{unit: u, base: b.Extra[u], fresh: n.Extra[u]}
			if strings.HasSuffix(u, "/s") && d.base > 0 {
				d.regressed = d.fresh <= 0 || d.base/d.fresh > threshold
			}
			if d.regressed {
				r.extraRegressed = true
			}
			r.extras = append(r.extras, d)
		}
		if r.timeRegressed || r.allocRegressed || r.extraRegressed {
			r.status = "FAIL"
		}
		rows = append(rows, r)
	}
	var extra []string
	for name := range fresh.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		rows = append(rows, row{name: name, status: "NEW", fresh: fresh.Benchmarks[name]})
	}
	return rows
}

// runCompare prints a per-benchmark report (and optionally a markdown table)
// and returns the process exit code: 1 if any shared benchmark regressed
// beyond the threshold on like hardware.
func runCompare(basePath, newPath string, threshold float64, mdPath string) int {
	base, fresh := load(basePath), load(newPath)
	rows := compareProfiles(base, fresh, threshold)

	regressed, compared := 0, 0
	for _, r := range rows {
		switch r.status {
		case "WARN":
			fmt.Printf("WARN  %-70s missing from %s\n", r.name, newPath)
			continue
		case "NEW":
			fmt.Printf("NEW   %-70s %12.0f ns/op (not in baseline)\n", r.name, r.fresh.NsPerOp)
			continue
		}
		compared++
		if r.status == "FAIL" {
			regressed++
		}
		line := fmt.Sprintf("%-5s %-70s %12.0f -> %12.0f ns/op  (%.2fx)", r.status, r.name, r.base.NsPerOp, r.fresh.NsPerOp, r.ratio)
		if r.hasAllocs {
			line += fmt.Sprintf("  %10.0f -> %10.0f allocs/op", r.base.AllocsPerOp, r.fresh.AllocsPerOp)
			if r.allocRegressed {
				line += " (ALLOC REGRESSION)"
			}
		}
		for _, d := range r.extras {
			line += fmt.Sprintf("  %s %.3g -> %.3g", d.unit, d.base, d.fresh)
			if d.regressed {
				line += " (THROUGHPUT REGRESSION)"
			}
		}
		fmt.Println(line)
	}

	sameHW := !(base.CPU != "" && fresh.CPU != "" && base.CPU != fresh.CPU)
	if mdPath != "" {
		if err := os.WriteFile(mdPath, []byte(markdownReport(rows, base.CPU, fresh.CPU, threshold, sameHW)), 0o644); err != nil {
			fatalf("benchjson: writing %s: %v", mdPath, err)
		}
	}

	if compared == 0 {
		fmt.Println("FAIL  no shared benchmarks between the profiles")
		return 1
	}
	if !sameHW {
		fmt.Printf("NOTE  baseline CPU %q != current CPU %q: raw ns/op is not comparable across hardware.\n", base.CPU, fresh.CPU)
		fmt.Println("NOTE  gate is ADVISORY on this run — commit the fresh profile as the baseline to arm it on this hardware.")
		if regressed > 0 {
			fmt.Printf("NOTE  %d of %d shared benchmarks exceeded %.2fx (not failing: hardware mismatch)\n", regressed, compared, threshold)
		}
		return 0
	}
	if regressed > 0 {
		fmt.Printf("FAIL  %d of %d shared benchmarks regressed beyond %.2fx\n", regressed, compared, threshold)
		return 1
	}
	fmt.Printf("ok    %d shared benchmarks within %.2fx of the baseline\n", compared, threshold)
	return 0
}

// markdownReport renders the verdicts as the old-vs-new delta table CI posts
// to the job summary.
func markdownReport(rows []row, baseCPU, freshCPU string, threshold float64, sameHW bool) string {
	var sb strings.Builder
	sb.WriteString("## Bench regression report\n\n")
	fmt.Fprintf(&sb, "Threshold: %.2fx · baseline CPU: `%s` · this run: `%s`\n\n", threshold, orDash(baseCPU), orDash(freshCPU))
	if !sameHW {
		sb.WriteString("> ⚠️ Hardware mismatch — gate advisory; the baseline recalibrates on push to main.\n\n")
	}
	sb.WriteString("| status | benchmark | ns/op (old → new) | Δtime | allocs/op (old → new) | custom units (old → new) |\n")
	sb.WriteString("|---|---|---|---|---|---|\n")
	for _, r := range rows {
		switch r.status {
		case "WARN":
			fmt.Fprintf(&sb, "| ⚠️ missing | `%s` | %.0f → — | — | — | — |\n", r.name, r.base.NsPerOp)
		case "NEW":
			allocs := "—"
			if r.fresh.HasMem {
				allocs = fmt.Sprintf("— → %.0f", r.fresh.AllocsPerOp)
			}
			extras := "—"
			if len(r.fresh.Extra) > 0 {
				var units []string
				for u := range r.fresh.Extra {
					units = append(units, u)
				}
				sort.Strings(units)
				var parts []string
				for _, u := range units {
					parts = append(parts, fmt.Sprintf("%s — → %.3g", u, r.fresh.Extra[u]))
				}
				extras = strings.Join(parts, " · ")
			}
			fmt.Fprintf(&sb, "| 🆕 new | `%s` | — → %.0f | — | %s | %s |\n", r.name, r.fresh.NsPerOp, allocs, extras)
		default:
			icon := "✅"
			if r.status == "FAIL" {
				icon = "❌"
			}
			allocs := "—"
			if r.hasAllocs {
				allocs = fmt.Sprintf("%.0f → %.0f", r.base.AllocsPerOp, r.fresh.AllocsPerOp)
				if r.allocRegressed {
					allocs += " ❌"
				}
			}
			extras := "—"
			if len(r.extras) > 0 {
				var parts []string
				for _, d := range r.extras {
					part := fmt.Sprintf("%s %.3g → %.3g", d.unit, d.base, d.fresh)
					if d.regressed {
						part += " ❌"
					}
					parts = append(parts, part)
				}
				extras = strings.Join(parts, " · ")
			}
			fmt.Fprintf(&sb, "| %s | `%s` | %.0f → %.0f | %.2fx | %s | %s |\n",
				icon, r.name, r.base.NsPerOp, r.fresh.NsPerOp, r.ratio, allocs, extras)
		}
	}
	return sb.String()
}

func orDash(s string) string {
	if s == "" {
		return "—"
	}
	return s
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
