// Command benchjson is the bench-regression gate's plumbing: it converts
// `go test -bench` output into a stable JSON profile and compares two such
// profiles against a regression threshold. It exists so CI needs no
// third-party benchstat dependency.
//
// Convert (reads bench output from stdin):
//
//	go test -run '^$' -bench . -benchtime 3x -count 3 ./... | benchjson -out BENCH_spanner.json
//
// Compare (exit 1 if any benchmark present in both profiles slowed down by
// more than the threshold factor; flags must precede the file arguments,
// as Go's flag parsing stops at the first positional):
//
//	benchjson -compare -threshold 1.25 BENCH_spanner.json BENCH_new.json
//
// Profiles key benchmarks by their name with the trailing -GOMAXPROCS
// suffix stripped, and record the minimum ns/op over all samples of a name
// (the least-noise estimator for -count repeats). Comparison only considers
// names present in both profiles, so machines with different core counts —
// which emit different workers=N sub-benchmarks — compare on their shared
// serial rows; names missing from either side are reported as warnings.
//
// Raw ns/op is only comparable on like hardware, so profiles record the
// `cpu:` line go test prints. When the two profiles come from different
// CPUs the comparison report still prints but the gate exits 0 with a
// calibration notice — commit the freshly produced profile as the new
// baseline to arm the gate on that hardware. On matching CPUs the
// threshold is enforced strictly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's recorded cost.
type Entry struct {
	NsPerOp float64 `json:"ns_per_op"`
	Samples int     `json:"samples"`
}

// Profile is the serialized BENCH_*.json shape.
type Profile struct {
	CPU        string           `json:"cpu,omitempty"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// benchLine matches "BenchmarkName-8   3   12345678 ns/op ..." (the value
// may be fractional, e.g. "0.5 ns/op").
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+(?:e[+-]?\d+)?) ns/op`)

// procSuffix strips the trailing -GOMAXPROCS decoration go test appends, so
// profiles from machines with different core counts share keys.
var procSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	out := flag.String("out", "", "write the converted profile to this file (default stdout)")
	compare := flag.Bool("compare", false, "compare two profiles: benchjson -compare baseline.json new.json")
	threshold := flag.Float64("threshold", 1.25, "fail -compare when new/baseline ns/op exceeds this factor")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fatalf("usage: benchjson -compare [-threshold 1.25] baseline.json new.json")
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *threshold))
	}
	if flag.NArg() != 0 {
		fatalf("usage: benchjson [-out file] < bench-output")
	}
	prof := parse(os.Stdin)
	if len(prof.Benchmarks) == 0 {
		fatalf("benchjson: no benchmark lines found on stdin")
	}
	data, err := json.MarshalIndent(prof, "", "  ")
	if err != nil {
		fatalf("benchjson: %v", err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatalf("benchjson: %v", err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(prof.Benchmarks), *out)
}

// parse folds bench output into a profile, keeping the minimum ns/op per
// (suffix-stripped) name.
func parse(f *os.File) Profile {
	prof := Profile{Benchmarks: map[string]Entry{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok && prof.CPU == "" {
			prof.CPU = cpu
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := procSuffix.ReplaceAllString(m[1], "")
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		e, ok := prof.Benchmarks[name]
		if !ok || ns < e.NsPerOp {
			e.NsPerOp = ns
		}
		e.Samples++
		prof.Benchmarks[name] = e
	}
	if err := sc.Err(); err != nil {
		fatalf("benchjson: reading stdin: %v", err)
	}
	return prof
}

func load(path string) Profile {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("benchjson: %v", err)
	}
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		fatalf("benchjson: parsing %s: %v", path, err)
	}
	return p
}

// runCompare prints a per-benchmark report and returns the process exit
// code: 1 if any shared benchmark regressed beyond the threshold.
func runCompare(basePath, newPath string, threshold float64) int {
	base, fresh := load(basePath), load(newPath)
	var names []string
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	regressed := 0
	compared := 0
	for _, name := range names {
		b := base.Benchmarks[name]
		n, ok := fresh.Benchmarks[name]
		if !ok {
			fmt.Printf("WARN  %-70s missing from %s\n", name, newPath)
			continue
		}
		compared++
		ratio := n.NsPerOp / b.NsPerOp
		status := "ok   "
		if ratio > threshold {
			status = "FAIL "
			regressed++
		}
		fmt.Printf("%s %-70s %12.0f -> %12.0f ns/op  (%.2fx)\n", status, name, b.NsPerOp, n.NsPerOp, ratio)
	}
	for name := range fresh.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Printf("NEW   %-70s %12.0f ns/op (not in baseline)\n", name, fresh.Benchmarks[name].NsPerOp)
		}
	}
	if compared == 0 {
		fmt.Println("FAIL  no shared benchmarks between the profiles")
		return 1
	}
	if base.CPU != "" && fresh.CPU != "" && base.CPU != fresh.CPU {
		fmt.Printf("NOTE  baseline CPU %q != current CPU %q: raw ns/op is not comparable across hardware.\n", base.CPU, fresh.CPU)
		fmt.Println("NOTE  gate is ADVISORY on this run — commit the fresh profile as the baseline to arm it on this hardware.")
		if regressed > 0 {
			fmt.Printf("NOTE  %d of %d shared benchmarks exceeded %.2fx (not failing: hardware mismatch)\n", regressed, compared, threshold)
		}
		return 0
	}
	if regressed > 0 {
		fmt.Printf("FAIL  %d of %d shared benchmarks regressed beyond %.2fx\n", regressed, compared, threshold)
		return 1
	}
	fmt.Printf("ok    %d shared benchmarks within %.2fx of the baseline\n", compared, threshold)
	return 0
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
