package main

import (
	"bufio"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMPCBuild/n=20k/k=16/t=4/workers=1-8   1   250000000 ns/op   147.0 mpc-rounds   38716024 B/op   440 allocs/op
BenchmarkMPCBuild/n=20k/k=16/t=4/workers=1-8   1   240000000 ns/op   147.0 mpc-rounds   38700000 B/op   444 allocs/op
BenchmarkSimSortByKey-8                        3    11367015 ns/op          0 B/op        0 allocs/op
BenchmarkOldSchema                             5     1000000 ns/op
PASS
`

func parseString(t *testing.T, s string) Profile {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(s))
	return parseLines(sc)
}

func TestParseRecordsMemColumnsAndMinimum(t *testing.T) {
	prof := parseString(t, sampleBench)
	if prof.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Fatalf("cpu = %q", prof.CPU)
	}
	e, ok := prof.Benchmarks["BenchmarkMPCBuild/n=20k/k=16/t=4/workers=1"]
	if !ok {
		t.Fatalf("missing MPCBuild entry; have %v", prof.Benchmarks)
	}
	if e.NsPerOp != 240000000 {
		t.Errorf("ns_per_op = %v, want the 240000000 minimum", e.NsPerOp)
	}
	if !e.HasMem || e.AllocsPerOp != 440 || e.BytesPerOp != 38700000 {
		t.Errorf("mem columns = (%v B, %v allocs, hasMem=%v), want minimums (38700000, 440, true)", e.BytesPerOp, e.AllocsPerOp, e.HasMem)
	}
	if e.Samples != 2 {
		t.Errorf("samples = %d, want 2", e.Samples)
	}
	zero := prof.Benchmarks["BenchmarkSimSortByKey"]
	if !zero.HasMem || zero.AllocsPerOp != 0 {
		t.Errorf("zero-alloc row must record has_mem with 0 allocs, got %+v", zero)
	}
	old := prof.Benchmarks["BenchmarkOldSchema"]
	if old.HasMem {
		t.Errorf("row without -benchmem columns must not claim mem data: %+v", old)
	}
}

func mkProfile(cpu string, entries map[string]Entry) Profile {
	return Profile{CPU: cpu, Benchmarks: entries}
}

func TestCompareGatesTimeAndAllocRegressions(t *testing.T) {
	base := mkProfile("x", map[string]Entry{
		"BenchmarkFast":     {NsPerOp: 100, HasMem: true, AllocsPerOp: 1000, BytesPerOp: 10},
		"BenchmarkSlow":     {NsPerOp: 100, HasMem: true, AllocsPerOp: 1000, BytesPerOp: 10},
		"BenchmarkLeaky":    {NsPerOp: 100, HasMem: true, AllocsPerOp: 1000, BytesPerOp: 10},
		"BenchmarkTinyJump": {NsPerOp: 100, HasMem: true, AllocsPerOp: 0, BytesPerOp: 0},
		"BenchmarkNoMem":    {NsPerOp: 100},
		"BenchmarkGone":     {NsPerOp: 100},
	})
	fresh := mkProfile("x", map[string]Entry{
		"BenchmarkFast":     {NsPerOp: 90, HasMem: true, AllocsPerOp: 900, BytesPerOp: 10},
		"BenchmarkSlow":     {NsPerOp: 200, HasMem: true, AllocsPerOp: 1000, BytesPerOp: 10},
		"BenchmarkLeaky":    {NsPerOp: 100, HasMem: true, AllocsPerOp: 2000, BytesPerOp: 10},
		"BenchmarkTinyJump": {NsPerOp: 100, HasMem: true, AllocsPerOp: 4, BytesPerOp: 64},
		"BenchmarkNoMem":    {NsPerOp: 100, HasMem: true, AllocsPerOp: 5},
		"BenchmarkNew":      {NsPerOp: 50},
	})
	rows := compareProfiles(base, fresh, 1.25)
	got := map[string]row{}
	for _, r := range rows {
		got[r.name] = r
	}
	if got["BenchmarkFast"].status != "ok" {
		t.Errorf("Fast: %+v, want ok", got["BenchmarkFast"])
	}
	if r := got["BenchmarkSlow"]; r.status != "FAIL" || !r.timeRegressed || r.allocRegressed {
		t.Errorf("Slow must fail on time only: %+v", r)
	}
	if r := got["BenchmarkLeaky"]; r.status != "FAIL" || !r.allocRegressed || r.timeRegressed {
		t.Errorf("Leaky must fail on allocs only: %+v", r)
	}
	if r := got["BenchmarkTinyJump"]; r.status != "ok" {
		t.Errorf("TinyJump (0→4 allocs, under the absolute slack) must pass: %+v", r)
	}
	// Zero-alloc baseline with a jump beyond the slack: no finite threshold
	// may waive it.
	zb := mkProfile("x", map[string]Entry{"BenchmarkZeroBase": {NsPerOp: 100, HasMem: true}})
	zf := mkProfile("x", map[string]Entry{"BenchmarkZeroBase": {NsPerOp: 100, HasMem: true, AllocsPerOp: 25}})
	zr := compareProfiles(zb, zf, 30)[0]
	if zr.status != "FAIL" || !zr.allocRegressed {
		t.Errorf("0→25 allocs must fail even at threshold 30: %+v", zr)
	}
	if r := got["BenchmarkNoMem"]; r.status != "ok" || r.hasAllocs {
		t.Errorf("NoMem baseline must skip the alloc gate: %+v", r)
	}
	if got["BenchmarkGone"].status != "WARN" || got["BenchmarkNew"].status != "NEW" {
		t.Errorf("Gone/New classification wrong: %+v / %+v", got["BenchmarkGone"], got["BenchmarkNew"])
	}
}

func TestMarkdownReportRendersAllRowKinds(t *testing.T) {
	base := mkProfile("cpuA", map[string]Entry{
		"BenchmarkA": {NsPerOp: 100, HasMem: true, AllocsPerOp: 10},
		"BenchmarkB": {NsPerOp: 100},
	})
	fresh := mkProfile("cpuA", map[string]Entry{
		"BenchmarkA": {NsPerOp: 300, HasMem: true, AllocsPerOp: 10},
		"BenchmarkC": {NsPerOp: 5, HasMem: true, AllocsPerOp: 0},
	})
	md := markdownReport(compareProfiles(base, fresh, 1.25), "cpuA", "cpuA", 1.25, true)
	for _, want := range []string{"| ❌ |", "⚠️ missing", "🆕 new", "3.00x", "`BenchmarkA`"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown report missing %q:\n%s", want, md)
		}
	}
	mismatch := markdownReport(nil, "cpuA", "cpuB", 1.25, false)
	if !strings.Contains(mismatch, "Hardware mismatch") {
		t.Errorf("hardware-mismatch notice missing:\n%s", mismatch)
	}
}
