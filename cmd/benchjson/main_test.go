package main

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMPCBuild/n=20k/k=16/t=4/workers=1-8   1   250000000 ns/op   147.0 mpc-rounds   38716024 B/op   440 allocs/op
BenchmarkMPCBuild/n=20k/k=16/t=4/workers=1-8   1   240000000 ns/op   147.0 mpc-rounds   38700000 B/op   444 allocs/op
BenchmarkSimSortByKey-8                        3    11367015 ns/op          0 B/op        0 allocs/op
BenchmarkOldSchema                             5     1000000 ns/op
PASS
`

func parseString(t *testing.T, s string) Profile {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(s))
	return parseLines(sc)
}

func TestParseRecordsMemColumnsAndMinimum(t *testing.T) {
	prof := parseString(t, sampleBench)
	if prof.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Fatalf("cpu = %q", prof.CPU)
	}
	e, ok := prof.Benchmarks["BenchmarkMPCBuild/n=20k/k=16/t=4/workers=1"]
	if !ok {
		t.Fatalf("missing MPCBuild entry; have %v", prof.Benchmarks)
	}
	if e.NsPerOp != 240000000 {
		t.Errorf("ns_per_op = %v, want the 240000000 minimum", e.NsPerOp)
	}
	if !e.HasMem || e.AllocsPerOp != 440 || e.BytesPerOp != 38700000 {
		t.Errorf("mem columns = (%v B, %v allocs, hasMem=%v), want minimums (38700000, 440, true)", e.BytesPerOp, e.AllocsPerOp, e.HasMem)
	}
	if e.Samples != 2 {
		t.Errorf("samples = %d, want 2", e.Samples)
	}
	zero := prof.Benchmarks["BenchmarkSimSortByKey"]
	if !zero.HasMem || zero.AllocsPerOp != 0 {
		t.Errorf("zero-alloc row must record has_mem with 0 allocs, got %+v", zero)
	}
	old := prof.Benchmarks["BenchmarkOldSchema"]
	if old.HasMem {
		t.Errorf("row without -benchmem columns must not claim mem data: %+v", old)
	}
}

func TestParseCapturesCustomUnits(t *testing.T) {
	// Two samples of a ReportMetric-instrumented benchmark: throughput
	// ("/s") keeps the max across samples, gauges keep the min, and the
	// standard columns never leak into Extra.
	bench := `cpu: fake
BenchmarkSSSP/n=1M/engine=delta/workers=0-8   1   670570688 ns/op   17900000 edges/s   839282688 peak_rss_bytes   120 B/op   3 allocs/op
BenchmarkSSSP/n=1M/engine=delta/workers=0-8   1   680000000 ns/op   17500000 edges/s   839000000 peak_rss_bytes   120 B/op   3 allocs/op
BenchmarkPlain-8                              5     1000000 ns/op   10 B/op   1 allocs/op
`
	prof := parseString(t, bench)
	e := prof.Benchmarks["BenchmarkSSSP/n=1M/engine=delta/workers=0"]
	if e.Extra["edges/s"] != 17900000 {
		t.Errorf("edges/s = %v, want the 17900000 maximum (higher is better)", e.Extra["edges/s"])
	}
	if e.Extra["peak_rss_bytes"] != 839000000 {
		t.Errorf("peak_rss_bytes = %v, want the 839000000 minimum", e.Extra["peak_rss_bytes"])
	}
	for _, std := range []string{"ns/op", "B/op", "allocs/op"} {
		if _, ok := e.Extra[std]; ok {
			t.Errorf("standard unit %q leaked into Extra: %v", std, e.Extra)
		}
	}
	if len(e.Extra) != 2 {
		t.Errorf("Extra = %v, want exactly edges/s and peak_rss_bytes", e.Extra)
	}
	if plain := prof.Benchmarks["BenchmarkPlain"]; plain.Extra != nil {
		t.Errorf("benchmark without custom columns must keep Extra nil, got %v", plain.Extra)
	}
	// The long-standing mpc-rounds column rides the same path.
	rounds := parseString(t, sampleBench).Benchmarks["BenchmarkMPCBuild/n=20k/k=16/t=4/workers=1"]
	if rounds.Extra["mpc-rounds"] != 147 {
		t.Errorf("mpc-rounds = %v, want 147", rounds.Extra["mpc-rounds"])
	}
}

func TestMarshalEmitsExplicitMemZeros(t *testing.T) {
	// A 0-alloc -benchmem row must serialize literal zeros: an omitted
	// column means "not measured", never "measured zero".
	data, err := json.Marshal(Entry{NsPerOp: 5, Samples: 3, HasMem: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"bytes_per_op":0`, `"allocs_per_op":0`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("has_mem entry missing %s: %s", want, data)
		}
	}
	// Rows without mem data still omit the columns entirely.
	data, err = json.Marshal(Entry{NsPerOp: 5, Samples: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, ban := range []string{"bytes_per_op", "allocs_per_op", "has_mem"} {
		if strings.Contains(string(data), ban) {
			t.Errorf("no-mem entry must omit %s: %s", ban, data)
		}
	}
	// Round trip: explicit zeros decode back as measured.
	var e Entry
	if err := json.Unmarshal([]byte(`{"ns_per_op":5,"samples":3,"bytes_per_op":0,"allocs_per_op":0,"has_mem":true}`), &e); err != nil {
		t.Fatal(err)
	}
	if !e.HasMem || e.AllocsPerOp != 0 {
		t.Errorf("round-tripped entry = %+v", e)
	}
}

func TestCompareGatesThroughputUnits(t *testing.T) {
	base := mkProfile("x", map[string]Entry{
		"BenchmarkDrop":  {NsPerOp: 100, Extra: map[string]float64{"edges/s": 1e7}},
		"BenchmarkHold":  {NsPerOp: 100, Extra: map[string]float64{"edges/s": 1e7}},
		"BenchmarkGauge": {NsPerOp: 100, Extra: map[string]float64{"peak_rss_bytes": 1e6}},
		"BenchmarkMixed": {NsPerOp: 100, Extra: map[string]float64{"edges/s": 1e7, "peak_rss_bytes": 1e6}},
	})
	fresh := mkProfile("x", map[string]Entry{
		"BenchmarkDrop":  {NsPerOp: 100, Extra: map[string]float64{"edges/s": 5e6}},
		"BenchmarkHold":  {NsPerOp: 100, Extra: map[string]float64{"edges/s": 9e6}},
		"BenchmarkGauge": {NsPerOp: 100, Extra: map[string]float64{"peak_rss_bytes": 1e9}},
		"BenchmarkMixed": {NsPerOp: 100, Extra: map[string]float64{"edges/s": 9.9e6, "peak_rss_bytes": 2e6}},
	})
	rows := compareProfiles(base, fresh, 1.25)
	got := map[string]row{}
	for _, r := range rows {
		got[r.name] = r
	}
	if r := got["BenchmarkDrop"]; r.status != "FAIL" || !r.extraRegressed {
		t.Errorf("2x edges/s drop must fail: %+v", r)
	}
	if r := got["BenchmarkHold"]; r.status != "ok" {
		t.Errorf("10%% edges/s drop is within the 1.25x threshold: %+v", r)
	}
	if r := got["BenchmarkGauge"]; r.status != "ok" || r.extraRegressed {
		t.Errorf("gauge units (peak_rss_bytes) must never gate: %+v", r)
	}
	if r := got["BenchmarkMixed"]; r.status != "ok" || len(r.extras) != 2 {
		t.Errorf("mixed row must carry both units and pass: %+v", r)
	}
	// Throughput collapsing to zero regresses regardless of threshold.
	zb := mkProfile("x", map[string]Entry{"BenchmarkDead": {NsPerOp: 1, Extra: map[string]float64{"edges/s": 1e7}}})
	zf := mkProfile("x", map[string]Entry{"BenchmarkDead": {NsPerOp: 1, Extra: map[string]float64{"edges/s": 0}}})
	if zr := compareProfiles(zb, zf, 100)[0]; zr.status != "FAIL" {
		t.Errorf("throughput hitting zero must fail even at threshold 100: %+v", zr)
	}
	// The markdown table renders the shared units with the failure marker.
	md := markdownReport(rows, "x", "x", 1.25, true)
	if !strings.Contains(md, "edges/s 1e+07 → 5e+06 ❌") {
		t.Errorf("markdown report missing the regressed edges/s cell:\n%s", md)
	}
	if !strings.Contains(md, "custom units") {
		t.Errorf("markdown header missing the custom-units column:\n%s", md)
	}
}

func mkProfile(cpu string, entries map[string]Entry) Profile {
	return Profile{CPU: cpu, Benchmarks: entries}
}

func TestCompareGatesTimeAndAllocRegressions(t *testing.T) {
	base := mkProfile("x", map[string]Entry{
		"BenchmarkFast":     {NsPerOp: 100, HasMem: true, AllocsPerOp: 1000, BytesPerOp: 10},
		"BenchmarkSlow":     {NsPerOp: 100, HasMem: true, AllocsPerOp: 1000, BytesPerOp: 10},
		"BenchmarkLeaky":    {NsPerOp: 100, HasMem: true, AllocsPerOp: 1000, BytesPerOp: 10},
		"BenchmarkTinyJump": {NsPerOp: 100, HasMem: true, AllocsPerOp: 0, BytesPerOp: 0},
		"BenchmarkNoMem":    {NsPerOp: 100},
		"BenchmarkGone":     {NsPerOp: 100},
	})
	fresh := mkProfile("x", map[string]Entry{
		"BenchmarkFast":     {NsPerOp: 90, HasMem: true, AllocsPerOp: 900, BytesPerOp: 10},
		"BenchmarkSlow":     {NsPerOp: 200, HasMem: true, AllocsPerOp: 1000, BytesPerOp: 10},
		"BenchmarkLeaky":    {NsPerOp: 100, HasMem: true, AllocsPerOp: 2000, BytesPerOp: 10},
		"BenchmarkTinyJump": {NsPerOp: 100, HasMem: true, AllocsPerOp: 4, BytesPerOp: 64},
		"BenchmarkNoMem":    {NsPerOp: 100, HasMem: true, AllocsPerOp: 5},
		"BenchmarkNew":      {NsPerOp: 50},
	})
	rows := compareProfiles(base, fresh, 1.25)
	got := map[string]row{}
	for _, r := range rows {
		got[r.name] = r
	}
	if got["BenchmarkFast"].status != "ok" {
		t.Errorf("Fast: %+v, want ok", got["BenchmarkFast"])
	}
	if r := got["BenchmarkSlow"]; r.status != "FAIL" || !r.timeRegressed || r.allocRegressed {
		t.Errorf("Slow must fail on time only: %+v", r)
	}
	if r := got["BenchmarkLeaky"]; r.status != "FAIL" || !r.allocRegressed || r.timeRegressed {
		t.Errorf("Leaky must fail on allocs only: %+v", r)
	}
	if r := got["BenchmarkTinyJump"]; r.status != "ok" {
		t.Errorf("TinyJump (0→4 allocs, under the absolute slack) must pass: %+v", r)
	}
	// Zero-alloc baseline with a jump beyond the slack: no finite threshold
	// may waive it.
	zb := mkProfile("x", map[string]Entry{"BenchmarkZeroBase": {NsPerOp: 100, HasMem: true}})
	zf := mkProfile("x", map[string]Entry{"BenchmarkZeroBase": {NsPerOp: 100, HasMem: true, AllocsPerOp: 25}})
	zr := compareProfiles(zb, zf, 30)[0]
	if zr.status != "FAIL" || !zr.allocRegressed {
		t.Errorf("0→25 allocs must fail even at threshold 30: %+v", zr)
	}
	if r := got["BenchmarkNoMem"]; r.status != "ok" || r.hasAllocs {
		t.Errorf("NoMem baseline must skip the alloc gate: %+v", r)
	}
	if got["BenchmarkGone"].status != "WARN" || got["BenchmarkNew"].status != "NEW" {
		t.Errorf("Gone/New classification wrong: %+v / %+v", got["BenchmarkGone"], got["BenchmarkNew"])
	}
}

func TestMarkdownReportRendersAllRowKinds(t *testing.T) {
	base := mkProfile("cpuA", map[string]Entry{
		"BenchmarkA": {NsPerOp: 100, HasMem: true, AllocsPerOp: 10},
		"BenchmarkB": {NsPerOp: 100},
	})
	fresh := mkProfile("cpuA", map[string]Entry{
		"BenchmarkA": {NsPerOp: 300, HasMem: true, AllocsPerOp: 10},
		"BenchmarkC": {NsPerOp: 5, HasMem: true, AllocsPerOp: 0},
	})
	md := markdownReport(compareProfiles(base, fresh, 1.25), "cpuA", "cpuA", 1.25, true)
	for _, want := range []string{"| ❌ |", "⚠️ missing", "🆕 new", "3.00x", "`BenchmarkA`"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown report missing %q:\n%s", want, md)
		}
	}
	mismatch := markdownReport(nil, "cpuA", "cpuB", 1.25, false)
	if !strings.Contains(mismatch, "Hardware mismatch") {
		t.Errorf("hardware-mismatch notice missing:\n%s", mismatch)
	}
}
