// Command experiments regenerates every reproduced table and figure
// (DESIGN.md §2, recorded in EXPERIMENTS.md):
//
//	go run ./cmd/experiments            # full sizes (a few minutes)
//	go run ./cmd/experiments -quick     # reduced sizes
//	go run ./cmd/experiments -only T9   # a single experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mpcspanner/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced instance sizes")
	seed := flag.Uint64("seed", 2024, "master seed for workloads and algorithms")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. T1,T9,F1)")
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}

	cfg := bench.Config{Quick: *quick, Seed: *seed}
	start := time.Now()
	ran := 0
	for _, tb := range bench.All(cfg) {
		if len(want) > 0 && !want[tb.ID] {
			continue
		}
		fmt.Println(tb.Format())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched -only=%q\n", *only)
		os.Exit(1)
	}
	fmt.Printf("ran %d experiments in %s (quick=%v, seed=%d)\n", ran, time.Since(start).Round(time.Millisecond), *quick, *seed)
}
