// Command experiments regenerates every reproduced table and figure
// (DESIGN.md §2, recorded in EXPERIMENTS.md):
//
//	go run ./cmd/experiments            # full sizes (a few minutes)
//	go run ./cmd/experiments -quick     # reduced sizes
//	go run ./cmd/experiments -only T9   # a single experiment
//
// Ctrl-C stops between experiments: finished tables are already printed and
// a summary reports how many completed before the interrupt.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mpcspanner/cmd/internal/cliutil"
	"mpcspanner/internal/bench"
	"mpcspanner/internal/par"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced instance sizes")
	seed := flag.Uint64("seed", 2024, "master seed for workloads and algorithms")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. T1,T9,F1)")
	met := cliutil.MetricsFlag()
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}

	cfg := bench.Config{Quick: *quick, Seed: *seed, Metrics: met.Registry()}
	if cfg.Metrics != nil {
		// The harness calls the internal packages directly, so the facade's
		// worker-pool hook never runs; attach the par_* series here.
		par.SetMetrics(cfg.Metrics)
	}
	start := time.Now()
	ran := 0
	canceled := false
	for _, e := range bench.Experiments() {
		if len(want) > 0 && !want[e.ID] {
			continue // skip before running, not after
		}
		if ctx.Err() != nil {
			canceled = true
			break
		}
		tb := e.Run(cfg)
		fmt.Println(tb.Format())
		ran++
	}
	if canceled {
		fmt.Fprintf(os.Stderr, "interrupted after %d experiments in %s; partial results above\n",
			ran, time.Since(start).Round(time.Millisecond))
		os.Exit(130)
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched -only=%q\n", *only)
		os.Exit(1)
	}
	fmt.Printf("ran %d experiments in %s (quick=%v, seed=%d)\n", ran, time.Since(start).Round(time.Millisecond), *quick, *seed)
	if err := met.Dump(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
