// Package cliutil holds the flag-level helpers the cmd/* drivers share, so
// the generator vocabulary stays identical across CLIs.
package cliutil

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"

	"mpcspanner/internal/core"
	"mpcspanner/internal/dist"
	"mpcspanner/internal/graph"
	"mpcspanner/internal/obs"
)

// MakeGraph loads a graph from file when in is non-empty, otherwise
// generates one: gnp|grid|torus|pa|rgg|cycle on n vertices with average (or
// attachment) degree deg and weights uniform in [1, maxW) (unit weights when
// maxW <= 1). With connectify, disconnected outputs are bridged (weight
// maxW) so every distance is finite — the oracle CLI wants that; the
// spanner CLI serves disconnected inputs as-is.
func MakeGraph(in, gen string, n int, deg, maxW float64, seed uint64, connectify bool) (*graph.Graph, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, err := graph.ReadFrom(f)
		if err != nil {
			return nil, err
		}
		if connectify {
			// Bridge at the file's own weight scale, not the -maxw flag:
			// a bridge lighter than real edges would fabricate plausible
			// short cross-component distances.
			bridge := 1.0
			for _, e := range g.Edges() {
				if e.W > bridge {
					bridge = e.W
				}
			}
			g = graph.Connectify(g, bridge)
		}
		return g, nil
	}
	w := graph.UnitWeight
	if maxW > 1 {
		w = graph.UniformWeight(1, maxW)
	}
	side := int(math.Sqrt(float64(n)))
	var g *graph.Graph
	switch gen {
	case "gnp":
		g = graph.GNP(n, deg/float64(n), w, seed)
	case "grid":
		g = graph.Grid(side, side, w, seed)
	case "torus":
		g = graph.Torus(side, side, w, seed)
	case "pa":
		g = graph.PreferentialAttachment(n, int(math.Max(1, deg)), w, seed)
	case "rgg":
		g = graph.RandomGeometric(n, math.Sqrt(deg/(math.Pi*float64(n))), true, w, seed)
	case "cycle":
		g = graph.Cycle(n, w, seed)
	default:
		return nil, fmt.Errorf("unknown generator %q", gen)
	}
	if connectify {
		g = graph.Connectify(g, math.Max(1, maxW))
	}
	return g, nil
}

// GraphConfig holds the shared graph-selection flags (-gen, -in, -n, -deg,
// -maxw, -seed) after parsing. Register them with GraphFlags; materialize
// the graph with Make. Keeping the registration in one place is what makes
// the flag vocabulary identical across cmd/oracle, cmd/oracled serve, and
// any future driver.
type GraphConfig struct {
	Gen  string
	In   string
	N    int
	Deg  float64
	MaxW float64
	Seed uint64
}

// GraphFlags registers the shared graph-selection flags on fs (use
// flag.CommandLine for single-command drivers, a subcommand's own FlagSet
// otherwise) and returns the config the parsed values land in.
func GraphFlags(fs *flag.FlagSet) *GraphConfig {
	c := &GraphConfig{}
	fs.StringVar(&c.Gen, "gen", "gnp", "generator: gnp|grid|torus|pa|rgg|cycle")
	fs.StringVar(&c.In, "in", "", "read graph from file (overrides -gen)")
	fs.IntVar(&c.N, "n", 10000, "vertices")
	fs.Float64Var(&c.Deg, "deg", 10, "average degree (gnp) / attachment degree (pa)")
	fs.Float64Var(&c.MaxW, "maxw", 100, "maximum edge weight (1 = unweighted)")
	fs.Uint64Var(&c.Seed, "seed", 1, "random seed")
	return c
}

// Make materializes the configured graph via MakeGraph. Call after the
// FlagSet has parsed.
func (c *GraphConfig) Make(connectify bool) (*graph.Graph, error) {
	return MakeGraph(c.In, c.Gen, c.N, c.Deg, c.MaxW, c.Seed, connectify)
}

// ArtifactConfig holds the shared artifact persistence flags (-save, -load)
// after parsing. Register them with ArtifactFlags next to GraphFlags;
// Validate enforces the cross-flag rules after parsing. -load replaces the
// generator path entirely, so combining it with any explicitly set graph
// flag — or with -save, which needs a build to save — is a configuration
// error, reported as a typed *core.OptionError like every other rejected
// option.
type ArtifactConfig struct {
	Save string
	Load string
	fs   *flag.FlagSet
}

// ArtifactFlags registers -save and -load on fs and returns the config the
// parsed values land in.
func ArtifactFlags(fs *flag.FlagSet) *ArtifactConfig {
	c := &ArtifactConfig{fs: fs}
	fs.StringVar(&c.Save, "save", "", "save the built spanner as a versioned artifact at this path")
	fs.StringVar(&c.Load, "load", "", "serve a saved artifact instead of generating and building (conflicts with graph flags)")
	return c
}

// graphFlagNames are the GraphFlags names that conflict with -load.
var graphFlagNames = map[string]bool{
	"gen": true, "in": true, "n": true, "deg": true, "maxw": true, "seed": true,
}

// Validate enforces the flag-combination rules. Call after fs.Parse.
func (c *ArtifactConfig) Validate() error {
	if c.Load == "" {
		return nil
	}
	if c.Save != "" {
		return &core.OptionError{Field: "-save", Value: c.Save,
			Reason: "conflicts with -load (nothing is built to save)"}
	}
	var conflict error
	c.fs.Visit(func(f *flag.Flag) {
		if conflict == nil && graphFlagNames[f.Name] {
			conflict = &core.OptionError{Field: "-" + f.Name, Value: f.Value.String(),
				Reason: "conflicts with -load (the artifact is the graph)"}
		}
	})
	return conflict
}

// SSSPConfig holds the shared row-fill engine flags (-sssp, -delta) after
// parsing. Register them with SSSPFlags; resolve them with Engine after the
// FlagSet has parsed. One registration point keeps the engine vocabulary
// identical across cmd/oracle and cmd/oracled serve.
type SSSPConfig struct {
	Name  string
	Delta float64
}

// SSSPFlags registers -sssp and -delta on fs and returns the config the
// parsed values land in.
func SSSPFlags(fs *flag.FlagSet) *SSSPConfig {
	c := &SSSPConfig{}
	fs.StringVar(&c.Name, "sssp", "auto",
		"row-fill SSSP engine: auto|heap|delta-stepping (every engine is bit-identical; this is a speed knob)")
	fs.Float64Var(&c.Delta, "delta", 0,
		"delta-stepping bucket width Δ (0 = auto-tune to avg weight / avg degree)")
	return c
}

// Engine resolves -sssp to the dist engine. Call after fs.Parse; bad names
// come back as the same typed *core.OptionError the libraries use. The Δ
// override travels separately (SSSPConfig.Delta) because the facade, not the
// flag layer, owns the heap-has-no-Δ combination rule.
func (c *SSSPConfig) Engine() (dist.Engine, error) {
	e, err := dist.ParseEngine(c.Name)
	if err != nil {
		return 0, &core.OptionError{Field: "-sssp", Value: c.Name,
			Reason: "unknown engine (want auto, heap, or delta-stepping)"}
	}
	return e, nil
}

// MemoryConfig holds the shared -memory flag after parsing: the byte budget
// on the MPC build's resident tuple store (out-of-core builds, see
// mpcspanner.WithMemoryBudget). Register it with MemoryFlag; resolve with
// Budget after the FlagSet has parsed.
type MemoryConfig struct {
	Spec string
	fs   *flag.FlagSet
}

// MemoryFlag registers -memory on fs and returns the config the parsed
// value lands in.
func MemoryFlag(fs *flag.FlagSet) *MemoryConfig {
	c := &MemoryConfig{fs: fs}
	fs.StringVar(&c.Spec, "memory", "",
		"byte budget for the MPC build's resident tuples, spilling past it to disk"+
			" (e.g. 512MiB, 2GiB, 64K; empty = fully resident)")
	return c
}

// ParseBytes parses a human byte size: a positive integer with an optional
// binary-unit suffix KiB/MiB/GiB (or the shorthand K/M/G — also binary),
// case-insensitive. Plain digits are bytes.
func ParseBytes(s string) (int64, error) {
	digits := 0
	for digits < len(s) && s[digits] >= '0' && s[digits] <= '9' {
		digits++
	}
	if digits == 0 {
		return 0, fmt.Errorf("size %q must start with digits", s)
	}
	var n int64
	for _, d := range s[:digits] {
		if n > (math.MaxInt64-int64(d-'0'))/10 {
			return 0, fmt.Errorf("size %q overflows", s)
		}
		n = n*10 + int64(d-'0')
	}
	var shift uint
	switch suffix := s[digits:]; {
	case suffix == "" || eqFold(suffix, "B"):
	case eqFold(suffix, "K") || eqFold(suffix, "KiB"):
		shift = 10
	case eqFold(suffix, "M") || eqFold(suffix, "MiB"):
		shift = 20
	case eqFold(suffix, "G") || eqFold(suffix, "GiB"):
		shift = 30
	default:
		return 0, fmt.Errorf("size %q has unknown unit %q (want KiB, MiB, or GiB)", s, suffix)
	}
	if n > math.MaxInt64>>shift {
		return 0, fmt.Errorf("size %q overflows", s)
	}
	n <<= shift
	if n <= 0 {
		return 0, fmt.Errorf("size %q must be positive", s)
	}
	return n, nil
}

// eqFold is strings.EqualFold for the pure-ASCII unit suffixes.
func eqFold(s, t string) bool {
	if len(s) != len(t) {
		return false
	}
	for i := 0; i < len(s); i++ {
		a, b := s[i], t[i]
		if 'A' <= a && a <= 'Z' {
			a += 'a' - 'A'
		}
		if 'A' <= b && b <= 'Z' {
			b += 'a' - 'A'
		}
		if a != b {
			return false
		}
	}
	return true
}

// Budget resolves -memory to a byte budget (0 when the flag was not given).
// conflicts names flags that rule out a budgeted build when set — a daemon
// serving a prebuilt artifact, an exact-mode oracle — and requiresSet, when
// non-empty, names a flag that must be set for -memory to mean anything
// (e.g. cmd/spanner's -mpc: only the MPC plane spills). Violations are
// typed *core.OptionError, like every rejected option.
func (c *MemoryConfig) Budget(conflicts []string, requiresSet string) (int64, error) {
	if c.Spec == "" {
		return 0, nil
	}
	set := map[string]bool{}
	c.fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	for _, name := range conflicts {
		if set[name] {
			return 0, &core.OptionError{Field: "-memory", Value: c.Spec,
				Reason: "conflicts with -" + name + " (no MPC build runs, so nothing spills)"}
		}
	}
	if requiresSet != "" && !set[requiresSet] {
		return 0, &core.OptionError{Field: "-memory", Value: c.Spec,
			Reason: "only the MPC plane spills (add -" + requiresSet + ")"}
	}
	n, err := ParseBytes(c.Spec)
	if err != nil {
		return 0, &core.OptionError{Field: "-memory", Value: c.Spec, Reason: err.Error()}
	}
	return n, nil
}

// MetricsSink wires the shared -metrics flag: every CLI that constructs
// spanners or serves distances registers it the same way, so one flag
// vocabulary covers the whole cmd/* family. The zero path means "off" —
// Registry then returns nil and the instrumented libraries run their
// uninstrumented (allocation-free) paths.
type MetricsSink struct {
	path string
	reg  *obs.Registry
}

// MetricsFlag registers -metrics on the default FlagSet and returns the
// sink. Call Registry after flag.Parse to get the registry (nil when the
// flag was not given) and Dump once the run finishes.
func MetricsFlag() *MetricsSink {
	m := &MetricsSink{}
	flag.StringVar(&m.path, "metrics", "",
		"dump Prometheus-text metrics to this file when done ('-' = stderr; off when empty)")
	return m
}

// Registry returns the registry backing the flag, creating it on first use;
// nil when -metrics was not given.
func (m *MetricsSink) Registry() *obs.Registry {
	if m == nil || m.path == "" {
		return nil
	}
	if m.reg == nil {
		m.reg = obs.NewRegistry()
	}
	return m.reg
}

// Dump writes the accumulated series in Prometheus text exposition to the
// flag's destination. A no-op when -metrics was not given.
func (m *MetricsSink) Dump() error {
	if m.Registry() == nil {
		return nil
	}
	if m.path == "-" {
		w := bufio.NewWriter(os.Stderr)
		if err := m.reg.WriteProm(w); err != nil {
			return err
		}
		return w.Flush()
	}
	f, err := os.Create(m.path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := m.reg.WriteProm(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
