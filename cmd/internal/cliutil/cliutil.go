// Package cliutil holds the flag-level helpers the cmd/* drivers share, so
// the generator vocabulary stays identical across CLIs.
package cliutil

import (
	"fmt"
	"math"
	"os"

	"mpcspanner/internal/graph"
)

// MakeGraph loads a graph from file when in is non-empty, otherwise
// generates one: gnp|grid|torus|pa|rgg|cycle on n vertices with average (or
// attachment) degree deg and weights uniform in [1, maxW) (unit weights when
// maxW <= 1). With connectify, disconnected outputs are bridged (weight
// maxW) so every distance is finite — the oracle CLI wants that; the
// spanner CLI serves disconnected inputs as-is.
func MakeGraph(in, gen string, n int, deg, maxW float64, seed uint64, connectify bool) (*graph.Graph, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, err := graph.ReadFrom(f)
		if err != nil {
			return nil, err
		}
		if connectify {
			// Bridge at the file's own weight scale, not the -maxw flag:
			// a bridge lighter than real edges would fabricate plausible
			// short cross-component distances.
			bridge := 1.0
			for _, e := range g.Edges() {
				if e.W > bridge {
					bridge = e.W
				}
			}
			g = graph.Connectify(g, bridge)
		}
		return g, nil
	}
	w := graph.UnitWeight
	if maxW > 1 {
		w = graph.UniformWeight(1, maxW)
	}
	side := int(math.Sqrt(float64(n)))
	var g *graph.Graph
	switch gen {
	case "gnp":
		g = graph.GNP(n, deg/float64(n), w, seed)
	case "grid":
		g = graph.Grid(side, side, w, seed)
	case "torus":
		g = graph.Torus(side, side, w, seed)
	case "pa":
		g = graph.PreferentialAttachment(n, int(math.Max(1, deg)), w, seed)
	case "rgg":
		g = graph.RandomGeometric(n, math.Sqrt(deg/(math.Pi*float64(n))), true, w, seed)
	case "cycle":
		g = graph.Cycle(n, w, seed)
	default:
		return nil, fmt.Errorf("unknown generator %q", gen)
	}
	if connectify {
		g = graph.Connectify(g, math.Max(1, maxW))
	}
	return g, nil
}
