package cliutil

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpcspanner/internal/core"
	"mpcspanner/internal/graph"
)

func TestGeneratorDispatch(t *testing.T) {
	cases := []struct {
		gen string
		n   int
	}{
		{"gnp", 200},
		{"grid", 100}, // side 10
		{"torus", 100},
		{"pa", 150},
		{"rgg", 120},
		{"cycle", 80},
	}
	for _, c := range cases {
		g, err := MakeGraph("", c.gen, c.n, 6, 10, 7, false)
		if err != nil {
			t.Fatalf("%s: %v", c.gen, err)
		}
		if g.N() == 0 || g.M() == 0 {
			t.Fatalf("%s: degenerate graph n=%d m=%d", c.gen, g.N(), g.M())
		}
		// grid/torus round n down to side²; everything else keeps n.
		if c.gen != "grid" && c.gen != "torus" && g.N() != c.n {
			t.Fatalf("%s: n=%d, want %d", c.gen, g.N(), c.n)
		}
	}
}

func TestUnknownGeneratorErrors(t *testing.T) {
	if _, err := MakeGraph("", "nope", 100, 4, 10, 1, false); err == nil {
		t.Fatal("unknown generator accepted")
	} else if !strings.Contains(err.Error(), "nope") {
		t.Fatalf("error should name the generator: %v", err)
	}
}

func TestWeightFlagSelectsUnitVsUniform(t *testing.T) {
	unit, err := MakeGraph("", "cycle", 50, 2, 1, 3, false) // maxW <= 1: unit
	if err != nil {
		t.Fatal(err)
	}
	if !unit.IsUnit() {
		t.Fatal("maxW=1 should produce unit weights")
	}
	weighted, err := MakeGraph("", "cycle", 50, 2, 9, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if weighted.IsUnit() {
		t.Fatal("maxW=9 should produce non-unit weights")
	}
}

func TestSeedDeterminism(t *testing.T) {
	a, err := MakeGraph("", "gnp", 200, 5, 10, 42, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MakeGraph("", "gnp", 200, 5, 10, 42, false)
	if err != nil {
		t.Fatal(err)
	}
	if a.M() != b.M() {
		t.Fatalf("equal seeds gave different graphs: m=%d vs %d", a.M(), b.M())
	}
	c, err := MakeGraph("", "gnp", 200, 5, 10, 43, false)
	if err != nil {
		t.Fatal(err)
	}
	if a.M() == c.M() && a.TotalWeight() == c.TotalWeight() {
		t.Fatal("different seeds produced an identical graph (suspicious)")
	}
}

func TestConnectifyFlag(t *testing.T) {
	// Two distant RGG clusters are almost surely disconnected at this radius;
	// with connectify the output must be connected.
	g, err := MakeGraph("", "gnp", 120, 0.5, 5, 9, true)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("connectify did not connect the generated graph")
	}
	raw, err := MakeGraph("", "gnp", 120, 0.5, 5, 9, false)
	if err != nil {
		t.Fatal(err)
	}
	if raw.Connected() {
		t.Skip("generated graph happened to be connected; flag untestable at this seed")
	}
}

func writeGraphFile(t *testing.T, g *graph.Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadFromFile(t *testing.T) {
	orig := graph.GNP(80, 0.1, graph.UniformWeight(1, 7), 5)
	path := writeGraphFile(t, orig)
	g, err := MakeGraph(path, "ignored", 0, 0, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != orig.N() || g.M() != orig.M() {
		t.Fatalf("roundtrip mismatch: n=%d m=%d vs n=%d m=%d", g.N(), g.M(), orig.N(), orig.M())
	}
}

func TestLoadFromFileConnectifyUsesFileScale(t *testing.T) {
	// Disconnected two-component graph with heavy edges: the bridge must be
	// at the file's weight scale (>= max edge weight), not the -maxw flag.
	orig := graph.MustNew(4, []graph.Edge{
		{U: 0, V: 1, W: 50},
		{U: 2, V: 3, W: 40},
	})
	path := writeGraphFile(t, orig)
	g, err := MakeGraph(path, "", 0, 0, 1, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("connectify did not bridge the file graph")
	}
	for _, e := range g.Edges()[orig.M():] {
		if e.W < 50 {
			t.Fatalf("bridge weight %v below the file's weight scale 50", e.W)
		}
	}
}

func TestLoadMissingFileErrors(t *testing.T) {
	if _, err := MakeGraph(filepath.Join(t.TempDir(), "absent.txt"), "", 0, 0, 0, 0, false); err == nil {
		t.Fatal("missing input file accepted")
	}
}

func TestGraphFlagsDefaultsAndParse(t *testing.T) {
	// Defaults: registering on a fresh FlagSet and parsing nothing must give
	// the documented vocabulary every cmd/* driver shares.
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c := GraphFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c.Gen != "gnp" || c.In != "" || c.N != 10000 || c.Deg != 10 || c.MaxW != 100 || c.Seed != 1 {
		t.Fatalf("defaults drifted: %+v", *c)
	}

	// Parsed values land in the config, and Make materializes them exactly
	// as the underlying MakeGraph call would.
	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	c = GraphFlags(fs)
	if err := fs.Parse([]string{"-gen", "grid", "-n", "100", "-maxw", "7", "-seed", "12"}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Make(false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MakeGraph("", "grid", 100, 10, 7, 12, false)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != want.N() || got.M() != want.M() || got.TotalWeight() != want.TotalWeight() {
		t.Fatalf("GraphConfig.Make diverged from MakeGraph: n=%d m=%d w=%v vs n=%d m=%d w=%v",
			got.N(), got.M(), got.TotalWeight(), want.N(), want.M(), want.TotalWeight())
	}

	// The flag vocabulary itself is part of the contract: two drivers that
	// both call GraphFlags must expose identical flag names.
	for _, name := range []string{"gen", "in", "n", "deg", "maxw", "seed"} {
		if fs.Lookup(name) == nil {
			t.Fatalf("GraphFlags did not register -%s", name)
		}
	}
}

func TestGraphFlagsMakePropagatesErrors(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c := GraphFlags(fs)
	if err := fs.Parse([]string{"-gen", "bogus"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Make(false); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("Make must surface the unknown-generator error, got %v", err)
	}
}

func TestLoadMalformedFileErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(path, []byte("this is not a graph\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := MakeGraph(path, "", 0, 0, 0, 0, false); err == nil {
		t.Fatal("malformed input file accepted")
	}
}

func TestArtifactFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	ac := ArtifactFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if ac.Save != "" || ac.Load != "" {
		t.Fatalf("defaults drifted: %+v", *ac)
	}
	if err := ac.Validate(); err != nil {
		t.Fatalf("empty config must validate: %v", err)
	}
	for _, name := range []string{"save", "load"} {
		if fs.Lookup(name) == nil {
			t.Fatalf("ArtifactFlags did not register -%s", name)
		}
	}
}

func TestArtifactFlagsValidCombinations(t *testing.T) {
	cases := [][]string{
		{"-save", "out.art"},
		{"-save", "out.art", "-gen", "grid", "-n", "100"},
		{"-load", "in.art"},
	}
	for _, args := range cases {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		GraphFlags(fs)
		ac := ArtifactFlags(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		if err := ac.Validate(); err != nil {
			t.Fatalf("%v rejected: %v", args, err)
		}
	}
}

func TestArtifactFlagsConflicts(t *testing.T) {
	cases := []struct {
		args      []string
		wantField string
	}{
		{[]string{"-load", "in.art", "-save", "out.art"}, "-save"},
		{[]string{"-load", "in.art", "-gen", "grid"}, "-gen"},
		{[]string{"-load", "in.art", "-n", "500"}, "-n"},
		{[]string{"-load", "in.art", "-seed", "7"}, "-seed"},
		{[]string{"-load", "in.art", "-in", "g.txt"}, "-in"},
	}
	for _, tc := range cases {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		GraphFlags(fs)
		ac := ArtifactFlags(fs)
		if err := fs.Parse(tc.args); err != nil {
			t.Fatal(err)
		}
		err := ac.Validate()
		if err == nil {
			t.Fatalf("%v accepted", tc.args)
		}
		var oe *core.OptionError
		if !errors.As(err, &oe) {
			t.Fatalf("%v: want *core.OptionError, got %v", tc.args, err)
		}
		if oe.Field != tc.wantField {
			t.Fatalf("%v: error names %q, want %q", tc.args, oe.Field, tc.wantField)
		}
	}
}

func TestArtifactFlagsLoadTolerantOfOtherFlags(t *testing.T) {
	// Only graph flags and -save conflict with -load; cache and metrics
	// flags configure the serving side and remain legal.
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	GraphFlags(fs)
	ac := ArtifactFlags(fs)
	other := fs.Int("rows", 0, "")
	if err := fs.Parse([]string{"-load", "in.art", "-rows", "64"}); err != nil {
		t.Fatal(err)
	}
	if err := ac.Validate(); err != nil {
		t.Fatalf("-rows with -load rejected: %v", err)
	}
	if *other != 64 {
		t.Fatal("unrelated flag lost its value")
	}
}

func TestParseBytes(t *testing.T) {
	good := map[string]int64{
		"1":      1,
		"4096":   4096,
		"64K":    64 << 10,
		"64KiB":  64 << 10,
		"64kib":  64 << 10,
		"512MiB": 512 << 20,
		"512m":   512 << 20,
		"2GiB":   2 << 30,
		"2g":     2 << 30,
		"123B":   123,
	}
	for spec, want := range good {
		got, err := ParseBytes(spec)
		if err != nil {
			t.Errorf("ParseBytes(%q): %v", spec, err)
		} else if got != want {
			t.Errorf("ParseBytes(%q) = %d, want %d", spec, got, want)
		}
	}
	bad := []string{"", "0", "0KiB", "-1", "KiB", "12XB", "1.5GiB", "64 KiB",
		"99999999999999999999", "9999999999GiB"}
	for _, spec := range bad {
		if n, err := ParseBytes(spec); err == nil {
			t.Errorf("ParseBytes(%q) accepted as %d", spec, n)
		}
	}
}

func TestMemoryFlagBudget(t *testing.T) {
	parse := func(args ...string) (*MemoryConfig, *flag.FlagSet) {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		fs.Bool("mpc", false, "")
		fs.String("load", "", "")
		fs.Bool("exact", false, "")
		mc := MemoryFlag(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		return mc, fs
	}

	// Unset flag: zero budget, no validation at all.
	mc, _ := parse()
	if n, err := mc.Budget([]string{"load", "exact"}, "mpc"); n != 0 || err != nil {
		t.Fatalf("unset -memory: got (%d, %v), want (0, nil)", n, err)
	}

	// Happy path with the requires-plane rule satisfied.
	mc, _ = parse("-memory", "64KiB", "-mpc")
	n, err := mc.Budget([]string{"load", "exact"}, "mpc")
	if err != nil || n != 64<<10 {
		t.Fatalf("-memory 64KiB -mpc: got (%d, %v)", n, err)
	}

	// Missing required plane flag.
	mc, _ = parse("-memory", "64KiB")
	if _, err := mc.Budget(nil, "mpc"); err == nil {
		t.Fatal("-memory without -mpc accepted")
	} else {
		var oe *core.OptionError
		if !errors.As(err, &oe) || oe.Field != "-memory" {
			t.Fatalf("want *core.OptionError on -memory, got %v", err)
		}
		if !strings.Contains(oe.Reason, "-mpc") {
			t.Fatalf("error should name the missing flag: %v", err)
		}
	}

	// Conflicting plane flags.
	conflictArgs := map[string][]string{
		"load":  {"-memory", "1GiB", "-load", "in.art"},
		"exact": {"-memory", "1GiB", "-exact"},
	}
	for conflict, args := range conflictArgs {
		mc, _ = parse(args...)
		if _, err := mc.Budget([]string{"load", "exact"}, ""); err == nil {
			t.Fatalf("-memory with -%s accepted", conflict)
		} else {
			var oe *core.OptionError
			if !errors.As(err, &oe) || oe.Field != "-memory" {
				t.Fatalf("-%s: want *core.OptionError on -memory, got %v", conflict, err)
			}
			if !strings.Contains(oe.Reason, "-"+conflict) {
				t.Fatalf("-%s: error should name the conflict: %v", conflict, err)
			}
		}
	}

	// Bad size text surfaces as the same typed error.
	mc, _ = parse("-memory", "lots", "-mpc")
	if _, err := mc.Budget(nil, "mpc"); err == nil {
		t.Fatal("-memory lots accepted")
	} else {
		var oe *core.OptionError
		if !errors.As(err, &oe) || oe.Field != "-memory" {
			t.Fatalf("want *core.OptionError on -memory, got %v", err)
		}
	}
}
