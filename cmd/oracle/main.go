// Command oracle is the serving-layer driver: it loads or generates a graph,
// builds the Corollary 1.4 spanner (unless -exact), wraps it in a cached
// distance-serving Session, and answers (source, target) queries from a
// pairs file, stdin, or a synthetic Zipf workload.
//
//	go run ./cmd/oracle -gen gnp -n 20000 -deg 10 -synth 50000 -quiet
//	go run ./cmd/oracle -in graph.txt -pairs queries.txt
//	echo "0 99" | go run ./cmd/oracle -gen grid -n 10000 -exact
//
// Pairs files hold one "u v" pair per line ('#' comments allowed). Results
// go to stdout, one distance per line in input order; cache statistics and
// timings go to stderr. Ctrl-C cancels the build (and any in-flight batch)
// at its next checkpoint; already-served batches are flushed.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	_ "net/http/pprof" // -listen exposes /debug/pprof alongside /metrics
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mpcspanner"
	"mpcspanner/cmd/internal/cliutil"
	"mpcspanner/internal/apsp"
	"mpcspanner/internal/artifact"
	"mpcspanner/internal/oracle"
)

func main() {
	gc := cliutil.GraphFlags(flag.CommandLine)
	ac := cliutil.ArtifactFlags(flag.CommandLine)
	k := flag.Int("k", 0, "spanner stretch parameter (0 = Corollary 1.4's ⌈log₂ n⌉)")
	t := flag.Int("t", 0, "epoch length (0 = default)")
	exact := flag.Bool("exact", false, "serve exact distances on the input graph (skip the spanner)")
	pairs := flag.String("pairs", "-", "pairs file, '-' = stdin (ignored with -synth)")
	synth := flag.Int("synth", 0, "generate this many Zipf-source queries instead of reading pairs")
	zipf := flag.Float64("zipf", 1.2, "Zipf exponent of the -synth source distribution")
	shards := flag.Int("shards", 0, "cache shards (0 = default)")
	rows := flag.Int("rows", 0, "cache budget in resident rows (0 = default)")
	workers := flag.Int("workers", 0, "batch worker pool size (0 = NumCPU)")
	sscfg := cliutil.SSSPFlags(flag.CommandLine)
	batch := flag.Int("batch", 1024, "serve queries in batches of this size (stats then show cross-batch cache hits); <= 0 = one batch")
	quiet := flag.Bool("quiet", false, "suppress per-query output, print stats only")
	listen := flag.String("listen", "", "serve live /metrics and /debug/pprof on this address while running (e.g. :9090)")
	mem := cliutil.MemoryFlag(flag.CommandLine)
	met := cliutil.MetricsFlag()
	flag.Parse()
	if err := ac.Validate(); err != nil {
		log.Fatal(err)
	}
	budget, err := mem.Budget([]string{"exact", "load"}, "")
	if err != nil {
		log.Fatal(err)
	}

	// One registry feeds the build (mpc_* series), the serving oracle
	// (oracle_* series), the -metrics dump and the -listen endpoint. -listen
	// alone instruments too: a live /metrics is pointless uninstrumented.
	reg := met.Registry()
	if *listen != "" {
		if reg == nil {
			reg = mpcspanner.NewMetrics()
		}
		http.Handle("/metrics", reg.Handler())
		go func() {
			if err := http.ListenAndServe(*listen, nil); err != nil {
				log.Fatalf("-listen %s: %v", *listen, err)
			}
		}()
		fmt.Fprintf(os.Stderr, "listening on %s (/metrics, /debug/pprof)\n", *listen)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// -load serves a saved artifact: the graph (and any frozen rows) come
	// from the file, so the generator path is skipped entirely.
	var art *mpcspanner.Artifact
	var g *mpcspanner.Graph
	if ac.Load != "" {
		art, err = mpcspanner.Open(ctx, ac.Load)
		if err != nil {
			log.Fatal(err)
		}
		defer art.Close()
		g = art.Graph()
		fmt.Fprintf(os.Stderr, "artifact: %s checksum=%s mapped=%v rows=%d fingerprint=%s\n",
			ac.Load, art.Checksum(), art.Mapped(), artifact.RowsOf(art).Len(), art.Fingerprint())
	} else {
		// Bridge disconnected inputs so every served distance is finite —
		// except in -exact mode, where the input graph must be served
		// untouched and cross-component queries correctly answer +Inf.
		g, err = gc.Make(!*exact)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "graph: n=%d m=%d\n", g.N(), g.M())

	// Load and validate the workload first: a typo in a pairs file must fail
	// in milliseconds, not after the spanner build. The spanner keeps the
	// vertex set, so bounds checked against g hold for the served graph too.
	var queries []oracle.Pair
	if *synth > 0 {
		if *zipf <= 0 {
			log.Fatalf("-zipf exponent must be positive, got %g", *zipf)
		}
		if g.N() == 0 {
			log.Fatal("cannot synthesize queries on an empty graph")
		}
		queries = oracle.ZipfWorkload(g.N(), *synth, *zipf, gc.Seed)
	} else if queries, err = readPairs(*pairs, g.N()); err != nil {
		log.Fatal(err)
	}

	serve := g
	if !*exact && art == nil {
		kk := *k
		if kk <= 0 {
			kk, _ = apsp.Params(g.N(), 0) // Corollary 1.4's k = ⌈log₂ n⌉
		}
		tt := *t
		if tt <= 0 {
			tt = int(math.Max(1, math.Ceil(math.Log2(float64(kk)))))
		}
		start := time.Now()
		// Build on the simulated MPC plane — bit-identical to the local
		// engine for equal seeds, and the plane the mpc_* round/load series
		// on /metrics describe.
		buildOpts := []mpcspanner.Option{
			mpcspanner.WithAlgorithm(mpcspanner.AlgoMPC),
			mpcspanner.WithK(kk), mpcspanner.WithT(tt), mpcspanner.WithSeed(gc.Seed),
			mpcspanner.WithMetrics(reg),
		}
		if budget > 0 {
			buildOpts = append(buildOpts, mpcspanner.WithMemoryBudget(budget))
		}
		res, err := mpcspanner.Build(ctx, g, buildOpts...)
		if err != nil {
			if errors.Is(err, mpcspanner.ErrCanceled) {
				fmt.Fprintln(os.Stderr, "canceled during the spanner build; no queries served")
			}
			log.Fatal(err)
		}
		serve = res.Spanner()
		fmt.Fprintf(os.Stderr, "spanner: k=%d %d/%d edges, stretch <= %.2f, %d simulated rounds, built in %v\n",
			kk, serve.M(), g.M(), mpcspanner.StretchBound(kk, tt), res.MPC.Rounds,
			time.Since(start).Round(time.Millisecond))
		if res.MPC.MemoryBudget > 0 {
			fmt.Fprintf(os.Stderr, "extmem: budget=%d spilled=%d runs=%d mergePasses=%d\n",
				res.MPC.MemoryBudget, res.MPC.SpilledBytes, res.MPC.SpillRuns, res.MPC.MergePasses)
		}
	}

	engine, err := sscfg.Engine()
	if err != nil {
		log.Fatal(err)
	}
	cacheOpts := []mpcspanner.Option{
		mpcspanner.WithCacheShards(*shards), mpcspanner.WithCacheRows(*rows),
		mpcspanner.WithWorkers(*workers), mpcspanner.WithMetrics(reg),
		mpcspanner.WithSSSP(engine),
	}
	if sscfg.Delta != 0 {
		cacheOpts = append(cacheOpts, mpcspanner.WithDelta(sscfg.Delta))
	}
	var s *mpcspanner.Session
	if art != nil {
		s, err = mpcspanner.Serve(ctx, nil,
			append(cacheOpts, mpcspanner.WithArtifact(art))...)
	} else {
		s, err = mpcspanner.Serve(ctx, serve,
			append(cacheOpts, mpcspanner.WithExact())...)
	}
	if err != nil {
		log.Fatal(err)
	}
	sssp := s.SSSP()
	fmt.Fprintf(os.Stderr, "sssp: engine=%s delta=%g\n", sssp.Engine, sssp.Delta)
	if *listen != "" {
		// Advertise the resolved engine on the -listen mux so fleet operators
		// can confirm replicas agree, mirroring oracled's /v1/info block.
		// Registered after the session resolves it, so the handler never
		// races session creation; until then the path simply 404s.
		http.HandleFunc("/sssp", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, "{\"engine\":%q,\"delta\":%g}\n", sssp.Engine, sssp.Delta)
		})
	}

	bs := *batch
	if bs <= 0 || bs > len(queries) {
		bs = len(queries)
	}
	start := time.Now()
	dists := make([]float64, 0, len(queries))
	for lo := 0; lo < len(queries); lo += bs {
		hi := lo + bs
		if hi > len(queries) {
			hi = len(queries)
		}
		part, err := s.QueryMany(ctx, queries[lo:hi])
		if err != nil {
			if errors.Is(err, mpcspanner.ErrCanceled) {
				fmt.Fprintf(os.Stderr, "canceled mid-serve: %d/%d queries answered\n", lo, len(queries))
				queries = queries[:lo]
				break
			}
			log.Fatal(err)
		}
		dists = append(dists, part...)
	}
	elapsed := time.Since(start)

	if !*quiet {
		w := bufio.NewWriter(os.Stdout)
		for i := range dists {
			fmt.Fprintf(w, "%d %d %g\n", queries[i].U, queries[i].V, dists[i])
		}
		w.Flush()
	}
	st := s.Stats()
	perQ := float64(elapsed.Nanoseconds()) / math.Max(1, float64(len(dists)))
	fmt.Fprintf(os.Stderr, "served %d queries in %v (%.0f ns/query)\n",
		len(dists), elapsed.Round(time.Microsecond), perQ)
	fmt.Fprintf(os.Stderr, "cache: hits=%d misses=%d evictions=%d resident=%d\n",
		st.Hits, st.Misses, st.Evictions, st.Resident)
	if *synth > 0 && reg != nil {
		if h := reg.Snapshot().Histogram("oracle_row_seconds"); h != nil && h.Count > 0 {
			fmt.Fprintf(os.Stderr, "row latency (%d rows): p50=%v p95=%v p99=%v\n", h.Count,
				quantDur(h, 0.50), quantDur(h, 0.95), quantDur(h, 0.99))
		}
	}
	if ac.Save != "" {
		// Snapshot the session after serving, so every row the workload
		// warmed is frozen into the artifact and a future -load starts hot.
		if err := s.Save(ac.Save); err != nil {
			log.Fatal(err)
		}
		a, err := mpcspanner.Open(ctx, ac.Save)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "artifact: saved to %s checksum=%s rows=%d\n",
			ac.Save, a.Checksum(), artifact.RowsOf(a).Len())
		a.Close()
	}
	if err := met.Dump(); err != nil {
		log.Fatal(err)
	}
}

// quantDur renders a latency-histogram quantile as a rounded duration.
func quantDur(h *mpcspanner.HistogramSnapshot, q float64) time.Duration {
	return time.Duration(h.Quantile(q) * float64(time.Second)).Round(time.Microsecond)
}

// readPairs parses one "u v" pair per line; '-' reads stdin.
func readPairs(path string, n int) ([]oracle.Pair, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var out []oracle.Pair
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if len(text) == 0 || text[0] == '#' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("pairs line %d: want exactly 2 fields \"u v\", got %d", line, len(fields))
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("pairs line %d: %v", line, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("pairs line %d: %v", line, err)
		}
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("pairs line %d: vertex out of range [0,%d)", line, n)
		}
		out = append(out, oracle.Pair{U: u, V: v})
	}
	return out, sc.Err()
}
