// Command oracled is the networked distance-serving daemon: the paper's §7
// build-once/query-many pipeline behind a wire. It has two subcommands:
//
//	oracled serve  — build (or load) a graph, build the Corollary 1.4
//	                 spanner unless -exact, wrap it in a serving Session,
//	                 and answer batched POST /v1/query requests with
//	                 admission control, /metrics, /healthz and /debug/pprof.
//	                 SIGTERM/SIGINT drains gracefully: in-flight requests
//	                 finish, new ones are rejected, then the process exits 0.
//
//	oracled load   — Zipf load generator: asks the daemon for its graph
//	                 shape via /v1/info, synthesizes the same skewed
//	                 workload cmd/oracle -synth uses, and fires it in
//	                 concurrent batches, reporting throughput, latency
//	                 quantiles, and how much the daemon shed.
//
// Examples:
//
//	oracled serve -addr :8080 -gen gnp -n 20000 -deg 10 -seed 1
//	oracled load  -addr http://localhost:8080 -q 100000 -zipf 1.2
//
// Replicas are stateless: equal -seed gives bit-identical spanners, so N
// replicas behind a proxy serve identical answers — see deploy/ for a
// docker-compose demo.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mpcspanner"
	"mpcspanner/cmd/internal/cliutil"
	"mpcspanner/internal/apsp"
	"mpcspanner/internal/artifact"
	"mpcspanner/internal/oracle"
	"mpcspanner/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("oracled: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "serve":
		runServe(os.Args[2:])
	case "load":
		runLoad(os.Args[2:])
	case "convert":
		runConvert(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "oracled: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  oracled serve   [flags]  run a distance-serving replica (see oracled serve -h)
  oracled load    [flags]  fire a Zipf workload at a replica (see oracled load -h)
  oracled convert [flags]  stream a text edge list into a servable artifact (see oracled convert -h)
`)
}

// runConvert streams a text edge list (native or DIMACS) into a bare-graph
// artifact without materializing the graph in memory, then reopens the
// result to verify every checksum and report its identity.
func runConvert(args []string) {
	fs := flag.NewFlagSet("oracled convert", flag.ExitOnError)
	in := fs.String("in", "", "source edge list (native 'n/e' or DIMACS 'p sp'/'a' format; required)")
	out := fs.String("out", "", "artifact to write (required)")
	fs.Parse(args)
	if *in == "" || *out == "" {
		log.Fatal("convert: both -in and -out are required")
	}
	start := time.Now()
	res, err := artifact.Convert(*in, *out)
	if err != nil {
		log.Fatal(err)
	}
	a, err := mpcspanner.Open(context.Background(), *out)
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()
	fmt.Fprintf(os.Stderr, "converted %s -> %s in %v: n=%d m=%d checksum=%s\n",
		*in, *out, time.Since(start).Round(time.Millisecond), res.N, res.M, a.Checksum())
	fmt.Fprintf(os.Stderr, "serve it with: oracled serve -load %s\n", *out)
}

// runServe is the daemon half.
func runServe(args []string) {
	fs := flag.NewFlagSet("oracled serve", flag.ExitOnError)
	gc := cliutil.GraphFlags(fs)
	ac := cliutil.ArtifactFlags(fs)
	addr := fs.String("addr", ":8080", "listen address")
	exact := fs.Bool("exact", false, "serve exact distances on the input graph (skip the spanner build)")
	k := fs.Int("k", 0, "spanner stretch parameter (0 = Corollary 1.4's ⌈log₂ n⌉)")
	t := fs.Int("t", 0, "epoch length (0 = default)")
	shards := fs.Int("shards", 0, "cache shards (0 = default)")
	rows := fs.Int("rows", 0, "cache budget in resident rows (0 = default 1024)")
	workers := fs.Int("workers", 0, "per-batch worker pool size (0 = NumCPU)")
	sc := cliutil.SSSPFlags(fs)
	inflight := fs.Int("inflight", 0, "max concurrent batches inside the oracle (0 = cache row budget / 4)")
	queueWait := fs.Duration("queue-wait", 100*time.Millisecond, "longest a request may queue for an in-flight slot before 429")
	maxPairs := fs.Int("max-pairs", 0, "max pairs per request batch (0 = 65536)")
	maxTimeout := fs.Duration("max-timeout", 30*time.Second, "ceiling on client-requested timeout_ms")
	drain := fs.Duration("drain", 15*time.Second, "grace period for in-flight requests on SIGTERM")
	mem := cliutil.MemoryFlag(fs)
	fs.Parse(args)
	if err := ac.Validate(); err != nil {
		log.Fatal(err)
	}
	budget, err := mem.Budget([]string{"exact", "load"}, "")
	if err != nil {
		log.Fatal(err)
	}
	if ac.Save != "" && *exact {
		log.Fatal(&mpcspanner.OptionError{Field: "-save", Value: ac.Save,
			Reason: "nothing is built to save with -exact (use 'oracled convert' for graph-only artifacts)"})
	}

	// One registry carries the whole story: build-side mpc_* series, serving
	// oracle_* series, and the daemon's server_* admission series, all on the
	// same /metrics endpoint.
	reg := mpcspanner.NewMetrics()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	engine, err := sc.Engine()
	if err != nil {
		log.Fatal(err)
	}
	cacheOpts := []mpcspanner.Option{
		mpcspanner.WithCacheShards(*shards), mpcspanner.WithCacheRows(*rows),
		mpcspanner.WithWorkers(*workers), mpcspanner.WithMetrics(reg),
		mpcspanner.WithSSSP(engine),
	}
	if sc.Delta != 0 {
		cacheOpts = append(cacheOpts, mpcspanner.WithDelta(sc.Delta))
	}
	var session *mpcspanner.Session
	var serveGraph *mpcspanner.Graph
	var artInfo *server.ArtifactInfo
	var memInfo *server.MemoryInfo
	if ac.Load != "" {
		// Cold start from a saved artifact: no generation, no build — the
		// graph (mmapped where possible) and any frozen rows come straight
		// from the file, and /v1/info advertises exactly which build this
		// replica answers from.
		start := time.Now()
		art, err := mpcspanner.Open(ctx, ac.Load)
		if err != nil {
			log.Fatal(err)
		}
		defer art.Close()
		session, err = mpcspanner.Serve(ctx, nil,
			append(cacheOpts, mpcspanner.WithArtifact(art))...)
		if err != nil {
			log.Fatal(err)
		}
		serveGraph = session.Served()
		fp := art.Fingerprint()
		artInfo = &server.ArtifactInfo{
			Algorithm: fp.Algorithm, Seed: fp.Seed, K: fp.K, T: fp.T,
			Gamma: fp.Gamma, Workers: fp.Workers,
			Checksum: art.Checksum(), Rows: artifact.RowsOf(art).Len(),
			Mapped: art.Mapped(),
		}
		fmt.Fprintf(os.Stderr, "artifact: %s checksum=%s mapped=%v rows=%d fingerprint=%s loaded in %v\n",
			ac.Load, art.Checksum(), art.Mapped(), artInfo.Rows, fp,
			time.Since(start).Round(time.Millisecond))
		fmt.Fprintf(os.Stderr, "graph: n=%d m=%d\n", serveGraph.N(), serveGraph.M())
	} else {
		// Bridge disconnected inputs so every served distance is finite —
		// except in -exact mode, where the graph must be served untouched
		// and cross-component queries correctly answer null (+Inf).
		g, err := gc.Make(!*exact)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "graph: n=%d m=%d\n", g.N(), g.M())

		serveGraph = g
		if !*exact {
			kk := *k
			if kk <= 0 {
				kk, _ = apsp.Params(g.N(), 0) // Corollary 1.4's k = ⌈log₂ n⌉
			}
			tt := *t
			if tt <= 0 {
				tt = int(math.Max(1, math.Ceil(math.Log2(float64(kk)))))
			}
			buildOpts := []mpcspanner.Option{
				mpcspanner.WithAlgorithm(mpcspanner.AlgoMPC),
				mpcspanner.WithK(kk), mpcspanner.WithT(tt), mpcspanner.WithSeed(gc.Seed),
				mpcspanner.WithMetrics(reg),
			}
			if ac.Save != "" {
				buildOpts = append(buildOpts, mpcspanner.WithSaveTo(ac.Save))
			}
			if budget > 0 {
				buildOpts = append(buildOpts, mpcspanner.WithMemoryBudget(budget))
			}
			start := time.Now()
			res, err := mpcspanner.Build(ctx, g, buildOpts...)
			if err != nil {
				if errors.Is(err, mpcspanner.ErrCanceled) {
					log.Fatal("canceled during the spanner build; not serving")
				}
				log.Fatal(err)
			}
			serveGraph = res.Spanner()
			fmt.Fprintf(os.Stderr, "spanner: k=%d %d/%d edges, stretch <= %.2f, %d simulated rounds, built in %v\n",
				kk, serveGraph.M(), g.M(), mpcspanner.StretchBound(kk, tt), res.MPC.Rounds,
				time.Since(start).Round(time.Millisecond))
			if m := res.MPC; m.MemoryBudget > 0 {
				memInfo = &server.MemoryInfo{
					BudgetBytes: m.MemoryBudget, SpilledBytes: m.SpilledBytes,
					RunFiles: m.SpillRuns, MergePasses: m.MergePasses,
				}
				fmt.Fprintf(os.Stderr, "extmem: budget=%d spilled=%d runs=%d mergePasses=%d\n",
					m.MemoryBudget, m.SpilledBytes, m.SpillRuns, m.MergePasses)
			}
			if ac.Save != "" {
				// Reopen what WithSaveTo wrote so the printed checksum is the
				// loader's view of the file — the line the CI smoke job greps
				// and asserts against a -load replica's /v1/info.
				a, err := mpcspanner.Open(ctx, ac.Save)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Fprintf(os.Stderr, "artifact: saved to %s checksum=%s fingerprint=%s\n",
					ac.Save, a.Checksum(), a.Fingerprint())
				a.Close()
			}
		}

		session, err = mpcspanner.Serve(ctx, serveGraph,
			append(cacheOpts, mpcspanner.WithExact())...)
		if err != nil {
			log.Fatal(err)
		}
	}

	// Admission ceiling derived from the oracle's row budget: at most a
	// quarter of the rows the cache can hold may be computing or pinned by
	// in-flight batches at once, so admitted load can never thrash the LRU
	// it depends on. -inflight overrides.
	ceil := *inflight
	if ceil <= 0 {
		ceil = session.CacheRows() / 4
		if ceil < 4 {
			ceil = 4
		}
	}

	sssp := session.SSSP()
	srv := server.New(server.Config{
		Backend:     session,
		Graph:       serveGraph,
		Metrics:     reg,
		MaxInflight: ceil,
		QueueWait:   *queueWait,
		MaxPairs:    *maxPairs,
		MaxTimeout:  *maxTimeout,
		Artifact:    artInfo,
		SSSP:        &server.SSSPInfo{Engine: sssp.Engine, Delta: sssp.Delta},
		Memory:      memInfo,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "listening on %s (/v1/query, /v1/info, /healthz, /metrics, /debug/pprof); inflight ceiling %d, queue wait %v, sssp=%s\n",
		l.Addr(), ceil, *queueWait, sssp.Engine)

	if err := srv.Run(ctx, l, *drain); err != nil {
		log.Fatal(err)
	}
	st := session.Stats()
	fmt.Fprintf(os.Stderr, "drained; cache at exit: hits=%d misses=%d evictions=%d resident=%d\n",
		st.Hits, st.Misses, st.Evictions, st.Resident)
}

// runLoad is the load-generator half.
func runLoad(args []string) {
	fs := flag.NewFlagSet("oracled load", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "daemon (or proxy) base URL")
	q := fs.Int("q", 10000, "total queries to fire")
	zipf := fs.Float64("zipf", 1.2, "Zipf exponent of the source distribution")
	seed := fs.Uint64("seed", 1, "workload seed (equal seeds give identical traces)")
	batch := fs.Int("batch", 512, "pairs per request")
	conc := fs.Int("concurrency", 8, "concurrent in-flight requests")
	timeout := fs.Duration("timeout", 0, "per-request timeout_ms budget (0 = none)")
	fs.Parse(args)
	if *zipf <= 0 {
		log.Fatalf("-zipf exponent must be positive, got %g", *zipf)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	c := server.NewClient(*addr)
	info, err := c.Info(ctx)
	if err != nil {
		log.Fatalf("fetching /v1/info from %s: %v", *addr, err)
	}
	if info.N == 0 {
		log.Fatal("daemon serves an empty graph; nothing to query")
	}
	fmt.Fprintf(os.Stderr, "target: n=%d m=%d, max_inflight=%d, max_pairs=%d\n",
		info.N, info.M, info.MaxInflight, info.MaxPairs)
	if *batch > info.MaxPairs {
		log.Fatalf("-batch %d exceeds the daemon's %d-pair ceiling", *batch, info.MaxPairs)
	}

	// The exact workload shape of cmd/oracle -synth and the serving
	// benchmarks: Zipf-skewed sources, uniform targets, deterministic in
	// (n, q, exponent, seed).
	pairs := oracle.ZipfWorkload(info.N, *q, *zipf, *seed)
	report := c.RunLoad(ctx, server.LoadOptions{
		Pairs: pairs, Batch: *batch, Concurrency: *conc, Timeout: *timeout,
	})

	qps := float64(report.PairsOK) / math.Max(report.Elapsed.Seconds(), 1e-9)
	fmt.Fprintf(os.Stderr, "fired %d batches (%d pairs) in %v: %d ok, %d shed (429), %d failed; %.0f pairs/sec\n",
		report.Batches, len(pairs), report.Elapsed.Round(time.Millisecond),
		report.OK, report.Shed, report.Failed, qps)
	fmt.Fprintf(os.Stderr, "request latency: p50=%v p95=%v p99=%v\n",
		report.Quantile(0.50).Round(time.Microsecond),
		report.Quantile(0.95).Round(time.Microsecond),
		report.Quantile(0.99).Round(time.Microsecond))
	if report.Failed > 0 {
		log.Fatalf("%d requests failed (shedding is fine, failures are not)", report.Failed)
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "interrupted; partial run reported above")
	}
}
