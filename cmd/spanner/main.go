// Command spanner builds a spanner for a generated or file-loaded graph and
// reports the structural costs the paper's theorems bound:
//
//	go run ./cmd/spanner -gen gnp -n 100000 -deg 12 -k 16 -t 4
//	go run ./cmd/spanner -in graph.txt -algo baswana-sen -k 8
//	go run ./cmd/spanner -gen grid -n 40000 -k 8 -mpc -gamma 0.5
//
// Ctrl-C cancels the build gracefully: the construction loop stops at its
// next checkpoint and the command reports how far it got instead of dying
// mid-allocation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"

	"mpcspanner"
	"mpcspanner/cmd/internal/cliutil"
	"mpcspanner/internal/dist"
	"mpcspanner/internal/graph"
)

func main() {
	gc := cliutil.GraphFlags(flag.CommandLine)
	ac := cliutil.ArtifactFlags(flag.CommandLine)
	algo := flag.String("algo", "general", "general|cluster-merge|sqrt-k|baswana-sen|unweighted")
	k := flag.Int("k", 8, "stretch parameter")
	t := flag.Int("t", 0, "epoch length (0 = log k default)")
	useMPC := flag.Bool("mpc", false, "run on the simulated MPC cluster and report rounds")
	gamma := flag.Float64("gamma", 0.5, "memory exponent for -mpc")
	verify := flag.Int("verify", 2000, "edges to sample for stretch verification (0 = skip)")
	progress := flag.Bool("progress", false, "print per-iteration progress to stderr")
	out := flag.String("out", "", "write the spanner subgraph to this file")
	mem := cliutil.MemoryFlag(flag.CommandLine)
	met := cliutil.MetricsFlag()
	flag.Parse()
	if err := ac.Validate(); err != nil {
		log.Fatal(err)
	}
	budget, err := mem.Budget([]string{"load"}, "mpc")
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if ac.Load != "" {
		inspectArtifact(ctx, ac.Load, *out)
		return
	}

	g, err := gc.Make(false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d\n", g.N(), g.M())

	opts := []mpcspanner.Option{
		mpcspanner.WithK(*k),
		mpcspanner.WithSeed(gc.Seed),
		mpcspanner.WithMetrics(met.Registry()),
	}
	if ac.Save != "" {
		opts = append(opts, mpcspanner.WithSaveTo(ac.Save))
	}
	if *t > 0 {
		opts = append(opts, mpcspanner.WithT(*t))
	}
	var last atomic.Pointer[mpcspanner.ProgressEvent]
	track := func(ev mpcspanner.ProgressEvent) {
		last.Store(&ev)
		if *progress {
			fmt.Fprintf(os.Stderr, "progress: %s %s %d/%d (supernodes=%d edges=%d)\n",
				ev.Algorithm, ev.Stage, ev.Iteration, ev.TotalIterations, ev.Supernodes, ev.SpannerEdges)
		}
	}
	opts = append(opts, mpcspanner.WithProgress(track))

	mpcT := *t
	if mpcT <= 0 {
		mpcT = defaultT(*k) // the historical ⌈log₂ k⌉ default of -mpc mode
	}
	switch {
	case *useMPC:
		opts = append(opts, mpcspanner.WithAlgorithm(mpcspanner.AlgoMPC),
			mpcspanner.WithGamma(*gamma), mpcspanner.WithT(mpcT))
		if budget > 0 {
			opts = append(opts, mpcspanner.WithMemoryBudget(budget))
		}
	case *algo == "unweighted":
		opts = append(opts, mpcspanner.WithAlgorithm(mpcspanner.AlgoUnweighted))
	default:
		opts = append(opts, mpcspanner.WithAlgorithm(mpcspanner.Algorithm(*algo)), mpcspanner.WithMeasureRadius())
	}

	res, err := mpcspanner.Build(ctx, g, opts...)
	if err != nil {
		if errors.Is(err, mpcspanner.ErrCanceled) {
			reportCanceled(last.Load())
		}
		log.Fatal(err)
	}

	var bound float64
	switch {
	case res.MPC != nil:
		m := res.MPC
		fmt.Printf("mpc: rounds=%d machines=%d S=%d peakLoad=%d sorts=%d treeOps=%d moved=%d\n",
			m.Rounds, m.Machines, m.MemoryPerMachine, m.PeakMachineLoad, m.Sorts, m.TreeOps, m.TuplesMoved)
		if m.MemoryBudget > 0 {
			fmt.Printf("extmem: budget=%d spilled=%d runs=%d mergePasses=%d\n",
				m.MemoryBudget, m.SpilledBytes, m.SpillRuns, m.MergePasses)
		}
		bound = mpcspanner.StretchBound(*k, mpcT)
	case res.Unweighted != nil:
		u := res.Unweighted
		fmt.Printf("unweighted: sparse=%d dense=%d |Z|=%d rounds=%d\n",
			u.SparseCount, u.DenseCount, u.HittingSetSize, u.Rounds)
		bound = u.StretchBound
	default:
		st := res.Stats
		fmt.Printf("%s: k=%d t=%d iterations=%d epochs=%d phase1=%d phase2=%d radiusHops=%d\n",
			st.Algorithm, st.K, st.T, st.Iterations, st.Epochs, st.Phase1Edges, st.Phase2Edges,
			st.Radius.MaxHops)
		bound = mpcspanner.StretchBound(st.K, st.T)
		if st.Algorithm == "baswana-sen" {
			bound = float64(2*st.K - 1)
		}
	}
	report(g, res.EdgeIDs, bound, *verify, gc.Seed, *out)
	if ac.Save != "" {
		a, err := mpcspanner.Open(ctx, ac.Save)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("artifact: saved to %s checksum=%s fingerprint=%s\n",
			ac.Save, a.Checksum(), a.Fingerprint())
		a.Close()
	}
	if err := met.Dump(); err != nil {
		log.Fatal(err)
	}
}

// inspectArtifact is the -load mode: open (verifying every checksum), report
// identity and shape, and optionally dump the contained graph.
func inspectArtifact(ctx context.Context, path, out string) {
	a, err := mpcspanner.Open(ctx, path)
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()
	g := a.Graph()
	srcN, srcM := a.SourceShape()
	fmt.Printf("artifact: %s checksum=%s mapped=%v\n", path, a.Checksum(), a.Mapped())
	fmt.Printf("fingerprint: %s\n", a.Fingerprint())
	fmt.Printf("graph: n=%d m=%d (source n=%d m=%d, %d edge ids recorded)\n",
		g.N(), g.M(), srcN, srcM, len(a.EdgeIDs()))
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := g.Write(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote graph to %s\n", out)
	}
}

// reportCanceled prints how far an interrupted build got before its context
// was honored.
func reportCanceled(ev *mpcspanner.ProgressEvent) {
	if ev == nil {
		fmt.Fprintln(os.Stderr, "canceled before the first checkpoint")
		return
	}
	fmt.Fprintf(os.Stderr, "canceled at %s %s %d/%d: %d spanner edges selected so far\n",
		ev.Algorithm, ev.Stage, ev.Iteration, ev.TotalIterations, ev.SpannerEdges)
}

func defaultT(k int) int {
	t := int(math.Ceil(math.Log2(float64(k))))
	if t < 1 {
		t = 1
	}
	return t
}

func report(g *graph.Graph, ids []int, bound float64, verify int, seed uint64, out string) {
	ratio := float64(len(ids)) / float64(g.M())
	fmt.Printf("spanner: %d edges (%.1f%% of input), certified stretch <= %.2f\n",
		len(ids), 100*ratio, bound)
	if verify > 0 {
		h := g.Subgraph(ids)
		rep, err := dist.SampledEdgeStretch(g, h, verify, seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("verify: %d edges sampled, max stretch %.3f, mean %.3f (bound %.2f)\n",
			rep.Checked, rep.Max, rep.Mean, bound)
		if rep.Max > bound+1e-9 {
			log.Fatalf("STRETCH VIOLATION: measured %.3f > bound %.3f", rep.Max, bound)
		}
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := g.Subgraph(ids).Write(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote spanner to %s\n", out)
	}
}
