package mpcspanner

import "mpcspanner/internal/core"

// The v1 error taxonomy. Every error returned by this package — and by the
// construction loops it drives — classifies under exactly one of these
// sentinels via errors.Is, so callers never match on message text:
//
//	errors.Is(err, ErrInvalidOption)  // a rejected option or argument
//	errors.Is(err, ErrCanceled)       // the context ended the operation
//	errors.Is(err, context.Canceled)  // also true for canceled contexts
//
// Structured detail travels through errors.As: every ErrInvalidOption match
// carries a *OptionError naming the field, the rejected value, and the
// violated constraint.
var (
	// ErrInvalidOption matches every option-validation failure, at any
	// layer (facade option parsing, internal package validation).
	ErrInvalidOption = core.ErrInvalidOption

	// ErrCanceled matches every cooperative-cancellation failure. The
	// concrete error also unwraps to the context's own error
	// (context.Canceled or context.DeadlineExceeded), so both
	// errors.Is(err, ErrCanceled) and errors.Is(err, ctx.Err()) hold.
	ErrCanceled = core.ErrCanceled

	// ErrArtifact matches every artifact-format failure from Open, Save,
	// and WithSaveTo: a missing or truncated file, a checksum mismatch, a
	// foreign magic number, a format version from the future. When the
	// failure wraps an I/O error the chain unwraps to it, so
	// errors.Is(err, fs.ErrNotExist) still identifies a missing path.
	ErrArtifact = core.ErrArtifact
)

// OptionError is the structured form of an option rejection: retrieve it
// with errors.As to learn which Field was rejected, the Value supplied, and
// the Reason (the violated constraint).
type OptionError = core.OptionError

// ArtifactError is the structured form of an artifact rejection: retrieve
// it with errors.As to learn the Path, the container Section that failed
// ("header", "section-table", "graph-edges", …), and the Reason.
type ArtifactError = core.ArtifactError

// ProgressEvent is one observation of a running Build or Serve, delivered
// to the callback installed with WithProgress. See the field docs in
// internal/core for the stage vocabulary; events are emitted synchronously
// at the construction loop's cancellation checkpoints, so canceling the
// context from inside the callback stops the build at the next checkpoint.
type ProgressEvent = core.ProgressEvent
