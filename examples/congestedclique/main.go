// Congestedclique: the Section 8 results end to end — Theorem 8.1's w.h.p.
// spanner (per-iteration selection among O(log n) parallel sampling runs)
// and Corollary 1.5's sublogarithmic weighted-APSP approximation, with the
// clique's round bill itemized. Both run through the context-aware v1
// surface.
//
//	go run ./examples/congestedclique
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"mpcspanner"
)

func main() {
	ctx := context.Background()

	n := 2000
	g := mpcspanner.Connectify(
		mpcspanner.GNP(n, 12.0/float64(n), mpcspanner.UniformWeight(1, 50), 13), 50)
	fmt.Printf("clique of %d nodes; input graph m=%d\n", g.N(), g.M())

	// Theorem 8.1: spanner with w.h.p. size guarantee.
	k, t := 11, 2
	res, err := mpcspanner.Build(ctx, g,
		mpcspanner.WithAlgorithm(mpcspanner.AlgoCongestedClique),
		mpcspanner.WithK(k),
		mpcspanner.WithT(t),
		mpcspanner.WithSeed(17),
	)
	if err != nil {
		log.Fatal(err)
	}
	sp := res.CC
	fmt.Printf("spanner (k=%d t=%d): %d edges in %d rounds\n", k, t, res.Size(), sp.Rounds)
	fmt.Printf("whp selection: %d parallel runs/iteration, %d/%d iterations settled by the two-event criterion\n",
		sp.WHP.Runs, sp.WHP.GoodCount, len(sp.WHP.Choices))

	// Corollary 1.5: every node learns the spanner and answers locally.
	ap, err := mpcspanner.ApproxAPSPCongestedCliqueCtx(ctx, g, mpcspanner.WithSeed(19))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("apsp: %d rounds total (%d spanner + %d Lenzen collection) — log n would be %.0f\n",
		ap.Rounds, ap.SpannerRounds, ap.CollectionRounds, math.Log2(float64(n)))
	rep, err := ap.MeasureApproximation(10, 23)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("approximation over %d pairs: max %.3f, mean %.3f (certified <= %.1f)\n",
		rep.Checked, rep.Max, rep.Mean, ap.Bound)
}
