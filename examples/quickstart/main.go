// Quickstart: build a spanner with the v1 API, inspect its guarantees, and
// verify the stretch empirically. Build takes a context — pass one with a
// timeout or wired to Ctrl-C and the construction stops at its next
// iteration checkpoint.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"mpcspanner"
)

func main() {
	ctx := context.Background()

	// A weighted random graph: 5 000 vertices, average degree ~12.
	g := mpcspanner.GNP(5000, 12.0/5000, mpcspanner.UniformWeight(1, 100), 42)
	fmt.Printf("input graph: %d vertices, %d edges\n", g.N(), g.M())

	// Build a spanner with the paper's general algorithm at its t = log k
	// sweet spot: stretch k^{1+o(1)} in O(log²k/log log k) iterations.
	res, err := mpcspanner.Build(ctx, g,
		mpcspanner.WithK(8),
		mpcspanner.WithSeed(1),
		mpcspanner.WithMeasureRadius(),
	)
	if err != nil {
		log.Fatal(err)
	}
	st := res.Stats
	fmt.Printf("spanner: %d edges (%.1f%% of input)\n", res.Size(), 100*float64(res.Size())/float64(g.M()))
	fmt.Printf("cost: %d grow iterations, %d contraction epochs (vs %d iterations for [BS07])\n",
		st.Iterations, st.Epochs, st.K-1)
	fmt.Printf("cluster-tree radius: %d hops / %.1f weighted\n", st.Radius.MaxHops, st.Radius.MaxWeighted)

	// The paper's guarantee, and the truth on this instance.
	bound := mpcspanner.StretchBound(st.K, st.T)
	rep, err := res.Verify(bound)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stretch: measured max %.3f over all %d edges — certified bound %.2f\n",
		rep.Max, rep.Checked, bound)
}
