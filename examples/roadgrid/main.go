// Roadgrid: approximate all-pairs shortest paths on a weighted grid (a
// road-network stand-in) via the Section 7 pipeline, served through the v1
// Session: build a near-linear spanner in simulated MPC, collect it onto
// one machine, and answer cached distance queries under a context.
//
//	go run ./examples/roadgrid
package main

import (
	"context"
	"fmt"
	"log"

	"mpcspanner"
	"mpcspanner/internal/dist"
)

func main() {
	ctx := context.Background()

	// A 120×120 grid with road-like weights (travel times 1–10).
	g := mpcspanner.Grid(120, 120, mpcspanner.UniformWeight(1, 10), 99)
	fmt.Printf("road grid: n=%d m=%d\n", g.N(), g.M())

	// Serve runs the Corollary 1.4 pipeline and wraps the collected spanner
	// in a cached, concurrency-safe serving session.
	s, err := mpcspanner.Serve(ctx, g, mpcspanner.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	res := s.APSP()
	fmt.Printf("pipeline: k=%d t=%d, %d simulated MPC rounds (%d build + %d collect)\n",
		res.K, res.T, res.Rounds, res.BuildRounds, res.CollectRounds)
	fmt.Printf("spanner: %d edges — %.1f%% of the graph, fits one Õ(n)-machine: %v\n",
		res.SpannerSize, 100*float64(res.SpannerSize)/float64(g.M()), res.FitsOneMachine)

	// Answer a few routing queries and compare against exact Dijkstra.
	for _, src := range []int{0, 7260, 14399} {
		dst := g.N() - 1 - src
		approx, err := s.Query(ctx, src, dst)
		if err != nil {
			log.Fatal(err)
		}
		exact := dist.Dijkstra(g, src)
		fmt.Printf("route %5d -> %5d: approx %.0f vs exact %.0f (ratio %.3f, certified <= %.1f)\n",
			src, dst, approx, exact[dst], approx/exact[dst], res.Bound)
	}

	// Distribution of the approximation over sampled pairs, and the serving
	// cache after the queries above.
	qs, err := res.MeasureCDF(12, []float64{0.5, 0.9, 0.99, 1}, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pair-ratio quantiles: p50=%.3f p90=%.3f p99=%.3f max=%.3f\n",
		qs[0], qs[1], qs[2], qs[3])
	st := s.Stats()
	fmt.Printf("cache: hits=%d misses=%d resident=%d\n", st.Hits, st.Misses, st.Resident)
}
