// Roadgrid: approximate all-pairs shortest paths on a weighted grid (a
// road-network stand-in) via the Section 7 pipeline — build a near-linear
// spanner in simulated MPC, collect it onto one machine, answer distance
// queries locally with a certified approximation.
//
//	go run ./examples/roadgrid
package main

import (
	"fmt"
	"log"

	"mpcspanner"
	"mpcspanner/internal/dist"
)

func main() {
	// A 120×120 grid with road-like weights (travel times 1–10).
	g := mpcspanner.Grid(120, 120, mpcspanner.UniformWeight(1, 10), 99)
	fmt.Printf("road grid: n=%d m=%d\n", g.N(), g.M())

	res, err := mpcspanner.ApproxAPSP(g, mpcspanner.APSPOptions{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline: k=%d t=%d, %d simulated MPC rounds (%d build + %d collect)\n",
		res.K, res.T, res.Rounds, res.BuildRounds, res.CollectRounds)
	fmt.Printf("spanner: %d edges — %.1f%% of the graph, fits one Õ(n)-machine: %v\n",
		res.SpannerSize, 100*float64(res.SpannerSize)/float64(g.M()), res.FitsOneMachine)

	// Answer a few routing queries and compare against exact Dijkstra.
	for _, src := range []int{0, 7260, 14399} {
		approx := res.DistancesFrom(src)
		exact := dist.Dijkstra(g, src)
		dst := g.N() - 1 - src
		fmt.Printf("route %5d -> %5d: approx %.0f vs exact %.0f (ratio %.3f, certified <= %.1f)\n",
			src, dst, approx[dst], exact[dst], approx[dst]/exact[dst], res.Bound)
	}

	// Distribution of the approximation over sampled pairs.
	qs, err := res.MeasureCDF(12, []float64{0.5, 0.9, 0.99, 1}, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pair-ratio quantiles: p50=%.3f p90=%.3f p99=%.3f max=%.3f\n",
		qs[0], qs[1], qs[2], qs[3])
}
