// Socialgraph: the workload class the paper's introduction motivates —
// heavy-tailed social networks too large to process centrally. This example
// compares the algorithm family head-to-head on a preferential-attachment
// graph through the single Build entry point: iterations (= parallel rounds
// up to the 1/γ factor), spanner size, and measured stretch.
//
//	go run ./examples/socialgraph
package main

import (
	"context"
	"fmt"
	"log"

	"mpcspanner"
)

func main() {
	ctx := context.Background()

	// Preferential attachment: hubs with degrees in the hundreds, exactly
	// where single-machine distance computations stop scaling.
	g := mpcspanner.PreferentialAttachment(20000, 8, mpcspanner.ExpWeight(10), 7)
	fmt.Printf("social graph: n=%d m=%d maxDeg=%d\n", g.N(), g.M(), g.MaxDegree())

	const k = 16
	for _, algo := range []mpcspanner.Algorithm{
		mpcspanner.AlgoBaswanaSen,   // the Θ(k)-round baseline
		mpcspanner.AlgoSqrtK,        // §3: O(√k) rounds, stretch O(k)
		mpcspanner.AlgoGeneral,      // §5 at t=log k: k^{1+o(1)} stretch
		mpcspanner.AlgoClusterMerge, // §4: log k rounds, stretch k^{log 3}
	} {
		res, err := mpcspanner.Build(ctx, g,
			mpcspanner.WithAlgorithm(algo),
			mpcspanner.WithK(k),
			mpcspanner.WithSeed(3),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s iterations=%-3d size=%-7d (%.1f%% of m)\n",
			algo, res.Stats.Iterations, res.Size(), 100*float64(res.Size())/float64(g.M()))
	}

	// The winning trade-off for this workload, verified on a sample.
	res, err := mpcspanner.Build(ctx, g,
		mpcspanner.WithAlgorithm(mpcspanner.AlgoGeneral),
		mpcspanner.WithK(k),
		mpcspanner.WithSeed(3),
	)
	if err != nil {
		log.Fatal(err)
	}
	h := res.Spanner()
	fmt.Printf("\nchosen spanner keeps %.1f%% of edges; distances now fit one machine's memory\n",
		100*float64(h.M())/float64(g.M()))
}
