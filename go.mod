module mpcspanner

go 1.24
