// Package apsp implements the paper's primary application (Section 7,
// Corollary 1.4): O(log^{1+o(1)} n)-approximate all-pairs shortest paths in
// the near-linear memory regime of MPC, in poly(log log n) rounds.
//
// The pipeline is exactly the paper's: build a near-linear-size spanner with
// k = ⌈log₂ n⌉ (so size O(n^{1+1/k}·(t+log k)) = O(n·log log n) for
// t = Θ(log log n)) on the simulated sublinear-memory cluster, then collect
// the whole spanner onto one machine of the near-linear regime — it fits in
// Õ(n) words — where every distance query is answered locally on the spanner
// with the certified multiplicative error O(log^s n), s = log(2t+1)/log(t+1).
package apsp

import (
	"context"
	"fmt"
	"math"
	"sync"

	"mpcspanner/internal/core"
	"mpcspanner/internal/dist"
	"mpcspanner/internal/graph"
	"mpcspanner/internal/mpc"
	"mpcspanner/internal/obs"
	"mpcspanner/internal/oracle"
	"mpcspanner/internal/par"
	"mpcspanner/internal/spanner"
)

// Options configures an APSP approximation run.
type Options struct {
	// Seed drives the spanner construction.
	Seed uint64

	// T is the epoch length of the underlying spanner build. Zero selects
	// the Corollary 1.4 default ⌈log₂ log₂ n⌉ (stretch O(log^{1+o(1)} n) in
	// O(log² log n) rounds); T = 1 gives the faster O(log log n)-round,
	// O(log^{log 3} n)-approximation variant.
	T int

	// Gamma is the memory exponent of the machines used to *build* the
	// spanner (they stay in the strongly sublinear regime). Zero means 1/2.
	Gamma float64

	// Workers sizes the real goroutine pool behind the simulated build and
	// the serving-side oracle (par conventions: 0 = GOMAXPROCS, 1 = serial).
	// Results are bit-identical at every worker count; negative values are
	// rejected with a descriptive error.
	Workers int

	// Progress, when non-nil, receives the build's checkpoint events (the
	// MPC driver's "mpc-*" stages plus one final "collect" event). Same
	// contract as mpc.Options.Progress.
	Progress func(core.ProgressEvent)

	// Metrics, when non-nil, instruments the whole pipeline on one registry:
	// the simulated build (mpc_* series), the serving oracle created by
	// Result.Oracle() (oracle_* series), and its row-fill engine (dist_*
	// series). nil runs uninstrumented.
	Metrics *obs.Registry

	// SSSP selects the row-fill engine of the serving oracle and the
	// full-row stretch measurers (Measure, MeasureCDF): dist.EngineAuto — the
	// zero value — resolves by graph size. Purely a speed knob: every engine
	// is bit-identical (dist exactness contract).
	SSSP dist.Engine

	// Delta overrides the delta-stepping bucket width; ≤ 0 auto-tunes.
	Delta float64

	// MemoryBudget, when positive, caps the host-process bytes the build's
	// tuple store keeps resident (see mpc.Options.MemoryBudget): contents
	// past the budget spill to internal/extmem run files. The pipeline's
	// result is bit-identical either way.
	MemoryBudget int64
}

// Result is a completed Corollary 1.4 run.
type Result struct {
	SpannerEdgeIDs []int
	K, T           int

	BuildRounds   int // simulated rounds of the spanner construction
	CollectRounds int // rounds to gather the spanner onto one machine
	Rounds        int // total

	Bound            float64 // certified approximation factor O(log^s n)
	SpannerSize      int
	CollectorWords   int  // Õ(n) capacity of the near-linear machine
	FitsOneMachine   bool // the paper's key memory claim
	MemoryPerBuilder int  // n^γ capacity of the build-phase machines

	// Out-of-core profile of the build phase (zero when
	// Options.MemoryBudget was unset) — see mpc.Result.
	MemoryBudget int64
	SpilledBytes int64
	SpillRuns    int64
	MergePasses  int64

	g       *graph.Graph
	spanner *graph.Graph
	workers int           // serving-side pool size (par conventions)
	metrics *obs.Registry // carried into the shared oracle (may be nil)
	sssp    dist.Engine   // row-fill engine for the oracle and measurers
	delta   float64       // delta-stepping width override (≤ 0 auto)

	oracleOnce sync.Once
	oracle     *oracle.Oracle
}

// Params returns Corollary 1.4's parameter choice for an n-vertex graph:
// k = ⌈log₂ n⌉ and (if t is not forced) t = max(1, ⌈log₂ log₂ n⌉).
func Params(n, forcedT int) (k, t int) {
	if n < 4 {
		n = 4
	}
	k = int(math.Ceil(math.Log2(float64(n))))
	if forcedT > 0 {
		return k, forcedT
	}
	t = int(math.Ceil(math.Log2(math.Log2(float64(n)))))
	if t < 1 {
		t = 1
	}
	return k, t
}

// Approx runs the Section 7 pipeline.
func Approx(g *graph.Graph, opt Options) (*Result, error) {
	return ApproxCtx(context.Background(), g, opt)
}

// ApproxCtx is Approx under a context: the underlying MPC build checkpoints
// ctx once per simulated grow iteration and one more checkpoint precedes the
// collection step; a canceled context yields core.Canceled(ctx.Err()),
// matching errors.Is against both core.ErrCanceled and ctx.Err().
// Uncanceled runs are bit-identical to Approx at every worker count.
func ApproxCtx(ctx context.Context, g *graph.Graph, opt Options) (*Result, error) {
	if g.N() < 2 {
		return nil, fmt.Errorf("apsp: need at least two vertices, got %d", g.N())
	}
	if err := par.CheckWorkers("apsp: Options.Workers", opt.Workers); err != nil {
		return nil, err
	}
	gamma := opt.Gamma
	if gamma == 0 {
		gamma = 0.5
	}
	k, t := Params(g.N(), opt.T)

	build, err := mpc.BuildSpannerCtx(ctx, g, k, t, opt.Seed,
		mpc.Options{Gamma: gamma, Workers: opt.Workers, Progress: opt.Progress,
			Metrics: opt.Metrics, MemoryBudget: opt.MemoryBudget})
	if err != nil {
		return nil, err
	}
	if err := core.Check(ctx); err != nil {
		return nil, err
	}

	// Collection: the spanner moves to a single machine of the near-linear
	// regime with capacity Õ(n) = n·⌈log₂ n⌉ words. Gathering |ES| tuples
	// through an aggregation tree of fan-in n^γ costs one tree of rounds.
	sim, err := mpc.NewSim(g.N(), 2*g.M(), gamma)
	if err != nil {
		return nil, err
	}
	collectRounds := sim.TreeRounds()
	if collectRounds < 1 {
		collectRounds = 1
	}
	collectorWords := g.N() * int(math.Ceil(math.Log2(float64(g.N()))))
	res := &Result{
		SpannerEdgeIDs:   build.EdgeIDs,
		K:                k,
		T:                t,
		BuildRounds:      build.Rounds,
		CollectRounds:    collectRounds,
		Rounds:           build.Rounds + collectRounds,
		Bound:            spanner.StretchBound(k, t),
		SpannerSize:      len(build.EdgeIDs),
		CollectorWords:   collectorWords,
		FitsOneMachine:   len(build.EdgeIDs) <= collectorWords,
		MemoryPerBuilder: build.MemoryPerMachine,
		MemoryBudget:     build.MemoryBudget,
		SpilledBytes:     build.SpilledBytes,
		SpillRuns:        build.SpillRuns,
		MergePasses:      build.MergePasses,
		g:                g,
		spanner:          g.Subgraph(build.EdgeIDs),
		workers:          opt.Workers,
		metrics:          opt.Metrics,
		sssp:             opt.SSSP,
		delta:            opt.Delta,
	}
	if opt.Progress != nil {
		opt.Progress(core.ProgressEvent{Stage: "collect", Algorithm: "apsp",
			Rounds: res.Rounds, SpannerEdges: res.SpannerSize})
	}
	if !res.FitsOneMachine {
		return res, fmt.Errorf("apsp: spanner of %d edges exceeds the near-linear machine's %d words",
			res.SpannerSize, collectorWords)
	}
	return res, nil
}

// Spanner returns the collected spanner.
func (r *Result) Spanner() *graph.Graph { return r.spanner }

// oracleBudgetBytes bounds the memory the Result's shared oracle may retain
// in cached rows (64 MiB) — the Result must not silently grow toward the
// Θ(n²) footprint Matrix warns about just because many sources were queried.
const oracleBudgetBytes = 64 << 20

// Oracle returns the serving layer over the collected spanner: a
// concurrency-safe, cached distance oracle. It is created on first use and
// shared by every subsequent call (including DistancesFrom), so repeated
// queries on hot sources cost one Dijkstra per distinct source rather than
// one per call. Its row budget is scaled so cached rows stay under 64 MiB
// regardless of n; for a different cache topology build one directly:
// oracle.New(r.Spanner(), opts).
func (r *Result) Oracle() *oracle.Oracle {
	r.oracleOnce.Do(func() {
		rows := oracleBudgetBytes / (8 * r.spanner.N())
		if rows < 1 {
			rows = 1
		}
		if rows > 1024 {
			rows = 1024
		}
		r.oracle = oracle.New(r.spanner, oracle.Options{MaxRows: rows, Workers: r.workers,
			Metrics: r.metrics, SSSP: r.sssp, Delta: r.delta})
	})
	return r.oracle
}

// DistancesFrom answers a single-source query on the collected spanner —
// the local computation of the machine holding it. Rows are served from the
// shared Oracle cache; the returned slice is a private copy the caller may
// keep or mutate.
func (r *Result) DistancesFrom(v int) []float64 {
	return append([]float64(nil), r.Oracle().Row(v)...)
}

// Matrix materializes the full approximate APSP matrix. It allocates Θ(n²)
// float64s — 800 MB at n = 10⁵ — and recomputes every row, so it is meant
// for verification-scale graphs only (BenchmarkMatrix tracks the cost).
// Callers with sparse or skewed query patterns should use Oracle instead,
// which caches only the rows actually touched under an LRU budget.
func (r *Result) Matrix() [][]float64 { return dist.APSP(r.spanner) }

// Measure samples the pairwise approximation ratio dist_H/dist_G over
// `sources` full-row fills, run on the configured SSSP engine.
func (r *Result) Measure(sources int, seed uint64) (dist.StretchReport, error) {
	return dist.PairStretchOpts(r.g, r.spanner, sources, seed, r.solverOptions())
}

// MeasureCDF returns empirical quantiles of the pairwise approximation
// distribution (experiment F3).
func (r *Result) MeasureCDF(sources int, quantiles []float64, seed uint64) ([]float64, error) {
	return dist.StretchCDFOpts(r.g, r.spanner, sources, quantiles, seed, r.solverOptions())
}

func (r *Result) solverOptions() dist.SolverOptions {
	return dist.SolverOptions{Engine: r.sssp, Delta: r.delta, Workers: r.workers, Metrics: r.metrics}
}
