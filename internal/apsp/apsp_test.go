package apsp

import (
	"math"
	"testing"

	"mpcspanner/internal/dist"
	"mpcspanner/internal/graph"
)

func TestParams(t *testing.T) {
	k, tt := Params(1024, 0)
	if k != 10 {
		t.Fatalf("k = %d for n=1024", k)
	}
	if tt < 1 || tt > 4 {
		t.Fatalf("t = %d for n=1024", tt)
	}
	if _, forced := Params(1024, 7); forced != 7 {
		t.Fatal("forced t ignored")
	}
	if k, tt := Params(2, 0); k < 2 || tt < 1 {
		t.Fatalf("degenerate params %d %d", k, tt)
	}
}

func TestApproxEndToEnd(t *testing.T) {
	g := graph.Connectify(graph.GNP(500, 0.03, graph.UniformWeight(1, 20), 1), 10)
	res, err := Approx(g, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FitsOneMachine {
		t.Fatalf("spanner of %d edges should fit %d words", res.SpannerSize, res.CollectorWords)
	}
	if res.Rounds != res.BuildRounds+res.CollectRounds {
		t.Fatal("round bill does not add up")
	}
	rep, err := res.Measure(25, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Max > res.Bound+1e-9 {
		t.Fatalf("approximation %.3f exceeds certified bound %.3f", rep.Max, res.Bound)
	}
	if rep.Max < 1 {
		t.Fatalf("approximation below 1: %v", rep.Max)
	}
}

func TestApproxNeverUnderestimates(t *testing.T) {
	// Spanner distances are distances in a subgraph: they can only grow.
	g := graph.Connectify(graph.GNP(200, 0.05, graph.UniformWeight(1, 9), 7), 4)
	res, err := Approx(g, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	exactFrom0 := dist.Dijkstra(g, 0)
	approxFrom0 := res.DistancesFrom(0)
	for v := range exactFrom0 {
		if approxFrom0[v] < exactFrom0[v]-1e-9 {
			t.Fatalf("vertex %d: approx %v below exact %v", v, approxFrom0[v], exactFrom0[v])
		}
	}
}

func TestApproxTOneFasterLooser(t *testing.T) {
	g := graph.Connectify(graph.GNP(600, 0.02, graph.UniformWeight(1, 5), 11), 2)
	fast, err := Approx(g, Options{Seed: 13, T: 1})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Approx(g, Options{Seed: 13, T: 8})
	if err != nil {
		t.Fatal(err)
	}
	if fast.BuildRounds >= slow.BuildRounds {
		t.Fatalf("t=1 (%d rounds) should build faster than t=8 (%d rounds)",
			fast.BuildRounds, slow.BuildRounds)
	}
	if fast.Bound <= slow.Bound {
		t.Fatalf("t=1 bound %.1f should be looser than t=8's %.1f", fast.Bound, slow.Bound)
	}
}

func TestApproxMatrixConsistent(t *testing.T) {
	g := graph.Connectify(graph.GNP(80, 0.08, graph.UniformWeight(1, 6), 17), 3)
	res, err := Approx(g, Options{Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Matrix()
	for v := 0; v < g.N(); v += 13 {
		row := res.DistancesFrom(v)
		for u := range row {
			if math.Abs(row[u]-m[v][u]) > 1e-9 && !(math.IsInf(row[u], 1) && math.IsInf(m[v][u], 1)) {
				t.Fatalf("matrix row %d disagrees with single-source at %d", v, u)
			}
		}
	}
}

func TestApproxCDFQuantiles(t *testing.T) {
	g := graph.Connectify(graph.GNP(150, 0.06, graph.UnitWeight, 23), 1)
	res, err := Approx(g, Options{Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := res.MeasureCDF(15, []float64{0, 0.5, 0.99, 1}, 31)
	if err != nil {
		t.Fatal(err)
	}
	if qs[0] < 1-1e-9 {
		t.Fatalf("minimum pair ratio %v below 1", qs[0])
	}
	if qs[3] > res.Bound+1e-9 {
		t.Fatalf("maximum quantile %v above certified bound %v", qs[3], res.Bound)
	}
	for i := 1; i < len(qs); i++ {
		if qs[i] < qs[i-1] {
			t.Fatalf("quantiles not monotone: %v", qs)
		}
	}
}

func TestOracleServesSpannerDistances(t *testing.T) {
	g := graph.Connectify(graph.GNP(150, 0.05, graph.UniformWeight(1, 8), 43), 2)
	res, err := Approx(g, Options{Seed: 47})
	if err != nil {
		t.Fatal(err)
	}
	o := res.Oracle()
	if o != res.Oracle() {
		t.Fatal("Oracle() must return the shared instance")
	}
	truth := dist.APSP(res.Spanner())
	for v := 0; v < g.N(); v += 7 {
		row := o.Row(v)
		for u := range row {
			if row[u] != truth[v][u] {
				t.Fatalf("oracle row %d disagrees with spanner APSP at %d", v, u)
			}
		}
		// DistancesFrom must serve the same values through the cache.
		if dv := res.DistancesFrom(v); dv[0] != truth[v][0] {
			t.Fatalf("DistancesFrom(%d) diverged", v)
		}
	}
	if s := o.Stats(); s.Misses == 0 || s.Hits == 0 {
		t.Fatalf("cache did not register the repeated rows: %+v", s)
	}
}

func TestApproxValidates(t *testing.T) {
	if _, err := Approx(graph.MustNew(1, nil), Options{}); err == nil {
		t.Fatal("single-vertex graph accepted")
	}
	g := graph.Path(4, graph.UnitWeight, 1)
	if _, err := Approx(g, Options{Gamma: 2}); err == nil {
		t.Fatal("gamma=2 accepted")
	}
}

func TestApproxDeterministic(t *testing.T) {
	g := graph.Connectify(graph.GNP(200, 0.04, graph.UniformWeight(1, 3), 37), 1)
	a, err := Approx(g, Options{Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Approx(g, Options{Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	if a.SpannerSize != b.SpannerSize || a.Rounds != b.Rounds {
		t.Fatal("APSP pipeline not deterministic")
	}
}
