package apsp

import (
	"testing"

	"mpcspanner/internal/graph"
	"mpcspanner/internal/oracle"
)

// BenchmarkMatrix documents the cost Matrix's doc comment warns about: Θ(n²)
// float64s allocated and n full Dijkstra runs per call, regardless of how
// few entries the caller reads. Compare BenchmarkOracleSparseQueries, which
// touches the same result through the serving layer and pays only for the
// rows actually queried.
func BenchmarkMatrix(b *testing.B) {
	res := benchResult(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = res.Matrix()
	}
}

// BenchmarkOracleSparseQueries is the sparse-pattern counterpart: 64 point
// queries over 8 hot sources via the cached oracle.
func BenchmarkOracleSparseQueries(b *testing.B) {
	res := benchResult(b)
	var pairs []oracle.Pair
	for i := 0; i < 64; i++ {
		pairs = append(pairs, oracle.Pair{U: i % 8, V: (i * 37) % res.Spanner().N()})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = res.Oracle().QueryMany(pairs)
	}
}

func benchResult(b *testing.B) *Result {
	b.Helper()
	g := graph.Connectify(graph.GNP(1000, 0.01, graph.UniformWeight(1, 20), 1), 10)
	res, err := Approx(g, Options{Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	return res
}
