package apsp

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"mpcspanner/internal/core"
	"mpcspanner/internal/graph"
)

// TestCancellationSemanticsAPSP pins the §7 pipeline's context contract.
func TestCancellationSemanticsAPSP(t *testing.T) {
	g := graph.Connectify(graph.GNP(400, 0.03, graph.UniformWeight(1, 50), 41), 50)

	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	if _, err := ApproxCtx(pre, g, Options{Seed: 1}); !errors.Is(err, context.Canceled) || !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("ApproxCtx(canceled) = %v, want context.Canceled/core.ErrCanceled", err)
	}

	// Mid-run cancel from the MPC driver's checkpoints.
	ctx, cancel := context.WithCancel(context.Background())
	fired := false
	after := 0
	_, err := ApproxCtx(ctx, g, Options{Seed: 3, Progress: func(ev core.ProgressEvent) {
		if fired {
			after++
		}
		fired = true
		cancel()
	}})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel = %v, want context.Canceled", err)
	}
	if after > 1 {
		t.Fatalf("%d checkpoints fired after the cancel, want <= 1", after)
	}

	// A live context changes nothing.
	for _, w := range []int{1, 4} {
		plain, err := Approx(g, Options{Seed: 21, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		withCtx, err := ApproxCtx(context.Background(), g, Options{Seed: 21, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain.SpannerEdgeIDs, withCtx.SpannerEdgeIDs) ||
			plain.Rounds != withCtx.Rounds || plain.Bound != withCtx.Bound {
			t.Fatalf("workers=%d: context-free and live-context APSP runs differ", w)
		}
	}
}
