// Package artifact is the build-once/serve-forever persistence layer: a
// versioned, checksummed, little-endian binary container for frozen CSR
// graphs, spanner build results, and optional precomputed oracle row sets —
// the paper's §7 regime (build once, query many) extended across process and
// machine boundaries. A replica that loads an artifact never re-runs
// construction on its hot path; it adopts the file's CSR sections directly,
// mmapped read-only where the platform allows, so every replica on a box
// shares one page-cache-resident copy and cold start is dominated by a
// checksum pass instead of a build.
//
// # On-disk layout (format version 1)
//
//	header        32 bytes, fixed
//	section table 32 bytes per section
//	sections      each starting at an 8-byte-aligned offset, zero-padded
//
// Header: magic "MPCSART\x01" (8 bytes), format version (uint32), section
// count (uint32), CRC-32C of the section table (uint32), CRC-32C of the
// header's own first 20 bytes (uint32), 8 reserved zero bytes. Every
// multi-byte integer in the file is little-endian.
//
// Section table entry: kind (uint32), reserved (uint32), byte offset
// (uint64), byte length (uint64), CRC-32C of the section bytes (uint32),
// reserved (uint32). Offsets are 8-byte-aligned so a mapped section can be
// reinterpreted as a []float64 / []int64-backed slice without copying.
//
// Section kinds:
//
//	1 meta        JSON: format echo, determinism fingerprint, shapes
//	2 graph-edges m × 24 bytes: u int64, v int64, w float64 (graph.Edge)
//	3 graph-off   (n+1) × 4 bytes: int32 CSR offsets
//	4 graph-arcs  2m × 16 bytes: to int64, edge int64 (graph.Arc)
//	5 edge-ids    k × 8 bytes: spanner edge ids into the source graph
//	6 row-sources r × 8 bytes: sorted sources with precomputed rows
//	7 row-data    r·n × 8 bytes: float64 distance rows, row i = source i
//
// Unknown section kinds are rejected (a version-1 reader reads only
// version-1 files; the version field, not kind-skipping, is the evolution
// mechanism — see DESIGN.md §11 for the version policy).
//
// # Integrity and errors
//
// Open verifies the header CRC, the table CRC, and every section CRC before
// adopting anything, so a truncated download, a flipped bit, a foreign file,
// or a future format version is reported as a typed *core.ArtifactError
// (matching core.ErrArtifact under errors.Is) — never as a panic deep inside
// a query. The CRC pass reads every byte once; for a mapped artifact that is
// a sequential page-cache warm-up shared by subsequent queries.
package artifact

import (
	"fmt"
	"hash/crc32"
)

const (
	// FormatVersion is the container version this build writes and the
	// newest it reads. Readers reject newer files with a typed error;
	// older versions would be migrated here, explicitly, when version 2
	// exists.
	FormatVersion = 1

	headerSize  = 32
	sectionSize = 32
)

// magic identifies an artifact file. The trailing 0x01 byte is part of the
// magic, not the version: files from a hypothetical incompatible rewrite
// would change it, while compatible evolution bumps FormatVersion.
var magic = [8]byte{'M', 'P', 'C', 'S', 'A', 'R', 'T', 0x01}

// Section kinds.
const (
	secMeta       = 1
	secGraphEdges = 2
	secGraphOff   = 3
	secGraphArcs  = 4
	secEdgeIDs    = 5
	secRowSources = 6
	secRowData    = 7
)

// sectionName maps a kind to the name *core.ArtifactError reports.
func sectionName(kind uint32) string {
	switch kind {
	case secMeta:
		return "meta"
	case secGraphEdges:
		return "graph-edges"
	case secGraphOff:
		return "graph-off"
	case secGraphArcs:
		return "graph-arcs"
	case secEdgeIDs:
		return "edge-ids"
	case secRowSources:
		return "row-sources"
	case secRowData:
		return "row-data"
	}
	return fmt.Sprintf("kind-%d", kind)
}

// castagnoli is the CRC-32C table every checksum in the file uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// section is one parsed table entry.
type section struct {
	kind uint32
	off  uint64
	len  uint64
	crc  uint32
}

// Fingerprint is the determinism identity of the computation that produced
// an artifact: under the library's seed contract, equal fingerprints on equal
// inputs mean bit-identical results at any worker count. It is stored in the
// meta section and surfaced by serving daemons (/v1/info), so a fleet can
// verify every replica answers from the same build.
type Fingerprint struct {
	// Algorithm is the construction family ("mpc", "general", …), "exact"
	// for a session serving a graph as given, or "graph" for a bare
	// converted graph with no build attached.
	Algorithm string `json:"algorithm"`
	// Seed is the seed the build ran under.
	Seed uint64 `json:"seed"`
	// K and T are the structural parameters of the family (zero when the
	// family has none).
	K int `json:"k"`
	T int `json:"t"`
	// Gamma is the simulated machines' memory exponent (zero when unused).
	Gamma float64 `json:"gamma,omitempty"`
	// Workers records the pool size the build ran with — informational
	// only, since results are worker-count independent.
	Workers int `json:"workers"`
}

// String renders the fingerprint in one greppable line.
func (f Fingerprint) String() string {
	return fmt.Sprintf("%s/seed=%d/k=%d/t=%d/workers=%d", f.Algorithm, f.Seed, f.K, f.T, f.Workers)
}

// meta is the JSON payload of the meta section.
type meta struct {
	Format      int         `json:"format"`
	Fingerprint Fingerprint `json:"fingerprint"`

	// N and M are the contained graph's shape (the graph served after
	// load — for a build artifact, the spanner).
	N int `json:"n"`
	M int `json:"m"`

	// SourceN and SourceM record the shape of the graph the build ran on,
	// which the edge-ids section indexes into. Zero for bare graphs.
	SourceN int `json:"source_n,omitempty"`
	SourceM int `json:"source_m,omitempty"`

	// Rows is the number of precomputed oracle rows.
	Rows int `json:"rows,omitempty"`
}
