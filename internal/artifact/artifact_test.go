package artifact

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpcspanner/internal/core"
	"mpcspanner/internal/dist"
	"mpcspanner/internal/graph"
)

// testGraph is a small connected weighted graph with deterministic shape.
func testGraph(t *testing.T, n int, seed uint64) *graph.Graph {
	t.Helper()
	return graph.Connectify(graph.GNP(n, 8/float64(n), graph.UniformWeight(1, 50), seed), 50)
}

// testPayload saves a representative payload (graph + edge ids + fingerprint
// + two rows) and returns its path.
func testPayload(t *testing.T, g *graph.Graph) (string, Payload) {
	t.Helper()
	n := g.N()
	p := Payload{
		Graph:       g,
		EdgeIDs:     []int{1, 3, 4, 8},
		SourceN:     n,
		SourceM:     g.M() + 17,
		Fingerprint: Fingerprint{Algorithm: "mpc", Seed: 7, K: 9, T: 3, Workers: 4},
		RowSources:  []int{5, 0}, // deliberately unsorted; Write must sort
		Rows:        [][]float64{dist.Dijkstra(g, 5), dist.Dijkstra(g, 0)},
	}
	path := filepath.Join(t.TempDir(), "a.art")
	if err := Write(path, p); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return path, p
}

// sameGraph asserts two graphs are structurally identical: vertex count,
// edge list (ids, endpoints, weight bits), and adjacency.
func sameGraph(t *testing.T, want, got *graph.Graph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("shape mismatch: got n=%d m=%d, want n=%d m=%d", got.N(), got.M(), want.N(), want.M())
	}
	we, ge := want.Edges(), got.Edges()
	for i := range we {
		if we[i].U != ge[i].U || we[i].V != ge[i].V ||
			math.Float64bits(we[i].W) != math.Float64bits(ge[i].W) {
			t.Fatalf("edge %d mismatch: got %+v, want %+v", i, ge[i], we[i])
		}
	}
	for v := 0; v < want.N(); v++ {
		wa, ga := want.Adj(v), got.Adj(v)
		if len(wa) != len(ga) {
			t.Fatalf("vertex %d degree mismatch: got %d, want %d", v, len(ga), len(wa))
		}
		for j := range wa {
			if wa[j] != ga[j] {
				t.Fatalf("vertex %d arc %d mismatch: got %+v, want %+v", v, j, ga[j], wa[j])
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	g := testGraph(t, 400, 3)
	path, p := testPayload(t, g)
	for _, tc := range []struct {
		name string
		opt  OpenOptions
	}{
		{"default", OpenOptions{}},
		{"heap", OpenOptions{ForceHeap: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a, err := Open(path, tc.opt)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer a.Close()
			sameGraph(t, g, a.Graph())
			if fp := a.Fingerprint(); fp != p.Fingerprint {
				t.Errorf("fingerprint: got %+v, want %+v", fp, p.Fingerprint)
			}
			if ids := a.EdgeIDs(); len(ids) != len(p.EdgeIDs) {
				t.Fatalf("edge ids: got %v, want %v", ids, p.EdgeIDs)
			} else {
				for i := range ids {
					if ids[i] != p.EdgeIDs[i] {
						t.Fatalf("edge ids: got %v, want %v", ids, p.EdgeIDs)
					}
				}
			}
			if sn, sm := a.SourceShape(); sn != p.SourceN || sm != p.SourceM {
				t.Errorf("source shape: got (%d,%d), want (%d,%d)", sn, sm, p.SourceN, p.SourceM)
			}
			rows := RowsOf(a)
			if rows.Len() != 2 {
				t.Fatalf("rows: got %d, want 2", rows.Len())
			}
			for _, src := range []int{0, 5} {
				got, ok := rows.FrozenRow(src)
				if !ok {
					t.Fatalf("row %d missing", src)
				}
				want := dist.Dijkstra(g, src)
				for v := range want {
					if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
						t.Fatalf("row %d entry %d: got %v, want %v", src, v, got[v], want[v])
					}
				}
			}
			if _, ok := rows.FrozenRow(1); ok {
				t.Error("FrozenRow(1) reported a row that was never saved")
			}
		})
	}
}

// TestMappedVsHeapIdentical pins the two loaders against each other: same
// checksum, same graph, same distances from every source of a sample.
func TestMappedVsHeapIdentical(t *testing.T) {
	g := testGraph(t, 300, 9)
	path, _ := testPayload(t, g)
	am, err := Open(path, OpenOptions{})
	if err != nil {
		t.Fatalf("Open mapped: %v", err)
	}
	defer am.Close()
	ah, err := Open(path, OpenOptions{ForceHeap: true})
	if err != nil {
		t.Fatalf("Open heap: %v", err)
	}
	defer ah.Close()
	if am.Checksum() != ah.Checksum() {
		t.Errorf("checksums differ: mapped %s, heap %s", am.Checksum(), ah.Checksum())
	}
	if !am.Mapped() && mmapSupported && canCast {
		t.Error("default Open did not map on a platform that supports it")
	}
	if ah.Mapped() {
		t.Error("ForceHeap still mapped")
	}
	sameGraph(t, ah.Graph(), am.Graph())
	for src := 0; src < g.N(); src += 37 {
		rm, rh := dist.Dijkstra(am.Graph(), src), dist.Dijkstra(ah.Graph(), src)
		for v := range rm {
			if math.Float64bits(rm[v]) != math.Float64bits(rh[v]) {
				t.Fatalf("distance (%d,%d) differs between loaders: %v vs %v", src, v, rm[v], rh[v])
			}
		}
	}
}

// TestWriteDeterministic pins that equal payloads give byte-identical files,
// which is what makes Checksum a usable build identity.
func TestWriteDeterministic(t *testing.T) {
	g := testGraph(t, 200, 4)
	p1, _ := testPayload(t, g)
	p2, _ := testPayload(t, g)
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("two writes of the same payload produced different bytes")
	}
}

// mutate writes a copy of path with fn applied to its bytes and returns the
// copy's path.
func mutate(t *testing.T, path string, fn func([]byte)) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fn(b)
	out := filepath.Join(t.TempDir(), "mutated.art")
	if err := os.WriteFile(out, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return out
}

// wantArtifactError opens path and asserts the typed-error contract: an
// error matching core.ErrArtifact, carrying a *core.ArtifactError whose
// Section and Reason match, and never a panic.
func wantArtifactError(t *testing.T, path, section, reasonSub string) {
	t.Helper()
	for _, opt := range []OpenOptions{{}, {ForceHeap: true}} {
		a, err := Open(path, opt)
		if err == nil {
			a.Close()
			t.Fatalf("Open(%v) accepted a damaged artifact", opt)
		}
		if !errors.Is(err, core.ErrArtifact) {
			t.Fatalf("error does not match core.ErrArtifact: %v", err)
		}
		var ae *core.ArtifactError
		if !errors.As(err, &ae) {
			t.Fatalf("error is not a *core.ArtifactError: %v", err)
		}
		if ae.Section != section {
			t.Errorf("section: got %q, want %q (err: %v)", ae.Section, section, err)
		}
		if !strings.Contains(ae.Reason, reasonSub) {
			t.Errorf("reason %q does not contain %q", ae.Reason, reasonSub)
		}
	}
}

// refixHeaderCRC recomputes the header checksum after a test deliberately
// edits header fields, so the edited field itself — not the CRC — is what
// Open trips on.
func refixHeaderCRC(b []byte) {
	binary.LittleEndian.PutUint32(b[20:], crc32.Checksum(b[:20], castagnoli))
}

func TestOpenRejectsDamage(t *testing.T) {
	g := testGraph(t, 150, 5)
	path, _ := testPayload(t, g)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("missing file", func(t *testing.T) {
		_, err := Open(filepath.Join(t.TempDir(), "nope.art"), OpenOptions{})
		if !errors.Is(err, core.ErrArtifact) {
			t.Fatalf("want ErrArtifact, got %v", err)
		}
		if !errors.Is(err, fs.ErrNotExist) {
			t.Errorf("missing file should still unwrap to fs.ErrNotExist: %v", err)
		}
	})
	t.Run("wrong magic", func(t *testing.T) {
		p := mutate(t, path, func(b []byte) { b[0] = 'X' })
		wantArtifactError(t, p, "header", "magic")
	})
	t.Run("shorter than header", func(t *testing.T) {
		p := filepath.Join(t.TempDir(), "tiny.art")
		if err := os.WriteFile(p, whole[:headerSize-5], 0o644); err != nil {
			t.Fatal(err)
		}
		wantArtifactError(t, p, "header", "smaller than")
	})
	t.Run("truncated mid section", func(t *testing.T) {
		p := filepath.Join(t.TempDir(), "trunc.art")
		if err := os.WriteFile(p, whole[:len(whole)-100], 0o644); err != nil {
			t.Fatal(err)
		}
		// The row-data section is last, so it is the one that overruns.
		wantArtifactError(t, p, "row-data", "truncated")
	})
	t.Run("future version", func(t *testing.T) {
		p := mutate(t, path, func(b []byte) {
			binary.LittleEndian.PutUint32(b[8:], FormatVersion+41)
			refixHeaderCRC(b)
		})
		wantArtifactError(t, p, "header", "newer than this build")
	})
	t.Run("flipped header byte", func(t *testing.T) {
		p := mutate(t, path, func(b []byte) { b[13] ^= 0xff })
		wantArtifactError(t, p, "header", "checksum mismatch")
	})
	t.Run("flipped table byte", func(t *testing.T) {
		p := mutate(t, path, func(b []byte) { b[headerSize+24] ^= 0x01 })
		wantArtifactError(t, p, "section-table", "checksum mismatch")
	})
	t.Run("flipped payload byte", func(t *testing.T) {
		// First section is meta, placed right after the table; flip a byte
		// deep in the file body instead to land in a graph section.
		p := mutate(t, path, func(b []byte) { b[len(b)/2] ^= 0x40 })
		a, err := Open(p, OpenOptions{})
		if err == nil {
			a.Close()
			t.Fatal("accepted a flipped payload byte")
		}
		var ae *core.ArtifactError
		if !errors.As(err, &ae) || !strings.Contains(ae.Reason, "checksum mismatch") {
			t.Fatalf("want a section checksum mismatch, got %v", err)
		}
	})
	t.Run("unknown section kind", func(t *testing.T) {
		p := mutate(t, path, func(b []byte) {
			binary.LittleEndian.PutUint32(b[headerSize:], 250)
			// Refix the table CRC so the kind check itself is what fires.
			nsect := binary.LittleEndian.Uint32(b[12:])
			table := b[headerSize : headerSize+int(nsect)*sectionSize]
			binary.LittleEndian.PutUint32(b[16:], crc32.Checksum(table, castagnoli))
			refixHeaderCRC(b)
		})
		wantArtifactError(t, p, "kind-250", "unknown section kind")
	})
}

func TestWriteValidation(t *testing.T) {
	g := testGraph(t, 50, 2)
	dir := t.TempDir()
	row := dist.Dijkstra(g, 0)
	cases := []struct {
		name string
		p    Payload
	}{
		{"nil graph", Payload{}},
		{"row count mismatch", Payload{Graph: g, RowSources: []int{0, 1}, Rows: [][]float64{row}}},
		{"row source out of range", Payload{Graph: g, RowSources: []int{50}, Rows: [][]float64{row}}},
		{"duplicate row source", Payload{Graph: g, RowSources: []int{0, 0}, Rows: [][]float64{row, row}}},
		{"short row", Payload{Graph: g, RowSources: []int{0}, Rows: [][]float64{row[:10]}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Write(filepath.Join(dir, "bad.art"), tc.p)
			if !errors.Is(err, core.ErrArtifact) {
				t.Fatalf("want ErrArtifact, got %v", err)
			}
		})
	}
}

// TestWriteAtomic pins that a failed or interrupted write can never leave a
// partial file at the destination path: Write assembles elsewhere and
// renames.
func TestWriteAtomic(t *testing.T) {
	g := testGraph(t, 50, 2)
	dir := t.TempDir()
	path := filepath.Join(dir, "a.art")
	if err := Write(path, Payload{Graph: g}); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "a.art" {
		t.Fatalf("directory not clean after Write: %v", ents)
	}
}
