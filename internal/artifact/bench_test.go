package artifact_test

import (
	"context"
	"path/filepath"
	"testing"

	"mpcspanner/internal/artifact"
	"mpcspanner/internal/graph"
	"mpcspanner/internal/mpc"
)

// BenchmarkArtifactOpen is the cold-start story in numbers: reopening a
// saved spanner (mmap and heap loaders) versus rebuilding it from the source
// graph. The mmap arm is what an oracled replica pays on restart; the
// rebuild arm is what it paid before artifacts existed.
func BenchmarkArtifactOpen(b *testing.B) {
	const n = 20000
	g := graph.Connectify(graph.GNP(n, 8/float64(n), graph.UniformWeight(1, 100), 1), 50)
	res, err := mpc.BuildSpannerCtx(context.Background(), g, 10, 4, 1, mpc.Options{Gamma: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	spanner := g.Subgraph(res.EdgeIDs)
	path := filepath.Join(b.TempDir(), "spanner.art")
	if err := artifact.Write(path, artifact.Payload{Graph: spanner, EdgeIDs: res.EdgeIDs,
		SourceN: g.N(), SourceM: g.M(),
		Fingerprint: artifact.Fingerprint{Algorithm: "mpc", Seed: 1, K: 10, T: 4}}); err != nil {
		b.Fatal(err)
	}

	b.Run("mmap", func(b *testing.B) {
		if !artifact.MmapOpenSupported {
			b.Skip("platform cannot map")
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a, err := artifact.Open(path, artifact.OpenOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if a.Graph().N() != spanner.N() {
				b.Fatal("wrong graph")
			}
			a.Close()
		}
	})
	b.Run("heap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a, err := artifact.Open(path, artifact.OpenOptions{ForceHeap: true})
			if err != nil {
				b.Fatal(err)
			}
			if a.Graph().N() != spanner.N() {
				b.Fatal("wrong graph")
			}
			a.Close()
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := mpc.BuildSpannerCtx(context.Background(), g, 10, 4, 1, mpc.Options{Gamma: 0.5})
			if err != nil {
				b.Fatal(err)
			}
			if g.Subgraph(r.EdgeIDs).N() != spanner.N() {
				b.Fatal("wrong graph")
			}
		}
	})
}
