package artifact

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"mpcspanner/internal/core"
)

// ConvertResult summarizes a streaming conversion.
type ConvertResult struct {
	N, M int
}

// Convert streams a text edge list at src into a bare-graph artifact at
// dst without ever materializing the graph in memory: peak RAM is O(n)
// (a degree array and a write cursor per vertex), independent of m, so
// graphs far larger than RAM can be converted offline and then served
// straight from the mapping.
//
// Two input grammars are auto-detected from the header line:
//
//	native  "# comment" / "n <n> <m>" / "e <u> <v> <w>"   (0-based, graph.Write)
//	DIMACS  "c comment" / "p sp <n> <m>" / "a <u> <v> <w>" (1-based)
//
// DIMACS files that list each undirected edge in both directions produce
// parallel edges (the library tolerates them; they cost space, not
// correctness) — deduplicate upstream if that matters.
//
// The conversion is two passes over src: pass one counts degrees and
// validates every record; pass two writes edge records and CSR offsets
// sequentially while scattering arcs into place with WriteAt. The arcs
// region is then re-read once, sequentially, to checksum it. Like Write,
// the output is assembled in a temp file and renamed into place.
func Convert(src, dst string) (ConvertResult, error) {
	var res ConvertResult

	// Pass 1: header + degree count.
	n, m, deg, err := convertScanDegrees(src)
	if err != nil {
		return res, err
	}
	res.N, res.M = n, m

	mj, err := json.Marshal(meta{
		Format:      FormatVersion,
		Fingerprint: Fingerprint{Algorithm: "graph"},
		N:           n,
		M:           m,
	})
	if err != nil {
		return res, core.ArtifactErrorf(dst, "meta", err, "encoding meta: %v", err)
	}

	// Fixed layout: meta, edges, off, arcs — offsets computable up front.
	type lay struct {
		off, len uint64
	}
	align := func(x uint64) uint64 { return (x + 7) &^ 7 }
	const nsect = 4
	base := align(uint64(headerSize + nsect*sectionSize))
	layMeta := lay{base, uint64(len(mj))}
	layEdges := lay{align(layMeta.off + layMeta.len), uint64(24 * m)}
	layOff := lay{align(layEdges.off + layEdges.len), uint64(4 * (n + 1))}
	layArcs := lay{align(layOff.off + layOff.len), uint64(16 * 2 * m)}
	total := layArcs.off + layArcs.len

	dir := filepath.Dir(dst)
	tmp, err := os.CreateTemp(dir, filepath.Base(dst)+".tmp*")
	if err != nil {
		return res, core.ArtifactErrorf(dst, "", err, "creating temp file: %v", err)
	}
	defer os.Remove(tmp.Name())
	defer tmp.Close()
	if err := tmp.Truncate(int64(total)); err != nil {
		return res, core.ArtifactErrorf(dst, "", err, "sizing temp file: %v", err)
	}

	// cursor[v] is the next free arc slot for vertex v; doubles as the
	// CSR offset array before the scatter starts.
	cursor := make([]int64, n+1)
	var acc int64
	for v := 0; v < n; v++ {
		cursor[v] = acc
		acc += int64(deg[v])
	}
	cursor[n] = acc

	// off section: the prefix sums, written before cursor starts moving.
	offBytes := make([]byte, layOff.len)
	for v := 0; v <= n; v++ {
		if cursor[v] > math.MaxInt32 {
			return res, core.ArtifactErrorf(dst, "graph-off", nil,
				"arc offset %d overflows the int32 CSR index (2m = %d)", cursor[v], 2*m)
		}
		binary.LittleEndian.PutUint32(offBytes[v*4:], uint32(cursor[v]))
	}
	if _, err := tmp.WriteAt(offBytes, int64(layOff.off)); err != nil {
		return res, core.ArtifactErrorf(dst, "graph-off", err, "writing offsets: %v", err)
	}
	crcOff := crc32.Checksum(offBytes, castagnoli)
	offBytes = nil

	if _, err := tmp.WriteAt(mj, int64(layMeta.off)); err != nil {
		return res, core.ArtifactErrorf(dst, "meta", err, "writing meta: %v", err)
	}

	// Pass 2: sequential edge records + arc scatter.
	crcEdges, err := convertWriteEdges(src, dst, tmp, n, m, int64(layEdges.off), int64(layArcs.off), cursor)
	if err != nil {
		return res, err
	}

	// Re-read the arcs region sequentially for its checksum.
	crcArcs, err := checksumRegion(tmp, int64(layArcs.off), int64(layArcs.len))
	if err != nil {
		return res, core.ArtifactErrorf(dst, "graph-arcs", err, "checksumming arcs: %v", err)
	}

	// Header + table.
	sections := []section{
		{kind: secMeta, off: layMeta.off, len: layMeta.len, crc: crc32.Checksum(mj, castagnoli)},
		{kind: secGraphEdges, off: layEdges.off, len: layEdges.len, crc: crcEdges},
		{kind: secGraphOff, off: layOff.off, len: layOff.len, crc: crcOff},
		{kind: secGraphArcs, off: layArcs.off, len: layArcs.len, crc: crcArcs},
	}
	table := make([]byte, nsect*sectionSize)
	for i, s := range sections {
		e := table[i*sectionSize:]
		binary.LittleEndian.PutUint32(e[0:], s.kind)
		binary.LittleEndian.PutUint64(e[8:], s.off)
		binary.LittleEndian.PutUint64(e[16:], s.len)
		binary.LittleEndian.PutUint32(e[24:], s.crc)
	}
	hdr := make([]byte, headerSize)
	copy(hdr, magic[:])
	binary.LittleEndian.PutUint32(hdr[8:], FormatVersion)
	binary.LittleEndian.PutUint32(hdr[12:], nsect)
	binary.LittleEndian.PutUint32(hdr[16:], crc32.Checksum(table, castagnoli))
	binary.LittleEndian.PutUint32(hdr[20:], crc32.Checksum(hdr[:20], castagnoli))
	if _, err := tmp.WriteAt(hdr, 0); err != nil {
		return res, core.ArtifactErrorf(dst, "header", err, "writing header: %v", err)
	}
	if _, err := tmp.WriteAt(table, headerSize); err != nil {
		return res, core.ArtifactErrorf(dst, "section-table", err, "writing section table: %v", err)
	}
	if err := tmp.Sync(); err != nil {
		return res, core.ArtifactErrorf(dst, "", err, "syncing: %v", err)
	}
	if err := tmp.Close(); err != nil {
		return res, core.ArtifactErrorf(dst, "", err, "closing: %v", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return res, core.ArtifactErrorf(dst, "", err, "renaming into place: %v", err)
	}
	return res, nil
}

// edgeListScanner yields (u, v, w) records from either supported grammar,
// normalizing to 0-based vertex ids.
type edgeListScanner struct {
	sc       *bufio.Scanner
	path     string
	line     int
	n, m     int
	oneBased bool // DIMACS ids are 1-based
	edgeTag  string
}

func newEdgeListScanner(path string, r io.Reader) *edgeListScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	return &edgeListScanner{sc: sc, path: path}
}

func (s *edgeListScanner) errf(format string, args ...any) error {
	return core.ArtifactErrorf(s.path, "", nil, "line %d: %s", s.line, fmt.Sprintf(format, args...))
}

// header consumes lines up to and including the header, establishing the
// grammar and (n, m).
func (s *edgeListScanner) header() error {
	for s.sc.Scan() {
		s.line++
		text := strings.TrimSpace(s.sc.Text())
		switch {
		case text == "" || strings.HasPrefix(text, "#"):
			continue
		case text == "c" || strings.HasPrefix(text, "c "):
			continue // DIMACS comment
		case strings.HasPrefix(text, "n "):
			if _, err := fmt.Sscanf(text, "n %d %d", &s.n, &s.m); err != nil {
				return s.errf("bad native header %q: %v", text, err)
			}
			s.edgeTag = "e"
		case strings.HasPrefix(text, "p "):
			var kind string
			if _, err := fmt.Sscanf(text, "p %s %d %d", &kind, &s.n, &s.m); err != nil || kind != "sp" {
				return s.errf("bad DIMACS problem line %q (want \"p sp <n> <m>\")", text)
			}
			s.edgeTag = "a"
			s.oneBased = true
		default:
			return s.errf("expected a header line before %q", text)
		}
		if s.edgeTag != "" {
			if s.n < 0 || s.m < 0 {
				return s.errf("negative header values n=%d m=%d", s.n, s.m)
			}
			return nil
		}
	}
	if err := s.sc.Err(); err != nil {
		return core.ArtifactErrorf(s.path, "", err, "reading: %v", err)
	}
	return core.ArtifactErrorf(s.path, "", nil, "missing header line")
}

// next returns the next edge, or io.EOF after the last one.
func (s *edgeListScanner) next() (u, v int, w float64, err error) {
	for s.sc.Scan() {
		s.line++
		text := strings.TrimSpace(s.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") ||
			(s.oneBased && (text == "c" || strings.HasPrefix(text, "c "))) {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 4 || fields[0] != s.edgeTag {
			return 0, 0, 0, s.errf("unrecognized record %q (want \"%s <u> <v> <w>\")", text, s.edgeTag)
		}
		if u, err = strconv.Atoi(fields[1]); err != nil {
			return 0, 0, 0, s.errf("bad endpoint %q: %v", fields[1], err)
		}
		if v, err = strconv.Atoi(fields[2]); err != nil {
			return 0, 0, 0, s.errf("bad endpoint %q: %v", fields[2], err)
		}
		if w, err = strconv.ParseFloat(fields[3], 64); err != nil {
			return 0, 0, 0, s.errf("bad weight %q: %v", fields[3], err)
		}
		if s.oneBased {
			u--
			v--
		}
		if u < 0 || u >= s.n || v < 0 || v >= s.n {
			return 0, 0, 0, s.errf("edge (%d,%d) out of range for n=%d", u, v, s.n)
		}
		if u == v {
			return 0, 0, 0, s.errf("self-loop at vertex %d", u)
		}
		if !(w > 0) {
			return 0, 0, 0, s.errf("non-positive weight %v", w)
		}
		return u, v, w, nil
	}
	if err := s.sc.Err(); err != nil {
		return 0, 0, 0, core.ArtifactErrorf(s.path, "", err, "reading: %v", err)
	}
	return 0, 0, 0, io.EOF
}

// convertScanDegrees is pass one: full validation plus the degree tally.
func convertScanDegrees(src string) (n, m int, deg []int32, err error) {
	f, err := os.Open(src)
	if err != nil {
		return 0, 0, nil, core.ArtifactErrorf(src, "", err, "opening: %v", err)
	}
	defer f.Close()
	s := newEdgeListScanner(src, bufio.NewReaderSize(f, 1<<20))
	if err := s.header(); err != nil {
		return 0, 0, nil, err
	}
	deg = make([]int32, s.n)
	count := 0
	for {
		u, v, _, err := s.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, 0, nil, err
		}
		deg[u]++
		deg[v]++
		count++
	}
	if count != s.m {
		return 0, 0, nil, core.ArtifactErrorf(src, "", nil,
			"header declared %d edges, found %d", s.m, count)
	}
	return s.n, s.m, deg, nil
}

// convertWriteEdges is pass two: sequential 24-byte edge records (buffered)
// plus two 16-byte arc records per edge scattered with WriteAt, advancing
// the per-vertex cursors. Returns the edges section's CRC.
func convertWriteEdges(src, dst string, out *os.File, n, m int, edgesOff, arcsOff int64, cursor []int64) (uint32, error) {
	f, err := os.Open(src)
	if err != nil {
		return 0, core.ArtifactErrorf(src, "", err, "reopening for pass two: %v", err)
	}
	defer f.Close()
	s := newEdgeListScanner(src, bufio.NewReaderSize(f, 1<<20))
	if err := s.header(); err != nil {
		return 0, err
	}
	if s.n != n || s.m != m {
		return 0, core.ArtifactErrorf(src, "", nil,
			"input changed between passes (header now n=%d m=%d, was n=%d m=%d)", s.n, s.m, n, m)
	}

	crc := crc32.New(castagnoli)
	ew := bufio.NewWriterSize(&sectionWriter{f: out, off: edgesOff}, 1<<20)
	var edgeRec [24]byte
	var arcRec [16]byte
	for id := 0; ; id++ {
		u, v, w, err := s.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, err
		}
		binary.LittleEndian.PutUint64(edgeRec[0:], uint64(int64(u)))
		binary.LittleEndian.PutUint64(edgeRec[8:], uint64(int64(v)))
		binary.LittleEndian.PutUint64(edgeRec[16:], math.Float64bits(w))
		if _, err := ew.Write(edgeRec[:]); err != nil {
			return 0, core.ArtifactErrorf(dst, "graph-edges", err, "writing edges: %v", err)
		}
		crc.Write(edgeRec[:])

		// Arc u → v and its reverse, each at its vertex's next slot.
		binary.LittleEndian.PutUint64(arcRec[0:], uint64(int64(v)))
		binary.LittleEndian.PutUint64(arcRec[8:], uint64(int64(id)))
		if _, err := out.WriteAt(arcRec[:], arcsOff+16*cursor[u]); err != nil {
			return 0, core.ArtifactErrorf(dst, "graph-arcs", err, "writing arcs: %v", err)
		}
		cursor[u]++
		binary.LittleEndian.PutUint64(arcRec[0:], uint64(int64(u)))
		if _, err := out.WriteAt(arcRec[:], arcsOff+16*cursor[v]); err != nil {
			return 0, core.ArtifactErrorf(dst, "graph-arcs", err, "writing arcs: %v", err)
		}
		cursor[v]++
	}
	if err := ew.Flush(); err != nil {
		return 0, core.ArtifactErrorf(dst, "graph-edges", err, "flushing edges: %v", err)
	}
	return crc.Sum32(), nil
}

// sectionWriter adapts WriteAt to io.Writer for buffered sequential output
// into a region of the file, independent of the file's seek offset.
type sectionWriter struct {
	f   *os.File
	off int64
}

func (w *sectionWriter) Write(p []byte) (int, error) {
	n, err := w.f.WriteAt(p, w.off)
	w.off += int64(n)
	return n, err
}

// checksumRegion CRCs length bytes of f starting at off, reading
// sequentially through a buffer.
func checksumRegion(f *os.File, off, length int64) (uint32, error) {
	crc := crc32.New(castagnoli)
	if _, err := io.Copy(crc, io.NewSectionReader(f, off, length)); err != nil {
		return 0, err
	}
	return crc.Sum32(), nil
}
