package artifact

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpcspanner/internal/core"
	"mpcspanner/internal/graph"
)

// writeFile drops content into a temp file and returns its path.
func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestConvertNative pins that the streaming converter produces the same
// graph as the in-memory path: render a GNP graph to the native text format,
// Convert it, and compare against graph.ReadFrom of the same text.
func TestConvertNative(t *testing.T) {
	g := testGraph(t, 250, 11)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	src := writeFile(t, "g.txt", buf.String())
	dst := filepath.Join(t.TempDir(), "g.art")

	res, err := Convert(src, dst)
	if err != nil {
		t.Fatalf("Convert: %v", err)
	}
	if res.N != g.N() || res.M != g.M() {
		t.Fatalf("ConvertResult: got n=%d m=%d, want n=%d m=%d", res.N, res.M, g.N(), g.M())
	}

	want, err := graph.ReadFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []OpenOptions{{}, {ForceHeap: true}} {
		a, err := Open(dst, opt)
		if err != nil {
			t.Fatalf("Open(%v): %v", opt, err)
		}
		sameGraph(t, want, a.Graph())
		if fp := a.Fingerprint(); fp.Algorithm != "graph" {
			t.Errorf("converted fingerprint algorithm: got %q, want \"graph\"", fp.Algorithm)
		}
		if RowsOf(a).Len() != 0 {
			t.Error("converted artifact should carry no rows")
		}
		a.Close()
	}
}

// TestConvertDIMACS feeds the 1-based DIMACS grammar and checks the ids come
// out normalized to 0-based.
func TestConvertDIMACS(t *testing.T) {
	src := writeFile(t, "g.gr", strings.Join([]string{
		"c a DIMACS shortest-path instance",
		"p sp 4 3",
		"a 1 2 1.5",
		"c mid-file comment",
		"a 2 3 2",
		"a 3 4 0.25",
		"",
	}, "\n"))
	dst := filepath.Join(t.TempDir(), "g.art")
	res, err := Convert(src, dst)
	if err != nil {
		t.Fatalf("Convert: %v", err)
	}
	if res.N != 4 || res.M != 3 {
		t.Fatalf("got n=%d m=%d, want n=4 m=3", res.N, res.M)
	}
	a, err := Open(dst, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	want := []graph.Edge{{U: 0, V: 1, W: 1.5}, {U: 1, V: 2, W: 2}, {U: 2, V: 3, W: 0.25}}
	got := a.Graph().Edges()
	if len(got) != len(want) {
		t.Fatalf("edges: got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestConvertMatchesWrite pins the stronger property: converting a text
// rendering of g yields the byte-identical file that Write(Payload{Graph})
// of the parsed graph yields, so the two construction paths share one
// checksum identity.
func TestConvertMatchesWrite(t *testing.T) {
	g := testGraph(t, 180, 21)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := graph.ReadFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	conv := filepath.Join(dir, "conv.art")
	wrote := filepath.Join(dir, "wrote.art")
	if _, err := Convert(writeFile(t, "g.txt", buf.String()), conv); err != nil {
		t.Fatal(err)
	}
	if err := Write(wrote, Payload{Graph: parsed, Fingerprint: Fingerprint{Algorithm: "graph"}}); err != nil {
		t.Fatal(err)
	}
	cb, err := os.ReadFile(conv)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := os.ReadFile(wrote)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cb, wb) {
		t.Fatalf("Convert and Write disagree: %d vs %d bytes", len(cb), len(wb))
	}
}

func TestConvertRejectsBadInput(t *testing.T) {
	cases := []struct {
		name, content, wantSub string
	}{
		{"empty", "", "missing header"},
		{"no header", "e 0 1 2\n", "expected a header line"},
		{"bad dimacs problem", "p max 3 2\na 1 2 1\na 2 3 1\n", "p sp"},
		{"edge count short", "n 3 2\ne 0 1 1\n", "declared 2 edges, found 1"},
		{"edge count long", "n 3 1\ne 0 1 1\ne 1 2 1\n", "declared 1 edges, found 2"},
		{"out of range", "n 3 1\ne 0 3 1\n", "out of range"},
		{"self loop", "n 3 1\ne 1 1 1\n", "self-loop"},
		{"zero weight", "n 3 1\ne 0 1 0\n", "non-positive weight"},
		{"negative weight", "n 3 1\ne 0 1 -2\n", "non-positive weight"},
		{"bad weight", "n 3 1\ne 0 1 cheap\n", "bad weight"},
		{"unrecognized record", "n 3 1\nq 0 1 1\n", "unrecognized record"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := writeFile(t, "bad.txt", tc.content)
			dst := filepath.Join(t.TempDir(), "bad.art")
			_, err := Convert(src, dst)
			if err == nil {
				t.Fatal("Convert accepted bad input")
			}
			if !errors.Is(err, core.ErrArtifact) {
				t.Fatalf("want ErrArtifact, got %v", err)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not contain %q", err, tc.wantSub)
			}
			if _, err := os.Stat(dst); !errors.Is(err, os.ErrNotExist) {
				t.Errorf("failed Convert left a file at dst: %v", err)
			}
		})
	}
}

// TestConvertLarger exercises the streaming path on a graph big enough that
// the buffered edge writer flushes more than once.
func TestConvertLarger(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g := testGraph(t, 5000, 33)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	src := writeFile(t, "g.txt", buf.String())
	dst := filepath.Join(t.TempDir(), "g.art")
	if _, err := Convert(src, dst); err != nil {
		t.Fatal(err)
	}
	a, err := Open(dst, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	want, err := graph.ReadFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, want, a.Graph())
}

// TestConvertWeightBits pins that weights survive the text round trip at
// full precision for values %g prints exactly.
func TestConvertWeightBits(t *testing.T) {
	weights := []float64{1, 0.1, 1e-12, 12345.6789, 3.141592653589793}
	var sb strings.Builder
	fmt.Fprintf(&sb, "n %d %d\n", len(weights)+1, len(weights))
	for i, w := range weights {
		fmt.Fprintf(&sb, "e %d %d %g\n", i, i+1, w)
	}
	src := writeFile(t, "w.txt", sb.String())
	dst := filepath.Join(t.TempDir(), "w.art")
	if _, err := Convert(src, dst); err != nil {
		t.Fatal(err)
	}
	a, err := Open(dst, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i, e := range a.Graph().Edges() {
		if e.W != weights[i] {
			t.Errorf("edge %d weight: got %v, want %v", i, e.W, weights[i])
		}
	}
}
