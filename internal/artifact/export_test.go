package artifact

// MmapOpenSupported reports whether this platform can serve the mmap loader
// (map support and safe []byte→[]float64 casting) — exported for the
// external benchmark package, which cannot live inside package artifact
// without creating an import cycle through internal/mpc.
var MmapOpenSupported = mmapSupported && canCast
