package artifact

// Shared low-level framing helpers: CRC-32C checksums and atomic
// temp+fsync+rename file creation. The artifact container (write.go) and
// the extmem run files are both built on these, so every on-disk format in
// the repo shares one definition of "checksummed, crash-safe file".

import (
	"hash"
	"hash/crc32"
	"os"
	"path/filepath"

	"mpcspanner/internal/core"
)

// Checksum returns the CRC-32C (Castagnoli) of b — the checksum algorithm
// every on-disk format in this repo uses.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// NewChecksum returns an incremental CRC-32C hash for streaming writers
// that cannot hold the whole payload in memory.
func NewChecksum() hash.Hash32 { return crc32.New(castagnoli) }

// AtomicFile stages a file next to its final path and renames it into place
// on Commit, so a crashed writer never leaves a half-written file where a
// reader will find it.
type AtomicFile struct {
	f    *os.File
	path string
	done bool
}

// CreateAtomic opens a temp file in path's directory, staged to become path
// on Commit. Errors are typed *core.ArtifactError.
func CreateAtomic(path string) (*AtomicFile, error) {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, core.ArtifactErrorf(path, "", err, "creating temp file: %v", err)
	}
	return &AtomicFile{f: f, path: path}, nil
}

// Write appends to the staged file.
func (a *AtomicFile) Write(p []byte) (int, error) { return a.f.Write(p) }

// WriteAt writes at an absolute offset in the staged file — how a streaming
// writer back-patches a header once counts and checksums are known.
func (a *AtomicFile) WriteAt(p []byte, off int64) (int, error) { return a.f.WriteAt(p, off) }

// Commit fsyncs, closes, and renames the staged file over the final path.
// After Commit (success or failure) the temp file is gone.
func (a *AtomicFile) Commit() error {
	if a.done {
		return core.ArtifactErrorf(a.path, "", nil, "commit on a finished atomic file")
	}
	a.done = true
	name := a.f.Name()
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		os.Remove(name)
		return core.ArtifactErrorf(a.path, "", err, "syncing: %v", err)
	}
	if err := a.f.Close(); err != nil {
		os.Remove(name)
		return core.ArtifactErrorf(a.path, "", err, "closing: %v", err)
	}
	if err := os.Rename(name, a.path); err != nil {
		os.Remove(name)
		return core.ArtifactErrorf(a.path, "", err, "renaming into place: %v", err)
	}
	return nil
}

// Abort discards the staged file. A no-op after Commit, so it is safe to
// defer unconditionally.
func (a *AtomicFile) Abort() {
	if a.done {
		return
	}
	a.done = true
	name := a.f.Name()
	a.f.Close()
	os.Remove(name)
}
