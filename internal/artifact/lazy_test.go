package artifact

import (
	"path/filepath"
	"runtime"
	"testing"

	"mpcspanner/internal/graph"
)

// lazyRowsArtifact writes an artifact whose frozen-row payload dominates the
// file: rows×n float64s ≫ graph sections.
func lazyRowsArtifact(t *testing.T, n, nrows int) (string, [][]float64) {
	t.Helper()
	g := graph.Connectify(graph.GNP(n, 4/float64(n), graph.UniformWeight(1, 50), 7), 50)
	srcs := make([]int, nrows)
	rows := make([][]float64, nrows)
	for i := range rows {
		srcs[i] = i * (n / nrows)
		row := make([]float64, n)
		for j := range row {
			row[j] = float64(i*n + j)
		}
		rows[i] = row
	}
	path := filepath.Join(t.TempDir(), "lazy.bin")
	if err := Write(path, Payload{Graph: g, RowSources: srcs, Rows: rows}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return path, rows
}

// TestHeapOpenDecodesRowsLazily pins the ROADMAP item-2 fix: a ForceHeap
// open must not materialize every frozen row up front. The file is ~row
// data, so an eager decode would allocate at least 2× the file size (heap
// copy of the file + all decoded rows); the lazy loader stays well under.
func TestHeapOpenDecodesRowsLazily(t *testing.T) {
	const n, nrows = 4096, 64
	path, want := lazyRowsArtifact(t, n, nrows)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	a, err := Open(path, OpenOptions{ForceHeap: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer a.Close()
	runtime.ReadMemStats(&after)

	rowBytes := uint64(nrows * n * 8)
	alloc := after.TotalAlloc - before.TotalAlloc
	// One file copy plus graph decode plus slack; eager row decode would
	// add another rowBytes on top and trip this.
	if limit := rowBytes + rowBytes/2; alloc > limit {
		t.Fatalf("heap open allocated %d bytes for a %d-byte row payload; rows are being decoded eagerly (limit %d)",
			alloc, rowBytes, limit)
	}

	// On-demand decode still serves the right values, memoized: the second
	// request for a source returns the same slice with zero allocations.
	r := RowsOf(a)
	for i, src := range r.Sources() {
		got, ok := r.FrozenRow(src)
		if !ok {
			t.Fatalf("FrozenRow(%d): not found", src)
		}
		for j, v := range got {
			if v != want[i][j] {
				t.Fatalf("row %d[%d] = %v, want %v", src, j, v, want[i][j])
			}
		}
	}
	src := r.Sources()[nrows/2]
	first, _ := r.FrozenRow(src)
	if avg := testing.AllocsPerRun(100, func() {
		again, _ := r.FrozenRow(src)
		if &again[0] != &first[0] {
			t.Errorf("FrozenRow(%d) returned a fresh slice on a repeat call", src)
		}
	}); avg != 0 {
		t.Fatalf("repeat FrozenRow allocates %.1f times per call, want 0 (memoization broken)", avg)
	}
}
