//go:build !linux && !darwin

package artifact

import (
	"errors"
	"os"
)

// mmapSupported is false here: platforms without the syscall.Mmap surface
// we rely on always load artifacts through the portable heap decoder.
const mmapSupported = false

func mmapFile(f *os.File, size int) ([]byte, error) {
	return nil, errors.New("mmap not supported on this platform")
}

func munmapFile(b []byte) error { return nil }
