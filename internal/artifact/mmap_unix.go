//go:build linux || darwin

package artifact

import (
	"os"
	"syscall"
)

// mmapSupported gates the zero-copy load path; on these platforms Open
// prefers a shared read-only mapping so every replica on the box serves
// from one page-cache-resident copy of the artifact.
const mmapSupported = true

// mmapFile maps the first size bytes of f read-only and shared.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping returned by mmapFile.
func munmapFile(b []byte) error {
	return syscall.Munmap(b)
}
