package artifact

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sort"
	"strconv"
	"sync/atomic"
	"unsafe"

	"mpcspanner/internal/core"
	"mpcspanner/internal/graph"
)

// canCast reports whether this platform can reinterpret mapped file bytes
// as Go slices directly: little-endian, 64-bit int, and the in-memory
// layouts of graph.Edge / graph.Arc matching the on-disk records
// field-for-field. When any of this fails, Open silently takes the portable
// heap path instead — same answers, one copy.
var canCast = func() bool {
	var x uint16 = 1
	little := *(*byte)(unsafe.Pointer(&x)) == 1
	var e graph.Edge
	var a graph.Arc
	return little && strconv.IntSize == 64 &&
		unsafe.Sizeof(e) == 24 &&
		unsafe.Offsetof(e.U) == 0 && unsafe.Offsetof(e.V) == 8 && unsafe.Offsetof(e.W) == 16 &&
		unsafe.Sizeof(a) == 16 &&
		unsafe.Offsetof(a.To) == 0 && unsafe.Offsetof(a.Edge) == 8
}()

// OpenOptions tunes Open. The zero value is the right default everywhere
// outside tests and benchmarks.
type OpenOptions struct {
	// ForceHeap disables the mmap fast path, decoding the file into fresh
	// heap slices through the portable codec instead. Useful to pin that
	// both loaders agree, and as an escape hatch on filesystems where
	// mapping misbehaves.
	ForceHeap bool
}

// Artifact is an opened container: a ready-to-serve graph plus the
// provenance needed to trust it. When Mapped reports true, the graph's
// slices alias a read-only file mapping shared page-cache-resident with
// every other process mapping the same file; Close unmaps it, so an
// Artifact must outlive every Session serving from it.
type Artifact struct {
	path     string
	mapped   bool
	raw      []byte // the whole file (mapping or heap copy)
	meta     meta
	g        *graph.Graph
	edgeIDs  []int
	rows     *Rows
	checksum string
	closed   bool
}

// Open reads, verifies, and adopts the artifact at path. Every checksum in
// the file — header, section table, and each section — is verified before
// any section is decoded, so a failure is always a typed *core.ArtifactError
// (matching core.ErrArtifact) rather than a panic later. On 64-bit
// little-endian platforms with working mmap the graph is served zero-copy
// from a shared read-only mapping; elsewhere it is decoded into the heap.
func Open(path string, opt OpenOptions) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, core.ArtifactErrorf(path, "", err, "opening: %v", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, core.ArtifactErrorf(path, "", err, "stat: %v", err)
	}
	size := st.Size()
	if size < headerSize {
		return nil, core.ArtifactErrorf(path, "header", nil,
			"file is %d bytes, smaller than the %d-byte header", size, headerSize)
	}
	if size > int64(math.MaxInt) {
		return nil, core.ArtifactErrorf(path, "", nil, "file is too large to address (%d bytes)", size)
	}

	a := &Artifact{path: path}
	if opt.ForceHeap || !canCast || !mmapSupported {
		a.raw = make([]byte, size)
		if _, err := f.ReadAt(a.raw, 0); err != nil {
			return nil, core.ArtifactErrorf(path, "", err, "reading: %v", err)
		}
	} else {
		m, err := mmapFile(f, int(size))
		if err != nil {
			return nil, core.ArtifactErrorf(path, "", err, "mmap: %v", err)
		}
		a.raw = m
		a.mapped = true
	}
	if err := a.parse(); err != nil {
		a.Close()
		return nil, err
	}
	return a, nil
}

// parse verifies the container and adopts its sections into a.
func (a *Artifact) parse() error {
	raw, path := a.raw, a.path
	hdr := raw[:headerSize]
	if [8]byte(hdr[:8]) != magic {
		return core.ArtifactErrorf(path, "header", nil,
			"bad magic %q: not an mpcspanner artifact", hdr[:8])
	}
	if got, want := crc32.Checksum(hdr[:20], castagnoli), binary.LittleEndian.Uint32(hdr[20:]); got != want {
		return core.ArtifactErrorf(path, "header", nil,
			"header checksum mismatch (stored %08x, computed %08x)", want, got)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != FormatVersion {
		return core.ArtifactErrorf(path, "header", nil,
			"format version %d is newer than this build understands (max %d)", v, FormatVersion)
	}
	nsect := int(binary.LittleEndian.Uint32(hdr[12:]))
	if nsect < 1 || headerSize+nsect*sectionSize > len(raw) {
		return core.ArtifactErrorf(path, "section-table", nil,
			"section count %d does not fit a %d-byte file", nsect, len(raw))
	}
	table := raw[headerSize : headerSize+nsect*sectionSize]
	if got, want := crc32.Checksum(table, castagnoli), binary.LittleEndian.Uint32(hdr[16:]); got != want {
		return core.ArtifactErrorf(path, "section-table", nil,
			"section table checksum mismatch (stored %08x, computed %08x)", want, got)
	}

	// Verify every section's bounds and checksum before decoding anything.
	bySection := map[uint32][]byte{}
	for i := 0; i < nsect; i++ {
		e := table[i*sectionSize:]
		s := section{
			kind: binary.LittleEndian.Uint32(e[0:]),
			off:  binary.LittleEndian.Uint64(e[8:]),
			len:  binary.LittleEndian.Uint64(e[16:]),
			crc:  binary.LittleEndian.Uint32(e[24:]),
		}
		name := sectionName(s.kind)
		switch s.kind {
		case secMeta, secGraphEdges, secGraphOff, secGraphArcs, secEdgeIDs, secRowSources, secRowData:
		default:
			return core.ArtifactErrorf(path, name, nil, "unknown section kind %d", s.kind)
		}
		if _, dup := bySection[s.kind]; dup {
			return core.ArtifactErrorf(path, name, nil, "duplicate section")
		}
		if s.off%8 != 0 {
			return core.ArtifactErrorf(path, name, nil, "offset %d is not 8-byte aligned", s.off)
		}
		if s.off > uint64(len(raw)) || s.len > uint64(len(raw))-s.off {
			return core.ArtifactErrorf(path, name, nil,
				"section [%d,+%d) overruns the %d-byte file (truncated?)", s.off, s.len, len(raw))
		}
		payload := raw[s.off : s.off+s.len]
		if got := crc32.Checksum(payload, castagnoli); got != s.crc {
			return core.ArtifactErrorf(path, name, nil,
				"checksum mismatch (stored %08x, computed %08x)", s.crc, got)
		}
		bySection[s.kind] = payload
	}

	// The artifact checksum is the CRC of header+table: it covers the
	// version, every section's kind, length, and content CRC, so any
	// change anywhere in the file changes it. Identical on mapped and
	// heap opens of the same file.
	a.checksum = fmt.Sprintf("%08x", crc32.Checksum(raw[:headerSize+nsect*sectionSize], castagnoli))

	for _, kind := range []uint32{secMeta, secGraphEdges, secGraphOff, secGraphArcs} {
		if _, ok := bySection[kind]; !ok {
			return core.ArtifactErrorf(path, sectionName(kind), nil, "required section missing")
		}
	}
	if err := json.Unmarshal(bySection[secMeta], &a.meta); err != nil {
		return core.ArtifactErrorf(path, "meta", err, "decoding meta JSON: %v", err)
	}
	if a.meta.Format != FormatVersion {
		return core.ArtifactErrorf(path, "meta", nil,
			"meta declares format %d, header declares %d", a.meta.Format, FormatVersion)
	}

	edges, err := a.decodeEdges(bySection[secGraphEdges])
	if err != nil {
		return err
	}
	off, err := a.decodeInt32s(bySection[secGraphOff], "graph-off")
	if err != nil {
		return err
	}
	arcs, err := a.decodeArcs(bySection[secGraphArcs])
	if err != nil {
		return err
	}
	if len(edges) != a.meta.M || len(off) != a.meta.N+1 {
		return core.ArtifactErrorf(path, "meta", nil,
			"meta shape (n=%d m=%d) disagrees with sections (%d offsets, %d edges)",
			a.meta.N, a.meta.M, len(off), len(edges))
	}
	g, err := graph.Adopt(a.meta.N, edges, off, arcs)
	if err != nil {
		return core.ArtifactErrorf(path, "graph-arcs", err, "adopting graph: %v", err)
	}
	a.g = g

	if b, ok := bySection[secEdgeIDs]; ok {
		ids, err := a.decodeInts(b, "edge-ids")
		if err != nil {
			return err
		}
		a.edgeIDs = ids
	}

	srcB, hasSrc := bySection[secRowSources]
	dataB, hasData := bySection[secRowData]
	if hasSrc != hasData {
		return core.ArtifactErrorf(path, "row-sources", nil,
			"row-sources and row-data must appear together")
	}
	if hasSrc {
		srcs, err := a.decodeInts(srcB, "row-sources")
		if err != nil {
			return err
		}
		n := a.meta.N
		if len(dataB)%8 != 0 {
			return core.ArtifactErrorf(path, "row-data", nil,
				"section length %d is not a multiple of 8", len(dataB))
		}
		if len(dataB)/8 != len(srcs)*n {
			return core.ArtifactErrorf(path, "row-data", nil,
				"%d row values for %d sources over n=%d vertices", len(dataB)/8, len(srcs), n)
		}
		if len(srcs) != a.meta.Rows {
			return core.ArtifactErrorf(path, "row-sources", nil,
				"meta declares %d rows, section holds %d", a.meta.Rows, len(srcs))
		}
		for i, s := range srcs {
			if s < 0 || s >= n {
				return core.ArtifactErrorf(path, "row-sources", nil,
					"row source %d out of range [0,%d)", s, n)
			}
			if i > 0 && srcs[i-1] >= s {
				return core.ArtifactErrorf(path, "row-sources", nil,
					"row sources not strictly increasing at index %d", i)
			}
		}
		if a.mapped && canCast {
			data, err := a.decodeFloat64s(dataB)
			if err != nil {
				return err
			}
			a.rows = &Rows{n: n, srcs: srcs, data: data}
		} else {
			// Heap path: keep the encoded section bytes and decode rows
			// on demand, so opening a large artifact does not materialize
			// every frozen row up front.
			a.rows = &Rows{n: n, srcs: srcs, raw: dataB,
				lazy: make([]atomic.Pointer[[]float64], len(srcs))}
		}
	} else if a.meta.Rows != 0 {
		return core.ArtifactErrorf(path, "meta", nil,
			"meta declares %d rows but the sections are absent", a.meta.Rows)
	}
	return nil
}

// Graph returns the contained graph, ready to serve. For a mapped artifact
// the graph aliases the mapping: it is valid until Close and must never be
// mutated.
func (a *Artifact) Graph() *graph.Graph { return a.g }

// EdgeIDs returns the recorded spanner edge ids into the source graph
// (nil for bare graph artifacts). The slice may alias the read-only
// mapping; callers must not mutate it.
func (a *Artifact) EdgeIDs() []int { return a.edgeIDs }

// Fingerprint returns the determinism identity stored in the artifact.
func (a *Artifact) Fingerprint() Fingerprint { return a.meta.Fingerprint }

// Checksum returns the artifact's content identity: the hex CRC-32C of the
// header and section table, which transitively covers every byte of every
// section. Two files with equal checksums carry identical payloads.
func (a *Artifact) Checksum() string { return a.checksum }

// Mapped reports whether the artifact is served from a zero-copy read-only
// file mapping (true) or a heap copy (false).
func (a *Artifact) Mapped() bool { return a.mapped }

// Close releases the artifact's memory. For a mapped artifact this unmaps
// the file — every Graph, EdgeIDs, and row slice obtained from it becomes
// invalid; close only after the serving session is done. Close is
// idempotent.
func (a *Artifact) Close() error {
	if a.closed {
		return nil
	}
	a.closed = true
	raw := a.raw
	a.raw = nil
	if a.mapped {
		if err := munmapFile(raw); err != nil {
			return core.ArtifactErrorf(a.path, "", err, "munmap: %v", err)
		}
	}
	return nil
}

// SourceShape returns the (n, m) of the graph the build ran on, zero for
// bare graph artifacts.
func (a *Artifact) SourceShape() (n, m int) { return a.meta.SourceN, a.meta.SourceM }

// RowsOf returns a's precomputed oracle rows, or nil when it has none. A
// package-level function rather than a method so the facade's Artifact
// alias doesn't commit the internal Rows type to the public v1 surface.
func RowsOf(a *Artifact) *Rows { return a.rows }

// Rows is a frozen set of precomputed distance rows, servable behind the
// oracle cache (it implements oracle.RowSource). For mapped artifacts the
// data aliases the read-only file mapping zero-copy; for heap opens the
// encoded bytes are kept and each row is decoded the first time it is
// requested, memoized so repeated queries for the same source share one
// slice.
type Rows struct {
	n    int
	srcs []int
	data []float64                   // cast path: all rows, zero-copy
	raw  []byte                      // heap path: encoded row payload
	lazy []atomic.Pointer[[]float64] // heap path: rows decoded on demand
}

// Len returns the number of frozen rows.
func (r *Rows) Len() int {
	if r == nil {
		return 0
	}
	return len(r.srcs)
}

// Sources returns the frozen sources, sorted ascending. Callers must not
// mutate the slice.
func (r *Rows) Sources() []int {
	if r == nil {
		return nil
	}
	return r.srcs
}

// FrozenRow returns the precomputed distance row from src, or ok=false when
// src is not frozen. The returned slice is shared and read-only.
func (r *Rows) FrozenRow(src int) ([]float64, bool) {
	if r == nil {
		return nil, false
	}
	i := sort.SearchInts(r.srcs, src)
	if i >= len(r.srcs) || r.srcs[i] != src {
		return nil, false
	}
	if r.data != nil {
		return r.data[i*r.n : (i+1)*r.n : (i+1)*r.n], true
	}
	if p := r.lazy[i].Load(); p != nil {
		return *p, true
	}
	row := make([]float64, r.n)
	b := r.raw[i*r.n*8:]
	for j := range row {
		row[j] = math.Float64frombits(binary.LittleEndian.Uint64(b[j*8:]))
	}
	// Racing decoders produce identical rows; keep whichever landed first
	// so every caller shares one slice.
	r.lazy[i].CompareAndSwap(nil, &row)
	return *r.lazy[i].Load(), true
}

// --- section decoding ---------------------------------------------------
//
// Each decode* has two paths: a zero-copy unsafe reinterpretation of the
// section bytes (mapped artifacts on platforms where canCast holds — the
// writer's encoding is exactly the in-memory layout there) and a portable
// explicit decode into fresh slices (heap opens and exotic platforms).
// ForceHeap always takes the second path even where casts would work, so
// the loader-equivalence test exercises genuinely different code.

func (a *Artifact) decodeEdges(b []byte) ([]graph.Edge, error) {
	if len(b)%24 != 0 {
		return nil, core.ArtifactErrorf(a.path, "graph-edges", nil,
			"section length %d is not a multiple of the 24-byte edge record", len(b))
	}
	n := len(b) / 24
	if n == 0 {
		return nil, nil
	}
	if a.mapped && canCast {
		return unsafe.Slice((*graph.Edge)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]graph.Edge, n)
	for i := range out {
		p := b[i*24:]
		out[i] = graph.Edge{
			U: int(int64(binary.LittleEndian.Uint64(p[0:]))),
			V: int(int64(binary.LittleEndian.Uint64(p[8:]))),
			W: math.Float64frombits(binary.LittleEndian.Uint64(p[16:])),
		}
	}
	return out, nil
}

func (a *Artifact) decodeArcs(b []byte) ([]graph.Arc, error) {
	if len(b)%16 != 0 {
		return nil, core.ArtifactErrorf(a.path, "graph-arcs", nil,
			"section length %d is not a multiple of the 16-byte arc record", len(b))
	}
	n := len(b) / 16
	if n == 0 {
		return nil, nil
	}
	if a.mapped && canCast {
		return unsafe.Slice((*graph.Arc)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]graph.Arc, n)
	for i := range out {
		p := b[i*16:]
		out[i] = graph.Arc{
			To:   int(int64(binary.LittleEndian.Uint64(p[0:]))),
			Edge: int(int64(binary.LittleEndian.Uint64(p[8:]))),
		}
	}
	return out, nil
}

func (a *Artifact) decodeInt32s(b []byte, name string) ([]int32, error) {
	if len(b)%4 != 0 {
		return nil, core.ArtifactErrorf(a.path, name, nil,
			"section length %d is not a multiple of 4", len(b))
	}
	n := len(b) / 4
	if n == 0 {
		return nil, nil
	}
	if a.mapped && canCast {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}

func (a *Artifact) decodeInts(b []byte, name string) ([]int, error) {
	if len(b)%8 != 0 {
		return nil, core.ArtifactErrorf(a.path, name, nil,
			"section length %d is not a multiple of 8", len(b))
	}
	n := len(b) / 8
	if n == 0 {
		return nil, nil
	}
	if a.mapped && canCast {
		return unsafe.Slice((*int)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(int64(binary.LittleEndian.Uint64(b[i*8:])))
	}
	return out, nil
}

func (a *Artifact) decodeFloat64s(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, core.ArtifactErrorf(a.path, "row-data", nil,
			"section length %d is not a multiple of 8", len(b))
	}
	n := len(b) / 8
	if n == 0 {
		return nil, nil
	}
	if a.mapped && canCast {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}
