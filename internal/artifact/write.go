package artifact

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"math"
	"sort"

	"mpcspanner/internal/core"
	"mpcspanner/internal/graph"
)

// Payload is everything Write persists. Graph is the only required field:
// the graph a loading session serves (for a build artifact, the spanner
// subgraph; for a converted input, the input itself).
type Payload struct {
	// Graph is the graph to freeze. Required.
	Graph *graph.Graph

	// EdgeIDs are the spanner's edge ids into the source graph, recorded
	// for provenance (sorted ascending, as BuildResult reports them).
	// Optional.
	EdgeIDs []int

	// SourceN and SourceM record the shape of the graph the build ran on.
	// Zero when the artifact is a bare graph.
	SourceN, SourceM int

	// Fingerprint identifies the computation that produced the payload.
	Fingerprint Fingerprint

	// RowSources and Rows carry precomputed oracle rows: Rows[i] is the
	// full distance row from RowSources[i], length Graph.N(). Write sorts
	// the pairs by source, so callers can pass them in any order.
	// Optional; both or neither.
	RowSources []int
	Rows       [][]float64
}

// Write serializes p to path in artifact format version 1. The file is
// assembled next to path and renamed into place, so a crashed writer never
// leaves a half-written artifact where a loader will find it. Output bytes
// are a pure function of the payload — byte-identical payloads give
// byte-identical files, which makes the file checksum a usable build
// identity.
func Write(path string, p Payload) error {
	if p.Graph == nil {
		return core.ArtifactErrorf(path, "", nil, "cannot save a nil graph")
	}
	if len(p.RowSources) != len(p.Rows) {
		return core.ArtifactErrorf(path, "row-sources", nil,
			"%d row sources for %d rows", len(p.RowSources), len(p.Rows))
	}
	n := p.Graph.N()
	srcs, rows, err := sortedRows(path, n, p.RowSources, p.Rows)
	if err != nil {
		return err
	}

	off, arcs := graph.CSR(p.Graph)
	mj, err := json.Marshal(meta{
		Format:      FormatVersion,
		Fingerprint: p.Fingerprint,
		N:           n,
		M:           p.Graph.M(),
		SourceN:     p.SourceN,
		SourceM:     p.SourceM,
		Rows:        len(srcs),
	})
	if err != nil {
		return core.ArtifactErrorf(path, "meta", err, "encoding meta: %v", err)
	}

	var w writer
	w.section(secMeta, mj)
	w.section(secGraphEdges, encodeEdges(p.Graph.Edges()))
	w.section(secGraphOff, encodeInt32s(off))
	w.section(secGraphArcs, encodeArcs(arcs))
	if len(p.EdgeIDs) > 0 {
		w.section(secEdgeIDs, encodeInts(p.EdgeIDs))
	}
	if len(srcs) > 0 {
		w.section(secRowSources, encodeInts(srcs))
		w.section(secRowData, encodeFloat64s(rows))
	}
	return w.commit(path)
}

// sortedRows validates the precomputed rows and returns them ordered by
// source with duplicates rejected, plus the row data flattened row-major.
func sortedRows(path string, n int, srcs []int, rows [][]float64) ([]int, []float64, error) {
	if len(srcs) == 0 {
		return nil, nil, nil
	}
	order := make([]int, len(srcs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return srcs[order[a]] < srcs[order[b]] })
	outSrc := make([]int, len(srcs))
	outData := make([]float64, 0, len(srcs)*n)
	for i, idx := range order {
		s := srcs[idx]
		if s < 0 || s >= n {
			return nil, nil, core.ArtifactErrorf(path, "row-sources", nil,
				"row source %d out of range [0,%d)", s, n)
		}
		if i > 0 && s == outSrc[i-1] {
			return nil, nil, core.ArtifactErrorf(path, "row-sources", nil,
				"duplicate row source %d", s)
		}
		if len(rows[idx]) != n {
			return nil, nil, core.ArtifactErrorf(path, "row-data", nil,
				"row for source %d has %d entries, want n = %d", s, len(rows[idx]), n)
		}
		outSrc[i] = s
		outData = append(outData, rows[idx]...)
	}
	return outSrc, outData, nil
}

// writer accumulates aligned sections and their table, then commits the
// whole container atomically.
type writer struct {
	sections []section
	body     []byte // section payloads, offsets relative to file start
}

// section appends one section, 8-byte-aligned, recording its CRC.
func (w *writer) section(kind uint32, payload []byte) {
	for len(w.body)%8 != 0 {
		w.body = append(w.body, 0)
	}
	w.sections = append(w.sections, section{
		kind: kind,
		off:  uint64(len(w.body)), // body-relative; rebased in commit
		len:  uint64(len(payload)),
		crc:  crc32.Checksum(payload, castagnoli),
	})
	w.body = append(w.body, payload...)
}

// commit writes header + table + body to a temp file and renames it over
// path.
func (w *writer) commit(path string) error {
	base := headerSize + sectionSize*len(w.sections)
	for base%8 != 0 {
		base++
	}

	table := make([]byte, sectionSize*len(w.sections))
	for i, s := range w.sections {
		e := table[i*sectionSize:]
		binary.LittleEndian.PutUint32(e[0:], s.kind)
		binary.LittleEndian.PutUint64(e[8:], uint64(base)+s.off)
		binary.LittleEndian.PutUint64(e[16:], s.len)
		binary.LittleEndian.PutUint32(e[24:], s.crc)
	}

	hdr := make([]byte, base)
	copy(hdr, magic[:])
	binary.LittleEndian.PutUint32(hdr[8:], FormatVersion)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(w.sections)))
	binary.LittleEndian.PutUint32(hdr[16:], crc32.Checksum(table, castagnoli))
	binary.LittleEndian.PutUint32(hdr[20:], crc32.Checksum(hdr[:20], castagnoli))
	copy(hdr[headerSize:], table)

	af, err := CreateAtomic(path)
	if err != nil {
		return err
	}
	defer af.Abort()
	if _, err := af.Write(hdr); err == nil {
		_, err = af.Write(w.body)
	}
	if err != nil {
		return core.ArtifactErrorf(path, "", err, "writing: %v", err)
	}
	return af.Commit()
}

// The encode* helpers below are the single definition of the on-disk
// element encodings; the heap loader in read.go is their inverse and the
// mmap loader's unsafe casts are checked against them by
// TestMappedVsHeapIdentical.

func encodeEdges(edges []graph.Edge) []byte {
	b := make([]byte, 24*len(edges))
	for i, e := range edges {
		p := b[i*24:]
		binary.LittleEndian.PutUint64(p[0:], uint64(int64(e.U)))
		binary.LittleEndian.PutUint64(p[8:], uint64(int64(e.V)))
		binary.LittleEndian.PutUint64(p[16:], math.Float64bits(e.W))
	}
	return b
}

func encodeArcs(arcs []graph.Arc) []byte {
	b := make([]byte, 16*len(arcs))
	for i, a := range arcs {
		p := b[i*16:]
		binary.LittleEndian.PutUint64(p[0:], uint64(int64(a.To)))
		binary.LittleEndian.PutUint64(p[8:], uint64(int64(a.Edge)))
	}
	return b
}

func encodeInt32s(v []int32) []byte {
	b := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(b[i*4:], uint32(x))
	}
	return b
}

func encodeInts(v []int) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[i*8:], uint64(int64(x)))
	}
	return b
}

func encodeFloat64s(v []float64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(x))
	}
	return b
}
