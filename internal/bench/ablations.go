package bench

import (
	"math"

	"mpcspanner/internal/graph"
	"mpcspanner/internal/spanner"
)

// A1EqualRoundBudget ablates the paper's central design choice —
// contraction epochs with doubling sampling exponents — by comparing against
// the natural alternative under the *same iteration budget*: simply running
// [BS07] with a smaller stretch parameter k' such that k'−1 matches the
// iteration count. The claim being isolated: for a fixed round budget,
// contractions buy strictly more sparsification, because the quotient graph
// shrinks fast enough to justify ever-more-aggressive sampling.
func A1EqualRoundBudget(cfg Config) Table {
	tb := Table{
		ID:     "A1",
		Title:  "Ablation: contraction schedule vs truncated [BS07] at equal iteration budget",
		Claim:  "given the same number of grow iterations, the contraction schedule reaches a larger effective k (sparser spanner) than running [BS07] with k' = iterations+1",
		Header: []string{"iters", "general k", "general size", "BS07 k'", "BS07 size", "size ratio", "gen stretch", "bs stretch"},
	}
	n := cfg.scale(3000, 500)
	samples := cfg.scale(1200, 300)
	g := graph.GNP(n, 16/float64(n), graph.UniformWeight(1, 40), cfg.Seed+160)
	for _, k := range []int{16, 32, 64} {
		t := int(math.Max(1, math.Ceil(math.Log2(float64(k)))))
		gen, err := spanner.General(g, k, t, spanner.Options{Seed: cfg.Seed + 161})
		if err != nil {
			panic(err)
		}
		kPrime := gen.Stats.Iterations + 1
		bs, err := spanner.BaswanaSen(g, kPrime, spanner.Options{Seed: cfg.Seed + 161})
		if err != nil {
			panic(err)
		}
		genRep := measureStretch(g, gen.EdgeIDs, samples, cfg.Seed+162)
		bsRep := measureStretch(g, bs.EdgeIDs, samples, cfg.Seed+162)
		tb.AddRow(fmtI(gen.Stats.Iterations), fmtI(k), fmtI(gen.Size()),
			fmtI(kPrime), fmtI(bs.Size()),
			fmtF(float64(gen.Size())/float64(bs.Size())),
			fmtF(genRep.Max), fmtF(bsRep.Max))
	}
	tb.Note("size ratio < 1 means the contraction schedule sparsifies more per round; stretch columns show what that costs on this workload")
	return tb
}

// A2RepetitionPicker ablates the expectation-to-w.h.p. mechanism: how much
// does best-of-R repetition (Section 6's parallel repetitions; Theorem 8.1's
// per-iteration variant lives in T10) actually buy on the size, and at what
// diminishing rate.
func A2RepetitionPicker(cfg Config) Table {
	tb := Table{
		ID:     "A2",
		Title:  "Ablation: best-of-R parallel repetitions (the w.h.p. size mechanism)",
		Claim:  "the expected-size guarantee concentrates: repetitions shave the tail, with fast-diminishing returns",
		Header: []string{"R", "size", "vs R=1", "winning rep"},
	}
	n := cfg.scale(2500, 500)
	g := graph.GNP(n, 12/float64(n), graph.UniformWeight(1, 20), cfg.Seed+170)
	base := 0
	for _, reps := range []int{1, 2, 4, 8, 16} {
		r, err := spanner.General(g, 8, 2, spanner.Options{Seed: cfg.Seed + 171, Repetitions: reps})
		if err != nil {
			panic(err)
		}
		if reps == 1 {
			base = r.Size()
		}
		tb.AddRow(fmtI(reps), fmtI(r.Size()), fmtF(float64(r.Size())/float64(base)),
			fmtI(r.Stats.Repetition))
	}
	return tb
}
