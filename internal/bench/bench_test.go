package bench

import (
	"strconv"
	"strings"
	"testing"
)

// cell parses a numeric table cell.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("non-numeric cell %q: %v", s, err)
	}
	return v
}

func quickCfg() Config { return Config{Quick: true, Seed: 2024} }

func TestTableFormat(t *testing.T) {
	tb := Table{ID: "TX", Title: "demo", Claim: "c", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.Note("n=%d", 7)
	out := tb.Format()
	for _, want := range []string{"TX — demo", "claim: c", "a", "bb", "note: n=7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestAllTablesWellFormed(t *testing.T) {
	if testing.Short() {
		t.Skip("harness sweep in short mode")
	}
	tables := All(quickCfg())
	if len(tables) != 17 {
		t.Fatalf("expected 17 experiments, got %d", len(tables))
	}
	seen := map[string]bool{}
	for _, tb := range tables {
		if tb.ID == "" || tb.Title == "" || tb.Claim == "" {
			t.Fatalf("table %q lacks metadata", tb.ID)
		}
		if seen[tb.ID] {
			t.Fatalf("duplicate experiment id %s", tb.ID)
		}
		seen[tb.ID] = true
		if len(tb.Rows) == 0 {
			t.Fatalf("%s has no rows", tb.ID)
		}
		for i, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Fatalf("%s row %d has %d cells for %d headers", tb.ID, i, len(row), len(tb.Header))
			}
		}
	}
}

func TestT1BoundsHold(t *testing.T) {
	tb := T1GeneralTradeoff(quickCfg())
	// Columns: ..., iters(5), iterBound(6), ..., stretch(9), stretchBound(10).
	for _, row := range tb.Rows {
		if cell(t, row[5]) > cell(t, row[6]) {
			t.Fatalf("iterations exceed bound in row %v", row)
		}
		if cell(t, row[9]) > cell(t, row[10])+1e-9 {
			t.Fatalf("stretch exceeds bound in row %v", row)
		}
	}
}

func TestT5StretchWithinBound(t *testing.T) {
	tb := T5SqrtK(quickCfg())
	for _, row := range tb.Rows {
		if cell(t, row[6]) > cell(t, row[7])+1e-9 {
			t.Fatalf("sqrt-k stretch exceeds bound in row %v", row)
		}
	}
}

func TestT8CrossPlaneColumn(t *testing.T) {
	tb := T8MPCRounds(quickCfg())
	for _, row := range tb.Rows {
		if row[len(row)-1] != "true" {
			t.Fatalf("MPC and reference disagreed in row %v", row)
		}
		if cell(t, row[5]) > cell(t, row[6]) {
			t.Fatalf("rounds exceed bound in row %v", row)
		}
	}
}

func TestT9ApproxWithinBound(t *testing.T) {
	tb := T9APSP(quickCfg())
	for _, row := range tb.Rows {
		if row[6] != "true" {
			t.Fatalf("spanner did not fit one machine: %v", row)
		}
		if cell(t, row[7]) > cell(t, row[9])+1e-9 {
			t.Fatalf("approximation exceeds bound in row %v", row)
		}
	}
}

func TestF1CurveShape(t *testing.T) {
	tb := F1TradeoffCurve(quickCfg())
	// Stretch bounds must be non-increasing in t; iteration bounds trend
	// upward (ceiling effects allow a one-off dip at the t >= k-1 boundary,
	// e.g. IterationBound(16,8)=16 vs IterationBound(16,15)=15).
	for i := 1; i < len(tb.Rows); i++ {
		if cell(t, tb.Rows[i][4]) > cell(t, tb.Rows[i-1][4])+1e-9 {
			t.Fatalf("stretch bound increased along t at row %d", i)
		}
		if cell(t, tb.Rows[i][2]) < cell(t, tb.Rows[0][2]) {
			t.Fatalf("iteration bound at row %d fell below the t=1 bound", i)
		}
	}
	first, last := cell(t, tb.Rows[0][2]), cell(t, tb.Rows[len(tb.Rows)-1][2])
	if last < 2*first {
		t.Fatalf("iteration bound did not grow along t: %v -> %v", first, last)
	}
}

func TestT12SeparatesBaselines(t *testing.T) {
	tb := T12Baseline(quickCfg())
	// Row order: baswana-sen, sqrt-k, general(log k), cluster-merge.
	bsIters := cell(t, tb.Rows[0][2])
	cmIters := cell(t, tb.Rows[3][2])
	if cmIters >= bsIters {
		t.Fatalf("cluster-merge iterations %v not below BS07's %v", cmIters, bsIters)
	}
}
