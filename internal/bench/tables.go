package bench

import (
	"fmt"
	"math"

	"mpcspanner/internal/apsp"
	"mpcspanner/internal/cclique"
	"mpcspanner/internal/dist"
	"mpcspanner/internal/graph"
	"mpcspanner/internal/mpc"
	"mpcspanner/internal/oracle"
	"mpcspanner/internal/pram"
	"mpcspanner/internal/spanner"
)

// workload names a generated instance.
type workload struct {
	name string
	g    *graph.Graph
}

// standardWorkloads is the graph family most tables sweep.
func standardWorkloads(cfg Config) []workload {
	n := cfg.scale(2000, 400)
	side := cfg.scale(45, 20)
	return []workload{
		{"gnp", graph.GNP(n, 10/float64(n), graph.UniformWeight(1, 100), cfg.Seed+1)},
		{"grid", graph.Grid(side, side, graph.UniformWeight(1, 10), cfg.Seed+2)},
		{"pa", graph.PreferentialAttachment(n, 5, graph.ExpWeight(8), cfg.Seed+3)},
	}
}

// measureStretch samples edge stretch of the spanner edge set in g.
func measureStretch(g *graph.Graph, edgeIDs []int, samples int, seed uint64) dist.StretchReport {
	h := g.Subgraph(edgeIDs)
	rep, err := dist.SampledEdgeStretch(g, h, samples, seed)
	if err != nil {
		panic(err) // vertex sets always match here
	}
	return rep
}

// sizeBudget is the Theorem 5.15 envelope n^{1+1/k}(t + log k).
func sizeBudget(n, k, t int) float64 {
	return math.Pow(float64(n), 1+1/float64(k)) * (float64(t) + math.Log2(float64(k)) + 1)
}

// T1GeneralTradeoff validates Theorem 1.1 / Theorem 5.15: iterations,
// size, and stretch of General(k, t) across workloads and parameters.
func T1GeneralTradeoff(cfg Config) Table {
	tb := Table{
		ID:     "T1",
		Title:  "General trade-off algorithm (Theorem 1.1 / 5.15)",
		Claim:  "O(t·log k/log(t+1)) iterations, size O(n^{1+1/k}(t+log k)), stretch O(k^s), s=log(2t+1)/log(t+1)",
		Header: []string{"graph", "n", "m", "k", "t", "iters", "iterBound", "size", "size/budget", "stretch", "stretchBound"},
	}
	samples := cfg.scale(1500, 300)
	for _, w := range standardWorkloads(cfg) {
		for _, k := range []int{4, 8, 16} {
			for _, t := range []int{1, 2, 3} {
				r, err := spanner.General(w.g, k, t, spanner.Options{Seed: cfg.Seed + 10})
				if err != nil {
					panic(err)
				}
				rep := measureStretch(w.g, r.EdgeIDs, samples, cfg.Seed+11)
				tb.AddRow(w.name, fmtI(w.g.N()), fmtI(w.g.M()), fmtI(k), fmtI(t),
					fmtI(r.Stats.Iterations), fmtI(spanner.IterationBound(k, t)),
					fmtI(r.Size()), fmtF(float64(r.Size())/sizeBudget(w.g.N(), k, t)),
					fmtF(rep.Max), fmtF(spanner.StretchBound(k, t)))
			}
		}
	}
	tb.Note("stretch sampled over %d edges; size/budget is the hidden constant of Theorem 5.15", samples)
	return tb
}

// T2ClusterMerge validates Corollary 1.2(1): t=1 runs in O(log k) epochs
// with stretch O(k^{log 3}) and size O(n^{1+1/k}·log k).
func T2ClusterMerge(cfg Config) Table {
	tb := Table{
		ID:     "T2",
		Title:  "Cluster-cluster merging, t=1 (Corollary 1.2(1) / §4)",
		Claim:  "O(log k) epochs, stretch O(k^{log 3}), size O(n^{1+1/k}·log k)",
		Header: []string{"graph", "k", "epochs", "log2(k)", "iters", "size", "size/budget", "stretch", "2k^log3"},
	}
	samples := cfg.scale(1500, 300)
	for _, w := range standardWorkloads(cfg)[:2] {
		for _, k := range []int{4, 8, 16, 32} {
			r, err := spanner.ClusterMerge(w.g, k, spanner.Options{Seed: cfg.Seed + 20})
			if err != nil {
				panic(err)
			}
			rep := measureStretch(w.g, r.EdgeIDs, samples, cfg.Seed+21)
			tb.AddRow(w.name, fmtI(k), fmtI(r.Stats.Epochs), fmtF(math.Log2(float64(k))),
				fmtI(r.Stats.Iterations), fmtI(r.Size()),
				fmtF(float64(r.Size())/sizeBudget(w.g.N(), k, 1)),
				fmtF(rep.Max), fmtF(spanner.StretchBound(k, 1)))
		}
	}
	return tb
}

// T3StretchEps validates Corollary 1.2(2)-(3): larger t trades iterations
// for stretch k^{1+ε} down to k^{1+o(1)} at t = log k.
func T3StretchEps(cfg Config) Table {
	tb := Table{
		ID:     "T3",
		Title:  "Stretch k^{1+ε} and k^{1+o(1)} regimes (Corollary 1.2(2)-(3))",
		Claim:  "t=2^{1/ε} gives stretch O(k^{1+ε}); t=log k gives O(k^{1+o(1)}) in O(log²k/log log k) iterations",
		Header: []string{"graph", "k", "t", "s=log(2t+1)/log(t+1)", "iters", "stretch", "2k^s", "size"},
	}
	samples := cfg.scale(1500, 300)
	k := 16
	for _, w := range standardWorkloads(cfg)[:2] {
		for _, t := range []int{2, 4, int(math.Log2(float64(k)))} {
			r, err := spanner.General(w.g, k, t, spanner.Options{Seed: cfg.Seed + 30})
			if err != nil {
				panic(err)
			}
			rep := measureStretch(w.g, r.EdgeIDs, samples, cfg.Seed+31)
			s := math.Log(float64(2*t+1)) / math.Log(float64(t+1))
			tb.AddRow(w.name, fmtI(k), fmtI(t), fmtF(s), fmtI(r.Stats.Iterations),
				fmtF(rep.Max), fmtF(spanner.StretchBound(k, t)), fmtI(r.Size()))
		}
	}
	return tb
}

// T4NearLinear validates Corollary 1.2(4): k = log n, t = log k gives size
// O(n·log log n) and stretch O(log^{1+o(1)} n).
func T4NearLinear(cfg Config) Table {
	tb := Table{
		ID:     "T4",
		Title:  "Near-linear spanner, k = log n (Corollary 1.2(4))",
		Claim:  "size O(n·log log n), stretch O(log^{1+o(1)} n), O(log² log n / log log log n) iterations",
		Header: []string{"n", "m", "k=log n", "t=log k", "iters", "size", "size/(n·loglog n)", "stretch", "bound"},
	}
	samples := cfg.scale(1200, 300)
	sizes := []int{1000, 2000, 4000}
	if cfg.Quick {
		sizes = []int{300, 600}
	}
	for _, n := range sizes {
		g := graph.GNP(n, 12/float64(n), graph.UniformWeight(1, 50), cfg.Seed+40)
		k := int(math.Ceil(math.Log2(float64(n))))
		t := int(math.Ceil(math.Log2(float64(k))))
		r, err := spanner.General(g, k, t, spanner.Options{Seed: cfg.Seed + 41})
		if err != nil {
			panic(err)
		}
		rep := measureStretch(g, r.EdgeIDs, samples, cfg.Seed+42)
		loglog := math.Log2(math.Log2(float64(n)))
		tb.AddRow(fmtI(n), fmtI(g.M()), fmtI(k), fmtI(t), fmtI(r.Stats.Iterations),
			fmtI(r.Size()), fmtF(float64(r.Size())/(float64(n)*loglog)),
			fmtF(rep.Max), fmtF(spanner.StretchBound(k, t)))
	}
	return tb
}

// T5SqrtK validates §3 (Theorems 3.1/3.4): t = √k gives O(√k) iterations,
// size O(√k·n^{1+1/k}), stretch O(k).
func T5SqrtK(cfg Config) Table {
	tb := Table{
		ID:     "T5",
		Title:  "Two-phase √k algorithm (§3, Theorems 3.1 and 3.4)",
		Claim:  "O(√k) iterations, size O(√k·n^{1+1/k}), stretch O(k)",
		Header: []string{"graph", "k", "⌈√k⌉", "iters", "size", "size/(√k·n^{1+1/k})", "stretch", "bound"},
	}
	samples := cfg.scale(1500, 300)
	for _, w := range standardWorkloads(cfg)[:2] {
		for _, k := range []int{4, 9, 16, 25} {
			r, err := spanner.SqrtK(w.g, k, spanner.Options{Seed: cfg.Seed + 50})
			if err != nil {
				panic(err)
			}
			sq := int(math.Ceil(math.Sqrt(float64(k))))
			rep := measureStretch(w.g, r.EdgeIDs, samples, cfg.Seed+51)
			budget := math.Sqrt(float64(k)) * math.Pow(float64(w.g.N()), 1+1/float64(k))
			tb.AddRow(w.name, fmtI(k), fmtI(sq), fmtI(r.Stats.Iterations), fmtI(r.Size()),
				fmtF(float64(r.Size())/budget), fmtF(rep.Max), fmtF(spanner.StretchBound(k, sq)))
		}
	}
	return tb
}

// T6ClusterMergeWeighted validates Theorem 4.14 on heavy-tailed weighted
// graphs (the weighted-stretch machinery of §4.2.1).
func T6ClusterMergeWeighted(cfg Config) Table {
	tb := Table{
		ID:     "T6",
		Title:  "Cluster merging on weighted graphs (Theorem 4.14)",
		Claim:  "stretch O(k^{log 3}) and size O(n^{1+1/k}·log k) hold under arbitrary positive weights",
		Header: []string{"weights", "k", "epochs", "size", "size/budget", "stretch", "bound"},
	}
	n := cfg.scale(1500, 400)
	samples := cfg.scale(1500, 300)
	weightings := []struct {
		name string
		w    graph.WeightFn
	}{
		{"unit", graph.UnitWeight},
		{"uniform[1,1e3)", graph.UniformWeight(1, 1000)},
		{"exp(50)", graph.ExpWeight(50)},
		{"power 4^0..7", graph.PowerWeight(4, 8)},
	}
	for _, wt := range weightings {
		g := graph.GNP(n, 12/float64(n), wt.w, cfg.Seed+60)
		k := 8
		r, err := spanner.ClusterMerge(g, k, spanner.Options{Seed: cfg.Seed + 61})
		if err != nil {
			panic(err)
		}
		rep := measureStretch(g, r.EdgeIDs, samples, cfg.Seed+62)
		tb.AddRow(wt.name, fmtI(k), fmtI(r.Stats.Epochs), fmtI(r.Size()),
			fmtF(float64(r.Size())/sizeBudget(n, k, 1)), fmtF(rep.Max), fmtF(spanner.StretchBound(k, 1)))
	}
	return tb
}

// T7Unweighted validates Theorem 1.3 / Appendix B on unit-weight graphs.
func T7Unweighted(cfg Config) Table {
	tb := Table{
		ID:     "T7",
		Title:  "Unweighted O(k)-stretch spanner (Theorem 1.3 / Appendix B)",
		Claim:  "O((1/γ)·log k) rounds, size O(k·n^{1+1/k}) plus O(k·n) path edges, stretch O(k/γ)",
		Header: []string{"graph", "k", "sparse", "dense", "|Z|", "rounds", "size", "size/(k·n^{1+1/k}+k·n)", "stretch", "certBound"},
	}
	n := cfg.scale(1200, 300)
	samples := cfg.scale(1200, 300)
	instances := []workload{
		{"gnp-dense", graph.GNP(n, 20/float64(n), graph.UnitWeight, cfg.Seed+70)},
		{"gnp-sparse", graph.GNP(n, 4/float64(n), graph.UnitWeight, cfg.Seed+71)},
		{"grid", graph.Grid(cfg.scale(35, 17), cfg.scale(35, 17), graph.UnitWeight, cfg.Seed+72)},
	}
	for _, w := range instances {
		for _, k := range []int{2, 3} {
			r, err := spanner.Unweighted(w.g, k, spanner.UnweightedOptions{Seed: cfg.Seed + 73})
			if err != nil {
				panic(err)
			}
			rep := measureStretch(w.g, r.EdgeIDs, samples, cfg.Seed+74)
			nn := float64(w.g.N())
			budget := float64(k)*math.Pow(nn, 1+1/float64(k)) + float64(k)*nn
			tb.AddRow(w.name, fmtI(k), fmtI(r.Stats.SparseCount), fmtI(r.Stats.DenseCount),
				fmtI(r.Stats.HittingSetSize), fmtI(r.Stats.Rounds), fmtI(r.Size()),
				fmtF(float64(r.Size())/budget), fmtF(rep.Max), fmtF(r.Stats.StretchBound))
		}
	}
	tb.Note("γ = 1/2; rounds follow the Appendix B exponentiation + auxiliary-simulation formula")
	return tb
}

// T8MPCRounds validates the Section 6 MPC implementation: simulated rounds,
// memory per machine, and cross-plane output equality.
func T8MPCRounds(cfg Config) Table {
	tb := Table{
		ID:     "T8",
		Title:  "MPC implementation (Theorem 1.1 / §6)",
		Claim:  "O((1/γ)·t·log k/log(t+1)) rounds with n^γ memory/machine and Õ(m) total memory; output identical to the sequential reference",
		Header: []string{"γ", "k", "t", "machines", "S", "rounds", "roundBound", "peakLoad", "peakTotal/2m", "sameAsRef"},
	}
	n := cfg.scale(1500, 400)
	g := graph.GNP(n, 14/float64(n), graph.UniformWeight(1, 40), cfg.Seed+80)
	for _, gamma := range []float64{0.75, 0.5, 0.33} {
		for _, c := range []struct{ k, t int }{{8, 1}, {8, 2}, {16, 4}} {
			res, err := mpc.BuildSpannerOpts(g, c.k, c.t, cfg.Seed+81,
				mpc.Options{Gamma: gamma, Metrics: cfg.Metrics})
			if err != nil {
				panic(err)
			}
			ref, err := spanner.General(g, c.k, c.t, spanner.Options{Seed: cfg.Seed + 81})
			if err != nil {
				panic(err)
			}
			same := len(res.EdgeIDs) == len(ref.EdgeIDs)
			for i := 0; same && i < len(res.EdgeIDs); i++ {
				same = res.EdgeIDs[i] == ref.EdgeIDs[i]
			}
			sim, _ := mpc.NewSim(g.N(), 2*g.M(), gamma)
			tb.AddRow(fmtF(gamma), fmtI(c.k), fmtI(c.t), fmtI(res.Machines), fmtI(res.MemoryPerMachine),
				fmtI(res.Rounds), fmtI(mpc.RoundBound(sim, c.k, c.t)), fmtI(res.PeakMachineLoad),
				fmtF(float64(res.PeakTotalTuples)/float64(2*g.M())), fmt.Sprintf("%v", same))
		}
	}
	return tb
}

// T9APSP validates Corollary 1.4 / §7.
func T9APSP(cfg Config) Table {
	tb := Table{
		ID:     "T9",
		Title:  "Approximate APSP in near-linear MPC (Corollary 1.4 / §7)",
		Claim:  "O(log^s n)-approximate APSP in O(t·log log n/log(t+1)) rounds; spanner fits one Õ(n) machine",
		Header: []string{"n", "t", "k", "rounds", "spannerSize", "Õ(n) budget", "fits", "approxMax", "approxMean", "bound"},
	}
	sizes := []int{1000, 2500}
	if cfg.Quick {
		sizes = []int{300, 600}
	}
	for _, n := range sizes {
		g := graph.Connectify(graph.GNP(n, 10/float64(n), graph.UniformWeight(1, 100), cfg.Seed+90), 50)
		for _, t := range []int{0, 1} { // 0 = Corollary default loglog n
			res, err := apsp.Approx(g, apsp.Options{Seed: cfg.Seed + 91, T: t, Metrics: cfg.Metrics})
			if err != nil {
				panic(err)
			}
			if cfg.Metrics != nil {
				// Run a small query sample through the serving oracle so an
				// instrumented dump carries the oracle_* latency and cache
				// series alongside the build-side mpc_* series.
				res.Oracle().QueryMany(oracle.ZipfWorkload(n, 64, 1.2, cfg.Seed+93))
			}
			rep, err := res.Measure(cfg.scale(20, 8), cfg.Seed+92)
			if err != nil {
				panic(err)
			}
			tb.AddRow(fmtI(n), fmtI(res.T), fmtI(res.K), fmtI(res.Rounds), fmtI(res.SpannerSize),
				fmtI(res.CollectorWords), fmt.Sprintf("%v", res.FitsOneMachine),
				fmtF(rep.Max), fmtF(rep.Mean), fmtF(res.Bound))
		}
	}
	tb.Note("approx sampled over Dijkstra sources against exact distances; bound is 2·k^s with k=⌈log₂n⌉")
	return tb
}

// T10CongestedClique validates Theorem 8.1 and Corollary 1.5.
func T10CongestedClique(cfg Config) Table {
	tb := Table{
		ID:     "T10",
		Title:  "Congested Clique spanner + APSP (Theorem 8.1, Corollary 1.5)",
		Claim:  "w.h.p. size via per-iteration run selection at O(1) extra rounds; APSP via Lenzen collection in sublogarithmic rounds",
		Header: []string{"n", "k", "t", "spanRounds", "roundBound", "goodIters/total", "size", "whpBudget", "apspRounds", "approxMax", "bound"},
	}
	sizes := []int{600, 1200}
	if cfg.Quick {
		sizes = []int{250, 500}
	}
	for _, n := range sizes {
		g := graph.Connectify(graph.GNP(n, 10/float64(n), graph.UniformWeight(1, 20), cfg.Seed+100), 10)
		k, t := cclique.APSPParams(n)
		sp, err := cclique.BuildSpanner(g, k, t, cfg.Seed+101)
		if err != nil {
			panic(err)
		}
		ap, err := cclique.ApproxAPSP(g, cfg.Seed+101)
		if err != nil {
			panic(err)
		}
		rep, err := ap.MeasureApproximation(cfg.scale(15, 6), cfg.Seed+102)
		if err != nil {
			panic(err)
		}
		tb.AddRow(fmtI(n), fmtI(k), fmtI(t), fmtI(sp.Rounds), fmtI(cclique.RoundBound(k, t)),
			fmt.Sprintf("%d/%d", sp.WHP.GoodCount, len(sp.WHP.Choices)),
			fmtI(len(sp.EdgeIDs)), fmtF(spanner.SizeBoundWHP(n, k, t)),
			fmtI(ap.Rounds), fmtF(rep.Max), fmtF(ap.Bound))
	}
	return tb
}

// T11PRAMDepth validates the §6 PRAM discussion.
func T11PRAMDepth(cfg Config) Table {
	tb := Table{
		ID:     "T11",
		Title:  "PRAM depth and work (§6 PRAM paragraph)",
		Claim:  "depth = iterations × O(log* n) — o(k) for every t — with Õ(m) work",
		Header: []string{"k", "t", "iters", "depth", "depthBound", "k·log*n (BS07)", "work/m"},
	}
	n := cfg.scale(2000, 400)
	g := graph.GNP(n, 12/float64(n), graph.UniformWeight(1, 9), cfg.Seed+110)
	ls := pram.LogStar(float64(n))
	for _, c := range []struct{ k, t int }{{16, 1}, {64, 1}, {64, 3}, {256, 1}} {
		res, costs, err := pram.SpannerCosts(g, c.k, c.t, cfg.Seed+111)
		if err != nil {
			panic(err)
		}
		tb.AddRow(fmtI(c.k), fmtI(c.t), fmtI(res.Stats.Iterations),
			fmtI(int(costs.Depth)), fmtI(int(pram.DepthBound(n, c.k, c.t))),
			fmtI(c.k*ls), fmtF(float64(costs.Work)/float64(g.M())))
	}
	return tb
}

// T12Baseline is the paper's headline comparison: poly(log k) iterations
// instead of Θ(k), at bounded stretch cost.
func T12Baseline(cfg Config) Table {
	tb := Table{
		ID:     "T12",
		Title:  "Baseline comparison: [BS07] vs this paper's algorithms",
		Claim:  "the general algorithm needs exponentially fewer iterations than [BS07] for near-optimal stretch",
		Header: []string{"algorithm", "k", "iters", "epochs", "size", "stretch", "certBound"},
	}
	n := cfg.scale(2000, 400)
	samples := cfg.scale(1500, 300)
	g := graph.GNP(n, 12/float64(n), graph.UniformWeight(1, 60), cfg.Seed+120)
	k := 16
	runs := []struct {
		name string
		run  func() (*spanner.Result, float64)
	}{
		{"baswana-sen", func() (*spanner.Result, float64) {
			r, err := spanner.BaswanaSen(g, k, spanner.Options{Seed: cfg.Seed + 121})
			if err != nil {
				panic(err)
			}
			return r, float64(2*k - 1)
		}},
		{"sqrt-k (t=4)", func() (*spanner.Result, float64) {
			r, err := spanner.SqrtK(g, k, spanner.Options{Seed: cfg.Seed + 121})
			if err != nil {
				panic(err)
			}
			return r, spanner.StretchBound(k, 4)
		}},
		{"general (t=log k)", func() (*spanner.Result, float64) {
			r, err := spanner.General(g, k, 4, spanner.Options{Seed: cfg.Seed + 121})
			if err != nil {
				panic(err)
			}
			return r, spanner.StretchBound(k, 4)
		}},
		{"cluster-merge (t=1)", func() (*spanner.Result, float64) {
			r, err := spanner.ClusterMerge(g, k, spanner.Options{Seed: cfg.Seed + 121})
			if err != nil {
				panic(err)
			}
			return r, spanner.StretchBound(k, 1)
		}},
	}
	for _, rn := range runs {
		r, bound := rn.run()
		rep := measureStretch(g, r.EdgeIDs, samples, cfg.Seed+122)
		tb.AddRow(rn.name, fmtI(k), fmtI(r.Stats.Iterations), fmtI(r.Stats.Epochs),
			fmtI(r.Size()), fmtF(rep.Max), fmtF(bound))
	}
	return tb
}

// F1TradeoffCurve renders the round/stretch trade-off as a series over t.
func F1TradeoffCurve(cfg Config) Table {
	tb := Table{
		ID:     "F1",
		Title:  "Round/stretch trade-off curve (the Corollary 1.2 family as a series)",
		Claim:  "iterations grow ~t·log k/log(t+1) while stretch falls from k^{log 3} toward 2k−1",
		Header: []string{"t", "iters", "iterBound", "stretch", "stretchBound", "size"},
	}
	n := cfg.scale(2000, 400)
	samples := cfg.scale(1200, 300)
	g := graph.GNP(n, 12/float64(n), graph.UniformWeight(1, 30), cfg.Seed+130)
	k := 16
	for _, t := range []int{1, 2, 3, 4, 6, 8, 15} {
		r, err := spanner.General(g, k, t, spanner.Options{Seed: cfg.Seed + 131})
		if err != nil {
			panic(err)
		}
		rep := measureStretch(g, r.EdgeIDs, samples, cfg.Seed+132)
		tb.AddRow(fmtI(t), fmtI(r.Stats.Iterations), fmtI(spanner.IterationBound(k, t)),
			fmtF(rep.Max), fmtF(spanner.StretchBound(k, t)), fmtI(r.Size()))
	}
	tb.Note("k = %d on G(n=%d); measured stretch is a sample maximum, the bound is worst-case", k, n)
	return tb
}

// F2SizeCurve isolates the size constant across k at t = log k.
func F2SizeCurve(cfg Config) Table {
	tb := Table{
		ID:     "F2",
		Title:  "Size constant vs k at t = log k",
		Claim:  "|E_S| / (n^{1+1/k}(t+log k)) stays bounded as k grows",
		Header: []string{"k", "t=log k", "size", "budget", "constant"},
	}
	n := cfg.scale(3000, 500)
	g := graph.GNP(n, 16/float64(n), graph.UniformWeight(1, 10), cfg.Seed+140)
	for _, k := range []int{4, 8, 16, 32, 64} {
		t := int(math.Max(1, math.Ceil(math.Log2(float64(k)))))
		r, err := spanner.General(g, k, t, spanner.Options{Seed: cfg.Seed + 141})
		if err != nil {
			panic(err)
		}
		b := sizeBudget(n, k, t)
		tb.AddRow(fmtI(k), fmtI(t), fmtI(r.Size()), fmtF(b), fmtF(float64(r.Size())/b))
	}
	return tb
}

// F3ApproxCDF renders the APSP approximation distribution behind the
// worst-case bound of Corollary 1.4.
func F3ApproxCDF(cfg Config) Table {
	tb := Table{
		ID:     "F3",
		Title:  "APSP approximation CDF (distribution behind Corollary 1.4)",
		Claim:  "typical pairwise error is far below the worst-case O(log^{1+o(1)} n) bound",
		Header: []string{"graph", "p50", "p90", "p99", "max", "bound"},
	}
	n := cfg.scale(1200, 300)
	sources := cfg.scale(20, 8)
	instances := []workload{
		{"gnp", graph.Connectify(graph.GNP(n, 10/float64(n), graph.UniformWeight(1, 40), cfg.Seed+150), 20)},
		{"grid", graph.Grid(cfg.scale(34, 17), cfg.scale(34, 17), graph.UniformWeight(1, 8), cfg.Seed+151)},
		{"pa", graph.PreferentialAttachment(n, 4, graph.ExpWeight(6), cfg.Seed+152)},
	}
	for _, w := range instances {
		res, err := apsp.Approx(w.g, apsp.Options{Seed: cfg.Seed + 153})
		if err != nil {
			panic(err)
		}
		qs, err := res.MeasureCDF(sources, []float64{0.5, 0.9, 0.99, 1}, cfg.Seed+154)
		if err != nil {
			panic(err)
		}
		tb.AddRow(w.name, fmtF(qs[0]), fmtF(qs[1]), fmtF(qs[2]), fmtF(qs[3]), fmtF(res.Bound))
	}
	return tb
}
