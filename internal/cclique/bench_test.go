package cclique

import (
	"fmt"
	"runtime"
	"testing"

	"mpcspanner/internal/graph"
)

// benchWorkerCounts sweeps serial vs the GOMAXPROCS default.
func benchWorkerCounts() []int {
	max := runtime.GOMAXPROCS(0)
	if max == 1 {
		return []int{1}
	}
	return []int{1, max}
}

// BenchmarkCliqueSpanner pins the Theorem 8.1 construction (the WHP
// selection plans every iteration under ~log n coin sets, so the parallel
// grow loop dominates the wall-clock).
func BenchmarkCliqueSpanner(b *testing.B) {
	g := graph.GNP(4_000, 10/4_000.0, graph.UniformWeight(1, 50), 7)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("n=4k/k=8/t=2/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := BuildSpannerOpts(g, 8, 2, 7, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLenzenRouting pins the per-node message budget validation on a
// full-rate all-to-all instance.
func BenchmarkLenzenRouting(b *testing.B) {
	const n = 512
	msgs := make([]Message, 0, n*n)
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			msgs = append(msgs, Message{From: int32(from), To: int32(to)})
		}
	}
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("n=512/workers=%d", w), func(b *testing.B) {
			c, _ := New(n)
			c.SetWorkers(w)
			for i := 0; i < b.N; i++ {
				if _, err := c.Lenzen(msgs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
