// Package cclique simulates the distributed Congested Clique model and
// implements the paper's Section 8 results there: the w.h.p. spanner
// construction of Theorem 8.1 and the sublogarithmic weighted-APSP
// approximation of Corollary 1.5.
//
// Model: n nodes, synchronous rounds; per round, every ordered pair of nodes
// may exchange one Θ(log n)-bit word. [BDH18]'s semi-MPC equivalence lets
// the general spanner algorithm run here with every Lemma 6.1 subroutine
// collapsing to O(1) rounds, because each node's incident edges fit in its
// Θ(n) memory. Lenzen's routing [Len13] delivers any instance in which every
// node sends and receives at most n words in 2 rounds; the package both
// charges and validates those budgets.
package cclique

import (
	"fmt"
	"math"
)

// Clique is the simulated n-node congested clique with round accounting and
// message-budget validation.
type Clique struct {
	n      int
	rounds int

	routes    int
	wordsSent int64
}

// New returns a clique on n nodes.
func New(n int) (*Clique, error) {
	if n < 1 {
		return nil, fmt.Errorf("cclique: need at least one node, got %d", n)
	}
	return &Clique{n: n}, nil
}

// N returns the node count.
func (c *Clique) N() int { return c.n }

// Rounds returns the rounds charged so far.
func (c *Clique) Rounds() int { return c.rounds }

// Routes returns how many Lenzen routing instances ran.
func (c *Clique) Routes() int { return c.routes }

// WordsSent returns the cumulative words shipped.
func (c *Clique) WordsSent() int64 { return c.wordsSent }

// ChargeRounds charges r raw rounds (for steps whose message pattern is the
// trivial one-word-per-pair exchange, e.g. the sampling-outcome word of
// Theorem 8.1).
func (c *Clique) ChargeRounds(r int) { c.rounds += r }

// Message is a routed word.
type Message struct {
	From, To int32
	Payload  uint64
}

// Lenzen routes an arbitrary message instance in which every node sends at
// most n and receives at most n words, in exactly 2 rounds [Len13]. It
// validates both budgets and returns the messages grouped by destination (in
// stable per-destination order).
func (c *Clique) Lenzen(msgs []Message) ([][]Message, error) {
	sent := make([]int, c.n)
	recv := make([]int, c.n)
	for _, m := range msgs {
		if m.From < 0 || int(m.From) >= c.n || m.To < 0 || int(m.To) >= c.n {
			return nil, fmt.Errorf("cclique: message endpoint out of range: %+v", m)
		}
		sent[m.From]++
		recv[m.To]++
	}
	for v := 0; v < c.n; v++ {
		if sent[v] > c.n {
			return nil, fmt.Errorf("cclique: node %d sends %d > n=%d words", v, sent[v], c.n)
		}
		if recv[v] > c.n {
			return nil, fmt.Errorf("cclique: node %d receives %d > n=%d words", v, recv[v], c.n)
		}
	}
	out := make([][]Message, c.n)
	for _, m := range msgs {
		out[m.To] = append(out[m.To], m)
	}
	c.rounds += 2
	c.routes++
	c.wordsSent += int64(len(msgs))
	return out, nil
}

// BroadcastVolume charges the rounds needed for every node to learn the same
// `words` words (e.g. the whole spanner): one balancing Lenzen instance plus
// ⌈words/(n−1)⌉ full-rate rounds in which each node receives n−1 distinct
// words — the O(words/n) bound Lenzen routing gives for broadcast workloads.
// It returns the rounds charged.
func (c *Clique) BroadcastVolume(words int) int {
	if words <= 0 {
		return 0
	}
	per := c.n - 1
	if per < 1 {
		per = 1
	}
	r := 2 + (words+per-1)/per
	c.rounds += r
	c.wordsSent += int64(words) * int64(c.n)
	return r
}

// APSPParams returns the Corollary 1.5 parameter choice for an n-vertex
// graph: k = ⌈log₂ n⌉ and t = max(1, ⌈log₂ log₂ n⌉), which yield stretch
// O(log^{1+o(1)} n) in O(log² log n) rounds.
func APSPParams(n int) (k, t int) {
	if n < 4 {
		return 2, 1
	}
	k = int(math.Ceil(math.Log2(float64(n))))
	t = int(math.Ceil(math.Log2(math.Log2(float64(n)))))
	if t < 1 {
		t = 1
	}
	return k, t
}
