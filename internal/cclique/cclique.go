// Package cclique simulates the distributed Congested Clique model and
// implements the paper's Section 8 results there: the w.h.p. spanner
// construction of Theorem 8.1 and the sublogarithmic weighted-APSP
// approximation of Corollary 1.5.
//
// Model: n nodes, synchronous rounds; per round, every ordered pair of nodes
// may exchange one Θ(log n)-bit word. [BDH18]'s semi-MPC equivalence lets
// the general spanner algorithm run here with every Lemma 6.1 subroutine
// collapsing to O(1) rounds, because each node's incident edges fit in its
// Θ(n) memory. Lenzen's routing [Len13] delivers any instance in which every
// node sends and receives at most n words in 2 rounds; the package both
// charges and validates those budgets.
package cclique

import (
	"fmt"
	"math"

	"mpcspanner/internal/par"
)

// Clique is the simulated n-node congested clique with round accounting and
// message-budget validation.
type Clique struct {
	n      int
	rounds int

	// workers backs the per-node message generation and budget validation
	// with a real goroutine pool (par conventions, resolved; default 1).
	// Round accounting and routing results are identical at every count.
	workers int

	routes    int
	wordsSent int64
}

// New returns a clique on n nodes.
func New(n int) (*Clique, error) {
	if n < 1 {
		return nil, fmt.Errorf("cclique: need at least one node, got %d", n)
	}
	return &Clique{n: n, workers: 1}, nil
}

// SetWorkers sizes the goroutine pool the simulated nodes' local work runs
// on (0 selects GOMAXPROCS, 1 forces serial).
func (c *Clique) SetWorkers(w int) { c.workers = par.Workers(w) }

// N returns the node count.
func (c *Clique) N() int { return c.n }

// Rounds returns the rounds charged so far.
func (c *Clique) Rounds() int { return c.rounds }

// Routes returns how many Lenzen routing instances ran.
func (c *Clique) Routes() int { return c.routes }

// WordsSent returns the cumulative words shipped.
func (c *Clique) WordsSent() int64 { return c.wordsSent }

// ChargeRounds charges r raw rounds (for steps whose message pattern is the
// trivial one-word-per-pair exchange, e.g. the sampling-outcome word of
// Theorem 8.1).
func (c *Clique) ChargeRounds(r int) { c.rounds += r }

// Message is a routed word.
type Message struct {
	From, To int32
	Payload  uint64
}

// Lenzen routes an arbitrary message instance in which every node sends at
// most n and receives at most n words, in exactly 2 rounds [Len13]. It
// validates both budgets and returns the messages grouped by destination (in
// stable per-destination order; the per-destination slices share one backing
// array and must be treated as read-only).
//
// Budget counting is the per-node message generation work: it shards the
// message list over the worker pool with per-shard send/receive histograms
// that sum in shard order, so validation outcomes are identical at every
// worker count. Destination grouping is a radix-keyed stable shuffle on the
// destination id (par.RadixSortKeys), so it parallelizes too while keeping
// exactly the order the old serial append produced.
func (c *Clique) Lenzen(msgs []Message) ([][]Message, error) {
	// Shard the counting only when the instance is dense enough to amortize
	// the per-shard histograms and their O(workers·n) merge; below that the
	// serial O(msgs + n) scan is strictly cheaper.
	workers := c.workers
	if len(msgs) < workers*c.n {
		workers = 1
	}
	sent := make([]int, c.n)
	recv := make([]int, c.n)
	if workers <= 1 {
		for i, m := range msgs {
			if m.From < 0 || int(m.From) >= c.n || m.To < 0 || int(m.To) >= c.n {
				return nil, fmt.Errorf("cclique: message endpoint out of range: %+v", msgs[i])
			}
			sent[m.From]++
			recv[m.To]++
		}
	} else {
		type budget struct {
			sent, recv []int
			bad        int // index+1 of an out-of-range message, 0 if none
		}
		parts := make([]budget, workers)
		par.ForShard(workers, len(msgs), func(shard, lo, hi int) {
			b := &parts[shard]
			b.sent = make([]int, c.n)
			b.recv = make([]int, c.n)
			for i := lo; i < hi; i++ {
				m := msgs[i]
				if m.From < 0 || int(m.From) >= c.n || m.To < 0 || int(m.To) >= c.n {
					if b.bad == 0 {
						b.bad = i + 1
					}
					continue
				}
				b.sent[m.From]++
				b.recv[m.To]++
			}
		})
		for i := range parts {
			if parts[i].bad > 0 {
				return nil, fmt.Errorf("cclique: message endpoint out of range: %+v", msgs[parts[i].bad-1])
			}
			if parts[i].sent == nil {
				continue
			}
			for v := 0; v < c.n; v++ {
				sent[v] += parts[i].sent[v]
				recv[v] += parts[i].recv[v]
			}
		}
	}
	for v := 0; v < c.n; v++ {
		if sent[v] > c.n {
			return nil, fmt.Errorf("cclique: node %d sends %d > n=%d words", v, sent[v], c.n)
		}
		if recv[v] > c.n {
			return nil, fmt.Errorf("cclique: node %d receives %d > n=%d words", v, recv[v], c.n)
		}
	}
	out := make([][]Message, c.n)
	if len(msgs) > 0 {
		// Stable radix shuffle by destination: equal destinations keep their
		// input order, so out[to] is identical to what appending in input
		// order produced, at every worker count.
		idx := par.SortIndexByKey(c.workers, len(msgs), func(i int) uint64 { return uint64(msgs[i].To) })
		grouped := make([]Message, len(msgs))
		par.For(c.workers, len(msgs), func(i int) { grouped[i] = msgs[idx[i]] })
		lo := 0
		for hi := 1; hi <= len(grouped); hi++ {
			if hi == len(grouped) || grouped[hi].To != grouped[lo].To {
				out[grouped[lo].To] = grouped[lo:hi:hi]
				lo = hi
			}
		}
	}
	c.rounds += 2
	c.routes++
	c.wordsSent += int64(len(msgs))
	return out, nil
}

// BroadcastVolume charges the rounds needed for every node to learn the same
// `words` words (e.g. the whole spanner): one balancing Lenzen instance plus
// ⌈words/(n−1)⌉ full-rate rounds in which each node receives n−1 distinct
// words — the O(words/n) bound Lenzen routing gives for broadcast workloads.
// It returns the rounds charged.
func (c *Clique) BroadcastVolume(words int) int {
	if words <= 0 {
		return 0
	}
	per := c.n - 1
	if per < 1 {
		per = 1
	}
	r := 2 + (words+per-1)/per
	c.rounds += r
	c.wordsSent += int64(words) * int64(c.n)
	return r
}

// APSPParams returns the Corollary 1.5 parameter choice for an n-vertex
// graph: k = ⌈log₂ n⌉ and t = max(1, ⌈log₂ log₂ n⌉), which yield stretch
// O(log^{1+o(1)} n) in O(log² log n) rounds.
func APSPParams(n int) (k, t int) {
	if n < 4 {
		return 2, 1
	}
	k = int(math.Ceil(math.Log2(float64(n))))
	t = int(math.Ceil(math.Log2(math.Log2(float64(n)))))
	if t < 1 {
		t = 1
	}
	return k, t
}
