package cclique

import (
	"testing"
	"testing/quick"

	"mpcspanner/internal/graph"
	"mpcspanner/internal/spanner"
	"mpcspanner/internal/xrand"
)

func TestNewValidates(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("empty clique accepted")
	}
	c, err := New(5)
	if err != nil || c.N() != 5 {
		t.Fatalf("New(5): %v", err)
	}
}

func TestLenzenDeliversAndCharges(t *testing.T) {
	c, _ := New(4)
	msgs := []Message{
		{From: 0, To: 3, Payload: 7},
		{From: 1, To: 3, Payload: 8},
		{From: 2, To: 0, Payload: 9},
	}
	out, err := c.Lenzen(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rounds() != 2 {
		t.Fatalf("Lenzen charged %d rounds, want 2", c.Rounds())
	}
	if len(out[3]) != 2 || out[3][0].Payload != 7 || out[3][1].Payload != 8 {
		t.Fatalf("destination 3 got %v", out[3])
	}
	if len(out[0]) != 1 || out[0][0].Payload != 9 {
		t.Fatalf("destination 0 got %v", out[0])
	}
	if len(out[1]) != 0 || len(out[2]) != 0 {
		t.Fatal("silent nodes received messages")
	}
}

func TestLenzenBudgets(t *testing.T) {
	c, _ := New(3)
	// Node 0 sending 4 > n=3 words must be rejected.
	over := make([]Message, 4)
	for i := range over {
		over[i] = Message{From: 0, To: int32(i % 3)}
	}
	if _, err := c.Lenzen(over); err == nil {
		t.Fatal("send budget violation accepted")
	}
	// Node 1 receiving 4 > n=3 words must be rejected.
	over = over[:0]
	for i := 0; i < 4; i++ {
		over = append(over, Message{From: int32(i % 3), To: 1})
	}
	if _, err := c.Lenzen(over); err == nil {
		t.Fatal("receive budget violation accepted")
	}
	// Out-of-range endpoints.
	if _, err := c.Lenzen([]Message{{From: 0, To: 9}}); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
}

func TestLenzenBudgetProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 4 + r.Intn(12)
		c, _ := New(n)
		// Build a random instance within budgets: a permutation-ish load.
		var msgs []Message
		for v := 0; v < n; v++ {
			for j := 0; j < r.Intn(n+1); j++ {
				msgs = append(msgs, Message{From: int32(v), To: int32(j)})
			}
		}
		// Each node sends <= n and receives <= n by construction.
		out, err := c.Lenzen(msgs)
		if err != nil {
			return false
		}
		total := 0
		for _, d := range out {
			total += len(d)
		}
		return total == len(msgs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastVolume(t *testing.T) {
	c, _ := New(101)
	r := c.BroadcastVolume(1000)
	if r != 2+10 { // ceil(1000/100) = 10 full-rate rounds + 2 balancing
		t.Fatalf("broadcast of 1000 words charged %d rounds", r)
	}
	if c.BroadcastVolume(0) != 0 {
		t.Fatal("empty broadcast should be free")
	}
	one, _ := New(1)
	if got := one.BroadcastVolume(5); got != 2+5 {
		t.Fatalf("degenerate clique broadcast charged %d", got)
	}
}

func TestBuildSpannerValidAndWHP(t *testing.T) {
	g := graph.GNP(300, 0.05, graph.UniformWeight(1, 20), 3)
	res, err := BuildSpanner(g, 8, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	r := &spanner.Result{EdgeIDs: res.EdgeIDs}
	if _, err := spanner.Verify(g, r, spanner.StretchBound(8, 2)); err != nil {
		t.Fatal(err)
	}
	if res.Rounds > RoundBound(8, 2) {
		t.Fatalf("rounds %d exceed bound %d", res.Rounds, RoundBound(8, 2))
	}
	if res.WHP == nil || res.WHP.Runs < 2 {
		t.Fatal("whp selection should run multiple parallel instances")
	}
	// On a healthy random instance, nearly all iterations should be settled
	// by the two-event criterion rather than the fallback.
	if res.WHP.GoodCount == 0 && len(res.WHP.Choices) > 0 {
		t.Fatal("no iteration satisfied the two-event criterion")
	}
	// Size must respect the certified w.h.p. budget.
	if float64(len(res.EdgeIDs)) > spanner.SizeBoundWHP(g.N(), 8, 2) {
		t.Fatalf("size %d exceeds whp budget %.0f", len(res.EdgeIDs), spanner.SizeBoundWHP(g.N(), 8, 2))
	}
}

func TestBuildSpannerDeterministic(t *testing.T) {
	g := graph.GNP(200, 0.06, graph.UnitWeight, 7)
	a, err := BuildSpanner(g, 4, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSpanner(g, 4, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.EdgeIDs) != len(b.EdgeIDs) || a.Rounds != b.Rounds {
		t.Fatal("CC spanner not deterministic under seed")
	}
}

func TestAPSPParams(t *testing.T) {
	k, tt := APSPParams(1024)
	if k != 10 {
		t.Fatalf("k = %d for n=1024, want 10", k)
	}
	if tt < 1 || tt > 4 {
		t.Fatalf("t = %d for n=1024, expected ~loglog n", tt)
	}
	k, tt = APSPParams(2)
	if k < 2 || tt < 1 {
		t.Fatalf("degenerate params k=%d t=%d", k, tt)
	}
}

func TestApproxAPSPEndToEnd(t *testing.T) {
	g := graph.Connectify(graph.GNP(400, 0.03, graph.UniformWeight(1, 10), 13), 5)
	res, err := ApproxAPSP(g, 17)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != res.SpannerRounds+res.CollectionRounds {
		t.Fatal("round bill does not add up")
	}
	if res.CollectionRounds <= 0 {
		t.Fatal("collection must cost rounds")
	}
	rep, err := res.MeasureApproximation(20, 19)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Max > res.Bound+1e-9 {
		t.Fatalf("measured approximation %.2f exceeds certified bound %.2f", rep.Max, res.Bound)
	}
	if rep.Max < 1 {
		t.Fatalf("approximation below 1: %v", rep.Max)
	}
	// Per-node local answers agree with the collected spanner.
	d := res.DistancesFrom(0)
	if len(d) != g.N() || d[0] != 0 {
		t.Fatal("local distance query malformed")
	}
}

func TestApproxAPSPSublogarithmicRounds(t *testing.T) {
	// The headline: rounds ~ poly(log log n) for the spanner phase plus
	// O(log log n) for collection — far below log n for moderate n. We
	// check the spanner phase round count is far below k = log n iterations'
	// worth of [BS07]-style rounds.
	g := graph.Connectify(graph.GNP(800, 0.02, graph.UniformWeight(1, 5), 23), 3)
	res, err := ApproxAPSP(g, 29)
	if err != nil {
		t.Fatal(err)
	}
	bsRounds := (res.K - 1) * roundsPerIter // what Θ(k) iterations would bill
	if res.SpannerRounds >= bsRounds {
		t.Fatalf("spanner rounds %d not below the Θ(k)=%d baseline", res.SpannerRounds, bsRounds)
	}
}

func TestBuildSpannerEmptyGraph(t *testing.T) {
	if _, err := BuildSpanner(graph.MustNew(0, nil), 2, 1, 1); err == nil {
		t.Fatal("empty graph accepted")
	}
	res, err := BuildSpanner(graph.MustNew(2, nil), 2, 1, 1)
	if err != nil || len(res.EdgeIDs) != 0 {
		t.Fatalf("edgeless graph: %v, %d edges", err, len(res.EdgeIDs))
	}
}
