package cclique

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"

	"mpcspanner/internal/core"
	"mpcspanner/internal/graph"
)

func pinWorkers() int {
	w := runtime.NumCPU()
	if w < 4 {
		w = 4
	}
	return w
}

// TestWorkerCountInvarianceClique pins the Theorem 8.1 path: spanner edges,
// clique round bill, engine stats and the WHP selection trace are
// bit-identical between serial and multi-worker runs.
func TestWorkerCountInvarianceClique(t *testing.T) {
	g := graph.GNP(220, 0.06, graph.UniformWeight(1, 25), 3)
	serial, err := BuildSpannerOpts(g, 6, 2, 17, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := BuildSpannerOpts(g, 6, 2, 17, pinWorkers())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("clique results differ between worker counts:\n  1: %+v\n  N: %+v",
			serial.Stats, parallel.Stats)
	}
}

// TestWorkerCountInvarianceAPSP pins the Corollary 1.5 pipeline including
// the measured stretch report.
func TestWorkerCountInvarianceAPSP(t *testing.T) {
	g := graph.Connectify(graph.GNP(150, 0.05, graph.UnitWeight, 5), 1)
	serial, err := ApproxAPSPOpts(g, 19, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ApproxAPSPOpts(g, 19, pinWorkers())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.SpannerEdgeIDs, parallel.SpannerEdgeIDs) ||
		serial.Rounds != parallel.Rounds {
		t.Fatal("APSP runs differ between worker counts")
	}
	repS, err := serial.MeasureApproximation(12, 7)
	if err != nil {
		t.Fatal(err)
	}
	repP, err := parallel.MeasureApproximation(12, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(repS, repP) {
		t.Fatal("stretch reports differ between worker counts")
	}
}

func TestNegativeWorkersRejectedClique(t *testing.T) {
	g := graph.Path(4, graph.UnitWeight, 1)
	if _, err := BuildSpannerOpts(g, 2, 1, 1, -1); err == nil {
		t.Fatal("negative workers accepted")
	}
}

// TestLenzenParallelBudgets pins the sharded per-node budget counting
// against the serial path on a full-rate instance.
func TestLenzenParallelBudgets(t *testing.T) {
	const n = 64
	mk := func() []Message {
		var msgs []Message
		for from := 0; from < n; from++ {
			for to := 0; to < n; to++ {
				msgs = append(msgs, Message{From: int32(from), To: int32(to), Payload: uint64(from*n + to)})
			}
		}
		return msgs
	}
	serialC, _ := New(n)
	serialC.SetWorkers(1)
	serialOut, err := serialC.Lenzen(mk())
	if err != nil {
		t.Fatal(err)
	}
	parC, _ := New(n)
	parC.SetWorkers(pinWorkers())
	parOut, err := parC.Lenzen(mk())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serialOut, parOut) {
		t.Fatal("routed outputs differ between worker counts")
	}
	if serialC.Rounds() != parC.Rounds() || serialC.WordsSent() != parC.WordsSent() {
		t.Fatal("accounting differs between worker counts")
	}
	// Overflow still rejected under the parallel counter.
	over := mk()
	for i := 0; i < n+1; i++ {
		over = append(over, Message{From: 0, To: 1})
	}
	if _, err := parC.Lenzen(over); err == nil {
		t.Fatal("budget violation accepted by parallel counter")
	}
}

// TestCancellationSemanticsCClique pins the context contract of the Theorem
// 8.1 and Corollary 1.5 pipelines: fail-fast classification on a canceled
// context, a bounded number of checkpoints after a mid-run cancel, and
// bit-identity of live-context runs with the context-free path.
func TestCancellationSemanticsCClique(t *testing.T) {
	g := graph.GNP(300, 0.05, graph.UniformWeight(1, 40), 31)

	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	if _, err := BuildSpannerCtx(pre, g, 6, 2, 1, BuildOptions{}); !errors.Is(err, context.Canceled) || !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("BuildSpannerCtx(canceled) = %v, want context.Canceled/core.ErrCanceled", err)
	}
	if _, err := ApproxAPSPCtx(pre, g, 1, BuildOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ApproxAPSPCtx(canceled) = %v, want context.Canceled", err)
	}

	// Mid-run cancel via the WHP engine's progress checkpoints.
	ctx, cancel := context.WithCancel(context.Background())
	after := 0
	fired := false
	_, err := BuildSpannerCtx(ctx, g, 8, 2, 3, BuildOptions{
		Progress: func(ev core.ProgressEvent) {
			if fired {
				after++
			}
			fired = true
			cancel()
		}})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel = %v, want context.Canceled", err)
	}
	if after > 1 {
		t.Fatalf("%d checkpoints fired after the cancel, want <= 1", after)
	}

	// Live contexts change nothing, at serial and parallel worker counts.
	for _, w := range []int{1, pinWorkers()} {
		plain, err := BuildSpannerOpts(g, 6, 2, 21, w)
		if err != nil {
			t.Fatal(err)
		}
		withCtx, err := BuildSpannerCtx(context.Background(), g, 6, 2, 21, BuildOptions{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, withCtx) {
			t.Fatalf("workers=%d: context-free and live-context clique builds differ", w)
		}
	}
}
