package cclique

import (
	"context"
	"fmt"

	"mpcspanner/internal/core"
	"mpcspanner/internal/dist"
	"mpcspanner/internal/graph"
	"mpcspanner/internal/par"
	"mpcspanner/internal/spanner"
)

// BuildOptions is the full option surface of the context-aware entry points.
type BuildOptions struct {
	// Workers sizes the goroutine pool the simulated nodes' local work runs
	// on (par conventions: 0 = GOMAXPROCS, 1 = serial; negatives rejected).
	Workers int

	// Progress, when non-nil, receives the engine's checkpoint events (the
	// WHP engine emits "grow"/"contract"/"phase2" with algorithm
	// "general-whp"). Same contract as spanner.Options.Progress.
	Progress func(core.ProgressEvent)
}

// Per-iteration round constants of the semi-MPC execution (Theorem 8.1):
// one round carries the O(log n)-bit sampling-outcome word of all parallel
// runs; three rounds realize the Lemma 6.1 find-minimum/merge subroutines,
// which collapse to O(1) in Θ(n) memory; one round gathers per-run counts to
// the run-responsible nodes and announces the chosen run.
const (
	roundsSampleWord  = 1
	roundsSubroutines = 3
	roundsSelection   = 1
	roundsPerIter     = roundsSampleWord + roundsSubroutines + roundsSelection
	roundsPerContract = 1
)

// SpannerResult is a Congested Clique spanner construction: the spanner
// plus the clique-level round bill.
type SpannerResult struct {
	EdgeIDs []int
	Rounds  int
	Stats   spanner.Stats
	WHP     *spanner.WHPStats
}

// BuildSpanner runs Theorem 8.1: the general algorithm in the semi-MPC view
// of the clique, with ⌈log₂ n⌉+1 parallel sampling runs per iteration and
// the two-event run selection, so the O(n^{1+1/k}(t+log k)) size bound holds
// w.h.p. at only O(1) extra rounds per iteration. The per-node work runs on
// a GOMAXPROCS worker pool; use BuildSpannerOpts to pin the pool size.
func BuildSpanner(g *graph.Graph, k, t int, seed uint64) (*SpannerResult, error) {
	return BuildSpannerOpts(g, k, t, seed, 0)
}

// BuildSpannerOpts is BuildSpanner with an explicit worker pool size
// (par conventions: 0 = GOMAXPROCS, 1 = serial; negatives are rejected).
// The spanner, round bill and WHP selection are bit-identical at every
// worker count.
func BuildSpannerOpts(g *graph.Graph, k, t int, seed uint64, workers int) (*SpannerResult, error) {
	return BuildSpannerCtx(context.Background(), g, k, t, seed, BuildOptions{Workers: workers})
}

// BuildSpannerCtx is BuildSpanner with the full option surface under a
// context: the WHP engine checkpoints ctx once per grow iteration and the
// call returns core.Canceled(ctx.Err()) at the first checkpoint after
// cancellation. Uncanceled runs are bit-identical to BuildSpannerOpts.
func BuildSpannerCtx(ctx context.Context, g *graph.Graph, k, t int, seed uint64, opt BuildOptions) (*SpannerResult, error) {
	if g.N() < 1 {
		return nil, fmt.Errorf("cclique: empty graph")
	}
	if err := par.CheckWorkers("cclique: BuildOptions.Workers", opt.Workers); err != nil {
		return nil, err
	}
	c, err := New(g.N())
	if err != nil {
		return nil, err
	}
	c.SetWorkers(opt.Workers)
	res, whp, err := spanner.GeneralWHPCtx(ctx, g, k, t, 0,
		spanner.Options{Seed: seed, Workers: opt.Workers, Progress: opt.Progress})
	if err != nil {
		return nil, err
	}
	c.ChargeRounds(res.Stats.Iterations * roundsPerIter)
	c.ChargeRounds(res.Stats.Epochs * roundsPerContract)
	return &SpannerResult{
		EdgeIDs: res.EdgeIDs,
		Rounds:  c.Rounds(),
		Stats:   res.Stats,
		WHP:     whp,
	}, nil
}

// RoundBound returns the Theorem 8.1 round budget O(t·log k / log(t+1)) with
// this implementation's explicit constants.
func RoundBound(k, t int) int {
	specs := spanner.Schedule(k, t)
	epochs := 0
	if len(specs) > 0 {
		epochs = specs[len(specs)-1].Epoch
	}
	return len(specs)*roundsPerIter + epochs*roundsPerContract
}

// APSPResult is a Corollary 1.5 run: after the spanner is built and
// collected, every node holds the whole spanner and answers any distance
// query locally with the certified approximation factor.
type APSPResult struct {
	SpannerEdgeIDs   []int
	SpannerRounds    int
	CollectionRounds int
	Rounds           int // total
	K, T             int
	Bound            float64 // certified stretch O(log^{1+o(1)} n)

	g       *graph.Graph
	spanner *graph.Graph
}

// ApproxAPSP runs Corollary 1.5 end to end: BuildSpanner with k = ⌈log₂ n⌉,
// t = ⌈log₂ log₂ n⌉, then a Lenzen-routed broadcast of the (near-linear)
// spanner so that every node can answer distance queries locally. Use
// ApproxAPSPOpts to pin the worker pool.
func ApproxAPSP(g *graph.Graph, seed uint64) (*APSPResult, error) {
	return ApproxAPSPOpts(g, seed, 0)
}

// ApproxAPSPOpts is ApproxAPSP with an explicit worker pool size.
func ApproxAPSPOpts(g *graph.Graph, seed uint64, workers int) (*APSPResult, error) {
	return ApproxAPSPCtx(context.Background(), g, seed, BuildOptions{Workers: workers})
}

// ApproxAPSPCtx is ApproxAPSP with the full option surface under a context
// (see BuildSpannerCtx for the cancellation contract; the collection step
// follows one final checkpoint after the build).
func ApproxAPSPCtx(ctx context.Context, g *graph.Graph, seed uint64, opt BuildOptions) (*APSPResult, error) {
	k, t := APSPParams(g.N())
	sp, err := BuildSpannerCtx(ctx, g, k, t, seed, opt)
	if err != nil {
		return nil, err
	}
	if err := core.Check(ctx); err != nil {
		return nil, err
	}
	c, err := New(g.N())
	if err != nil {
		return nil, err
	}
	collectRounds := c.BroadcastVolume(len(sp.EdgeIDs))
	return &APSPResult{
		SpannerEdgeIDs:   sp.EdgeIDs,
		SpannerRounds:    sp.Rounds,
		CollectionRounds: collectRounds,
		Rounds:           sp.Rounds + collectRounds,
		K:                k,
		T:                t,
		Bound:            spanner.StretchBound(k, t),
		g:                g,
		spanner:          g.Subgraph(sp.EdgeIDs),
	}, nil
}

// DistancesFrom answers the local computation every node performs after the
// broadcast: single-source distances on the collected spanner.
func (r *APSPResult) DistancesFrom(v int) []float64 { return dist.Dijkstra(r.spanner, v) }

// Spanner returns the collected spanner subgraph.
func (r *APSPResult) Spanner() *graph.Graph { return r.spanner }

// MeasureApproximation samples the pairwise approximation quality
// dist_spanner / dist_G against the certified bound.
func (r *APSPResult) MeasureApproximation(sources int, seed uint64) (dist.StretchReport, error) {
	return dist.PairStretch(r.g, r.spanner, sources, seed)
}
