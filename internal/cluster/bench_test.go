package cluster

import (
	"fmt"
	"runtime"
	"testing"

	"mpcspanner/internal/xrand"
)

// BenchmarkMinDedup pins Step C's min-weight pair deduplication — the
// contraction's dominant cost — serial vs parallel sort.
func BenchmarkMinDedup(b *testing.B) {
	const n = 500_000
	src := xrand.New(9)
	base := make([]QEdge, n)
	for i := range base {
		base[i] = QEdge{A: src.Intn(20_000), B: src.Intn(20_000), W: float64(src.Intn(100)), Orig: i}
	}
	scratch := make([]QEdge, n)
	counts := []int{1}
	if max := runtime.GOMAXPROCS(0); max > 1 {
		counts = append(counts, max)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("m=500k/workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				copy(scratch, base)
				if out := MinDedupWorkers(scratch, w); len(out) == 0 {
					b.Fatal("empty dedup")
				}
			}
		})
	}
}
