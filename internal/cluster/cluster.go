// Package cluster provides the clustering machinery shared by the spanner
// algorithms: the original-vertex → supernode partition maintained across
// contractions (Definition 5.1's quotient graphs), supernode-level edges
// carrying their originating edge identifier, min-weight deduplication
// (Step C of the general algorithm), and measurement of cluster-tree radii
// (Definitions 4.2/5.2) for the stretch accounting.
package cluster

import (
	"fmt"
	"math/bits"

	"mpcspanner/internal/graph"
	"mpcspanner/internal/par"
)

// None marks a vertex or supernode that is not assigned (finished).
const None = -1

// Partition maps original vertices to supernodes of the current quotient
// graph. Initially the identity; each Contract replaces supernodes by the
// clusters that absorbed them.
type Partition struct {
	super []int32
	count int
}

// NewPartition returns the identity partition on n vertices.
func NewPartition(n int) *Partition {
	p := &Partition{super: make([]int32, n), count: n}
	for i := range p.super {
		p.super[i] = int32(i)
	}
	return p
}

// Super returns the supernode containing original vertex v, or None if v has
// been finished (dropped out of every cluster).
func (p *Partition) Super(v int) int { return int(p.super[v]) }

// Count returns the number of live supernodes.
func (p *Partition) Count() int { return p.count }

// N returns the number of original vertices.
func (p *Partition) N() int { return len(p.super) }

// Contract applies a supernode relabeling: old supernode s becomes
// newID[s], where newID[s] == None finishes every vertex of s. newCount is
// the number of distinct new supernode ids, which must be exactly the set
// {0, …, newCount-1} across the non-None entries.
func (p *Partition) Contract(newID []int32, newCount int) error {
	return p.ContractWorkers(newID, newCount, 1)
}

// ContractWorkers is Contract with the per-vertex relabeling pass fanned out
// over a worker pool (each vertex writes only its own slot, so the result is
// identical at every worker count). workers follows the par conventions:
// 0 selects GOMAXPROCS, 1 runs serially.
func (p *Partition) ContractWorkers(newID []int32, newCount, workers int) error {
	for s, id := range newID {
		if id != None && (id < 0 || int(id) >= newCount) {
			return fmt.Errorf("cluster: supernode %d relabeled to out-of-range %d (count %d)", s, id, newCount)
		}
	}
	par.For(par.Workers(workers), len(p.super), func(v int) {
		if s := p.super[v]; s != None {
			p.super[v] = newID[s]
		}
	})
	p.count = newCount
	return nil
}

// Members returns, for each supernode, the original vertices it contains.
func (p *Partition) Members() [][]int {
	m := make([][]int, p.count)
	for v, s := range p.super {
		if s != None {
			m[s] = append(m[s], v)
		}
	}
	return m
}

// QEdge is an edge of the current quotient graph: supernode endpoints A, B,
// the weight W, and Orig, the identifier of the original edge it represents.
type QEdge struct {
	A, B int
	W    float64
	Orig int
}

// FromGraph lifts g's edges into quotient edges over the identity partition.
func FromGraph(g *graph.Graph) []QEdge {
	out := make([]QEdge, g.M())
	for i, e := range g.Edges() {
		out[i] = QEdge{A: e.U, B: e.V, W: e.W, Orig: i}
	}
	return out
}

// MinDedup keeps, for every unordered supernode pair, only the minimum-weight
// edge (ties broken by original edge id, for determinism). This is Step C's
// "keep the minimum weight edge between u and v" rule; the discarded
// parallels are spanned through the kept representative. Input order is not
// preserved; the result is sorted by (min endpoint, max endpoint).
func MinDedup(edges []QEdge) []QEdge {
	return MinDedupWorkers(edges, 1)
}

// MinDedupWorkers is MinDedup with the endpoint normalization and the sort
// run on a worker pool (par.SortStable). The comparison key
// (A, B, W, Orig) is a total order on any edge list with distinct Orig ids,
// so the output is bit-identical at every worker count.
func MinDedupWorkers(edges []QEdge, workers int) []QEdge {
	return minDedup(edges, workers, nil, nil)
}

// KeyWidths returns the bit widths a (vertex, vertex, weight-rank) composite
// key needs for an n-vertex, m-edge instance — vBits per vertex field, rBits
// for the WeightRanks rank — and whether the composite fits one uint64. Both
// the MPC driver's tuple encodings and the engine's dedup key derive their
// layouts here, so the two planes can never drift apart.
func KeyWidths(n, m int) (vBits, rBits uint, ok bool) {
	if n < 2 || m < 1 {
		return 0, 0, false
	}
	vBits = uint(bits.Len(uint(n - 1)))
	rBits = uint(bits.Len(uint(m - 1)))
	if rBits == 0 { // m == 1: rank is always 0, give it one real bit
		rBits = 1
	}
	return vBits, rBits, 2*vBits+rBits <= 64
}

// MinDedupKeys is MinDedupWorkers with the (A, B, W, Orig) comparator
// replaced by a caller-supplied order-preserving uint64 key over the
// endpoint-normalized edge (A ≤ B when key is evaluated): the sort becomes
// one par radix shuffle instead of a comparison merge sort. key must encode
// the same total order the comparator defines — (A, B, weight-rank)
// composites built on WeightRanks and laid out per KeyWidths do (see the
// spanner engine) — or the dedup picks different representatives. key is
// invoked concurrently and must be pure. rs, when non-nil, is the retained
// radix scratch to sort with (callers deduping once per epoch keep one);
// nil uses a throwaway.
func MinDedupKeys(edges []QEdge, workers int, key func(*QEdge) uint64, rs *par.RadixSorter) []QEdge {
	if rs == nil {
		rs = new(par.RadixSorter)
	}
	return minDedup(edges, workers, key, rs)
}

func minDedup(edges []QEdge, workers int, key func(*QEdge) uint64, rs *par.RadixSorter) []QEdge {
	if len(edges) == 0 {
		return edges
	}
	w := par.Workers(workers)
	norm := make([]QEdge, len(edges))
	par.For(w, len(edges), func(i int) {
		e := edges[i]
		if e.A > e.B {
			e.A, e.B = e.B, e.A
		}
		norm[i] = e
	})
	if key == nil {
		par.SortStable(w, norm, func(a, b *QEdge) bool {
			if a.A != b.A {
				return a.A < b.A
			}
			if a.B != b.B {
				return a.B < b.B
			}
			if a.W != b.W {
				return a.W < b.W
			}
			return a.Orig < b.Orig
		})
	} else {
		idx := rs.SortIndexByKey(w, len(norm), func(i int) uint64 { return key(&norm[i]) })
		sorted := make([]QEdge, len(norm))
		par.For(w, len(norm), func(i int) { sorted[i] = norm[idx[i]] })
		norm = sorted
	}
	out := norm[:0]
	for i, e := range norm {
		if i > 0 && e.A == norm[i-1].A && e.B == norm[i-1].B {
			continue
		}
		out = append(out, e)
	}
	return out
}

// WeightRanks returns, for every edge id of g, its rank under the
// (weight, id) lexicographic order — the order-preserving surrogate that
// lets a single uint64 carry a (vertex, vertex, weight, id) comparator:
// rank[i] < rank[j] ⇔ (W_i, i) < (W_j, j). Ranks are dense in [0, M), so
// they fit ⌈log₂ M⌉ key bits where the raw (weight, id) pair needed 96.
// Computed with one radix shuffle over the Float64Key-mapped weights
// (stable, so equal weights rank by id); deterministic at every worker
// count.
func WeightRanks(g *graph.Graph, workers int) []uint32 {
	m := g.M()
	w := par.Workers(workers)
	idx := par.SortIndexByKey(w, m, func(i int) uint64 { return par.Float64Key(g.Edge(i).W) })
	rank := make([]uint32, m)
	par.For(w, m, func(r int) { rank[idx[r]] = uint32(r) })
	return rank
}

// TreeStats measures the rooted cluster trees formed by the merge edges. The
// forest is given as original-edge ids; roots are original vertices (cluster
// centers). For every root, the depth is measured over the connected
// component containing it; MaxHops and MaxWeighted aggregate over all roots.
//
// In the terminology of Definition 5.2, the merge-edge forest restricted to a
// final cluster's vertices is exactly the composed tree T(c) on the original
// graph, so this measures the radius the stretch analysis reasons about.
type TreeStats struct {
	MaxHops     int
	MaxWeighted float64
}

// MeasureTrees computes TreeStats for the given forest and roots.
func MeasureTrees(g *graph.Graph, forestEdges []int, roots []int) TreeStats {
	adj := make(map[int][]graph.Arc)
	for _, id := range forestEdges {
		e := g.Edge(id)
		adj[e.U] = append(adj[e.U], graph.Arc{To: e.V, Edge: id})
		adj[e.V] = append(adj[e.V], graph.Arc{To: e.U, Edge: id})
	}
	var st TreeStats
	type entry struct {
		v    int
		hops int
		w    float64
	}
	visited := make(map[int]bool)
	for _, root := range roots {
		if visited[root] {
			continue
		}
		queue := []entry{{v: root}}
		visited[root] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			if cur.hops > st.MaxHops {
				st.MaxHops = cur.hops
			}
			if cur.w > st.MaxWeighted {
				st.MaxWeighted = cur.w
			}
			for _, a := range adj[cur.v] {
				if visited[a.To] {
					continue
				}
				visited[a.To] = true
				queue = append(queue, entry{v: a.To, hops: cur.hops + 1, w: cur.w + g.Edge(a.Edge).W})
			}
		}
	}
	return st
}
