package cluster

import (
	"testing"
	"testing/quick"

	"mpcspanner/internal/graph"
	"mpcspanner/internal/xrand"
)

func TestPartitionIdentity(t *testing.T) {
	p := NewPartition(5)
	if p.Count() != 5 || p.N() != 5 {
		t.Fatalf("count=%d n=%d", p.Count(), p.N())
	}
	for v := 0; v < 5; v++ {
		if p.Super(v) != v {
			t.Fatalf("Super(%d) = %d", v, p.Super(v))
		}
	}
}

func TestPartitionContract(t *testing.T) {
	p := NewPartition(6)
	// Merge {0,1}->0, {2,3}->1, finish {4,5}.
	if err := p.Contract([]int32{0, 0, 1, 1, None, None}, 2); err != nil {
		t.Fatal(err)
	}
	if p.Count() != 2 {
		t.Fatalf("count %d", p.Count())
	}
	want := []int{0, 0, 1, 1, None, None}
	for v, w := range want {
		if p.Super(v) != w {
			t.Fatalf("Super(%d) = %d, want %d", v, p.Super(v), w)
		}
	}
	// Second contraction composes.
	if err := p.Contract([]int32{0, 0}, 1); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		if p.Super(v) != 0 {
			t.Fatalf("after second contract Super(%d) = %d", v, p.Super(v))
		}
	}
	if p.Super(4) != None {
		t.Fatal("finished vertex resurrected")
	}
}

func TestPartitionContractValidates(t *testing.T) {
	p := NewPartition(2)
	if err := p.Contract([]int32{0, 5}, 2); err == nil {
		t.Fatal("out-of-range new id accepted")
	}
}

func TestPartitionMembers(t *testing.T) {
	p := NewPartition(5)
	if err := p.Contract([]int32{0, 1, 0, None, 1}, 2); err != nil {
		t.Fatal(err)
	}
	m := p.Members()
	if len(m) != 2 {
		t.Fatalf("groups %d", len(m))
	}
	if len(m[0]) != 2 || m[0][0] != 0 || m[0][1] != 2 {
		t.Fatalf("group 0 = %v", m[0])
	}
	if len(m[1]) != 2 || m[1][0] != 1 || m[1][1] != 4 {
		t.Fatalf("group 1 = %v", m[1])
	}
}

func TestFromGraph(t *testing.T) {
	g := graph.MustNew(3, []graph.Edge{{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}})
	q := FromGraph(g)
	if len(q) != 2 {
		t.Fatalf("%d quotient edges", len(q))
	}
	if q[0] != (QEdge{A: 0, B: 1, W: 2, Orig: 0}) || q[1] != (QEdge{A: 1, B: 2, W: 3, Orig: 1}) {
		t.Fatalf("lift wrong: %v", q)
	}
}

func TestMinDedup(t *testing.T) {
	in := []QEdge{
		{A: 1, B: 0, W: 5, Orig: 0},
		{A: 0, B: 1, W: 3, Orig: 1},
		{A: 0, B: 1, W: 3, Orig: 2}, // tie: keep smaller orig id
		{A: 2, B: 1, W: 1, Orig: 3},
	}
	out := MinDedup(in)
	if len(out) != 2 {
		t.Fatalf("dedup kept %d edges", len(out))
	}
	if out[0].A != 0 || out[0].B != 1 || out[0].W != 3 || out[0].Orig != 1 {
		t.Fatalf("pair (0,1) kept %+v", out[0])
	}
	if out[1].A != 1 || out[1].B != 2 || out[1].Orig != 3 {
		t.Fatalf("pair (1,2) kept %+v", out[1])
	}
}

func TestMinDedupEmpty(t *testing.T) {
	if out := MinDedup(nil); len(out) != 0 {
		t.Fatal("empty input should stay empty")
	}
}

func TestMinDedupProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		var in []QEdge
		for i := 0; i < 60; i++ {
			a, b := r.Intn(8), r.Intn(8)
			if a == b {
				continue
			}
			in = append(in, QEdge{A: a, B: b, W: float64(1 + r.Intn(5)), Orig: i})
		}
		out := MinDedup(in)
		// 1) one edge per unordered pair; 2) it has the minimum weight.
		min := map[[2]int]float64{}
		for _, e := range in {
			a, b := e.A, e.B
			if a > b {
				a, b = b, a
			}
			key := [2]int{a, b}
			if w, ok := min[key]; !ok || e.W < w {
				min[key] = e.W
			}
		}
		seen := map[[2]int]bool{}
		for _, e := range out {
			key := [2]int{e.A, e.B}
			if e.A > e.B || seen[key] {
				return false
			}
			seen[key] = true
			if e.W != min[key] {
				return false
			}
		}
		return len(seen) == len(min)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureTrees(t *testing.T) {
	// Star with center 0 over weighted edges; root at 0 → hops 1.
	g := graph.MustNew(4, []graph.Edge{{U: 0, V: 1, W: 2}, {U: 0, V: 2, W: 5}, {U: 2, V: 3, W: 1}})
	st := MeasureTrees(g, []int{0, 1, 2}, []int{0})
	if st.MaxHops != 2 {
		t.Fatalf("hops %d, want 2 (0-2-3)", st.MaxHops)
	}
	if st.MaxWeighted != 6 {
		t.Fatalf("weighted %v, want 6", st.MaxWeighted)
	}
	// Rooting at the far leaf flips the depths.
	st = MeasureTrees(g, []int{0, 1, 2}, []int{3})
	if st.MaxHops != 3 || st.MaxWeighted != 8 {
		t.Fatalf("from leaf: %+v", st)
	}
}

func TestMeasureTreesMultipleRoots(t *testing.T) {
	// Two disjoint paths; roots in each.
	g := graph.MustNew(6, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 3, V: 4, W: 4}})
	st := MeasureTrees(g, []int{0, 1, 2}, []int{0, 3})
	if st.MaxHops != 2 {
		t.Fatalf("hops %d", st.MaxHops)
	}
	if st.MaxWeighted != 4 {
		t.Fatalf("weighted %v", st.MaxWeighted)
	}
	// Empty forest: all roots at depth 0.
	st = MeasureTrees(g, nil, []int{0, 5})
	if st.MaxHops != 0 || st.MaxWeighted != 0 {
		t.Fatalf("empty forest stats %+v", st)
	}
}

func TestMinDedupWorkersMatchesSerial(t *testing.T) {
	f := func(seed uint64) bool {
		src := xrand.New(seed)
		n := src.Intn(4000) + 10
		edges := make([]QEdge, n)
		for i := range edges {
			edges[i] = QEdge{
				A:    src.Intn(40),
				B:    src.Intn(40),
				W:    float64(src.Intn(5)),
				Orig: i,
			}
		}
		serial := MinDedup(append([]QEdge(nil), edges...))
		for _, w := range []int{2, 4, 8} {
			par := MinDedupWorkers(append([]QEdge(nil), edges...), w)
			if len(par) != len(serial) {
				return false
			}
			for i := range par {
				if par[i] != serial[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestContractWorkersMatchesSerial(t *testing.T) {
	const n = 3000
	mk := func() *Partition { return NewPartition(n) }
	relabel := make([]int32, n)
	for i := range relabel {
		switch i % 3 {
		case 0:
			relabel[i] = int32(i % 100)
		case 1:
			relabel[i] = int32((i + 7) % 100)
		default:
			relabel[i] = None
		}
	}
	serial, parallel := mk(), mk()
	if err := serial.ContractWorkers(relabel, 100, 1); err != nil {
		t.Fatal(err)
	}
	if err := parallel.ContractWorkers(relabel, 100, 8); err != nil {
		t.Fatal(err)
	}
	if serial.Count() != parallel.Count() {
		t.Fatal("counts differ")
	}
	for v := 0; v < n; v++ {
		if serial.Super(v) != parallel.Super(v) {
			t.Fatalf("Super(%d) differs: %d vs %d", v, serial.Super(v), parallel.Super(v))
		}
	}
	// Validation still rejects out-of-range labels in parallel mode.
	bad := mk()
	if err := bad.ContractWorkers([]int32{int32(n)}, 1, 8); err == nil {
		t.Fatal("out-of-range relabel accepted")
	}
}
