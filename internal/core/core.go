// Package core holds the cross-cutting vocabulary of the public v1 surface:
// the typed error taxonomy every package returns through errors.Is/As, the
// ProgressEvent stream construction loops emit, and the cooperative
// cancellation checkpoint they all share.
//
// It sits below every other internal package (it imports nothing from this
// module), so internal/par, internal/spanner, internal/mpc, internal/cclique,
// internal/apsp and internal/oracle can all return the same error types and
// the facade can re-export them as type aliases without import cycles.
package core

import (
	"context"
	"errors"
	"fmt"
)

// ErrInvalidOption is the sentinel every option-validation failure matches:
// errors.Is(err, ErrInvalidOption) holds for every *OptionError any layer
// returns, so callers can classify configuration mistakes without string
// matching.
var ErrInvalidOption = errors.New("invalid option")

// OptionError reports one rejected option value. It matches ErrInvalidOption
// under errors.Is and carries the structured fields programmatic callers
// need under errors.As.
type OptionError struct {
	// Field names the rejected option, qualified by the rejecting layer
	// (e.g. "mpcspanner: Workers", "spanner: Options.Workers").
	Field string
	// Value is the rejected value as supplied.
	Value any
	// Reason states the constraint the value violated.
	Reason string
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("invalid option %s = %v: %s", e.Field, e.Value, e.Reason)
}

// Is makes every *OptionError match the ErrInvalidOption sentinel.
func (e *OptionError) Is(target error) bool { return target == ErrInvalidOption }

// ErrArtifact is the sentinel every artifact-format failure matches:
// errors.Is(err, ErrArtifact) holds for every *ArtifactError the artifact
// layer returns — a missing or truncated file, a checksum mismatch, a foreign
// magic number, a version from the future — so callers can distinguish "this
// file is not a usable artifact" from configuration mistakes (ErrInvalidOption)
// and interruptions (ErrCanceled) without string matching.
var ErrArtifact = errors.New("invalid artifact")

// ArtifactError reports one rejected artifact file. It matches ErrArtifact
// under errors.Is and carries the structured fields programmatic callers need
// under errors.As. When the failure wraps an I/O error, Unwrap exposes it, so
// errors.Is(err, fs.ErrNotExist) still works for a missing path.
type ArtifactError struct {
	// Path is the artifact file the failure concerns.
	Path string
	// Section names the part of the container that failed ("header",
	// "section-table", "meta", "graph-edges", …); empty when the failure
	// precedes section decoding (open/stat/read errors).
	Section string
	// Reason states what was wrong with it.
	Reason string

	cause error
}

func (e *ArtifactError) Error() string {
	if e.Section != "" {
		return fmt.Sprintf("invalid artifact %s: section %s: %s", e.Path, e.Section, e.Reason)
	}
	return fmt.Sprintf("invalid artifact %s: %s", e.Path, e.Reason)
}

// Is makes every *ArtifactError match the ErrArtifact sentinel.
func (e *ArtifactError) Is(target error) bool { return target == ErrArtifact }

// Unwrap exposes the underlying I/O error, when there is one.
func (e *ArtifactError) Unwrap() error { return e.cause }

// ArtifactErrorf builds a *ArtifactError; pass a nil cause when the failure
// is purely structural (bad magic, bad checksum) rather than I/O.
func ArtifactErrorf(path, section string, cause error, format string, args ...any) error {
	return &ArtifactError{Path: path, Section: section,
		Reason: fmt.Sprintf(format, args...), cause: cause}
}

// ErrCanceled is the sentinel a cooperatively interrupted operation matches.
// Errors returned for an interrupted context satisfy both
// errors.Is(err, ErrCanceled) and errors.Is(err, ctx.Err()) — the latter
// because Canceled wraps the context's own error (context.Canceled or
// context.DeadlineExceeded).
var ErrCanceled = errors.New("operation canceled")

// canceledError wraps a context error so it matches ErrCanceled while still
// unwrapping to context.Canceled / context.DeadlineExceeded.
type canceledError struct{ cause error }

func (e *canceledError) Error() string        { return fmt.Sprintf("operation canceled: %v", e.cause) }
func (e *canceledError) Is(target error) bool { return target == ErrCanceled }
func (e *canceledError) Unwrap() error        { return e.cause }

// Canceled wraps a context's error into the taxonomy. A nil cause returns
// nil, so `return core.Canceled(ctx.Err())` is safe on any path.
func Canceled(cause error) error {
	if cause == nil {
		return nil
	}
	return &canceledError{cause: cause}
}

// Check is the cooperative checkpoint every construction loop calls between
// chunks of work: it returns nil while ctx is live (or nil, for legacy
// callers without a context) and Canceled(ctx.Err()) once ctx is done.
// Checkpoints never change what is computed — equal seeds give bit-identical
// results whether or not a context is supplied, and a canceled context is
// noticed at the next checkpoint rather than mid-chunk.
func Check(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return Canceled(ctx.Err())
	default:
		return nil
	}
}

// ProgressEvent is one observation of a running build, delivered to the
// callback installed with the facade's WithProgress option. Events are
// emitted synchronously from the construction loop at its cancellation
// checkpoints (one per grow iteration / contraction / phase transition), so
// a callback also bounds how stale a cancellation can be: cancel inside the
// callback and the loop exits at the very next checkpoint.
type ProgressEvent struct {
	// Stage names the checkpoint: "grow", "contract", "phase2" for the local
	// engine; "mpc-grow", "mpc-contract", "mpc-phase2" on the simulated
	// cluster; "balls", "sparse", "dense" for the unweighted construction;
	// "collect" for the §7 gather step; "repetition" when Repetitions > 1
	// finishes one independent run.
	Stage string

	// Algorithm is the family emitting the event ("general", "baswana-sen",
	// "general-whp", "unweighted", ...).
	Algorithm string

	// Epoch is the 1-based contraction epoch of a grow checkpoint (as in
	// spanner.Schedule); Iteration counts grow iterations completed so far
	// across all epochs, so Iteration/TotalIterations is a monotone
	// completion fraction. Both are zero when the stage has no iteration
	// structure.
	Epoch, Iteration int

	// TotalIterations is the schedule length, so callers can render
	// completion fractions without knowing the schedule formula.
	TotalIterations int

	// Supernodes is the current quotient-graph size (after contraction for
	// "contract" events); zero on the simulated MPC plane, which tracks
	// edges, not supernodes — see AliveEdges.
	Supernodes int

	// AliveEdges is the number of unprocessed quotient-graph edges still
	// live in the construction.
	AliveEdges int

	// SpannerEdges is the number of edges selected so far.
	SpannerEdges int

	// Rounds is the simulated-round bill so far (MPC / Congested Clique
	// stages only).
	Rounds int
}
