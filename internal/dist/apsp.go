package dist

import (
	"runtime"
	"sync"
	"sync/atomic"

	"mpcspanner/internal/graph"
)

// APSP materializes the full all-pairs distance matrix of g: row v is the
// exact distance row from v. Sources are fanned out over a worker pool of
// runtime.NumCPU() goroutines — the Graph is immutable and safe for
// concurrent readers, so the rows are embarrassingly parallel. Each row is
// filled by a shared Solver (EngineAuto: delta-stepping at scale, the pooled
// heap below it) with within-source workers pinned to 1, since the
// across-source fan-out already saturates the cores; per-run state is pooled,
// so a row costs exactly its own n-float allocation. Memory is n²; this is
// for verification-scale graphs, as the §7 pipeline notes.
func APSP(g *graph.Graph) [][]float64 {
	return apspWorkers(g, runtime.NumCPU())
}

// apspWorkers is APSP with an explicit worker count; workers <= 1 runs the
// serial loop. Split out so the benchmarks can pin the pool size and track
// the parallel speedup.
func apspWorkers(g *graph.Graph, workers int) [][]float64 {
	s := NewSolver(g, SolverOptions{Workers: 1})
	m := make([][]float64, g.N())
	forWorkers(g.N(), workers, func(v int) { m[v] = s.Row(v) })
	return m
}

// parallelFor runs fn(0..n-1) on a pool of NumCPU workers. Iterations must
// be independent; each writes only its own output slot, so results are
// deterministic regardless of scheduling.
func parallelFor(n int, fn func(int)) {
	forWorkers(n, runtime.NumCPU(), fn)
}

// forWorkers is the worker pool behind APSP and the stretch estimators:
// workers goroutines claim chunks of the index space from an atomic cursor.
func forWorkers(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	const chunk = 8
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(chunk)) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}
