package dist

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"mpcspanner/internal/graph"
	"mpcspanner/internal/obs"
)

func benchGraph(n int) *graph.Graph {
	return graph.Connectify(graph.GNP(n, 12/float64(n), graph.UniformWeight(1, 100), 7), 50)
}

// largeGraphs memoizes the construction-scale graphs across sub-benchmarks:
// generating a 6M-edge GNP instance costs seconds, measuring a row costs
// milliseconds, and every engine variant must see the identical graph.
var largeGraphs sync.Map

func largeBenchGraph(n int) *graph.Graph {
	if g, ok := largeGraphs.Load(n); ok {
		return g.(*graph.Graph)
	}
	g := benchGraph(n)
	largeGraphs.Store(n, g)
	return g
}

// BenchmarkSSSP is the large-n single-source tier gated by BENCH_large.json
// (bench-large CI job, not the 3x-count PR gate): heap Dijkstra vs
// delta-stepping full-row fills on a sparse synthetic family at construction
// scale, reporting relaxable arcs per second (2m arcs per row) and peak RSS
// as custom metrics. The acceptance bar pinned by the committed baseline:
// delta-stepping ≥ 2× the heap's edges/s at n=1M, workers=0.
func BenchmarkSSSP(b *testing.B) {
	for _, size := range []struct {
		label string
		n     int
	}{{"100k", 100_000}, {"1M", 1_000_000}} {
		for _, engine := range []Engine{EngineHeap, EngineDelta} {
			b.Run(fmt.Sprintf("n=%s/engine=%s/workers=0", size.label, engine), func(b *testing.B) {
				g := largeBenchGraph(size.n)
				s := NewSolver(g, SolverOptions{Engine: engine})
				row := make([]float64, g.N())
				s.RowInto(0, row) // warm the scratch pool
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if d := s.RowInto((i*7919)%g.N(), row); len(d) != g.N() {
						b.Fatal("bad result")
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(2*g.M())*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
				if rss := obs.PeakRSSBytes(); rss > 0 {
					b.ReportMetric(float64(rss), "peak_rss_bytes")
				}
			})
		}
	}
}

func BenchmarkDijkstra(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		g := benchGraph(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if d := Dijkstra(g, i%g.N()); len(d) != g.N() {
					b.Fatal("bad result")
				}
			}
		})
	}
}

// BenchmarkDijkstraWarm is the pooled-scratch steady state the acceptance
// criteria pin: the caller reuses its row and the run draws its heap from
// the per-size pool, so allocs/op must report ~0.
func BenchmarkDijkstraWarm(b *testing.B) {
	g := benchGraph(10_000)
	buf := make([]float64, g.N())
	DijkstraInto(g, 0, buf) // warm the scratch pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := DijkstraInto(g, i%g.N(), buf); len(d) != g.N() {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkMultiSourceDijkstra(b *testing.B) {
	g := benchGraph(50_000)
	sources := make([]int, 64)
	for i := range sources {
		sources[i] = (i * 677) % g.N()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if d, _ := MultiSourceDijkstra(g, sources); len(d) != g.N() {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkAPSPSerial is the single-threaded baseline for the speedup
// tracked by BenchmarkAPSPParallel: compare ns/op between the two.
func BenchmarkAPSPSerial(b *testing.B) {
	g := benchGraph(2_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if m := apspWorkers(g, 1); len(m) != g.N() {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkAPSPParallel fans the same sources out over worker pools of
// increasing size up to NumCPU. On a ≥4-core machine the NumCPU variant
// should run ≥2× faster than BenchmarkAPSPSerial.
func BenchmarkAPSPParallel(b *testing.B) {
	g := benchGraph(2_000)
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if m := apspWorkers(g, workers); len(m) != g.N() {
					b.Fatal("bad result")
				}
			}
		})
	}
}

func benchWorkerCounts() []int {
	counts := []int{2, 4}
	if nc := runtime.NumCPU(); nc > 4 {
		counts = append(counts, nc)
	}
	return counts
}

func BenchmarkSampledEdgeStretch(b *testing.B) {
	g := benchGraph(20_000)
	h := g.Subgraph(spannerLikeSubset(g))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SampledEdgeStretch(g, h, 500, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEdgeStretchFull(b *testing.B) {
	g := benchGraph(5_000)
	h := g.Subgraph(spannerLikeSubset(g))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EdgeStretch(g, h); err != nil {
			b.Fatal(err)
		}
	}
}
