package dist

import "mpcspanner/internal/graph"

// BFSBall collects the BFS ball of radius `radius` hops around v, abandoning
// the ball once it would exceed maxSize vertices. It returns the vertices
// collected (v first, then in BFS order, at most maxSize of them) and whether
// the true ball was truncated by the cap. Weights are ignored: the ball is a
// hop ball, matching the Appendix B sparse/dense classification where a
// vertex is sparse iff its 4k-hop ball fits in n^{γ/2} vertices.
func BFSBall(g *graph.Graph, v, radius, maxSize int) (ball []int, truncated bool) {
	if maxSize < 1 {
		return nil, true
	}
	seen := map[int]bool{v: true}
	ball = append(ball, v)
	frontier := []int{v}
	for hop := 0; hop < radius && len(frontier) > 0; hop++ {
		var next []int
		for _, x := range frontier {
			for _, a := range g.Adj(x) {
				if seen[a.To] {
					continue
				}
				if len(ball) >= maxSize {
					return ball, true
				}
				seen[a.To] = true
				ball = append(ball, a.To)
				next = append(next, a.To)
			}
		}
		frontier = next
	}
	return ball, false
}
