package dist

// This file is the delta-stepping SSSP engine (Meyer & Sanders 2003): the
// bucketed, within-source-parallel replacement for the binary-heap Dijkstra
// on every path that needs a *full* distance row — oracle cold fills, APSP
// materialization, the pair-stretch estimators. The heap stays behind two
// paths on purpose: dijkstraTo early-exits after settling a few targets
// (delta-stepping has no cheap early exit — it settles a whole bucket at a
// time), and MultiSourceDijkstra's nearest-source attribution breaks ties by
// heap pop order, an order delta-stepping does not reproduce.
//
// Exactness: with strictly positive weights every label-correcting schedule
// — heap order, bucket order, any order that keeps relaxing until no edge
// improves — converges to the same fixpoint: d[v] = min over all src→v paths
// of the left-to-right float64 sum of the path's weights. Float addition of
// non-negative values is monotone, so relaxation order changes which
// intermediate labels a vertex holds but never the final minimum. The final
// row is therefore bit-identical to heap Dijkstra's at every worker count —
// the equality the deltastep tests pin. (Intermediate work — relaxation
// counts, bucket population — is scheduling-dependent at workers > 1; only
// the distances are deterministic.)
//
// Bucket structure: tentative distances are binned into buckets of width Δ,
// kept in a cyclic array of B = ⌊maxW/Δ⌋+3 slots. The window bound: every
// insertion while bucket `cur` is active carries a distance in
// [cur·Δ, cur·Δ + maxW + Δ), so live entries span at most ⌊maxW/Δ⌋+2
// consecutive buckets and the cyclic array never aliases two live bins (the
// +3 includes one slot of slack for float rounding at bucket edges). Emptied
// bucket slices are recycled through a free list — lazy bucket recycling —
// so steady-state bucket traffic allocates nothing.

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"mpcspanner/internal/graph"
	"mpcspanner/internal/obs"
	"mpcspanner/internal/par"
)

// Engine selects the single-source shortest-path algorithm behind full-row
// fills. All engines produce bit-identical rows; they differ only in speed.
type Engine uint8

const (
	// EngineAuto picks delta-stepping at scale (n ≥ deltaAutoMinN) and the
	// pooled heap below it, where bucket bookkeeping costs more than the
	// heap's log factor saves.
	EngineAuto Engine = iota
	// EngineHeap forces the pooled 4-ary-heap Dijkstra.
	EngineHeap
	// EngineDelta forces bucketed delta-stepping.
	EngineDelta
)

// String returns the wire/CLI name of the engine.
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineHeap:
		return "heap"
	case EngineDelta:
		return "delta-stepping"
	default:
		return fmt.Sprintf("engine(%d)", uint8(e))
	}
}

// ParseEngine maps a CLI/wire name back to an Engine. "delta" is accepted as
// shorthand for "delta-stepping".
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "auto":
		return EngineAuto, nil
	case "heap":
		return EngineHeap, nil
	case "delta", "delta-stepping":
		return EngineDelta, nil
	}
	return EngineAuto, fmt.Errorf("dist: unknown SSSP engine %q (want auto, heap, or delta-stepping)", s)
}

const (
	// deltaAutoMinN is the vertex count at which EngineAuto switches from the
	// heap to delta-stepping: below it a full row settles in microseconds and
	// the split/bucket setup dominates.
	deltaAutoMinN = 1 << 15

	// maxDeltaBuckets caps the cyclic bucket array. A Δ so small that
	// ⌊maxW/Δ⌋+3 exceeds the cap is raised to the smallest Δ that fits —
	// protecting against pathological widths without unbounded memory.
	maxDeltaBuckets = 1 << 20

	// parRelaxCutoff mirrors par's serial cutoff: frontiers below it relax on
	// the calling goroutine without atomics, so the many tiny phases of a
	// sparse run never pay CAS or dispatch overhead.
	parRelaxCutoff = 256
)

// SolverOptions configures NewSolver. The zero value selects EngineAuto with
// the auto-tuned Δ, GOMAXPROCS workers, and no instrumentation.
type SolverOptions struct {
	// Engine selects the algorithm; EngineAuto resolves by graph size.
	Engine Engine

	// Delta is the bucket width for delta-stepping. Values ≤ 0 (and NaN/Inf)
	// select the auto heuristic Δ = (average edge weight) / (average degree):
	// wider buckets on heavy edges amortize phase overhead, narrower buckets
	// on dense graphs bound re-relaxation within a bucket. The width is
	// clamped up if the implied bucket array would exceed maxDeltaBuckets.
	Delta float64

	// Workers is the within-source parallelism: 0 selects GOMAXPROCS, 1 the
	// serial (atomics-free) path. Negative values clamp to 1 (callers
	// validate at their option boundary; see par.CheckWorkers).
	Workers int

	// Metrics, when non-nil, exposes the dist_* series: row counts and
	// latencies (dist_sssp_rows_total, dist_sssp_row_seconds) plus the
	// delta-stepping internals (dist_delta_relaxations_total,
	// dist_delta_buckets_total, dist_delta_light_phases_total and the
	// per-phase dist_delta_{light,heavy}_seconds histograms). When nil the
	// fill path reads no clocks, mirroring the oracle's discipline.
	Metrics *obs.Registry
}

// Solver answers full single-source distance rows over one frozen graph,
// with the engine, Δ, and worker count resolved once at construction. The
// light/heavy edge split is precomputed per CSR adjacency at construction;
// per-run state (buckets, marks, per-shard insert buffers) is drawn from a
// per-Solver sync.Pool, so steady-state rows allocate nothing beyond the row
// itself. A Solver is safe for concurrent use.
type Solver struct {
	g       *graph.Graph
	engine  Engine  // resolved: EngineHeap or EngineDelta, never EngineAuto
	delta   float64 // effective bucket width; 0 when the engine is the heap
	invDel  float64 // 1/delta, so bucketOf multiplies instead of divides
	buckets int     // cyclic bucket array length B
	workers int     // resolved within-source worker count, ≥ 1

	// Light/heavy CSR split: arc i of vertex v lives at lightOff[v] ≤ i <
	// lightOff[v+1] (weight ≤ Δ) or the heavy mirror (> Δ). Targets and
	// weights are split into parallel arrays — 12 bytes per arc, scanned
	// linearly — instead of re-deriving weights through g.Edge on every
	// relaxation.
	lightOff, heavyOff []int32
	lightTo, heavyTo   []int32
	lightW, heavyW     []float64

	pool sync.Pool // *deltaScratch

	// Metric handles; nil (and never touched) without SolverOptions.Metrics.
	rows, relaxations, bucketsDone, lightPhases *obs.Counter
	rowSeconds, lightSeconds, heavySeconds      *obs.Histogram
}

// NewSolver resolves the options against g and precomputes the edge split.
// The graph must be frozen; the solver holds a reference, not a copy.
func NewSolver(g *graph.Graph, opt SolverOptions) *Solver {
	s := &Solver{g: g, workers: par.Workers(opt.Workers)}
	s.engine = opt.Engine
	if s.engine == EngineAuto {
		if g.N() >= deltaAutoMinN && g.M() > 0 {
			s.engine = EngineDelta
		} else {
			s.engine = EngineHeap
		}
	}
	if opt.Metrics != nil {
		s.rows = opt.Metrics.Counter("dist_sssp_rows_total")
		s.rowSeconds = opt.Metrics.Histogram("dist_sssp_row_seconds", obs.LatencyBuckets)
	}
	if s.engine != EngineDelta {
		return s
	}

	// Edge statistics for the auto heuristic and the bucket window bound.
	m := g.M()
	maxW, sumW := 0.0, 0.0
	for i := 0; i < m; i++ {
		w := g.Edge(i).W
		sumW += w
		if w > maxW {
			maxW = w
		}
	}
	delta := opt.Delta
	if !(delta > 0) || math.IsInf(delta, 1) { // ≤0, NaN, +Inf: auto-tune
		if m > 0 && g.N() > 0 {
			avgW := sumW / float64(m)
			avgDeg := 2 * float64(m) / float64(g.N())
			delta = avgW / avgDeg
		}
		if !(delta > 0) || math.IsInf(delta, 1) {
			delta = 1 // edgeless or degenerate graph: any width works
		}
	}
	if b := int64(maxW/delta) + 3; b > maxDeltaBuckets {
		delta = maxW / float64(maxDeltaBuckets-3)
	}
	s.delta = delta
	s.invDel = 1 / delta
	s.buckets = int(int64(maxW/delta) + 3)

	// Split every adjacency into light (w ≤ Δ) and heavy (w > Δ) runs:
	// counting pass builds the offsets, fill pass scatters targets and
	// weights. The fill is index-addressed per vertex, so sharding it is
	// deterministic.
	n := g.N()
	s.lightOff = make([]int32, n+1)
	s.heavyOff = make([]int32, n+1)
	for v := 0; v < n; v++ {
		var l, h int32
		for _, a := range g.Adj(v) {
			if g.Edge(a.Edge).W <= delta {
				l++
			} else {
				h++
			}
		}
		s.lightOff[v+1] = s.lightOff[v] + l
		s.heavyOff[v+1] = s.heavyOff[v] + h
	}
	s.lightTo = make([]int32, s.lightOff[n])
	s.lightW = make([]float64, s.lightOff[n])
	s.heavyTo = make([]int32, s.heavyOff[n])
	s.heavyW = make([]float64, s.heavyOff[n])
	par.ForShard(s.workers, n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			li, hi2 := s.lightOff[v], s.heavyOff[v]
			for _, a := range g.Adj(v) {
				w := g.Edge(a.Edge).W
				if w <= delta {
					s.lightTo[li] = int32(a.To)
					s.lightW[li] = w
					li++
				} else {
					s.heavyTo[hi2] = int32(a.To)
					s.heavyW[hi2] = w
					hi2++
				}
			}
		}
	})

	if opt.Metrics != nil {
		s.relaxations = opt.Metrics.Counter("dist_delta_relaxations_total")
		s.bucketsDone = opt.Metrics.Counter("dist_delta_buckets_total")
		s.lightPhases = opt.Metrics.Counter("dist_delta_light_phases_total")
		s.lightSeconds = opt.Metrics.Histogram("dist_delta_light_seconds", obs.LatencyBuckets)
		s.heavySeconds = opt.Metrics.Histogram("dist_delta_heavy_seconds", obs.LatencyBuckets)
	}
	return s
}

// Engine returns the resolved engine (never EngineAuto).
func (s *Solver) Engine() Engine { return s.engine }

// Delta returns the effective bucket width, or 0 when the engine is the heap.
func (s *Solver) Delta() float64 { return s.delta }

// Workers returns the resolved within-source worker count.
func (s *Solver) Workers() int { return s.workers }

// Row returns the full distance row from src; unreachable vertices get Inf.
// The returned slice is freshly allocated and caller-owned.
func (s *Solver) Row(src int) []float64 { return s.RowInto(src, nil) }

// RowInto is Row writing into d, which is returned. A d of the wrong length
// (nil included) is replaced by a fresh allocation; a reused g.N()-sized
// buffer makes the steady-state call allocation-free. It panics if src is
// not a vertex, matching DijkstraInto.
func (s *Solver) RowInto(src int, d []float64) []float64 {
	if n := s.g.N(); len(d) != n {
		d = make([]float64, n)
	}
	if s.rowSeconds == nil {
		s.fill(src, d)
		return d
	}
	start := time.Now()
	s.fill(src, d)
	s.rowSeconds.Observe(time.Since(start).Seconds())
	return d
}

func (s *Solver) fill(src int, d []float64) {
	if s.engine == EngineHeap {
		DijkstraInto(s.g, src, d)
	} else {
		s.runDelta(src, d)
	}
	if s.rows != nil {
		s.rows.Add(1)
	}
}

// deltaScratch is the pooled per-run state of one delta-stepping execution.
type deltaScratch struct {
	buckets [][]int32 // cyclic bucket array, indexed cur mod B; nil = empty
	free    [][]int32 // recycled bucket backing stores
	fr      []int32   // current light frontier (stale-filtered take)
	r       []int32   // vertices settled in the active bucket (heavy phase input)

	// Queue state, epoch-stamped so rows never memset O(n) arrays: vertex v
	// has a live bucket entry iff qmark[v] == qgen and qbucket[v] ≥ 0, and
	// that entry sits at bucket qbucket[v]. Keeping at most one live entry
	// per (vertex, bucket) is what bounds duplicate processing.
	qmark   []uint32
	qbucket []int64
	qgen    uint32

	// R-membership epoch: rmark[v] == rgen ⇔ v already collected into r for
	// the active bucket, so its heavy arcs relax once per bucket.
	rmark []uint32
	rgen  uint32

	ins     [][]int32 // per-shard insert buffers for the parallel relax path
	pending int64     // live bucket entries; 0 ⇔ done

	// Local metric accumulators, flushed once per row (Add per edge would be
	// an atomic per relaxation).
	nRelax, nBuckets, nLight int64
}

func (s *Solver) getScratch() *deltaScratch {
	if sc, ok := s.pool.Get().(*deltaScratch); ok {
		return sc
	}
	n := s.g.N()
	return &deltaScratch{
		buckets: make([][]int32, s.buckets),
		qmark:   make([]uint32, n),
		qbucket: make([]int64, n),
		rmark:   make([]uint32, n),
	}
}

// bucketOf bins a finite tentative distance. Multiplication by 1/Δ is
// monotone (float rounding preserves ≤), which is all the algorithm needs:
// improvements never move a vertex to a later bucket, and relaxations from
// bucket cur never land before cur.
func (s *Solver) bucketOf(x float64) int64 { return int64(x * s.invDel) }

// enqueue records v's live entry at bucket b, skipping the append when an
// entry for exactly (v, b) is already live.
func (sc *deltaScratch) enqueue(v int32, b int64, nbuckets int) {
	if sc.qmark[v] == sc.qgen && sc.qbucket[v] == b {
		return
	}
	sc.qmark[v] = sc.qgen
	sc.qbucket[v] = b
	i := int(b % int64(nbuckets))
	if sc.buckets[i] == nil {
		if k := len(sc.free); k > 0 {
			sc.buckets[i] = sc.free[k-1]
			sc.free = sc.free[:k-1]
		} else {
			sc.buckets[i] = make([]int32, 0, 64)
		}
	}
	sc.buckets[i] = append(sc.buckets[i], v)
	sc.pending++
}

// runDelta fills d with the exact distance row from src.
func (s *Solver) runDelta(src int, d []float64) {
	for i := range d {
		d[i] = Inf
	}
	d[src] = 0
	sc := s.getScratch()
	sc.qgen++
	if sc.qgen == 0 { // epoch wrapped: invalidate stale stamps
		clear(sc.qmark)
		sc.qgen = 1
	}
	sc.pending = 0
	sc.enqueue(int32(src), 0, s.buckets)

	// The parallel path CASes distances as uint64 bit patterns; for the
	// non-negative values Dijkstra produces the float and bit orders agree.
	var du []uint64
	if s.workers > 1 && len(d) > 0 {
		du = unsafe.Slice((*uint64)(unsafe.Pointer(&d[0])), len(d))
	}

	cur := int64(0)
	for sc.pending > 0 {
		for len(sc.buckets[cur%int64(s.buckets)]) == 0 {
			cur++
		}
		// Light loop: drain bucket cur until it stays empty. Relaxing a light
		// edge can refill the active bucket (w ≤ Δ keeps nd in the same bin),
		// so re-taking until stable is what settles the bucket exactly.
		sc.rgen++
		if sc.rgen == 0 {
			clear(sc.rmark)
			sc.rgen = 1
		}
		sc.r = sc.r[:0]
		var phaseStart time.Time
		if s.lightSeconds != nil {
			phaseStart = time.Now()
		}
		for {
			i := int(cur % int64(s.buckets))
			take := sc.buckets[i]
			if len(take) == 0 {
				break
			}
			sc.buckets[i] = nil
			sc.pending -= int64(len(take))
			// Serial pre-filter: drop stale entries (the vertex has moved to
			// an earlier bucket and was or will be settled there), release
			// the live-entry stamp, and collect first-time vertices into R.
			fr := sc.fr[:0]
			for _, v := range take {
				if s.bucketOf(d[v]) != cur {
					continue
				}
				if sc.qmark[v] == sc.qgen && sc.qbucket[v] == cur {
					sc.qbucket[v] = -1
				}
				if sc.rmark[v] != sc.rgen {
					sc.rmark[v] = sc.rgen
					sc.r = append(sc.r, v)
				}
				fr = append(fr, v)
			}
			sc.fr = fr
			sc.free = append(sc.free, take[:0])
			s.relax(sc, d, du, fr, s.lightOff, s.lightTo, s.lightW)
			sc.nLight++
		}
		if s.lightSeconds != nil {
			s.lightSeconds.Observe(time.Since(phaseStart).Seconds())
			phaseStart = time.Now()
		}
		// Heavy phase: every vertex settled in this bucket relaxes its heavy
		// arcs once, with its final distance. Heavy targets land in later
		// buckets (w > Δ), except at most one bucket of float-rounding slack
		// — if that lands back in cur, the outer loop re-enters the light
		// loop for cur before advancing, so nothing is stranded.
		s.relax(sc, d, du, sc.r, s.heavyOff, s.heavyTo, s.heavyW)
		if s.heavySeconds != nil {
			s.heavySeconds.Observe(time.Since(phaseStart).Seconds())
		}
		sc.nBuckets++
	}

	if s.rows != nil {
		s.relaxations.Add(sc.nRelax)
		s.bucketsDone.Add(sc.nBuckets)
		s.lightPhases.Add(sc.nLight)
	}
	sc.nRelax, sc.nBuckets, sc.nLight = 0, 0, 0
	s.pool.Put(sc)
}

// relax applies one relaxation pass of the given CSR split (light or heavy)
// over list. Small frontiers — and the whole run at workers == 1 — take the
// serial path: plain loads and stores, no atomics. Large frontiers shard
// across workers: distances improve via CAS-min, each shard records its
// winning targets in its own insert buffer, and the buffers merge serially
// in shard order (deterministic bucket contents are not required — only the
// final distances are — but the serial merge keeps the queue bookkeeping
// single-writer). Relaxation *counts* at workers > 1 depend on CAS races and
// are therefore approximate; distances are not.
func (s *Solver) relax(sc *deltaScratch, d []float64, du []uint64, list []int32, off, to []int32, w []float64) {
	if s.workers == 1 || len(list) < parRelaxCutoff {
		for _, v := range list {
			dv := d[v]
			end := off[v+1]
			for i := off[v]; i < end; i++ {
				u := to[i]
				nd := dv + w[i]
				if nd < d[u] {
					d[u] = nd
					sc.nRelax++
					sc.enqueue(u, s.bucketOf(nd), s.buckets)
				}
			}
		}
		return
	}
	shards := par.ShardCount(s.workers, len(list))
	for len(sc.ins) < shards {
		sc.ins = append(sc.ins, nil)
	}
	par.ForShard(s.workers, len(list), func(shard, lo, hi int) {
		buf := sc.ins[shard][:0]
		for _, v := range list[lo:hi] {
			dv := math.Float64frombits(atomic.LoadUint64(&du[v]))
			end := off[v+1]
			for i := off[v]; i < end; i++ {
				u := to[i]
				if casMin(&du[u], dv+w[i]) {
					buf = append(buf, u)
				}
			}
		}
		sc.ins[shard] = buf
	})
	for _, buf := range sc.ins[:shards] {
		for _, u := range buf {
			sc.nRelax++
			sc.enqueue(u, s.bucketOf(d[u]), s.buckets)
		}
	}
}

// casMin lowers the float64 at addr to nd if nd is smaller, spinning through
// concurrent improvements. Returns whether this call won an improvement.
func casMin(addr *uint64, nd float64) bool {
	bits := math.Float64bits(nd)
	for {
		old := atomic.LoadUint64(addr)
		if math.Float64frombits(old) <= nd {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, bits) {
			return true
		}
	}
}
