package dist

import (
	"fmt"
	"math"
	"testing"

	"mpcspanner/internal/graph"
	"mpcspanner/internal/obs"
)

// deltaWorkerCounts are the worker counts the exactness contract is pinned
// at: serial, a small fixed pool, and GOMAXPROCS.
var deltaWorkerCounts = []int{1, 3, 0}

// requireRowEqual asserts bit-identity (not tolerance) between two rows.
// Both engines converge to the same float64 fixpoint — the minimum over all
// paths of the left-to-right float sum — so any difference is a bug.
func requireRowEqual(t *testing.T, want, got []float64, ctx string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: row length %d != %d", ctx, len(got), len(want))
	}
	for v := range want {
		if math.Float64bits(want[v]) != math.Float64bits(got[v]) {
			t.Fatalf("%s: d[%d] = %v (bits %x), heap Dijkstra says %v (bits %x)",
				ctx, v, got[v], math.Float64bits(got[v]), want[v], math.Float64bits(want[v]))
		}
	}
}

// checkAllSources compares delta-stepping against heap Dijkstra from every
// source (or a stride of sources for larger graphs) at every pinned worker
// count.
func checkAllSources(t *testing.T, g *graph.Graph, name string, delta float64) {
	t.Helper()
	stride := 1
	if g.N() > 64 {
		stride = g.N() / 64
	}
	for _, workers := range deltaWorkerCounts {
		s := NewSolver(g, SolverOptions{Engine: EngineDelta, Delta: delta, Workers: workers})
		if s.Engine() != EngineDelta {
			t.Fatalf("%s: explicit EngineDelta resolved to %v", name, s.Engine())
		}
		row := make([]float64, g.N())
		for src := 0; src < g.N(); src += stride {
			want := Dijkstra(g, src)
			got := s.RowInto(src, row)
			requireRowEqual(t, want, got,
				fmt.Sprintf("%s workers=%d delta=%v src=%d", name, workers, delta, src))
		}
	}
}

func TestDeltaMatchesHeapOnFamilies(t *testing.T) {
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp-sparse-uniform", graph.Connectify(graph.GNP(400, 8.0/400, graph.UniformWeight(1, 100), 1), 50)},
		{"gnp-sparse-exp", graph.Connectify(graph.GNP(400, 8.0/400, graph.ExpWeight(10), 2), 50)},
		{"gnp-unit", graph.Connectify(graph.GNP(300, 6.0/300, graph.UnitWeight, 3), 1)},
		{"gnp-power", graph.Connectify(graph.GNP(300, 6.0/300, graph.PowerWeight(2, 10), 4), 8)},
		{"grid", graph.Grid(17, 19, graph.UniformWeight(1, 10), 5)},
		{"torus", graph.Torus(13, 11, graph.ExpWeight(3), 6)},
		{"path", graph.Path(257, graph.UniformWeight(0.5, 2), 7)},
		{"cycle", graph.Cycle(200, graph.UniformWeight(1, 5), 8)},
		{"star", graph.Star(300, graph.UniformWeight(1, 50), 9)},
		{"tree", graph.RandomTree(300, graph.PowerWeight(3, 6), 10)},
		{"pref-attach", graph.PreferentialAttachment(300, 3, graph.UniformWeight(1, 100), 11)},
		{"complete", graph.Complete(300, graph.UniformWeight(1, 1000), 12)},
		{"tiny-weights", graph.Connectify(graph.GNP(200, 8.0/200, graph.UniformWeight(1e-12, 1e-9), 13), 1e-9)},
		{"wide-weights", graph.Connectify(graph.GNP(200, 8.0/200, graph.UniformWeight(1e-6, 1e6), 14), 1)},
	}
	for _, f := range families {
		f := f
		t.Run(f.name, func(t *testing.T) {
			t.Parallel()
			checkAllSources(t, f.g, f.name, 0) // auto-tuned Δ
		})
	}
}

// TestDeltaParallelFrontier forces the CAS/merge path: a complete graph's
// first bucket frontier exceeds the serial relax cutoff, so workers=3 truly
// shards the relaxation.
func TestDeltaParallelFrontier(t *testing.T) {
	g := graph.Complete(400, graph.UniformWeight(1, 10), 99)
	checkAllSources(t, g, "complete-parallel", 0)
	checkAllSources(t, g, "complete-parallel-wide", 1e9) // single-bucket regime
}

// TestDeltaExplicitWidths sweeps Δ across regimes: much smaller than the
// minimum weight (every edge heavy — Dial-like), comparable to the mean, and
// larger than the graph diameter (every edge light — one Bellman-Ford-style
// bucket). All must agree bit-for-bit with the heap.
func TestDeltaExplicitWidths(t *testing.T) {
	g := graph.Connectify(graph.GNP(300, 8.0/300, graph.UniformWeight(1, 100), 21), 50)
	for _, delta := range []float64{1e-9, 0.5, 5, 100, 1e12, math.Inf(1)} {
		checkAllSources(t, g, "width-sweep", delta)
	}
}

func TestDeltaDisconnectedComponents(t *testing.T) {
	// Two GNP islands plus isolated vertices: unreachable entries must be the
	// Inf sentinel, bit-identical to the heap's.
	a := graph.GNP(150, 10.0/150, graph.UniformWeight(1, 10), 31)
	var edges []graph.Edge
	for _, e := range a.Edges() {
		edges = append(edges, e)
		edges = append(edges, graph.Edge{U: e.U + 150, V: e.V + 150, W: e.W})
	}
	g, err := graph.New(310, edges) // vertices 300..309 are isolated
	if err != nil {
		t.Fatal(err)
	}
	checkAllSources(t, g, "disconnected", 0)

	s := NewSolver(g, SolverOptions{Engine: EngineDelta})
	row := s.Row(305) // isolated source
	for v, d := range row {
		switch {
		case v == 305 && d != 0:
			t.Fatalf("isolated source distance to itself = %v", d)
		case v != 305 && !math.IsInf(d, 1):
			t.Fatalf("isolated source reaches %d at %v; want +Inf", v, d)
		}
	}
}

func TestDeltaSingleVertexAndEdgeless(t *testing.T) {
	for _, n := range []int{1, 5} {
		g, err := graph.New(n, nil)
		if err != nil {
			t.Fatal(err)
		}
		s := NewSolver(g, SolverOptions{Engine: EngineDelta})
		requireRowEqual(t, Dijkstra(g, 0), s.Row(0), fmt.Sprintf("edgeless n=%d", n))
	}
}

// TestDeltaRejectsZeroWeight pins the invariant delta-stepping's light/heavy
// split and termination argument rely on: the graph layer refuses
// non-positive (and NaN) weights, so w > 0 holds for every arc the solver
// ever sees.
func TestDeltaRejectsZeroWeight(t *testing.T) {
	for _, w := range []float64{0, -1, math.NaN(), math.Inf(-1)} {
		if _, err := graph.New(2, []graph.Edge{{U: 0, V: 1, W: w}}); err == nil {
			t.Fatalf("graph.New accepted weight %v; the solver requires w > 0", w)
		}
	}
}

// TestDeltaDenormalWeights runs the engines over subnormal float weights,
// where d[u] + w can round to exactly d[u]: relaxation must still terminate
// and agree with the heap.
func TestDeltaDenormalWeights(t *testing.T) {
	denormal := math.SmallestNonzeroFloat64
	edges := []graph.Edge{
		{U: 0, V: 1, W: denormal},
		{U: 1, V: 2, W: denormal * 4},
		{U: 2, V: 3, W: 1},
		{U: 0, V: 3, W: 1},
		{U: 3, V: 4, W: denormal},
		{U: 1, V: 4, W: 2},
	}
	g, err := graph.New(5, edges)
	if err != nil {
		t.Fatal(err)
	}
	checkAllSources(t, g, "denormal", 0)
	checkAllSources(t, g, "denormal-wide", 10)
}

func TestDeltaParallelEdges(t *testing.T) {
	// Parallel edges with distinct weights: the split may place the copies in
	// different classes; the minimum must still win.
	g, err := graph.New(3, []graph.Edge{
		{U: 0, V: 1, W: 5}, {U: 0, V: 1, W: 2}, {U: 0, V: 1, W: 9},
		{U: 1, V: 2, W: 1}, {U: 1, V: 2, W: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkAllSources(t, g, "parallel-edges", 0)
}

func TestEngineAutoResolution(t *testing.T) {
	small := graph.Path(64, graph.UnitWeight, 1)
	if e := NewSolver(small, SolverOptions{}).Engine(); e != EngineHeap {
		t.Fatalf("auto on n=64 resolved to %v; want heap", e)
	}
	if e := NewSolver(small, SolverOptions{Engine: EngineDelta}).Engine(); e != EngineDelta {
		t.Fatalf("explicit delta resolved to %v", e)
	}
	if d := NewSolver(small, SolverOptions{Engine: EngineHeap}).Delta(); d != 0 {
		t.Fatalf("heap solver reports delta %v; want 0", d)
	}
	s := NewSolver(small, SolverOptions{Engine: EngineDelta, Delta: 2.5})
	if s.Delta() != 2.5 {
		t.Fatalf("explicit Δ not honored: %v", s.Delta())
	}
	// Auto Δ = avgW / avgDeg: the path has unit weights and average degree
	// 2·63/64, so the width must land near 64/126.
	auto := NewSolver(small, SolverOptions{Engine: EngineDelta})
	want := 1.0 / (2 * 63.0 / 64)
	if math.Abs(auto.Delta()-want) > 1e-12 {
		t.Fatalf("auto Δ = %v; want %v", auto.Delta(), want)
	}
}

func TestEngineStringAndParse(t *testing.T) {
	cases := map[Engine]string{EngineAuto: "auto", EngineHeap: "heap", EngineDelta: "delta-stepping"}
	for e, name := range cases {
		if e.String() != name {
			t.Fatalf("%d.String() = %q; want %q", e, e.String(), name)
		}
		got, err := ParseEngine(name)
		if err != nil || got != e {
			t.Fatalf("ParseEngine(%q) = %v, %v", name, got, err)
		}
	}
	if got, err := ParseEngine("delta"); err != nil || got != EngineDelta {
		t.Fatalf("ParseEngine(delta) = %v, %v", got, err)
	}
	if _, err := ParseEngine("bogus"); err == nil {
		t.Fatal("ParseEngine accepted bogus engine")
	}
}

func TestSolverMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	g := graph.Connectify(graph.GNP(300, 8.0/300, graph.UniformWeight(1, 100), 41), 50)
	s := NewSolver(g, SolverOptions{Engine: EngineDelta, Workers: 1, Metrics: reg})
	s.Row(0)
	s.Row(1)
	if v := reg.Counter("dist_sssp_rows_total").Value(); v != 2 {
		t.Fatalf("dist_sssp_rows_total = %d; want 2", v)
	}
	if v := reg.Counter("dist_delta_relaxations_total").Value(); v <= 0 {
		t.Fatalf("dist_delta_relaxations_total = %d; want > 0", v)
	}
	if v := reg.Counter("dist_delta_buckets_total").Value(); v <= 0 {
		t.Fatalf("dist_delta_buckets_total = %d; want > 0", v)
	}
	if v := reg.Counter("dist_delta_light_phases_total").Value(); v <= 0 {
		t.Fatalf("dist_delta_light_phases_total = %d; want > 0", v)
	}
}

// TestSolverRowIntoReuse pins the pooled-scratch contract: reusing the row
// buffer makes steady-state fills allocation-free apart from bucket growth
// on the first run.
func TestSolverRowIntoReuse(t *testing.T) {
	if raceEnabled { // under -race, sync.Pool drops entries by design
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	g := graph.Connectify(graph.GNP(500, 8.0/500, graph.UniformWeight(1, 100), 51), 50)
	s := NewSolver(g, SolverOptions{Engine: EngineDelta, Workers: 1})
	row := make([]float64, g.N())
	s.RowInto(0, row) // warm the pool
	allocs := testing.AllocsPerRun(20, func() {
		s.RowInto(1, row)
	})
	if allocs > 1 { // occasional bucket slice growth is tolerated; O(n) churn is not
		t.Fatalf("warm RowInto allocates %v objects per run; want ≤ 1", allocs)
	}
}

// FuzzDeltaVsHeap derives a random weighted graph from the fuzz input and
// checks the exactness contract at every pinned worker count.
func FuzzDeltaVsHeap(f *testing.F) {
	f.Add(uint64(1), 16, 30, false)
	f.Add(uint64(7), 40, 120, true)
	f.Add(uint64(42), 3, 1, false)
	f.Add(uint64(99), 25, 0, true)
	f.Fuzz(func(t *testing.T, seed uint64, n, m int, heavyTail bool) {
		if n < 1 || n > 200 || m < 0 || m > 2000 {
			t.Skip()
		}
		w := graph.UniformWeight(0.1, 10)
		if heavyTail {
			w = graph.PowerWeight(4, 12)
		}
		g := graph.GNM(n, m, w, seed)
		for _, workers := range deltaWorkerCounts {
			s := NewSolver(g, SolverOptions{Engine: EngineDelta, Workers: workers})
			src := int(seed % uint64(n))
			requireRowEqual(t, Dijkstra(g, src), s.Row(src),
				fmt.Sprintf("fuzz seed=%d n=%d m=%d workers=%d", seed, n, m, workers))
		}
	})
}
