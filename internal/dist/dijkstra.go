package dist

import "mpcspanner/internal/graph"

// Dijkstra returns the shortest-path distances from src to every vertex of
// g. Unreachable vertices get Inf. The returned slice is freshly allocated
// and owned by the caller; the run's internal state (the frontier heap)
// comes from the per-size scratch pool, so repeated calls allocate only the
// row they return. Callers that also own the row's memory — the warm paths
// of the oracle and the APSP verifiers — use DijkstraInto and allocate
// nothing.
func Dijkstra(g *graph.Graph, src int) []float64 {
	return DijkstraInto(g, src, nil)
}

// DijkstraInto is Dijkstra writing into d, which is returned. A d of the
// wrong length (nil included) is replaced by a fresh allocation; passing a
// reused g.N()-sized buffer makes the steady-state call allocation-free —
// the pooled-scratch contract the warm-Dijkstra benchmark pins.
func DijkstraInto(g *graph.Graph, src int, d []float64) []float64 {
	n := g.N()
	if len(d) != n {
		d = make([]float64, n)
	}
	for i := range d {
		d[i] = Inf
	}
	d[src] = 0
	s := acquire(n)
	s.heap.push(0, int32(src))
	s.run(g, d, nil)
	s.release()
	return d
}

// MultiSourceDijkstra runs Dijkstra from all sources simultaneously (the
// distance to the nearest source). It returns the distance array and, for
// every vertex, the index into sources of the source that settled it, or -1
// for unreachable vertices. With unit weights the distances are hop counts,
// which is how the Appendix B ball/hitting-set machinery uses it. Both
// returned arrays are caller-owned; the frontier heap is pooled.
func MultiSourceDijkstra(g *graph.Graph, sources []int) (dist []float64, nearest []int) {
	n := g.N()
	dist = make([]float64, n)
	nearest = make([]int, n)
	for i := range dist {
		dist[i] = Inf
		nearest[i] = -1
	}
	s := acquire(n)
	for i, src := range sources {
		if nearest[src] == -1 { // duplicate sources: first occurrence wins
			dist[src] = 0
			nearest[src] = i
			s.heap.push(0, int32(src))
		}
	}
	s.run(g, dist, nearest)
	s.release()
	return dist, nearest
}

// run drains the heap, settling labels into d. If origin is non-nil it is
// propagated along relaxed arcs (multi-source attribution).
func (s *scratch) run(g *graph.Graph, d []float64, origin []int) {
	h := &s.heap
	for h.len() > 0 {
		it := h.pop()
		v := int(it.v)
		if it.d > d[v] {
			continue // stale entry
		}
		for _, a := range g.Adj(v) {
			nd := it.d + g.Edge(a.Edge).W
			if nd < d[a.To] {
				d[a.To] = nd
				if origin != nil {
					origin[a.To] = origin[v]
				}
				h.push(nd, int32(a.To))
			}
		}
	}
}

// runTo is run with early exit: it stops once every vertex stamped with the
// scratch's current mark epoch has settled. remaining is the stamp count
// (see wantTargets).
func (s *scratch) runTo(g *graph.Graph, d []float64, remaining int) {
	h := &s.heap
	for h.len() > 0 && remaining > 0 {
		it := h.pop()
		v := int(it.v)
		if it.d > d[v] {
			continue
		}
		if s.mark[v] == s.gen {
			s.mark[v] = s.gen - 1
			remaining--
			if remaining == 0 {
				return
			}
		}
		for _, a := range g.Adj(v) {
			nd := it.d + g.Edge(a.Edge).W
			if nd < d[a.To] {
				d[a.To] = nd
				h.push(nd, int32(a.To))
			}
		}
	}
}

// dijkstraTo computes the distances from src into the scratch's pooled row,
// only far enough to settle every vertex in targets — the early-exit
// single-source query behind the sampled stretch estimators. Entries beyond
// the settled frontier are an upper bound or Inf; only the targets' entries
// are guaranteed exact. The returned slice is the pooled row: it is valid
// until the scratch's next run or its release, which is why this stays a
// package-internal primitive.
func (s *scratch) dijkstraTo(g *graph.Graph, src int, targets []int) []float64 {
	d := s.dist
	for i := range d {
		d[i] = Inf
	}
	d[src] = 0
	remaining := s.wantTargets(targets, src)
	s.heap.reset()
	s.heap.push(0, int32(src))
	s.runTo(g, d, remaining)
	return d
}
