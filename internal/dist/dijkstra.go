package dist

import "mpcspanner/internal/graph"

// heapItem is a (distance, vertex) pair on the Dijkstra frontier.
type heapItem struct {
	d float64
	v int
}

// minHeap is a binary heap of heapItems ordered by distance. Stale entries
// are tolerated (lazy deletion): a popped item whose distance exceeds the
// settled label is skipped by the caller. This beats container/heap by
// avoiding interface dispatch on the hot path.
type minHeap []heapItem

func (h *minHeap) push(it heapItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].d <= (*h)[i].d {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *minHeap) pop() heapItem {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && old[l].d < old[s].d {
			s = l
		}
		if r < n && old[r].d < old[s].d {
			s = r
		}
		if s == i {
			break
		}
		old[i], old[s] = old[s], old[i]
		i = s
	}
	return top
}

// Dijkstra returns the shortest-path distances from src to every vertex of
// g. Unreachable vertices get Inf.
func Dijkstra(g *graph.Graph, src int) []float64 {
	d := make([]float64, g.N())
	for i := range d {
		d[i] = Inf
	}
	d[src] = 0
	h := make(minHeap, 0, 64)
	h.push(heapItem{0, src})
	dijkstraRun(g, d, &h, nil, nil)
	return d
}

// MultiSourceDijkstra runs Dijkstra from all sources simultaneously (the
// distance to the nearest source). It returns the distance array and, for
// every vertex, the index into sources of the source that settled it, or -1
// for unreachable vertices. With unit weights the distances are hop counts,
// which is how the Appendix B ball/hitting-set machinery uses it.
func MultiSourceDijkstra(g *graph.Graph, sources []int) (dist []float64, nearest []int) {
	n := g.N()
	dist = make([]float64, n)
	nearest = make([]int, n)
	for i := range dist {
		dist[i] = Inf
		nearest[i] = -1
	}
	h := make(minHeap, 0, len(sources)+64)
	for i, s := range sources {
		if nearest[s] == -1 { // duplicate sources: first occurrence wins
			dist[s] = 0
			nearest[s] = i
			h.push(heapItem{0, s})
		}
	}
	dijkstraRun(g, dist, &h, nearest, nil)
	return dist, nearest
}

// dijkstraRun drains the heap, settling labels into d. If origin is non-nil
// it is propagated along relaxed arcs (multi-source attribution). If want is
// non-nil, the run stops early once every vertex in want is settled; want is
// consumed (vertices removed as they settle).
func dijkstraRun(g *graph.Graph, d []float64, h *minHeap, origin []int, want map[int]bool) {
	for len(*h) > 0 {
		it := h.pop()
		if it.d > d[it.v] {
			continue // stale entry
		}
		if want != nil {
			delete(want, it.v)
			if len(want) == 0 {
				return
			}
		}
		for _, a := range g.Adj(it.v) {
			nd := it.d + g.Edge(a.Edge).W
			if nd < d[a.To] {
				d[a.To] = nd
				if origin != nil {
					origin[a.To] = origin[it.v]
				}
				h.push(heapItem{nd, a.To})
			}
		}
	}
}

// dijkstraTo returns the distances from src, computed only far enough to
// settle every vertex in targets — the early-exit single-source query behind
// the sampled stretch estimators. Entries beyond the settled frontier are an
// upper bound or Inf; only the targets' entries are guaranteed exact.
func dijkstraTo(g *graph.Graph, src int, targets []int) []float64 {
	d := make([]float64, g.N())
	for i := range d {
		d[i] = Inf
	}
	d[src] = 0
	want := make(map[int]bool, len(targets))
	for _, t := range targets {
		want[t] = true
	}
	delete(want, src)
	h := make(minHeap, 0, 64)
	h.push(heapItem{0, src})
	dijkstraRun(g, d, &h, nil, want)
	return d
}
