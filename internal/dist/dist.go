// Package dist is the distance-computation and stretch-verification
// subsystem. Every result of the reproduced paper — spanner stretch bounds
// (§3–§5), MPC APSP (§7), Congested Clique APSP (§8) — is stated in terms of
// shortest-path distances, and this package is the single place they are
// computed: single- and multi-source Dijkstra over the frozen CSR adjacency
// of internal/graph, truncated BFS balls for the Appendix B sparse/dense
// split, a parallel all-pairs solver, and the sampled stretch estimators the
// verification layer and benchmark tables consume.
//
// All sampled estimators draw their randomness through internal/xrand keyed
// by an explicit seed, so equal seeds yield bit-identical reports — the test
// suite and the experiment tables rely on that.
package dist

import (
	"math"
	"sort"
)

// Inf is the distance reported for unreachable vertex pairs. It is the IEEE
// +Inf, so it propagates through ratio arithmetic and comparisons the way
// callers expect (x != Inf, math.IsInf(x, 1)).
var Inf = math.Inf(1)

// StretchReport summarizes a set of measured stretch (or approximation)
// ratios dist_H / dist_G. The zero value is the report of an empty sample.
type StretchReport struct {
	// Checked is the number of edge or vertex pairs measured.
	Checked int
	// Max and Min are the extreme ratios observed; Mean is the average.
	// A pair connected in G but not in H contributes Inf to all three.
	Max, Min, Mean float64
	// P50, P90 and P99 are empirical quantiles of the ratio distribution.
	P50, P90, P99 float64
}

// makeReport builds a StretchReport from raw ratios. It sorts the slice in
// place.
func makeReport(ratios []float64) StretchReport {
	if len(ratios) == 0 {
		return StretchReport{}
	}
	sort.Float64s(ratios)
	var sum float64
	for _, r := range ratios {
		sum += r
	}
	return StretchReport{
		Checked: len(ratios),
		Max:     ratios[len(ratios)-1],
		Min:     ratios[0],
		Mean:    sum / float64(len(ratios)),
		P50:     quantile(ratios, 0.5),
		P90:     quantile(ratios, 0.9),
		P99:     quantile(ratios, 0.99),
	}
}

// quantile returns the empirical q-quantile of a sorted sample using the
// nearest-rank definition (q=0 is the minimum, q=1 the maximum).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
