package dist

import (
	"math"
	"testing"

	"mpcspanner/internal/graph"
)

// bellmanFord is the brute-force oracle: O(n·m) relaxation until fixpoint.
func bellmanFord(g *graph.Graph, src int) []float64 {
	d := make([]float64, g.N())
	for i := range d {
		d[i] = math.Inf(1)
	}
	d[src] = 0
	for iter := 0; iter < g.N(); iter++ {
		changed := false
		for _, e := range g.Edges() {
			if d[e.U]+e.W < d[e.V] {
				d[e.V] = d[e.U] + e.W
				changed = true
			}
			if d[e.V]+e.W < d[e.U] {
				d[e.U] = d[e.V] + e.W
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return d
}

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"gnp":         graph.GNP(300, 0.02, graph.UniformWeight(1, 50), 1),
		"gnp-sparse":  graph.GNP(400, 0.004, graph.UniformWeight(1, 9), 2), // disconnected whp
		"grid":        graph.Grid(15, 15, graph.UniformWeight(1, 10), 3),
		"pa":          graph.PreferentialAttachment(250, 3, graph.ExpWeight(5), 4),
		"unit-cycle":  graph.Cycle(64, graph.UnitWeight, 5),
		"star":        graph.Star(40, graph.UniformWeight(1, 3), 6),
		"two-islands": twoIslands(),
		"single":      graph.MustNew(1, nil),
		"empty-edges": graph.MustNew(5, nil),
	}
}

// twoIslands is two disjoint triangles: every cross-island distance is Inf.
func twoIslands() *graph.Graph {
	return graph.MustNew(6, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 0, V: 2, W: 2},
		{U: 3, V: 4, W: 1}, {U: 4, V: 5, W: 2}, {U: 3, V: 5, W: 2},
	})
}

func TestDijkstraMatchesBellmanFord(t *testing.T) {
	for name, g := range testGraphs() {
		for src := 0; src < g.N(); src += 1 + g.N()/7 {
			got := Dijkstra(g, src)
			want := bellmanFord(g, src)
			for v := range want {
				if math.Abs(got[v]-want[v]) > 1e-9 && !(math.IsInf(got[v], 1) && math.IsInf(want[v], 1)) {
					t.Fatalf("%s: d(%d,%d) = %v, oracle %v", name, src, v, got[v], want[v])
				}
			}
		}
	}
}

func TestDijkstraDisconnectedInf(t *testing.T) {
	g := twoIslands()
	d := Dijkstra(g, 0)
	for v := 3; v < 6; v++ {
		if d[v] != Inf || !math.IsInf(d[v], 1) {
			t.Fatalf("cross-island distance to %d should be Inf, got %v", v, d[v])
		}
	}
	if d[0] != 0 || d[2] != 2 {
		t.Fatalf("in-island distances wrong: %v", d)
	}
}

func TestMultiSourceDijkstra(t *testing.T) {
	for name, g := range testGraphs() {
		if g.N() < 3 {
			continue
		}
		sources := []int{0, g.N() / 2, g.N() - 1}
		d, nearest := MultiSourceDijkstra(g, sources)
		// Oracle: min over per-source runs.
		per := make([][]float64, len(sources))
		for i, s := range sources {
			per[i] = bellmanFord(g, s)
		}
		for v := 0; v < g.N(); v++ {
			want := math.Inf(1)
			for i := range sources {
				want = math.Min(want, per[i][v])
			}
			if math.Abs(d[v]-want) > 1e-9 && !(math.IsInf(d[v], 1) && math.IsInf(want, 1)) {
				t.Fatalf("%s: multi-source d[%d] = %v, oracle %v", name, v, d[v], want)
			}
			if math.IsInf(want, 1) {
				if nearest[v] != -1 {
					t.Fatalf("%s: unreachable %d has nearest %d", name, v, nearest[v])
				}
				continue
			}
			if nearest[v] < 0 || nearest[v] >= len(sources) {
				t.Fatalf("%s: nearest[%d] = %d out of range", name, v, nearest[v])
			}
			// The attributed source must achieve the min distance.
			if math.Abs(per[nearest[v]][v]-want) > 1e-9 {
				t.Fatalf("%s: nearest[%d] = sources[%d] does not achieve the min", name, v, nearest[v])
			}
		}
	}
}

func TestMultiSourceDijkstraEmptyAndDuplicates(t *testing.T) {
	g := graph.Grid(4, 4, graph.UnitWeight, 1)
	d, nearest := MultiSourceDijkstra(g, nil)
	for v := range d {
		if d[v] != Inf || nearest[v] != -1 {
			t.Fatalf("empty sources: vertex %d got (%v, %d)", v, d[v], nearest[v])
		}
	}
	_, near := MultiSourceDijkstra(g, []int{5, 5, 5})
	if near[5] != 0 {
		t.Fatalf("duplicate sources: first occurrence should win, got index %d", near[5])
	}
}

func TestBFSBallSemantics(t *testing.T) {
	g := graph.Path(10, graph.UnitWeight, 1) // 0-1-2-...-9
	ball, truncated := BFSBall(g, 0, 3, 100)
	if truncated || len(ball) != 4 {
		t.Fatalf("radius-3 ball on a path should be {0,1,2,3}: %v trunc=%v", ball, truncated)
	}
	if ball[0] != 0 {
		t.Fatalf("ball must start at the center, got %v", ball)
	}
	// Cap smaller than the true ball must report truncation.
	ball, truncated = BFSBall(g, 0, 9, 4)
	if !truncated || len(ball) > 4 {
		t.Fatalf("cap 4 on a 10-ball: got %d vertices trunc=%v", len(ball), truncated)
	}
	// Cap equal to the true ball size: complete, not truncated.
	_, truncated = BFSBall(g, 0, 9, 10)
	if truncated {
		t.Fatal("exact-cap ball reported truncated")
	}
	// Hop radius ignores weights.
	wg := graph.Path(5, graph.UniformWeight(10, 20), 2)
	ball, _ = BFSBall(wg, 0, 2, 100)
	if len(ball) != 3 {
		t.Fatalf("weighted path: hop ball should ignore weights, got %v", ball)
	}
	// Disconnected: ball never crosses islands.
	ball, truncated = BFSBall(twoIslands(), 0, 10, 100)
	if truncated || len(ball) != 3 {
		t.Fatalf("island ball should be its triangle: %v trunc=%v", ball, truncated)
	}
}

func TestAPSPMatchesDijkstraAndIsDeterministic(t *testing.T) {
	g := graph.Connectify(graph.GNP(120, 0.04, graph.UniformWeight(1, 30), 7), 15)
	serial := apspWorkers(g, 1)
	parallel := apspWorkers(g, 8)
	for v := 0; v < g.N(); v++ {
		row := Dijkstra(g, v)
		for u := range row {
			if serial[v][u] != row[u] || parallel[v][u] != row[u] {
				t.Fatalf("APSP row %d col %d: serial %v parallel %v dijkstra %v",
					v, u, serial[v][u], parallel[v][u], row[u])
			}
		}
	}
	// Symmetry on an undirected graph (up to float summation order along
	// the reversed path).
	m := APSP(g)
	for v := 0; v < g.N(); v += 11 {
		for u := 0; u < g.N(); u += 7 {
			if math.Abs(m[v][u]-m[u][v]) > 1e-9 {
				t.Fatalf("APSP not symmetric at (%d,%d): %v vs %v", v, u, m[v][u], m[u][v])
			}
		}
	}
}

func TestEdgeStretchIdentityAndSubgraph(t *testing.T) {
	g := graph.Connectify(graph.GNP(200, 0.03, graph.UniformWeight(1, 40), 9), 20)
	rep, err := EdgeStretch(g, g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked != g.M() {
		t.Fatalf("checked %d of %d edges", rep.Checked, g.M())
	}
	// In-graph shortest paths can undercut an edge's own weight but never
	// exceed it, and some edge is always tight.
	if rep.Max > 1+1e-9 || rep.Max < 1-1e-9 {
		t.Fatalf("identity stretch max %v, want 1", rep.Max)
	}
	if rep.Min > rep.P50 || rep.P50 > rep.P90 || rep.P90 > rep.P99 || rep.P99 > rep.Max {
		t.Fatalf("quantiles not monotone: %+v", rep)
	}
	if rep.Mean < rep.Min || rep.Mean > rep.Max {
		t.Fatalf("mean %v outside [min, max]", rep.Mean)
	}
}

func TestEdgeStretchDisconnectingSubgraphIsInf(t *testing.T) {
	// A path: dropping the middle edge makes its stretch Inf.
	g := graph.Path(6, graph.UnitWeight, 1)
	keep := []int{0, 1, 3, 4} // drop edge id 2 (between 2 and 3)
	h := g.Subgraph(keep)
	rep, err := EdgeStretch(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(rep.Max, 1) || rep.Max != Inf {
		t.Fatalf("dropped bridge should give Inf max stretch, got %v", rep.Max)
	}
}

func TestEdgeStretchVertexMismatch(t *testing.T) {
	g := graph.Path(5, graph.UnitWeight, 1)
	h := graph.Path(6, graph.UnitWeight, 1)
	if _, err := EdgeStretch(g, h); err == nil {
		t.Fatal("vertex count mismatch accepted")
	}
	if _, err := SampledEdgeStretch(g, h, 10, 1); err == nil {
		t.Fatal("sampled: vertex count mismatch accepted")
	}
	if _, err := PairStretch(g, h, 2, 1); err == nil {
		t.Fatal("pair: vertex count mismatch accepted")
	}
	if _, err := StretchCDF(g, h, 2, []float64{0.5}, 1); err == nil {
		t.Fatal("cdf: vertex count mismatch accepted")
	}
}

func TestSampledEdgeStretchDeterministic(t *testing.T) {
	g := graph.Connectify(graph.GNP(300, 0.03, graph.UniformWeight(1, 25), 13), 12)
	h := g.Subgraph(spannerLikeSubset(g))
	a, err := SampledEdgeStretch(g, h, 150, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampledEdgeStretch(g, h, 150, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different reports:\n%+v\n%+v", a, b)
	}
	c, err := SampledEdgeStretch(g, h, 150, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seeds produced identical sampled reports")
	}
	if a.Checked != 150 {
		t.Fatalf("checked %d, want 150", a.Checked)
	}
	// Oversampling degrades to the exact check.
	exact, err := EdgeStretch(g, h)
	if err != nil {
		t.Fatal(err)
	}
	over, err := SampledEdgeStretch(g, h, g.M()+1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if over != exact {
		t.Fatalf("oversampled report should equal exact:\n%+v\n%+v", over, exact)
	}
	// Sampled max can never exceed the exact max.
	if a.Max > exact.Max+1e-9 {
		t.Fatalf("sample max %v above exact max %v", a.Max, exact.Max)
	}
}

// spannerLikeSubset keeps a connectivity-preserving subset of edges: a
// spanning forest plus every third remaining edge.
func spannerLikeSubset(g *graph.Graph) []int {
	uf := make([]int, g.N())
	for i := range uf {
		uf[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for uf[x] != x {
			uf[x] = uf[uf[x]]
			x = uf[x]
		}
		return x
	}
	var keep []int
	for id, e := range g.Edges() {
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			uf[ru] = rv
			keep = append(keep, id)
		} else if id%3 == 0 {
			keep = append(keep, id)
		}
	}
	return keep
}

func TestPairStretchSubgraphAtLeastOne(t *testing.T) {
	g := graph.Connectify(graph.GNP(250, 0.03, graph.UniformWeight(1, 15), 17), 8)
	h := g.Subgraph(spannerLikeSubset(g))
	rep, err := PairStretch(g, h, 20, 21)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Min < 1-1e-9 {
		t.Fatalf("subgraph distances cannot shrink: min ratio %v", rep.Min)
	}
	if rep.Checked == 0 || math.IsInf(rep.Max, 1) {
		t.Fatalf("connected instance produced report %+v", rep)
	}
	again, err := PairStretch(g, h, 20, 21)
	if err != nil {
		t.Fatal(err)
	}
	if rep != again {
		t.Fatal("PairStretch not deterministic under equal seeds")
	}
	if _, err := PairStretch(g, h, 0, 1); err == nil {
		t.Fatal("zero sources accepted")
	}
}

func TestPairStretchEmptySample(t *testing.T) {
	// Edgeless graph: no source reaches anything. PairStretch reports the
	// empty sample; StretchCDF, which cannot quantile nothing, errors.
	g := graph.MustNew(8, nil)
	rep, err := PairStretch(g, g, 3, 1)
	if err != nil {
		t.Fatalf("empty sample should not error: %v", err)
	}
	if rep != (StretchReport{}) {
		t.Fatalf("empty sample should be the zero report, got %+v", rep)
	}
	if _, err := StretchCDF(g, g, 3, []float64{0.5}, 1); err == nil {
		t.Fatal("CDF over an empty sample accepted")
	}
}

func TestStretchCDFMatchesPairStretch(t *testing.T) {
	g := graph.Connectify(graph.GNP(200, 0.035, graph.UnitWeight, 23), 1)
	h := g.Subgraph(spannerLikeSubset(g))
	rep, err := PairStretch(g, h, 12, 31)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := StretchCDF(g, h, 12, []float64{0, 0.5, 0.9, 0.99, 1}, 31)
	if err != nil {
		t.Fatal(err)
	}
	if qs[0] != rep.Min || qs[1] != rep.P50 || qs[2] != rep.P90 || qs[3] != rep.P99 || qs[4] != rep.Max {
		t.Fatalf("CDF %v disagrees with report %+v under the same seed", qs, rep)
	}
	for i := 1; i < len(qs); i++ {
		if qs[i] < qs[i-1] {
			t.Fatalf("quantiles not monotone: %v", qs)
		}
	}
}

func TestDijkstraToSettlesTargets(t *testing.T) {
	g := graph.Connectify(graph.GNP(300, 0.02, graph.UniformWeight(1, 60), 29), 30)
	full := Dijkstra(g, 0)
	targets := []int{1, g.N() / 3, g.N() - 1, 0}
	s := acquire(g.N())
	d := s.dijkstraTo(g, 0, targets)
	for _, v := range targets {
		if d[v] != full[v] {
			t.Fatalf("early-exit distance to %d is %v, full run says %v", v, d[v], full[v])
		}
	}
	s.release()
	// Unreachable target: the run must terminate and report Inf.
	ti := twoIslands()
	s = acquire(ti.N())
	d = s.dijkstraTo(ti, 0, []int{4})
	if !math.IsInf(d[4], 1) {
		t.Fatalf("unreachable target got %v", d[4])
	}
	s.release()
}

// TestDijkstraToReusedScratch pins the epoch-stamp discipline: back-to-back
// early-exit runs on one scratch must not leak target marks or heap state
// between runs.
func TestDijkstraToReusedScratch(t *testing.T) {
	g := graph.Connectify(graph.GNP(300, 0.02, graph.UniformWeight(1, 60), 31), 17)
	s := acquire(g.N())
	defer s.release()
	for src := 0; src < 12; src++ {
		full := Dijkstra(g, src)
		targets := []int{(src + 7) % g.N(), (src * 13) % g.N(), src}
		d := s.dijkstraTo(g, src, targets)
		for _, v := range targets {
			if d[v] != full[v] {
				t.Fatalf("run %d: early-exit distance to %d is %v, full run says %v", src, v, d[v], full[v])
			}
		}
	}
}

// TestDijkstraIntoMatchesAndIsAllocationFree pins DijkstraInto's contract:
// same distances as Dijkstra, zero allocations with a right-sized buffer.
func TestDijkstraIntoMatchesAndIsAllocationFree(t *testing.T) {
	g := graph.Connectify(graph.GNP(400, 0.015, graph.UniformWeight(1, 60), 5), 9)
	want := Dijkstra(g, 3)
	buf := make([]float64, g.N())
	got := DijkstraInto(g, 3, buf)
	if &got[0] != &buf[0] {
		t.Fatal("DijkstraInto must fill the provided right-sized buffer")
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: DijkstraInto %v != Dijkstra %v", v, got[v], want[v])
		}
	}
	if !raceEnabled { // under -race, sync.Pool drops entries by design
		DijkstraInto(g, 1, buf) // warm the pool before counting
		allocs := testing.AllocsPerRun(10, func() { DijkstraInto(g, 2, buf) })
		// < 1 rather than == 0: a GC landing mid-measurement may clear the
		// sync.Pool and force one re-allocation, which the average absorbs.
		if allocs >= 1 {
			t.Fatalf("warm DijkstraInto allocated %.1f objects/op, want ~0", allocs)
		}
	}
	if len(DijkstraInto(g, 0, nil)) != g.N() {
		t.Fatal("nil buffer must be replaced by a fresh row")
	}
}
