//go:build !race

package dist

// raceEnabled reports whether this test binary runs under the race detector.
const raceEnabled = false
