//go:build race

package dist

// raceEnabled reports that this test binary runs under the race detector,
// where sync.Pool randomly drops entries by design — so pooled paths cannot
// assert zero allocations there.
const raceEnabled = true
