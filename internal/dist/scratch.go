package dist

import "sync"

// This file is the memory discipline of the distance subsystem: every
// shortest-path run draws its mutable state — the frontier heap, and for
// internal read-then-discard runs the distance array and target marks — from
// a sync.Pool keyed by the vertex count, so the serving-layer hot paths
// (oracle cold fills, APSP rows, stretch estimators) stop paying one heap
// growth and one O(n) allocation per source. Results that outlive the call
// (Dijkstra's returned row, MultiSourceDijkstra's arrays) are still freshly
// allocated; only state whose lifetime ends inside this package is pooled.

// heapItem is a (distance, vertex) pair on the Dijkstra frontier.
type heapItem struct {
	d float64
	v int32
}

// heap4 is a 4-ary min-heap of heapItems ordered by distance, with a
// reusable backing store. Four-way branching halves the tree depth of the
// binary heap it replaces: pushes (the dominant operation under lazy
// deletion) compare against half as many ancestors, and the wider node
// stays within one cache line of items. Stale entries are tolerated (lazy
// deletion): a popped item whose distance exceeds the settled label is
// skipped by the caller. This beats container/heap by avoiding interface
// dispatch on the hot path.
type heap4 struct {
	items []heapItem
}

func (h *heap4) len() int { return len(h.items) }

func (h *heap4) reset() { h.items = h.items[:0] }

func (h *heap4) push(d float64, v int32) {
	h.items = append(h.items, heapItem{d, v})
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if h.items[p].d <= d {
			break
		}
		h.items[i] = h.items[p]
		i = p
	}
	h.items[i] = heapItem{d, v}
}

func (h *heap4) pop() heapItem {
	items := h.items
	top := items[0]
	n := len(items) - 1
	last := items[n]
	h.items = items[:n]
	i := 0
	for {
		s := -1
		sd := last.d
		c := 4*i + 1
		end := c + 4
		if end > n {
			end = n
		}
		for ; c < end; c++ {
			if items[c].d < sd {
				s = c
				sd = items[c].d
			}
		}
		if s < 0 {
			break
		}
		items[i] = items[s]
		i = s
	}
	if n > 0 {
		items[i] = last
	}
	return top
}

// scratch is the reusable per-run state of a shortest-path execution, sized
// for an n-vertex graph. dist and mark back the internal read-then-discard
// runs (dijkstraTo, the stretch estimators); the heap backs every run.
type scratch struct {
	pool *sync.Pool // owning pool, for release

	heap heap4
	dist []float64 // pooled distance row (internal runs only)
	mark []uint32  // epoch-stamped target set for early-exit runs
	gen  uint32    // current mark epoch; mark[v] == gen ⇔ v is wanted
}

// pools maps the vertex count n to the *sync.Pool of scratches sized n.
// Distinct graph sizes pool separately so a scratch is always right-sized.
var pools sync.Map

// acquire returns a scratch for an n-vertex run, reusing a pooled one when
// available. Callers must release it on every path out.
func acquire(n int) *scratch {
	p, ok := pools.Load(n)
	if !ok {
		p, _ = pools.LoadOrStore(n, &sync.Pool{})
	}
	pool := p.(*sync.Pool)
	if s, ok := pool.Get().(*scratch); ok {
		s.heap.reset()
		return s
	}
	return &scratch{
		pool: pool,
		dist: make([]float64, n),
		mark: make([]uint32, n),
	}
}

// release returns the scratch to its pool.
func (s *scratch) release() { s.pool.Put(s) }

// wantTargets stamps a new epoch over the target set and returns how many
// distinct targets (excluding src) the run must settle.
func (s *scratch) wantTargets(targets []int, src int) int {
	s.gen++
	if s.gen == 0 { // epoch counter wrapped: invalidate stale stamps
		for i := range s.mark {
			s.mark[i] = 0
		}
		s.gen = 1
	}
	remaining := 0
	for _, t := range targets {
		if t != src && s.mark[t] != s.gen {
			s.mark[t] = s.gen
			remaining++
		}
	}
	return remaining
}
