package dist

import (
	"fmt"
	"sort"

	"mpcspanner/internal/graph"
	"mpcspanner/internal/xrand"
)

// Randomness-stream tags for xrand.Split: distinct estimators under the same
// seed draw from independent streams.
const (
	tagEdgeSample = 0x65737472 // "estr"
	tagPairSample = 0x70616972 // "pair"
)

// EdgeStretch measures the stretch of every edge of g in h: the ratio
// d_h(u,v) / w(u,v) over all edges {u,v} ∈ g. Checking every edge is
// equivalent to checking all pairs (the spanner edge condition), which is
// how Verify certifies the paper's bounds. Edges whose endpoints h
// disconnects contribute Inf. h must share g's vertex set.
//
// The edge estimators stay on the early-exit heap Dijkstra deliberately:
// each source only needs its incident edges' endpoints settled, and the heap
// stops as soon as the last target pops, typically exploring a small ball —
// while delta-stepping has no cheap early exit (it settles whole buckets).
// The full-row estimators (PairStretch, StretchCDF) are the ones routed
// through the engine selection; see PairStretchOpts.
func EdgeStretch(g, h *graph.Graph) (StretchReport, error) {
	if err := compatible(g, h); err != nil {
		return StretchReport{}, err
	}
	ids := make([]int, g.M())
	for i := range ids {
		ids[i] = i
	}
	return makeReport(edgeRatios(g, h, ids)), nil
}

// SampledEdgeStretch is EdgeStretch over `samples` edges drawn uniformly
// (with replacement) from g via the stream (seed, "estr"); equal seeds give
// identical reports. If samples meets or exceeds g.M() the check is exact.
func SampledEdgeStretch(g, h *graph.Graph, samples int, seed uint64) (StretchReport, error) {
	if err := compatible(g, h); err != nil {
		return StretchReport{}, err
	}
	if samples < 0 {
		return StretchReport{}, fmt.Errorf("dist: negative sample count %d", samples)
	}
	if samples >= g.M() {
		return EdgeStretch(g, h)
	}
	rng := xrand.Split(seed, tagEdgeSample)
	ids := make([]int, samples)
	for i := range ids {
		ids[i] = rng.Intn(g.M())
	}
	return makeReport(edgeRatios(g, h, ids)), nil
}

// edgeRatios computes d_h(u,v)/w for the given g-edge ids (duplicates
// allowed). Queries are grouped by source endpoint so each distinct source
// costs one early-exit Dijkstra in h, and the per-source runs are fanned out
// over the worker pool, each drawing its distance row and frontier heap from
// the scratch pool (the row is read and discarded, so nothing per-source
// survives). Ratio slots are written by index, so the output is independent
// of scheduling.
func edgeRatios(g, h *graph.Graph, ids []int) []float64 {
	bySrc := make(map[int][]int) // source vertex -> positions in ids
	for pos, id := range ids {
		bySrc[g.Edge(id).U] = append(bySrc[g.Edge(id).U], pos)
	}
	srcs := make([]int, 0, len(bySrc))
	for s := range bySrc {
		srcs = append(srcs, s)
	}
	ratios := make([]float64, len(ids))
	parallelFor(len(srcs), func(i int) {
		src := srcs[i]
		positions := bySrc[src]
		targets := make([]int, len(positions))
		for j, pos := range positions {
			targets[j] = g.Edge(ids[pos]).V
		}
		s := acquire(h.N())
		d := s.dijkstraTo(h, src, targets)
		for _, pos := range positions {
			e := g.Edge(ids[pos])
			ratios[pos] = d[e.V] / e.W
		}
		s.release()
	})
	return ratios
}

// PairStretch samples `sources` distinct Dijkstra sources from the stream
// (seed, "pair") and measures d_h(s,v)/d_g(s,v) over every pair (s, v) with
// v reachable from s in g — the approximation ratio of the §7/§8 APSP
// oracles. Pairs g connects but h does not contribute Inf. If no sampled
// source can reach any vertex, the zero-value report (Checked = 0) is
// returned.
func PairStretch(g, h *graph.Graph, sources int, seed uint64) (StretchReport, error) {
	return PairStretchOpts(g, h, sources, seed, SolverOptions{})
}

// PairStretchOpts is PairStretch with an explicit SSSP engine selection for
// the per-source full-row fills — the hook the facade's WithSSSP/WithDelta
// reach the verification layer through. The report is identical for every
// engine and worker count (the exactness contract); only the speed differs.
func PairStretchOpts(g, h *graph.Graph, sources int, seed uint64, opt SolverOptions) (StretchReport, error) {
	ratios, err := pairRatios(g, h, sources, seed, opt)
	if err != nil {
		return StretchReport{}, err
	}
	return makeReport(ratios), nil
}

// StretchCDF returns the empirical quantiles of the PairStretch ratio
// distribution, one value per requested quantile q ∈ [0, 1] (0 = minimum,
// 1 = maximum). The sampling stream is the same as PairStretch's, so the
// quantiles describe exactly the distribution behind that report. Unlike
// PairStretch, an empty sample is an error: quantiles of nothing would be
// silent NaNs.
func StretchCDF(g, h *graph.Graph, sources int, quantiles []float64, seed uint64) ([]float64, error) {
	return StretchCDFOpts(g, h, sources, quantiles, seed, SolverOptions{})
}

// StretchCDFOpts is StretchCDF with an explicit SSSP engine selection; see
// PairStretchOpts.
func StretchCDFOpts(g, h *graph.Graph, sources int, quantiles []float64, seed uint64, opt SolverOptions) ([]float64, error) {
	ratios, err := pairRatios(g, h, sources, seed, opt)
	if err != nil {
		return nil, err
	}
	if len(ratios) == 0 {
		return nil, fmt.Errorf("dist: sampled sources have no reachable pairs")
	}
	sort.Float64s(ratios)
	out := make([]float64, len(quantiles))
	for i, q := range quantiles {
		out[i] = quantile(ratios, q)
	}
	return out, nil
}

// pairRatios draws the source sample and computes all finite-in-g pairwise
// ratios, one full g-row and one full h-row per source, sources in parallel.
// Rows fill through per-graph Solvers, so a handful of sampled sources on a
// large graph can also parallelize *within* each row (delta-stepping), not
// just across the sample.
func pairRatios(g, h *graph.Graph, sources int, seed uint64, opt SolverOptions) ([]float64, error) {
	if err := compatible(g, h); err != nil {
		return nil, err
	}
	if sources < 1 {
		return nil, fmt.Errorf("dist: need at least one source, got %d", sources)
	}
	n := g.N()
	if sources > n {
		sources = n
	}
	solverG := NewSolver(g, opt)
	solverH := NewSolver(h, opt)
	perm := xrand.Split(seed, tagPairSample).Perm(n)
	srcs := perm[:sources]
	perSource := make([][]float64, sources)
	parallelFor(sources, func(i int) {
		s := srcs[i]
		// Both rows are read once and discarded, so they fill into pooled
		// scratch rows instead of two fresh n-sized allocations per source.
		sg, sh := acquire(n), acquire(n)
		dg := solverG.RowInto(s, sg.dist)
		dh := solverH.RowInto(s, sh.dist)
		var rs []float64
		for v := range dg {
			if v == s || dg[v] == Inf {
				continue
			}
			rs = append(rs, dh[v]/dg[v])
		}
		perSource[i] = rs
		sg.release()
		sh.release()
	})
	var ratios []float64
	for _, rs := range perSource {
		ratios = append(ratios, rs...)
	}
	return ratios, nil
}

// compatible rejects graphs on different vertex sets: every estimator
// compares distances vertex-by-vertex, which is meaningless otherwise.
func compatible(g, h *graph.Graph) error {
	if g.N() != h.N() {
		return fmt.Errorf("dist: vertex count mismatch %d vs %d", g.N(), h.N())
	}
	return nil
}
