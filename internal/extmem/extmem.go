// Package extmem is a spillable fixed-record tuple store: the out-of-core
// backend that makes the MPC model's per-machine memory S = n^γ a real byte
// budget instead of an accounting fiction. A store holds an ordered
// sequence of records. Under its budget everything is resident and every
// operation runs the same in-memory algorithms as the resident simulator;
// past it, contents live in CRC-32C-checksummed run files (run.go) and the
// streaming forms of each operation take over — chunked stable sorts plus
// external merges for Sort, frame-at-a-time rewrites for Update/Filter,
// carry-buffered batching for segment walks.
//
// The determinism contract every layer above relies on: a stable sort has
// exactly one output permutation, so sorting chunks stably (with the same
// par primitives the resident path uses) and merging them with a stable,
// lower-run-first merge reproduces the resident order bit for bit, at every
// worker count and every budget.
package extmem

import (
	"math"
	"os"

	"mpcspanner/internal/obs"
	"mpcspanner/internal/par"
)

// Codec fixes the on-disk encoding of one record: Size bytes, written by
// Encode and inverted by Decode. The encoding must be a pure function of
// the record so spilled bytes round-trip exactly.
type Codec[T any] struct {
	Size   int
	Encode func(dst []byte, t *T)
	Decode func(src []byte, t *T)
}

// Options configures a Store.
type Options struct {
	// Budget is the byte budget for resident record state. <= 0 means
	// unlimited: the store never spills. The budget covers the store's own
	// buffers (resident records, sort scratch, merge frames); pathological
	// inputs — a single segment larger than the budget — grow past it
	// rather than fail, since correctness outranks the cap.
	Budget int64

	// Dir is where run files live; "" uses the system temp directory. A
	// private subdirectory is always created (and removed on Close).
	Dir string

	// Workers bounds parallelism inside sorts and segment fan-outs,
	// resolved through par.Workers (0 = GOMAXPROCS).
	Workers int

	// Metrics receives the extmem_* series; nil disables instrumentation.
	Metrics *Metrics
}

// Metrics are the store's obs series. Construct with NewMetrics; a nil
// *Metrics (or nil fields) is silently inert.
type Metrics struct {
	SpillBytes   *obs.Counter // extmem_spill_bytes_total
	Runs         *obs.Counter // extmem_runs_total
	MergePasses  *obs.Counter // extmem_merge_passes_total
	ResidentPeak *obs.Gauge   // extmem_resident_peak_bytes
	Budget       *obs.Gauge   // extmem_budget_bytes
}

// NewMetrics registers the extmem series on r (nil r gives nil metrics).
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		SpillBytes:   r.Counter("extmem_spill_bytes_total"),
		Runs:         r.Counter("extmem_runs_total"),
		MergePasses:  r.Counter("extmem_merge_passes_total"),
		ResidentPeak: r.Gauge("extmem_resident_peak_bytes"),
		Budget:       r.Gauge("extmem_budget_bytes"),
	}
}

// Stats is a point-in-time snapshot of a store's spill accounting.
type Stats struct {
	BudgetBytes       int64 // configured budget (0 = unlimited)
	SpilledBytes      int64 // total payload bytes written to run files
	RunFiles          int64 // total run files written
	MergePasses       int64 // external merge levels executed
	ResidentPeakBytes int64 // high-water of in-memory record bytes
}

const (
	minChunkRecs = 1 << 10
	minFrameRecs = 1 << 7
)

// Store is an ordered sequence of fixed-size records that spills to disk
// past its byte budget. It is not safe for concurrent use; the parallelism
// lives inside each operation.
type Store[T any] struct {
	codec   Codec[T]
	workers int
	budget  int64
	baseDir string
	met     *Metrics

	// chunkRecs is both the resident capacity and the unit of external
	// sorting: the largest record count whose chunk + sort scratch fits the
	// budget. frameRecs is the streaming I/O slab, in records.
	chunkRecs int
	frameRecs int

	mem  []T        // resident contents when runs is nil
	runs []*runFile // spilled contents otherwise; concatenation in order
	n    int        // logical record count, both modes

	dir  string // private run directory, created on first spill
	seq  int
	keep []bool // scratch mask for filters

	// Sort scratch, retained across sorts (≤ one chunk each).
	sortKeys []uint64
	sortIdx  []uint32
	sortBuf  []T
	sorter   par.RadixSorter

	stats Stats
}

// NewStore builds a store for codec under opt. Codec misuse is a
// programmer error and panics.
func NewStore[T any](codec Codec[T], opt Options) *Store[T] {
	if codec.Size <= 0 || codec.Encode == nil || codec.Decode == nil {
		panic("extmem: incomplete codec")
	}
	s := &Store[T]{
		codec:   codec,
		workers: par.Workers(opt.Workers),
		budget:  opt.Budget,
		baseDir: opt.Dir,
		met:     opt.Metrics,
	}
	if opt.Budget > 0 {
		// A sort chunk costs chunk + merge scratch (2 records each) plus
		// radix keys+index (12 bytes); the frames of a binary merge are a
		// fraction of that.
		c := int(opt.Budget) / (2*codec.Size + 16)
		if c < minChunkRecs {
			c = minChunkRecs
		}
		s.chunkRecs = c
		s.frameRecs = c / 8
		if s.frameRecs < minFrameRecs {
			s.frameRecs = minFrameRecs
		}
		s.stats.BudgetBytes = opt.Budget
		if s.met != nil && s.met.Budget != nil {
			s.met.Budget.Set(opt.Budget)
		}
	} else {
		s.chunkRecs = math.MaxInt
		s.frameRecs = 1 << 13
	}
	return s
}

// Len returns the logical record count.
func (s *Store[T]) Len() int { return s.n }

// Spilled reports whether the contents currently live in run files.
func (s *Store[T]) Spilled() bool { return len(s.runs) > 0 }

// Stats snapshots the spill accounting.
func (s *Store[T]) Stats() Stats { return s.stats }

// Close deletes the store's run directory. Idempotent; the store is empty
// afterwards.
func (s *Store[T]) Close() error {
	s.mem, s.runs, s.n = nil, nil, 0
	if s.dir != "" {
		dir := s.dir
		s.dir = ""
		return os.RemoveAll(dir)
	}
	return nil
}

func (s *Store[T]) ensureDir() error {
	if s.dir != "" {
		return nil
	}
	dir, err := os.MkdirTemp(s.baseDir, "extmem-*")
	if err != nil {
		return err
	}
	s.dir = dir
	return nil
}

func (s *Store[T]) noteSpill(bytes int64) {
	s.stats.SpilledBytes += bytes
	s.stats.RunFiles++
	if s.met != nil {
		if s.met.SpillBytes != nil {
			s.met.SpillBytes.Add(bytes)
		}
		if s.met.Runs != nil {
			s.met.Runs.Inc()
		}
	}
}

func (s *Store[T]) noteMergePass() {
	s.stats.MergePasses++
	if s.met != nil && s.met.MergePasses != nil {
		s.met.MergePasses.Inc()
	}
}

func (s *Store[T]) noteResident(recs int) {
	b := int64(recs) * int64(s.codec.Size)
	if b > s.stats.ResidentPeakBytes {
		s.stats.ResidentPeakBytes = b
	}
	if s.met != nil && s.met.ResidentPeak != nil {
		s.met.ResidentPeak.SetMax(b)
	}
}

// LoadFrom replaces the contents with the records fill emits, in emission
// order. hint sizes the resident buffer; emitting more than the budget
// allows switches to spilling mid-load, so the caller can stream a
// collection it could never hold in memory.
func (s *Store[T]) LoadFrom(hint int, fill func(emit func(T))) error {
	if err := s.reset(); err != nil {
		return err
	}
	capHint := hint
	if capHint > s.chunkRecs {
		capHint = s.chunkRecs
	}
	if cap(s.mem) < capHint {
		s.mem = make([]T, 0, capHint)
	}
	var failed error
	emit := func(t T) {
		if failed != nil {
			return
		}
		if len(s.mem) == s.chunkRecs {
			if err := s.flushMem(); err != nil {
				failed = err
				return
			}
		}
		s.mem = append(s.mem, t)
		s.n++
	}
	fill(emit)
	if failed != nil {
		return failed
	}
	s.noteResident(len(s.mem))
	if len(s.runs) > 0 && len(s.mem) > 0 {
		return s.flushMem()
	}
	return nil
}

// flushMem writes the resident buffer out as one run and empties it.
func (s *Store[T]) flushMem() error {
	w, err := s.newRunWriter()
	if err != nil {
		return err
	}
	if err := w.add(s.mem); err != nil {
		w.abort()
		return err
	}
	rf, err := w.finish()
	if err != nil {
		return err
	}
	s.noteResident(len(s.mem))
	s.runs = append(s.runs, rf)
	s.mem = s.mem[:0]
	return nil
}

// Scan calls fn once per record, in order. Mutations through the pointer
// are not persisted on the spilled path; use Update for that.
func (s *Store[T]) Scan(fn func(*T)) error {
	if len(s.runs) == 0 {
		for i := range s.mem {
			fn(&s.mem[i])
		}
		return nil
	}
	frame := make([]T, s.frameRecs)
	return s.streamRuns(frame, func(batch []T) error {
		for i := range batch {
			fn(&batch[i])
		}
		return nil
	})
}

// Update applies fn to every record in place, in parallel within frames.
// fn must be safe to call concurrently and depend only on its record.
func (s *Store[T]) Update(fn func(*T)) error {
	if len(s.runs) == 0 {
		mem := s.mem
		par.For(s.workers, len(mem), func(i int) { fn(&mem[i]) })
		return nil
	}
	frame := make([]T, s.frameRecs)
	out := make([]*runFile, 0, len(s.runs))
	for _, rf := range s.runs {
		r, err := s.openRun(rf)
		if err != nil {
			return err
		}
		w, err := s.newRunWriter()
		if err != nil {
			r.close()
			return err
		}
		for {
			n, err := r.fill(frame)
			if err != nil {
				r.close()
				w.abort()
				return err
			}
			if n == 0 {
				break
			}
			batch := frame[:n]
			par.For(s.workers, n, func(i int) { fn(&batch[i]) })
			if err := w.add(batch); err != nil {
				r.close()
				w.abort()
				return err
			}
		}
		r.close()
		nf, err := w.finish()
		if err != nil {
			return err
		}
		os.Remove(rf.path)
		out = append(out, nf)
	}
	s.runs = out
	return nil
}

// Filter keeps exactly the records keep reports true for, preserving
// order. keep must be pure and safe to call concurrently.
func (s *Store[T]) Filter(keep func(*T) bool) error {
	if len(s.runs) == 0 {
		mem := s.mem
		mask := s.mask(len(mem))
		par.For(s.workers, len(mem), func(i int) { mask[i] = keep(&mem[i]) })
		s.mem = compact(mem, mask)
		s.n = len(s.mem)
		return nil
	}
	frame := make([]T, s.frameRecs)
	out, err := s.newRollingWriter()
	if err != nil {
		return err
	}
	total := 0
	err = s.streamRuns(frame, func(batch []T) error {
		mask := s.mask(len(batch))
		par.For(s.workers, len(batch), func(i int) { mask[i] = keep(&batch[i]) })
		kept := compact(batch, mask)
		total += len(kept)
		return out.add(kept)
	})
	if err != nil {
		out.abort()
		return err
	}
	return s.adoptRuns(out, total)
}

// Segments walks maximal runs of adjacent records for which same holds,
// invoking fn concurrently across segments. shard identifies the calling
// worker (always < max(1, Workers)) so fn can use per-shard accumulators;
// segment-to-shard assignment is not deterministic across budgets, so the
// accumulation must be order-independent. Typically preceded by a sort
// that makes segments meaningful.
func (s *Store[T]) Segments(same func(a, b *T) bool, fn func(shard int, seg []T)) error {
	if len(s.runs) == 0 {
		s.batchSegments(s.mem, same, fn)
		return nil
	}
	return s.carryBatches(same, func(batch []T) error {
		s.batchSegments(batch, same, fn)
		return nil
	})
}

// FilterSegments walks segments like Segments and lets decide mark which
// records of each survive: decide fills keep (len(seg), pre-false) and the
// store compacts accordingly, preserving order. decide must be pure per
// segment and safe to call concurrently.
func (s *Store[T]) FilterSegments(same func(a, b *T) bool, decide func(seg []T, keep []bool)) error {
	if len(s.runs) == 0 {
		mask := s.mask(len(s.mem))
		s.batchDecide(s.mem, mask, same, decide)
		s.mem = compact(s.mem, mask)
		s.n = len(s.mem)
		return nil
	}
	out, err := s.newRollingWriter()
	if err != nil {
		return err
	}
	total := 0
	err = s.carryBatches(same, func(batch []T) error {
		mask := s.mask(len(batch))
		s.batchDecide(batch, mask, same, decide)
		kept := compact(batch, mask)
		total += len(kept)
		return out.add(kept)
	})
	if err != nil {
		out.abort()
		return err
	}
	return s.adoptRuns(out, total)
}

// batchSegments fans the segments of one in-memory batch out across
// workers.
func (s *Store[T]) batchSegments(batch []T, same func(a, b *T) bool, fn func(shard int, seg []T)) {
	starts := boundaries(batch, same)
	nseg := len(starts) - 1
	if nseg <= 0 {
		return
	}
	par.ForShard(s.workers, nseg, func(shard, lo, hi int) {
		for si := lo; si < hi; si++ {
			fn(shard, batch[starts[si]:starts[si+1]])
		}
	})
}

// batchDecide runs decide over every segment of batch, filling mask.
func (s *Store[T]) batchDecide(batch []T, mask []bool, same func(a, b *T) bool, decide func(seg []T, keep []bool)) {
	starts := boundaries(batch, same)
	nseg := len(starts) - 1
	if nseg <= 0 {
		return
	}
	par.ForShard(s.workers, nseg, func(_, lo, hi int) {
		for si := lo; si < hi; si++ {
			decide(batch[starts[si]:starts[si+1]], mask[starts[si]:starts[si+1]])
		}
	})
}

// boundaries returns segment start offsets for batch under same, with a
// trailing len(batch) sentinel.
func boundaries[T any](batch []T, same func(a, b *T) bool) []int {
	starts := []int{0}
	for i := 1; i < len(batch); i++ {
		if !same(&batch[i-1], &batch[i]) {
			starts = append(starts, i)
		}
	}
	if len(batch) == 0 {
		return []int{0}
	}
	return append(starts, len(batch))
}

// carryBatches streams the spilled contents through process in batches
// that never split a segment: records accumulate in a carry buffer until
// it holds at least a chunk, everything up to the last segment boundary is
// processed, and the unfinished tail carries into the next batch. A single
// segment larger than a chunk grows the carry past the budget — the
// documented pathological case.
func (s *Store[T]) carryBatches(same func(a, b *T) bool, process func(batch []T) error) error {
	frame := make([]T, s.frameRecs)
	carry := make([]T, 0, s.chunkRecs+s.frameRecs)
	err := s.streamRuns(frame, func(batch []T) error {
		carry = append(carry, batch...)
		if len(carry) < s.chunkRecs {
			return nil
		}
		cut := len(carry) - 1
		for cut > 0 && same(&carry[cut-1], &carry[cut]) {
			cut--
		}
		if cut == 0 {
			return nil // one giant segment so far; keep growing
		}
		s.noteResident(len(carry))
		if err := process(carry[:cut]); err != nil {
			return err
		}
		carry = append(carry[:0], carry[cut:]...)
		return nil
	})
	if err != nil {
		return err
	}
	s.noteResident(len(carry))
	return process(carry)
}

// streamRuns reads every run in order, passing decoded frames to process.
func (s *Store[T]) streamRuns(frame []T, process func(batch []T) error) error {
	for _, rf := range s.runs {
		r, err := s.openRun(rf)
		if err != nil {
			return err
		}
		for {
			n, err := r.fill(frame)
			if err != nil {
				r.close()
				return err
			}
			if n == 0 {
				break
			}
			if err := process(frame[:n]); err != nil {
				r.close()
				return err
			}
		}
		r.close()
	}
	return nil
}

// rollingWriter accumulates records into run files cut at chunkRecs, the
// shape Filter and FilterSegments rebuild the store in.
type rollingWriter[T any] struct {
	s    *Store[T]
	cur  *runWriter[T]
	runs []*runFile
}

func (s *Store[T]) newRollingWriter() (*rollingWriter[T], error) {
	return &rollingWriter[T]{s: s}, nil
}

func (rw *rollingWriter[T]) add(recs []T) error {
	for len(recs) > 0 {
		if rw.cur == nil {
			w, err := rw.s.newRunWriter()
			if err != nil {
				return err
			}
			rw.cur = w
		}
		room := rw.s.chunkRecs - rw.cur.count
		take := len(recs)
		if take > room {
			take = room
		}
		if err := rw.cur.add(recs[:take]); err != nil {
			return err
		}
		recs = recs[take:]
		if rw.cur.count >= rw.s.chunkRecs {
			if err := rw.roll(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (rw *rollingWriter[T]) roll() error {
	rf, err := rw.cur.finish()
	rw.cur = nil
	if err != nil {
		return err
	}
	rw.runs = append(rw.runs, rf)
	return nil
}

func (rw *rollingWriter[T]) finish() ([]*runFile, error) {
	if rw.cur != nil && rw.cur.count > 0 {
		if err := rw.roll(); err != nil {
			return nil, err
		}
	}
	if rw.cur != nil {
		rw.cur.abort()
		rw.cur = nil
	}
	return rw.runs, nil
}

func (rw *rollingWriter[T]) abort() {
	if rw.cur != nil {
		rw.cur.abort()
		rw.cur = nil
	}
	for _, rf := range rw.runs {
		os.Remove(rf.path)
	}
}

// adoptRuns replaces the spilled contents with out's runs (total records),
// deleting the old files and unspilling if the survivors fit the budget.
func (s *Store[T]) adoptRuns(out *rollingWriter[T], total int) error {
	runs, err := out.finish()
	if err != nil {
		return err
	}
	for _, rf := range s.runs {
		os.Remove(rf.path)
	}
	s.runs = runs
	s.n = total
	return s.maybeUnspill()
}

// maybeUnspill pulls the contents back into memory once they fit the
// budget again, so a store that shrank stops paying streaming costs.
func (s *Store[T]) maybeUnspill() error {
	if len(s.runs) == 0 || s.n > s.chunkRecs {
		return nil
	}
	mem := make([]T, 0, s.n)
	frame := make([]T, s.frameRecs)
	err := s.streamRuns(frame, func(batch []T) error {
		mem = append(mem, batch...)
		return nil
	})
	if err != nil {
		return err
	}
	for _, rf := range s.runs {
		os.Remove(rf.path)
	}
	s.runs = nil
	s.mem = mem
	s.n = len(mem)
	s.noteResident(len(mem))
	return nil
}

// reset drops all contents, keeping allocated buffers where possible.
func (s *Store[T]) reset() error {
	for _, rf := range s.runs {
		os.Remove(rf.path)
	}
	s.runs = nil
	s.mem = s.mem[:0]
	s.n = 0
	return nil
}

// mask returns the filter scratch mask, zeroed, of length n.
func (s *Store[T]) mask(n int) []bool {
	if cap(s.keep) < n {
		s.keep = make([]bool, n)
	}
	m := s.keep[:n]
	for i := range m {
		m[i] = false
	}
	return m
}

// compact keeps data[i] where mask[i], in place, returning the kept prefix.
func compact[T any](data []T, mask []bool) []T {
	k := 0
	for i := range data {
		if mask[i] {
			data[k] = data[i]
			k++
		}
	}
	return data[:k]
}
