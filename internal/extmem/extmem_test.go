package extmem

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"mpcspanner/internal/artifact"
	"mpcspanner/internal/core"
	"mpcspanner/internal/xrand"
)

// rec is the test record: a sort key plus a payload that tags the original
// position, which is how the tests observe stability.
type rec struct {
	K uint64
	V int64
}

var recCodec = Codec[rec]{
	Size: 16,
	Encode: func(dst []byte, t *rec) {
		binary.LittleEndian.PutUint64(dst[0:], t.K)
		binary.LittleEndian.PutUint64(dst[8:], uint64(t.V))
	},
	Decode: func(src []byte, t *rec) {
		t.K = binary.LittleEndian.Uint64(src[0:])
		t.V = int64(binary.LittleEndian.Uint64(src[8:]))
	},
}

// genRecs draws n records with keys in a small range so duplicate keys —
// the stability-sensitive case — are common.
func genRecs(n int, seed uint64) []rec {
	src := xrand.New(seed)
	out := make([]rec, n)
	for i := range out {
		out[i] = rec{K: uint64(src.Intn(n/8 + 1)), V: int64(i)}
	}
	return out
}

func loadStore(t *testing.T, s *Store[rec], data []rec) {
	t.Helper()
	if err := s.LoadFrom(len(data), func(emit func(rec)) {
		for _, r := range data {
			emit(r)
		}
	}); err != nil {
		t.Fatalf("LoadFrom: %v", err)
	}
}

func dump(t *testing.T, s *Store[rec]) []rec {
	t.Helper()
	out := make([]rec, 0, s.Len())
	if err := s.Scan(func(r *rec) { out = append(out, *r) }); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return out
}

// tinyStore spills aggressively: the minimum chunk is 1024 records, so a
// few thousand records guarantee multiple runs and real merge passes.
func tinyStore(t *testing.T, workers int) *Store[rec] {
	t.Helper()
	s := NewStore(recCodec, Options{Budget: 1, Dir: t.TempDir(), Workers: workers})
	t.Cleanup(func() { s.Close() })
	return s
}

func residentStoreT(t *testing.T, workers int) *Store[rec] {
	t.Helper()
	s := NewStore(recCodec, Options{Workers: workers})
	t.Cleanup(func() { s.Close() })
	return s
}

func TestLoadScanRoundTrip(t *testing.T) {
	data := genRecs(5000, 1)
	for _, spill := range []bool{false, true} {
		var s *Store[rec]
		if spill {
			s = tinyStore(t, 0)
		} else {
			s = residentStoreT(t, 0)
		}
		loadStore(t, s, data)
		if s.Spilled() != spill {
			t.Fatalf("spill=%v: Spilled() = %v", spill, s.Spilled())
		}
		if s.Len() != len(data) {
			t.Fatalf("spill=%v: Len = %d, want %d", spill, s.Len(), len(data))
		}
		got := dump(t, s)
		for i := range data {
			if got[i] != data[i] {
				t.Fatalf("spill=%v: record %d = %+v, want %+v", spill, i, got[i], data[i])
			}
		}
		if spill && s.Stats().SpilledBytes == 0 {
			t.Fatal("spilled store reports zero SpilledBytes")
		}
	}
}

// TestSortMatchesResident is the package-level determinism pin: a spilled
// sort must produce the identical record sequence as the resident sort —
// which is itself the unique stable permutation — at every worker count.
func TestSortMatchesResident(t *testing.T) {
	data := genRecs(9000, 2)
	want := append([]rec(nil), data...)
	sort.SliceStable(want, func(i, j int) bool { return want[i].K < want[j].K })

	for _, workers := range []int{1, 3, 0} {
		for _, byKey := range []bool{true, false} {
			for _, spill := range []bool{false, true} {
				var s *Store[rec]
				if spill {
					s = tinyStore(t, workers)
				} else {
					s = residentStoreT(t, workers)
				}
				loadStore(t, s, data)
				var err error
				if byKey {
					err = s.SortKey(func(r *rec) uint64 { return r.K })
				} else {
					err = s.SortLess(func(a, b *rec) bool { return a.K < b.K })
				}
				if err != nil {
					t.Fatalf("workers=%d byKey=%v spill=%v: sort: %v", workers, byKey, spill, err)
				}
				got := dump(t, s)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("workers=%d byKey=%v spill=%v: record %d = %+v, want %+v",
							workers, byKey, spill, i, got[i], want[i])
					}
				}
				if spill && s.Stats().MergePasses == 0 {
					t.Fatalf("workers=%d byKey=%v: spilled sort ran no merge passes", workers, byKey)
				}
			}
		}
	}
}

func TestUpdateFilterMatchResident(t *testing.T) {
	data := genRecs(6000, 3)
	for _, spill := range []bool{false, true} {
		var s *Store[rec]
		if spill {
			s = tinyStore(t, 0)
		} else {
			s = residentStoreT(t, 0)
		}
		loadStore(t, s, data)
		if err := s.Update(func(r *rec) { r.V *= 2 }); err != nil {
			t.Fatalf("Update: %v", err)
		}
		if err := s.Filter(func(r *rec) bool { return r.K%3 != 0 }); err != nil {
			t.Fatalf("Filter: %v", err)
		}
		got := dump(t, s)
		want := make([]rec, 0, len(data))
		for _, r := range data {
			if r.K%3 != 0 {
				want = append(want, rec{K: r.K, V: r.V * 2})
			}
		}
		if len(got) != len(want) || s.Len() != len(want) {
			t.Fatalf("spill=%v: %d survivors (Len=%d), want %d", spill, len(got), s.Len(), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("spill=%v: record %d = %+v, want %+v", spill, i, got[i], want[i])
			}
		}
	}
}

// TestFilterUnspills pins that a spilled store whose survivors fit the
// budget pulls them back into memory.
func TestFilterUnspills(t *testing.T) {
	s := tinyStore(t, 0)
	loadStore(t, s, genRecs(5000, 4))
	if !s.Spilled() {
		t.Fatal("store did not spill")
	}
	if err := s.Filter(func(r *rec) bool { return r.V < 100 }); err != nil {
		t.Fatalf("Filter: %v", err)
	}
	if s.Spilled() {
		t.Fatalf("store with %d survivors is still spilled", s.Len())
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
}

func TestSegmentsMatchResident(t *testing.T) {
	data := genRecs(7000, 5)
	sort.SliceStable(data, func(i, j int) bool { return data[i].K < data[j].K })
	same := func(a, b *rec) bool { return a.K == b.K }

	type agg struct{ count, vsum int64 }
	walk := func(s *Store[rec]) map[uint64]agg {
		shards := make([]map[uint64]agg, s.workers)
		for i := range shards {
			shards[i] = map[uint64]agg{}
		}
		if err := s.Segments(same, func(shard int, seg []rec) {
			a := shards[shard][seg[0].K]
			a.count += int64(len(seg))
			for i := range seg {
				a.vsum += seg[i].V
			}
			shards[shard][seg[0].K] = a
		}); err != nil {
			t.Fatalf("Segments: %v", err)
		}
		merged := map[uint64]agg{}
		for _, m := range shards {
			for k, a := range m {
				g := merged[k]
				g.count += a.count
				g.vsum += a.vsum
				merged[k] = g
			}
		}
		return merged
	}

	res := residentStoreT(t, 3)
	loadStore(t, res, data)
	sp := tinyStore(t, 3)
	loadStore(t, sp, data)
	want, got := walk(res), walk(sp)
	if len(want) != len(got) {
		t.Fatalf("segment key count: spilled %d, resident %d", len(got), len(want))
	}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("key %d: spilled %+v, resident %+v", k, got[k], w)
		}
	}

	// FilterSegments: keep each segment's min-V record only.
	decide := func(seg []rec, keep []bool) {
		min := 0
		for i := range seg {
			if seg[i].V < seg[min].V {
				min = i
			}
		}
		keep[min] = true
	}
	if err := res.FilterSegments(same, decide); err != nil {
		t.Fatalf("resident FilterSegments: %v", err)
	}
	if err := sp.FilterSegments(same, decide); err != nil {
		t.Fatalf("spilled FilterSegments: %v", err)
	}
	wantRecs, gotRecs := dump(t, res), dump(t, sp)
	if len(wantRecs) != len(gotRecs) {
		t.Fatalf("FilterSegments survivors: spilled %d, resident %d", len(gotRecs), len(wantRecs))
	}
	for i := range wantRecs {
		if wantRecs[i] != gotRecs[i] {
			t.Fatalf("FilterSegments record %d: spilled %+v, resident %+v", i, gotRecs[i], wantRecs[i])
		}
	}
}

// TestRunCorruptionTaxonomy pins that every way a run file can rot —
// truncation, payload corruption, header corruption, a stale format
// version — surfaces as a typed *core.ArtifactError from the next
// streaming operation, never a panic or a silent wrong answer.
func TestRunCorruptionTaxonomy(t *testing.T) {
	cases := []struct {
		name      string
		corrupt   func(b []byte) []byte
		reasonSub string
	}{
		{"truncated header", func(b []byte) []byte { return b[:16] }, "truncated header"},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-8] }, "truncated?"},
		{"payload bit flip", func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b }, "payload checksum mismatch"},
		{"header corruption", func(b []byte) []byte { b[12] ^= 0x01; return b }, "header checksum mismatch"},
		{"stale version", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], 99)
			binary.LittleEndian.PutUint32(b[28:], artifact.Checksum(b[:28]))
			return b
		}, "run format version 99"},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, "not an extmem run file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tinyStore(t, 1)
			loadStore(t, s, genRecs(3000, 6))
			if len(s.runs) == 0 {
				t.Fatal("store did not spill")
			}
			path := s.runs[0].path
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.corrupt(b), 0o644); err != nil {
				t.Fatal(err)
			}
			err = s.Scan(func(*rec) {})
			var ae *core.ArtifactError
			if !errors.As(err, &ae) {
				t.Fatalf("Scan on corrupted run returned %v, want *core.ArtifactError", err)
			}
			if !errors.Is(err, core.ErrArtifact) {
				t.Fatalf("error does not match core.ErrArtifact: %v", err)
			}
			if got := err.Error(); !strings.Contains(got, tc.reasonSub) {
				t.Fatalf("error %q does not mention %q", got, tc.reasonSub)
			}
		})
	}
}

// TestCloseRemovesRunDir pins cleanup: Close deletes the private run
// directory and everything in it.
func TestCloseRemovesRunDir(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(recCodec, Options{Budget: 1, Dir: dir})
	loadStore(t, s, genRecs(3000, 7))
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("expected one run dir under %s, got %v (%v)", dir, ents, err)
	}
	sub := filepath.Join(dir, ents[0].Name())
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(sub); !os.IsNotExist(err) {
		t.Fatalf("run dir %s survives Close (stat err %v)", sub, err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestStatsAndMetrics pins the accounting series a spilled build exposes.
func TestStatsAndMetrics(t *testing.T) {
	s := tinyStore(t, 0)
	loadStore(t, s, genRecs(4000, 8))
	if err := s.SortKey(func(r *rec) uint64 { return r.K }); err != nil {
		t.Fatalf("SortKey: %v", err)
	}
	st := s.Stats()
	if st.SpilledBytes <= 0 || st.RunFiles <= 0 || st.MergePasses <= 0 || st.ResidentPeakBytes <= 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
	if st.BudgetBytes != 1 {
		t.Fatalf("BudgetBytes = %d, want 1", st.BudgetBytes)
	}
}
