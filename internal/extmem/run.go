package extmem

// Run files are the on-disk unit of a spilled store: a fixed 32-byte header
// followed by a flat array of fixed-size records. They borrow the artifact
// container's discipline — CRC-32C over header and payload, atomic
// temp+fsync+rename creation via artifact.CreateAtomic — without its
// section machinery: a run is a single homogeneous stream, written once and
// read front to back.
//
// Header layout (little-endian):
//
//	[0:8)   magic "EXTMRUN\x01"
//	[8:12)  format version (currently 1)
//	[12:16) record size in bytes
//	[16:24) record count
//	[24:28) CRC-32C of the payload
//	[28:32) CRC-32C of bytes [0:28)

import (
	"encoding/binary"
	"fmt"
	"hash"
	"io"
	"os"
	"path/filepath"

	"mpcspanner/internal/artifact"
	"mpcspanner/internal/core"
)

const (
	runVersion    = 1
	runHeaderSize = 32
)

var runMagic = [8]byte{'E', 'X', 'T', 'M', 'R', 'U', 'N', 1}

// runFile is one spilled run on disk. The concatenation of a store's runs,
// in slice order, is the store's logical contents.
type runFile struct {
	path  string
	count int
}

// runWriter streams records into a staged run file, back-patching the
// header once the count and payload checksum are known.
type runWriter[T any] struct {
	s     *Store[T]
	af    *artifact.AtomicFile
	path  string
	slab  []byte
	used  int
	count int
	crc   hash.Hash32
}

func (s *Store[T]) newRunWriter() (*runWriter[T], error) {
	if err := s.ensureDir(); err != nil {
		return nil, err
	}
	path := filepath.Join(s.dir, fmt.Sprintf("run-%06d.ext", s.seq))
	s.seq++
	af, err := artifact.CreateAtomic(path)
	if err != nil {
		return nil, err
	}
	if _, err := af.Write(make([]byte, runHeaderSize)); err != nil {
		af.Abort()
		return nil, core.ArtifactErrorf(path, "run", err, "writing header placeholder: %v", err)
	}
	return &runWriter[T]{
		s:    s,
		af:   af,
		path: path,
		slab: make([]byte, s.frameRecs*s.codec.Size),
		crc:  artifact.NewChecksum(),
	}, nil
}

// add appends recs to the run.
func (w *runWriter[T]) add(recs []T) error {
	rec := w.s.codec.Size
	for i := range recs {
		if w.used+rec > len(w.slab) {
			if err := w.flush(); err != nil {
				return err
			}
		}
		w.s.codec.Encode(w.slab[w.used:w.used+rec], &recs[i])
		w.used += rec
	}
	w.count += len(recs)
	return nil
}

func (w *runWriter[T]) flush() error {
	if w.used == 0 {
		return nil
	}
	w.crc.Write(w.slab[:w.used])
	if _, err := w.af.Write(w.slab[:w.used]); err != nil {
		return core.ArtifactErrorf(w.path, "run", err, "writing: %v", err)
	}
	w.used = 0
	return nil
}

// finish seals the run: header back-patch, fsync, rename into place. On
// success the store's spill accounting is charged and the run is returned.
func (w *runWriter[T]) finish() (*runFile, error) {
	if err := w.flush(); err != nil {
		w.af.Abort()
		return nil, err
	}
	hdr := make([]byte, runHeaderSize)
	copy(hdr, runMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], runVersion)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(w.s.codec.Size))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(w.count))
	binary.LittleEndian.PutUint32(hdr[24:], w.crc.Sum32())
	binary.LittleEndian.PutUint32(hdr[28:], artifact.Checksum(hdr[:28]))
	if _, err := w.af.WriteAt(hdr, 0); err != nil {
		w.af.Abort()
		return nil, core.ArtifactErrorf(w.path, "run", err, "writing header: %v", err)
	}
	if err := w.af.Commit(); err != nil {
		return nil, err
	}
	w.s.noteSpill(int64(w.count * w.s.codec.Size))
	return &runFile{path: w.path, count: w.count}, nil
}

func (w *runWriter[T]) abort() { w.af.Abort() }

// runReader streams a run file back, verifying the header up front and the
// payload checksum incrementally — a truncated, corrupted, or stale-version
// run is always a typed *core.ArtifactError, never a panic or silent
// short read.
type runReader[T any] struct {
	f         *os.File
	path      string
	codec     codecOf[T]
	remaining int
	slab      []byte
	crc       hash.Hash32
	want      uint32
}

// codecOf mirrors Codec so runReader avoids a type parameter cycle.
type codecOf[T any] struct {
	size   int
	decode func(src []byte, t *T)
}

func (s *Store[T]) openRun(rf *runFile) (*runReader[T], error) {
	f, err := os.Open(rf.path)
	if err != nil {
		return nil, core.ArtifactErrorf(rf.path, "run", err, "opening: %v", err)
	}
	hdr := make([]byte, runHeaderSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		f.Close()
		return nil, core.ArtifactErrorf(rf.path, "run", err,
			"truncated header (%v)", err)
	}
	if [8]byte(hdr[:8]) != runMagic {
		f.Close()
		return nil, core.ArtifactErrorf(rf.path, "run", nil,
			"bad magic %q: not an extmem run file", hdr[:8])
	}
	if got, want := artifact.Checksum(hdr[:28]), binary.LittleEndian.Uint32(hdr[28:]); got != want {
		f.Close()
		return nil, core.ArtifactErrorf(rf.path, "run", nil,
			"header checksum mismatch (stored %08x, computed %08x)", want, got)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != runVersion {
		f.Close()
		return nil, core.ArtifactErrorf(rf.path, "run", nil,
			"run format version %d, this build understands only %d", v, runVersion)
	}
	if rs := int(binary.LittleEndian.Uint32(hdr[12:])); rs != s.codec.Size {
		f.Close()
		return nil, core.ArtifactErrorf(rf.path, "run", nil,
			"record size %d does not match the store's %d", rs, s.codec.Size)
	}
	count := int(binary.LittleEndian.Uint64(hdr[16:]))
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, core.ArtifactErrorf(rf.path, "run", err, "stat: %v", err)
	}
	if want := int64(runHeaderSize) + int64(count)*int64(s.codec.Size); st.Size() != want {
		f.Close()
		return nil, core.ArtifactErrorf(rf.path, "run", nil,
			"file is %d bytes, header declares %d records of %d bytes (truncated?)",
			st.Size(), count, s.codec.Size)
	}
	return &runReader[T]{
		f:         f,
		path:      rf.path,
		codec:     codecOf[T]{size: s.codec.Size, decode: s.codec.Decode},
		remaining: count,
		slab:      make([]byte, s.frameRecs*s.codec.Size),
		crc:       artifact.NewChecksum(),
		want:      binary.LittleEndian.Uint32(hdr[24:]),
	}, nil
}

// fill decodes up to len(dst) records into dst, returning how many. Zero
// means the run is exhausted — at which point the payload checksum has been
// verified end to end.
func (r *runReader[T]) fill(dst []T) (int, error) {
	if r.remaining == 0 {
		return 0, nil
	}
	n := len(dst)
	if n > r.remaining {
		n = r.remaining
	}
	if max := len(r.slab) / r.codec.size; n > max {
		n = max
	}
	b := r.slab[:n*r.codec.size]
	if _, err := io.ReadFull(r.f, b); err != nil {
		return 0, core.ArtifactErrorf(r.path, "run", err, "reading payload: %v", err)
	}
	r.crc.Write(b)
	for i := 0; i < n; i++ {
		r.codec.decode(b[i*r.codec.size:], &dst[i])
	}
	r.remaining -= n
	if r.remaining == 0 {
		if got := r.crc.Sum32(); got != r.want {
			return 0, core.ArtifactErrorf(r.path, "run", nil,
				"payload checksum mismatch (stored %08x, computed %08x)", r.want, got)
		}
	}
	return n, nil
}

func (r *runReader[T]) close() { r.f.Close() }
