package extmem

// External sorting. Resident contents sort with the exact primitives the
// in-memory simulator uses (par.RadixSorter for key sorts, par.SortStableBuf
// for comparator sorts). Spilled contents sort in two phases:
//
//  1. chunking — stream the contents into budget-sized chunks, sort each
//     chunk in memory with those same primitives, write each back as a
//     sorted run;
//  2. merging — repeatedly merge adjacent run pairs with a streaming
//     stable merge built on par.MergeSorted, until one run remains.
//
// Both phases preserve stability, and every merge takes its left input
// from the earlier part of the original order, so the final permutation is
// the unique stable-sort permutation — bit-identical to the resident sort
// at every worker count and every budget.

import (
	"os"
	"sort"

	"mpcspanner/internal/par"
)

// SortKey stably sorts the contents ascending by key, exactly matching the
// resident radix sort's output order.
func (s *Store[T]) SortKey(key func(*T) uint64) error {
	if len(s.runs) == 0 {
		s.sortMemKey(s.mem, key)
		return nil
	}
	return s.externalSort(key, func(a, b *T) bool { return key(a) < key(b) })
}

// SortLess stably sorts the contents by less, exactly matching the
// resident parallel merge sort's output order.
func (s *Store[T]) SortLess(less func(a, b *T) bool) error {
	if len(s.runs) == 0 {
		s.sortMemLess(s.mem, less)
		return nil
	}
	return s.externalSort(nil, less)
}

// sortMemKey is the resident key sort: extract radix keys, stable radix
// sort of (key, index), apply the permutation.
func (s *Store[T]) sortMemKey(data []T, key func(*T) uint64) {
	n := len(data)
	if n == 0 {
		return
	}
	if cap(s.sortKeys) < n {
		s.sortKeys = make([]uint64, n)
		s.sortIdx = make([]uint32, n)
	}
	keys, idx := s.sortKeys[:n], s.sortIdx[:n]
	par.For(s.workers, n, func(i int) {
		keys[i] = key(&data[i])
		idx[i] = uint32(i)
	})
	s.sorter.Sort(s.workers, keys, idx)
	buf := s.growBuf(n)
	par.For(s.workers, n, func(j int) { buf[j] = data[idx[j]] })
	copy(data, buf)
}

// sortMemLess is the resident comparator sort.
func (s *Store[T]) sortMemLess(data []T, less func(a, b *T) bool) {
	par.SortStableBuf(s.workers, data, s.growBuf(len(data)), less)
}

func (s *Store[T]) growBuf(n int) []T {
	if cap(s.sortBuf) < n {
		s.sortBuf = make([]T, n)
	}
	return s.sortBuf[:n]
}

// externalSort rewrites the spilled contents as sorted chunk runs, then
// merges adjacent pairs until one run holds everything. key may be nil for
// pure comparator sorts; less must agree with key when both are given.
func (s *Store[T]) externalSort(key func(*T) uint64, less func(a, b *T) bool) error {
	chunk := make([]T, 0, s.chunkRecs)
	frame := make([]T, s.frameRecs)
	var sorted []*runFile
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		if key != nil {
			s.sortMemKey(chunk, key)
		} else {
			s.sortMemLess(chunk, less)
		}
		s.noteResident(2 * len(chunk)) // chunk + sort scratch
		w, err := s.newRunWriter()
		if err != nil {
			return err
		}
		if err := w.add(chunk); err != nil {
			w.abort()
			return err
		}
		rf, err := w.finish()
		if err != nil {
			return err
		}
		sorted = append(sorted, rf)
		chunk = chunk[:0]
		return nil
	}
	err := s.streamRuns(frame, func(batch []T) error {
		for len(batch) > 0 {
			take := s.chunkRecs - len(chunk)
			if take > len(batch) {
				take = len(batch)
			}
			chunk = append(chunk, batch[:take]...)
			batch = batch[take:]
			if len(chunk) == s.chunkRecs {
				if err := flush(); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	for _, rf := range s.runs {
		os.Remove(rf.path)
	}
	s.runs = sorted

	for len(s.runs) > 1 {
		s.noteMergePass()
		next := make([]*runFile, 0, (len(s.runs)+1)/2)
		for i := 0; i+1 < len(s.runs); i += 2 {
			m, err := s.mergePair(s.runs[i], s.runs[i+1], less)
			if err != nil {
				return err
			}
			next = append(next, m)
		}
		if len(s.runs)%2 == 1 {
			next = append(next, s.runs[len(s.runs)-1])
		}
		s.runs = next
	}
	return nil
}

// mergePair merges two adjacent sorted runs into one, streaming both in
// frames and emitting only records whose final position is already known:
// whichever frame ends on the smaller record is fully mergeable, together
// with the strictly-smaller prefix of the other. The actual interleaving
// is par.MergeSorted, whose ties-take-a rule (a = the earlier run) is what
// carries stability across the merge tree.
func (s *Store[T]) mergePair(a, b *runFile, less func(x, y *T) bool) (*runFile, error) {
	ra, err := s.openRun(a)
	if err != nil {
		return nil, err
	}
	defer ra.close()
	rb, err := s.openRun(b)
	if err != nil {
		return nil, err
	}
	defer rb.close()
	w, err := s.newRunWriter()
	if err != nil {
		return nil, err
	}

	fa := make([]T, s.frameRecs)
	fb := make([]T, s.frameRecs)
	dst := make([]T, 2*s.frameRecs)
	refill := func(r *runReader[T], f []T) ([]T, error) {
		n, err := r.fill(f)
		return f[:n], err
	}
	av, err := refill(ra, fa)
	if err == nil {
		var bv []T
		bv, err = refill(rb, fb)
		for err == nil && len(av) > 0 && len(bv) > 0 {
			la, lb := &av[len(av)-1], &bv[len(bv)-1]
			if !less(lb, la) {
				// All of av is placeable, along with b's strictly-smaller
				// prefix; b records equal to la wait for a's later equals.
				k := sort.Search(len(bv), func(j int) bool { return !less(&bv[j], la) })
				out := dst[:len(av)+k]
				par.MergeSorted(s.workers, out, av, bv[:k], less)
				if err = w.add(out); err != nil {
					break
				}
				bv = bv[k:]
				av, err = refill(ra, fa)
			} else {
				// All of bv is placeable, along with a's prefix up to and
				// including records equal to lb (a wins ties).
				k := sort.Search(len(av), func(i int) bool { return less(lb, &av[i]) })
				out := dst[:k+len(bv)]
				par.MergeSorted(s.workers, out, av[:k], bv, less)
				if err = w.add(out); err != nil {
					break
				}
				av = av[k:]
				bv, err = refill(rb, fb)
			}
		}
		for err == nil && len(av) > 0 {
			if err = w.add(av); err != nil {
				break
			}
			av, err = refill(ra, fa)
		}
		for err == nil && len(bv) > 0 {
			if err = w.add(bv); err != nil {
				break
			}
			bv, err = refill(rb, fb)
		}
	}
	if err != nil {
		w.abort()
		return nil, err
	}
	rf, err := w.finish()
	if err != nil {
		return nil, err
	}
	os.Remove(a.path)
	os.Remove(b.path)
	return rf, nil
}
