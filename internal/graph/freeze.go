package graph

import "fmt"

// CSR exposes g's frozen adjacency index — the offset and arc slices New
// built — so the artifact layer can serialize a graph without re-deriving
// them. Callers must not mutate the returned slices.
func CSR(g *Graph) (off []int32, arcs []Arc) { return g.off, g.arcs }

// Adopt assembles a Graph around externally supplied slices — typically
// sections of a checksummed artifact file, possibly mmapped read-only —
// without rebuilding the CSR index. The slices are adopted, not copied: the
// Graph stays valid only as long as the backing memory does (close a mapped
// artifact only after its graph is out of use), and nothing may mutate them
// afterwards.
//
// Adopt validates structure in one O(n+m) pass: every edge in range with
// positive weight and no self-loops (the New invariants), offsets forming a
// monotone [0, 2m] prefix-sum, and every arc naming a real edge. A
// checksummed container already rules out corruption; this pass rules out a
// well-formed file describing an impossible graph, so a loaded artifact can
// never panic deep inside Dijkstra instead of failing at open.
func Adopt(n int, edges []Edge, off []int32, arcs []Arc) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if len(off) != n+1 {
		return nil, fmt.Errorf("graph: offset slice has %d entries, want n+1 = %d", len(off), n+1)
	}
	if len(arcs) != 2*len(edges) {
		return nil, fmt.Errorf("graph: %d arcs for %d edges, want exactly 2 per edge", len(arcs), len(edges))
	}
	for i, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("graph: edge %d endpoints (%d,%d) out of range [0,%d)", i, e.U, e.V, n)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("graph: edge %d is a self-loop at %d", i, e.U)
		}
		if !(e.W > 0) {
			return nil, fmt.Errorf("graph: edge %d has non-positive weight %v", i, e.W)
		}
	}
	if len(off) > 0 {
		if off[0] != 0 {
			return nil, fmt.Errorf("graph: offsets start at %d, want 0", off[0])
		}
		if int(off[n]) != len(arcs) {
			return nil, fmt.Errorf("graph: offsets end at %d, want %d", off[n], len(arcs))
		}
		for v := 0; v < n; v++ {
			if off[v] > off[v+1] {
				return nil, fmt.Errorf("graph: offsets decrease at vertex %d (%d > %d)", v, off[v], off[v+1])
			}
		}
	}
	for i, a := range arcs {
		if a.Edge < 0 || a.Edge >= len(edges) {
			return nil, fmt.Errorf("graph: arc %d names edge %d, out of range [0,%d)", i, a.Edge, len(edges))
		}
		if e := edges[a.Edge]; a.To != e.U && a.To != e.V {
			return nil, fmt.Errorf("graph: arc %d points to %d, not an endpoint of edge %d", i, a.To, a.Edge)
		}
	}
	return &Graph{n: n, edges: edges, off: off, arcs: arcs}, nil
}
