package graph

import (
	"math"
	"strings"
	"testing"
)

// TestCSRRoundTripsThroughAdopt pins the freeze/adopt contract the artifact
// layer depends on: CSR's slices fed back into Adopt reproduce the graph.
func TestCSRRoundTripsThroughAdopt(t *testing.T) {
	g := Connectify(GNP(300, 0.03, UniformWeight(1, 9), 7), 9)
	off, arcs := CSR(g)
	got, err := Adopt(g.N(), g.Edges(), off, arcs)
	if err != nil {
		t.Fatalf("Adopt rejected CSR output: %v", err)
	}
	if got.N() != g.N() || got.M() != g.M() {
		t.Fatalf("shape: got (%d,%d), want (%d,%d)", got.N(), got.M(), g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		wa, ga := g.Adj(v), got.Adj(v)
		if len(wa) != len(ga) {
			t.Fatalf("vertex %d: degree %d, want %d", v, len(ga), len(wa))
		}
		for i := range wa {
			if wa[i] != ga[i] {
				t.Fatalf("vertex %d arc %d: got %+v, want %+v", v, i, ga[i], wa[i])
			}
		}
	}
}

// TestAdoptValidation feeds Adopt every class of impossible graph a
// well-formed (checksummed) artifact could still describe.
func TestAdoptValidation(t *testing.T) {
	// A valid 3-vertex path 0-1-2 as the base case.
	edges := []Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}}
	off := []int32{0, 1, 3, 4}
	arcs := []Arc{{To: 1, Edge: 0}, {To: 0, Edge: 0}, {To: 2, Edge: 1}, {To: 1, Edge: 1}}
	if _, err := Adopt(3, edges, off, arcs); err != nil {
		t.Fatalf("Adopt rejected a valid graph: %v", err)
	}

	cases := []struct {
		name    string
		n       int
		edges   []Edge
		off     []int32
		arcs    []Arc
		wantSub string
	}{
		{"negative n", -1, nil, nil, nil, "negative vertex count"},
		{"off length", 3, edges, []int32{0, 1, 4}, arcs, "offset slice has 3 entries"},
		{"arc count", 3, edges, off, arcs[:3], "want exactly 2 per edge"},
		{"endpoint range", 3, []Edge{{U: 0, V: 3, W: 1}, {U: 1, V: 2, W: 2}}, off, arcs, "out of range"},
		{"self loop", 3, []Edge{{U: 1, V: 1, W: 1}, {U: 1, V: 2, W: 2}}, off, arcs, "self-loop"},
		{"zero weight", 3, []Edge{{U: 0, V: 1, W: 0}, {U: 1, V: 2, W: 2}}, off, arcs, "non-positive weight"},
		{"nan weight", 3, []Edge{{U: 0, V: 1, W: math.NaN()}, {U: 1, V: 2, W: 2}}, off, arcs, "non-positive weight"},
		{"off start", 3, edges, []int32{1, 1, 3, 4}, arcs, "offsets start at 1"},
		{"off end", 3, edges, []int32{0, 1, 3, 3}, arcs, "offsets end at 3"},
		{"off decreasing", 3, edges, []int32{0, 3, 1, 4}, arcs, "offsets decrease"},
		{"arc edge range", 3, edges, off,
			[]Arc{{To: 1, Edge: 0}, {To: 0, Edge: 0}, {To: 2, Edge: 5}, {To: 1, Edge: 1}}, "names edge 5"},
		{"arc wrong endpoint", 3, edges, off,
			[]Arc{{To: 1, Edge: 0}, {To: 0, Edge: 0}, {To: 0, Edge: 1}, {To: 1, Edge: 1}}, "not an endpoint"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Adopt(tc.n, tc.edges, tc.off, tc.arcs)
			if err == nil {
				t.Fatal("Adopt accepted an impossible graph")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

// TestAdoptEmpty pins the edge case artifacts of empty graphs hit.
func TestAdoptEmpty(t *testing.T) {
	g, err := Adopt(0, nil, []int32{0}, nil)
	if err != nil {
		t.Fatalf("Adopt rejected the empty graph: %v", err)
	}
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph shape: (%d,%d)", g.N(), g.M())
	}
	g, err = Adopt(5, nil, []int32{0, 0, 0, 0, 0, 0}, nil)
	if err != nil {
		t.Fatalf("Adopt rejected an edgeless graph: %v", err)
	}
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("edgeless graph shape: (%d,%d)", g.N(), g.M())
	}
}
