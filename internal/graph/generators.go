package graph

import (
	"fmt"
	"math"

	"mpcspanner/internal/xrand"
)

// WeightFn draws an edge weight. Generators call it once per emitted edge.
type WeightFn func(r *xrand.Source) float64

// UnitWeight assigns weight 1 to every edge (unweighted graphs).
func UnitWeight(*xrand.Source) float64 { return 1 }

// UniformWeight returns a WeightFn drawing uniformly from [lo, hi).
// It panics if the interval is empty or lo is not positive.
func UniformWeight(lo, hi float64) WeightFn {
	if !(lo > 0) || hi < lo {
		panic(fmt.Sprintf("graph: invalid weight interval [%v,%v)", lo, hi))
	}
	return func(r *xrand.Source) float64 { return lo + r.Float64()*(hi-lo) }
}

// ExpWeight returns a WeightFn drawing 1 + Exp(1)*scale, a heavy-ish tailed
// positive weight model that stresses the weighted-stretch analysis.
func ExpWeight(scale float64) WeightFn {
	if !(scale > 0) {
		panic("graph: ExpWeight scale must be positive")
	}
	return func(r *xrand.Source) float64 { return 1 + r.ExpFloat64()*scale }
}

// PowerWeight returns weights of the form base^Uniform{0..levels-1}; a
// discrete geometric weight ladder that produces widely separated scales.
func PowerWeight(base float64, levels int) WeightFn {
	if base <= 1 || levels < 1 {
		panic("graph: PowerWeight requires base > 1 and levels >= 1")
	}
	return func(r *xrand.Source) float64 {
		return math.Pow(base, float64(r.Intn(levels)))
	}
}

// GNP generates an Erdős–Rényi G(n, p) graph. Expected edge count is
// p·n(n−1)/2; generation uses geometric skipping so the cost is proportional
// to the number of emitted edges, not to n².
func GNP(n int, p float64, w WeightFn, seed uint64) *Graph {
	r := xrand.Split(seed, 0x676e70) // "gnp"
	b := NewBuilder(n)
	if p <= 0 || n < 2 {
		return b.MustBuild()
	}
	if p >= 1 {
		return Complete(n, w, seed)
	}
	// Iterate pairs (u,v), u<v, in lexicographic order, skipping ahead by
	// geometric gaps: the next selected pair is at distance 1+floor(log(U)/log(1-p)).
	logq := math.Log(1 - p)
	total := int64(n) * int64(n-1) / 2
	idx := int64(-1)
	for {
		u := r.Float64()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		skip := int64(math.Log(u)/logq) + 1
		idx += skip
		if idx >= total {
			break
		}
		// Decode linear index into (a,b), a<b.
		a := int((math.Sqrt(8*float64(idx)+1) - 1) / 2)
		// Fix floating point drift at triangle boundaries.
		for int64(a+1)*int64(a+2)/2 <= idx {
			a++
		}
		for int64(a)*int64(a+1)/2 > idx {
			a--
		}
		bcol := int(idx - int64(a)*int64(a+1)/2)
		// Pair is (bcol, a+1) with bcol <= a.
		b.AddEdge(bcol, a+1, w(r))
	}
	return b.MustBuild()
}

// GNM generates a uniform random simple graph with exactly m distinct edges
// (m is clamped to the number of available pairs).
func GNM(n, m int, w WeightFn, seed uint64) *Graph {
	r := xrand.Split(seed, 0x676e6d) // "gnm"
	maxM := int64(n) * int64(n-1) / 2
	if int64(m) > maxM {
		m = int(maxM)
	}
	b := NewBuilder(n)
	seen := make(map[int64]struct{}, m)
	for b.Len() < m {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := int64(u)*int64(n) + int64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(u, v, w(r))
	}
	return b.MustBuild()
}

// Grid generates a rows×cols 2D lattice (4-neighborhood). Vertex (i,j) is
// i*cols+j. With weighted WeightFns this is the road-network stand-in.
func Grid(rows, cols int, w WeightFn, seed uint64) *Graph {
	r := xrand.Split(seed, 0x67726964) // "grid"
	b := NewBuilder(rows * cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := i*cols + j
			if j+1 < cols {
				b.AddEdge(v, v+1, w(r))
			}
			if i+1 < rows {
				b.AddEdge(v, v+cols, w(r))
			}
		}
	}
	return b.MustBuild()
}

// Torus generates a rows×cols 2D torus (grid with wraparound), which is
// vertex-transitive and has no boundary effects.
func Torus(rows, cols int, w WeightFn, seed uint64) *Graph {
	r := xrand.Split(seed, 0x746f7273) // "tors"
	b := NewBuilder(rows * cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := i*cols + j
			if cols > 1 {
				b.AddEdge(v, i*cols+(j+1)%cols, w(r))
			}
			if rows > 1 {
				b.AddEdge(v, ((i+1)%rows)*cols+j, w(r))
			}
		}
	}
	return b.MustBuild()
}

// Cycle generates the n-cycle (or a single edge for n = 2).
func Cycle(n int, w WeightFn, seed uint64) *Graph {
	r := xrand.Split(seed, 0x6379636c) // "cycl"
	b := NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(v, v+1, w(r))
	}
	if n > 2 {
		b.AddEdge(n-1, 0, w(r))
	}
	return b.MustBuild()
}

// Path generates the n-vertex path.
func Path(n int, w WeightFn, seed uint64) *Graph {
	r := xrand.Split(seed, 0x70617468) // "path"
	b := NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(v, v+1, w(r))
	}
	return b.MustBuild()
}

// Star generates the n-vertex star centered at vertex 0.
func Star(n int, w WeightFn, seed uint64) *Graph {
	r := xrand.Split(seed, 0x73746172) // "star"
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v, w(r))
	}
	return b.MustBuild()
}

// Complete generates K_n.
func Complete(n int, w WeightFn, seed uint64) *Graph {
	r := xrand.Split(seed, 0x6b6e) // "kn"
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v, w(r))
		}
	}
	return b.MustBuild()
}

// RandomTree generates a uniform random labelled tree on n vertices via a
// random attachment sequence (each new vertex attaches to a uniform earlier
// vertex — a random recursive tree; cheap and adequate as a workload).
func RandomTree(n int, w WeightFn, seed uint64) *Graph {
	r := xrand.Split(seed, 0x74726565) // "tree"
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(r.Intn(v), v, w(r))
	}
	return b.MustBuild()
}

// PreferentialAttachment generates a Barabási–Albert-style graph: vertices
// arrive one at a time and attach d edges to earlier vertices chosen
// proportionally to degree (the social-network workload the paper's
// introduction motivates). The first d+1 vertices form a clique seed.
func PreferentialAttachment(n, d int, w WeightFn, seed uint64) *Graph {
	if d < 1 {
		panic("graph: PreferentialAttachment requires d >= 1")
	}
	r := xrand.Split(seed, 0x7061) // "pa"
	b := NewBuilder(n)
	if n <= d+1 {
		return Complete(n, w, seed)
	}
	// targets holds one entry per half-edge endpoint, so uniform sampling
	// from it is degree-proportional sampling.
	targets := make([]int, 0, 2*d*n)
	for u := 0; u <= d; u++ {
		for v := u + 1; v <= d; v++ {
			b.AddEdge(u, v, w(r))
			targets = append(targets, u, v)
		}
	}
	for v := d + 1; v < n; v++ {
		chosen := make(map[int]struct{}, d)
		for len(chosen) < d {
			t := targets[r.Intn(len(targets))]
			chosen[t] = struct{}{}
		}
		for t := range chosen {
			b.AddEdge(t, v, w(r))
			targets = append(targets, t, v)
		}
	}
	return b.MustBuild()
}

// RandomGeometric places n points uniformly in the unit square and connects
// pairs within Euclidean distance radius; edge weights can optionally be the
// Euclidean distances (euclid=true) or drawn from w. A cell grid keeps
// generation near-linear for the radii used in experiments.
func RandomGeometric(n int, radius float64, euclid bool, w WeightFn, seed uint64) *Graph {
	r := xrand.Split(seed, 0x726767) // "rgg"
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i], ys[i] = r.Float64(), r.Float64()
	}
	cells := int(1 / radius)
	if cells < 1 {
		cells = 1
	}
	cellOf := func(i int) (int, int) {
		cx, cy := int(xs[i]*float64(cells)), int(ys[i]*float64(cells))
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return cx, cy
	}
	bucket := make(map[[2]int][]int)
	for i := 0; i < n; i++ {
		cx, cy := cellOf(i)
		bucket[[2]int{cx, cy}] = append(bucket[[2]int{cx, cy}], i)
	}
	b := NewBuilder(n)
	r2 := radius * radius
	for i := 0; i < n; i++ {
		cx, cy := cellOf(i)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range bucket[[2]int{cx + dx, cy + dy}] {
					if j <= i {
						continue
					}
					ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
					if d2 := ddx*ddx + ddy*ddy; d2 <= r2 {
						wt := w(r)
						if euclid {
							wt = math.Sqrt(d2)
							if wt == 0 {
								wt = math.SmallestNonzeroFloat64
							}
						}
						b.AddEdge(i, j, wt)
					}
				}
			}
		}
	}
	return b.MustBuild()
}

// Connectify returns g if it is connected; otherwise it returns a copy with
// one minimum-footprint bridging edge per extra component (connecting an
// arbitrary vertex of each component to component 0), each of weight bridgeW.
// Experiments use it so that stretch is defined for all vertex pairs.
func Connectify(g *Graph, bridgeW float64) *Graph {
	label, count := g.Components()
	if count <= 1 {
		return g
	}
	rep := make([]int, count)
	for i := range rep {
		rep[i] = -1
	}
	for v := 0; v < g.N(); v++ {
		if rep[label[v]] == -1 {
			rep[label[v]] = v
		}
	}
	edges := append(append([]Edge(nil), g.Edges()...), make([]Edge, 0, count-1)...)
	for c := 1; c < count; c++ {
		edges = append(edges, Edge{U: rep[0], V: rep[c], W: bridgeW})
	}
	return MustNew(g.N(), edges)
}
