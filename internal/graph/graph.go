// Package graph provides the weighted undirected graph substrate every
// algorithm of the reproduced paper (§3–§8) runs on: a compact edge-list +
// CSR adjacency representation, synthetic workload generators, a
// disjoint-set forest, and plain-text I/O.
//
// Vertices are dense integers [0, N). Edges are undirected and stored once;
// the index of an edge in Edges is its stable identifier, which the spanner
// algorithms use to report exactly which input edges they selected.
//
// A Graph is immutable after construction and safe for concurrent readers —
// the property the parallel distance subsystem (internal/dist) and the
// cached oracle (internal/oracle) rely on for lock-free reads.
package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected weighted edge. U and V are vertex indices and W > 0
// is the weight. Algorithms treat the edge {U,V} and {V,U} as identical.
type Edge struct {
	U, V int
	W    float64
}

// Other returns the endpoint of e that is not x. It panics if x is not an
// endpoint of e.
func (e Edge) Other(x int) int {
	switch x {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %v", x, e))
}

// Arc is a half-edge in the CSR adjacency structure: the neighbor reached and
// the identifier (index into Graph.Edges) of the edge used.
type Arc struct {
	To   int
	Edge int
}

// Graph is an undirected weighted graph with a frozen CSR adjacency index.
// Construct with New or a Builder; a Graph is immutable after construction
// and safe for concurrent readers.
type Graph struct {
	n     int
	edges []Edge

	// CSR adjacency: arcs[off[v]:off[v+1]] are the half-edges of v.
	off  []int32
	arcs []Arc
}

// New builds a graph on n vertices from the given edges. Self-loops are
// rejected; parallel edges are allowed (spanner algorithms handle them).
// The edge slice is retained; callers must not mutate it afterwards.
func New(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	for i, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("graph: edge %d endpoints (%d,%d) out of range [0,%d)", i, e.U, e.V, n)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("graph: edge %d is a self-loop at %d", i, e.U)
		}
		if !(e.W > 0) {
			return nil, fmt.Errorf("graph: edge %d has non-positive weight %v", i, e.W)
		}
	}
	g := &Graph{n: n, edges: edges}
	g.buildCSR()
	return g, nil
}

// MustNew is New but panics on error; for tests and generators whose inputs
// are valid by construction.
func MustNew(n int, edges []Edge) *Graph {
	g, err := New(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func (g *Graph) buildCSR() {
	deg := make([]int32, g.n+1)
	for _, e := range g.edges {
		deg[e.U+1]++
		deg[e.V+1]++
	}
	for i := 0; i < g.n; i++ {
		deg[i+1] += deg[i]
	}
	g.off = deg
	g.arcs = make([]Arc, 2*len(g.edges))
	cursor := make([]int32, g.n)
	copy(cursor, g.off[:g.n])
	for id, e := range g.edges {
		g.arcs[cursor[e.U]] = Arc{To: e.V, Edge: id}
		cursor[e.U]++
		g.arcs[cursor[e.V]] = Arc{To: e.U, Edge: id}
		cursor[e.V]++
	}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Edges returns the edge slice. Callers must not mutate it.
func (g *Graph) Edges() []Edge { return g.edges }

// Edge returns the edge with identifier id.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// Adj returns the half-edges incident to v. Callers must not mutate it.
func (g *Graph) Adj(v int) []Arc { return g.arcs[g.off[v]:g.off[v+1]] }

// Degree returns the number of half-edges at v (parallel edges counted).
func (g *Graph) Degree(v int) int { return int(g.off[v+1] - g.off[v]) }

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	var s float64
	for _, e := range g.edges {
		s += e.W
	}
	return s
}

// MaxDegree returns the maximum vertex degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// IsUnit reports whether every edge has weight exactly 1.
func (g *Graph) IsUnit() bool {
	for _, e := range g.edges {
		if e.W != 1 {
			return false
		}
	}
	return true
}

// Subgraph returns the graph on the same vertex set containing exactly the
// edges whose identifiers appear in edgeIDs (duplicates are kept once).
func (g *Graph) Subgraph(edgeIDs []int) *Graph {
	ids := append([]int(nil), edgeIDs...)
	sort.Ints(ids)
	sub := make([]Edge, 0, len(ids))
	prev := -1
	for _, id := range ids {
		if id == prev {
			continue
		}
		prev = id
		sub = append(sub, g.edges[id])
	}
	return MustNew(g.n, sub)
}

// Components labels the connected components of g: the result maps each
// vertex to a component id in [0, count), and count is returned too.
func (g *Graph) Components() (label []int, count int) {
	label = make([]int, g.n)
	for i := range label {
		label[i] = -1
	}
	var stack []int
	for v := 0; v < g.n; v++ {
		if label[v] != -1 {
			continue
		}
		label[v] = count
		stack = append(stack[:0], v)
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, a := range g.Adj(x) {
				if label[a.To] == -1 {
					label[a.To] = count
					stack = append(stack, a.To)
				}
			}
		}
		count++
	}
	return label, count
}

// Connected reports whether g has at most one connected component.
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return true
	}
	_, c := g.Components()
	return c <= 1
}

// Builder accumulates edges and produces a Graph. It deduplicates nothing;
// use it when generators may emit edges incrementally.
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder { return &Builder{n: n} }

// AddEdge appends the undirected edge {u,v} with weight w.
func (b *Builder) AddEdge(u, v int, w float64) {
	b.edges = append(b.edges, Edge{U: u, V: v, W: w})
}

// Len returns the number of edges added so far.
func (b *Builder) Len() int { return len(b.edges) }

// Build validates and freezes the accumulated graph.
func (b *Builder) Build() (*Graph, error) { return New(b.n, b.edges) }

// MustBuild is Build but panics on error.
func (b *Builder) MustBuild() *Graph { return MustNew(b.n, b.edges) }
