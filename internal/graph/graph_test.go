package graph

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges []Edge
		ok    bool
	}{
		{"empty", 0, nil, true},
		{"single vertex", 1, nil, true},
		{"valid edge", 2, []Edge{{0, 1, 1}}, true},
		{"parallel edges allowed", 2, []Edge{{0, 1, 1}, {1, 0, 2}}, true},
		{"negative n", -1, nil, false},
		{"out of range", 2, []Edge{{0, 2, 1}}, false},
		{"negative endpoint", 2, []Edge{{-1, 0, 1}}, false},
		{"self loop", 2, []Edge{{1, 1, 1}}, false},
		{"zero weight", 2, []Edge{{0, 1, 0}}, false},
		{"negative weight", 2, []Edge{{0, 1, -3}}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := New(c.n, c.edges)
			if (err == nil) != c.ok {
				t.Fatalf("New(%d, %v) error = %v, want ok=%v", c.n, c.edges, err, c.ok)
			}
		})
	}
}

func TestAdjacencyMirrorsEdges(t *testing.T) {
	g := MustNew(4, []Edge{{0, 1, 1}, {1, 2, 2}, {2, 3, 3}, {0, 3, 4}, {1, 3, 5}})
	// Every edge appears exactly once from each endpoint.
	seen := make(map[[2]int]int)
	for v := 0; v < g.N(); v++ {
		for _, a := range g.Adj(v) {
			seen[[2]int{v, a.Edge}]++
			e := g.Edge(a.Edge)
			if e.Other(v) != a.To {
				t.Fatalf("arc (%d->%d) inconsistent with edge %v", v, a.To, e)
			}
		}
	}
	for id, e := range g.Edges() {
		if seen[[2]int{e.U, id}] != 1 || seen[[2]int{e.V, id}] != 1 {
			t.Fatalf("edge %d not mirrored exactly once per endpoint", id)
		}
	}
}

func TestDegreeSum(t *testing.T) {
	g := GNP(200, 0.05, UnitWeight, 7)
	sum := 0
	for v := 0; v < g.N(); v++ {
		sum += g.Degree(v)
	}
	if sum != 2*g.M() {
		t.Fatalf("degree sum %d != 2m = %d", sum, 2*g.M())
	}
}

func TestOtherPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Other on non-endpoint should panic")
		}
	}()
	Edge{U: 0, V: 1, W: 1}.Other(2)
}

func TestSubgraph(t *testing.T) {
	g := MustNew(4, []Edge{{0, 1, 1}, {1, 2, 2}, {2, 3, 3}})
	s := g.Subgraph([]int{0, 2, 2, 0})
	if s.N() != 4 || s.M() != 2 {
		t.Fatalf("subgraph n=%d m=%d", s.N(), s.M())
	}
	want := map[Edge]bool{{0, 1, 1}: true, {2, 3, 3}: true}
	for _, e := range s.Edges() {
		if !want[e] {
			t.Fatalf("unexpected subgraph edge %v", e)
		}
	}
}

func TestComponents(t *testing.T) {
	g := MustNew(6, []Edge{{0, 1, 1}, {1, 2, 1}, {3, 4, 1}})
	label, count := g.Components()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if label[0] != label[1] || label[1] != label[2] {
		t.Fatal("vertices 0,1,2 should share a component")
	}
	if label[3] != label[4] {
		t.Fatal("vertices 3,4 should share a component")
	}
	if label[5] == label[0] || label[5] == label[3] {
		t.Fatal("vertex 5 should be isolated")
	}
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if !Cycle(10, UnitWeight, 1).Connected() {
		t.Fatal("cycle should be connected")
	}
}

func TestConnectify(t *testing.T) {
	g := MustNew(6, []Edge{{0, 1, 1}, {3, 4, 1}})
	c := Connectify(g, 2.5)
	if !c.Connected() {
		t.Fatal("Connectify result not connected")
	}
	// Components: {0,1}, {2}, {3,4}, {5} -> 3 bridges.
	if c.M() != g.M()+3 {
		t.Fatalf("added %d bridges, want 3", c.M()-g.M())
	}
	// Already connected graphs come back unchanged.
	cy := Cycle(5, UnitWeight, 1)
	if Connectify(cy, 1) != cy {
		t.Fatal("Connectify should return connected input as-is")
	}
}

func TestGridShape(t *testing.T) {
	g := Grid(3, 4, UnitWeight, 1)
	if g.N() != 12 {
		t.Fatalf("n = %d", g.N())
	}
	// rows*(cols-1) horizontal + (rows-1)*cols vertical.
	if want := 3*3 + 2*4; g.M() != want {
		t.Fatalf("m = %d, want %d", g.M(), want)
	}
	if !g.Connected() {
		t.Fatal("grid should be connected")
	}
	// Corner degree 2, interior degree 4.
	if g.Degree(0) != 2 {
		t.Fatalf("corner degree %d", g.Degree(0))
	}
	if g.Degree(1*4+1) != 4 {
		t.Fatalf("interior degree %d", g.Degree(5))
	}
}

func TestTorusRegular(t *testing.T) {
	g := Torus(4, 5, UnitWeight, 1)
	if g.N() != 20 || g.M() != 40 {
		t.Fatalf("torus n=%d m=%d", g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("torus vertex %d degree %d, want 4", v, g.Degree(v))
		}
	}
}

func TestCompleteStarCyclePath(t *testing.T) {
	if g := Complete(6, UnitWeight, 1); g.M() != 15 {
		t.Fatalf("K6 edges %d", g.M())
	}
	if g := Star(6, UnitWeight, 1); g.M() != 5 || g.Degree(0) != 5 {
		t.Fatalf("star wrong: m=%d deg0=%d", g.M(), g.Degree(0))
	}
	if g := Cycle(6, UnitWeight, 1); g.M() != 6 {
		t.Fatalf("C6 edges %d", g.M())
	}
	if g := Cycle(2, UnitWeight, 1); g.M() != 1 {
		t.Fatalf("C2 edges %d (no parallel closing edge)", g.M())
	}
	if g := Path(6, UnitWeight, 1); g.M() != 5 {
		t.Fatalf("P6 edges %d", g.M())
	}
}

func TestGNPDeterministicAndPlausible(t *testing.T) {
	a := GNP(500, 0.02, UnitWeight, 42)
	b := GNP(500, 0.02, UnitWeight, 42)
	if a.M() != b.M() {
		t.Fatalf("same seed, different edge counts: %d vs %d", a.M(), b.M())
	}
	for i := range a.Edges() {
		if a.Edge(i) != b.Edge(i) {
			t.Fatalf("same seed, edge %d differs", i)
		}
	}
	// Expected edges = p * C(500,2) = 0.02 * 124750 = 2495.
	if a.M() < 2100 || a.M() > 2900 {
		t.Fatalf("G(500,0.02) has %d edges, outside plausible band", a.M())
	}
	// No self loops, no out-of-range (validated by MustNew), distinct pairs.
	seen := make(map[[2]int]bool)
	for _, e := range a.Edges() {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			t.Fatalf("duplicate pair (%d,%d) in GNP", u, v)
		}
		seen[[2]int{u, v}] = true
	}
}

func TestGNPEdgeCases(t *testing.T) {
	if g := GNP(10, 0, UnitWeight, 1); g.M() != 0 {
		t.Fatal("p=0 should generate no edges")
	}
	if g := GNP(10, 1, UnitWeight, 1); g.M() != 45 {
		t.Fatalf("p=1 should be complete, got %d edges", g.M())
	}
	if g := GNP(1, 0.5, UnitWeight, 1); g.M() != 0 {
		t.Fatal("single vertex should have no edges")
	}
}

func TestGNMExactCount(t *testing.T) {
	g := GNM(100, 300, UnitWeight, 9)
	if g.M() != 300 {
		t.Fatalf("GNM m = %d, want 300", g.M())
	}
	seen := make(map[[2]int]bool)
	for _, e := range g.Edges() {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			t.Fatal("GNM emitted duplicate edge")
		}
		seen[[2]int{u, v}] = true
	}
	// Clamping.
	if g := GNM(4, 100, UnitWeight, 9); g.M() != 6 {
		t.Fatalf("GNM should clamp to C(4,2)=6, got %d", g.M())
	}
}

func TestRandomTree(t *testing.T) {
	g := RandomTree(200, UnitWeight, 3)
	if g.M() != 199 {
		t.Fatalf("tree edges %d", g.M())
	}
	if !g.Connected() {
		t.Fatal("tree should be connected")
	}
}

func TestPreferentialAttachment(t *testing.T) {
	g := PreferentialAttachment(300, 3, UnitWeight, 5)
	if !g.Connected() {
		t.Fatal("PA graph should be connected")
	}
	// Seed clique C(4,2)=6 plus 3 per additional vertex.
	want := 6 + 3*(300-4)
	if g.M() != want {
		t.Fatalf("PA edges %d, want %d", g.M(), want)
	}
	if g.MaxDegree() <= 3 {
		t.Fatal("PA should produce hubs with degree above d")
	}
	// Small n degenerates to a clique.
	if g := PreferentialAttachment(3, 3, UnitWeight, 5); g.M() != 3 {
		t.Fatalf("small PA should be K3, got %d edges", g.M())
	}
}

func TestRandomGeometric(t *testing.T) {
	g := RandomGeometric(400, 0.12, true, UnitWeight, 6)
	for _, e := range g.Edges() {
		if e.W > 0.12+1e-12 {
			t.Fatalf("euclidean weight %v exceeds radius", e.W)
		}
	}
	// Deterministic under seed.
	h := RandomGeometric(400, 0.12, true, UnitWeight, 6)
	if g.M() != h.M() {
		t.Fatal("RGG not deterministic")
	}
}

func TestWeightFns(t *testing.T) {
	r := newTestSource()
	for i := 0; i < 1000; i++ {
		if w := UniformWeight(2, 5)(r); w < 2 || w >= 5 {
			t.Fatalf("uniform weight %v out of range", w)
		}
		if w := ExpWeight(3)(r); w < 1 {
			t.Fatalf("exp weight %v below 1", w)
		}
		w := PowerWeight(4, 3)(r)
		if w != 1 && w != 4 && w != 16 {
			t.Fatalf("power weight %v not in ladder", w)
		}
	}
}

func TestWeightFnPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"uniform empty":  func() { UniformWeight(5, 2) },
		"uniform nonpos": func() { UniformWeight(0, 2) },
		"exp nonpos":     func() { ExpWeight(0) },
		"power base":     func() { PowerWeight(1, 3) },
		"pa d":           func() { PreferentialAttachment(5, 0, UnitWeight, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestIORoundTrip(t *testing.T) {
	g := GNP(60, 0.1, UniformWeight(1, 10), 77)
	var sb strings.Builder
	if err := g.Write(&sb); err != nil {
		t.Fatal(err)
	}
	h, err := ReadFrom(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != g.N() || h.M() != g.M() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d", h.N(), h.M(), g.N(), g.M())
	}
	for i := range g.Edges() {
		a, b := g.Edge(i), h.Edge(i)
		if a.U != b.U || a.V != b.V {
			t.Fatalf("edge %d endpoints changed", i)
		}
		if diff := a.W - b.W; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("edge %d weight drift %v vs %v", i, a.W, b.W)
		}
	}
}

func TestIOErrors(t *testing.T) {
	bad := []string{
		"",                        // missing header
		"e 0 1 1\n",               // edge before header
		"n 2 1\n",                 // count mismatch
		"n 2 1\nx 0 1 1\n",        // unknown record
		"n 2 1\ne 0 5 1\n",        // invalid edge
		"n 1 0\nn 1 0\n",          // duplicate header
		"n -1 0\n",                // negative
		"n 2 1\ne zero one one\n", // unparsable edge
	}
	for i, s := range bad {
		if _, err := ReadFrom(strings.NewReader(s)); err == nil {
			t.Fatalf("case %d (%q): expected error", i, s)
		}
	}
	// Comments and blank lines are fine.
	ok := "# hello\n\nn 2 1\n# mid\ne 0 1 2.5\n"
	if _, err := ReadFrom(strings.NewReader(ok)); err != nil {
		t.Fatalf("comment handling: %v", err)
	}
}

func TestTotalWeightAndIsUnit(t *testing.T) {
	g := MustNew(3, []Edge{{0, 1, 1.5}, {1, 2, 2.5}})
	if g.TotalWeight() != 4 {
		t.Fatalf("total weight %v", g.TotalWeight())
	}
	if g.IsUnit() {
		t.Fatal("weighted graph reported unit")
	}
	if !Grid(2, 2, UnitWeight, 1).IsUnit() {
		t.Fatal("unit grid reported weighted")
	}
}

func TestQuickGNPSimple(t *testing.T) {
	f := func(seed uint64) bool {
		g := GNP(40, 0.15, UnitWeight, seed)
		seen := make(map[[2]int]bool)
		for _, e := range g.Edges() {
			if e.U == e.V || e.U < 0 || e.V >= 40 {
				return false
			}
			u, v := e.U, e.V
			if u > v {
				u, v = v, u
			}
			if seen[[2]int{u, v}] {
				return false
			}
			seen[[2]int{u, v}] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
