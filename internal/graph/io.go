package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteTo writes g in a simple plain-text edge-list format:
//
//	# comment lines start with '#'
//	n <vertices> <edges>
//	e <u> <v> <weight>
//
// The format round-trips through ReadFrom.
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d %d\n", g.n, len(g.edges)); err != nil {
		return err
	}
	for _, e := range g.edges {
		if _, err := fmt.Fprintf(bw, "e %d %d %g\n", e.U, e.V, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFrom parses the format emitted by WriteTo.
func ReadFrom(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	n, m := -1, -1
	var edges []Edge
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(text, "n "):
			if n >= 0 {
				return nil, fmt.Errorf("graph: line %d: duplicate header", line)
			}
			if _, err := fmt.Sscanf(text, "n %d %d", &n, &m); err != nil {
				return nil, fmt.Errorf("graph: line %d: bad header: %v", line, err)
			}
			if n < 0 || m < 0 {
				return nil, fmt.Errorf("graph: line %d: negative header values", line)
			}
			edges = make([]Edge, 0, m)
		case strings.HasPrefix(text, "e "):
			if n < 0 {
				return nil, fmt.Errorf("graph: line %d: edge before header", line)
			}
			var e Edge
			if _, err := fmt.Sscanf(text, "e %d %d %g", &e.U, &e.V, &e.W); err != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge: %v", line, err)
			}
			edges = append(edges, e)
		default:
			return nil, fmt.Errorf("graph: line %d: unrecognized record %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("graph: missing header")
	}
	if len(edges) != m {
		return nil, fmt.Errorf("graph: header declared %d edges, found %d", m, len(edges))
	}
	return New(n, edges)
}
