package graph

// UnionFind is a disjoint-set forest with union by size and path halving,
// giving effectively-constant amortized operations. It is used by the
// contraction machinery (internal/cluster), the unweighted spanner's
// auxiliary-graph construction, and several verifiers.
type UnionFind struct {
	parent []int32
	size   []int32
	sets   int
}

// NewUnionFind returns a forest of n singleton sets.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{
		parent: make([]int32, n),
		size:   make([]int32, n),
		sets:   n,
	}
	for i := range u.parent {
		u.parent[i] = int32(i)
		u.size[i] = 1
	}
	return u
}

// Find returns the canonical representative of x's set.
func (u *UnionFind) Find(x int) int {
	p := int32(x)
	for u.parent[p] != p {
		u.parent[p] = u.parent[u.parent[p]] // path halving
		p = u.parent[p]
	}
	return int(p)
}

// Union merges the sets containing x and y and reports whether they were
// previously distinct.
func (u *UnionFind) Union(x, y int) bool {
	rx, ry := int32(u.Find(x)), int32(u.Find(y))
	if rx == ry {
		return false
	}
	if u.size[rx] < u.size[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = rx
	u.size[rx] += u.size[ry]
	u.sets--
	return true
}

// Same reports whether x and y are in the same set.
func (u *UnionFind) Same(x, y int) bool { return u.Find(x) == u.Find(y) }

// SetSize returns the size of the set containing x.
func (u *UnionFind) SetSize(x int) int { return int(u.size[u.Find(x)]) }

// Sets returns the current number of disjoint sets.
func (u *UnionFind) Sets() int { return u.sets }
