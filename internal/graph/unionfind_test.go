package graph

import (
	"testing"
	"testing/quick"

	"mpcspanner/internal/xrand"
)

// newTestSource gives graph tests a deterministic randomness source.
func newTestSource() *xrand.Source { return xrand.New(0xdecaf) }

func TestUnionFindBasic(t *testing.T) {
	u := NewUnionFind(5)
	if u.Sets() != 5 {
		t.Fatalf("initial sets %d", u.Sets())
	}
	if !u.Union(0, 1) {
		t.Fatal("first union should merge")
	}
	if u.Union(1, 0) {
		t.Fatal("repeated union should report false")
	}
	if !u.Same(0, 1) || u.Same(0, 2) {
		t.Fatal("Same inconsistent")
	}
	u.Union(2, 3)
	u.Union(0, 3)
	if u.Sets() != 2 {
		t.Fatalf("sets = %d, want 2", u.Sets())
	}
	if u.SetSize(1) != 4 {
		t.Fatalf("set size %d, want 4", u.SetSize(1))
	}
	if u.SetSize(4) != 1 {
		t.Fatalf("singleton size %d", u.SetSize(4))
	}
}

func TestUnionFindMatchesComponents(t *testing.T) {
	g := GNP(300, 0.008, UnitWeight, 11)
	u := NewUnionFind(g.N())
	for _, e := range g.Edges() {
		u.Union(e.U, e.V)
	}
	label, count := g.Components()
	if u.Sets() != count {
		t.Fatalf("union-find sets %d vs BFS components %d", u.Sets(), count)
	}
	for v := 1; v < g.N(); v++ {
		if (label[v] == label[0]) != u.Same(v, 0) {
			t.Fatalf("vertex %d: union-find and BFS disagree", v)
		}
	}
}

func TestUnionFindProperty(t *testing.T) {
	// Property: after arbitrary unions, Find is idempotent, Same is an
	// equivalence relation consistent with the unions performed, and set
	// sizes sum to n.
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		const n = 64
		u := NewUnionFind(n)
		type pair struct{ a, b int }
		var done []pair
		for i := 0; i < 80; i++ {
			a, b := r.Intn(n), r.Intn(n)
			if a == b {
				continue
			}
			u.Union(a, b)
			done = append(done, pair{a, b})
		}
		for _, p := range done {
			if !u.Same(p.a, p.b) {
				return false
			}
		}
		roots := make(map[int]bool)
		total := 0
		for v := 0; v < n; v++ {
			root := u.Find(v)
			if u.Find(root) != root {
				return false
			}
			if !roots[root] {
				roots[root] = true
				total += u.SetSize(root)
			}
		}
		return total == n && len(roots) == u.Sets()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
