package mpc

import (
	"fmt"
	"runtime"
	"testing"

	"mpcspanner/internal/graph"
)

// BenchmarkMPCBuild pins the simulated distributed construction at n≈20k,
// serial vs parallel: the sample sorts and the per-machine local passes are
// the wall-clock, and both fan out over the worker pool.
func BenchmarkMPCBuild(b *testing.B) {
	g := graph.GNP(20_000, 12/20_000.0, graph.UniformWeight(1, 100), 7)
	counts := []int{1}
	if max := runtime.GOMAXPROCS(0); max > 1 {
		counts = append(counts, max)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("n=20k/k=16/t=4/workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := BuildSpannerOpts(g, 16, 4, 7, Options{Gamma: 0.5, Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Rounds), "mpc-rounds")
			}
		})
	}
}
