package mpc

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"mpcspanner/internal/graph"
	"mpcspanner/internal/obs"
)

// BenchmarkSimSortByKey is the keyed-shuffle steady state the acceptance
// criteria pin: one radix sort of the resident tuples per op on a sized
// arena, so allocs/op must report ~0. The keys alternate between two
// encodings so every iteration really permutes.
func BenchmarkSimSortByKey(b *testing.B) {
	g := graph.GNP(20_000, 12/20_000.0, graph.UniformWeight(1, 100), 7)
	sim, err := NewSim(g.N(), 2*g.M(), 0.5)
	if err != nil {
		b.Fatal(err)
	}
	tuples := make([]Tuple, 0, 2*g.M())
	for id, e := range g.Edges() {
		u, v := int32(e.U), int32(e.V)
		tuples = append(tuples,
			Tuple{Src: u, Dst: v, CSrc: u, CDst: v, W: e.W, Orig: int32(id)},
			Tuple{Src: v, Dst: u, CSrc: v, CDst: u, W: e.W, Orig: int32(id)},
		)
	}
	if err := sim.Load(tuples); err != nil {
		b.Fatal(err)
	}
	enc := newKeyEncoding(g, 1)
	if err := sim.SortByKey(enc.group); err != nil { // size the arena
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := enc.group
		if i%2 == 1 {
			key = enc.mirror
		}
		if err := sim.SortByKey(key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMPCBuild pins the simulated distributed construction at n≈20k,
// serial vs parallel: the sample sorts and the per-machine local passes are
// the wall-clock, and both fan out over the worker pool.
func BenchmarkMPCBuild(b *testing.B) {
	g := graph.GNP(20_000, 12/20_000.0, graph.UniformWeight(1, 100), 7)
	counts := []int{1}
	if max := runtime.GOMAXPROCS(0); max > 1 {
		counts = append(counts, max)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("n=20k/k=16/t=4/workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := BuildSpannerOpts(g, 16, 4, 7, Options{Gamma: 0.5, Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Rounds), "mpc-rounds")
			}
		})
	}
	// The instrumented build must stay indistinguishable from the plain one
	// (nil-safe handles, no locks, no deferred closures on the hot paths) —
	// this sub-run keeps that claim measurable in the bench-regression gate.
	reg := obs.NewRegistry()
	b.Run("n=20k/k=16/t=4/workers=1/metrics=on", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := BuildSpannerOpts(g, 16, 4, 7, Options{Gamma: 0.5, Workers: 1, Metrics: reg})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Rounds), "mpc-rounds")
		}
	})
}

// BenchmarkMPCBuildSpill is the out-of-core acceptance benchmark, gated by
// BENCH_large.json (bench-large CI job, not the PR gate): one full MPC
// build of a 1M-vertex sparse graph under a tuple-byte budget of ¼ of the
// resident footprint, followed by the same build fully resident. Both rows
// report edges/s and peak RSS; the budgeted row additionally reports the
// spill traffic the build paid to stay inside the budget. The budgeted
// sub-benchmark runs FIRST: VmHWM is a process-wide high-water mark, so
// only that ordering lets its peak_rss_bytes show the out-of-core build's
// own footprint rather than the resident build's.
//
// Skipped unless BENCH_LARGE=1 — the PR gate's -bench regex would match
// the name, and a 1M-vertex build has no place in the per-push tier.
func BenchmarkMPCBuildSpill(b *testing.B) {
	if os.Getenv("BENCH_LARGE") == "" {
		b.Skip("set BENCH_LARGE=1 to run the 1M-vertex out-of-core benchmark")
	}
	g := graph.Connectify(graph.GNP(1_000_000, 8/1_000_000.0, graph.UniformWeight(1, 100), 7), 50)
	budget := 2 * int64(g.M()) * tupleBytes / 4
	run := func(b *testing.B, opt Options, wantSpill bool) {
		b.ReportAllocs()
		b.ResetTimer()
		var spilled, runs int64
		for i := 0; i < b.N; i++ {
			res, err := BuildSpannerOpts(g, 8, 3, 7, opt)
			if err != nil {
				b.Fatal(err)
			}
			if got := res.SpilledBytes > 0; got != wantSpill {
				b.Fatalf("spilled=%v, want %v (budget=%d)", got, wantSpill, opt.MemoryBudget)
			}
			spilled, runs = res.SpilledBytes, res.SpillRuns
		}
		b.StopTimer()
		b.ReportMetric(float64(g.M())*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
		if rss := obs.PeakRSSBytes(); rss > 0 {
			b.ReportMetric(float64(rss), "peak_rss_bytes")
		}
		if wantSpill {
			b.ReportMetric(float64(spilled), "spilled_bytes")
			b.ReportMetric(float64(runs), "run_files")
		}
	}
	b.Run("n=1M/k=8/t=3/budget=quarter", func(b *testing.B) {
		run(b, Options{Gamma: 0.5, Workers: 0, MemoryBudget: budget}, true)
	})
	b.Run("n=1M/k=8/t=3/resident", func(b *testing.B) {
		run(b, Options{Gamma: 0.5, Workers: 0}, false)
	})
}
