package mpc

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"mpcspanner/internal/cluster"
	"mpcspanner/internal/core"
	"mpcspanner/internal/graph"
	"mpcspanner/internal/obs"
	"mpcspanner/internal/par"
	"mpcspanner/internal/spanner"
	"mpcspanner/internal/xrand"
)

// none marks a dead label.
const none = int32(-1)

// keyEncoding turns the driver's three tuple comparators into single
// order-preserving uint64 keys, so every global sort runs as one radix
// shuffle (Sim.SortByKey) instead of a comparison merge sort. Labels are
// original-vertex ids (< n) and the (W, Orig) suffix every comparator ends
// with collapses to the edge's dense weight rank (< m, see
// cluster.WeightRanks), so a key needs 2·⌈log₂ n⌉ + ⌈log₂ m⌉ bits. When
// that exceeds 64 — beyond ~10⁹ vertices at typical densities — the driver
// falls back to the Sort(less) comparators, which remain the semantic
// definition of the order.
type keyEncoding struct {
	vBits uint     // bits per vertex label
	rank  []uint32 // edge id -> rank under (W, Orig)

	// Prebuilt key closures (built once so hot loops don't re-bind them).
	group  func(*Tuple) uint64 // (Src, CDst, W, Orig) — the B2 grouping sort
	mirror func(*Tuple) uint64 // (Dst, CSrc) — the mirror-side label routing
	pair   func(*Tuple) uint64 // (min, max, W, Orig) — the dedup sort
}

// newKeyEncoding builds the encoding for g, or nil when the composite
// doesn't fit 64 bits (per cluster.KeyWidths, the layout shared with the
// engine's dedup key) and the comparator fallback must run.
func newKeyEncoding(g *graph.Graph, workers int) *keyEncoding {
	vb, rb, ok := cluster.KeyWidths(g.N(), g.M())
	if !ok {
		return nil
	}
	e := &keyEncoding{vBits: vb, rank: cluster.WeightRanks(g, workers)}
	rank := e.rank
	e.group = func(t *Tuple) uint64 {
		return uint64(t.Src)<<(vb+rb) | uint64(t.CDst)<<rb | uint64(rank[t.Orig])
	}
	e.mirror = func(t *Tuple) uint64 {
		return uint64(t.Dst)<<vb | uint64(t.CSrc)
	}
	e.pair = func(t *Tuple) uint64 {
		lo, hi := t.Src, t.Dst
		if lo > hi {
			lo, hi = hi, lo
		}
		return uint64(lo)<<(vb+rb) | uint64(hi)<<rb | uint64(rank[t.Orig])
	}
	return e
}

// Options configures a distributed spanner build beyond its algorithm
// parameters.
type Options struct {
	// Gamma is the memory exponent of the simulated machines, γ ∈ (0, 1].
	Gamma float64

	// Workers sizes the real goroutine pool that executes the simulated
	// machines' local passes (par conventions: 0 = GOMAXPROCS, 1 = serial).
	// Rounds, memory accounting and the constructed spanner are
	// bit-identical at every worker count; negative values are rejected.
	Workers int

	// MemoryBudget, when positive, caps the host-process bytes the tuple
	// store may keep resident: contents past the budget spill to
	// internal/extmem run files and global sorts run as external merge
	// sorts. The constructed spanner and the simulated round bill are
	// bit-identical to an unbudgeted build at every worker count. Zero or
	// negative keeps everything resident (today's zero-overhead path).
	MemoryBudget int64

	// Progress, when non-nil, receives one core.ProgressEvent per simulated
	// checkpoint ("mpc-grow" per grow iteration, "mpc-contract" per epoch,
	// "mpc-phase2"), carrying the round bill so far. Emitted synchronously
	// from the driver loop; the callback must not call back into the
	// simulator.
	Progress func(core.ProgressEvent)

	// Metrics, when non-nil, attaches the simulator's cost counters (rounds,
	// sorts, tuple volume, peak machine load — see Sim.SetMetrics) and the
	// driver's per-iteration wall-clock histogram (mpc_iteration_seconds) to
	// the registry. nil runs fully uninstrumented: the simulator carries
	// inert nil handles and the driver reads no clocks.
	Metrics *obs.Registry
}

// Result reports a distributed spanner construction: the spanner itself plus
// the simulated-cluster cost profile that Theorem 1.1 bounds.
type Result struct {
	EdgeIDs []int

	Rounds           int // simulated MPC rounds (Theorem 1.1's O((1/γ)·t·log k/log(t+1)))
	Iterations       int // grow iterations executed
	Epochs           int // contractions executed
	Machines         int
	MemoryPerMachine int   // S = ⌈n^γ⌉ tuples
	PeakMachineLoad  int   // never exceeds S (validated every primitive)
	PeakTotalTuples  int   // never exceeds the initial 2m footprint
	Sorts            int   // global sorts executed
	TreeOps          int   // aggregation-tree operations executed
	TuplesMoved      int64 // total communication volume in tuples
	Workers          int   // resolved goroutine pool size of the run

	// Out-of-core profile of a budgeted run (zero when Options.MemoryBudget
	// was unset): the byte budget in force, cumulative bytes spilled to
	// extmem run files, run files written, and external merge passes.
	MemoryBudget int64
	SpilledBytes int64
	SpillRuns    int64
	MergePasses  int64
}

// BuildSpanner executes the general algorithm (Section 5) on the simulated
// MPC cluster with memory exponent gamma, following Section 6's
// implementation: edges live as directed tuple pairs carrying cluster
// labels; every iteration is one sort + segmented minima/decisions +
// mirror-side label routing; every epoch ends with a contraction realized as
// a relabel + dedup sort.
//
// The run is driven by the same spanner.Schedule and the same
// xrand.CoinAt(p, seed, spanner.CoinDomainPhase1, epoch, iter, center) coins
// as the sequential reference engine, so for equal inputs and seeds the
// returned spanner is bit-identical to spanner.General's — the test suite
// asserts this cross-plane equality.
func BuildSpanner(g *graph.Graph, k, t int, gamma float64, seed uint64) (*Result, error) {
	return BuildSpannerCtx(context.Background(), g, k, t, seed, Options{Gamma: gamma})
}

// BuildSpannerOpts is BuildSpanner with the full option surface: each
// simulated machine's local pass runs as a real goroutine of a pool of
// opt.Workers, without touching the model-level accounting.
func BuildSpannerOpts(g *graph.Graph, k, t int, seed uint64, opt Options) (*Result, error) {
	return BuildSpannerCtx(context.Background(), g, k, t, seed, opt)
}

// BuildSpannerCtx is BuildSpannerOpts under a context: the driver
// checkpoints ctx once per simulated grow iteration (the round-level chunk
// of Section 6) and returns core.Canceled(ctx.Err()) — matching errors.Is
// against both core.ErrCanceled and ctx.Err() — at the first checkpoint
// after cancellation, with the worker pool joined. Uncanceled runs are
// bit-identical to BuildSpannerOpts at every worker count.
func BuildSpannerCtx(ctx context.Context, g *graph.Graph, k, t int, seed uint64, opt Options) (*Result, error) {
	if k < 1 || t < 1 {
		return nil, &core.OptionError{Field: "mpc: (k, t)", Value: fmt.Sprintf("(%d, %d)", k, t),
			Reason: "parameters must satisfy k >= 1 and t >= 1"}
	}
	if err := par.CheckWorkers("mpc: Options.Workers", opt.Workers); err != nil {
		return nil, err
	}
	return buildSpanner(ctx, g, k, t, seed, opt, newKeyEncoding(g, opt.Workers))
}

// buildSpanner is BuildSpannerCtx after option validation, with the sort
// strategy pinned: enc != nil runs every global sort as a radix-keyed
// shuffle, enc == nil runs the comparator fallback. Both produce the same
// spanner and the same round bill (the equivalence tests exercise the pair).
func buildSpanner(ctx context.Context, g *graph.Graph, k, t int, seed uint64, opt Options, enc *keyEncoding) (*Result, error) {
	sim, err := NewSimBudget(g.N(), 2*g.M(), opt.Gamma, opt.MemoryBudget)
	if err != nil {
		return nil, err
	}
	defer sim.Close()
	sim.SetWorkers(opt.Workers)
	sim.SetMetrics(opt.Metrics)
	iterSeconds := opt.Metrics.Histogram("mpc_iteration_seconds", obs.LatencyBuckets)

	// Input: two directed copies of every edge; supernode and cluster
	// labels start as the vertex itself. Streamed through the store so a
	// budgeted build never materializes the 2m-tuple slice.
	err = sim.LoadFrom(2*g.M(), func(emit func(Tuple)) {
		for id, e := range g.Edges() {
			u, v := int32(e.U), int32(e.V)
			emit(Tuple{Src: u, Dst: v, CSrc: u, CDst: v, W: e.W, Orig: int32(id)})
			emit(Tuple{Src: v, Dst: u, CSrc: v, CDst: u, W: e.W, Orig: int32(id)})
		}
	})
	if err != nil {
		return nil, err
	}

	res := &Result{Machines: sim.Machines(), MemoryPerMachine: sim.MemoryPerMachine(), Workers: sim.Workers()}
	ds := newDriverScratch(g.M(), sim.Workers())
	n := float64(g.N())

	// Iteration reports the driver's global grow-iteration count so the
	// fraction of TotalIterations is monotone; the simulated plane tracks
	// live edges (tuple pairs), not supernodes.
	emit := func(stage string, epoch, total int) {
		if opt.Progress != nil {
			opt.Progress(core.ProgressEvent{Stage: stage, Algorithm: "general",
				Epoch: epoch, Iteration: res.Iterations, TotalIterations: total,
				AliveEdges: sim.Len() / 2, SpannerEdges: ds.spanCount, Rounds: sim.Rounds()})
		}
	}
	schedule := spanner.Schedule(k, t)
	for _, spec := range schedule {
		if err := core.Check(ctx); err != nil {
			return nil, err
		}
		if sim.Len() == 0 {
			break
		}
		p := math.Pow(n, -spec.Exponent)
		var iterStart time.Time
		if iterSeconds != nil {
			iterStart = time.Now()
		}
		if err := iterateDistributed(sim, p, uint64(spec.Epoch), uint64(spec.Iter), seed, ds, enc); err != nil {
			return nil, err
		}
		if iterSeconds != nil {
			iterSeconds.Observe(time.Since(iterStart).Seconds())
		}
		res.Iterations++
		emit("mpc-grow", spec.Epoch, len(schedule))
		if spec.LastOfEpoch && sim.Len() > 0 {
			if err := contractDistributed(sim, enc); err != nil {
				return nil, err
			}
			res.Epochs++
			emit("mpc-contract", spec.Epoch, len(schedule))
		}
	}

	// Phase 2: one more dedup pass (idempotent after a trailing
	// contraction), then every surviving representative joins the spanner.
	if err := core.Check(ctx); err != nil {
		return nil, err
	}
	if sim.Len() > 0 {
		if err := dedupPairs(sim, enc); err != nil {
			return nil, err
		}
		if err := sim.Scan(func(t *Tuple) { ds.addSpanner(t.Orig) }); err != nil {
			return nil, err
		}
	}
	emit("mpc-phase2", 0, len(schedule))

	// The spanner membership bitmap is indexed by edge id, so the ascending
	// scan yields EdgeIDs already sorted.
	res.EdgeIDs = make([]int, 0, ds.spanCount)
	for id, in := range ds.inSpanner {
		if in {
			res.EdgeIDs = append(res.EdgeIDs, id)
		}
	}
	res.Rounds = sim.Rounds()
	res.PeakMachineLoad = sim.PeakMachineLoad()
	res.PeakTotalTuples = sim.PeakTotalTuples()
	res.Sorts = sim.Sorts()
	res.TreeOps = sim.TreeOps()
	res.TuplesMoved = sim.TuplesMoved()
	if st := sim.SpillStats(); st.BudgetBytes > 0 {
		res.MemoryBudget = st.BudgetBytes
		res.SpilledBytes = st.SpilledBytes
		res.SpillRuns = st.RunFiles
		res.MergePasses = st.MergePasses
	}
	return res, nil
}

// pairKey identifies a (supernode, neighbor-cluster) group.
type pairKey struct{ v, c int32 }

// joinRec records a supernode's chosen sampled cluster.
type joinRec struct {
	center int32
	orig   int32
}

// srcJoin is a join decision keyed by its supernode label.
type srcJoin struct {
	v   int32
	rec joinRec
}

// decisionPart is one shard's share of an iteration's per-supernode
// decisions; parts concatenate in shard order (= segment order).
type decisionPart struct {
	adds    []int32
	joins   []srcJoin
	removes []pairKey
}

// reset empties the part for the next iteration, keeping its capacity.
func (p *decisionPart) reset() {
	p.adds = p.adds[:0]
	p.joins = p.joins[:0]
	p.removes = p.removes[:0]
}

// groupMin is one (Src, CDst) group's minimum-weight representative.
type groupMin struct {
	c    int32
	w    float64
	orig int32
}

// driverScratch is the per-build state the iteration loop reuses across
// rounds: the spanner-membership bitmap and the decision accumulators and
// maps that used to be reallocated every iteration. Maps are cleared, not
// remade, so their buckets amortize across the whole build.
type driverScratch struct {
	inSpanner []bool // edge id -> chosen (ascending scan = sorted EdgeIDs)
	spanCount int

	parts   []decisionPart
	groups  [][]groupMin // per-shard group-minima buffer
	badFlag []bool       // per-shard dead-label fail-fast flags
	badTup  []Tuple      // the offending tuple each failing shard saw first
	removes map[pairKey]struct{}
	joins   map[int32]joinRec
}

func newDriverScratch(m, workers int) *driverScratch {
	return &driverScratch{
		inSpanner: make([]bool, m),
		parts:     make([]decisionPart, workers),
		groups:    make([][]groupMin, workers),
		badFlag:   make([]bool, workers),
		badTup:    make([]Tuple, workers),
		removes:   make(map[pairKey]struct{}),
		joins:     make(map[int32]joinRec),
	}
}

func (ds *driverScratch) addSpanner(orig int32) {
	if !ds.inSpanner[orig] {
		ds.inSpanner[orig] = true
		ds.spanCount++
	}
}

// iterateDistributed is one grow iteration (Steps B1–B6) in tuple form.
func iterateDistributed(sim *Sim, p float64, epoch, iter, seed uint64, ds *driverScratch, enc *keyEncoding) error {
	// B1 — sampling. The coin for a cluster is a pure function of its
	// center label, so every machine evaluates it locally: no rounds.
	sampled := func(label int32) bool {
		return xrand.CoinAt(p, seed, spanner.CoinDomainPhase1, epoch, iter, uint64(label))
	}

	// B2 — group edges of processed supernodes: sort by (Src, CDst, W, Orig)
	// so each (v, c) group is contiguous with its minimum first. Keyed: one
	// radix shuffle on the (Src, CDst, weight-rank) composite.
	if err := sortGroup(sim, enc); err != nil {
		return err
	}

	// B3/B4 — segmented minima and per-supernode decisions. Every Src
	// segment is independent, so segments fan out over the worker pool —
	// exactly the per-machine group-leader work of Section 6; crossing
	// machine boundaries costs one Find-Minimum tree and one
	// decision-gather tree, charged below as before. Per-shard decision
	// lists concatenate in shard order, which equals segment order, so the
	// merged decisions are identical at every worker count.
	parts := ds.parts
	for i := range parts {
		parts[i].reset()
	}
	// badFlag/badTup record the first dead-labeled tuple each shard saw, so
	// the fail-fast error can name the tuple; the lowest shard's find is
	// reported, matching the serial scan order.
	badFlag, badTup := ds.badFlag, ds.badTup
	for i := range badFlag {
		badFlag[i] = false
	}
	groupsByShard := ds.groups // reused across each shard's segments
	segErr := sim.ForEachSegment(func(a, b *Tuple) bool { return a.Src == b.Src }, func(shard int, seg []Tuple) {
		if badFlag[shard] {
			return // shard already failing fast
		}
		// Every tuple must carry live labels, sampled segment or not — the
		// same invariant the serial scan enforced.
		for gi := range seg {
			if seg[gi].CSrc == none || seg[gi].CDst == none {
				badFlag[shard] = true
				badTup[shard] = seg[gi]
				return
			}
		}
		cur := seg[0].Src
		if sampled(seg[0].CSrc) {
			return // supernodes inside sampled clusters do nothing
		}
		// Group minima: the first tuple of each (Src, CDst) run is the
		// group minimum under the B2 sort order.
		groups := groupsByShard[shard][:0]
		for gi := range seg {
			t := &seg[gi]
			if len(groups) == 0 || groups[len(groups)-1].c != t.CDst {
				groups = append(groups, groupMin{c: t.CDst, w: t.W, orig: t.Orig})
			}
		}
		groupsByShard[shard] = groups
		if len(groups) == 0 {
			return
		}
		// Closest sampled neighbor cluster by (weight, center label).
		best := -1
		for i, gm := range groups {
			if !sampled(gm.c) {
				continue
			}
			if best == -1 || gm.w < groups[best].w ||
				(gm.w == groups[best].w && gm.c < groups[best].c) {
				best = i
			}
		}
		part := &parts[shard]
		if best >= 0 {
			joinW := groups[best].w
			part.adds = append(part.adds, groups[best].orig)
			part.joins = append(part.joins, srcJoin{v: cur, rec: joinRec{center: groups[best].c, orig: groups[best].orig}})
			part.removes = append(part.removes, pairKey{cur, groups[best].c})
			for i, gm := range groups {
				if i == best || gm.w >= joinW {
					continue
				}
				part.adds = append(part.adds, gm.orig)
				part.removes = append(part.removes, pairKey{cur, gm.c})
			}
		} else {
			for _, gm := range groups {
				part.adds = append(part.adds, gm.orig)
				part.removes = append(part.removes, pairKey{cur, gm.c})
			}
		}
	})
	if segErr != nil {
		return segErr
	}
	for i, bad := range badFlag {
		if bad {
			return fmt.Errorf("mpc: tuple with dead label survived: %+v", badTup[i])
		}
	}
	removePairs := ds.removes
	joins := ds.joins
	clear(removePairs)
	clear(joins)
	for i := range parts {
		for _, orig := range parts[i].adds {
			ds.addSpanner(orig)
		}
		for _, j := range parts[i].joins {
			joins[j.v] = j.rec
		}
		for _, r := range parts[i].removes {
			removePairs[r] = struct{}{}
		}
	}
	sim.ChargeTree(2) // segmented minima + decision gathering

	// Removal + join application. The Src side rides the current sort
	// order (one broadcast tree); the mirror side needs a resort by
	// (Dst, CSrc) plus its own broadcast tree.
	sim.ChargeTree(1)
	if err := sortMirror(sim, enc); err != nil {
		return err
	}
	sim.ChargeTree(1)

	err := sim.Filter(func(t *Tuple) bool {
		if _, dead := removePairs[pairKey{t.Src, t.CDst}]; dead {
			return false
		}
		if _, dead := removePairs[pairKey{t.Dst, t.CSrc}]; dead {
			return false
		}
		return true
	})
	if err != nil {
		return err
	}

	// B5 — cluster labels advance: sampled clusters persist, joiners adopt
	// their target, everything else would die (and can't appear on a live
	// tuple, which B6 then certifies).
	relabel := func(x, cx int32) int32 {
		if sampled(cx) {
			return cx
		}
		if j, ok := joins[x]; ok {
			return j.center
		}
		return none
	}
	err = sim.Update(func(t *Tuple) {
		t.CSrc = relabel(t.Src, t.CSrc)
		t.CDst = relabel(t.Dst, t.CDst)
	})
	if err != nil {
		return err
	}

	// B6 — intra-cluster edges vanish; dead labels must not survive.
	var lostCluster atomic.Int64
	err = sim.Filter(func(t *Tuple) bool {
		if t.CSrc == none || t.CDst == none {
			lostCluster.Add(1)
			return false
		}
		return t.CSrc != t.CDst
	})
	if err != nil {
		return err
	}
	if lostCluster.Load() > 0 {
		return fmt.Errorf("mpc: %d live tuples lost their cluster in iteration (%d, %d)",
			lostCluster.Load(), epoch, iter)
	}
	return nil
}

// sortGroup runs the B2 grouping sort: by (Src, CDst, W, Orig), keyed when
// the encoding fits.
func sortGroup(sim *Sim, enc *keyEncoding) error {
	if enc != nil {
		return sim.SortByKey(enc.group)
	}
	return sim.Sort(func(a, b *Tuple) bool {
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.CDst != b.CDst {
			return a.CDst < b.CDst
		}
		if a.W != b.W {
			return a.W < b.W
		}
		return a.Orig < b.Orig
	})
}

// sortMirror runs the mirror-side routing sort: by (Dst, CSrc), keyed when
// the encoding fits.
func sortMirror(sim *Sim, enc *keyEncoding) error {
	if enc != nil {
		return sim.SortByKey(enc.mirror)
	}
	return sim.Sort(func(a, b *Tuple) bool {
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.CSrc < b.CSrc
	})
}

// sortPairs runs the dedup sort: by (min endpoint, max endpoint, W, Orig),
// keyed when the encoding fits.
func sortPairs(sim *Sim, enc *keyEncoding) error {
	if enc != nil {
		return sim.SortByKey(enc.pair)
	}
	lo := func(t *Tuple) (int32, int32) {
		if t.Src < t.Dst {
			return t.Src, t.Dst
		}
		return t.Dst, t.Src
	}
	return sim.Sort(func(a, b *Tuple) bool {
		la, ha := lo(a)
		lb, hb := lo(b)
		if la != lb {
			return la < lb
		}
		if ha != hb {
			return ha < hb
		}
		if a.W != b.W {
			return a.W < b.W
		}
		return a.Orig < b.Orig
	})
}

// contractDistributed is Step C: supernode labels become the cluster labels
// (local relabel), then one dedup sort keeps the minimum-weight
// representative per supernode pair.
func contractDistributed(sim *Sim, enc *keyEncoding) error {
	err := sim.Update(func(t *Tuple) {
		t.Src, t.Dst = t.CSrc, t.CDst
	})
	if err != nil {
		return err
	}
	return dedupPairs(sim, enc)
}

// dedupPairs sorts by unordered pair and keeps only the two directed copies
// of the minimum-weight edge per pair (one Sort + one boundary tree). The
// keep decision is a segmented aggregate: within each pair segment the
// minimum is the first tuple, and a tuple survives iff it carries the
// minimum's original edge id — evaluated per segment on the worker pool
// into the store's compaction mask.
func dedupPairs(sim *Sim, enc *keyEncoding) error {
	if err := sortPairs(sim, enc); err != nil {
		return err
	}
	sim.ChargeTree(1)
	return sim.FilterSegments(func(a, b *Tuple) bool {
		return a.Src == b.Src && a.Dst == b.Dst ||
			a.Src == b.Dst && a.Dst == b.Src
	}, func(seg []Tuple, keep []bool) {
		minOrig := seg[0].Orig
		for i := range seg {
			keep[i] = seg[i].Orig == minOrig
		}
	})
}

// RoundBound returns the model-level round budget of Theorem 1.1 for the
// simulated cluster: per iteration 2 sorts + 4 trees, per epoch one dedup
// sort + tree, plus the Phase 2 dedup.
func RoundBound(sim *Sim, k, t int) int {
	specs := spanner.Schedule(k, t)
	epochs := 0
	if len(specs) > 0 {
		epochs = specs[len(specs)-1].Epoch
	}
	perIter := 2*sim.SortRounds() + 4*sim.TreeRounds()
	perEpoch := sim.SortRounds() + sim.TreeRounds()
	return len(specs)*perIter + (epochs+1)*perEpoch
}
