package mpc

import (
	"fmt"
	"math"
	"sort"

	"mpcspanner/internal/graph"
	"mpcspanner/internal/spanner"
	"mpcspanner/internal/xrand"
)

// none marks a dead label.
const none = int32(-1)

// Result reports a distributed spanner construction: the spanner itself plus
// the simulated-cluster cost profile that Theorem 1.1 bounds.
type Result struct {
	EdgeIDs []int

	Rounds           int // simulated MPC rounds (Theorem 1.1's O((1/γ)·t·log k/log(t+1)))
	Iterations       int // grow iterations executed
	Epochs           int // contractions executed
	Machines         int
	MemoryPerMachine int   // S = ⌈n^γ⌉ tuples
	PeakMachineLoad  int   // never exceeds S (validated every primitive)
	PeakTotalTuples  int   // never exceeds the initial 2m footprint
	Sorts            int   // global sorts executed
	TreeOps          int   // aggregation-tree operations executed
	TuplesMoved      int64 // total communication volume in tuples
}

// BuildSpanner executes the general algorithm (Section 5) on the simulated
// MPC cluster with memory exponent gamma, following Section 6's
// implementation: edges live as directed tuple pairs carrying cluster
// labels; every iteration is one sort + segmented minima/decisions +
// mirror-side label routing; every epoch ends with a contraction realized as
// a relabel + dedup sort.
//
// The run is driven by the same spanner.Schedule and the same
// xrand.CoinAt(p, seed, spanner.CoinDomainPhase1, epoch, iter, center) coins
// as the sequential reference engine, so for equal inputs and seeds the
// returned spanner is bit-identical to spanner.General's — the test suite
// asserts this cross-plane equality.
func BuildSpanner(g *graph.Graph, k, t int, gamma float64, seed uint64) (*Result, error) {
	if k < 1 || t < 1 {
		return nil, fmt.Errorf("mpc: parameters must satisfy k >= 1 and t >= 1 (got k=%d t=%d)", k, t)
	}
	sim, err := NewSim(g.N(), 2*g.M(), gamma)
	if err != nil {
		return nil, err
	}

	// Input: two directed copies of every edge; supernode and cluster
	// labels start as the vertex itself.
	tuples := make([]Tuple, 0, 2*g.M())
	for id, e := range g.Edges() {
		u, v := int32(e.U), int32(e.V)
		tuples = append(tuples,
			Tuple{Src: u, Dst: v, CSrc: u, CDst: v, W: e.W, Orig: int32(id)},
			Tuple{Src: v, Dst: u, CSrc: v, CDst: u, W: e.W, Orig: int32(id)},
		)
	}
	if err := sim.Load(tuples); err != nil {
		return nil, err
	}

	res := &Result{Machines: sim.Machines(), MemoryPerMachine: sim.MemoryPerMachine()}
	inSpanner := make(map[int32]struct{})
	n := float64(g.N())

	for _, spec := range spanner.Schedule(k, t) {
		if sim.Len() == 0 {
			break
		}
		p := math.Pow(n, -spec.Exponent)
		if err := iterateDistributed(sim, p, uint64(spec.Epoch), uint64(spec.Iter), seed, inSpanner); err != nil {
			return nil, err
		}
		res.Iterations++
		if spec.LastOfEpoch && sim.Len() > 0 {
			if err := contractDistributed(sim); err != nil {
				return nil, err
			}
			res.Epochs++
		}
	}

	// Phase 2: one more dedup pass (idempotent after a trailing
	// contraction), then every surviving representative joins the spanner.
	if sim.Len() > 0 {
		if err := dedupPairs(sim); err != nil {
			return nil, err
		}
		sim.Scan(func(t *Tuple) { inSpanner[t.Orig] = struct{}{} })
	}

	res.EdgeIDs = make([]int, 0, len(inSpanner))
	for id := range inSpanner {
		res.EdgeIDs = append(res.EdgeIDs, int(id))
	}
	sort.Ints(res.EdgeIDs)
	res.Rounds = sim.Rounds()
	res.PeakMachineLoad = sim.PeakMachineLoad()
	res.PeakTotalTuples = sim.PeakTotalTuples()
	res.Sorts = sim.Sorts()
	res.TreeOps = sim.TreeOps()
	res.TuplesMoved = sim.TuplesMoved()
	return res, nil
}

// pairKey identifies a (supernode, neighbor-cluster) group.
type pairKey struct{ v, c int32 }

// iterateDistributed is one grow iteration (Steps B1–B6) in tuple form.
func iterateDistributed(sim *Sim, p float64, epoch, iter, seed uint64, inSpanner map[int32]struct{}) error {
	// B1 — sampling. The coin for a cluster is a pure function of its
	// center label, so every machine evaluates it locally: no rounds.
	sampled := func(label int32) bool {
		return xrand.CoinAt(p, seed, spanner.CoinDomainPhase1, epoch, iter, uint64(label))
	}

	// B2 — group edges of processed supernodes: sort by (Src, CDst, W, Orig)
	// so each (v, c) group is contiguous with its minimum first.
	if err := sim.Sort(func(a, b *Tuple) bool {
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.CDst != b.CDst {
			return a.CDst < b.CDst
		}
		if a.W != b.W {
			return a.W < b.W
		}
		return a.Orig < b.Orig
	}); err != nil {
		return err
	}

	// B3/B4 — segmented minima and per-supernode decisions. The scan below
	// is the work of the group leaders; crossing machine boundaries costs
	// one Find-Minimum tree and one decision-gather tree.
	type groupMin struct {
		c    int32
		w    float64
		orig int32
	}
	type joinRec struct {
		center int32
		orig   int32
	}
	removePairs := make(map[pairKey]struct{})
	joins := make(map[int32]joinRec)

	var cur int32 = -1 // current Src being assembled
	var curProcessed bool
	var groups []groupMin

	flush := func() {
		if cur < 0 || !curProcessed || len(groups) == 0 {
			groups = groups[:0]
			return
		}
		// Closest sampled neighbor cluster by (weight, center label).
		best := -1
		for i, gm := range groups {
			if !sampled(gm.c) {
				continue
			}
			if best == -1 || gm.w < groups[best].w ||
				(gm.w == groups[best].w && gm.c < groups[best].c) {
				best = i
			}
		}
		if best >= 0 {
			joinW := groups[best].w
			inSpanner[groups[best].orig] = struct{}{}
			joins[cur] = joinRec{center: groups[best].c, orig: groups[best].orig}
			removePairs[pairKey{cur, groups[best].c}] = struct{}{}
			for i, gm := range groups {
				if i == best || gm.w >= joinW {
					continue
				}
				inSpanner[gm.orig] = struct{}{}
				removePairs[pairKey{cur, gm.c}] = struct{}{}
			}
		} else {
			for _, gm := range groups {
				inSpanner[gm.orig] = struct{}{}
				removePairs[pairKey{cur, gm.c}] = struct{}{}
			}
		}
		groups = groups[:0]
	}

	var scanErr error
	sim.Scan(func(t *Tuple) {
		if t.CSrc == none || t.CDst == none {
			scanErr = fmt.Errorf("mpc: tuple with dead label survived: %+v", *t)
			return
		}
		if t.Src != cur {
			flush()
			cur = t.Src
			curProcessed = !sampled(t.CSrc)
			if !curProcessed {
				return
			}
		}
		if !curProcessed {
			return
		}
		if len(groups) == 0 || groups[len(groups)-1].c != t.CDst {
			// First tuple of the (Src, CDst) group is the minimum.
			groups = append(groups, groupMin{c: t.CDst, w: t.W, orig: t.Orig})
		}
	})
	flush()
	if scanErr != nil {
		return scanErr
	}
	sim.ChargeTree(2) // segmented minima + decision gathering

	// Removal + join application. The Src side rides the current sort
	// order (one broadcast tree); the mirror side needs a resort by
	// (Dst, CSrc) plus its own broadcast tree.
	sim.ChargeTree(1)
	if err := sim.Sort(func(a, b *Tuple) bool {
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.CSrc < b.CSrc
	}); err != nil {
		return err
	}
	sim.ChargeTree(1)

	sim.Filter(func(t *Tuple) bool {
		if _, dead := removePairs[pairKey{t.Src, t.CDst}]; dead {
			return false
		}
		if _, dead := removePairs[pairKey{t.Dst, t.CSrc}]; dead {
			return false
		}
		return true
	})

	// B5 — cluster labels advance: sampled clusters persist, joiners adopt
	// their target, everything else would die (and can't appear on a live
	// tuple, which B6 then certifies).
	relabel := func(x, cx int32) int32 {
		if sampled(cx) {
			return cx
		}
		if j, ok := joins[x]; ok {
			return j.center
		}
		return none
	}
	sim.Update(func(t *Tuple) {
		t.CSrc = relabel(t.Src, t.CSrc)
		t.CDst = relabel(t.Dst, t.CDst)
	})

	// B6 — intra-cluster edges vanish; dead labels must not survive.
	var b6Err error
	sim.Filter(func(t *Tuple) bool {
		if t.CSrc == none || t.CDst == none {
			b6Err = fmt.Errorf("mpc: live tuple lost its cluster: %+v", *t)
			return false
		}
		return t.CSrc != t.CDst
	})
	return b6Err
}

// contractDistributed is Step C: supernode labels become the cluster labels
// (local relabel), then one dedup sort keeps the minimum-weight
// representative per supernode pair.
func contractDistributed(sim *Sim) error {
	sim.Update(func(t *Tuple) {
		t.Src, t.Dst = t.CSrc, t.CDst
	})
	return dedupPairs(sim)
}

// dedupPairs sorts by unordered pair and keeps only the two directed copies
// of the minimum-weight edge per pair (one Sort + one boundary tree).
func dedupPairs(sim *Sim) error {
	lo := func(t *Tuple) (int32, int32) {
		if t.Src < t.Dst {
			return t.Src, t.Dst
		}
		return t.Dst, t.Src
	}
	if err := sim.Sort(func(a, b *Tuple) bool {
		la, ha := lo(a)
		lb, hb := lo(b)
		if la != lb {
			return la < lb
		}
		if ha != hb {
			return ha < hb
		}
		if a.W != b.W {
			return a.W < b.W
		}
		return a.Orig < b.Orig
	}); err != nil {
		return err
	}
	sim.ChargeTree(1)
	var prevL, prevH int32 = -1, -1
	var prevOrig int32 = -1
	sim.Filter(func(t *Tuple) bool {
		l, h := lo(t)
		if l == prevL && h == prevH {
			return t.Orig == prevOrig // keep only the min edge's mirror copy
		}
		prevL, prevH, prevOrig = l, h, t.Orig
		return true
	})
	return nil
}

// RoundBound returns the model-level round budget of Theorem 1.1 for the
// simulated cluster: per iteration 2 sorts + 4 trees, per epoch one dedup
// sort + tree, plus the Phase 2 dedup.
func RoundBound(sim *Sim, k, t int) int {
	specs := spanner.Schedule(k, t)
	epochs := 0
	if len(specs) > 0 {
		epochs = specs[len(specs)-1].Epoch
	}
	perIter := 2*sim.SortRounds() + 4*sim.TreeRounds()
	perEpoch := sim.SortRounds() + sim.TreeRounds()
	return len(specs)*perIter + (epochs+1)*perEpoch
}
