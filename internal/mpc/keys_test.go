package mpc

import (
	"context"
	"math"
	"testing"

	"mpcspanner/internal/graph"
	"mpcspanner/internal/xrand"
)

// randomTuples draws a tuple set with deliberately heavy label/weight ties
// and a sprinkling of +Inf weights, over a label space of n and an edge-id
// space of m — the tie patterns the keyed sorts must order exactly like the
// comparators they replaced.
func randomTuples(rng *xrand.Source, count, n, m int, infWeights bool) []Tuple {
	ts := make([]Tuple, count)
	for i := range ts {
		w := float64(rng.Intn(6)) // heavy ties
		if infWeights && rng.Intn(9) == 0 {
			w = math.Inf(1)
		}
		ts[i] = Tuple{
			Src:  int32(rng.Intn(n)),
			Dst:  int32(rng.Intn(n)),
			CSrc: int32(rng.Intn(n)),
			CDst: int32(rng.Intn(n)),
			W:    w,
			Orig: int32(rng.Intn(m)),
		}
	}
	return ts
}

// tupleGraph builds a graph whose edge ids 0..m-1 carry the weights the
// tuple set references, so newKeyEncoding's weight ranks describe them. Each
// tuple's W is then forced to its edge's weight — the invariant (Orig
// determines W) the driver maintains and the rank encoding relies on.
func tupleGraph(t *testing.T, rng *xrand.Source, ts []Tuple, n, m int, infWeights bool) *graph.Graph {
	t.Helper()
	edges := make([]graph.Edge, m)
	for i := range edges {
		w := float64(rng.Intn(6)) + 1
		if infWeights && rng.Intn(9) == 0 {
			w = math.Inf(1)
		}
		edges[i] = graph.Edge{U: i % n, V: (i + 1 + i%(n-1)) % n, W: w}
		if edges[i].U == edges[i].V {
			edges[i].V = (edges[i].V + 1) % n
		}
	}
	g, err := graph.New(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ts {
		ts[i].W = g.Edge(int(ts[i].Orig)).W
	}
	return g
}

// loadSim wraps tuples in a Sim big enough to never overflow placement.
func loadSim(t *testing.T, ts []Tuple, workers int) *Sim {
	t.Helper()
	s, err := NewSim(len(ts)+2, len(ts), 1)
	if err != nil {
		t.Fatal(err)
	}
	s.SetWorkers(workers)
	if err := s.Load(ts); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestKeyEncodingsMatchComparators is the ISSUE's property test: for each of
// the driver's three converted sorts, SortByKey with the encoding orders
// exactly like Sort with the comparator it replaced — ties, +Inf weights and
// all — at several worker counts.
func TestKeyEncodingsMatchComparators(t *testing.T) {
	const n, m, count = 37, 211, 4000
	cases := []struct {
		name string
		run  func(s *Sim, enc *keyEncoding) error
	}{
		{"group", sortGroup},
		{"mirror", sortMirror},
		{"pairs", sortPairs},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := xrand.Split(17, 0x6b657973, uint64(len(tc.name)))
			base := randomTuples(rng, count, n, m, true)
			g := tupleGraph(t, rng, base, n, m, true)
			enc := newKeyEncoding(g, 1)
			if enc == nil {
				t.Fatal("encoding must fit for this graph size")
			}
			want := loadSim(t, base, 1)
			if err := tc.run(want, nil); err != nil { // comparator fallback
				t.Fatal(err)
			}
			for _, w := range []int{1, 2, 4} {
				got := loadSim(t, base, w)
				if err := tc.run(got, enc); err != nil {
					t.Fatal(err)
				}
				for i := range want.Data() {
					if got.Data()[i] != want.Data()[i] {
						t.Fatalf("workers=%d slot %d: keyed %+v != comparator %+v",
							w, i, got.Data()[i], want.Data()[i])
					}
				}
				if got.Rounds() != want.Rounds() || got.Sorts() != want.Sorts() {
					t.Fatalf("keyed sort charged (rounds=%d sorts=%d), comparator (rounds=%d sorts=%d)",
						got.Rounds(), got.Sorts(), want.Rounds(), want.Sorts())
				}
			}
		})
	}
}

// TestSortByKeyFullRangeKeys drives SortByKey with keys spanning the whole
// uint64 range (all eight radix digits live) against Sort with the
// corresponding comparator.
func TestSortByKeyFullRangeKeys(t *testing.T) {
	rng := xrand.Split(23, 0x66756c6c)
	ts := randomTuples(rng, 3000, 50, 97, false)
	key := func(tp *Tuple) uint64 {
		// A full-range avalanche of the tuple's fields; pure and
		// order-defining, which is all SortByKey requires.
		return xrand.Split(5, uint64(tp.Src), uint64(tp.Dst), uint64(tp.Orig)).Uint64()
	}
	want := loadSim(t, ts, 1)
	if err := want.Sort(func(a, b *Tuple) bool { return key(a) < key(b) }); err != nil {
		t.Fatal(err)
	}
	got := loadSim(t, ts, 2)
	if err := got.SortByKey(key); err != nil {
		t.Fatal(err)
	}
	for i := range want.Data() {
		if got.Data()[i] != want.Data()[i] {
			t.Fatalf("slot %d: keyed %+v != comparator %+v", i, got.Data()[i], want.Data()[i])
		}
	}
}

// TestKeyedAndFallbackBuildsAgree runs the full driver both ways: the keyed
// radix plane and the comparator fallback must produce identical spanners
// and identical round bills.
func TestKeyedAndFallbackBuildsAgree(t *testing.T) {
	g := graph.Connectify(graph.GNP(400, 0.03, graph.UniformWeight(1, 8), 3), 11)
	opt := Options{Gamma: 0.5, Workers: 1}
	keyed, err := buildSpanner(context.Background(), g, 6, 2, 42, opt, newKeyEncoding(g, 1))
	if err != nil {
		t.Fatal(err)
	}
	fallback, err := buildSpanner(context.Background(), g, 6, 2, 42, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(keyed.EdgeIDs) != len(fallback.EdgeIDs) {
		t.Fatalf("keyed spanner has %d edges, fallback %d", len(keyed.EdgeIDs), len(fallback.EdgeIDs))
	}
	for i := range keyed.EdgeIDs {
		if keyed.EdgeIDs[i] != fallback.EdgeIDs[i] {
			t.Fatalf("edge %d differs: keyed %d, fallback %d", i, keyed.EdgeIDs[i], fallback.EdgeIDs[i])
		}
	}
	if keyed.Rounds != fallback.Rounds || keyed.Sorts != fallback.Sorts || keyed.TreeOps != fallback.TreeOps {
		t.Fatalf("cost profiles differ: keyed %+v, fallback %+v", keyed, fallback)
	}
}

// TestSimSteadyStateAllocs pins the arena contract: once the first round has
// sized the scratch, SortByKey, Filter, Keep and SegmentStarts allocate
// nothing (serial path; the parallel path adds only its goroutine closures).
func TestSimSteadyStateAllocs(t *testing.T) {
	rng := xrand.Split(29, 0x616c6c6f63)
	ts := randomTuples(rng, 5000, 64, 128, false)
	s := loadSim(t, ts, 1)
	key := func(tp *Tuple) uint64 { return uint64(tp.Src)<<32 | uint64(uint32(tp.Orig)) }
	if err := s.SortByKey(key); err != nil { // size the arena
		t.Fatal(err)
	}
	s.SegmentStarts(func(a, b *Tuple) bool { return a.Src == b.Src })

	if allocs := testing.AllocsPerRun(10, func() {
		if err := s.SortByKey(key); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("steady-state SortByKey allocated %.0f objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		s.SegmentStarts(func(a, b *Tuple) bool { return a.Src == b.Src })
	}); allocs > 0 {
		t.Errorf("steady-state SegmentStarts allocated %.0f objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		s.Filter(func(*Tuple) bool { return true })
	}); allocs > 0 {
		t.Errorf("steady-state Filter allocated %.0f objects/op, want 0", allocs)
	}
	mask := s.maskScratch(s.Len())
	for i := range mask {
		mask[i] = true
	}
	if allocs := testing.AllocsPerRun(10, func() { s.Keep(mask) }); allocs > 0 {
		t.Errorf("steady-state Keep allocated %.0f objects/op, want 0", allocs)
	}
}
