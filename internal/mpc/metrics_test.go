package mpc

import (
	"testing"

	"mpcspanner/internal/obs"
	"mpcspanner/internal/xrand"
)

// TestSimMetricsSeries checks that an instrumented Sim fills the paper-native
// cost series: one round-volume observation and one shuffle-byte observation
// per charged sort, and a peak-load gauge that tracks validate()'s maximum.
func TestSimMetricsSeries(t *testing.T) {
	rng := xrand.Split(31, 0x6d657472)
	ts := randomTuples(rng, 3000, 64, 96, false)
	s := loadSim(t, ts, 1)
	reg := obs.NewRegistry()
	s.SetMetrics(reg)

	key := func(tp *Tuple) uint64 { return uint64(tp.Src)<<32 | uint64(uint32(tp.Orig)) }
	for i := 0; i < 3; i++ {
		if err := s.SortByKey(key); err != nil {
			t.Fatal(err)
		}
	}

	snap := reg.Snapshot()
	if v, _ := snap.Counter("mpc_sorts_total"); v != 3 {
		t.Fatalf("mpc_sorts_total = %d, want 3", v)
	}
	h := snap.Histogram("mpc_round_tuples")
	if h == nil || h.Count != 3 {
		t.Fatalf("mpc_round_tuples recorded %+v, want 3 observations", h)
	}
	if h.Sum != float64(3*s.Len()) {
		t.Fatalf("mpc_round_tuples sum = %g, want %d", h.Sum, 3*s.Len())
	}
	hb := snap.Histogram("mpc_shuffle_bytes")
	if hb == nil || hb.Sum != float64(int64(3*s.Len())*tupleBytes) {
		t.Fatalf("mpc_shuffle_bytes = %+v, want sum %d", hb, int64(3*s.Len())*tupleBytes)
	}
	if v, _ := snap.Gauge("mpc_peak_machine_load_tuples"); v <= 0 || v > int64(s.s) {
		t.Fatalf("mpc_peak_machine_load_tuples = %d, want in (0, S=%d]", v, s.s)
	}
	if v, _ := snap.Gauge("mpc_peak_total_tuples"); v != int64(s.Len()) {
		t.Fatalf("mpc_peak_total_tuples = %d, want %d", v, s.Len())
	}
}

// TestSimInstrumentedSteadyStateAllocs extends the arena contract to the
// instrumented path: with a live registry attached, steady-state SortByKey
// still allocates nothing — counters, gauges, and histogram observations are
// all lock-free atomics on pre-registered handles.
func TestSimInstrumentedSteadyStateAllocs(t *testing.T) {
	rng := xrand.Split(29, 0x616c6c6f)
	ts := randomTuples(rng, 5000, 64, 128, false)
	s := loadSim(t, ts, 1)
	s.SetMetrics(obs.NewRegistry())
	key := func(tp *Tuple) uint64 { return uint64(tp.Src)<<32 | uint64(uint32(tp.Orig)) }
	if err := s.SortByKey(key); err != nil { // size the arena
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		if err := s.SortByKey(key); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("instrumented steady-state SortByKey allocated %.0f objects/op, want 0", allocs)
	}
}
