package mpc

import (
	"math"
	"testing"
	"testing/quick"

	"mpcspanner/internal/graph"
	"mpcspanner/internal/spanner"
)

func TestNewSimSizing(t *testing.T) {
	s, err := NewSim(10000, 50000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if s.MemoryPerMachine() != 100 {
		t.Fatalf("S = %d, want n^0.5 = 100", s.MemoryPerMachine())
	}
	if s.Machines() != 500 {
		t.Fatalf("P = %d, want 500", s.Machines())
	}
	if _, err := NewSim(10, 10, 0); err == nil {
		t.Fatal("gamma=0 accepted")
	}
	if _, err := NewSim(10, 10, 1.5); err == nil {
		t.Fatal("gamma>1 accepted")
	}
	if _, err := NewSim(-1, 10, 0.5); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestTreeAndSortRounds(t *testing.T) {
	s, _ := NewSim(10000, 50000, 0.5)
	// P=500, S=100: tree depth = ceil(log 500 / log 100) = 2.
	if s.TreeRounds() != 2 {
		t.Fatalf("tree rounds %d, want 2", s.TreeRounds())
	}
	if s.SortRounds() != 5 {
		t.Fatalf("sort rounds %d, want 5", s.SortRounds())
	}
	// Single machine: everything local.
	one, _ := NewSim(100, 3, 1)
	if one.TreeRounds() != 0 || one.SortRounds() != 0 {
		t.Fatal("single machine should cost no rounds")
	}
	// Smaller gamma -> more machines with less memory -> deeper trees.
	lo, _ := NewSim(10000, 50000, 0.25)
	if lo.TreeRounds() <= s.TreeRounds() {
		t.Fatalf("gamma=0.25 tree %d should exceed gamma=0.5 tree %d", lo.TreeRounds(), s.TreeRounds())
	}
}

func TestSimLoadOverflow(t *testing.T) {
	s, _ := NewSim(16, 8, 0.5) // S=4, P=2: capacity 8
	good := make([]Tuple, 8)
	if err := s.Load(good); err != nil {
		t.Fatalf("at-capacity load rejected: %v", err)
	}
	bad := make([]Tuple, 9)
	if err := s.Load(bad); err == nil {
		t.Fatal("overflow load accepted")
	}
}

func TestSimSortAndAccounting(t *testing.T) {
	s, _ := NewSim(100, 50, 0.5) // S=10, P=5
	ts := make([]Tuple, 50)
	for i := range ts {
		ts[i] = Tuple{Src: int32(49 - i), W: float64(i % 7)}
	}
	if err := s.Load(ts); err != nil {
		t.Fatal(err)
	}
	r0 := s.Rounds()
	if err := s.Sort(func(a, b *Tuple) bool { return a.Src < b.Src }); err != nil {
		t.Fatal(err)
	}
	if s.Rounds() != r0+s.SortRounds() {
		t.Fatalf("sort charged %d rounds, want %d", s.Rounds()-r0, s.SortRounds())
	}
	prev := int32(-1)
	s.Scan(func(tp *Tuple) {
		if tp.Src < prev {
			t.Fatalf("not sorted: %d after %d", tp.Src, prev)
		}
		prev = tp.Src
	})
	if s.Sorts() != 1 {
		t.Fatalf("sort count %d", s.Sorts())
	}
	s.ChargeTree(3)
	if s.TreeOps() != 3 {
		t.Fatalf("tree ops %d", s.TreeOps())
	}
}

func TestSimFilterAndUpdateAreLocal(t *testing.T) {
	s, _ := NewSim(100, 20, 0.5)
	ts := make([]Tuple, 20)
	for i := range ts {
		ts[i] = Tuple{Src: int32(i)}
	}
	_ = s.Load(ts)
	r0 := s.Rounds()
	s.Update(func(t *Tuple) { t.Src *= 2 })
	s.Filter(func(t *Tuple) bool { return t.Src < 20 })
	if s.Rounds() != r0 {
		t.Fatal("local passes must not charge rounds")
	}
	if s.Len() != 10 {
		t.Fatalf("filter kept %d, want 10", s.Len())
	}
}

// crossPlane asserts the distributed driver reproduces the sequential
// reference exactly.
func crossPlane(t *testing.T, g *graph.Graph, k, tt int, gamma float64, seed uint64) *Result {
	t.Helper()
	ref, err := spanner.General(g, k, tt, spanner.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	got, err := BuildSpanner(g, k, tt, gamma, seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.EdgeIDs) != len(ref.EdgeIDs) {
		t.Fatalf("plane mismatch: mpc %d edges, reference %d", len(got.EdgeIDs), len(ref.EdgeIDs))
	}
	for i := range got.EdgeIDs {
		if got.EdgeIDs[i] != ref.EdgeIDs[i] {
			t.Fatalf("plane mismatch at position %d: %d vs %d", i, got.EdgeIDs[i], ref.EdgeIDs[i])
		}
	}
	return got
}

func TestCrossPlaneEquality(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"gnp":   graph.GNP(250, 0.05, graph.UniformWeight(1, 50), 1),
		"grid":  graph.Grid(15, 15, graph.UniformWeight(1, 5), 2),
		"pa":    graph.PreferentialAttachment(200, 4, graph.UnitWeight, 3),
		"torus": graph.Torus(12, 12, graph.ExpWeight(4), 4),
	}
	for name, g := range graphs {
		for _, c := range []struct{ k, t int }{{2, 1}, {4, 1}, {4, 2}, {8, 3}, {1, 1}} {
			res := crossPlane(t, g, c.k, c.t, 0.5, 99)
			if res.PeakMachineLoad > res.MemoryPerMachine {
				t.Fatalf("%s k=%d t=%d: machine load %d exceeds S=%d",
					name, c.k, c.t, res.PeakMachineLoad, res.MemoryPerMachine)
			}
			if res.PeakTotalTuples > 2*g.M() {
				t.Fatalf("%s: total memory grew beyond input footprint", name)
			}
		}
	}
}

func TestRoundsWithinBound(t *testing.T) {
	g := graph.GNP(300, 0.06, graph.UniformWeight(1, 9), 5)
	for _, gamma := range []float64{0.33, 0.5, 0.75} {
		for _, c := range []struct{ k, t int }{{4, 1}, {8, 2}, {16, 3}} {
			res, err := BuildSpanner(g, c.k, c.t, gamma, 7)
			if err != nil {
				t.Fatal(err)
			}
			sim, _ := NewSim(g.N(), 2*g.M(), gamma)
			if res.Rounds > RoundBound(sim, c.k, c.t) {
				t.Fatalf("gamma=%v k=%d t=%d: %d rounds exceeds bound %d",
					gamma, c.k, c.t, res.Rounds, RoundBound(sim, c.k, c.t))
			}
			if res.Rounds <= 0 {
				t.Fatal("distributed run must cost rounds")
			}
		}
	}
}

func TestRoundsScaleWithGammaInverse(t *testing.T) {
	// Halving gamma (squaring machine count) must not reduce rounds: the
	// 1/γ factor of Theorem 1.1.
	g := graph.GNP(400, 0.05, graph.UnitWeight, 11)
	hi, err := BuildSpanner(g, 8, 2, 0.75, 13)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := BuildSpanner(g, 8, 2, 0.25, 13)
	if err != nil {
		t.Fatal(err)
	}
	if lo.Rounds < hi.Rounds {
		t.Fatalf("gamma=0.25 used %d rounds < gamma=0.75's %d", lo.Rounds, hi.Rounds)
	}
	// Identical output regardless of machine granularity.
	if len(lo.EdgeIDs) != len(hi.EdgeIDs) {
		t.Fatal("gamma must not change the constructed spanner")
	}
}

func TestIterationsMatchSchedule(t *testing.T) {
	g := graph.GNP(300, 0.06, graph.UnitWeight, 17)
	res, err := BuildSpanner(g, 16, 3, 0.5, 19)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(spanner.Schedule(16, 3)); res.Iterations > want {
		t.Fatalf("iterations %d exceed schedule %d", res.Iterations, want)
	}
	if res.Iterations == 0 {
		t.Fatal("no iterations executed")
	}
}

func TestBuildSpannerValidates(t *testing.T) {
	g := graph.Path(4, graph.UnitWeight, 1)
	if _, err := BuildSpanner(g, 0, 1, 0.5, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := BuildSpanner(g, 2, 0, 0.5, 1); err == nil {
		t.Fatal("t=0 accepted")
	}
	if _, err := BuildSpanner(g, 2, 1, 0, 1); err == nil {
		t.Fatal("gamma=0 accepted")
	}
}

func TestDriverSpannerIsValid(t *testing.T) {
	g := graph.GNP(200, 0.08, graph.UniformWeight(1, 20), 23)
	res, err := BuildSpanner(g, 4, 2, 0.5, 29)
	if err != nil {
		t.Fatal(err)
	}
	r := &spanner.Result{EdgeIDs: res.EdgeIDs}
	if _, err := spanner.Verify(g, r, spanner.StretchBound(4, 2)); err != nil {
		t.Fatal(err)
	}
}

func TestCrossPlaneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.GNM(80, 300, graph.UniformWeight(1, 8), seed)
		k := 2 + int(seed%4)
		tt := 1 + int((seed>>4)%3)
		ref, err := spanner.General(g, k, tt, spanner.Options{Seed: seed})
		if err != nil {
			return false
		}
		got, err := BuildSpanner(g, k, tt, 0.4, seed)
		if err != nil {
			return false
		}
		if len(got.EdgeIDs) != len(ref.EdgeIDs) {
			return false
		}
		for i := range got.EdgeIDs {
			if got.EdgeIDs[i] != ref.EdgeIDs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyGraphDriver(t *testing.T) {
	g := graph.MustNew(3, nil)
	res, err := BuildSpanner(g, 4, 2, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EdgeIDs) != 0 {
		t.Fatal("edgeless graph should give an empty spanner")
	}
}

func TestRoundBoundMatchesTheoremShape(t *testing.T) {
	// RoundBound ~ (1/γ)·t·log k/log(t+1): check growth in k at fixed t.
	sim, _ := NewSim(1<<20, 1<<22, 0.5)
	r16 := RoundBound(sim, 16, 1)
	r256 := RoundBound(sim, 256, 1)
	// log2(256)/log2(16) = 2, allow slack for ceilings.
	if ratio := float64(r256) / float64(r16); ratio < 1.5 || ratio > 3 {
		t.Fatalf("k-scaling ratio %v outside [1.5,3]", ratio)
	}
	if math.IsNaN(float64(RoundBound(sim, 1, 1))) || RoundBound(sim, 1, 1) < 0 {
		t.Fatal("degenerate k must still be defined")
	}
}
