package mpc

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"

	"mpcspanner/internal/core"
	"mpcspanner/internal/graph"
	"mpcspanner/internal/spanner"
)

func pinWorkers() int {
	w := runtime.NumCPU()
	if w < 4 {
		w = 4
	}
	return w
}

// TestWorkerCountInvarianceMPC pins the tentpole contract on the simulated
// cluster: the spanner, round count, sort/tree-op counts and memory profile
// are bit-identical between a serial run and a multi-worker run.
func TestWorkerCountInvarianceMPC(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"gnp":  graph.GNP(250, 0.05, graph.UniformWeight(1, 50), 1),
		"grid": graph.Grid(15, 15, graph.UniformWeight(1, 5), 2),
		"pa":   graph.PreferentialAttachment(200, 4, graph.UnitWeight, 3),
	}
	for name, g := range graphs {
		for _, c := range []struct{ k, t int }{{4, 1}, {8, 2}} {
			serial, err := BuildSpannerOpts(g, c.k, c.t, 99, Options{Gamma: 0.5, Workers: 1})
			if err != nil {
				t.Fatalf("%s serial: %v", name, err)
			}
			parallel, err := BuildSpannerOpts(g, c.k, c.t, 99, Options{Gamma: 0.5, Workers: pinWorkers()})
			if err != nil {
				t.Fatalf("%s parallel: %v", name, err)
			}
			// Workers is the only field allowed to differ.
			serial.Workers, parallel.Workers = 0, 0
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("%s k=%d t=%d: MPC results differ between worker counts:\n  1: %+v\n  N: %+v",
					name, c.k, c.t, serial, parallel)
			}
		}
	}
}

// TestParallelRunStillCrossPlane re-asserts the cross-plane bit-identity
// with the reference engine when both sides run multi-worker.
func TestParallelRunStillCrossPlane(t *testing.T) {
	g := graph.GNP(220, 0.06, graph.UniformWeight(1, 30), 5)
	w := pinWorkers()
	ref, err := spanner.General(g, 8, 2, spanner.Options{Seed: 31, Workers: w})
	if err != nil {
		t.Fatal(err)
	}
	got, err := BuildSpannerOpts(g, 8, 2, 31, Options{Gamma: 0.4, Workers: w})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.EdgeIDs, ref.EdgeIDs) {
		t.Fatal("multi-worker planes diverged")
	}
}

func TestNegativeWorkersRejectedMPC(t *testing.T) {
	g := graph.Path(4, graph.UnitWeight, 1)
	if _, err := BuildSpannerOpts(g, 2, 1, 1, Options{Gamma: 0.5, Workers: -1}); err == nil {
		t.Fatal("negative Workers accepted")
	}
}

// TestSimParallelPrimitives pins the Sim primitives themselves: a parallel
// Sort/Filter/Update sequence leaves the same tuples and the same round
// bill as a serial one.
func TestSimParallelPrimitives(t *testing.T) {
	mk := func(workers int) *Sim {
		s, err := NewSim(400, 2000, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		s.SetWorkers(workers)
		ts := make([]Tuple, 2000)
		for i := range ts {
			ts[i] = Tuple{
				Src:  int32(i % 37),
				Dst:  int32(i % 11),
				W:    float64(i % 5),
				Orig: int32(i),
			}
		}
		if err := s.Load(ts); err != nil {
			t.Fatal(err)
		}
		return s
	}
	run := func(s *Sim) ([]Tuple, int, int) {
		if err := s.Sort(func(a, b *Tuple) bool {
			if a.Src != b.Src {
				return a.Src < b.Src
			}
			if a.W != b.W {
				return a.W < b.W
			}
			return a.Orig < b.Orig
		}); err != nil {
			t.Fatal(err)
		}
		s.Update(func(t *Tuple) { t.Dst += t.Src })
		s.Filter(func(t *Tuple) bool { return t.Orig%3 != 0 })
		out := append([]Tuple(nil), s.Data()...)
		return out, s.Rounds(), s.Len()
	}
	serialTuples, serialRounds, serialLen := run(mk(1))
	parTuples, parRounds, parLen := run(mk(pinWorkers()))
	if serialRounds != parRounds || serialLen != parLen {
		t.Fatalf("accounting differs: rounds %d vs %d, len %d vs %d",
			serialRounds, parRounds, serialLen, parLen)
	}
	if !reflect.DeepEqual(serialTuples, parTuples) {
		t.Fatal("tuple contents differ between worker counts")
	}
}

func TestSegmentStarts(t *testing.T) {
	s, err := NewSim(100, 50, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	s.SetWorkers(pinWorkers())
	keys := []int32{3, 3, 3, 5, 7, 7, 9}
	ts := make([]Tuple, len(keys))
	for i, k := range keys {
		ts[i] = Tuple{Src: k}
	}
	if err := s.Load(ts); err != nil {
		t.Fatal(err)
	}
	got := s.SegmentStarts(func(a, b *Tuple) bool { return a.Src == b.Src })
	want := []int{0, 3, 4, 6}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("segment starts %v, want %v", got, want)
	}
	// Empty cluster: no segments.
	if err := s.Load(nil); err != nil {
		t.Fatal(err)
	}
	if starts := s.SegmentStarts(func(a, b *Tuple) bool { return true }); starts != nil {
		t.Fatalf("empty data produced segments %v", starts)
	}
}

func TestKeepMaskCompacts(t *testing.T) {
	s, err := NewSim(100, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ts := make([]Tuple, 10)
	for i := range ts {
		ts[i] = Tuple{Orig: int32(i)}
	}
	if err := s.Load(ts); err != nil {
		t.Fatal(err)
	}
	mask := make([]bool, 10)
	for i := range mask {
		mask[i] = i%2 == 0
	}
	s.Keep(mask)
	if s.Len() != 5 {
		t.Fatalf("kept %d tuples, want 5", s.Len())
	}
	s.Scan(func(t0 *Tuple) {
		if t0.Orig%2 != 0 {
			t.Fatalf("tuple %d survived a false mask", t0.Orig)
		}
	})
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched mask accepted")
		}
	}()
	s.Keep(make([]bool, 3))
}

// TestCancellationSemanticsMPC pins the driver's context contract: fail-fast
// classification on a pre-canceled context, bounded checkpoints after a
// mid-run cancel, and bit-identity of live-context runs with the
// context-free path at every worker count.
func TestCancellationSemanticsMPC(t *testing.T) {
	g := graph.GNP(400, 0.04, graph.UniformWeight(1, 60), 23)

	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	if _, err := BuildSpannerCtx(pre, g, 6, 2, 1, Options{Gamma: 0.5}); !errors.Is(err, context.Canceled) || !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("BuildSpannerCtx(canceled) = %v, want context.Canceled/core.ErrCanceled", err)
	}

	for _, workers := range []int{1, pinWorkers()} {
		ctx, cancel := context.WithCancel(context.Background())
		after := 0
		fired := false
		_, err := BuildSpannerCtx(ctx, g, 8, 2, 3, Options{Gamma: 0.5, Workers: workers,
			Progress: func(ev core.ProgressEvent) {
				if fired {
					after++
				}
				fired = true
				cancel()
			}})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: mid-run cancel = %v, want context.Canceled", workers, err)
		}
		if after > 1 {
			t.Fatalf("workers=%d: %d checkpoints fired after the cancel, want <= 1", workers, after)
		}

		plain, err := BuildSpannerOpts(g, 6, 2, 21, Options{Gamma: 0.5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		withCtx, err := BuildSpannerCtx(context.Background(), g, 6, 2, 21, Options{Gamma: 0.5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, withCtx) {
			t.Fatalf("workers=%d: context-free and live-context MPC runs differ", workers)
		}
	}
}
