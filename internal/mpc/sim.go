// Package mpc simulates the Massively Parallel Computation model of
// [KSV10, GSZ11, BKS13] at the data-placement level and executes the paper's
// general spanner algorithm on it (Section 6's implementation).
//
// The simulator models P machines, each with a local memory of S = ⌈n^γ⌉
// tuples, holding the edge tuples of the current quotient graph. Primitives
// charge the rounds the paper's subroutines cost:
//
//   - Sort ([GSZ11] sample sort): 2·tree + 1 rounds, where tree =
//     ⌈log_S P⌉ is the depth of an aggregation tree with fan-in S —
//     O(1/γ) rounds total, as in Section 6;
//   - segmented aggregates (Find Minimum(v)) and Broadcast(b, v): tree
//     rounds each, via the same implicit aggregation trees;
//   - purely local passes (map/filter over resident tuples): 0 rounds.
//
// Placement fidelity: after every communication primitive the simulator
// re-validates that no machine holds more than S tuples and that total
// memory never exceeded its initial O(m) footprint. Message contents are not
// materialized bit-by-bit; what the paper's claims quantify — rounds,
// memory per machine, total memory — is tracked exactly. The Congested
// Clique simulator (internal/cclique) additionally enforces per-round
// message budgets at the node level.
//
// Out-of-core execution: the tuples live behind a pluggable store
// (tupleStore). NewSim keeps everything resident; NewSimBudget caps the
// process-level tuple memory at a byte budget and spills to
// internal/extmem run files past it, with every primitive —
// including the global sorts, which become external merge sorts — producing
// bit-identical tuple orders to the resident store at every worker count.
package mpc

import (
	"fmt"
	"math"
	"unsafe"

	"mpcspanner/internal/extmem"
	"mpcspanner/internal/obs"
	"mpcspanner/internal/par"
)

// Tuple is one directed copy of a quotient-graph edge, the record format of
// Section 6: endpoints carry their supernode labels and current cluster
// labels. Labels are the original-vertex id of the cluster/supernode center,
// which is globally unique and stable across contractions.
type Tuple struct {
	Src, Dst   int32 // supernode labels (center original-vertex ids)
	CSrc, CDst int32 // cluster labels of the two endpoints
	W          float64
	Orig       int32 // original edge identifier
}

// Sim is the machine cluster. Tuples live behind a tupleStore: the resident
// store keeps them in a single backing slice where machine i owns the i-th
// contiguous block of at most S tuples (the canonical balanced placement
// that every [GSZ11] sort re-establishes); the spilling store keeps the same
// logical sequence partly in extmem run files under a byte budget.
type Sim struct {
	s int // memory per machine, in tuples
	p int // number of machines

	// workers is the real goroutine pool backing the simulated machines'
	// local passes (par conventions, resolved; default 1). It changes only
	// wall-clock time: rounds, memory accounting and tuple contents are
	// bit-identical at every worker count.
	workers int

	// budget, when positive, is the process-level byte cap on tuple storage;
	// the spilling store materializes lazily at first load (after
	// SetWorkers/SetMetrics, whose settings it inherits).
	budget int64
	reg    *obs.Registry // registry for the spill store's extmem_* series

	st    tupleStore
	res   *residentStore // non-nil iff st is the resident store
	spill *spillStore    // non-nil iff st is the spilling store

	rounds     int
	sorts      int
	treeOps    int
	peakLoad   int
	peakTotal  int
	totalMoved int64

	// met mirrors the cost counters above into an obs registry when one is
	// attached with SetMetrics. The zero value holds nil handles, whose
	// mutations are no-ops, so the uninstrumented simulator pays one
	// predictable nil-check per charge and allocates nothing either way.
	met simMetrics
}

// simMetrics are the exposition handles for the paper's cost model: rounds,
// sorts, tree ops and communication volume as counters; per-machine and
// total memory high-water marks as gauges; per-round shuffle volume (in
// tuples and bytes) as histograms, so the distribution over a build's rounds
// is visible — the paper's O(m) total memory claim is about exactly these.
type simMetrics struct {
	roundTuples  *obs.Histogram // mpc_round_tuples: tuples shipped per sort round
	shuffleBytes *obs.Histogram // mpc_shuffle_bytes: same, in bytes
	peakLoad     *obs.Gauge     // mpc_peak_machine_load_tuples
	peakTotal    *obs.Gauge     // mpc_peak_total_tuples
	rounds       *obs.Counter   // mpc_rounds_total
	sorts        *obs.Counter   // mpc_sorts_total
	treeOps      *obs.Counter   // mpc_tree_ops_total
	moved        *obs.Counter   // mpc_tuples_moved_total
}

// tupleBytes is the wire size a shipped Tuple is accounted at.
const tupleBytes = int64(unsafe.Sizeof(Tuple{}))

// SetMetrics attaches the simulator's cost counters to r (get-or-create, so
// multiple Sims sharing a registry aggregate, Prometheus-style). A nil
// registry detaches: all handles revert to inert nil pointers. Call before
// the first Load for the spilling store's extmem_* series to attach too.
func (m *Sim) SetMetrics(r *obs.Registry) {
	m.reg = r
	if r == nil {
		m.met = simMetrics{}
		return
	}
	m.met = simMetrics{
		roundTuples:  r.Histogram("mpc_round_tuples", obs.SizeBuckets),
		shuffleBytes: r.Histogram("mpc_shuffle_bytes", obs.SizeBuckets),
		peakLoad:     r.Gauge("mpc_peak_machine_load_tuples"),
		peakTotal:    r.Gauge("mpc_peak_total_tuples"),
		rounds:       r.Counter("mpc_rounds_total"),
		sorts:        r.Counter("mpc_sorts_total"),
		treeOps:      r.Counter("mpc_tree_ops_total"),
		moved:        r.Counter("mpc_tuples_moved_total"),
	}
}

// NewSim sizes a cluster for an n-vertex input of totalTuples tuples with
// memory exponent gamma ∈ (0, 1]: S = ⌈n^γ⌉, P = ⌈totalTuples/S⌉. The
// tuples are fully resident (no byte budget).
func NewSim(n, totalTuples int, gamma float64) (*Sim, error) {
	return NewSimBudget(n, totalTuples, gamma, 0)
}

// NewSimBudget is NewSim with a process-level byte budget on tuple storage.
// budget <= 0 means unbudgeted (fully resident, today's zero-overhead
// path). A positive budget routes the tuples through an internal/extmem
// spilling store: contents past the budget live in CRC-checked run files,
// global sorts become external merge sorts, and every primitive's output
// order is bit-identical to the resident store's. The simulated cost model
// (rounds, S, P) is unchanged — the budget constrains the host process,
// not the simulated machines.
func NewSimBudget(n, totalTuples int, gamma float64, budget int64) (*Sim, error) {
	if gamma <= 0 || gamma > 1 {
		return nil, fmt.Errorf("mpc: gamma must lie in (0,1], got %v", gamma)
	}
	if n < 0 || totalTuples < 0 {
		return nil, fmt.Errorf("mpc: negative sizing (n=%d, tuples=%d)", n, totalTuples)
	}
	s := int(math.Ceil(math.Pow(float64(n), gamma)))
	if s < 2 {
		s = 2
	}
	p := (totalTuples + s - 1) / s
	if p < 1 {
		p = 1
	}
	res := &residentStore{workers: 1}
	return &Sim{s: s, p: p, workers: 1, budget: budget, st: res, res: res}, nil
}

// SetWorkers sizes the goroutine pool that executes the simulated machines'
// local passes (0 selects GOMAXPROCS, 1 forces serial execution). The
// simulated cost model is unaffected. Call before the first Load: a
// spilling store pins its pool size when it materializes.
func (m *Sim) SetWorkers(w int) {
	m.workers = par.Workers(w)
	if m.res != nil {
		m.res.workers = m.workers
	}
}

// Workers returns the resolved pool size.
func (m *Sim) Workers() int { return m.workers }

// MemoryPerMachine returns S in tuples.
func (m *Sim) MemoryPerMachine() int { return m.s }

// Machines returns P.
func (m *Sim) Machines() int { return m.p }

// Rounds returns the communication rounds charged so far.
func (m *Sim) Rounds() int { return m.rounds }

// Sorts returns how many global sorts ran.
func (m *Sim) Sorts() int { return m.sorts }

// TreeOps returns how many aggregation-tree operations ran.
func (m *Sim) TreeOps() int { return m.treeOps }

// PeakMachineLoad returns the maximum tuples any machine held at a
// validation point.
func (m *Sim) PeakMachineLoad() int { return m.peakLoad }

// PeakTotalTuples returns the maximum total tuples resident at once.
func (m *Sim) PeakTotalTuples() int { return m.peakTotal }

// TuplesMoved returns the cumulative tuples shipped by communication
// primitives (a proxy for total communication volume).
func (m *Sim) TuplesMoved() int64 { return m.totalMoved }

// Len returns the number of stored tuples.
func (m *Sim) Len() int { return m.st.len() }

// Spilled reports whether any tuples currently live in run files.
func (m *Sim) Spilled() bool { return m.spill != nil && m.spill.ext.Spilled() }

// SpillStats returns the spilling store's cumulative counters (zero value
// when the simulator is unbudgeted or nothing has loaded yet).
func (m *Sim) SpillStats() extmem.Stats {
	if m.spill == nil {
		return extmem.Stats{}
	}
	return m.spill.ext.Stats()
}

// Close releases the store. For a spilling store this deletes its run
// directory; the resident store is a no-op. The simulator must not be used
// afterwards.
func (m *Sim) Close() error { return m.st.close() }

// TreeRounds returns the depth of an aggregation tree with fan-in S over the
// P machines — the cost of Find Minimum / Broadcast in Section 6.
func (m *Sim) TreeRounds() int {
	if m.p <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log(float64(m.p)) / math.Log(float64(m.s))))
}

// SortRounds returns the cost of one [GSZ11] sample sort: splitter
// aggregation up a tree, splitter broadcast down, and one all-to-all routing
// round.
func (m *Sim) SortRounds() int {
	if m.p <= 1 {
		return 0
	}
	return 2*m.TreeRounds() + 1
}

// ensureStore materializes the spilling store on budgeted simulators, once,
// at first load — after SetWorkers and SetMetrics, whose pool size and
// registry it inherits.
func (m *Sim) ensureStore() {
	if m.budget <= 0 || m.spill != nil {
		return
	}
	var met *extmem.Metrics
	if m.reg != nil {
		met = extmem.NewMetrics(m.reg)
	}
	m.spill = newSpillStore(m.budget, m.workers, met)
	m.st = m.spill
	m.res = nil
}

// Load places the input tuples on the cluster (the "arbitrarily distributed
// input" of the model; charges no rounds) and validates capacity.
func (m *Sim) Load(ts []Tuple) error {
	return m.LoadFrom(len(ts), func(emit func(Tuple)) {
		for _, t := range ts {
			emit(t)
		}
	})
}

// LoadFrom is Load for inputs too large to materialize: fill streams the
// tuples through emit (in placement order, on the calling goroutine) and the
// store sinks them — spilling incrementally on budgeted simulators, so the
// resident footprint never exceeds the budget even during load. total is a
// capacity hint for the unbudgeted path.
func (m *Sim) LoadFrom(total int, fill func(emit func(Tuple))) error {
	m.ensureStore()
	if err := m.st.loadFrom(total, fill); err != nil {
		return err
	}
	return m.validate("load")
}

// validate re-checks the placement invariants after a primitive.
func (m *Sim) validate(op string) error {
	n := m.st.len()
	if n > m.peakTotal {
		m.peakTotal = n
	}
	load := 0
	if n > 0 {
		load = (n + m.p - 1) / m.p
	}
	if load > m.peakLoad {
		m.peakLoad = load
	}
	m.met.peakLoad.SetMax(int64(load))
	m.met.peakTotal.SetMax(int64(n))
	if load > m.s {
		return fmt.Errorf("mpc: %s overflows local memory: %d tuples/machine > S=%d (P=%d, total=%d)",
			op, load, m.s, m.p, n)
	}
	return nil
}

// Sort globally sorts the stored tuples, charging SortRounds. The canonical
// balanced placement is re-established, so per-machine load is ⌈total/P⌉
// afterwards.
//
// The in-process realization mirrors the [GSZ11] sample sort it simulates:
// every machine block is sorted by its own goroutine and the sorted runs
// merge in parallel (par.SortStable); on a spilled store the merge continues
// across run files as an external merge sort. Stability makes the result
// identical to a serial stable sort at every worker count and budget.
func (m *Sim) Sort(less func(a, b *Tuple) bool) error {
	if err := m.st.sortLess(less); err != nil {
		return err
	}
	return m.chargeSort()
}

// SortByKey is Sort with the comparator replaced by an order-preserving
// uint64 key: tuples are stably reordered by ascending key(t), equal keys
// keeping their placement order — bit-identical to Sort with the comparator
// the key encodes, at every worker count. The model cost is the same
// SortRounds charge (the [GSZ11] sample sort the simulator prices is
// oblivious to how the in-process realization compares records); the
// wall-clock realization is the par.RadixSorter LSD radix sort over the
// store's retained key/index/tuple buffers, so steady-state calls allocate
// nothing. key must be a pure per-tuple function: it is invoked concurrently
// from the worker pool.
func (m *Sim) SortByKey(key func(t *Tuple) uint64) error {
	if err := m.st.sortKey(key); err != nil {
		return err
	}
	return m.chargeSort()
}

// chargeSort books one global sort's model cost and re-validates placement.
func (m *Sim) chargeSort() error {
	n := m.st.len()
	m.rounds += m.SortRounds()
	m.sorts++
	m.totalMoved += int64(n)
	m.met.rounds.Add(int64(m.SortRounds()))
	m.met.sorts.Inc()
	m.met.moved.Add(int64(n))
	m.met.roundTuples.Observe(float64(n))
	m.met.shuffleBytes.Observe(float64(int64(n) * tupleBytes))
	return m.validate("sort")
}

// Scan runs a read-only pass over the tuples in placement order, on the
// calling goroutine (callers carry cross-tuple state through it). Local: no
// rounds. Cross-machine aggregation performed on top of a Scan must be
// charged separately with ChargeTree; for the parallel segmented form see
// ForEachSegment. The error is always nil on a resident store; a spilled
// store surfaces run-file I/O errors.
func (m *Sim) Scan(f func(t *Tuple)) error { return m.st.scan(f) }

// Update mutates tuples in place (local relabeling; no rounds). Each
// simulated machine's pass runs on the worker pool, so f must be a pure
// per-tuple function: it may be invoked concurrently and must touch only
// the tuple it is handed.
func (m *Sim) Update(f func(t *Tuple)) error { return m.st.update(f) }

// Filter drops tuples not accepted by keep (local; no rounds — machines
// simply release memory). keep runs on the worker pool and must be a pure
// per-tuple predicate; the surviving tuples retain their order, so the
// result is identical at every worker count.
func (m *Sim) Filter(keep func(t *Tuple) bool) error { return m.st.filter(keep) }

// ForEachSegment decomposes the stored tuples into maximal runs of
// consecutive tuples for which sameKey holds between neighbors — the segment
// decomposition that Section 6's "group by supernode, aggregate per group"
// subroutines operate on — and fans fn out over them on the worker pool.
// Segments shard contiguously and shard ids are always < Workers(), so
// per-shard outputs concatenated in shard order equal segment order — the
// same determinism rule as par.ForShard, and the mode-agnostic replacement
// for the resident-only SegmentStarts/ForSegments pair. The seg slice is
// only valid for the duration of fn.
func (m *Sim) ForEachSegment(sameKey func(a, b *Tuple) bool, fn func(shard int, seg []Tuple)) error {
	return m.st.segments(sameKey, fn)
}

// FilterSegments is ForEachSegment fused with a segmented Filter: decide
// fills keep (pre-zeroed, len(seg)) for each segment and the store retains
// exactly the tuples marked true, preserving order. Local: charges no
// rounds; segmented aggregates computed inside decide are charged separately
// with ChargeTree.
func (m *Sim) FilterSegments(sameKey func(a, b *Tuple) bool, decide func(seg []Tuple, keep []bool)) error {
	return m.st.filterSegments(sameKey, decide)
}

// resident returns the resident store backing the legacy slice-level
// surface (Data, SegmentStarts, ForSegments, Keep, maskScratch), which has
// no spilled counterpart.
func (m *Sim) resident() *residentStore {
	if m.res == nil {
		panic("mpc: resident-only primitive called on a budgeted simulator")
	}
	return m.res
}

// Keep retains exactly the tuples whose mask entry is true, preserving
// order (local compaction; no rounds). Survivors shift left in place —
// machines release the freed memory; nothing is reallocated. Resident-only.
func (m *Sim) Keep(mask []bool) { m.resident().keep(mask) }

// maskScratch returns the arena's compaction mask sized to n. The slice is
// invalidated by the next Filter call (Filter writes the same scratch).
func (m *Sim) maskScratch(n int) []bool { return m.resident().maskScratch(n) }

// Data exposes the resident tuples in placement order. Callers must treat
// the slice as read-only; it is invalidated by the next primitive.
// Resident-only: a budgeted simulator has no single backing slice — use
// Scan or ForEachSegment.
func (m *Sim) Data() []Tuple { return m.resident().data }

// SegmentStarts returns the start index of every maximal run of consecutive
// resident tuples for which sameKey holds between neighbors. The slice is
// backed by the arena and invalidated by the next SegmentStarts call;
// steady-state calls allocate nothing. Resident-only; see ForEachSegment
// for the mode-agnostic form.
func (m *Sim) SegmentStarts(sameKey func(a, b *Tuple) bool) []int {
	return m.resident().segmentStarts(sameKey)
}

// ForSegments fans fn out over the segments delimited by starts (as
// returned by SegmentStarts): fn(shard, si, lo, hi) receives the si-th
// segment as m.Data()[lo:hi]. Segments shard contiguously, so per-shard
// outputs concatenated in shard order equal segment order — the same
// determinism rule as par.ForShard. Resident-only.
func (m *Sim) ForSegments(starts []int, fn func(shard, si, lo, hi int)) {
	r := m.resident()
	par.ForShard(m.workers, len(starts), func(shard, s0, s1 int) {
		for si := s0; si < s1; si++ {
			end := len(r.data)
			if si+1 < len(starts) {
				end = starts[si+1]
			}
			fn(shard, si, starts[si], end)
		}
	})
}

// ChargeTree charges `times` aggregation-tree operations (segmented minima,
// per-group decision gathering, label broadcasts along sorted groups).
func (m *Sim) ChargeTree(times int) {
	m.rounds += times * m.TreeRounds()
	m.treeOps += times
	m.met.rounds.Add(int64(times * m.TreeRounds()))
	m.met.treeOps.Add(int64(times))
}

// ChargeRounds charges raw rounds (used for fixed-cost steps such as the
// single-round sampling-outcome exchange of Theorem 8.1).
func (m *Sim) ChargeRounds(r int) {
	m.rounds += r
	m.met.rounds.Add(int64(r))
}
