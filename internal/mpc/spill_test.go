package mpc

import (
	"context"
	"reflect"
	"testing"

	"mpcspanner/internal/graph"
)

// TestSpilledBuildBitIdentical is the out-of-core determinism contract at
// the driver level: a build under a tight memory budget — every global sort
// external, every pass streamed through run files — must reproduce the
// unbudgeted build bit for bit (spanner edges and the full simulated cost
// profile) at every worker count, for both sort families (radix-keyed and
// the comparator fallback).
func TestSpilledBuildBitIdentical(t *testing.T) {
	t.Parallel()
	graphs := map[string]*graph.Graph{
		"gnp":  graph.Connectify(graph.GNP(3000, 8/3000.0, graph.UniformWeight(1, 100), 11), 50),
		"grid": graph.Grid(40, 40, graph.UniformWeight(1, 9), 3),
	}
	const (
		k, tk  = 8, 3
		seed   = 42
		gamma  = 0.5
		budget = 64 << 10 // far below the ~670KB tuple footprint: forces spilling
	)
	for name, g := range graphs {
		for _, keyed := range []bool{true, false} {
			enc := newKeyEncoding(g, 0)
			encName := "keyed"
			if !keyed {
				enc = nil // comparator fallback
				encName = "less"
			}
			ref, err := buildSpanner(context.Background(), g, k, tk, seed, Options{Gamma: gamma}, enc)
			if err != nil {
				t.Fatalf("%s/%s resident build: %v", name, encName, err)
			}
			if ref.SpilledBytes != 0 || ref.MemoryBudget != 0 {
				t.Fatalf("%s/%s resident build reports spilling: %+v", name, encName, ref)
			}
			for _, workers := range []int{1, 3, 0} {
				got, err := buildSpanner(context.Background(), g, k, tk, seed,
					Options{Gamma: gamma, Workers: workers, MemoryBudget: budget}, enc)
				if err != nil {
					t.Fatalf("%s/%s spilled build (workers=%d): %v", name, encName, workers, err)
				}
				if got.SpilledBytes == 0 || got.SpillRuns == 0 {
					t.Errorf("%s/%s workers=%d: budget %d did not spill (%+v)",
						name, encName, workers, budget, got)
				}
				if got.MemoryBudget != budget {
					t.Errorf("%s/%s workers=%d: MemoryBudget = %d, want %d",
						name, encName, workers, got.MemoryBudget, budget)
				}
				if !reflect.DeepEqual(got.EdgeIDs, ref.EdgeIDs) {
					t.Errorf("%s/%s workers=%d: spilled spanner differs from resident (%d vs %d edges)",
						name, encName, workers, len(got.EdgeIDs), len(ref.EdgeIDs))
				}
				if got.Rounds != ref.Rounds || got.Iterations != ref.Iterations ||
					got.Epochs != ref.Epochs || got.Sorts != ref.Sorts ||
					got.TreeOps != ref.TreeOps || got.TuplesMoved != ref.TuplesMoved ||
					got.PeakMachineLoad != ref.PeakMachineLoad ||
					got.PeakTotalTuples != ref.PeakTotalTuples {
					t.Errorf("%s/%s workers=%d: cost profile diverged:\nspilled:  %+v\nresident: %+v",
						name, encName, workers, got, ref)
				}
			}
		}
	}
}
