package mpc

import (
	"encoding/binary"
	"math"

	"mpcspanner/internal/extmem"
	"mpcspanner/internal/par"
)

// tupleStore is the pluggable backing store of a Sim: where the simulated
// cluster's tuples physically live. The resident store is today's behavior
// — one heap slice plus a reusable scratch arena, zero overhead over the
// pre-store simulator. The spilling store keeps tuples in
// budget-bounded extmem run files. Every operation is order-preserving and
// bit-deterministic across implementations and worker counts, which is
// what lets a budgeted build reproduce an unbudgeted one exactly.
type tupleStore interface {
	len() int
	loadFrom(hint int, fill func(emit func(Tuple))) error
	sortLess(less func(a, b *Tuple) bool) error
	sortKey(key func(*Tuple) uint64) error
	scan(fn func(*Tuple)) error
	update(fn func(*Tuple)) error
	filter(keep func(*Tuple) bool) error
	segments(same func(a, b *Tuple) bool, fn func(shard int, seg []Tuple)) error
	filterSegments(same func(a, b *Tuple) bool, decide func(seg []Tuple, keep []bool)) error
	close() error
}

// tupleCodec is the on-disk record format of a spilled Tuple: 28
// little-endian bytes, field for field. A pure function of the tuple, so
// spill round-trips are exact (weights travel as IEEE-754 bit patterns).
var tupleCodec = extmem.Codec[Tuple]{
	Size: 28,
	Encode: func(dst []byte, t *Tuple) {
		binary.LittleEndian.PutUint32(dst[0:], uint32(t.Src))
		binary.LittleEndian.PutUint32(dst[4:], uint32(t.Dst))
		binary.LittleEndian.PutUint32(dst[8:], uint32(t.CSrc))
		binary.LittleEndian.PutUint32(dst[12:], uint32(t.CDst))
		binary.LittleEndian.PutUint64(dst[16:], math.Float64bits(t.W))
		binary.LittleEndian.PutUint32(dst[24:], uint32(t.Orig))
	},
	Decode: func(src []byte, t *Tuple) {
		t.Src = int32(binary.LittleEndian.Uint32(src[0:]))
		t.Dst = int32(binary.LittleEndian.Uint32(src[4:]))
		t.CSrc = int32(binary.LittleEndian.Uint32(src[8:]))
		t.CDst = int32(binary.LittleEndian.Uint32(src[12:]))
		t.W = math.Float64frombits(binary.LittleEndian.Uint64(src[16:]))
		t.Orig = int32(binary.LittleEndian.Uint32(src[24:]))
	},
}

// residentStore keeps every tuple in one backing slice; machine i owns the
// i-th contiguous block of at most S tuples (the canonical balanced
// placement every [GSZ11] sort re-establishes). The scratch arena below is
// sized on first use and reused across rounds, so the steady-state
// primitives allocate nothing. Buffers never shrink — the tuple count only
// decreases after load, so first-round sizing is the high-water mark.
type residentStore struct {
	workers int
	data    []Tuple

	mask    []bool          // filter/Keep compaction mask
	sortBuf []Tuple         // merge/permutation scratch for the per-round sorts
	keys    []uint64        // sortKey: extracted keys
	idx     []uint32        // sortKey: permutation carrier
	sorter  par.RadixSorter // retained radix ping-pong buffers + histograms
	isStart []bool          // segmentStarts boundary flags
	starts  []int           // segmentStarts result backing store
}

func (r *residentStore) len() int { return len(r.data) }

func (r *residentStore) loadFrom(hint int, fill func(emit func(Tuple))) error {
	if cap(r.data) < hint {
		r.data = make([]Tuple, 0, hint)
	}
	r.data = r.data[:0]
	fill(func(t Tuple) { r.data = append(r.data, t) })
	return nil
}

func (r *residentStore) sortLess(less func(a, b *Tuple) bool) error {
	if cap(r.sortBuf) < len(r.data) {
		r.sortBuf = make([]Tuple, len(r.data))
	}
	par.SortStableBuf(r.workers, r.data, r.sortBuf[:len(r.data)], less)
	return nil
}

func (r *residentStore) sortKey(key func(t *Tuple) uint64) error {
	n := len(r.data)
	if cap(r.sortBuf) < n {
		r.sortBuf = make([]Tuple, n)
	}
	if cap(r.keys) < n {
		r.keys = make([]uint64, n)
		r.idx = make([]uint32, n)
	}
	keys, idx := r.keys[:n], r.idx[:n]
	if r.workers <= 1 {
		for i := range r.data {
			keys[i] = key(&r.data[i])
			idx[i] = uint32(i)
		}
	} else {
		par.For(r.workers, n, func(i int) {
			keys[i] = key(&r.data[i])
			idx[i] = uint32(i)
		})
	}
	r.sorter.Sort(r.workers, keys, idx)
	// Apply the permutation through the retained tuple scratch, then swap
	// the backing stores (ping-pong; no copy back).
	dst := r.sortBuf[:n]
	if r.workers <= 1 {
		for i, j := range idx {
			dst[i] = r.data[j]
		}
	} else {
		par.For(r.workers, n, func(i int) { dst[i] = r.data[idx[i]] })
	}
	r.data, r.sortBuf = dst, r.data[:cap(r.data)]
	return nil
}

func (r *residentStore) scan(fn func(*Tuple)) error {
	for i := range r.data {
		fn(&r.data[i])
	}
	return nil
}

func (r *residentStore) update(fn func(*Tuple)) error {
	par.For(r.workers, len(r.data), func(i int) { fn(&r.data[i]) })
	return nil
}

func (r *residentStore) filter(keep func(*Tuple) bool) error {
	mask := r.maskScratch(len(r.data))
	if r.workers <= 1 {
		for i := range r.data {
			mask[i] = keep(&r.data[i])
		}
	} else {
		par.For(r.workers, len(r.data), func(i int) { mask[i] = keep(&r.data[i]) })
	}
	r.keep(mask)
	return nil
}

// keep retains exactly the tuples whose mask entry is true, preserving
// order. Survivors shift left in place; nothing is reallocated.
func (r *residentStore) keep(mask []bool) {
	if len(mask) != len(r.data) {
		panic("mpc: Keep mask length mismatch")
	}
	w := 0
	for i := range r.data {
		if mask[i] {
			if w != i {
				r.data[w] = r.data[i]
			}
			w++
		}
	}
	r.data = r.data[:w]
}

func (r *residentStore) maskScratch(n int) []bool {
	if cap(r.mask) < n {
		r.mask = make([]bool, n)
	}
	return r.mask[:n]
}

// segmentStarts returns the start index of every maximal run of
// consecutive tuples for which sameKey holds between neighbors. Boundary
// detection is a local comparison with the left neighbor, so it
// parallelizes over the machine blocks; the returned starts are in
// increasing order and independent of the worker count.
func (r *residentStore) segmentStarts(sameKey func(a, b *Tuple) bool) []int {
	n := len(r.data)
	if n == 0 {
		return nil
	}
	if cap(r.isStart) < n {
		r.isStart = make([]bool, n)
		r.starts = make([]int, 0, n)
	}
	isStart := r.isStart[:n]
	isStart[0] = true
	if r.workers <= 1 {
		for i := 0; i < n-1; i++ {
			isStart[i+1] = !sameKey(&r.data[i], &r.data[i+1])
		}
	} else {
		par.For(r.workers, n-1, func(i int) {
			isStart[i+1] = !sameKey(&r.data[i], &r.data[i+1])
		})
	}
	starts := r.starts[:0]
	for i, s := range isStart {
		if s {
			starts = append(starts, i)
		}
	}
	r.starts = starts
	return starts
}

func (r *residentStore) segments(same func(a, b *Tuple) bool, fn func(shard int, seg []Tuple)) error {
	starts := r.segmentStarts(same)
	data := r.data
	par.ForShard(r.workers, len(starts), func(shard, s0, s1 int) {
		for si := s0; si < s1; si++ {
			end := len(data)
			if si+1 < len(starts) {
				end = starts[si+1]
			}
			fn(shard, data[starts[si]:end])
		}
	})
	return nil
}

func (r *residentStore) filterSegments(same func(a, b *Tuple) bool, decide func(seg []Tuple, keep []bool)) error {
	starts := r.segmentStarts(same)
	data := r.data
	mask := r.maskScratch(len(data))
	for i := range mask {
		mask[i] = false
	}
	par.ForShard(r.workers, len(starts), func(_, s0, s1 int) {
		for si := s0; si < s1; si++ {
			end := len(data)
			if si+1 < len(starts) {
				end = starts[si+1]
			}
			decide(data[starts[si]:end], mask[starts[si]:end])
		}
	})
	r.keep(mask)
	return nil
}

func (r *residentStore) close() error { return nil }

// spillStore adapts extmem.Store to the tupleStore interface: everything
// but the trivial delegation — budgets, run files, external merges — lives
// in internal/extmem.
type spillStore struct {
	ext *extmem.Store[Tuple]
}

func newSpillStore(budget int64, workers int, met *extmem.Metrics) *spillStore {
	return &spillStore{ext: extmem.NewStore(tupleCodec, extmem.Options{
		Budget:  budget,
		Workers: workers,
		Metrics: met,
	})}
}

func (s *spillStore) len() int { return s.ext.Len() }
func (s *spillStore) loadFrom(hint int, fill func(emit func(Tuple))) error {
	return s.ext.LoadFrom(hint, fill)
}
func (s *spillStore) sortLess(less func(a, b *Tuple) bool) error { return s.ext.SortLess(less) }
func (s *spillStore) sortKey(key func(*Tuple) uint64) error      { return s.ext.SortKey(key) }
func (s *spillStore) scan(fn func(*Tuple)) error                 { return s.ext.Scan(fn) }
func (s *spillStore) update(fn func(*Tuple)) error               { return s.ext.Update(fn) }
func (s *spillStore) filter(keep func(*Tuple) bool) error        { return s.ext.Filter(keep) }
func (s *spillStore) segments(same func(a, b *Tuple) bool, fn func(shard int, seg []Tuple)) error {
	return s.ext.Segments(same, fn)
}
func (s *spillStore) filterSegments(same func(a, b *Tuple) bool, decide func(seg []Tuple, keep []bool)) error {
	return s.ext.FilterSegments(same, decide)
}
func (s *spillStore) close() error { return s.ext.Close() }
