package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
)

// WriteProm encodes the registry in the Prometheus text exposition format
// (version 0.0.4): one `# TYPE` line per family, cumulative `_bucket{le=…}`
// series plus `_sum` and `_count` per histogram. Output is sorted by metric
// name (via Snapshot), so equal states encode byte-identically.
func (r *Registry) WriteProm(w io.Writer) error {
	return r.Snapshot().WriteProm(w)
}

// WriteProm encodes the snapshot in the Prometheus text exposition format.
func (s Snapshot) WriteProm(w io.Writer) error {
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", c.Name, c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", g.Name, g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", h.Name); err != nil {
			return err
		}
		cum := uint64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.Name, promFloat(bound), cum); err != nil {
				return err
			}
		}
		if len(h.Counts) > len(h.Bounds) {
			cum += h.Counts[len(h.Bounds)]
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.Name, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", h.Name, promFloat(h.Sum), h.Name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promFloat formats a float the way Prometheus expects: shortest
// round-trippable decimal, "+Inf"/"-Inf" for infinities.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON encodes the registry snapshot as indented JSON, sorted by
// metric name within each section.
func (r *Registry) WriteJSON(w io.Writer) error {
	return r.Snapshot().WriteJSON(w)
}

// WriteJSON encodes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format — the `/metrics` endpoint. Append `?format=json` for the JSON
// encoding instead.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w)
	})
}

var expvarPublished sync.Map // name -> bool

// PublishExpvar publishes the registry's snapshot under name in the
// process-wide expvar namespace (visible at /debug/vars alongside pprof).
// The variable re-snapshots on every read. Publishing the same name twice
// replaces nothing and does not panic — the first registration wins, which
// keeps repeated CLI invocations inside one test binary safe.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	if _, loaded := expvarPublished.LoadOrStore(name, true); loaded {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
