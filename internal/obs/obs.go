// Package obs is the repository's observability subsystem: a
// concurrency-safe registry of named counters, gauges and fixed-bucket
// histograms plus a lightweight span tracer, built on nothing but the
// standard library. It exists so every layer that embodies the paper's cost
// model — the simulated MPC cluster (rounds, tuple volume, per-machine
// load), the spanner engine (phases, cluster counts), the serving oracle
// (hit/miss/latency) and the parallel-execution pool — reports into one
// exposition surface instead of each inventing its own counters.
//
// Design rules:
//
//   - The mutation hot path is lock-free: Counter.Add / Gauge.Set /
//     Histogram.Observe are a handful of atomic operations and allocate
//     nothing, so instrumentation never perturbs the allocation-free hot
//     paths pinned by the bench regression gate.
//   - Every metric type is nil-safe: calling any mutation or read method on
//     a nil *Counter, *Gauge, *Histogram, *Registry or *Tracer is a no-op
//     (or zero value), so uninstrumented runs carry nil handles and pay one
//     predictable branch per call — no conditional wiring at call sites.
//   - Reads are deterministic: Snapshot sorts every section by metric name,
//     so two snapshots of equal state encode byte-identically (the golden
//     encoder tests rely on this).
//
// Registration is get-or-create: asking for an existing name returns the
// same handle, so layers sharing one registry (a facade Build feeding a
// Serve session, several oracles behind one exposition endpoint) aggregate
// naturally, Prometheus-style. Registering one name as two different metric
// types panics — that is a programming error, not a runtime condition.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. The zero value is not usable; create one
// with NewRegistry. A nil *Registry is a valid "observability disabled"
// value: its methods return nil handles whose mutations are no-ops.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFree(name, "counter")
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFree(name, "gauge")
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds (ascending; an implicit +Inf overflow bucket
// is always appended) on first use. A later call with different bounds
// returns the originally registered histogram unchanged. Returns nil (a
// no-op handle) on a nil registry; panics on unsorted or empty bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	r.checkFree(name, "histogram")
	if len(bounds) == 0 {
		panic("obs: histogram " + name + " needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram " + name + " bounds must be strictly ascending")
		}
	}
	h := &Histogram{
		name:   name,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	r.histograms[name] = h
	return h
}

// checkFree panics when name is already registered as another metric type.
// Caller holds r.mu.
func (r *Registry) checkFree(name, as string) {
	if _, ok := r.counters[name]; ok {
		panic("obs: " + name + " already registered as a counter, requested as " + as)
	}
	if _, ok := r.gauges[name]; ok {
		panic("obs: " + name + " already registered as a gauge, requested as " + as)
	}
	if _, ok := r.histograms[name]; ok {
		panic("obs: " + name + " already registered as a histogram, requested as " + as)
	}
}

// Counter is a monotonically increasing int64. The zero value of the nil
// pointer is the disabled handle; obtain live ones from Registry.Counter.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter by n. No-op on a nil handle.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil handle.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the registered name ("" on a nil handle).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is an int64 that can move both ways. Obtain live handles from
// Registry.Gauge; a nil *Gauge is the disabled handle.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set stores v. No-op on a nil handle.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by n (negative to decrease). No-op on a nil handle.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Inc moves the gauge up by one — the enter half of occupancy gauges
// (in-flight requests, queue depth). No-op on a nil handle.
func (g *Gauge) Inc() { g.Add(1) }

// Dec moves the gauge down by one — the leave half of occupancy gauges.
// No-op on a nil handle.
func (g *Gauge) Dec() { g.Add(-1) }

// SetMax raises the gauge to v if v exceeds the current value — the
// watermark operation behind peak-load gauges. No-op on a nil handle.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on a nil handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Name returns the registered name ("" on a nil handle).
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Histogram counts float64 observations into fixed buckets with inclusive
// upper bounds (Prometheus "le" semantics) plus an implicit +Inf overflow
// bucket. Observe is a binary search plus three atomic updates; it never
// allocates and never locks.
type Histogram struct {
	name   string
	bounds []float64 // finite upper bounds, ascending
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records v. No-op on a nil handle. NaN observations are dropped
// (they would poison the sum and fit no bucket).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: inclusive "le"
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Name returns the registered name ("" on a nil handle).
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// snap reads the histogram into a HistogramSnap. Per-bucket reads are
// individually atomic; a snapshot taken during concurrent observation is a
// consistent-enough exposition (standard for lock-free histograms).
func (h *Histogram) snap() HistogramSnap {
	s := HistogramSnap{
		Name:   h.name,
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// CounterSnap is one counter in a Snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnap is one gauge in a Snapshot.
type GaugeSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramSnap is one histogram in a Snapshot: Counts[i] holds the
// observations with value <= Bounds[i]; the final entry (len(Bounds)) is the
// +Inf overflow bucket. Counts are per-bucket, not cumulative — the
// Prometheus encoder accumulates on the way out.
type HistogramSnap struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// inside the bucket holding the rank, the standard fixed-bucket estimate.
// Ranks landing in the overflow bucket report the largest finite bound (the
// estimate cannot extrapolate past it); an empty histogram reports 0.
func (h HistogramSnap) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	cum := 0.0
	for i, c := range h.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(h.Bounds) {
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		return lo + (h.Bounds[i]-lo)*(rank-prev)/float64(c)
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a deterministic point-in-time read of a registry: every
// section is sorted by metric name, so equal states encode byte-identically.
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters"`
	Gauges     []GaugeSnap     `json:"gauges"`
	Histograms []HistogramSnap `json:"histograms"`
}

// Histogram returns the named histogram's snapshot, or nil when absent.
func (s Snapshot) Histogram(name string) *HistogramSnap {
	for i := range s.Histograms {
		if s.Histograms[i].Name == name {
			return &s.Histograms[i]
		}
	}
	return nil
}

// Counter returns the named counter's value and whether it exists.
func (s Snapshot) Counter(name string) (int64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Gauge returns the named gauge's value and whether it exists.
func (s Snapshot) Gauge(name string) (int64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// Snapshot reads every registered metric. A nil registry snapshots empty.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.histograms))
	for _, h := range r.histograms {
		hists = append(hists, h)
	}
	r.mu.Unlock()

	for _, c := range counters {
		s.Counters = append(s.Counters, CounterSnap{Name: c.name, Value: c.Value()})
	}
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: g.name, Value: g.Value()})
	}
	for _, h := range hists {
		s.Histograms = append(s.Histograms, h.snap())
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// ExpBuckets returns count exponentially spaced bucket bounds starting at
// start and multiplying by factor: the bucket shape for quantities spanning
// orders of magnitude (latencies, tuple volumes). Panics on a non-positive
// start, a factor <= 1, or count < 1.
func ExpBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, count >= 1")
	}
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets spans 250ns..~8s in powers of two — fine enough at the
// bottom to separate cache hits from misses, wide enough at the top for
// cold builds. Shared by every latency histogram so dashboards align.
var LatencyBuckets = ExpBuckets(250e-9, 2, 26)

// SizeBuckets spans 256..~2·10⁹ in powers of two, for tuple volumes, byte
// counts and other cardinalities.
var SizeBuckets = ExpBuckets(256, 2, 24)
