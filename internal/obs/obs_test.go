package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestRegistryGetOrCreate pins the aggregation contract: the same name
// returns the same handle, so layers sharing a registry share series.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total")
	c2 := r.Counter("x_total")
	if c1 != c2 {
		t.Fatal("Counter is not get-or-create")
	}
	g1, g2 := r.Gauge("x_gauge"), r.Gauge("x_gauge")
	if g1 != g2 {
		t.Fatal("Gauge is not get-or-create")
	}
	h1 := r.Histogram("x_hist", []float64{1, 2})
	h2 := r.Histogram("x_hist", []float64{100}) // bounds ignored on re-get
	if h1 != h2 {
		t.Fatal("Histogram is not get-or-create")
	}
	if got := h2.snap().Bounds; len(got) != 2 {
		t.Fatalf("re-registration changed bounds: %v", got)
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("name")
	defer func() {
		if recover() == nil {
			t.Fatal("cross-type re-registration did not panic")
		}
	}()
	r.Gauge("name")
}

// TestNilSafety pins the disabled-handle contract the zero-alloc hot paths
// rely on: every mutation and read on nil handles is a no-op / zero value.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c, g := r.Counter("c"), r.Gauge("g")
	h := r.Histogram("h", LatencyBuckets)
	c.Add(3)
	c.Inc()
	g.Set(7)
	g.Add(1)
	g.SetMax(9)
	h.Observe(1.5)
	if c.Value() != 0 || g.Value() != 0 || c.Name() != "" || g.Name() != "" || h.Name() != "" {
		t.Fatal("nil handles are not inert")
	}
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	r.PublishExpvar("nil-reg")

	var tr *Tracer
	sp := tr.StartSpan("x")
	sp.SetInt("k", 1).End()
	if tr.Spans() != nil || tr.Summary() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer is not inert")
	}
}

// TestNilMetricMutationsAllocNothing proves the disabled handles keep
// instrumented hot paths at 0 allocs/op — the property the bench gate
// depends on once mpc.Sim and the oracle carry metric fields.
func TestNilMetricMutationsAllocNothing(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.SetMax(2)
		h.Observe(3)
		sp := tr.StartSpan("s")
		sp.SetInt("k", 4)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil-handle mutations allocate: %v allocs/op", allocs)
	}
}

// TestLiveMetricMutationsAllocNothing proves the enabled hot path is also
// allocation-free: Observe/Add/SetMax on live handles are pure atomics.
func TestLiveMetricMutationsAllocNothing(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", LatencyBuckets)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.SetMax(2)
		h.Observe(1e-6)
	})
	if allocs != 0 {
		t.Fatalf("live-handle mutations allocate: %v allocs/op", allocs)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10, 100})
	// Inclusive upper bounds (Prometheus le): 1 lands in bucket 0;
	// 1.0000001 in bucket 1; 100 in bucket 2; 100.5 overflows.
	for _, v := range []float64{0.5, 1, 1.0000001, 10, 99.9, 100, 100.5, 1e9, math.NaN()} {
		h.Observe(v)
	}
	s := h.snap()
	want := []uint64{2, 2, 2, 2} // NaN dropped; 100.5 and 1e9 overflow
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d: got %d want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 8 {
		t.Fatalf("count: got %d want 8", s.Count)
	}
	wantSum := 0.5 + 1 + 1.0000001 + 10 + 99.9 + 100 + 100.5 + 1e9
	if math.Abs(s.Sum-wantSum) > 1e-6 {
		t.Fatalf("sum: got %v want %v", s.Sum, wantSum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{10, 20, 30, 40})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i%40) + 0.5) // uniform-ish over (0,40]
	}
	s := h.snap()
	if q := s.Quantile(0); q < 0 || q > 10 {
		t.Fatalf("q0 out of first bucket: %v", q)
	}
	med := s.Quantile(0.5)
	if med < 10 || med > 30 {
		t.Fatalf("median implausible: %v", med)
	}
	if q := s.Quantile(1); q != 40 {
		t.Fatalf("q1: got %v want 40", q)
	}
	// Overflow-bucket ranks clamp to the largest finite bound.
	h2 := r.Histogram("h2", []float64{1})
	h2.Observe(5)
	if q := h2.snap().Quantile(0.99); q != 1 {
		t.Fatalf("overflow quantile: got %v want 1", q)
	}
	var empty HistogramSnap
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile: got %v want 0", q)
	}
}

func TestGaugeSetMax(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("peak")
	g.SetMax(5)
	g.SetMax(3)
	if g.Value() != 5 {
		t.Fatalf("SetMax lowered the watermark: %d", g.Value())
	}
	g.SetMax(9)
	if g.Value() != 9 {
		t.Fatalf("SetMax did not raise: %d", g.Value())
	}
}

// TestConcurrency hammers registration and mutation from many goroutines;
// meaningful under -race, and asserts exact totals after the barrier.
func TestConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines, iters = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				r.Counter("shared_total").Inc()
				r.Gauge("peak").SetMax(int64(id*iters + j))
				r.Histogram("lat", LatencyBuckets).Observe(float64(j) * 1e-6)
				r.Counter("own_total_" + string(rune('a'+id))).Inc()
			}
		}(i)
	}
	wg.Wait()
	s := r.Snapshot()
	if v, _ := s.Counter("shared_total"); v != goroutines*iters {
		t.Fatalf("shared counter: got %d want %d", v, goroutines*iters)
	}
	if v, _ := s.Gauge("peak"); v != goroutines*iters-1 {
		t.Fatalf("peak gauge: got %d want %d", v, goroutines*iters-1)
	}
	h := s.Histogram("lat")
	if h == nil || h.Count != goroutines*iters {
		t.Fatalf("histogram count wrong: %+v", h)
	}
	sumBuckets := uint64(0)
	for _, c := range h.Counts {
		sumBuckets += c
	}
	if sumBuckets != h.Count {
		t.Fatalf("bucket totals %d != count %d", sumBuckets, h.Count)
	}
}

// TestWritePromGolden pins the exposition bytes: deterministic ordering,
// cumulative buckets, +Inf terminator, _sum/_count.
func TestWritePromGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(7)
	r.Counter("a_total").Add(3)
	r.Gauge("load").Set(42)
	h := r.Histogram("lat_seconds", []float64{0.5, 2})
	h.Observe(0.25)
	h.Observe(0.5)
	h.Observe(1)
	h.Observe(99)

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE a_total counter
a_total 3
# TYPE b_total counter
b_total 7
# TYPE load gauge
load 42
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.5"} 2
lat_seconds_bucket{le="2"} 3
lat_seconds_bucket{le="+Inf"} 4
lat_seconds_sum 100.75
lat_seconds_count 4
`
	if sb.String() != want {
		t.Fatalf("prometheus exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

// TestWriteJSONGolden pins the JSON shape consumed by the -metrics dump.
func TestWriteJSONGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total").Add(2)
	r.Gauge("rows").Set(1)
	r.Histogram("h", []float64{1}).Observe(0.5)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	want := `{
  "counters": [
    {
      "name": "hits_total",
      "value": 2
    }
  ],
  "gauges": [
    {
      "name": "rows",
      "value": 1
    }
  ],
  "histograms": [
    {
      "name": "h",
      "bounds": [
        1
      ],
      "counts": [
        1,
        0
      ],
      "count": 1,
      "sum": 0.5
    }
  ]
}
`
	if sb.String() != want {
		t.Fatalf("json exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets: got %v want %v", got, want)
		}
	}
	for _, bad := range []func(){
		func() { ExpBuckets(0, 2, 4) },
		func() { ExpBuckets(1, 1, 4) },
		func() { ExpBuckets(1, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid ExpBuckets args did not panic")
				}
			}()
			bad()
		}()
	}
}
