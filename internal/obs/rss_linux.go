//go:build linux

package obs

import (
	"bytes"
	"os"
	"strconv"
)

// PeakRSSBytes returns the process's peak resident set size (VmHWM from
// /proc/self/status) in bytes, or 0 when it cannot be read. The large-n
// benchmarks report it as a custom metric so the bench baseline pins memory
// as well as speed.
func PeakRSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	// Line format: "VmHWM:    123456 kB".
	i := bytes.Index(data, []byte("VmHWM:"))
	if i < 0 {
		return 0
	}
	fields := bytes.Fields(data[i+len("VmHWM:"):])
	if len(fields) < 1 {
		return 0
	}
	kb, err := strconv.ParseInt(string(fields[0]), 10, 64)
	if err != nil {
		return 0
	}
	return kb * 1024
}
