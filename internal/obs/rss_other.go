//go:build !linux

package obs

// PeakRSSBytes reports 0 on platforms without a /proc peak-RSS counter;
// callers treat 0 as "unknown" and skip the metric.
func PeakRSSBytes() int64 { return 0 }
