package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// maxSpans bounds a Tracer's retained span list. Spans past the cap are
// counted (Dropped) but not stored, so a pathological run degrades the
// trace instead of the process.
const maxSpans = 65536

// Attr is one integer attribute on a span — cluster counts, edge counts,
// iteration indices. Spans carry only int64 attributes: every quantity in
// the paper's cost model is a count, and avoiding interface{} keeps span
// finish allocation-predictable.
type Attr struct {
	Key string `json:"key"`
	Val int64  `json:"val"`
}

// Span is one finished timed region.
type Span struct {
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// Tracer collects spans from the build pipeline. A nil *Tracer is the
// disabled handle: StartSpan returns nil and every method no-ops, so
// instrumented code carries one tracer pointer and no conditionals.
type Tracer struct {
	mu      sync.Mutex
	spans   []Span
	dropped int64
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// ActiveSpan is an in-flight span created by StartSpan. Methods are
// nil-safe; End records the span into the tracer.
type ActiveSpan struct {
	t    *Tracer
	span Span
}

// StartSpan opens a named span stamped with the current time. On a nil
// tracer it returns nil — a valid ActiveSpan handle whose methods no-op —
// and performs no allocation and no clock read.
func (t *Tracer) StartSpan(name string) *ActiveSpan {
	if t == nil {
		return nil
	}
	return &ActiveSpan{t: t, span: Span{Name: name, Start: time.Now()}}
}

// SetInt attaches an integer attribute; chainable. No-op on a nil span.
func (s *ActiveSpan) SetInt(key string, v int64) *ActiveSpan {
	if s != nil {
		s.span.Attrs = append(s.span.Attrs, Attr{Key: key, Val: v})
	}
	return s
}

// End stamps the duration and records the span. No-op on a nil span.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.span.Duration = time.Since(s.span.Start)
	s.t.Record(s.span)
}

// Record appends a pre-built span — the bridge used by the facade to mirror
// progress checkpoints into the trace. No-op on a nil tracer.
func (t *Tracer) Record(span Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxSpans {
		t.dropped++
		return
	}
	t.spans = append(t.spans, span)
}

// Spans returns a copy of the recorded spans in record order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Dropped reports how many spans were discarded past the retention cap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SpanSummary aggregates all spans sharing a name.
type SpanSummary struct {
	Name  string        `json:"name"`
	Count int           `json:"count"`
	Total time.Duration `json:"total_ns"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Summary aggregates spans by name, sorted by name.
func (t *Tracer) Summary() []SpanSummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	byName := make(map[string]*SpanSummary)
	for _, s := range t.spans {
		agg, ok := byName[s.Name]
		if !ok {
			agg = &SpanSummary{Name: s.Name, Min: s.Duration, Max: s.Duration}
			byName[s.Name] = agg
		}
		agg.Count++
		agg.Total += s.Duration
		if s.Duration < agg.Min {
			agg.Min = s.Duration
		}
		if s.Duration > agg.Max {
			agg.Max = s.Duration
		}
	}
	t.mu.Unlock()
	out := make([]SpanSummary, 0, len(byName))
	for _, agg := range byName {
		out = append(out, *agg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteJSON encodes the full span list as indented JSON.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Spans())
}

// WriteSummary writes the per-name aggregate table as aligned text.
func (t *Tracer) WriteSummary(w io.Writer) error {
	for _, s := range t.Summary() {
		if _, err := fmt.Fprintf(w, "%-28s count=%-6d total=%-12s min=%-12s max=%s\n",
			s.Name, s.Count, s.Total, s.Min, s.Max); err != nil {
			return err
		}
	}
	if d := t.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, "(%d spans dropped past retention cap)\n", d); err != nil {
			return err
		}
	}
	return nil
}
