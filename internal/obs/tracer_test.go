package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerSpansAndSummary(t *testing.T) {
	tr := NewTracer()
	for i := 0; i < 3; i++ {
		sp := tr.StartSpan("grow")
		sp.SetInt("iter", int64(i)).SetInt("clusters", int64(100-i))
		sp.End()
	}
	tr.StartSpan("phase2").End()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	if spans[0].Name != "grow" || len(spans[0].Attrs) != 2 || spans[0].Attrs[0] != (Attr{Key: "iter", Val: 0}) {
		t.Fatalf("first span malformed: %+v", spans[0])
	}
	sum := tr.Summary()
	if len(sum) != 2 || sum[0].Name != "grow" || sum[0].Count != 3 || sum[1].Name != "phase2" || sum[1].Count != 1 {
		t.Fatalf("summary malformed: %+v", sum)
	}
	if sum[0].Min > sum[0].Max || sum[0].Total < sum[0].Max {
		t.Fatalf("summary aggregates inconsistent: %+v", sum[0])
	}
}

func TestTracerRecordBridge(t *testing.T) {
	tr := NewTracer()
	tr.Record(Span{Name: "checkpoint", Start: time.Unix(0, 0), Duration: time.Millisecond,
		Attrs: []Attr{{Key: "supernodes", Val: 12}}})
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Name != "checkpoint" || spans[0].Attrs[0].Val != 12 {
		t.Fatalf("recorded span malformed: %+v", spans)
	}
}

func TestTracerRetentionCap(t *testing.T) {
	tr := NewTracer()
	for i := 0; i < maxSpans+10; i++ {
		tr.Record(Span{Name: "s"})
	}
	if got := len(tr.Spans()); got != maxSpans {
		t.Fatalf("retained %d spans, want cap %d", got, maxSpans)
	}
	if tr.Dropped() != 10 {
		t.Fatalf("dropped %d, want 10", tr.Dropped())
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				sp := tr.StartSpan("p")
				sp.SetInt("j", int64(j))
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 8*200 {
		t.Fatalf("got %d spans, want %d", got, 8*200)
	}
}

func TestTracerWriters(t *testing.T) {
	tr := NewTracer()
	tr.StartSpan("alpha").End()
	var js, txt strings.Builder
	if err := tr.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"alpha"`) {
		t.Fatalf("json trace missing span name: %s", js.String())
	}
	if err := tr.WriteSummary(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "alpha") || !strings.Contains(txt.String(), "count=1") {
		t.Fatalf("summary text malformed: %s", txt.String())
	}
}
