package oracle

import (
	"fmt"
	"sync"
	"testing"

	"mpcspanner/internal/dist"
	"mpcspanner/internal/graph"
	"mpcspanner/internal/obs"
)

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	return graph.Connectify(graph.GNP(4000, 8/4000.0, graph.UniformWeight(1, 100), 1), 50)
}

// largeGraphs memoizes the construction-scale bench graph across engine
// sub-benchmarks: generating the 6M-edge instance costs far more than
// filling a row, and both engines must see the identical graph.
var largeGraphs sync.Map

func largeOracleGraph(n int) *graph.Graph {
	if g, ok := largeGraphs.Load(n); ok {
		return g.(*graph.Graph)
	}
	g := graph.Connectify(graph.GNP(n, 12/float64(n), graph.UniformWeight(1, 100), 7), 50)
	largeGraphs.Store(n, g)
	return g
}

// BenchmarkOracleRowFill is the serving-layer companion to the dist
// package's BenchmarkSSSP, gated by BENCH_large.json (bench-large CI job,
// not the PR gate): every iteration queries a source the cache has never
// seen, so each op is one cold full-row fill through the oracle's
// single-flight + cache machinery on a 1M-vertex sparse graph. Reports
// relaxable arcs per second and peak RSS as custom metrics.
func BenchmarkOracleRowFill(b *testing.B) {
	for _, engine := range []dist.Engine{dist.EngineHeap, dist.EngineDelta} {
		b.Run(fmt.Sprintf("n=1M/engine=%s", engine), func(b *testing.B) {
			g := largeOracleGraph(1_000_000)
			o := New(g, Options{SSSP: engine, MaxRows: 8})
			o.Row(0) // warm the solver scratch pool
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if r := o.Row((1 + i*7919) % g.N()); len(r) != g.N() {
					b.Fatal("bad row")
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(2*g.M())*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
			if rss := obs.PeakRSSBytes(); rss > 0 {
				b.ReportMetric(float64(rss), "peak_rss_bytes")
			}
		})
	}
}

// BenchmarkOracleColdVsWarm times the same Zipf batch against a fresh cache
// (every distinct source pays a Dijkstra) and a pre-warmed one (every pair is
// a row lookup). The gap is the serving-layer speedup the §7 oracle regime
// is about.
func BenchmarkOracleColdVsWarm(b *testing.B) {
	g := benchGraph(b)
	pairs := ZipfWorkload(g.N(), 2000, 1.2, 7)

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			o := New(g, Options{MaxRows: 4096})
			o.QueryMany(pairs)
		}
	})
	b.Run("warm", func(b *testing.B) {
		o := New(g, Options{MaxRows: 4096})
		o.QueryMany(pairs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o.QueryMany(pairs)
		}
	})
}

// BenchmarkQueryMany races the warm oracle against the pre-PR behavior —
// one dist.Dijkstra per query — on the same Zipf workload. The acceptance
// bar is ≥ 5× for the oracle; TestQueryManyMatchesNaive pins bit-identical
// results.
func BenchmarkQueryMany(b *testing.B) {
	g := benchGraph(b)
	pairs := ZipfWorkload(g.N(), 500, 1.2, 11)

	b.Run("naive-dijkstra", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range pairs {
				_ = dist.Dijkstra(g, p.U)[p.V]
			}
		}
	})
	b.Run("oracle-warm", func(b *testing.B) {
		o := New(g, Options{MaxRows: 4096})
		o.QueryMany(pairs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o.QueryMany(pairs)
		}
	})
}

// TestQueryManyMatchesNaive is the bit-identity companion to
// BenchmarkQueryMany: the cached batch path must return exactly what naive
// per-query Dijkstra returns.
func TestQueryManyMatchesNaive(t *testing.T) {
	g := graph.Connectify(graph.GNP(300, 8/300.0, graph.UniformWeight(1, 100), 1), 50)
	pairs := ZipfWorkload(g.N(), 400, 1.2, 11)
	o := New(g, Options{})
	got := o.QueryMany(pairs)
	for i, p := range pairs {
		want := dist.Dijkstra(g, p.U)[p.V]
		if got[i] != want {
			t.Fatalf("pair %d (%d,%d): oracle %v != naive %v", i, p.U, p.V, got[i], want)
		}
	}
}
