package oracle

import (
	"testing"

	"mpcspanner/internal/dist"
	"mpcspanner/internal/graph"
)

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	return graph.Connectify(graph.GNP(4000, 8/4000.0, graph.UniformWeight(1, 100), 1), 50)
}

// BenchmarkOracleColdVsWarm times the same Zipf batch against a fresh cache
// (every distinct source pays a Dijkstra) and a pre-warmed one (every pair is
// a row lookup). The gap is the serving-layer speedup the §7 oracle regime
// is about.
func BenchmarkOracleColdVsWarm(b *testing.B) {
	g := benchGraph(b)
	pairs := ZipfWorkload(g.N(), 2000, 1.2, 7)

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			o := New(g, Options{MaxRows: 4096})
			o.QueryMany(pairs)
		}
	})
	b.Run("warm", func(b *testing.B) {
		o := New(g, Options{MaxRows: 4096})
		o.QueryMany(pairs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o.QueryMany(pairs)
		}
	})
}

// BenchmarkQueryMany races the warm oracle against the pre-PR behavior —
// one dist.Dijkstra per query — on the same Zipf workload. The acceptance
// bar is ≥ 5× for the oracle; TestQueryManyMatchesNaive pins bit-identical
// results.
func BenchmarkQueryMany(b *testing.B) {
	g := benchGraph(b)
	pairs := ZipfWorkload(g.N(), 500, 1.2, 11)

	b.Run("naive-dijkstra", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range pairs {
				_ = dist.Dijkstra(g, p.U)[p.V]
			}
		}
	})
	b.Run("oracle-warm", func(b *testing.B) {
		o := New(g, Options{MaxRows: 4096})
		o.QueryMany(pairs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o.QueryMany(pairs)
		}
	})
}

// TestQueryManyMatchesNaive is the bit-identity companion to
// BenchmarkQueryMany: the cached batch path must return exactly what naive
// per-query Dijkstra returns.
func TestQueryManyMatchesNaive(t *testing.T) {
	g := graph.Connectify(graph.GNP(300, 8/300.0, graph.UniformWeight(1, 100), 1), 50)
	pairs := ZipfWorkload(g.N(), 400, 1.2, 11)
	o := New(g, Options{})
	got := o.QueryMany(pairs)
	for i, p := range pairs {
		want := dist.Dijkstra(g, p.U)[p.V]
		if got[i] != want {
			t.Fatalf("pair %d (%d,%d): oracle %v != naive %v", i, p.U, p.V, got[i], want)
		}
	}
}
