package oracle

import "sort"

// RowSource serves precomputed distance rows — typically the frozen row
// section of a saved artifact. FrozenRow returns the full distance row from
// src and true, or ok=false when src is not precomputed. Implementations
// must be safe for concurrent use and must return rows of exactly n
// float64s that are never mutated afterwards; the oracle hands them to
// callers directly.
type RowSource interface {
	FrozenRow(src int) ([]float64, bool)
}

// SnapshotRows returns the rows currently resident in o's cache, sorted by
// source — src[i]'s distance row is rows[i]. The row slices are shared with
// the cache (and with any callers holding them): treat them as read-only.
// Sessions use this to persist a warm cache into an artifact, so a restarted
// replica starts with its hot set frozen instead of cold. A package-level
// function rather than a method so the facade's Oracle alias doesn't grow
// public surface.
func SnapshotRows(o *Oracle) (srcs []int, rows [][]float64) {
	for i := range o.shards {
		sh := &o.shards[i]
		sh.mu.Lock()
		for src, e := range sh.rows {
			srcs = append(srcs, src)
			rows = append(rows, e.row)
		}
		sh.mu.Unlock()
	}
	sort.Sort(&rowSort{srcs, rows})
	return srcs, rows
}

type rowSort struct {
	srcs []int
	rows [][]float64
}

func (s *rowSort) Len() int           { return len(s.srcs) }
func (s *rowSort) Less(i, j int) bool { return s.srcs[i] < s.srcs[j] }
func (s *rowSort) Swap(i, j int) {
	s.srcs[i], s.srcs[j] = s.srcs[j], s.srcs[i]
	s.rows[i], s.rows[j] = s.rows[j], s.rows[i]
}
