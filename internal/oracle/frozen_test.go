package oracle

import (
	"context"
	"math"
	"testing"

	"mpcspanner/internal/dist"
	"mpcspanner/internal/graph"
)

// mapRows is a test RowSource backed by a map.
type mapRows map[int][]float64

func (m mapRows) FrozenRow(src int) ([]float64, bool) {
	row, ok := m[src]
	return row, ok
}

func frozenTestGraph(seed uint64) *graph.Graph {
	return graph.Connectify(graph.GNP(200, 0.04, graph.UniformWeight(1, 10), seed), 10)
}

// TestFrozenServesAheadOfCache pins the frozen-row contract: a frozen source
// is answered without a Dijkstra (no miss), counts as a hit, and never
// becomes resident cache state; unfrozen sources fall through untouched.
func TestFrozenServesAheadOfCache(t *testing.T) {
	g := frozenTestGraph(1)
	frozen := mapRows{
		3: dist.Dijkstra(g, 3),
		7: dist.Dijkstra(g, 7),
	}
	o := New(g, Options{Frozen: frozen})

	for _, src := range []int{3, 7, 3} {
		got := o.Row(src)
		want := frozen[src]
		for v := range want {
			if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
				t.Fatalf("frozen row %d entry %d: got %v, want %v", src, v, got[v], want[v])
			}
		}
	}
	st := o.Stats()
	if st.Hits != 3 || st.Misses != 0 || st.Resident != 0 {
		t.Fatalf("after frozen-only queries: %+v, want 3 hits, 0 misses, 0 resident", st)
	}

	// An unfrozen source falls through to the normal miss path.
	want := dist.Dijkstra(g, 11)
	got := o.Row(11)
	for v := range want {
		if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
			t.Fatalf("fallthrough row entry %d: got %v, want %v", v, got[v], want[v])
		}
	}
	st = o.Stats()
	if st.Misses != 1 || st.Resident != 1 {
		t.Fatalf("after fallthrough: %+v, want 1 miss, 1 resident", st)
	}
}

// TestFrozenBatch pins that QueryMany's resident fast pass (peek) also sees
// frozen rows, so a batch over frozen sources runs no Dijkstra at all.
func TestFrozenBatch(t *testing.T) {
	g := frozenTestGraph(2)
	frozen := mapRows{
		0: dist.Dijkstra(g, 0),
		5: dist.Dijkstra(g, 5),
	}
	o := New(g, Options{Frozen: frozen, Workers: 3})
	pairs := []Pair{{0, 10}, {5, 20}, {0, 30}, {5, 40}}
	got := o.QueryMany(pairs)
	for i, p := range pairs {
		if want := frozen[p.U][p.V]; math.Float64bits(got[i]) != math.Float64bits(want) {
			t.Fatalf("pair %d (%d,%d): got %v, want %v", i, p.U, p.V, got[i], want)
		}
	}
	if st := o.Stats(); st.Misses != 0 {
		t.Fatalf("batch over frozen sources ran %d Dijkstras", st.Misses)
	}
}

// TestFrozenCtx pins that the context-aware path serves frozen rows too.
func TestFrozenCtx(t *testing.T) {
	g := frozenTestGraph(3)
	frozen := mapRows{4: dist.Dijkstra(g, 4)}
	o := New(g, Options{Frozen: frozen})
	d, err := o.QueryCtx(context.Background(), 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if want := frozen[4][9]; d != want {
		t.Fatalf("QueryCtx: got %v, want %v", d, want)
	}
}

// TestSnapshotRows pins the save-side contract: the snapshot returns exactly
// the resident rows, sorted by source, sharing the cached slices.
func TestSnapshotRows(t *testing.T) {
	g := frozenTestGraph(4)
	o := New(g, Options{})
	for _, src := range []int{9, 2, 17, 5} {
		o.Row(src)
	}
	srcs, rows := SnapshotRows(o)
	want := []int{2, 5, 9, 17}
	if len(srcs) != len(want) || len(rows) != len(want) {
		t.Fatalf("snapshot size: %d srcs, %d rows, want %d", len(srcs), len(rows), len(want))
	}
	for i, s := range want {
		if srcs[i] != s {
			t.Fatalf("snapshot sources %v, want %v", srcs, want)
		}
		ref := dist.Dijkstra(g, s)
		for v := range ref {
			if math.Float64bits(rows[i][v]) != math.Float64bits(ref[v]) {
				t.Fatalf("snapshot row %d entry %d: got %v, want %v", s, v, rows[i][v], ref[v])
			}
		}
	}
}

// TestSnapshotRowsEmpty pins that a cold oracle snapshots to nothing.
func TestSnapshotRowsEmpty(t *testing.T) {
	o := New(frozenTestGraph(5), Options{})
	srcs, rows := SnapshotRows(o)
	if len(srcs) != 0 || len(rows) != 0 {
		t.Fatalf("cold snapshot: %v, %d rows", srcs, len(rows))
	}
}
