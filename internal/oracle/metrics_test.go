package oracle

import (
	"sync"
	"testing"

	"mpcspanner/internal/obs"
	"mpcspanner/internal/xrand"
)

// TestStatsCoherentWithMetrics pins satellite contract of the obs rewiring:
// Stats() and the registry read the very same atomic counters, so after any
// concurrent workload they tell one story (run under -race in CI). The
// resident gauge closes the books: Resident = Misses - Evictions at
// quiescence.
func TestStatsCoherentWithMetrics(t *testing.T) {
	g := testGraph(t, 150, 17)
	reg := obs.NewRegistry()
	o := New(g, Options{Shards: 4, MaxRows: 16, Metrics: reg})

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.Split(uint64(w), 0x636f6865)
			for i := 0; i < 40; i++ {
				o.Query(rng.Intn(g.N()), rng.Intn(g.N()))
			}
			o.QueryMany(ZipfWorkload(g.N(), 64, 1.1, uint64(w)+5))
		}(w)
	}
	wg.Wait()

	st := o.Stats()
	snap := reg.Snapshot()
	if v, _ := snap.Counter("oracle_row_hits_total"); v != st.Hits {
		t.Fatalf("hits: registry %d, Stats %d", v, st.Hits)
	}
	if v, _ := snap.Counter("oracle_row_misses_total"); v != st.Misses {
		t.Fatalf("misses: registry %d, Stats %d", v, st.Misses)
	}
	if v, _ := snap.Counter("oracle_row_evictions_total"); v != st.Evictions {
		t.Fatalf("evictions: registry %d, Stats %d", v, st.Evictions)
	}
	if v, _ := snap.Gauge("oracle_rows_resident"); v != int64(st.Resident) {
		t.Fatalf("resident: registry %d, Stats %d", v, st.Resident)
	}
	if st.Resident != st.Misses-st.Evictions {
		t.Fatalf("books don't close: resident %d != misses %d - evictions %d",
			st.Resident, st.Misses, st.Evictions)
	}
	// row() times every acquisition that reaches it; QueryMany's resident
	// fast-pass answers from peek without a row() call, so only the
	// scheduling-independent lower bound (every miss goes through row) is
	// stable here.
	if h := snap.Histogram("oracle_row_seconds"); h == nil || int64(h.Count) < st.Misses {
		t.Fatalf("oracle_row_seconds count %+v, want at least the %d misses", h, st.Misses)
	}
}

// TestInstrumentedWarmPathAllocs is the hot-path guard for the serving
// layer: with a live registry attached, a warm single query allocates
// nothing, and a warm QueryMany batch allocates exactly as much as the
// uninstrumented batch path (its output slice and source grouping) — the
// instrumentation itself adds zero.
func TestInstrumentedWarmPathAllocs(t *testing.T) {
	g := testGraph(t, 100, 23)
	pairs := []Pair{{U: 3, V: 9}, {U: 3, V: 50}, {U: 7, V: 1}, {U: 7, V: 99}}

	plain := New(g, Options{Workers: 1})
	instr := New(g, Options{Workers: 1, Metrics: obs.NewRegistry()})
	for _, o := range []*Oracle{plain, instr} {
		o.QueryMany(pairs) // warm every source
	}

	if allocs := testing.AllocsPerRun(20, func() { instr.Query(3, 42) }); allocs > 0 {
		t.Errorf("instrumented warm Query allocated %.1f objects/op, want 0", allocs)
	}

	base := testing.AllocsPerRun(20, func() { plain.QueryMany(pairs) })
	got := testing.AllocsPerRun(20, func() { instr.QueryMany(pairs) })
	if got > base {
		t.Errorf("instrumented warm QueryMany allocates %.1f objects/op, uninstrumented %.1f — instrumentation must add zero", got, base)
	}
}
