package oracle

import (
	"sync"
	"testing"

	"mpcspanner/internal/obs"
	"mpcspanner/internal/xrand"
)

// TestStatsCoherentWithMetrics pins satellite contract of the obs rewiring:
// Stats() and the registry read the very same atomic counters, so after any
// concurrent workload they tell one story (run under -race in CI). The
// resident gauge closes the books: Resident = Misses - Evictions at
// quiescence.
func TestStatsCoherentWithMetrics(t *testing.T) {
	g := testGraph(t, 150, 17)
	reg := obs.NewRegistry()
	o := New(g, Options{Shards: 4, MaxRows: 16, Metrics: reg})

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.Split(uint64(w), 0x636f6865)
			for i := 0; i < 40; i++ {
				o.Query(rng.Intn(g.N()), rng.Intn(g.N()))
			}
			o.QueryMany(ZipfWorkload(g.N(), 64, 1.1, uint64(w)+5))
		}(w)
	}
	wg.Wait()

	st := o.Stats()
	snap := reg.Snapshot()
	if v, _ := snap.Counter("oracle_row_hits_total"); v != st.Hits {
		t.Fatalf("hits: registry %d, Stats %d", v, st.Hits)
	}
	if v, _ := snap.Counter("oracle_row_misses_total"); v != st.Misses {
		t.Fatalf("misses: registry %d, Stats %d", v, st.Misses)
	}
	if v, _ := snap.Counter("oracle_row_evictions_total"); v != st.Evictions {
		t.Fatalf("evictions: registry %d, Stats %d", v, st.Evictions)
	}
	if v, _ := snap.Gauge("oracle_rows_resident"); v != int64(st.Resident) {
		t.Fatalf("resident: registry %d, Stats %d", v, st.Resident)
	}
	if st.Resident != st.Misses-st.Evictions {
		t.Fatalf("books don't close: resident %d != misses %d - evictions %d",
			st.Resident, st.Misses, st.Evictions)
	}
	// row() times every acquisition that reaches it; QueryMany's resident
	// fast-pass answers from peek without a row() call, so only the
	// scheduling-independent lower bound (every miss goes through row) is
	// stable here.
	if h := snap.Histogram("oracle_row_seconds"); h == nil || int64(h.Count) < st.Misses {
		t.Fatalf("oracle_row_seconds count %+v, want at least the %d misses", h, st.Misses)
	}
}

// TestQueueWaitAccounting pins the PR 7 serving-daemon contract: when two
// goroutines race on the same cold source, the loser's singleflight wait is
// accounted in oracle_queue_wait_seconds — the internal queue-delay series a
// daemon sizes its admission ceiling against. Uninstrumented oracles must
// not register the series at all (the wait path stays clock-free).
func TestQueueWaitAccounting(t *testing.T) {
	g := testGraph(t, 200, 29)
	reg := obs.NewRegistry()
	o := New(g, Options{Shards: 1, MaxRows: 8, Metrics: reg})

	const racers = 8
	var start, wg sync.WaitGroup
	start.Add(1)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start.Wait()
			o.Query(5, 17) // same cold source: one computes, the rest wait
		}()
	}
	start.Done()
	wg.Wait()

	h := reg.Snapshot().Histogram("oracle_queue_wait_seconds")
	if h == nil {
		t.Fatal("oracle_queue_wait_seconds not registered on an instrumented oracle")
	}
	st := o.Stats()
	if st.Misses != 1 {
		t.Fatalf("singleflight broken: %d misses for one source, want 1", st.Misses)
	}
	// Every racer that found the fill in flight waited; racers that arrived
	// after publication hit the resident row without queuing. Both schedules
	// are legal, so only the ceiling is stable.
	if h.Count > racers-1 {
		t.Fatalf("queue waits %d observed, at most %d racers can wait", h.Count, racers-1)
	}

	plain := New(g, Options{MaxRows: 8})
	plain.Query(5, 17)
	if plain.queueWaitSeconds != nil {
		t.Fatal("uninstrumented oracle must keep the queue-wait path clock-free")
	}
}

// TestMaxRows pins the budget a serving daemon derives its admission ceiling
// from: MaxRows reports the effective post-default, post-clamp budget, and
// the shard capacities sum to exactly it.
func TestMaxRows(t *testing.T) {
	g := testGraph(t, 50, 31)
	for _, tc := range []struct {
		opt  Options
		want int
	}{
		{Options{MaxRows: 37, Shards: 4}, 37},
		{Options{MaxRows: -9}, 1}, // clamped
		{Options{}, 1024},         // default
		{Options{MaxRows: 3, Shards: 16}, 3},
	} {
		if got := New(g, tc.opt).MaxRows(); got != tc.want {
			t.Errorf("MaxRows with %+v = %d, want %d", tc.opt, got, tc.want)
		}
	}
}

// TestInstrumentedWarmPathAllocs is the hot-path guard for the serving
// layer: with a live registry attached, a warm single query allocates
// nothing, and a warm QueryMany batch allocates exactly as much as the
// uninstrumented batch path (its output slice and source grouping) — the
// instrumentation itself adds zero.
func TestInstrumentedWarmPathAllocs(t *testing.T) {
	g := testGraph(t, 100, 23)
	pairs := []Pair{{U: 3, V: 9}, {U: 3, V: 50}, {U: 7, V: 1}, {U: 7, V: 99}}

	plain := New(g, Options{Workers: 1})
	instr := New(g, Options{Workers: 1, Metrics: obs.NewRegistry()})
	for _, o := range []*Oracle{plain, instr} {
		o.QueryMany(pairs) // warm every source
	}

	if allocs := testing.AllocsPerRun(20, func() { instr.Query(3, 42) }); allocs > 0 {
		t.Errorf("instrumented warm Query allocated %.1f objects/op, want 0", allocs)
	}

	base := testing.AllocsPerRun(20, func() { plain.QueryMany(pairs) })
	got := testing.AllocsPerRun(20, func() { instr.QueryMany(pairs) })
	if got > base {
		t.Errorf("instrumented warm QueryMany allocates %.1f objects/op, uninstrumented %.1f — instrumentation must add zero", got, base)
	}
}
