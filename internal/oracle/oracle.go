// Package oracle is the serving layer for the paper's §7 / Corollary 1.4
// payoff: once a near-linear spanner is built and collected onto one machine,
// every distance query is answered locally on it. internal/apsp answers such
// queries by running one Dijkstra per call; this package wraps any frozen
// graph.Graph (typically a spanner) in a concurrency-safe oracle that
// memoizes per-source distance rows, so repeated and skewed query workloads —
// the regime an APSP oracle exists to serve — cost one shortest-path
// computation per distinct source instead of one per query.
//
// Topology: the cache is split into shards keyed by source % shards, each
// with its own mutex, so concurrent queries on distinct sources do not
// contend. The Options.MaxRows budget (one row = n float64s) is partitioned
// round-robin across the shards, and each shard evicts its own least
// recently used row when a newly computed one would exceed its share — so a
// workload whose hot sources all collide in one shard can use only that
// shard's fraction of the budget (lower Shards if that bites). A
// singleflight-style in-flight table per shard deduplicates concurrent
// misses on the same source: one goroutine computes the row, the rest wait
// for it, and the computation is charged exactly once.
//
// Batch queries go through QueryMany, which groups pairs by source, answers
// sources already resident immediately, and fans the remaining distinct
// sources over a worker pool. Results are written into position-addressed
// slots, so the output is a pure function of the input pairs regardless of
// scheduling — design rule 1 of DESIGN.md §3, inherited here as the
// determinism rule for batch fan-out (DESIGN.md §5).
package oracle

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mpcspanner/internal/core"
	"mpcspanner/internal/dist"
	"mpcspanner/internal/graph"
	"mpcspanner/internal/obs"
	"mpcspanner/internal/par"
	"mpcspanner/internal/xrand"
)

// Pair is one (source, target) distance query.
type Pair struct {
	U, V int
}

// Options configures New. The zero value selects the defaults.
type Options struct {
	// Shards is the number of independently locked cache shards. Zero
	// selects 16. The effective count never exceeds MaxRows (every shard
	// must be able to hold at least one row) or the vertex count.
	Shards int

	// MaxRows is the cache budget in resident rows across all shards; each
	// row holds n float64s, so the memory ceiling is MaxRows·n·8 bytes.
	// Zero selects 1024 rows; negative values are clamped to 1.
	MaxRows int

	// Workers is the QueryMany fan-out pool size. Zero selects
	// runtime.NumCPU(). Cold row fills parallelize *within* a source too
	// (delta-stepping shards each row's relaxations over the same count), so
	// a single cold query on a large graph is no longer pinned to one core.
	Workers int

	// SSSP selects the engine behind cold row fills: dist.EngineAuto (the
	// zero value) picks delta-stepping at scale and the pooled heap below
	// it; the explicit engines force one. Every engine produces bit-identical
	// rows — the dist exactness contract — so this is purely a speed knob.
	SSSP dist.Engine

	// Delta overrides the delta-stepping bucket width; ≤ 0 auto-tunes
	// (average edge weight / average degree). Ignored by the heap engine.
	Delta float64

	// Frozen, when non-nil, serves precomputed rows ahead of the cache:
	// a source the RowSource knows is answered from it directly — no lock,
	// no LRU traffic, no Dijkstra — and counts as a hit in Stats. Sources
	// it does not know fall through to the normal cache-then-Dijkstra
	// path. Typically the row section of a loaded artifact.
	Frozen RowSource

	// Metrics, when non-nil, exposes the cache counters
	// (oracle_row_{hits,misses,evictions}_total, oracle_rows_resident) and
	// enables the latency histograms (oracle_row_seconds,
	// oracle_row_fill_seconds, oracle_batch_seconds) on the registry. When
	// nil the counters live in a private registry — Stats() always reads
	// coherent obs counters — and no latency timing runs, so the
	// uninstrumented query path reads no clocks.
	Metrics *obs.Registry
}

// Stats is a point-in-time snapshot of the cache counters. Hits and Misses
// count row acquisitions (one per distinct source of a batch, not one per
// pair): an acquisition is a hit when the row was already resident or being
// computed by another goroutine, and a miss when it triggered a Dijkstra run
// — so Misses equals the number of shortest-path computations performed.
type Stats struct {
	Hits      int64 // row acquisitions served without a new computation
	Misses    int64 // row acquisitions that ran Dijkstra
	Evictions int64 // rows dropped by the LRU policy
	Resident  int64 // rows currently cached
}

// Oracle serves approximate (or exact, if g is the original graph) distance
// queries over a frozen graph with a sharded per-source row cache. It is
// safe for concurrent use.
type Oracle struct {
	g       *graph.Graph
	shards  []shard
	workers int
	solver  *dist.Solver // fills cold rows; engine resolved at New
	frozen  RowSource    // nil unless Options.Frozen was set

	// Cache counters are obs counters (atomic, lock-free) so Stats() and an
	// attached /metrics endpoint read the same coherent series. resident
	// tracks insertions minus evictions.
	hits, misses, evictions *obs.Counter
	resident                *obs.Gauge

	// Latency histograms are nil unless Options.Metrics was set: the
	// uninstrumented path performs no clock reads.
	rowSeconds       *obs.Histogram // per row acquisition through row()
	rowFillSeconds   *obs.Histogram // per cold Dijkstra fill
	batchSeconds     *obs.Histogram // per QueryMany batch
	queueWaitSeconds *obs.Histogram // per wait on another goroutine's in-flight fill
}

// entry is one cached row plus its place in the shard's LRU list.
type entry struct {
	src        int
	row        []float64
	prev, next *entry // intrusive LRU list; head = most recent
}

// call is an in-flight row computation other goroutines can wait on.
type call struct {
	done chan struct{}
	row  []float64
}

// shard is one lock domain of the cache: the sources s with
// s % len(shards) == shardIndex.
type shard struct {
	mu       sync.Mutex
	cap      int // max resident rows in this shard, ≥ 1
	rows     map[int]*entry
	inflight map[int]*call
	head     *entry // most recently used
	tail     *entry // least recently used, next eviction victim
}

// New returns an oracle over g. The graph must be frozen (it is read, never
// written); the oracle holds a reference, not a copy.
func New(g *graph.Graph, opt Options) *Oracle {
	maxRows := opt.MaxRows
	if maxRows == 0 {
		maxRows = 1024
	}
	if maxRows < 1 {
		maxRows = 1
	}
	nshards := opt.Shards
	if nshards <= 0 {
		nshards = 16
	}
	if nshards > maxRows {
		nshards = maxRows // every shard must hold ≥ 1 row
	}
	if n := g.N(); nshards > n && n > 0 {
		nshards = n
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	o := &Oracle{g: g, shards: make([]shard, nshards), workers: workers, frozen: opt.Frozen}
	o.solver = dist.NewSolver(g, dist.SolverOptions{
		Engine:  opt.SSSP,
		Delta:   opt.Delta,
		Workers: opt.Workers, // same resolution as the batch pool: 0 = all cores
		Metrics: opt.Metrics,
	})
	reg := opt.Metrics
	if reg == nil {
		// Private registry: Stats() always reads obs counters, instrumented
		// or not; only the exposition surface and the latency timing differ.
		reg = obs.NewRegistry()
	}
	o.hits = reg.Counter("oracle_row_hits_total")
	o.misses = reg.Counter("oracle_row_misses_total")
	o.evictions = reg.Counter("oracle_row_evictions_total")
	o.resident = reg.Gauge("oracle_rows_resident")
	if opt.Metrics != nil {
		o.rowSeconds = reg.Histogram("oracle_row_seconds", obs.LatencyBuckets)
		o.rowFillSeconds = reg.Histogram("oracle_row_fill_seconds", obs.LatencyBuckets)
		o.batchSeconds = reg.Histogram("oracle_batch_seconds", obs.LatencyBuckets)
		o.queueWaitSeconds = reg.Histogram("oracle_queue_wait_seconds", obs.LatencyBuckets)
	}
	// Distribute the row budget round-robin so the shard capacities sum to
	// exactly maxRows.
	for i := range o.shards {
		c := maxRows / nshards
		if i < maxRows%nshards {
			c++
		}
		o.shards[i] = shard{cap: c, rows: make(map[int]*entry), inflight: make(map[int]*call)}
	}
	return o
}

// Graph returns the graph the oracle serves distances on.
func (o *Oracle) Graph() *graph.Graph { return o.g }

// SSSP reports the resolved row-fill engine and its effective bucket width
// (0 for the heap) — what /v1/info advertises so fleet operators can confirm
// replicas agree.
func (o *Oracle) SSSP() (engine dist.Engine, delta float64) {
	return o.solver.Engine(), o.solver.Delta()
}

// MaxRows returns the effective cache budget in resident rows — the
// Options.MaxRows value after defaulting and clamping, summed across the
// shards. Serving daemons derive their admission-control in-flight ceiling
// from it, so overload degrades before the LRU starts thrashing.
func (o *Oracle) MaxRows() int {
	total := 0
	for i := range o.shards {
		total += o.shards[i].cap
	}
	return total
}

// checkVertex panics — in the caller's goroutine, before any cache state is
// touched — when v is not a vertex of the served graph. Validating at the
// entry points keeps a bad query recoverable: it can never strand a
// singleflight entry or kill a library-spawned worker.
func (o *Oracle) checkVertex(v int) {
	if v < 0 || v >= o.g.N() {
		panic(fmt.Sprintf("oracle: vertex %d out of range [0,%d)", v, o.g.N()))
	}
}

// vertexErr is checkVertex for the context-aware entry points, which report
// bad queries as typed errors instead of panicking.
func (o *Oracle) vertexErr(field string, v int) error {
	if v < 0 || v >= o.g.N() {
		return &core.OptionError{Field: field, Value: v,
			Reason: fmt.Sprintf("vertex out of range [0,%d)", o.g.N())}
	}
	return nil
}

// Query returns the distance from u to v (dist.Inf when unreachable). The
// row is cached under source u. It panics if u or v is not a vertex.
func (o *Oracle) Query(u, v int) float64 {
	o.checkVertex(v)
	return o.Row(u)[v]
}

// QueryCtx is Query under a context: a bad vertex or a done context returns
// a typed error (*core.OptionError / core.Canceled) instead of panicking.
// Cancellation is checkpointed at entry (so a done context fails regardless
// of cache residency), before a fresh computation starts, and while waiting
// on another goroutine's in-flight computation; a Dijkstra already running
// completes (and is cached) regardless.
func (o *Oracle) QueryCtx(ctx context.Context, u, v int) (float64, error) {
	if err := o.vertexErr("oracle: Query.U", u); err != nil {
		return 0, err
	}
	if err := o.vertexErr("oracle: Query.V", v); err != nil {
		return 0, err
	}
	if err := core.Check(ctx); err != nil {
		return 0, err
	}
	row, err := o.row(ctx, u)
	if err != nil {
		return 0, err
	}
	return row[v], nil
}

// Row returns the full distance row from src, computing and caching it on a
// miss. The returned slice is shared with the cache: callers must not mutate
// it. It stays valid after eviction (eviction drops the cache's reference,
// not the slice). It panics if src is not a vertex.
func (o *Oracle) Row(src int) []float64 {
	o.checkVertex(src)
	row, _ := o.row(nil, src) // nil context: row never fails
	return row
}

// RowCtx is Row under a context (see QueryCtx for the checkpoint
// granularity). The returned slice is shared with the cache and must not be
// mutated.
func (o *Oracle) RowCtx(ctx context.Context, src int) ([]float64, error) {
	if err := o.vertexErr("oracle: Row.Src", src); err != nil {
		return nil, err
	}
	// Entry checkpoint: a done context is reported uniformly, whether or not
	// the row happens to be resident.
	if err := core.Check(ctx); err != nil {
		return nil, err
	}
	return o.row(ctx, src)
}

// row acquires the distance row for a validated source, timing the
// acquisition when the oracle is instrumented. The split keeps the
// uninstrumented path clock-free and the instrumented one allocation-free
// (no deferred closure).
func (o *Oracle) row(ctx context.Context, src int) ([]float64, error) {
	if o.rowSeconds == nil {
		return o.acquireRow(ctx, src)
	}
	start := time.Now()
	row, err := o.acquireRow(ctx, src)
	o.rowSeconds.Observe(time.Since(start).Seconds())
	return row, err
}

// acquireRow is the acquisition path behind row. With a nil ctx it
// never fails; with a live ctx it checkpoints before starting a fresh
// computation and while waiting on an in-flight one. Once this goroutine has
// registered itself as the computing goroutine it always finishes and
// publishes the row — waiters can never be stranded by a canceled computer.
func (o *Oracle) acquireRow(ctx context.Context, src int) ([]float64, error) {
	// Frozen rows sit in front of the cache: no lock, no LRU traffic, and
	// no residency accounting (they are not evictable cache state), so the
	// Resident = Misses − Evictions invariant is untouched.
	if o.frozen != nil {
		if row, ok := o.frozen.FrozenRow(src); ok {
			o.hits.Add(1)
			return row, nil
		}
	}
	sh := &o.shards[src%len(o.shards)]
	sh.mu.Lock()
	if e, ok := sh.rows[src]; ok {
		sh.moveToFront(e)
		sh.mu.Unlock()
		o.hits.Add(1)
		return e.row, nil
	}
	if c, ok := sh.inflight[src]; ok {
		sh.mu.Unlock()
		// Queue-wait accounting: the time this goroutine blocks on another
		// goroutine's fill is the oracle's internal queue delay — the series a
		// serving daemon watches to size its admission ceiling. Timed only
		// when instrumented, and charged whether the wait completes or is
		// canceled (a canceled waiter queued all the same).
		var waitStart time.Time
		if o.queueWaitSeconds != nil {
			waitStart = time.Now()
		}
		if ctx != nil {
			select {
			case <-c.done: // another goroutine computed this row; share it
			case <-ctx.Done():
				if o.queueWaitSeconds != nil {
					o.queueWaitSeconds.Observe(time.Since(waitStart).Seconds())
				}
				return nil, core.Canceled(ctx.Err())
			}
		} else {
			<-c.done
		}
		if o.queueWaitSeconds != nil {
			o.queueWaitSeconds.Observe(time.Since(waitStart).Seconds())
		}
		o.hits.Add(1)
		return c.row, nil
	}
	if err := core.Check(ctx); err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	c := &call{done: make(chan struct{})}
	sh.inflight[src] = c
	sh.mu.Unlock()

	// Cold fill: the row itself must be freshly allocated (it outlives this
	// call in the cache and in callers' hands), but the run's state — the
	// frontier heap or the delta-stepping buckets, per the resolved engine —
	// comes from the solver's scratch pool, so a fill costs one row
	// allocation.
	o.misses.Add(1)
	if o.rowFillSeconds != nil {
		fillStart := time.Now()
		c.row = o.solver.Row(src)
		o.rowFillSeconds.Observe(time.Since(fillStart).Seconds())
	} else {
		c.row = o.solver.Row(src)
	}

	sh.mu.Lock()
	delete(sh.inflight, src)
	sh.insert(&entry{src: src, row: c.row})
	o.resident.Add(1)
	for len(sh.rows) > sh.cap {
		sh.evictOldest()
		o.evictions.Add(1)
		o.resident.Add(-1)
	}
	sh.mu.Unlock()
	close(c.done)
	return c.row, nil
}

// peek returns the row for src iff it is already resident, counting a hit
// and refreshing its LRU position. It never waits and never computes.
func (o *Oracle) peek(src int) ([]float64, bool) {
	if o.frozen != nil {
		if row, ok := o.frozen.FrozenRow(src); ok {
			o.hits.Add(1)
			return row, true
		}
	}
	sh := &o.shards[src%len(o.shards)]
	sh.mu.Lock()
	e, ok := sh.rows[src]
	if ok {
		sh.moveToFront(e)
	}
	sh.mu.Unlock()
	if !ok {
		return nil, false
	}
	o.hits.Add(1)
	return e.row, true
}

// QueryMany answers a batch of pairs: out[i] is the distance for pairs[i].
// Pairs are grouped by source; sources already resident are answered
// immediately, and the remaining distinct sources fan out over the worker
// pool, each worker writing only the slots of its own source. The result is
// therefore deterministic — a pure function of (graph, pairs) — regardless
// of scheduling, cache state, or concurrent callers. It panics — before any
// work is fanned out, so the panic is recoverable by the caller — if any
// pair names a vertex outside the graph.
func (o *Oracle) QueryMany(pairs []Pair) []float64 {
	for _, p := range pairs {
		o.checkVertex(p.U)
		o.checkVertex(p.V)
	}
	out, _ := o.queryMany(nil, pairs) // nil context: queryMany never fails
	return out
}

// QueryManyCtx is QueryMany under a context: bad pairs return a typed
// *core.OptionError before any work is fanned out, and cancellation is
// checkpointed between sources — each pool worker re-checks ctx before
// claiming its next uncached source, so a canceled batch returns
// core.Canceled(ctx.Err()) within one row computation, with every worker
// joined and no goroutine leaked.
func (o *Oracle) QueryManyCtx(ctx context.Context, pairs []Pair) ([]float64, error) {
	for _, p := range pairs {
		if err := o.vertexErr("oracle: Pair.U", p.U); err != nil {
			return nil, err
		}
		if err := o.vertexErr("oracle: Pair.V", p.V); err != nil {
			return nil, err
		}
	}
	// Entry checkpoint: a canceled batch fails uniformly, even when every
	// source is already resident.
	if err := core.Check(ctx); err != nil {
		return nil, err
	}
	return o.queryMany(ctx, pairs)
}

// queryMany answers a validated batch, timing it when instrumented; ctx may
// be nil (never fails then). The timing split mirrors row: no clock reads
// uninstrumented, no deferred closure instrumented.
func (o *Oracle) queryMany(ctx context.Context, pairs []Pair) ([]float64, error) {
	if o.batchSeconds == nil {
		return o.runBatch(ctx, pairs)
	}
	start := time.Now()
	out, err := o.runBatch(ctx, pairs)
	o.batchSeconds.Observe(time.Since(start).Seconds())
	return out, err
}

// runBatch is the batch path behind queryMany.
func (o *Oracle) runBatch(ctx context.Context, pairs []Pair) ([]float64, error) {
	out := make([]float64, len(pairs))
	// Group pair indices by source, preserving first-seen source order so
	// the fan-out below is stable.
	bySrc := make(map[int][]int, len(pairs))
	var order []int
	for i, p := range pairs {
		if _, ok := bySrc[p.U]; !ok {
			order = append(order, p.U)
		}
		bySrc[p.U] = append(bySrc[p.U], i)
	}
	// Fast pass: sources already resident are answered without touching the
	// pool.
	missing := order[:0]
	for _, src := range order {
		if row, ok := o.peek(src); ok {
			for _, i := range bySrc[src] {
				out[i] = row[pairs[i].V]
			}
		} else {
			missing = append(missing, src)
		}
	}
	if len(missing) == 0 {
		return out, nil
	}
	// Fan the uncached sources over the pool. Each worker holds the row it
	// acquired while filling its slots, so a concurrent eviction cannot
	// invalidate the batch. Workers re-check ctx before claiming each
	// source (the batch's cancellation checkpoint) and always drain through
	// wg.Wait, so cancellation leaks nothing.
	workers := o.workers
	if workers > len(missing) {
		workers = len(missing)
	}
	if workers <= 1 {
		for _, src := range missing {
			row, err := o.row(ctx, src)
			if err != nil {
				return nil, err
			}
			for _, i := range bySrc[src] {
				out[i] = row[pairs[i].V]
			}
		}
		return out, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	errAt := make([]error, workers)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				if core.Check(ctx) != nil {
					return // the post-join Check reports the cancellation
				}
				j := int(next.Add(1)) - 1
				if j >= len(missing) {
					return
				}
				src := missing[j]
				row, err := o.row(ctx, src)
				if err != nil {
					errAt[w] = err
					return
				}
				for _, i := range bySrc[src] {
					out[i] = row[pairs[i].V]
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errAt {
		if err != nil {
			return nil, err
		}
	}
	if err := core.Check(ctx); err != nil {
		return nil, err
	}
	return out, nil
}

// zipfShards is the fixed shard count of ZipfWorkload generation. Fixed —
// not GOMAXPROCS — so the generated workload is a pure function of the
// arguments on every machine; only the generation wall-clock varies.
const zipfShards = 8

// ZipfWorkload draws q (source, target) pairs with Zipf(exponent)
// distributed sources over [0, n) and uniform targets — the skewed
// hot-source access pattern a serving-layer cache exists for. The
// benchmarks and cmd/oracle's -synth mode share it, so the CLI serves
// exactly the workload the README numbers describe. Deterministic in seed:
// generation fans out over a fixed number of shards, each drawing from its
// own par.Streams stream (one Zipf source stream and one target stream per
// shard) into its own index range, so the pairs are identical however many
// cores run the shards.
func ZipfWorkload(n, q int, exponent float64, seed uint64) []Pair {
	streams := par.Streams(seed, 2*zipfShards)
	pairs := make([]Pair, q)
	par.ForCoarse(par.Workers(0), zipfShards, func(s int) {
		src := xrand.NewZipf(streams[2*s], n, exponent)
		tgt := streams[2*s+1]
		for i := s * q / zipfShards; i < (s+1)*q/zipfShards; i++ {
			pairs[i] = Pair{U: src.Next(), V: tgt.Intn(n)}
		}
	})
	return pairs
}

// Stats returns a snapshot of the cache counters — the same obs counters an
// attached Options.Metrics registry exposes, so Stats() and /metrics never
// disagree. Resident is additionally cross-checked against the shard maps:
// it is summed under the shard locks, and at quiescence equals
// Misses − Evictions (every miss inserts exactly one row).
func (o *Oracle) Stats() Stats {
	s := Stats{
		Hits:      o.hits.Value(),
		Misses:    o.misses.Value(),
		Evictions: o.evictions.Value(),
	}
	for i := range o.shards {
		sh := &o.shards[i]
		sh.mu.Lock()
		s.Resident += int64(len(sh.rows))
		sh.mu.Unlock()
	}
	return s
}

// insert links e at the front of the LRU list and indexes it. Caller holds
// the shard lock.
func (sh *shard) insert(e *entry) {
	sh.rows[e.src] = e
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

// moveToFront refreshes e's recency. Caller holds the shard lock.
func (sh *shard) moveToFront(e *entry) {
	if sh.head == e {
		return
	}
	// Unlink.
	e.prev.next = e.next
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	// Relink at head.
	e.prev = nil
	e.next = sh.head
	sh.head.prev = e
	sh.head = e
}

// evictOldest drops the least recently used row. Caller holds the shard lock
// and guarantees the shard is non-empty.
func (sh *shard) evictOldest() {
	victim := sh.tail
	delete(sh.rows, victim.src)
	sh.tail = victim.prev
	if sh.tail != nil {
		sh.tail.next = nil
	} else {
		sh.head = nil
	}
	victim.prev, victim.next = nil, nil
}
