package oracle

import (
	"sync"
	"testing"

	"mpcspanner/internal/dist"
	"mpcspanner/internal/graph"
	"mpcspanner/internal/xrand"
)

// testGraph is a connected random graph small enough to materialize the full
// APSP ground truth against.
func testGraph(t testing.TB, n int, seed uint64) *graph.Graph {
	t.Helper()
	g := graph.Connectify(graph.GNP(n, 6/float64(n), graph.UniformWeight(1, 10), seed), 5)
	if !g.Connected() {
		t.Fatal("test graph not connected")
	}
	return g
}

// TestQueryMatchesAPSP checks Query, Row, and QueryMany against the
// dist.APSP ground-truth matrix.
func TestQueryMatchesAPSP(t *testing.T) {
	g := testGraph(t, 120, 7)
	truth := dist.APSP(g)
	o := New(g, Options{})

	var pairs []Pair
	rng := xrand.New(99)
	for i := 0; i < 500; i++ {
		pairs = append(pairs, Pair{U: rng.Intn(g.N()), V: rng.Intn(g.N())})
	}
	for _, p := range pairs {
		if got := o.Query(p.U, p.V); got != truth[p.U][p.V] {
			t.Fatalf("Query(%d,%d) = %v, want %v", p.U, p.V, got, truth[p.U][p.V])
		}
	}
	got := o.QueryMany(pairs)
	for i, p := range pairs {
		if got[i] != truth[p.U][p.V] {
			t.Fatalf("QueryMany[%d] (%d,%d) = %v, want %v", i, p.U, p.V, got[i], truth[p.U][p.V])
		}
	}
	for _, src := range []int{0, 5, g.N() - 1} {
		row := o.Row(src)
		for v, d := range row {
			if d != truth[src][v] {
				t.Fatalf("Row(%d)[%d] = %v, want %v", src, v, d, truth[src][v])
			}
		}
	}
}

// TestStatsAccounting pins the counting rule: Hits+Misses counts row
// acquisitions, Misses counts Dijkstra runs.
func TestStatsAccounting(t *testing.T) {
	g := testGraph(t, 60, 3)
	o := New(g, Options{})

	o.Query(4, 10) // miss: first touch of source 4
	o.Query(4, 20) // hit: row resident
	o.Query(4, 4)  // hit
	s := o.Stats()
	if s.Misses != 1 || s.Hits != 2 || s.Resident != 1 || s.Evictions != 0 {
		t.Fatalf("after 3 point queries: %+v, want {Hits:2 Misses:1 Evictions:0 Resident:1}", s)
	}

	// A batch with 3 distinct sources, one of them (4) resident: one hit for
	// the resident source, two misses for the fresh ones — per source, not
	// per pair.
	o.QueryMany([]Pair{{4, 1}, {4, 2}, {7, 1}, {7, 2}, {9, 0}})
	s = o.Stats()
	if s.Misses != 3 || s.Hits != 3 || s.Resident != 3 {
		t.Fatalf("after batch: %+v, want {Hits:3 Misses:3 Resident:3}", s)
	}
}

// TestLRUEviction drives a tiny budget and checks capacity, eviction counts,
// and that recency (not insertion order) picks the victim.
func TestLRUEviction(t *testing.T) {
	g := testGraph(t, 40, 5)
	// One shard so the LRU order is global and the test is exact.
	o := New(g, Options{Shards: 1, MaxRows: 2})

	o.Query(0, 1) // resident: {0}
	o.Query(1, 1) // resident: {1, 0}
	o.Query(0, 2) // hit; refreshes 0 → resident: {0, 1}
	o.Query(2, 1) // evicts 1 (LRU), not 0 → resident: {2, 0}

	s := o.Stats()
	if s.Resident != 2 {
		t.Fatalf("Resident = %d, want 2", s.Resident)
	}
	if s.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", s.Evictions)
	}
	if s.Misses != 3 {
		t.Fatalf("Misses = %d, want 3", s.Misses)
	}

	// Source 0 must still be resident (hit), source 1 must have been evicted
	// (miss + a second eviction to make room).
	o.Query(0, 3)
	if got := o.Stats(); got.Hits != s.Hits+1 {
		t.Fatalf("source 0 was evicted; stats %+v", got)
	}
	o.Query(1, 3)
	if got := o.Stats(); got.Misses != s.Misses+1 || got.Evictions != 2 {
		t.Fatalf("source 1 should re-miss and evict: %+v", got)
	}
}

// TestTinyBudgetShardClamp checks that a budget smaller than the shard count
// still leaves every shard able to hold a row.
func TestTinyBudgetShardClamp(t *testing.T) {
	g := testGraph(t, 30, 11)
	o := New(g, Options{Shards: 16, MaxRows: 1})
	if len(o.shards) != 1 {
		t.Fatalf("shards = %d, want clamp to 1", len(o.shards))
	}
	truth := dist.APSP(g)
	for v := 0; v < g.N(); v++ {
		if got := o.Query(v, 0); got != truth[v][0] {
			t.Fatalf("Query(%d,0) = %v, want %v", v, got, truth[v][0])
		}
	}
	s := o.Stats()
	if s.Resident != 1 {
		t.Fatalf("Resident = %d, want 1", s.Resident)
	}
	if s.Evictions != int64(g.N()-1) {
		t.Fatalf("Evictions = %d, want %d", s.Evictions, g.N()-1)
	}
}

// TestQueryManyDeterministicConcurrent hammers one oracle with concurrent
// batches (run under -race in CI): every caller must get the bit-identical,
// ground-truth answer regardless of cache churn.
func TestQueryManyDeterministicConcurrent(t *testing.T) {
	g := testGraph(t, 100, 13)
	truth := dist.APSP(g)
	// Small budget so eviction races with the fan-out.
	o := New(g, Options{Shards: 4, MaxRows: 8, Workers: 4})

	var pairs []Pair
	rng := xrand.New(21)
	for i := 0; i < 400; i++ {
		pairs = append(pairs, Pair{U: rng.Intn(g.N()), V: rng.Intn(g.N())})
	}
	want := make([]float64, len(pairs))
	for i, p := range pairs {
		want[i] = truth[p.U][p.V]
	}

	const callers = 8
	var wg sync.WaitGroup
	results := make([][]float64, callers)
	wg.Add(callers)
	for c := 0; c < callers; c++ {
		go func(c int) {
			defer wg.Done()
			// Interleave point queries to churn the LRU during batches.
			o.Query(c, (c+1)%g.N())
			results[c] = o.QueryMany(pairs)
		}(c)
	}
	wg.Wait()
	for c, got := range results {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("caller %d: result[%d] = %v, want %v", c, i, got[i], want[i])
			}
		}
	}
	// Under the tiny budget sources evict and re-miss, so the miss count is
	// workload-dependent — but the budget itself must hold.
	if s := o.Stats(); s.Resident > 8 {
		t.Fatalf("Resident = %d exceeds the 8-row budget", s.Resident)
	}
}

// TestSingleflightSharesComputation checks that concurrent misses on one
// source all return the same row and that hits+misses balance.
func TestSingleflightSharesComputation(t *testing.T) {
	g := testGraph(t, 200, 17)
	o := New(g, Options{})
	const callers = 16
	var wg sync.WaitGroup
	rows := make([][]float64, callers)
	start := make(chan struct{})
	wg.Add(callers)
	for c := 0; c < callers; c++ {
		go func(c int) {
			defer wg.Done()
			<-start
			rows[c] = o.Row(42)
		}(c)
	}
	close(start)
	wg.Wait()
	for c := 1; c < callers; c++ {
		for v := range rows[c] {
			if rows[c][v] != rows[0][v] {
				t.Fatalf("caller %d row diverges at %d", c, v)
			}
		}
	}
	s := o.Stats()
	if s.Hits+s.Misses != callers {
		t.Fatalf("Hits(%d)+Misses(%d) != %d callers", s.Hits, s.Misses, callers)
	}
	if s.Misses < 1 {
		t.Fatalf("expected at least one miss, got %+v", s)
	}
}

// TestBadVertexPanicsRecoverably checks that out-of-range queries panic in
// the caller's goroutine before touching cache state: the panic is
// recoverable, never crashes a worker, and never strands a singleflight
// entry that would deadlock later queries on the same source.
func TestBadVertexPanicsRecoverably(t *testing.T) {
	g := testGraph(t, 20, 23)
	o := New(g, Options{})
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Query bad source", func() { o.Query(g.N(), 0) })
	mustPanic("Query bad target", func() { o.Query(0, -1) })
	mustPanic("Row bad source", func() { o.Row(-5) })
	mustPanic("QueryMany bad pair", func() { o.QueryMany([]Pair{{U: 0, V: g.N() + 3}}) })

	// No state was corrupted: the same sources answer normally, promptly.
	if d := o.Query(0, 0); d != 0 {
		t.Fatalf("Query(0,0) = %v after recovered panic", d)
	}
	if got := o.QueryMany([]Pair{{U: 0, V: 1}}); got[0] != dist.Dijkstra(g, 0)[1] {
		t.Fatalf("QueryMany wrong after recovered panic: %v", got)
	}
	if s := o.Stats(); s.Misses != 1 {
		t.Fatalf("rejected queries must not touch counters: %+v", s)
	}
}

// TestRowSurvivesEviction checks that an evicted row stays valid for holders.
func TestRowSurvivesEviction(t *testing.T) {
	g := testGraph(t, 30, 19)
	o := New(g, Options{Shards: 1, MaxRows: 1})
	row0 := o.Row(0)
	want := append([]float64(nil), row0...)
	o.Row(1) // evicts source 0
	for v := range row0 {
		if row0[v] != want[v] {
			t.Fatalf("held row mutated at %d after eviction", v)
		}
	}
}
