package oracle

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"mpcspanner/internal/core"
	"mpcspanner/internal/graph"
)

// TestCancellationSemanticsOracle pins the serving layer's context contract:
// typed classification for canceled queries, checkpointing between batch
// sources, no stranded singleflight waiters, and identical answers with and
// without a live context.
func TestCancellationSemanticsOracle(t *testing.T) {
	g := graph.Connectify(graph.GNP(300, 0.04, graph.UniformWeight(1, 30), 51), 30)
	o := New(g, Options{MaxRows: 16, Workers: 4})

	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	if _, err := o.RowCtx(pre, 0); !errors.Is(err, context.Canceled) || !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("RowCtx(canceled) = %v, want context.Canceled/core.ErrCanceled", err)
	}
	if _, err := o.QueryCtx(pre, 0, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryCtx(canceled) = %v", err)
	}
	pairs := ZipfWorkload(g.N(), 200, 1.2, 7)
	if _, err := o.QueryManyCtx(pre, pairs); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryManyCtx(canceled) = %v", err)
	}

	// Cancellation classifies uniformly regardless of cache residency: warm
	// the rows, then re-issue the same canceled calls.
	if _, err := o.QueryManyCtx(context.Background(), pairs); err != nil {
		t.Fatal(err)
	}
	if _, err := o.RowCtx(pre, pairs[0].U); !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("warm RowCtx(canceled) = %v, want ErrCanceled", err)
	}
	if _, err := o.QueryManyCtx(pre, pairs); !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("warm QueryManyCtx(canceled) = %v, want ErrCanceled", err)
	}

	// Typed argument errors.
	if _, err := o.QueryCtx(context.Background(), 0, g.N()); !errors.Is(err, core.ErrInvalidOption) {
		t.Fatalf("QueryCtx(bad v) = %v, want core.ErrInvalidOption", err)
	}
	var oe *core.OptionError
	_, err := o.QueryManyCtx(context.Background(), []Pair{{U: -1, V: 0}})
	if !errors.As(err, &oe) {
		t.Fatalf("QueryManyCtx(bad pair) = %v, want *core.OptionError", err)
	}

	// Context-free and live-context answers agree (and match Query).
	want := o.QueryMany(pairs)
	got, err := o.QueryManyCtx(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("QueryManyCtx differs from QueryMany on the same batch")
	}

	// A waiter canceled while another goroutine computes the row must
	// return promptly without stranding or corrupting the in-flight entry.
	fresh := New(g, Options{MaxRows: 4, Workers: 2})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fresh.Row(7) // computes and publishes
	}()
	waiterCtx, cancelWaiter := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancelWaiter()
	_, werr := fresh.RowCtx(waiterCtx, 7)
	wg.Wait()
	if werr != nil && !errors.Is(werr, core.ErrCanceled) {
		t.Fatalf("canceled waiter returned %v, want nil or ErrCanceled", werr)
	}
	if row := fresh.Row(7); row[7] != 0 {
		t.Fatal("row corrupted after canceled waiter")
	}

	// No goroutines leak from canceled batches.
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		leakO := New(g, Options{MaxRows: 8, Workers: 8})
		if _, err := leakO.QueryManyCtx(ctx, pairs); !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled batch = %v", err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before+2 {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Fatalf("goroutines leaked after canceled batches: %d -> %d", before, n)
	}
}
