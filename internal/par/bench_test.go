package par

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"mpcspanner/internal/xrand"
)

// benchWorkerCounts sweeps serial vs the GOMAXPROCS default, collapsing to
// one entry on single-core machines so b.Run never emits duplicate keys.
func benchWorkerCounts() []int {
	max := runtime.GOMAXPROCS(0)
	if max == 1 {
		return []int{1}
	}
	return []int{1, max}
}

// benchWork is a deliberately non-trivial per-index kernel so the benchmark
// measures dispatch overhead against real work, as the construction loops do.
func benchWork(i int) float64 {
	x := float64(i%997) + 1
	for k := 0; k < 40; k++ {
		x = math.Sqrt(x*1.7 + 3)
	}
	return x
}

func BenchmarkFor(b *testing.B) {
	const n = 200_000
	out := make([]float64, n)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				For(w, n, func(j int) { out[j] = benchWork(j) })
			}
		})
	}
}

func BenchmarkSortStable(b *testing.B) {
	const n = 300_000
	base := randomKVs(1, n, 1000)
	scratch := make([]kv, n)
	less := func(a, b *kv) bool { return a.k < b.k }
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				copy(scratch, base)
				SortStable(w, scratch, less)
			}
		})
	}
}

// BenchmarkRadixSortKeys measures the keyed shuffle engine against
// BenchmarkSortStable's comparison sort on the same element count; the
// retained RadixSorter makes steady-state iterations allocation-free.
func BenchmarkRadixSortKeys(b *testing.B) {
	const n = 300_000
	rng := xrand.New(9)
	base := make([]uint64, n)
	for i := range base {
		base[i] = rng.Uint64() >> 24 // ~40 live bits, like a (v, c, rank) composite
	}
	keys := make([]uint64, n)
	idx := make([]uint32, n)
	var rs RadixSorter
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				copy(keys, base)
				for j := range idx {
					idx[j] = uint32(j)
				}
				rs.Sort(w, keys, idx)
			}
		})
	}
}

func BenchmarkMergeSorted(b *testing.B) {
	const n = 200_000
	src := xrand.New(3)
	a := make([]kv, n)
	c := make([]kv, n)
	prevA, prevC := 0, 0
	for i := 0; i < n; i++ {
		prevA += src.Intn(3)
		prevC += src.Intn(3)
		a[i] = kv{k: prevA, pos: i}
		c[i] = kv{k: prevC, pos: n + i}
	}
	dst := make([]kv, 2*n)
	less := func(x, y *kv) bool { return x.k < y.k }
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MergeSorted(w, dst, a, c, less)
			}
		})
	}
}
