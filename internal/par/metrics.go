package par

import (
	"sync/atomic"

	"mpcspanner/internal/obs"
)

// poolMetrics are the handles the dispatch paths mutate. The struct is
// published whole through one atomic pointer so the hot path pays a single
// load (nil ⇒ uninstrumented) instead of four.
type poolMetrics struct {
	parallel  *obs.Counter // par_parallel_dispatch_total
	inline    *obs.Counter // par_inline_dispatch_total
	workers   *obs.Gauge   // par_pool_workers (high-water resolved pool size)
	imbalance *obs.Gauge   // par_chunk_imbalance_ppm (high-water static-chunk skew)
}

var metrics atomic.Pointer[poolMetrics]

// SetMetrics points the package's dispatch instrumentation at r. The hook is
// process-global — par has no per-call configuration surface, and pool
// utilization is a process-level property anyway — with last-writer-wins
// semantics; nil detaches. Callers that may run concurrently with an
// instrumented build should only call this with a non-nil registry, so an
// uninstrumented run never silently detaches a live one (the facade follows
// that rule). Dispatch recording is lock-free and allocation-free, so
// attaching a registry does not perturb the 0-alloc hot paths.
func SetMetrics(r *obs.Registry) {
	if r == nil {
		metrics.Store(nil)
		return
	}
	metrics.Store(&poolMetrics{
		parallel:  r.Counter("par_parallel_dispatch_total"),
		inline:    r.Counter("par_inline_dispatch_total"),
		workers:   r.Gauge("par_pool_workers"),
		imbalance: r.Gauge("par_chunk_imbalance_ppm"),
	})
}

// recordInline books one dispatch that ran on the calling goroutine (small-n
// cutoff or a single-worker pool).
func recordInline() {
	if pm := metrics.Load(); pm != nil {
		pm.inline.Inc()
	}
}

// recordParallel books one fan-out over `workers` shards of an n-element
// index space: high-water pool size and high-water chunk imbalance, in parts
// per million of the mean chunk. Static chunking bounds chunk sizes to
// ⌈n/W⌉/⌊n/W⌋, so the gauge quantifies how far the tail shard can lag the
// rest — the utilization question for ROADMAP's machine-load gates.
func recordParallel(workers, n int) {
	pm := metrics.Load()
	if pm == nil {
		return
	}
	pm.parallel.Inc()
	pm.workers.SetMax(int64(workers))
	if n > 0 {
		maxChunk := (n + workers - 1) / workers
		pm.imbalance.SetMax(int64(maxChunk)*int64(workers)*1e6/int64(n) - 1e6)
	}
}
