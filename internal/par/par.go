// Package par is the deterministic parallel-execution layer of the
// construction pipeline. Every construction-side package (internal/spanner,
// internal/mpc, internal/cclique, internal/pram, internal/cluster) runs its
// data-parallel passes through the primitives here instead of hand-rolled
// goroutines, and every primitive carries the same contract:
//
//	equal inputs produce bit-identical outputs at every worker count.
//
// The contract is met by construction, not by locking:
//
//   - For/ForShard/Map use *static chunking*: the index space [0, n) is cut
//     into at most `workers` contiguous shards whose boundaries depend only
//     on (n, workers), and results are either index-addressed (each
//     iteration writes its own slot) or merged by concatenating per-shard
//     accumulators in shard order — which equals index order, so the merged
//     sequence is independent of goroutine scheduling.
//   - SortStable is a stable parallel merge sort: stability makes the output
//     sequence a pure function of the input, so it equals the serial
//     sort.SliceStable result at every worker count.
//   - MergeSorted splits one merge of two sorted runs across workers along
//     the merge path (binary-searched cut points), keeping the stable
//     tie-break (runs of equal elements take the left run first).
//   - Streams derives per-shard xrand streams keyed by shard index, so
//     random decisions made inside shard s are a pure function of
//     (seed, s, position) and can be merged order-independently.
//
// Worker counts: 0 selects runtime.GOMAXPROCS(0) ("as fast as the hardware
// allows"), 1 forces the serial path, larger values pin the pool size.
// Negative counts are a configuration error that callers reject at their
// option-validation boundary (see spanner.Options, mpc.Options and the
// facade); Workers clamps them to 1 as a defensive fallback.
package par

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"mpcspanner/internal/core"
	"mpcspanner/internal/xrand"
)

// Workers resolves a requested worker count: 0 selects GOMAXPROCS, values
// below zero clamp to 1 (callers validate and reject negatives before
// resolving; the clamp is defense in depth).
func Workers(requested int) int {
	if requested == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if requested < 1 {
		return 1
	}
	return requested
}

// CheckWorkers is the shared validation every option surface applies before
// resolving a worker count: negative values are a configuration error. The
// prefix names the rejecting layer ("spanner: Options.Workers", "mpc:
// Options.Workers", …) so the error reads the same everywhere while still
// locating the misconfiguration. The returned error is a *core.OptionError,
// so every layer's rejection matches errors.Is(err, core.ErrInvalidOption)
// and surfaces its field/value/reason through errors.As.
func CheckWorkers(prefix string, w int) error {
	if w < 0 {
		return &core.OptionError{Field: prefix, Value: w,
			Reason: "must be >= 0 (0 = GOMAXPROCS, 1 = serial)"}
	}
	return nil
}

// serialCutoff is the index-space size below which a parallel dispatch costs
// more than it saves; smaller loops run inline on the calling goroutine.
const serialCutoff = 256

// ShardCount returns the number of shards ForShard(workers, n, …) will
// actually invoke, so callers can size per-shard state (scratch buffers,
// accumulators) to what runs instead of the full worker count.
func ShardCount(workers, n int) int {
	if n <= 0 {
		return 0
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < serialCutoff {
		return 1
	}
	return workers
}

// ForShard cuts [0, n) into at most `workers` contiguous shards and invokes
// fn(shard, lo, hi) once per non-empty shard, concurrently. Shard boundaries
// are a pure function of (n, workers): shard w covers [w·n/W, (w+1)·n/W).
// Shard ids are always < workers, so callers may allocate per-shard
// accumulators as make([]T, workers) and merge them in shard order — that
// order equals index order, which is what makes sharded accumulation
// deterministic. Small inputs (n < 256) run inline as a single shard 0.
func ForShard(workers, n int, fn func(shard, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < serialCutoff {
		recordInline()
		fn(0, 0, n)
		return
	}
	recordParallel(workers, n)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w, w*n/workers, (w+1)*n/workers)
		}(w)
	}
	wg.Wait()
}

// ForCoarse is For without the small-n serial cutoff: every chunk runs on
// its own goroutine even for tiny n. Use it for coarse-grained tasks — whole
// algorithm runs, per-repetition instances — where n is small but each
// iteration is expensive enough to dwarf a goroutine dispatch.
func ForCoarse(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		recordInline()
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	recordParallel(workers, n)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(w*n/workers, (w+1)*n/workers)
	}
	wg.Wait()
}

// ForCoarseCtx is the context-aware ForCoarse: the cooperative dispatch the
// cancelable coarse fan-outs (per-repetition spanner runs, per-source oracle
// fills) run on. Every worker checkpoints ctx before each iteration and stops
// its remaining chunk once ctx is done or its fn returned an error; all
// workers are always joined before returning, so cancellation never leaks a
// goroutine and never leaves fn running after ForCoarseCtx returns.
//
// The returned error is the lowest-indexed fn error (deterministic at every
// worker count), or core.Canceled(ctx.Err()) when the context ended the run.
// When ctx is never canceled and no fn errs, the iteration pattern is
// identical to ForCoarse — results stay bit-identical at every worker count.
func ForCoarseCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return core.Check(ctx)
	}
	if workers > n {
		workers = n
	}
	errAt := make([]error, n)
	failed := false
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := core.Check(ctx); err != nil {
				return err
			}
			if errAt[i] = fn(i); errAt[i] != nil {
				failed = true
				break
			}
		}
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					if core.Check(ctx) != nil {
						return
					}
					if errAt[i] = fn(i); errAt[i] != nil {
						return
					}
				}
			}(w*n/workers, (w+1)*n/workers)
		}
		wg.Wait()
		for _, err := range errAt {
			if err != nil {
				failed = true
				break
			}
		}
	}
	if failed {
		for _, err := range errAt {
			if err != nil {
				return err
			}
		}
	}
	return core.Check(ctx)
}

// For runs fn(i) for every i in [0, n) across `workers` goroutines with
// static chunking. Iterations must be independent; when each writes only its
// own output slot the result is deterministic regardless of scheduling.
func For(workers, n int, fn func(i int)) {
	ForShard(workers, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Map evaluates fn over [0, n) in parallel and returns the index-addressed
// results: out[i] = fn(i). The output is identical at every worker count.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	For(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// minSortRun is the smallest per-worker run worth sorting on its own
// goroutine; inputs below workers·minSortRun fall back to fewer workers.
const minSortRun = 1024

// SortStable sorts data stably by less using a parallel merge sort: the
// slice is cut into contiguous runs (one per worker), each run is sorted
// with sort.SliceStable concurrently, and adjacent runs are merged pairwise
// — each merge itself parallelized along its merge path — until one run
// remains. Stability makes the output a pure function of the input, so the
// result is bit-identical to a serial sort.SliceStable at any worker count.
func SortStable[T any](workers int, data []T, less func(a, b *T) bool) {
	SortStableBuf(workers, data, nil, less)
}

// SortStableBuf is SortStable with a caller-provided merge scratch buffer
// (must not alias data; grown internally when cap(buf) < len(data)).
// Callers that sort repeatedly — the MPC simulator sorts once per simulated
// round — pass a retained buffer to avoid re-allocating len(data) scratch
// per sort.
func SortStableBuf[T any](workers int, data, buf []T, less func(a, b *T) bool) {
	n := len(data)
	if workers > n/minSortRun {
		workers = n / minSortRun
	}
	if workers <= 1 {
		sort.SliceStable(data, func(i, j int) bool { return less(&data[i], &data[j]) })
		return
	}
	// Run boundaries: runs[i] is the start of run i; runs[last] == n.
	runs := make([]int, workers+1)
	for w := 0; w <= workers; w++ {
		runs[w] = w * n / workers
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(lo, hi int) {
			defer wg.Done()
			sub := data[lo:hi]
			sort.SliceStable(sub, func(i, j int) bool { return less(&sub[i], &sub[j]) })
		}(runs[w], runs[w+1])
	}
	wg.Wait()

	// Pairwise merge rounds, ping-ponging between data and a scratch buffer.
	if cap(buf) < n {
		buf = make([]T, n)
	}
	buf = buf[:n]
	src, dst := data, buf
	for len(runs) > 2 {
		next := make([]int, 0, len(runs)/2+2)
		pairs := (len(runs) - 1) / 2
		var mw sync.WaitGroup
		for p := 0; p < pairs; p++ {
			lo, mid, hi := runs[2*p], runs[2*p+1], runs[2*p+2]
			next = append(next, lo)
			mw.Add(1)
			go func(lo, mid, hi int) {
				defer mw.Done()
				// Workers for the inner merge: spread the pool over the
				// concurrent pair merges of this round.
				inner := workers / pairs
				if inner < 1 {
					inner = 1
				}
				MergeSorted(inner, dst[lo:hi], src[lo:mid], src[mid:hi], less)
			}(lo, mid, hi)
		}
		if (len(runs)-1)%2 == 1 { // odd run rides along unmerged
			lo, hi := runs[len(runs)-2], runs[len(runs)-1]
			next = append(next, lo)
			copy(dst[lo:hi], src[lo:hi])
		}
		mw.Wait()
		next = append(next, n)
		runs = next
		src, dst = dst, src
	}
	if &src[0] != &data[0] {
		copy(data, src)
	}
}

// MergeSorted merges the sorted runs a and b into dst, which must have
// length len(a)+len(b) and not alias either input. The merge is stable: on
// ties the element of a is emitted first. With workers > 1 the output is cut
// into `workers` balanced blocks whose (i, j) cut points are found by binary
// search along the merge path, and the blocks are merged concurrently; the
// result is identical to the serial merge at every worker count.
func MergeSorted[T any](workers int, dst, a, b []T, less func(x, y *T) bool) {
	if len(dst) != len(a)+len(b) {
		panic("par: MergeSorted dst length mismatch")
	}
	if workers > len(dst)/minSortRun {
		workers = len(dst) / minSortRun
	}
	if workers <= 1 {
		mergeSerial(dst, a, b, less)
		return
	}
	n := len(dst)
	var wg sync.WaitGroup
	wg.Add(workers)
	prevI, prevJ := 0, 0
	for w := 1; w <= workers; w++ {
		p := w * n / workers
		i := mergeCut(p, a, b, less)
		j := p - i
		go func(dst []T, a, b []T) {
			defer wg.Done()
			mergeSerial(dst, a, b, less)
		}(dst[prevI+prevJ:p], a[prevI:i], b[prevJ:j])
		prevI, prevJ = i, j
	}
	wg.Wait()
}

// mergeCut returns the unique i such that taking a[:i] and b[:p-i] yields the
// first p outputs of the stable merge of a and b.
func mergeCut[T any](p int, a, b []T, less func(x, y *T) bool) int {
	lo := p - len(b)
	if lo < 0 {
		lo = 0
	}
	hi := p
	if hi > len(a) {
		hi = len(a)
	}
	// First i where b[p-i-1] < a[i] (or the b side is exhausted): beyond it
	// the merge would have emitted b[p-i-1] after a[i], violating the order.
	return lo + sort.Search(hi-lo, func(d int) bool {
		i := lo + d
		j := p - i
		return j == 0 || less(&b[j-1], &a[i])
	})
}

// mergeSerial is the scalar stable merge: ties take from a.
func mergeSerial[T any](dst, a, b []T, less func(x, y *T) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if !less(&b[j], &a[i]) { // a[i] <= b[j]
			dst[k] = a[i]
			i++
		} else {
			dst[k] = b[j]
			j++
		}
		k++
	}
	copy(dst[k:], a[i:])
	copy(dst[k+len(a)-i:], b[j:])
}

// streamTag namespaces Streams-derived keys inside the xrand key space so
// shard streams never collide with algorithm coin domains.
const streamTag = 0x70617273 // "pars"

// Streams derives `shards` independent deterministic random streams from
// seed, keyed by shard index. A value drawn inside shard s is a pure
// function of (seed, s, draw position) — independent of how many shards run
// concurrently or in what order — so per-shard random decisions can be
// merged order-independently by concatenating shard outputs in shard order.
func Streams(seed uint64, shards int) []*xrand.Source {
	out := make([]*xrand.Source, shards)
	for i := range out {
		out[i] = xrand.Split(seed, streamTag, uint64(i))
	}
	return out
}
