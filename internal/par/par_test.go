package par

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"

	"mpcspanner/internal/core"
	"mpcspanner/internal/xrand"
)

func TestWorkersResolution(t *testing.T) {
	if Workers(0) < 1 {
		t.Fatal("Workers(0) must resolve to at least one worker")
	}
	if Workers(-3) != 1 {
		t.Fatalf("Workers(-3) = %d, want clamp to 1", Workers(-3))
	}
	if Workers(7) != 7 {
		t.Fatalf("Workers(7) = %d", Workers(7))
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 5, 255, 256, 10_000} {
		for _, w := range []int{1, 2, 3, 8, 64} {
			hits := make([]int32, n)
			For(w, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d w=%d: index %d hit %d times", n, w, i, h)
				}
			}
		}
	}
}

func TestForShardBoundaries(t *testing.T) {
	for _, n := range []int{256, 1000, 4096} {
		for _, w := range []int{2, 3, 7, 16} {
			var mu atomic.Int64
			seen := make([]bool, n)
			shards := make([]bool, w)
			ForShard(w, n, func(shard, lo, hi int) {
				if shard < 0 || shard >= w {
					t.Errorf("shard id %d out of range", shard)
				}
				shards[shard] = true
				for i := lo; i < hi; i++ {
					if seen[i] {
						t.Errorf("index %d covered twice", i)
					}
					seen[i] = true
					mu.Add(1)
				}
			})
			if mu.Load() != int64(n) {
				t.Fatalf("n=%d w=%d: covered %d indexes", n, w, mu.Load())
			}
		}
	}
}

// TestShardMergeOrderIndependence is the accumulation contract every rewired
// package relies on: concatenating per-shard outputs in shard order equals
// the serial index-order sequence, at every worker count.
func TestShardMergeOrderIndependence(t *testing.T) {
	const n = 5000
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, w := range []int{1, 2, 4, 8, 13} {
		parts := make([][]int, w)
		ForShard(w, n, func(shard, lo, hi int) {
			for i := lo; i < hi; i++ {
				parts[shard] = append(parts[shard], i*i)
			}
		})
		var got []int
		for _, p := range parts {
			got = append(got, p...)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("w=%d: sharded concatenation differs from index order", w)
		}
	}
}

func TestMapIndexAddressed(t *testing.T) {
	out := Map(8, 1000, func(i int) int { return 3 * i })
	for i, v := range out {
		if v != 3*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if len(Map(4, 0, func(i int) int { return i })) != 0 {
		t.Fatal("empty map")
	}
}

// kv is a key/payload pair: sorting by key only leaves ties for the
// stability check to catch.
type kv struct {
	k   int
	pos int
}

func randomKVs(seed uint64, n, keySpace int) []kv {
	src := xrand.New(seed)
	out := make([]kv, n)
	for i := range out {
		out[i] = kv{k: src.Intn(keySpace), pos: i}
	}
	return out
}

func TestSortStableMatchesSerialWithHeavyTies(t *testing.T) {
	less := func(a, b *kv) bool { return a.k < b.k }
	for _, n := range []int{0, 1, 1023, 4096, 50_000} {
		for _, keySpace := range []int{1, 2, 7, 1000} {
			want := randomKVs(uint64(n+keySpace), n, keySpace)
			sort.SliceStable(want, func(i, j int) bool { return want[i].k < want[j].k })
			for _, w := range []int{1, 2, 3, 4, 8} {
				got := randomKVs(uint64(n+keySpace), n, keySpace)
				SortStable(w, got, less)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("n=%d keys=%d w=%d: parallel stable sort diverged from serial", n, keySpace, w)
				}
			}
		}
	}
}

func TestMergeSortedStable(t *testing.T) {
	less := func(a, b *kv) bool { return a.k < b.k }
	f := func(seed uint64) bool {
		src := xrand.New(seed)
		na, nb := src.Intn(3000)+1, src.Intn(3000)+1
		a := randomKVs(seed, na, 5)
		b := randomKVs(seed+1, nb, 5)
		for i := range b {
			b[i].pos += na // distinguishable payloads
		}
		sort.SliceStable(a, func(i, j int) bool { return a[i].k < a[j].k })
		sort.SliceStable(b, func(i, j int) bool { return b[i].k < b[j].k })
		want := make([]kv, na+nb)
		mergeSerial(want, a, b, less)
		for _, w := range []int{1, 2, 4, 7} {
			got := make([]kv, na+nb)
			MergeSorted(w, got, a, b, less)
			if !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeSortedRejectsBadDst(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch accepted")
		}
	}()
	MergeSorted(1, make([]kv, 3), make([]kv, 1), make([]kv, 1), func(a, b *kv) bool { return a.k < b.k })
}

func TestStreamsIndependentAndReproducible(t *testing.T) {
	a := Streams(42, 8)
	b := Streams(42, 8)
	if len(a) != 8 {
		t.Fatalf("got %d streams", len(a))
	}
	for i := range a {
		for d := 0; d < 16; d++ {
			if a[i].Uint64() != b[i].Uint64() {
				t.Fatalf("stream %d draw %d not reproducible", i, d)
			}
		}
	}
	// Distinct shards draw distinct sequences (overwhelmingly likely).
	c := Streams(42, 2)
	if c[0].Uint64() == c[1].Uint64() {
		t.Fatal("shard streams 0 and 1 coincide on the first draw")
	}
	// A different seed shifts every stream.
	d := Streams(43, 1)
	e := Streams(42, 1)
	if d[0].Uint64() == e[0].Uint64() {
		t.Fatal("seed does not separate streams")
	}
}

// TestStreamsOrderIndependentMerge demonstrates the intended usage pattern:
// shards draw from their own streams concurrently, and the shard-order
// concatenation is identical to a serial left-to-right evaluation.
func TestStreamsOrderIndependentMerge(t *testing.T) {
	const shards, draws = 6, 50
	serial := make([][]uint64, shards)
	for s, src := range Streams(7, shards) {
		serial[s] = make([]uint64, draws)
		for d := 0; d < draws; d++ {
			serial[s][d] = src.Uint64()
		}
	}
	concurrent := make([][]uint64, shards)
	srcs := Streams(7, shards)
	For(shards, shards, func(s int) {
		concurrent[s] = make([]uint64, draws)
		for d := 0; d < draws; d++ {
			concurrent[s][d] = srcs[s].Uint64()
		}
	})
	if !reflect.DeepEqual(serial, concurrent) {
		t.Fatal("concurrent shard draws differ from serial shard draws")
	}
}

// TestForCoarseCtx pins the cancelable coarse dispatch: full iteration when
// live, deterministic lowest-index error reporting, prompt classified return
// on cancellation, and all workers joined.
func TestForCoarseCtx(t *testing.T) {
	// Live context: every index runs exactly once, any worker count.
	for _, workers := range []int{1, 4} {
		var hits [97]atomic.Int32
		if err := ForCoarseCtx(context.Background(), workers, len(hits), func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, hits[i].Load())
			}
		}
	}

	// fn errors: the lowest-indexed error wins at every worker count.
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := ForCoarseCtx(context.Background(), workers, 64, func(i int) error {
			if i == 9 || i == 40 {
				return fmt.Errorf("index %d: %w", i, sentinel)
			}
			return nil
		})
		if !errors.Is(err, sentinel) || err.Error() != "index 9: boom" {
			t.Fatalf("workers=%d: error %v, want the index-9 error", workers, err)
		}
	}

	// Canceled context: classified error, and no fn invocation after every
	// worker has seen the cancellation (the call always joins its workers).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	err := ForCoarseCtx(ctx, 4, 32, func(i int) error { ran++; return nil })
	if !errors.Is(err, context.Canceled) || !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("canceled ForCoarseCtx = %v, want context.Canceled/core.ErrCanceled", err)
	}
	if ran != 0 {
		t.Fatalf("%d iterations ran under a pre-canceled context", ran)
	}
}
