package par

import "math"

// This file is the radix-keyed shuffle engine behind the MPC simulator's
// keyed sorts (mpc.Sim.SortByKey) and the other construction-side key-
// addressed reorderings (cluster.MinDedupKeys, cclique's Lenzen grouping).
// The comparison sorts it replaces spent their wall-clock in the less
// callback; an LSD radix sort over precomputed uint64 keys touches each
// element a constant number of times with no per-comparison indirection,
// and — because scatter offsets are precomputed per (pass, shard, bucket) —
// it is stable and bit-identical at every worker count, the same contract
// every other primitive of this package carries.

const (
	radixBits    = 8
	radixBuckets = 1 << radixBits
	radixPasses  = 64 / radixBits
)

// radixHist is one shard's histogram set: one bucket row per pass, all
// gathered in a single read of the keys.
type radixHist [radixPasses][radixBuckets]uint32

// RadixSorter is a reusable radix-sort instance: the ping-pong buffers,
// per-shard histograms, and SortIndexByKey's primary key/index arrays are
// retained across calls, so steady-state sorts of same-or-smaller inputs
// allocate nothing. The zero value is ready to use. A RadixSorter is not
// safe for concurrent use.
type RadixSorter struct {
	keyBuf []uint64
	idxBuf []uint32
	hists  []radixHist

	// SortIndexByKey scratch (separate from the ping-pong pair above, which
	// Sort consumes as its scatter destination).
	keys []uint64
	idx  []uint32
}

// RadixSortKeys stably sorts the (keys[i], idx[i]) pairs by key, ascending,
// using a throwaway RadixSorter. Callers on a hot path should retain a
// RadixSorter and call its Sort method instead, which reuses the scratch.
func RadixSortKeys(workers int, keys []uint64, idx []uint32) {
	var rs RadixSorter
	rs.Sort(workers, keys, idx)
}

// Sort stably reorders keys ascending, applying the identical permutation to
// idx (callers load idx with 0..n-1 to obtain the sort permutation, or with
// payload handles to shuffle records by key). len(idx) must equal len(keys).
//
// The sort is LSD over 8-bit digits. Digit positions that are constant
// across the whole input (detected from one OR/AND aggregate over the keys —
// a byte is constant iff OR and AND agree there, a property independent of
// element order) permute nothing and are skipped, so keys that use only the
// low k bits pay ⌈k/8⌉ scatter passes, not 8. Each live pass scatters
// through offsets precomputed per (shard, bucket) on the current layout —
// shard s's elements of a bucket land before shard s+1's, and in layout
// order within a shard, which is exactly the stable serial order. The result
// is therefore bit-identical to sort.SliceStable on the keys at every worker
// count.
func (rs *RadixSorter) Sort(workers int, keys []uint64, idx []uint32) {
	n := len(keys)
	if len(idx) != n {
		panic("par: RadixSorter key/index length mismatch")
	}
	if n < 2 {
		return
	}
	shards := ShardCount(workers, n)
	if cap(rs.keyBuf) < n {
		rs.keyBuf = make([]uint64, n)
		rs.idxBuf = make([]uint32, n)
	}
	if shards > len(rs.hists) {
		rs.hists = append(rs.hists, make([]radixHist, shards-len(rs.hists))...)
	}
	hists := rs.hists[:shards]

	// Constant-byte detection: (orAll ^ andAll) has a zero byte exactly where
	// every key agrees, and XOR/AND aggregates are layout-independent, so this
	// is computed once up front.
	var orAll, andAll uint64
	andAll = ^uint64(0)
	if shards == 1 {
		for _, k := range keys {
			orAll |= k
			andAll &= k
		}
	} else {
		ors := make([]uint64, shards)
		ands := make([]uint64, shards)
		ForShard(workers, n, func(shard, lo, hi int) {
			o, a := uint64(0), ^uint64(0)
			for _, k := range keys[lo:hi] {
				o |= k
				a &= k
			}
			ors[shard], ands[shard] = o, a
		})
		for s := 0; s < shards; s++ {
			orAll |= ors[s]
			andAll &= ands[s]
		}
	}
	varying := orAll ^ andAll

	if shards == 1 {
		// Serial fast path: offsets depend only on digit totals, which the
		// permutation never changes, so one read of the keys histograms every
		// live pass at once and each pass goes straight to its scatter.
		h := &hists[0]
		*h = radixHist{}
		for _, k := range keys {
			for p := 0; p < radixPasses; p++ {
				if varying>>(radixBits*p)&0xFF != 0 {
					h[p][uint8(k>>(radixBits*p))]++
				}
			}
		}
		srcK, srcI := keys, idx
		dstK, dstI := rs.keyBuf[:n], rs.idxBuf[:n]
		for p := 0; p < radixPasses; p++ {
			if varying>>(radixBits*p)&0xFF == 0 {
				continue
			}
			off := &h[p]
			pos := uint32(0)
			for b := 0; b < radixBuckets; b++ {
				c := off[b]
				off[b] = pos
				pos += c
			}
			shift := radixBits * p
			for i, k := range srcK {
				b := uint8(k >> shift)
				o := off[b]
				off[b] = o + 1
				dstK[o] = k
				dstI[o] = srcI[i]
			}
			srcK, srcI, dstK, dstI = dstK, dstI, srcK, srcI
		}
		if &srcK[0] != &keys[0] {
			copy(keys, srcK)
			copy(idx, srcI)
		}
		return
	}

	// Parallel path: a pass's per-shard histogram must describe the *current*
	// layout (the previous scatter moved elements between shard ranges), so
	// each live pass histograms and then scatters.
	srcK, srcI := keys, idx
	dstK, dstI := rs.keyBuf[:n], rs.idxBuf[:n]
	for p := 0; p < radixPasses; p++ {
		if varying>>(radixBits*p)&0xFF == 0 {
			continue
		}
		shift := radixBits * p
		sk, si, dk, di := srcK, srcI, dstK, dstI
		ForShard(workers, n, func(shard, lo, hi int) {
			row := &hists[shard][0]
			*row = [radixBuckets]uint32{}
			for _, k := range sk[lo:hi] {
				row[uint8(k>>shift)]++
			}
		})
		// Per-shard counts become scatter offsets: bucket-major, shard-minor
		// — the order that makes the parallel scatter reproduce the serial
		// stable order.
		pos := uint32(0)
		for b := 0; b < radixBuckets; b++ {
			for s := 0; s < shards; s++ {
				c := hists[s][0][b]
				hists[s][0][b] = pos
				pos += c
			}
		}
		ForShard(workers, n, func(shard, lo, hi int) {
			off := &hists[shard][0]
			for i := lo; i < hi; i++ {
				k := sk[i]
				b := uint8(k >> shift)
				o := off[b]
				off[b] = o + 1
				dk[o] = k
				di[o] = si[i]
			}
		})
		srcK, srcI, dstK, dstI = dstK, dstI, srcK, srcI
	}
	if &srcK[0] != &keys[0] {
		copy(keys, srcK)
		copy(idx, srcI)
	}
}

// SortIndexByKey returns the stable ascending-by-key permutation of [0, n):
// out[r] is the index of the record with the r-th smallest key(i), equal
// keys in index order. It is the shared shape behind every radix-keyed
// record reordering outside the MPC arena (weight ranks, keyed dedup,
// Lenzen destination grouping): extract keys in parallel, seed the identity
// permutation, one stable radix sort. key must be pure (it is invoked
// concurrently). The returned slice aliases the sorter's retained scratch —
// it is invalidated by the sorter's next call, so callers consume it before
// sorting again.
func (rs *RadixSorter) SortIndexByKey(workers, n int, key func(i int) uint64) []uint32 {
	if cap(rs.keys) < n {
		rs.keys = make([]uint64, n)
		rs.idx = make([]uint32, n)
	}
	keys, idx := rs.keys[:n], rs.idx[:n]
	For(workers, n, func(i int) {
		keys[i] = key(i)
		idx[i] = uint32(i)
	})
	rs.Sort(workers, keys, idx)
	return idx
}

// SortIndexByKey is the throwaway-sorter form of RadixSorter.SortIndexByKey
// for call sites that run at most once per build or route.
func SortIndexByKey(workers, n int, key func(i int) uint64) []uint32 {
	var rs RadixSorter
	return rs.SortIndexByKey(workers, n, key)
}

// Float64Key maps a float64 to a uint64 whose unsigned order equals the
// float order: f < g ⇔ Float64Key(f) < Float64Key(g) and f == g ⇔ equal
// keys, over all non-NaN values including ±Inf (negative zero folds onto
// positive zero so the map respects float equality). NaNs get keys above
// +Inf (ordered by payload) — callers that sort weights must not feed NaN,
// exactly as the comparators this replaces could not order NaN.
func Float64Key(f float64) uint64 {
	b := math.Float64bits(f)
	if b == 1<<63 { // -0.0: equal to +0.0, must share its key
		b = 0
	}
	if b>>63 != 0 {
		return ^b
	}
	return b ^ 1<<63
}
