package par

import (
	"math"
	"sort"
	"testing"

	"mpcspanner/internal/xrand"
)

// sortRef stably sorts (key, idx) pairs with sort.SliceStable — the
// reference order RadixSorter must reproduce bit-for-bit.
func sortRef(keys []uint64, idx []uint32) ([]uint64, []uint32) {
	type kv struct {
		k uint64
		i uint32
	}
	pairs := make([]kv, len(keys))
	for i := range keys {
		pairs[i] = kv{keys[i], idx[i]}
	}
	sort.SliceStable(pairs, func(a, b int) bool { return pairs[a].k < pairs[b].k })
	ks := make([]uint64, len(keys))
	is := make([]uint32, len(keys))
	for i, p := range pairs {
		ks[i] = p.k
		is[i] = p.i
	}
	return ks, is
}

func checkRadixMatchesRef(t *testing.T, name string, keys []uint64) {
	t.Helper()
	wantK, wantI := sortRef(keys, iota32(len(keys)))
	for _, w := range []int{1, 2, 3, 4, 8} {
		gotK := append([]uint64(nil), keys...)
		gotI := iota32(len(keys))
		RadixSortKeys(w, gotK, gotI)
		for i := range gotK {
			if gotK[i] != wantK[i] || gotI[i] != wantI[i] {
				t.Fatalf("%s workers=%d: slot %d = (%d,%d), want (%d,%d)",
					name, w, i, gotK[i], gotI[i], wantK[i], wantI[i])
			}
		}
	}
}

func iota32(n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(i)
	}
	return out
}

func TestRadixSortKeysMatchesSliceStable(t *testing.T) {
	rng := xrand.Split(99, 0x7261646978)
	const n = 5000
	full := make([]uint64, n)
	ties := make([]uint64, n)
	lowBits := make([]uint64, n)
	sorted := make([]uint64, n)
	reversed := make([]uint64, n)
	for i := 0; i < n; i++ {
		full[i] = rng.Uint64() // exercises all 8 digit positions
		ties[i] = uint64(rng.Intn(7))
		lowBits[i] = uint64(rng.Intn(1 << 20)) // upper passes constant → skipped
		sorted[i] = uint64(i)
		reversed[i] = uint64(n - i)
	}
	checkRadixMatchesRef(t, "full-range", full)
	checkRadixMatchesRef(t, "heavy-ties", ties)
	checkRadixMatchesRef(t, "low-bits", lowBits)
	checkRadixMatchesRef(t, "sorted", sorted)
	checkRadixMatchesRef(t, "reversed", reversed)
	checkRadixMatchesRef(t, "constant", make([]uint64, n))
	checkRadixMatchesRef(t, "empty", nil)
	checkRadixMatchesRef(t, "single", []uint64{42})
}

// TestRadixSorterReuse pins the retained-scratch contract: after a first
// sort sized the buffers, repeat sorts of same-size inputs allocate nothing.
func TestRadixSorterReuse(t *testing.T) {
	rng := xrand.Split(7, 0x7261646978)
	const n = 4096
	keys := make([]uint64, n)
	idx := make([]uint32, n)
	var rs RadixSorter
	fill := func() {
		for i := range keys {
			keys[i] = rng.Uint64()
			idx[i] = uint32(i)
		}
	}
	fill()
	rs.Sort(1, keys, idx)
	allocs := testing.AllocsPerRun(10, func() {
		fill()
		rs.Sort(1, keys, idx)
	})
	if allocs > 0 {
		t.Fatalf("steady-state RadixSorter.Sort allocated %.0f objects/op, want 0", allocs)
	}
	for i := 1; i < n; i++ {
		if keys[i-1] > keys[i] {
			t.Fatalf("keys out of order at %d after reuse", i)
		}
	}
}

func TestFloat64KeyPreservesOrder(t *testing.T) {
	vals := []float64{
		math.Inf(-1), -math.MaxFloat64, -1e300, -2.5, -1, -math.SmallestNonzeroFloat64,
		0, math.SmallestNonzeroFloat64, 1, 2.5, 1e300, math.MaxFloat64, math.Inf(1),
	}
	for i, a := range vals {
		for j, b := range vals {
			ka, kb := Float64Key(a), Float64Key(b)
			switch {
			case a < b && !(ka < kb):
				t.Errorf("Float64Key(%v) >= Float64Key(%v) but %v < %v", a, b, a, b)
			case a == b && ka != kb:
				t.Errorf("Float64Key(%v) != Float64Key(%v) for equal values (i=%d j=%d)", a, b, i, j)
			case a > b && !(ka > kb):
				t.Errorf("Float64Key(%v) <= Float64Key(%v) but %v > %v", a, b, a, b)
			}
		}
	}
	if Float64Key(math.Copysign(0, -1)) != Float64Key(0) {
		t.Error("Float64Key(-0) must equal Float64Key(+0): -0 == +0 as floats")
	}
	if Float64Key(math.NaN()) <= Float64Key(math.Inf(1)) {
		t.Error("NaN key must land above +Inf")
	}
}

// TestFloat64KeySortsWeights drives the mapping through the sorter on a
// weight-like distribution with ties and +Inf sentinels.
func TestFloat64KeySortsWeights(t *testing.T) {
	rng := xrand.Split(3, 0x77657967)
	const n = 2000
	ws := make([]float64, n)
	for i := range ws {
		switch rng.Intn(10) {
		case 0:
			ws[i] = math.Inf(1)
		case 1:
			ws[i] = float64(rng.Intn(5)) // heavy ties
		default:
			ws[i] = rng.Float64() * 100
		}
	}
	keys := make([]uint64, n)
	for i, w := range ws {
		keys[i] = Float64Key(w)
	}
	idx := iota32(n)
	RadixSortKeys(2, keys, idx)
	prev := math.Inf(-1)
	for i, id := range idx {
		w := ws[id]
		if w < prev {
			t.Fatalf("slot %d: weight %v below predecessor %v", i, w, prev)
		}
		if w == prev && i > 0 && idx[i-1] > id {
			t.Fatalf("slot %d: tie on %v broke stability (%d before %d)", i, w, idx[i-1], id)
		}
		prev = w
	}
}

// FuzzRadixSortKeys cross-checks arbitrary key streams against
// sort.SliceStable, the ISSUE-mandated fuzz oracle.
func FuzzRadixSortKeys(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 255, 254}, uint8(2))
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 1}, uint8(4))
	f.Fuzz(func(t *testing.T, raw []byte, workers uint8) {
		n := len(raw) / 8
		keys := make([]uint64, n)
		for i := 0; i < n; i++ {
			for b := 0; b < 8; b++ {
				keys[i] = keys[i]<<8 | uint64(raw[i*8+b])
			}
		}
		w := int(workers%8) + 1
		gotK := append([]uint64(nil), keys...)
		gotI := iota32(n)
		RadixSortKeys(w, gotK, gotI)
		wantK, wantI := sortRef(keys, iota32(n))
		for i := range wantK {
			if gotK[i] != wantK[i] || gotI[i] != wantI[i] {
				t.Fatalf("workers=%d slot %d: (%d,%d) want (%d,%d)", w, i, gotK[i], gotI[i], wantK[i], wantI[i])
			}
		}
	})
}
