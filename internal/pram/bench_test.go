package pram

import (
	"fmt"
	"runtime"
	"testing"

	"mpcspanner/internal/graph"
)

// BenchmarkPRAMSpannerCosts pins the PRAM-billed construction serial vs
// parallel (the bill itself is O(iterations); the spanner build is the
// wall-clock).
func BenchmarkPRAMSpannerCosts(b *testing.B) {
	g := graph.GNP(10_000, 10/10_000.0, graph.UniformWeight(1, 20), 7)
	counts := []int{1}
	if max := runtime.GOMAXPROCS(0); max > 1 {
		counts = append(counts, max)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("n=10k/k=16/t=2/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := SpannerCostsWorkers(g, 16, 2, 7, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
