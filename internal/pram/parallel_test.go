package pram

import (
	"reflect"
	"runtime"
	"testing"

	"mpcspanner/internal/graph"
)

// TestWorkerCountInvariancePRAM pins the PRAM path: the spanner and the
// work/depth bill are bit-identical between serial and multi-worker step
// loops (the bill models the CRCW machine, not the real pool).
func TestWorkerCountInvariancePRAM(t *testing.T) {
	w := runtime.NumCPU()
	if w < 4 {
		w = 4
	}
	g := graph.GNP(400, 0.04, graph.UniformWeight(1, 9), 3)
	resS, costS, err := SpannerCostsWorkers(g, 8, 2, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	resP, costP, err := SpannerCostsWorkers(g, 8, 2, 7, w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resS, resP) {
		t.Fatal("PRAM spanner differs between worker counts")
	}
	if costS != costP {
		t.Fatalf("PRAM bill differs between worker counts: %+v vs %+v", costS, costP)
	}
}

func TestNegativeWorkersRejectedPRAM(t *testing.T) {
	g := graph.Path(4, graph.UnitWeight, 1)
	if _, _, err := SpannerCostsWorkers(g, 2, 1, 1, -1); err == nil {
		t.Fatal("negative workers accepted")
	}
}
