// Package pram provides the CRCW PRAM work/depth cost model of Section 6's
// PRAM discussion: the spanner algorithms run against it and are billed the
// depths of the [BS07] primitives — hashing, semisorting, and generalized
// find-min each cost O(log* n) depth, while the union-find-style cluster
// merge costs O(1) depth (leader pointers are rewritten in parallel).
//
// The paper's claim reproduced here (experiment T11): the general algorithm
// has PRAM depth equal to its MPC iteration count times an O(log* n) factor,
// with total work Õ(m) — i.e. depth o(k) for every t, which no previous
// spanner construction achieved.
package pram

import (
	"fmt"
	"math"

	"mpcspanner/internal/graph"
	"mpcspanner/internal/par"
	"mpcspanner/internal/spanner"
)

// LogStar returns the iterated logarithm of n (number of times log₂ must be
// applied before the value drops to at most 1), with LogStar(n) ≥ 1 for
// n ≥ 2 so that primitive depths never vanish.
func LogStar(n float64) int {
	if n <= 2 {
		return 1
	}
	s := 0
	for n > 1 {
		n = math.Log2(n)
		s++
	}
	return s
}

// Costs accumulates work and depth.
type Costs struct {
	Work  int64
	Depth int64
}

// Sim is the accounting machine. Primitives add to Work and Depth; callers
// compose them exactly as the algorithm schedules parallel steps.
type Sim struct {
	n       int
	logStar int64
	c       Costs
}

// New returns a PRAM cost model for inputs of size parameter n.
func New(n int) *Sim {
	return &Sim{n: n, logStar: int64(LogStar(float64(n)))}
}

// Costs returns the accumulated bill.
func (s *Sim) Costs() Costs { return s.c }

// ParallelFor charges one parallel step over `items` processors doing
// constant work each.
func (s *Sim) ParallelFor(items int) {
	s.c.Depth++
	s.c.Work += int64(items)
}

// Semisort charges a [BS07] semisorting of `items` records: O(log* n) depth,
// linear work.
func (s *Sim) Semisort(items int) {
	s.c.Depth += s.logStar
	s.c.Work += int64(items)
}

// FindMin charges a generalized find-minimum over `items` records grouped by
// key: O(log* n) depth, linear work.
func (s *Sim) FindMin(items int) {
	s.c.Depth += s.logStar
	s.c.Work += int64(items)
}

// Hash charges a hashing pass: O(log* n) depth, linear work.
func (s *Sim) Hash(items int) {
	s.c.Depth += s.logStar
	s.c.Work += int64(items)
}

// Merge charges the cluster-merge primitive: leader pointers of `items`
// vertices rewritten in one parallel step (the union-find-like structure of
// Section 6's PRAM paragraph).
func (s *Sim) Merge(items int) {
	s.c.Depth++
	s.c.Work += int64(items)
}

// SpannerCosts runs General(k, t) on g and returns the spanner together with
// the PRAM bill of executing the same schedule with the [BS07] primitives:
// every grow iteration is one hashing pass, one semisort, one generalized
// find-min and one merge over the live edges; every contraction is one
// semisort plus a relabeling ParallelFor. The step loop executes on a
// GOMAXPROCS worker pool; use SpannerCostsWorkers to pin the pool size.
func SpannerCosts(g *graph.Graph, k, t int, seed uint64) (*spanner.Result, Costs, error) {
	return SpannerCostsWorkers(g, k, t, seed, 0)
}

// SpannerCostsWorkers is SpannerCosts with an explicit worker pool size for
// the underlying step loop (par conventions: 0 = GOMAXPROCS, 1 = serial;
// negatives rejected). The work/depth bill models the CRCW PRAM regardless
// of the real pool, and both the spanner and the bill are bit-identical at
// every worker count.
func SpannerCostsWorkers(g *graph.Graph, k, t int, seed uint64, workers int) (*spanner.Result, Costs, error) {
	if k < 1 || t < 1 {
		return nil, Costs{}, fmt.Errorf("pram: k and t must be >= 1 (got k=%d t=%d)", k, t)
	}
	if err := par.CheckWorkers("pram: workers", workers); err != nil {
		return nil, Costs{}, err
	}
	res, err := spanner.General(g, k, t, spanner.Options{Seed: seed, Workers: workers})
	if err != nil {
		return nil, Costs{}, err
	}
	s := New(g.N())
	m := 2 * g.M() // both directed copies, as in the MPC layout
	for i := 0; i < res.Stats.Iterations; i++ {
		s.Hash(m)
		s.Semisort(m)
		s.FindMin(m)
		s.Merge(g.N())
	}
	for i := 0; i < res.Stats.Epochs; i++ {
		s.Semisort(m)
		s.ParallelFor(m)
	}
	// Phase 2: one final semisorted dedup.
	s.Semisort(m)
	return res, s.Costs(), nil
}

// DepthBound returns the paper's PRAM depth guarantee for General(k, t) on
// n vertices: O(iterations · log* n) with this implementation's explicit
// per-iteration constant (3 log*-primitives + 1 merge step) plus the
// per-epoch and final semisorts.
func DepthBound(n, k, t int) int64 {
	ls := int64(LogStar(float64(n)))
	specs := spanner.Schedule(k, t)
	epochs := int64(0)
	if len(specs) > 0 {
		epochs = int64(specs[len(specs)-1].Epoch)
	}
	return int64(len(specs))*(3*ls+1) + epochs*(ls+1) + ls
}
