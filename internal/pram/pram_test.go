package pram

import (
	"testing"

	"mpcspanner/internal/graph"
	"mpcspanner/internal/spanner"
)

func TestLogStar(t *testing.T) {
	cases := map[float64]int{1: 1, 2: 1, 4: 2, 16: 3, 65536: 4, 1e9: 5}
	for n, want := range cases {
		if got := LogStar(n); got != want {
			t.Fatalf("LogStar(%v) = %d, want %d", n, got, want)
		}
	}
}

func TestPrimitiveAccounting(t *testing.T) {
	s := New(65536) // log* = 4
	s.ParallelFor(10)
	s.Semisort(100)
	s.FindMin(50)
	s.Hash(25)
	s.Merge(7)
	c := s.Costs()
	if c.Work != 10+100+50+25+7 {
		t.Fatalf("work %d", c.Work)
	}
	if c.Depth != 1+4+4+4+1 {
		t.Fatalf("depth %d", c.Depth)
	}
}

func TestSpannerCostsWithinDepthBound(t *testing.T) {
	g := graph.GNP(500, 0.04, graph.UniformWeight(1, 9), 3)
	for _, c := range []struct{ k, t int }{{4, 1}, {8, 2}, {16, 3}, {16, 15}} {
		res, costs, err := SpannerCosts(g, c.k, c.t, 7)
		if err != nil {
			t.Fatal(err)
		}
		if costs.Depth > DepthBound(g.N(), c.k, c.t) {
			t.Fatalf("k=%d t=%d: depth %d exceeds bound %d",
				c.k, c.t, costs.Depth, DepthBound(g.N(), c.k, c.t))
		}
		// Work is near-linear: a small multiple of m per iteration.
		maxWork := int64(res.Stats.Iterations+res.Stats.Epochs+2) * int64(8*g.M()+2*g.N())
		if costs.Work > maxWork {
			t.Fatalf("k=%d t=%d: work %d exceeds near-linear budget %d", c.k, c.t, costs.Work, maxWork)
		}
		if _, err := spanner.Verify(g, res, spanner.StretchBound(c.k, c.t)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDepthSublinearInK(t *testing.T) {
	// The headline PRAM claim: depth o(k). Compare the t=1 depth against the
	// Θ(k·log* n) cost of [BS07]-style constructions.
	n := 1000
	ls := int64(LogStar(float64(n)))
	// (k=16 is below the constant-factor crossover; the separation is
	// asymptotic in k.)
	for _, k := range []int{64, 256, 1024} {
		bound := DepthBound(n, k, 1)
		bsDepth := int64(k) * ls
		if bound >= bsDepth {
			t.Fatalf("k=%d: general depth bound %d not below BS07's %d", k, bound, bsDepth)
		}
	}
}

func TestSpannerCostsValidates(t *testing.T) {
	g := graph.Path(4, graph.UnitWeight, 1)
	if _, _, err := SpannerCosts(g, 0, 1, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, _, err := SpannerCosts(g, 2, 0, 1); err == nil {
		t.Fatal("t=0 accepted")
	}
}

func TestDepthBoundMonotoneInT(t *testing.T) {
	// Larger t means more iterations: depth grows.
	n, k := 4096, 64
	prev := int64(0)
	for _, tt := range []int{1, 2, 4, 8} {
		b := DepthBound(n, k, tt)
		if b < prev {
			t.Fatalf("depth bound decreased at t=%d: %d < %d", tt, b, prev)
		}
		prev = b
	}
}
