package server_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"mpcspanner"
	"mpcspanner/internal/artifact"
	"mpcspanner/internal/server"
)

// getInfo fetches and decodes /v1/info.
func getInfo(t *testing.T, url string) server.Info {
	t.Helper()
	resp, err := http.Get(url + "/v1/info")
	if err != nil {
		t.Fatalf("GET /v1/info: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/info: status %d", resp.StatusCode)
	}
	var info server.Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decoding /v1/info: %v", err)
	}
	return info
}

// TestInfoArtifactIdentity is the fleet-identity contract the CI smoke job
// asserts: a replica started from a saved artifact reports the file's
// fingerprint and checksum on /v1/info, byte-for-byte what the saver
// printed.
func TestInfoArtifactIdentity(t *testing.T) {
	ctx := context.Background()
	g := testGraph(t, 12, 4)
	path := filepath.Join(t.TempDir(), "spanner.art")
	res, err := mpcspanner.Build(ctx, g,
		mpcspanner.WithAlgorithm(mpcspanner.AlgoMPC), mpcspanner.WithK(4),
		mpcspanner.WithSeed(11), mpcspanner.WithSaveTo(path))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	_ = res
	a, err := mpcspanner.Open(ctx, path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer a.Close()
	s, err := mpcspanner.Serve(ctx, nil, mpcspanner.WithArtifact(a))
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}

	fp := a.Fingerprint()
	ts := httptest.NewServer(server.New(server.Config{
		Backend: s,
		Graph:   s.Served(),
		Artifact: &server.ArtifactInfo{
			Algorithm: fp.Algorithm, Seed: fp.Seed, K: fp.K, T: fp.T,
			Gamma: fp.Gamma, Workers: fp.Workers,
			Checksum: a.Checksum(), Rows: artifact.RowsOf(a).Len(), Mapped: a.Mapped(),
		},
	}).Handler())
	defer ts.Close()

	info := getInfo(t, ts.URL)
	if info.Artifact == nil {
		t.Fatal("/v1/info omitted the artifact block for an artifact-served replica")
	}
	art := info.Artifact
	if art.Checksum != a.Checksum() {
		t.Errorf("checksum: got %s, want %s", art.Checksum, a.Checksum())
	}
	if art.Algorithm != string(mpcspanner.AlgoMPC) || art.Seed != 11 || art.K != 4 {
		t.Errorf("fingerprint drifted on the wire: %+v", art)
	}
	if art.Mapped != a.Mapped() {
		t.Errorf("mapped: got %v, want %v", art.Mapped, a.Mapped())
	}
	if info.N != s.Served().N() || info.M != s.Served().M() {
		t.Errorf("graph shape: got (%d,%d), want (%d,%d)", info.N, info.M,
			s.Served().N(), s.Served().M())
	}
}

// TestInfoOmitsArtifactWhenBuiltInProcess pins the omitempty contract: a
// replica that built in-process carries no artifact block at all.
func TestInfoOmitsArtifactWhenBuiltInProcess(t *testing.T) {
	g := testGraph(t, 10, 2)
	s := exactSession(t, g, nil, 1)
	ts := httptest.NewServer(server.New(server.Config{Backend: s, Graph: g}).Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["artifact"]; ok {
		t.Fatal("/v1/info carries an artifact block for an in-process replica")
	}
}
