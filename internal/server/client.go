package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mpcspanner/internal/oracle"
)

// Client speaks the oracled wire protocol: batched /v1/query posts with
// exact float64 round-tripping, typed *APIError on non-2xx, and the Zipf
// load generator the `oracled load` subcommand and the CI smoke job run.
type Client struct {
	// BaseURL is the replica (or proxy) root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the transport; nil selects http.DefaultClient.
	HTTP *http.Client
}

// NewClient returns a client for baseURL with the default transport.
func NewClient(baseURL string) *Client { return &Client{BaseURL: baseURL} }

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// APIError is a non-2xx daemon response: the HTTP status, the typed error
// body, and the parsed Retry-After backoff for 429s (zero otherwise).
type APIError struct {
	Status     int
	Code       string
	Field      string
	Reason     string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("oracled: %d %s: %s %s", e.Status, e.Code, e.Field, e.Reason)
}

// Shed reports whether the daemon shed this request under overload (429) —
// the one error class a load generator retries rather than fails on.
func (e *APIError) Shed() bool { return e.Status == http.StatusTooManyRequests }

// Info fetches /v1/info.
func (c *Client) Info(ctx context.Context) (Info, error) {
	var info Info
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/info", nil)
	if err != nil {
		return info, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return info, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return info, apiError(resp)
	}
	return info, json.NewDecoder(resp.Body).Decode(&info)
}

// Query posts one batch: out[i] answers pairs[i] (+Inf when unreachable),
// decoded bit-identically to what the daemon's backend computed. timeout is
// the per-request deadline shipped as timeout_ms (0 = none). Non-2xx
// responses return a *APIError.
func (c *Client) Query(ctx context.Context, pairs []oracle.Pair, timeout time.Duration) ([]float64, error) {
	req := queryRequest{Pairs: make([]queryPair, len(pairs)), TimeoutMS: timeout.Milliseconds()}
	for i, p := range pairs {
		req.Pairs[i] = queryPair{U: p.U, V: p.V}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var qr queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return nil, err
	}
	if len(qr.Distances) != len(pairs) {
		return nil, fmt.Errorf("oracled: %d distances for %d pairs", len(qr.Distances), len(pairs))
	}
	out := make([]float64, len(qr.Distances))
	for i, d := range qr.Distances {
		out[i] = float64(d)
	}
	return out, nil
}

// apiError decodes a non-2xx response into *APIError, tolerating bodies that
// are not the typed JSON (proxies inject their own error pages).
func apiError(resp *http.Response) error {
	e := &APIError{Status: resp.StatusCode}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var body errorBody
	if json.Unmarshal(raw, &body) == nil && body.Error.Code != "" {
		e.Code, e.Field, e.Reason = body.Error.Code, body.Error.Field, body.Error.Reason
	} else {
		e.Code = "http_error"
		e.Reason = string(bytes.TrimSpace(raw))
	}
	return e
}

// LoadOptions configures RunLoad.
type LoadOptions struct {
	// Pairs is the full trace to fire, e.g. oracle.ZipfWorkload(...).
	Pairs []oracle.Pair
	// Batch is the pairs per request; <= 0 selects 512.
	Batch int
	// Concurrency is the number of in-flight requests the generator keeps;
	// <= 0 selects 8.
	Concurrency int
	// Timeout is each request's timeout_ms budget (0 = none).
	Timeout time.Duration
}

// LoadReport summarizes one load run. Shed batches (429) are counted, not
// failed: shedding under overload is the daemon behaving as designed.
type LoadReport struct {
	Batches   int           // requests sent
	OK        int           // 200s
	Shed      int           // 429s
	Failed    int           // transport errors and non-429 non-200s
	PairsOK   int           // pairs answered by the 200s
	Elapsed   time.Duration // wall clock of the whole run
	Latencies []time.Duration
}

// Quantile returns the q-quantile of the per-request latencies (0 when no
// request completed). Latencies are sorted in place on first use.
func (r *LoadReport) Quantile(q float64) time.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	sort.Slice(r.Latencies, func(i, j int) bool { return r.Latencies[i] < r.Latencies[j] })
	i := int(q * float64(len(r.Latencies)-1))
	return r.Latencies[i]
}

// RunLoad fires o.Pairs at the daemon in batches over a fixed-size worker
// pool and reports what came back. Workers claim batches through an atomic
// cursor, so the set of requests is the same at any concurrency — only the
// interleaving varies. A done ctx stops the run at the next batch boundary.
func (c *Client) RunLoad(ctx context.Context, o LoadOptions) LoadReport {
	batch := o.Batch
	if batch <= 0 {
		batch = 512
	}
	workers := o.Concurrency
	if workers <= 0 {
		workers = 8
	}
	nBatches := (len(o.Pairs) + batch - 1) / batch
	if workers > nBatches {
		workers = nBatches
	}

	var (
		mu     sync.Mutex
		report LoadReport
		next   atomic.Int64
		wg     sync.WaitGroup
	)
	start := time.Now()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				j := int(next.Add(1)) - 1
				if j >= nBatches {
					return
				}
				lo, hi := j*batch, (j+1)*batch
				if hi > len(o.Pairs) {
					hi = len(o.Pairs)
				}
				reqStart := time.Now()
				dists, err := c.Query(ctx, o.Pairs[lo:hi], o.Timeout)
				lat := time.Since(reqStart)

				mu.Lock()
				report.Batches++
				report.Latencies = append(report.Latencies, lat)
				switch e := (*APIError)(nil); {
				case err == nil:
					report.OK++
					report.PairsOK += len(dists)
				case asAPIError(err, &e) && e.Shed():
					report.Shed++
				default:
					report.Failed++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	report.Elapsed = time.Since(start)
	return report
}

// asAPIError is errors.As without the reflective allocation in the hot loop.
func asAPIError(err error, target **APIError) bool {
	e, ok := err.(*APIError)
	if ok {
		*target = e
	}
	return ok
}
