package server_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"mpcspanner/internal/obs"
	"mpcspanner/internal/oracle"
	"mpcspanner/internal/server"
)

// TestRunLoadCoversTrace pins the load generator the CI smoke job drives:
// every batch of the trace is fired exactly once whatever the concurrency,
// every pair is answered, and a healthy daemon sheds nothing.
func TestRunLoadCoversTrace(t *testing.T) {
	g := testGraph(t, 12, 23)
	reg := obs.NewRegistry()
	session := exactSession(t, g, reg, 0)
	ts := httptest.NewServer(server.New(server.Config{
		Backend: session, Graph: g, Metrics: reg,
	}).Handler())
	defer ts.Close()
	c := server.NewClient(ts.URL)

	info, err := c.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	pairs := oracle.ZipfWorkload(info.N, 1000, 1.2, 31)

	for _, conc := range []int{1, 4} {
		report := c.RunLoad(context.Background(), server.LoadOptions{
			Pairs: pairs, Batch: 64, Concurrency: conc, Timeout: 10 * time.Second,
		})
		wantBatches := (len(pairs) + 63) / 64
		if report.Batches != wantBatches || report.OK != wantBatches {
			t.Fatalf("concurrency %d: %d batches / %d ok, want %d / %d",
				conc, report.Batches, report.OK, wantBatches, wantBatches)
		}
		if report.PairsOK != len(pairs) {
			t.Fatalf("concurrency %d: %d pairs answered, want %d", conc, report.PairsOK, len(pairs))
		}
		if report.Shed != 0 || report.Failed != 0 {
			t.Fatalf("concurrency %d: shed=%d failed=%d on a healthy daemon", conc, report.Shed, report.Failed)
		}
		if report.Quantile(0.5) <= 0 {
			t.Fatalf("concurrency %d: p50 latency must be positive", conc)
		}
	}
}

// TestRunLoadCountsShedding pins the report taxonomy under overload: shed
// batches are counted as shed, not failed, so a smoke run under deliberate
// overload still exits zero.
func TestRunLoadCountsShedding(t *testing.T) {
	g := testGraph(t, 8, 29)
	session := exactSession(t, g, nil, 1)
	gate := &gatedBackend{inner: session, release: make(chan struct{})}
	srv := server.New(server.Config{
		Backend: gate, Graph: g, MaxInflight: 1, QueueWait: 10 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// With the gate closed and one slot, at most one batch is admitted (and
	// parked); everything else sheds. Release the gate afterwards so the
	// parked batch finishes and the pool drains.
	pairs := oracle.ZipfWorkload(g.N(), 256, 1.2, 37)
	done := make(chan server.LoadReport, 1)
	go func() {
		done <- server.NewClient(ts.URL).RunLoad(context.Background(), server.LoadOptions{
			Pairs: pairs, Batch: 32, Concurrency: 4,
		})
	}()
	waitFor(t, 2*time.Second, func() bool { return scrapeSeries(t, ts.URL, "server_shed_total") >= 1 })
	close(gate.release)
	report := <-done

	if report.Failed != 0 {
		t.Fatalf("failed=%d; 429s must count as shed, not failures", report.Failed)
	}
	if report.Shed == 0 {
		t.Fatal("no batch shed under deliberate overload")
	}
	if report.OK+report.Shed != report.Batches {
		t.Fatalf("report books don't close: ok=%d shed=%d batches=%d",
			report.OK, report.Shed, report.Batches)
	}
}
