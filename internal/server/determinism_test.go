package server_test

import (
	"context"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"mpcspanner"
	"mpcspanner/internal/oracle"
	"mpcspanner/internal/server"
)

// TestWireBitIdentity extends the PR 3 / PR 5 bit-identity contract across
// the wire: for the same seed, a daemon replica answers a recorded Zipf
// trace bit-identically to an in-process Session.QueryMany — at every
// worker count, through the full §7 pipeline (spanner build + cached
// serving), and batched arbitrarily. This is what makes N replicas behind a
// round-robin proxy one consistent service: any replica, any batching, same
// bits.
func TestWireBitIdentity(t *testing.T) {
	const (
		n    = 256
		seed = 5
	)
	g := testGraph(t, 16, 21) // 16x16 grid, n = 256
	trace := oracle.ZipfWorkload(n, 2000, 1.2, 9)
	ctx := context.Background()

	// Reference answers: one in-process pipeline session per worker count.
	var ref [][]float64
	for _, workers := range []int{1, 3, 0} {
		sess, err := mpcspanner.Serve(ctx, g,
			mpcspanner.WithSeed(seed), mpcspanner.WithWorkers(workers))
		if err != nil {
			t.Fatalf("in-process Serve(workers=%d): %v", workers, err)
		}
		dists, err := sess.QueryMany(ctx, trace)
		if err != nil {
			t.Fatalf("in-process QueryMany(workers=%d): %v", workers, err)
		}
		ref = append(ref, dists)
	}
	// The in-process contract first (pinned elsewhere, cheap to re-assert):
	// worker count never changes a bit.
	for w := 1; w < len(ref); w++ {
		for i := range ref[0] {
			if math.Float64bits(ref[0][i]) != math.Float64bits(ref[w][i]) {
				t.Fatalf("in-process bit-identity broken at pair %d between worker configs", i)
			}
		}
	}

	// Wire answers: a fresh daemon replica per worker count, same seed,
	// same trace replayed in uneven batches.
	for wi, workers := range []int{1, 3, 0} {
		sess, err := mpcspanner.Serve(ctx, g,
			mpcspanner.WithSeed(seed), mpcspanner.WithWorkers(workers))
		if err != nil {
			t.Fatalf("daemon Serve(workers=%d): %v", workers, err)
		}
		ts := httptest.NewServer(server.New(server.Config{
			Backend: sess, Graph: sess.Served(),
		}).Handler())
		c := server.NewClient(ts.URL)

		var got []float64
		const batch = 257 // deliberately not a divisor of the trace length
		for lo := 0; lo < len(trace); lo += batch {
			hi := lo + batch
			if hi > len(trace) {
				hi = len(trace)
			}
			part, err := c.Query(ctx, trace[lo:hi], 30*time.Second)
			if err != nil {
				t.Fatalf("wire Query(workers=%d, batch at %d): %v", workers, lo, err)
			}
			got = append(got, part...)
		}
		ts.Close()

		if len(got) != len(ref[wi]) {
			t.Fatalf("workers=%d: %d wire answers for %d queries", workers, len(got), len(ref[wi]))
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(ref[wi][i]) {
				t.Fatalf("workers=%d pair %d (%d,%d): wire %v (bits %x) != in-process %v (bits %x)",
					workers, i, trace[i].U, trace[i].V,
					got[i], math.Float64bits(got[i]), ref[wi][i], math.Float64bits(ref[wi][i]))
			}
		}
	}
}
