package server

import (
	"math"
	"strconv"
)

// queryRequest is the POST /v1/query body:
//
//	{"pairs": [{"u": 0, "v": 99}, ...], "timeout_ms": 500}
//
// timeout_ms is optional; 0 (or absent) means no per-request deadline beyond
// the server's MaxTimeout ceiling, negative is rejected as an invalid option.
type queryRequest struct {
	Pairs     []queryPair `json:"pairs"`
	TimeoutMS int64       `json:"timeout_ms"`
}

// queryPair is one (source, target) query on the wire.
type queryPair struct {
	U int `json:"u"`
	V int `json:"v"`
}

// queryResponse is the 200 body: distances[i] answers pairs[i], null meaning
// unreachable (+Inf does not exist in JSON).
type queryResponse struct {
	Distances []jsonFloat `json:"distances"`
}

// Info is the GET /v1/info body.
type Info struct {
	N           int `json:"n"`
	M           int `json:"m"`
	MaxInflight int `json:"max_inflight"`
	MaxPairs    int `json:"max_pairs"`

	// Artifact identifies the saved artifact the replica serves from, when
	// it was started with -load; nil for replicas that built in-process.
	Artifact *ArtifactInfo `json:"artifact,omitempty"`

	// SSSP advertises the replica's resolved row-fill engine, so a fleet
	// operator can confirm every replica answers cold queries the same way;
	// nil when the backend does not expose one (bare test backends).
	SSSP *SSSPInfo `json:"sssp,omitempty"`

	// Memory reports the out-of-core profile of an in-process budgeted
	// build; nil when the replica built fully resident or serves an
	// artifact (no build phase ran here).
	Memory *MemoryInfo `json:"memory,omitempty"`
}

// MemoryInfo is the out-of-core block of /v1/info: the byte budget the
// replica's build ran under and how hard the extmem layer had to work to
// stay inside it. Spilling never changes answers (the spilled build is
// bit-identical to the resident one), so this block is operational truth
// only: it tells a fleet operator which replicas paid disk traffic for
// their build and how much.
type MemoryInfo struct {
	BudgetBytes  int64 `json:"budget_bytes"`
	SpilledBytes int64 `json:"spilled_bytes"`
	RunFiles     int64 `json:"run_files"`
	MergePasses  int64 `json:"merge_passes"`
}

// SSSPInfo is the row-fill engine block of /v1/info: the engine name after
// auto-resolution ("heap" or "delta-stepping", never "auto") and, for
// delta-stepping, the effective bucket width Δ.
type SSSPInfo struct {
	Engine string  `json:"engine"`
	Delta  float64 `json:"delta,omitempty"`
}

// ArtifactInfo is the artifact identity block of /v1/info: the determinism
// fingerprint stored in the file plus the file's content checksum, so a
// fleet operator (or the CI smoke job) can assert every replica answers
// from the very same build.
type ArtifactInfo struct {
	Algorithm string  `json:"algorithm"`
	Seed      uint64  `json:"seed"`
	K         int     `json:"k"`
	T         int     `json:"t"`
	Gamma     float64 `json:"gamma,omitempty"`
	Workers   int     `json:"workers"`
	Checksum  string  `json:"checksum"`
	Rows      int     `json:"rows"`
	Mapped    bool    `json:"mapped"`
}

// errorBody wraps every non-2xx response.
type errorBody struct {
	Error errorDetail `json:"error"`
}

// errorDetail is the typed error clients classify on: Code is the stable
// vocabulary ("invalid_option", "deadline_exceeded", "canceled", "shed",
// "draining", "bad_request", "method_not_allowed", "internal"); Field and
// Reason carry the *core.OptionError structure when Code is
// "invalid_option".
type errorDetail struct {
	Code   string `json:"code"`
	Field  string `json:"field,omitempty"`
	Reason string `json:"reason,omitempty"`
}

// jsonFloat encodes a distance exactly: the shortest decimal that parses
// back to the identical float64 bit pattern (strconv 'g' with precision -1),
// with +Inf — unreachable — as JSON null. This is what makes the wire
// bit-identity contract (daemon responses == in-process QueryMany) testable:
// encode→decode is lossless.
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsInf(v, +1) {
		return []byte("null"), nil
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

func (f *jsonFloat) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = jsonFloat(math.Inf(+1))
		return nil
	}
	v, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return err
	}
	*f = jsonFloat(v)
	return nil
}
