package server_test

import (
	"context"
	"errors"
	"math"
	"net"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"mpcspanner/internal/obs"
	"mpcspanner/internal/oracle"
	"mpcspanner/internal/server"
)

// TestGracefulDrain pins the daemon lifecycle: canceling Run's context (the
// SIGTERM path — cmd/oracled wires signal.NotifyContext straight into it)
// drains in-flight requests to completion, rejects new ones, returns
// cleanly, and leaks no goroutines.
func TestGracefulDrain(t *testing.T) {
	before := runtime.NumGoroutine()

	g := testGraph(t, 10, 19)
	reg := obs.NewRegistry()
	session := exactSession(t, g, reg, 2)
	gate := &gatedBackend{inner: session, release: make(chan struct{})}
	srv := server.New(server.Config{Backend: gate, Graph: g, Metrics: reg, MaxInflight: 4})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	baseURL := "http://" + l.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- srv.Run(ctx, l, 10*time.Second) }()

	// A dedicated client whose idle connections we can close before the
	// leak assertion.
	httpc := &http.Client{Transport: &http.Transport{}}
	c := &server.Client{BaseURL: baseURL, HTTP: httpc}

	// Readiness, then park one request in flight behind the gate.
	waitFor(t, 2*time.Second, func() bool {
		resp, err := httpc.Get(baseURL + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})
	inflightPairs := []oracle.Pair{{U: 4, V: 77}}
	inflightDone := make(chan error, 1)
	inflightDists := make(chan []float64, 1)
	go func() {
		dists, err := c.Query(context.Background(), inflightPairs, 0)
		inflightDists <- dists
		inflightDone <- err
	}()
	waitFor(t, 2*time.Second, func() bool { return scrapeSeries(t, baseURL, "server_inflight") == 1 })

	// SIGTERM. The listener closes and the replica flips to draining; the
	// parked request must stay untouched.
	cancel()
	waitFor(t, 2*time.Second, func() bool { return srv.Draining() })

	// New work is rejected: either the connection is refused (listener
	// closed) or a surviving keep-alive connection gets the retryable 503.
	_, err = c.Query(context.Background(), []oracle.Pair{{U: 0, V: 1}}, 0)
	if err == nil {
		t.Fatal("new request during drain must be rejected")
	}
	var ae *server.APIError
	if errors.As(err, &ae) {
		if ae.Status != http.StatusServiceUnavailable || ae.Code != "draining" {
			t.Fatalf("drain rejection: status %d code %q, want 503/draining", ae.Status, ae.Code)
		}
	} else if !isConnErr(err) {
		t.Fatalf("drain rejection: %v, want 503/draining or a closed-listener dial error", err)
	}

	select {
	case err := <-runDone:
		t.Fatalf("Run returned %v while a request was still in flight — drain must wait", err)
	case <-time.After(100 * time.Millisecond):
	}

	// Release the gate: the in-flight request completes correctly and Run
	// exits clean.
	close(gate.release)
	if err := <-inflightDone; err != nil {
		t.Fatalf("in-flight request during drain: %v", err)
	}
	want, _ := session.QueryMany(context.Background(), inflightPairs)
	if got := <-inflightDists; math.Float64bits(got[0]) != math.Float64bits(want[0]) {
		t.Fatalf("drained answer %v != %v", got[0], want[0])
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run after drain: %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after the last in-flight request finished")
	}

	// Goroutine-leak assertion (the PR 5 cancellation-test pattern): once
	// the client's idle connections are gone, the process settles back to
	// its pre-daemon goroutine count.
	httpc.CloseIdleConnections()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before+2 {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Fatalf("goroutines leaked across the daemon lifecycle: %d before, %d after", before, n)
	}
}

// isConnErr reports whether err looks like a dial against a closed listener.
func isConnErr(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	s := err.Error()
	return strings.Contains(s, "connection refused") || strings.Contains(s, "EOF") ||
		strings.Contains(s, "connection reset")
}
