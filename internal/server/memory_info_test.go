package server_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"mpcspanner/internal/server"
)

// TestInfoAdvertisesMemory pins the out-of-core block of /v1/info: a daemon
// wired like cmd/oracled after a budgeted build — Config.Memory fed from
// Result.MPC — advertises the budget and the spill traffic the build paid,
// and the client helper decodes the same numbers back.
func TestInfoAdvertisesMemory(t *testing.T) {
	g := testGraph(t, 10, 2)
	s := exactSession(t, g, nil, 1)
	mem := &server.MemoryInfo{
		BudgetBytes:  64 << 10,
		SpilledBytes: 123456,
		RunFiles:     7,
		MergePasses:  2,
	}
	ts := httptest.NewServer(server.New(server.Config{
		Backend: s, Graph: g, Memory: mem,
	}).Handler())
	defer ts.Close()

	info := getInfo(t, ts.URL)
	if info.Memory == nil {
		t.Fatal("/v1/info omitted the memory block")
	}
	if *info.Memory != *mem {
		t.Fatalf("memory block drifted on the wire: got %+v want %+v", info.Memory, mem)
	}

	cinfo, err := server.NewClient(ts.URL).Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cinfo.Memory == nil || *cinfo.Memory != *mem {
		t.Fatalf("client decoded memory block %+v", cinfo.Memory)
	}
}

// TestInfoOmitsMemoryWhenUnset pins the omitempty contract: resident and
// artifact-serving replicas (no budgeted build ran) carry no memory block.
func TestInfoOmitsMemoryWhenUnset(t *testing.T) {
	g := testGraph(t, 10, 2)
	s := exactSession(t, g, nil, 1)
	ts := httptest.NewServer(server.New(server.Config{Backend: s, Graph: g}).Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["memory"]; ok {
		t.Fatal("/v1/info carries a memory block although none was configured")
	}
}
