package server_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"

	"mpcspanner/internal/core"
	"mpcspanner/internal/obs"
	"mpcspanner/internal/oracle"
	"mpcspanner/internal/server"
)

// gatedBackend blocks every call until release is closed, honoring ctx like
// the real library layers do. It lets the overload tests hold requests
// in-flight deterministically instead of racing against wall-clock.
type gatedBackend struct {
	inner   server.Backend
	release chan struct{}
}

func (b *gatedBackend) QueryMany(ctx context.Context, pairs []oracle.Pair) ([]float64, error) {
	select {
	case <-b.release:
	case <-ctx.Done():
		return nil, core.Canceled(ctx.Err())
	}
	return b.inner.QueryMany(ctx, pairs)
}

// scrapeSeries fetches /metrics and returns the named single-value series.
func scrapeSeries(t *testing.T, url, name string) int64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	m := regexp.MustCompile(`(?m)^` + name + ` (-?\d+)$`).FindSubmatch(raw)
	if m == nil {
		t.Fatalf("/metrics has no series %s:\n%s", name, raw)
	}
	v, _ := strconv.ParseInt(string(m[1]), 10, 64)
	return v
}

// TestOverloadSheds pins the load-shedding contract: a burst past the
// in-flight ceiling yields 429 + Retry-After for every excess request —
// never a 5xx and never a hang — the shed counter moves on /metrics, and
// the responses that are served during shedding stay correct.
func TestOverloadSheds(t *testing.T) {
	g := testGraph(t, 10, 13)
	reg := obs.NewRegistry()
	session := exactSession(t, g, reg, 2)
	gate := &gatedBackend{inner: session, release: make(chan struct{})}
	srv := server.New(server.Config{
		Backend: gate, Graph: g, Metrics: reg,
		MaxInflight: 1, QueueWait: 40 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := server.NewClient(ts.URL)
	ctx := context.Background()
	holdPairs := []oracle.Pair{{U: 1, V: 42}, {U: 3, V: 0}}

	// Occupy the single slot with a gated request.
	holdDone := make(chan error, 1)
	holdDists := make(chan []float64, 1)
	go func() {
		dists, err := c.Query(ctx, holdPairs, 0)
		holdDists <- dists
		holdDone <- err
	}()
	waitFor(t, time.Second, func() bool { return scrapeSeries(t, ts.URL, "server_inflight") == 1 })

	// Burst: every one of these must shed within the queue-wait ceiling.
	const burst = 6
	var wg sync.WaitGroup
	errs := make([]error, burst)
	start := time.Now()
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Query(ctx, []oracle.Pair{{U: 0, V: 1}}, 0)
		}(i)
	}
	wg.Wait()
	burstElapsed := time.Since(start)

	for i, err := range errs {
		var ae *server.APIError
		if !errors.As(err, &ae) {
			t.Fatalf("burst %d: %v, want *APIError", i, err)
		}
		if !ae.Shed() || ae.Code != "shed" {
			t.Fatalf("burst %d: status %d code %q, want 429/shed", i, ae.Status, ae.Code)
		}
		if ae.RetryAfter < time.Second {
			t.Fatalf("burst %d: Retry-After %v, want >= 1s", i, ae.RetryAfter)
		}
	}
	if burstElapsed > 5*time.Second {
		t.Fatalf("shedding took %v; overload must be answered promptly", burstElapsed)
	}
	if shed := scrapeSeries(t, ts.URL, "server_shed_total"); shed != burst {
		t.Fatalf("server_shed_total = %d, want %d", shed, burst)
	}

	// The admitted request is untouched by the shedding around it: release
	// the gate and verify its answer against the in-process session.
	close(gate.release)
	if err := <-holdDone; err != nil {
		t.Fatalf("held request failed: %v", err)
	}
	want, err := session.QueryMany(ctx, holdPairs)
	if err != nil {
		t.Fatal(err)
	}
	got := <-holdDists
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("held request answer %d: %v != %v — shedding corrupted a served response", i, got[i], want[i])
		}
	}
	if inflight := scrapeSeries(t, ts.URL, "server_inflight"); inflight != 0 {
		t.Fatalf("server_inflight = %d after drain, want 0", inflight)
	}
}

// TestQueueDepthGaugeMoves pins the queue instrumentation: a request waiting
// for a slot is visible as server_queue_depth on /metrics while it waits,
// and admitted (200, correct answer) once the slot frees within its
// queue-wait budget — queueing is not shedding.
func TestQueueDepthGaugeMoves(t *testing.T) {
	g := testGraph(t, 10, 17)
	reg := obs.NewRegistry()
	session := exactSession(t, g, reg, 2)
	gate := &gatedBackend{inner: session, release: make(chan struct{})}
	srv := server.New(server.Config{
		Backend: gate, Graph: g, Metrics: reg,
		MaxInflight: 1, QueueWait: 10 * time.Second, // queue, don't shed
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := server.NewClient(ts.URL)
	ctx := context.Background()

	holdDone := make(chan error, 1)
	go func() { _, err := c.Query(ctx, []oracle.Pair{{U: 0, V: 5}}, 0); holdDone <- err }()
	waitFor(t, time.Second, func() bool { return scrapeSeries(t, ts.URL, "server_inflight") == 1 })

	queuedPairs := []oracle.Pair{{U: 2, V: 7}}
	queuedDone := make(chan error, 1)
	queuedDists := make(chan []float64, 1)
	go func() {
		dists, err := c.Query(ctx, queuedPairs, 0)
		queuedDists <- dists
		queuedDone <- err
	}()
	waitFor(t, time.Second, func() bool { return scrapeSeries(t, ts.URL, "server_queue_depth") == 1 })

	close(gate.release)
	if err := <-holdDone; err != nil {
		t.Fatalf("held request: %v", err)
	}
	if err := <-queuedDone; err != nil {
		t.Fatalf("queued request must be admitted when the slot frees, got %v", err)
	}
	want, _ := session.QueryMany(ctx, queuedPairs)
	if got := <-queuedDists; math.Float64bits(got[0]) != math.Float64bits(want[0]) {
		t.Fatalf("queued answer %v != %v", got[0], want[0])
	}
	waitFor(t, time.Second, func() bool {
		return scrapeSeries(t, ts.URL, "server_queue_depth") == 0 &&
			scrapeSeries(t, ts.URL, "server_inflight") == 0
	})
	if shed := scrapeSeries(t, ts.URL, "server_shed_total"); shed != 0 {
		t.Fatalf("server_shed_total = %d; queueing within budget must not shed", shed)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(fmt.Errorf("condition not reached within %v", d))
}
