// Package server is the network face of the paper's §7 build-once/query-many
// regime: an HTTP daemon over the facade's serving Session that answers
// batched distance queries (POST /v1/query decodes straight into the
// deterministic QueryMany fan-out), enforces per-request deadlines through
// the library's cooperative-cancellation plumbing, and — following the
// stateless-replica/shared-cache pattern of production distance services —
// degrades instead of collapsing under overload via admission control:
//
//   - A bounded in-flight semaphore caps the batches allowed into the oracle
//     at once. The ceiling is derived from the oracle's row budget (see
//     cmd/oracled), so admitted load can never thrash the LRU it depends on.
//   - Requests that cannot acquire a slot wait at most Config.QueueWait, then
//     are shed with 429 + Retry-After. Shedding is the only response to
//     overload: a saturated daemon answers every request promptly, correctly
//     or with a retryable status, never with a hang or a 5xx.
//
// Errors classify through the internal/core taxonomy: option/vertex
// rejections → 400, client-deadline expiry → 504, cancellation (client gone,
// server draining) → 503, shed → 429. The body of every non-2xx response is
// a typed JSON error (code/field/reason), so clients never parse prose.
//
// Observability rides the same obs registry as the build and the oracle:
// server_* admission series next to oracle_* cache series on one /metrics
// endpoint, plus /healthz for load-balancer checks and /debug/pprof.
// Replicas are stateless (the graph is frozen at startup), so horizontal
// scale is "run more of them behind a proxy" — see deploy/.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"mpcspanner/internal/core"
	"mpcspanner/internal/graph"
	"mpcspanner/internal/obs"
	"mpcspanner/internal/oracle"
)

// Backend answers batched distance queries under a context. The facade's
// *mpcspanner.Session satisfies it; tests substitute gated or slowed
// implementations to drive the admission and classification paths.
type Backend interface {
	QueryMany(ctx context.Context, pairs []oracle.Pair) ([]float64, error)
}

// Config configures New. Backend is required; everything else defaults.
type Config struct {
	// Backend answers the queries (typically a *mpcspanner.Session).
	Backend Backend

	// Graph is the served graph, reported by /v1/info so load generators can
	// size workloads without out-of-band knowledge. Optional.
	Graph *graph.Graph

	// Metrics is the registry the server_* series land on — share it with
	// the session's WithMetrics so /metrics tells the whole story. A nil
	// registry is replaced by a private one (the handlers never run
	// uninstrumented; a daemon without /metrics is pointless).
	Metrics *obs.Registry

	// MaxInflight caps the batches inside the backend at once; requests past
	// it queue, then shed. <= 0 selects 64. Derive it from the serving
	// cache's row budget (Session.CacheRows) so admitted concurrency cannot
	// outrun cache residency — cmd/oracled uses budget/4.
	MaxInflight int

	// QueueWait is the longest a request may wait for an in-flight slot
	// before being shed with 429. <= 0 selects 100ms.
	QueueWait time.Duration

	// MaxPairs caps the pairs of one /v1/query batch. <= 0 selects 65536.
	MaxPairs int

	// MaxTimeout caps the per-request deadline a client may ask for with
	// timeout_ms, bounding worst-case slot occupancy. <= 0 selects 30s.
	MaxTimeout time.Duration

	// Artifact, when non-nil, is reported by /v1/info so clients can verify
	// which saved build this replica serves. Optional.
	Artifact *ArtifactInfo

	// SSSP, when non-nil, is reported by /v1/info: the backend session's
	// resolved row-fill engine (cmd/oracled passes Session.SSSP). Optional.
	SSSP *SSSPInfo

	// Memory, when non-nil, is reported by /v1/info: the out-of-core
	// profile of the replica's in-process budgeted build (cmd/oracled
	// fills it from Result.MPC when -memory was set). Optional.
	Memory *MemoryInfo
}

// Server is one stateless oracled replica: an http.Handler plus the drain
// switch its lifecycle runs on. Create with New; it is safe for concurrent
// use.
type Server struct {
	cfg      Config
	sem      chan struct{}
	draining atomic.Bool

	requests    *obs.Counter
	shed        *obs.Counter
	inflight    *obs.Gauge
	queueDepth  *obs.Gauge
	drainingG   *obs.Gauge
	requestSecs *obs.Histogram
	queueSecs   *obs.Histogram
	batchPairs  *obs.Histogram
}

// New returns a server over cfg, registering the server_* series eagerly so
// /metrics exposes them (at zero) from the first scrape — the CI smoke job
// greps for presence, not movement.
func New(cfg Config) *Server {
	if cfg.Backend == nil {
		panic("server: Config.Backend is required")
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64
	}
	if cfg.QueueWait <= 0 {
		cfg.QueueWait = 100 * time.Millisecond
	}
	if cfg.MaxPairs <= 0 {
		cfg.MaxPairs = 65536
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 30 * time.Second
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	reg := cfg.Metrics
	return &Server{
		cfg:         cfg,
		sem:         make(chan struct{}, cfg.MaxInflight),
		requests:    reg.Counter("server_requests_total"),
		shed:        reg.Counter("server_shed_total"),
		inflight:    reg.Gauge("server_inflight"),
		queueDepth:  reg.Gauge("server_queue_depth"),
		drainingG:   reg.Gauge("server_draining"),
		requestSecs: reg.Histogram("server_request_seconds", obs.LatencyBuckets),
		queueSecs:   reg.Histogram("server_queue_wait_seconds", obs.LatencyBuckets),
		batchPairs:  reg.Histogram("server_batch_pairs", obs.SizeBuckets),
	}
}

// Handler returns the replica's full endpoint surface:
//
//	POST /v1/query    batched distance queries
//	GET  /v1/info     served-graph shape and admission limits
//	GET  /healthz     200 serving / 503 draining (load-balancer check)
//	GET  /metrics     the shared obs registry, Prometheus text
//	     /debug/pprof profiling
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/info", s.handleInfo)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/metrics", s.cfg.Metrics.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// BeginDrain flips the replica into draining: /healthz answers 503 so the
// load balancer stops routing here, and new /v1/query requests are rejected
// with a retryable 503 while in-flight ones run to completion. Run calls it
// when its context ends; it is idempotent.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	s.drainingG.Set(1)
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Run serves on l until ctx is done (cmd/oracled wires SIGTERM/SIGINT into
// ctx via signal.NotifyContext), then drains gracefully: the listener
// closes, new requests are rejected, and in-flight requests get up to
// drainTimeout to finish before remaining connections are torn down.
// Returns nil on a clean drain.
func (s *Server) Run(ctx context.Context, l net.Listener, drainTimeout time.Duration) error {
	if drainTimeout <= 0 {
		drainTimeout = 15 * time.Second
	}
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		// Serve failed before ctx ended (bad listener, port stolen).
		return err
	case <-ctx.Done():
	}
	s.BeginDrain()
	sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	err := hs.Shutdown(sctx)
	<-errc // always http.ErrServerClosed after Shutdown; drained for hygiene
	return err
}

// handleQuery is POST /v1/query: admission, decode, deadline, fan-out,
// classification — in that order, so an overloaded replica sheds before it
// spends cycles parsing bodies it cannot serve.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errorDetail{Code: "method_not_allowed",
			Reason: "use POST"})
		return
	}
	s.requests.Inc()
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errorDetail{Code: "draining",
			Reason: "replica is draining; retry another replica"})
		return
	}

	// Admission: acquire an in-flight slot or shed. The queue-depth gauge
	// brackets the wait so /metrics shows queued requests live.
	release, ok := s.admit(r.Context())
	if !ok {
		s.shed.Inc()
		w.Header().Set("Retry-After", s.retryAfter())
		writeError(w, http.StatusTooManyRequests, errorDetail{Code: "shed",
			Reason: fmt.Sprintf("no in-flight slot within %v; retry after backoff", s.cfg.QueueWait)})
		return
	}
	defer release()

	var req queryRequest
	body := http.MaxBytesReader(w, r.Body, int64(s.cfg.MaxPairs)*48+4096)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, errorDetail{Code: "bad_request",
			Reason: "malformed JSON body: " + err.Error()})
		return
	}
	if len(req.Pairs) > s.cfg.MaxPairs {
		writeError(w, http.StatusBadRequest, errorDetail{Code: "invalid_option",
			Field: "pairs", Reason: fmt.Sprintf("batch of %d exceeds the %d-pair ceiling", len(req.Pairs), s.cfg.MaxPairs)})
		return
	}
	if req.TimeoutMS < 0 {
		// Classified through the same taxonomy the library uses, so the
		// wire behavior and the in-process behavior agree on what an invalid
		// option looks like.
		writeTypedError(w, &core.OptionError{Field: "server: timeout_ms", Value: req.TimeoutMS,
			Reason: "must be >= 0 (0 means no per-request deadline)"})
		return
	}

	// Per-request deadline: the client's budget rides the context into
	// QueryMany, whose workers checkpoint it between row computations.
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		d := time.Duration(req.TimeoutMS) * time.Millisecond
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	pairs := make([]oracle.Pair, len(req.Pairs))
	for i, p := range req.Pairs {
		pairs[i] = oracle.Pair{U: p.U, V: p.V}
	}
	s.batchPairs.Observe(float64(len(pairs)))

	start := time.Now()
	dists, err := s.cfg.Backend.QueryMany(ctx, pairs)
	s.requestSecs.Observe(time.Since(start).Seconds())
	if err != nil {
		writeTypedError(w, err)
		return
	}
	resp := queryResponse{Distances: make([]jsonFloat, len(dists))}
	for i, d := range dists {
		resp.Distances[i] = jsonFloat(d)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// admit tries to take an in-flight slot, waiting at most QueueWait. The
// returned release func must be called exactly once when ok.
func (s *Server) admit(ctx context.Context) (release func(), ok bool) {
	select {
	case s.sem <- struct{}{}: // fast path: a slot is free
	default:
		s.queueDepth.Inc()
		waitStart := time.Now()
		timer := time.NewTimer(s.cfg.QueueWait)
		defer timer.Stop()
		select {
		case s.sem <- struct{}{}:
			s.queueSecs.Observe(time.Since(waitStart).Seconds())
			s.queueDepth.Dec()
		case <-timer.C:
			s.queueSecs.Observe(time.Since(waitStart).Seconds())
			s.queueDepth.Dec()
			return nil, false
		case <-ctx.Done():
			// The client gave up while queued; its slot demand leaves with it.
			s.queueSecs.Observe(time.Since(waitStart).Seconds())
			s.queueDepth.Dec()
			return nil, false
		}
	}
	s.inflight.Inc()
	return func() {
		<-s.sem
		s.inflight.Dec()
	}, true
}

// retryAfter renders the Retry-After header: the queue-wait ceiling rounded
// up to whole seconds (minimum 1) — by then at least one full admission
// window has passed, so a retry sees fresh capacity or sheds again cheaply.
func (s *Server) retryAfter() string {
	secs := int(s.cfg.QueueWait / time.Second)
	if time.Duration(secs)*time.Second < s.cfg.QueueWait || secs < 1 {
		secs++
	}
	return strconv.Itoa(secs)
}

// handleInfo is GET /v1/info: the served graph's shape plus the admission
// limits, enough for a load generator to size a workload.
func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	info := Info{MaxInflight: s.cfg.MaxInflight, MaxPairs: s.cfg.MaxPairs,
		Artifact: s.cfg.Artifact, SSSP: s.cfg.SSSP, Memory: s.cfg.Memory}
	if s.cfg.Graph != nil {
		info.N = s.cfg.Graph.N()
		info.M = s.cfg.Graph.M()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(info)
}

// handleHealthz is GET /healthz: 200 "ok" while serving, 503 "draining"
// once BeginDrain ran — the signal a load balancer keys ejection on.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// writeTypedError maps an error through the internal/core taxonomy onto a
// status code and typed JSON body:
//
//	ErrInvalidOption (bad vertex, bad option) → 400, code "invalid_option"
//	ErrCanceled via context.DeadlineExceeded  → 504, code "deadline_exceeded"
//	ErrCanceled otherwise (client gone/drain) → 503, code "canceled"
//	anything else                             → 500, code "internal"
func writeTypedError(w http.ResponseWriter, err error) {
	var oe *core.OptionError
	switch {
	case errors.As(err, &oe):
		writeError(w, http.StatusBadRequest, errorDetail{Code: "invalid_option",
			Field: oe.Field, Reason: oe.Reason})
	case errors.Is(err, core.ErrCanceled) && errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, errorDetail{Code: "deadline_exceeded",
			Reason: err.Error()})
	case errors.Is(err, core.ErrCanceled):
		writeError(w, http.StatusServiceUnavailable, errorDetail{Code: "canceled",
			Reason: err.Error()})
	default:
		writeError(w, http.StatusInternalServerError, errorDetail{Code: "internal",
			Reason: err.Error()})
	}
}

// writeError emits the typed JSON error body every non-2xx response carries.
func writeError(w http.ResponseWriter, status int, d errorDetail) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: d})
}
