// End-to-end suite for the oracled HTTP surface: every behavior the daemon
// promises — correct distances, typed error bodies with correct status
// codes, prompt deadline expiry — is pinned here over real HTTP
// (httptest), not by calling handlers directly, so routing, encoding and
// status plumbing are all under test.
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mpcspanner"
	"mpcspanner/internal/core"
	"mpcspanner/internal/graph"
	"mpcspanner/internal/obs"
	"mpcspanner/internal/oracle"
	"mpcspanner/internal/server"
)

// testGraph is a connected weighted grid: deterministic, finite distances.
func testGraph(t *testing.T, side int, seed uint64) *graph.Graph {
	t.Helper()
	return graph.Grid(side, side, graph.UniformWeight(1, 10), seed)
}

// exactSession serves g as given (no pipeline), instrumented on reg.
func exactSession(t *testing.T, g *graph.Graph, reg *obs.Registry, workers int) *mpcspanner.Session {
	t.Helper()
	opts := []mpcspanner.Option{mpcspanner.WithExact(), mpcspanner.WithWorkers(workers)}
	if reg != nil {
		opts = append(opts, mpcspanner.WithMetrics(reg))
	}
	s, err := mpcspanner.Serve(context.Background(), g, opts...)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	return s
}

// postJSON posts raw bytes to the query endpoint and returns status + body.
func postJSON(t *testing.T, url string, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/query: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp.StatusCode, raw
}

// decodeError decodes the typed error body every non-2xx response carries.
func decodeError(t *testing.T, raw []byte) (code, field, reason string) {
	t.Helper()
	var body struct {
		Error struct {
			Code   string `json:"code"`
			Field  string `json:"field"`
			Reason string `json:"reason"`
		} `json:"error"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("non-2xx body is not the typed error JSON: %v (%q)", err, raw)
	}
	return body.Error.Code, body.Error.Field, body.Error.Reason
}

// TestQueryHappyPath pins the core contract: a batched POST answers exactly
// what the in-process Session answers, including null for unreachable.
func TestQueryHappyPath(t *testing.T) {
	g := testGraph(t, 12, 3)
	session := exactSession(t, g, nil, 2)
	ts := httptest.NewServer(server.New(server.Config{Backend: session, Graph: g}).Handler())
	defer ts.Close()

	pairs := []oracle.Pair{{U: 0, V: 143}, {U: 7, V: 7}, {U: 50, V: 3}, {U: 0, V: 143}}
	want, err := session.QueryMany(context.Background(), pairs)
	if err != nil {
		t.Fatalf("in-process QueryMany: %v", err)
	}

	got, err := server.NewClient(ts.URL).Query(context.Background(), pairs, time.Second)
	if err != nil {
		t.Fatalf("wire Query: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d distances, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Errorf("pair %d: wire %v (bits %x) != in-process %v (bits %x)",
				i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// TestQueryUnreachableNull pins the +Inf encoding: a disconnected pair comes
// back as JSON null on the wire and decodes to +Inf in the client.
func TestQueryUnreachableNull(t *testing.T) {
	// Four vertices, one edge: vertices 2 and 3 are unreachable from 0.
	g := graph.MustNew(4, []graph.Edge{{U: 0, V: 1, W: 2.5}})
	session := exactSession(t, g, nil, 1)
	ts := httptest.NewServer(server.New(server.Config{Backend: session, Graph: g}).Handler())
	defer ts.Close()

	status, raw := postJSON(t, ts.URL, `{"pairs":[{"u":0,"v":3},{"u":0,"v":1}]}`)
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, raw)
	}
	if !bytes.Contains(raw, []byte("null")) {
		t.Fatalf("unreachable distance must encode as null, got %s", raw)
	}
	got, err := server.NewClient(ts.URL).Query(context.Background(), []oracle.Pair{{U: 0, V: 3}}, 0)
	if err != nil {
		t.Fatalf("wire Query: %v", err)
	}
	if !math.IsInf(got[0], +1) {
		t.Fatalf("client must decode null as +Inf, got %v", got[0])
	}
}

// TestQueryErrorTaxonomy pins every 4xx classification: malformed JSON,
// unknown vertices, negative timeouts, oversized batches, wrong method —
// each with its status code and typed JSON body.
func TestQueryErrorTaxonomy(t *testing.T) {
	g := testGraph(t, 8, 5)
	session := exactSession(t, g, nil, 1)
	ts := httptest.NewServer(server.New(server.Config{
		Backend: session, Graph: g, MaxPairs: 4,
	}).Handler())
	defer ts.Close()

	t.Run("malformed JSON", func(t *testing.T) {
		status, raw := postJSON(t, ts.URL, `{"pairs": [{`)
		if status != http.StatusBadRequest {
			t.Fatalf("status %d, want 400; body %s", status, raw)
		}
		if code, _, _ := decodeError(t, raw); code != "bad_request" {
			t.Fatalf("code %q, want bad_request", code)
		}
	})

	t.Run("unknown vertex", func(t *testing.T) {
		status, raw := postJSON(t, ts.URL, `{"pairs":[{"u":0,"v":64}]}`) // n = 64
		if status != http.StatusBadRequest {
			t.Fatalf("status %d, want 400; body %s", status, raw)
		}
		code, field, reason := decodeError(t, raw)
		if code != "invalid_option" || field != "oracle: Pair.V" {
			t.Fatalf("code %q field %q, want invalid_option / oracle: Pair.V (reason %q)", code, field, reason)
		}
	})

	t.Run("negative timeout", func(t *testing.T) {
		status, raw := postJSON(t, ts.URL, `{"pairs":[{"u":0,"v":1}],"timeout_ms":-5}`)
		if status != http.StatusBadRequest {
			t.Fatalf("status %d, want 400; body %s", status, raw)
		}
		code, field, _ := decodeError(t, raw)
		if code != "invalid_option" || field != "server: timeout_ms" {
			t.Fatalf("code %q field %q, want invalid_option / server: timeout_ms", code, field)
		}
	})

	t.Run("oversized batch", func(t *testing.T) {
		status, raw := postJSON(t, ts.URL,
			`{"pairs":[{"u":0,"v":1},{"u":0,"v":2},{"u":0,"v":3},{"u":1,"v":2},{"u":1,"v":3}]}`)
		if status != http.StatusBadRequest {
			t.Fatalf("status %d, want 400; body %s", status, raw)
		}
		if code, field, _ := decodeError(t, raw); code != "invalid_option" || field != "pairs" {
			t.Fatalf("code %q field %q, want invalid_option / pairs", code, field)
		}
	})

	t.Run("wrong method", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/query")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /v1/query status %d, want 405", resp.StatusCode)
		}
	})
}

// slowBackend answers after delay per call, honoring ctx the way every
// library layer does: a done context returns core.Canceled(ctx.Err()).
type slowBackend struct {
	inner server.Backend
	delay time.Duration
}

func (b *slowBackend) QueryMany(ctx context.Context, pairs []oracle.Pair) ([]float64, error) {
	select {
	case <-time.After(b.delay):
	case <-ctx.Done():
		return nil, core.Canceled(ctx.Err())
	}
	return b.inner.QueryMany(ctx, pairs)
}

// TestDeadlineExceededMidBatch pins the deadline plumbing: a client-supplied
// timeout_ms rides the request context into the backend, and its expiry
// comes back promptly as 504 with the deadline_exceeded classification —
// not as a hang and not as a generic 500.
func TestDeadlineExceededMidBatch(t *testing.T) {
	g := testGraph(t, 8, 7)
	session := exactSession(t, g, nil, 1)
	ts := httptest.NewServer(server.New(server.Config{
		Backend: &slowBackend{inner: session, delay: 30 * time.Second},
		Graph:   g,
	}).Handler())
	defer ts.Close()

	start := time.Now()
	status, raw := postJSON(t, ts.URL, `{"pairs":[{"u":0,"v":9}],"timeout_ms":50}`)
	elapsed := time.Since(start)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body %s", status, raw)
	}
	if code, _, _ := decodeError(t, raw); code != "deadline_exceeded" {
		t.Fatalf("code %q, want deadline_exceeded", code)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline expiry took %v; must return promptly after the 50ms budget", elapsed)
	}

	// The client surface classifies it too.
	_, err := server.NewClient(ts.URL).Query(context.Background(), []oracle.Pair{{U: 0, V: 9}}, 50*time.Millisecond)
	var ae *server.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusGatewayTimeout || ae.Code != "deadline_exceeded" {
		t.Fatalf("client error %v, want *APIError{504 deadline_exceeded}", err)
	}
}

// TestInfoHealthzMetrics pins the sidecar endpoints: /v1/info reports the
// graph shape and admission limits, /healthz is 200 while serving, and
// /metrics exposes the server_* series next to the oracle_* series from the
// very first scrape.
func TestInfoHealthzMetrics(t *testing.T) {
	g := testGraph(t, 10, 11)
	reg := obs.NewRegistry()
	session := exactSession(t, g, reg, 2)
	srv := server.New(server.Config{
		Backend: session, Graph: g, Metrics: reg, MaxInflight: 7, MaxPairs: 99,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	info, err := server.NewClient(ts.URL).Info(context.Background())
	if err != nil {
		t.Fatalf("Info: %v", err)
	}
	if info.N != g.N() || info.M != g.M() || info.MaxInflight != 7 || info.MaxPairs != 99 {
		t.Fatalf("info %+v, want n=%d m=%d max_inflight=7 max_pairs=99", info, g.N(), g.M())
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v / %v", resp, err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{
		"server_requests_total", "server_shed_total", "server_inflight",
		"server_queue_depth", "server_draining", "server_request_seconds_bucket",
		"server_queue_wait_seconds_bucket", "server_batch_pairs_bucket",
		"oracle_row_hits_total", "oracle_row_misses_total", "oracle_queue_wait_seconds_bucket",
	} {
		if !bytes.Contains(raw, []byte(series)) {
			t.Errorf("/metrics missing series %s", series)
		}
	}
}
