package server_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"mpcspanner"
	"mpcspanner/internal/server"
)

// TestInfoAdvertisesSSSP is the fleet-agreement contract of the row-fill
// engine: a daemon wired like cmd/oracled — Config.SSSP fed from
// Session.SSSP() — advertises the resolved engine and Δ on /v1/info, so an
// operator can assert every replica answers cold queries the same way.
func TestInfoAdvertisesSSSP(t *testing.T) {
	g := testGraph(t, 12, 4)
	s, err := mpcspanner.Serve(context.Background(), g,
		mpcspanner.WithExact(),
		mpcspanner.WithSSSP(mpcspanner.SSSPDeltaStepping),
		mpcspanner.WithDelta(1.5))
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	sssp := s.SSSP()
	ts := httptest.NewServer(server.New(server.Config{
		Backend: s, Graph: g,
		SSSP: &server.SSSPInfo{Engine: sssp.Engine, Delta: sssp.Delta},
	}).Handler())
	defer ts.Close()

	info := getInfo(t, ts.URL)
	if info.SSSP == nil {
		t.Fatal("/v1/info omitted the sssp block")
	}
	if info.SSSP.Engine != "delta-stepping" || info.SSSP.Delta != 1.5 {
		t.Fatalf("sssp block drifted on the wire: %+v", info.SSSP)
	}

	// The client helper decodes the same block — the path oracled load and
	// fleet tooling read it through.
	cinfo, err := server.NewClient(ts.URL).Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cinfo.SSSP == nil || cinfo.SSSP.Engine != "delta-stepping" {
		t.Fatalf("client decoded sssp block %+v", cinfo.SSSP)
	}
}

// TestInfoOmitsSSSPWhenUnset pins the omitempty contract for bare backends
// (tests, non-session implementations) that expose no engine.
func TestInfoOmitsSSSPWhenUnset(t *testing.T) {
	g := testGraph(t, 10, 2)
	s := exactSession(t, g, nil, 1)
	ts := httptest.NewServer(server.New(server.Config{Backend: s, Graph: g}).Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["sssp"]; ok {
		t.Fatal("/v1/info carries an sssp block although none was configured")
	}
}
