package spanner

import (
	"math"
	"testing"

	"mpcspanner/internal/graph"
)

// Adversarial and degenerate inputs: extreme weight scales, pathological
// topologies, and tie-heavy instances. Each must still produce a certified
// spanner (the engine's CheckInvariants assertions are armed throughout the
// package's tests, so structural corruption panics rather than passing).

func TestExtremeWeightScales(t *testing.T) {
	// Weights spanning 21 orders of magnitude stress the weighted-stretch
	// machinery (Step B3's strictly-less rule and Definition 4.4(B)).
	edges := []graph.Edge{}
	n := 64
	for v := 0; v < n-1; v++ {
		w := math.Pow(10, float64(v%22)-9) // 1e-9 … 1e12
		edges = append(edges, graph.Edge{U: v, V: v + 1, W: w})
	}
	// Chords with opposite-extreme weights.
	for v := 0; v+7 < n; v += 5 {
		edges = append(edges, graph.Edge{U: v, V: v + 7, W: math.Pow(10, float64((v+11)%22)-9)})
	}
	g := graph.MustNew(n, edges)
	for _, c := range []struct{ k, t int }{{4, 1}, {8, 2}} {
		r, err := General(g, c.k, c.t, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Verify(g, r, StretchBound(c.k, c.t)); err != nil {
			t.Fatalf("k=%d t=%d: %v", c.k, c.t, err)
		}
	}
}

func TestAllEqualWeightsTieStorm(t *testing.T) {
	// Every weight identical: all decisions go through the deterministic
	// tie-breaks. Complete graph maximizes simultaneous ties.
	g := graph.Complete(40, graph.UnitWeight, 1)
	for _, tt := range []int{1, 2} {
		r, err := General(g, 5, tt, Options{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Verify(g, r, StretchBound(5, tt)); err != nil {
			t.Fatal(err)
		}
		// K40 must sparsify substantially at k=5.
		if r.Size() > g.M()/2 {
			t.Fatalf("t=%d: kept %d of %d clique edges", tt, r.Size(), g.M())
		}
	}
}

func TestStarAndDoubleStar(t *testing.T) {
	// Stars: one grow iteration should swallow everything around a sampled
	// center; spanner must be the star itself (it is a tree).
	g := graph.Star(200, graph.UniformWeight(1, 5), 3)
	r, err := General(g, 4, 2, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != g.M() {
		t.Fatalf("tree input must be kept whole: %d of %d", r.Size(), g.M())
	}
	// Double star: two hubs joined by a bridge, plus parallel bridges of
	// different weights.
	edges := []graph.Edge{}
	for v := 2; v < 52; v++ {
		edges = append(edges, graph.Edge{U: 0, V: v, W: 1})
	}
	for v := 52; v < 102; v++ {
		edges = append(edges, graph.Edge{U: 1, V: v, W: 1})
	}
	edges = append(edges, graph.Edge{U: 0, V: 1, W: 10}, graph.Edge{U: 0, V: 1, W: 2})
	ds := graph.MustNew(102, edges)
	r, err = General(ds, 3, 1, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(ds, r, StretchBound(3, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestLongPathDeepClusters(t *testing.T) {
	// Paths force maximal cluster radii relative to size — the worst shape
	// for the radius-growth analysis (Corollary 5.9).
	g := graph.Path(2000, graph.UniformWeight(1, 3), 6)
	r, err := General(g, 16, 3, Options{Seed: 7, MeasureRadius: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != g.M() {
		t.Fatalf("path spanner must keep every edge, kept %d/%d", r.Size(), g.M())
	}
	specs := Schedule(16, 3)
	l := specs[len(specs)-1].Epoch
	bound := (math.Pow(float64(2*3+1), float64(l)) - 1) / 2
	if float64(r.Stats.Radius.MaxHops) > bound {
		t.Fatalf("path cluster radius %d above Corollary 5.9 bound %.0f", r.Stats.Radius.MaxHops, bound)
	}
}

func TestManyIsolatedVertices(t *testing.T) {
	// 10k vertices, 3 edges: the engine must not charge work to ghosts.
	g := graph.MustNew(10000, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 5000, V: 9999, W: 3}})
	r, err := General(g, 8, 2, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 3 {
		t.Fatalf("kept %d of 3 edges", r.Size())
	}
}

func TestHeavyParallelMultigraph(t *testing.T) {
	// 50 parallel edges per pair on a triangle; exactly one survivor per
	// pair is needed for stretch 1 at k=1, and bounds must hold for k>1.
	var edges []graph.Edge
	for i := 0; i < 50; i++ {
		w := float64(1 + i)
		edges = append(edges,
			graph.Edge{U: 0, V: 1, W: w}, graph.Edge{U: 1, V: 2, W: w}, graph.Edge{U: 0, V: 2, W: w})
	}
	g := graph.MustNew(3, edges)
	r, err := General(g, 1, 1, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 3 {
		t.Fatalf("k=1 on multigraph kept %d, want 3 minima", r.Size())
	}
	r, err = General(g, 4, 1, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(g, r, StretchBound(4, 1)); err != nil {
		t.Fatal(err)
	}
}
