package spanner

import (
	"fmt"
	"runtime"
	"testing"

	"mpcspanner/internal/graph"
)

// benchWorkerCounts are the pool sizes the serial-vs-parallel benchmarks
// sweep: 1 is the pre-parallelization baseline, GOMAXPROCS is the default
// the facade selects.
func benchWorkerCounts() []int {
	max := runtime.GOMAXPROCS(0)
	if max == 1 {
		return []int{1}
	}
	return []int{1, max}
}

// BenchmarkGeneralConstruct is the bench-regression gate's primary pin: the
// §5 general algorithm at n≈20k, serial vs parallel (the ISSUE-3 acceptance
// benchmark).
func BenchmarkGeneralConstruct(b *testing.B) {
	g := graph.GNP(20_000, 12/20_000.0, graph.UniformWeight(1, 100), 7)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("n=20k/k=16/t=4/workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := General(g, 16, 4, Options{Seed: 7, Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(r.Size()), "spanner-edges")
			}
		})
	}
}

// BenchmarkBaswanaSenConstruct pins the [BS07] baseline (classic per-vertex
// Phase 2, no contraction) under the same sweep.
func BenchmarkBaswanaSenConstruct(b *testing.B) {
	g := graph.GNP(20_000, 10/20_000.0, graph.UniformWeight(1, 50), 11)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("n=20k/k=8/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := BaswanaSen(g, 8, Options{Seed: 11, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRepetitions pins the parallel-repetition runner (Theorem 8.1's
// w.h.p. mechanism): 8 independent runs, serial vs concurrent.
func BenchmarkRepetitions(b *testing.B) {
	g := graph.GNP(5_000, 10/5_000.0, graph.UniformWeight(1, 20), 13)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("reps=8/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := General(g, 8, 2, Options{Seed: 13, Repetitions: 8, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkUnweightedConstruct pins the Appendix B path (parallel ball
// growing dominates).
func BenchmarkUnweightedConstruct(b *testing.B) {
	g := graph.GNP(10_000, 16/10_000.0, graph.UnitWeight, 17)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("n=10k/k=3/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Unweighted(g, 3, UnweightedOptions{Seed: 17, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
