package spanner

import (
	"context"
	"fmt"
	"math"
	"time"

	"mpcspanner/internal/cluster"
	"mpcspanner/internal/core"
	"mpcspanner/internal/graph"
	"mpcspanner/internal/obs"
	"mpcspanner/internal/par"
	"mpcspanner/internal/xrand"
)

// CheckInvariants enables expensive structural assertions inside the engine
// (the Lemma 5.6 invariant that every unprocessed edge joins two distinct
// live clusters). Tests switch it on; it panics on violation.
var CheckInvariants bool

// engine holds the mutable state of one run of the general algorithm on one
// graph. All supernode-indexed slices are rebuilt at each contraction.
//
// Parallel execution: the heavy passes — coin evaluation, the per-supernode
// grow loop (Steps B2–B4), edge removals (B3/B4 discards and B6), the
// contraction relabel/dedup, and Phase 2 — shard their index space over
// internal/par with `workers` goroutines. Every shard either writes only its
// own slots or appends to a per-shard accumulator that is concatenated in
// shard order (= index order), so a run's output is bit-identical at every
// worker count; the pinning tests in parallel_test.go enforce that.
type engine struct {
	g    *graph.Graph
	k, t int
	seed uint64
	cfg  engineConfig

	workers int // resolved parallel worker count (>= 1)

	// Quotient graph of the current epoch.
	nSuper int
	edges  []cluster.QEdge // edge set E of the current epoch
	alive  []bool          // alive[i] <=> edges[i] still unprocessed
	nAlive int
	inc    [][]int32 // supernode -> indexes into edges (slices of one CSR arena)

	part         *cluster.Partition
	centerVertex []int32 // supernode -> original center vertex
	clusterOf    []int32 // supernode -> center supernode of its cluster (cluster.None = finished)
	active       []int32 // centers of the live clusters of D_{j-1}

	// Output.
	inSpanner []bool
	spanIDs   []int

	// Cluster-tree bookkeeping over original vertices, for radius stats:
	// every merge edge is recorded, and a union-find tracks which original
	// center is the root of each tree component.
	treeEdges  []int
	treeUF     *graph.UnionFind
	compCenter []int32

	// Scratch, sized nSuper per epoch. sampledFlag is shared (written before
	// the parallel passes, read-only inside them); the per-cluster minima
	// buffers are per worker so the sharded grow loop never contends.
	sampledFlag []bool
	scratch     []growScratch

	// dedupKey, when non-nil, encodes cluster.MinDedup's (A, B, W, Orig)
	// comparator as an order-preserving uint64 over the normalized edge —
	// supernode ids (< n) in the high bits, the edge's dense weight rank
	// (cluster.WeightRanks, < m) in the low bits, laid out per
	// cluster.KeyWidths — so the Step C and Phase 2 dedup sorts run as
	// radix shuffles through the retained dedupSorter. nil (the composite
	// exceeds 64 bits) falls back to the comparator sort; both orders are
	// identical.
	dedupKey    func(*cluster.QEdge) uint64
	dedupSorter par.RadixSorter

	// met/tracer carry the run's exposition handles. The zero met struct
	// holds nil handles whose mutations are no-ops, and a nil tracer's
	// StartSpan returns an inert nil span, so an uninstrumented run reads no
	// clocks and allocates nothing extra.
	met    engMetrics
	tracer *obs.Tracer

	stats Stats
}

// engMetrics are the engine's exposition handles: structural levels the
// paper's lemmas argue about (supernode and alive-edge counts per epoch) and
// the engine's own activity counters.
type engMetrics struct {
	growIters     *obs.Counter   // spanner_grow_iterations_total
	contractions  *obs.Counter   // spanner_contractions_total
	supernodes    *obs.Gauge     // spanner_supernodes (level after last contraction)
	aliveEdges    *obs.Gauge     // spanner_alive_edges (level after last iteration)
	edgesSelected *obs.Gauge     // spanner_edges_selected (spanner size so far)
	iterSeconds   *obs.Histogram // spanner_iteration_seconds
}

// initObs binds the engine's metric handles to cfg.metrics (no-ops when nil)
// and installs the tracer.
func (e *engine) initObs() {
	r := e.cfg.metrics
	e.tracer = e.cfg.tracer
	if r == nil {
		return
	}
	e.met = engMetrics{
		growIters:     r.Counter("spanner_grow_iterations_total"),
		contractions:  r.Counter("spanner_contractions_total"),
		supernodes:    r.Gauge("spanner_supernodes"),
		aliveEdges:    r.Gauge("spanner_alive_edges"),
		edgesSelected: r.Gauge("spanner_edges_selected"),
		iterSeconds:   r.Histogram("spanner_iteration_seconds", obs.LatencyBuckets),
	}
	e.met.supernodes.Set(int64(e.nSuper))
	e.met.aliveEdges.Set(int64(e.nAlive))
}

// initDedupKey builds the keyed-dedup encoding for the engine's graph, if
// the (vertex, vertex, weight-rank) composite fits 64 bits.
func (e *engine) initDedupKey() {
	vb, rb, ok := cluster.KeyWidths(e.g.N(), e.g.M())
	if !ok {
		return
	}
	rank := cluster.WeightRanks(e.g, e.workers)
	e.dedupKey = func(q *cluster.QEdge) uint64 {
		return uint64(q.A)<<(vb+rb) | uint64(q.B)<<rb | uint64(rank[q.Orig])
	}
}

// minDedup dispatches Step C / Phase 2 deduplication to the keyed radix
// path when the encoding fits, or the comparator sort otherwise.
func (e *engine) minDedup(edges []cluster.QEdge) []cluster.QEdge {
	if e.dedupKey != nil {
		return cluster.MinDedupKeys(edges, e.workers, e.dedupKey, &e.dedupSorter)
	}
	return cluster.MinDedupWorkers(edges, e.workers)
}

// growScratch is one worker's per-cluster minima buffer (Definition 4.1's
// E(v, c) gathering). stamp-marking avoids clearing between supernodes.
type growScratch struct {
	mark    []int32
	bestW   []float64
	bestIdx []int32
	stamp   int32
	nbr     []int32
}

// runEngine executes one full run and returns the spanner. ctx is
// checkpointed cooperatively between iteration-sized chunks (each grow
// iteration, each contraction, and before phase 2); on cancellation the
// engine returns core.Canceled(ctx.Err()) with every pool goroutine joined —
// in-flight sharded passes always complete their chunk first, so no state is
// left torn and nothing leaks. When ctx is never canceled the run is
// bit-identical to a context-free run at every worker count.
func runEngine(ctx context.Context, g *graph.Graph, k, t int, seed uint64, cfg engineConfig) (*Result, error) {
	e := newEngine(g, k, t, seed, cfg)
	if cfg.classicBS {
		e.stats.Algorithm = "baswana-sen"
	} else {
		e.stats.Algorithm = "general"
	}

	if err := e.phase1(ctx); err != nil {
		return nil, err
	}
	if err := core.Check(ctx); err != nil {
		return nil, err
	}
	sp := e.tracer.StartSpan("spanner.phase2").SetInt("alive_edges", int64(e.nAlive))
	e.phase2()
	sp.SetInt("spanner_edges", int64(len(e.spanIDs))).End()
	e.met.edgesSelected.Set(int64(len(e.spanIDs)))
	e.emit("phase2", 0, 0)

	ids := sortedUnique(e.spanIDs)
	e.stats.Phase2Edges = len(ids) - e.stats.Phase1Edges
	if cfg.measureRadius {
		e.stats.Radius = e.measureRadius()
	}
	return &Result{EdgeIDs: ids, Stats: e.stats}, nil
}

// emit delivers one progress event to the run's callback, if installed.
// Iteration is the engine's global grow-iteration count (not the
// within-epoch index), so event consumers see a monotone fraction of
// TotalIterations.
func (e *engine) emit(stage string, epoch, total int) {
	if e.cfg.progress == nil {
		return
	}
	e.cfg.progress(core.ProgressEvent{
		Stage:           stage,
		Algorithm:       e.stats.Algorithm,
		Epoch:           epoch,
		Iteration:       e.stats.Iterations,
		TotalIterations: total,
		Supernodes:      e.nSuper,
		AliveEdges:      e.nAlive,
		SpannerEdges:    len(e.spanIDs),
	})
}

func (e *engine) resetEpochScratch() {
	e.sampledFlag = make([]bool, e.nSuper)
	// One scratch per shard that will actually run (nSuper shrinks every
	// contraction, so late epochs often collapse to one inline shard), with
	// buffer capacity reused across epochs.
	shards := par.ShardCount(e.workers, e.nSuper)
	if shards > len(e.scratch) {
		e.scratch = append(e.scratch, make([]growScratch, shards-len(e.scratch))...)
	}
	e.scratch = e.scratch[:shards]
	for w := range e.scratch {
		sc := &e.scratch[w]
		if cap(sc.mark) < e.nSuper {
			sc.mark = make([]int32, e.nSuper)
			sc.bestW = make([]float64, e.nSuper)
			sc.bestIdx = make([]int32, e.nSuper)
		} else {
			sc.mark = sc.mark[:e.nSuper]
			sc.bestW = sc.bestW[:e.nSuper]
			sc.bestIdx = sc.bestIdx[:e.nSuper]
		}
		for i := range sc.mark {
			sc.mark[i] = -1
		}
		sc.stamp = -1
		sc.nbr = sc.nbr[:0]
	}
}

// rebuildIncidence rebuilds the supernode → incident-edge lists as a single
// CSR arena. Per-shard degree histograms give every (shard, supernode) pair
// a deterministic write window, so the parallel fill preserves ascending
// edge-index order inside every list at any worker count — the same order
// the old sequential append produced.
func (e *engine) rebuildIncidence() {
	n := e.nSuper
	w := e.workers
	cnt := make([][]int32, w)
	par.ForShard(w, len(e.edges), func(shard, lo, hi int) {
		c := make([]int32, n)
		for ei := lo; ei < hi; ei++ {
			if !e.alive[ei] {
				continue
			}
			c[e.edges[ei].A]++
			c[e.edges[ei].B]++
		}
		cnt[shard] = c
	})
	off := make([]int32, n+1)
	starts := make([][]int32, w)
	for s := range starts {
		if cnt[s] != nil {
			starts[s] = make([]int32, n)
		}
	}
	total := int32(0)
	for v := 0; v < n; v++ {
		off[v] = total
		for s := 0; s < w; s++ {
			if cnt[s] == nil {
				continue
			}
			starts[s][v] = total
			total += cnt[s][v]
		}
	}
	off[n] = total
	arena := make([]int32, total)
	par.ForShard(w, len(e.edges), func(shard, lo, hi int) {
		cur := starts[shard]
		for ei := lo; ei < hi; ei++ {
			if !e.alive[ei] {
				continue
			}
			ed := &e.edges[ei]
			arena[cur[ed.A]] = int32(ei)
			cur[ed.A]++
			arena[cur[ed.B]] = int32(ei)
			cur[ed.B]++
		}
	})
	e.inc = make([][]int32, n)
	for v := 0; v < n; v++ {
		e.inc[v] = arena[off[v]:off[v+1]]
	}
}

// resetActive makes every supernode a live singleton cluster (start of an
// epoch: D_0 = singletons).
func (e *engine) resetActive() {
	e.active = e.active[:0]
	for v := 0; v < e.nSuper; v++ {
		e.clusterOf[v] = int32(v)
		e.active = append(e.active, int32(v))
	}
}

func (e *engine) addSpanner(orig int) bool {
	if e.inSpanner[orig] {
		return false
	}
	e.inSpanner[orig] = true
	e.spanIDs = append(e.spanIDs, orig)
	return true
}

// phase1 runs the shared epoch/iteration schedule (see Schedule): epoch i
// samples with exponent (t+1)^{i-1}/k per iteration, cumulative exponents
// clamp at (k-1)/k, and a contraction follows each epoch. ctx is
// checkpointed once per grow iteration — the engine's chunk size — so a
// canceled build stops within one iteration's work.
func (e *engine) phase1(ctx context.Context) error {
	n := float64(e.g.N())
	if n < 2 {
		return nil
	}
	schedule := Schedule(e.k, e.t)
	for _, spec := range schedule {
		if err := core.Check(ctx); err != nil {
			return err
		}
		if e.nAlive == 0 {
			return nil
		}
		if spec.Iter == 1 {
			e.stats.Probabilities = append(e.stats.Probabilities,
				math.Pow(n, -math.Pow(float64(e.t+1), float64(spec.Epoch-1))/float64(e.k)))
		}
		sp := e.tracer.StartSpan("spanner.grow").
			SetInt("epoch", int64(spec.Epoch)).SetInt("iter", int64(spec.Iter))
		var iterStart time.Time
		if e.met.iterSeconds != nil {
			iterStart = time.Now()
		}
		e.iterate(math.Pow(n, -spec.Exponent), uint64(spec.Epoch), uint64(spec.Iter))
		if e.met.iterSeconds != nil {
			e.met.iterSeconds.Observe(time.Since(iterStart).Seconds())
		}
		e.met.growIters.Inc()
		e.met.aliveEdges.Set(int64(e.nAlive))
		e.met.edgesSelected.Set(int64(len(e.spanIDs)))
		sp.SetInt("clusters", int64(len(e.active))).
			SetInt("alive_edges", int64(e.nAlive)).
			SetInt("spanner_edges", int64(len(e.spanIDs))).End()
		e.stats.Iterations++
		e.emit("grow", spec.Epoch, len(schedule))
		if spec.LastOfEpoch && !e.cfg.classicBS {
			sc := e.tracer.StartSpan("spanner.step-c").SetInt("epoch", int64(spec.Epoch))
			e.contract()
			e.met.contractions.Inc()
			e.met.supernodes.Set(int64(e.nSuper))
			sc.SetInt("supernodes", int64(e.nSuper)).
				SetInt("alive_edges", int64(e.nAlive)).End()
			e.stats.Epochs++
			e.emit("contract", spec.Epoch, len(schedule))
		}
	}
	return nil
}

// groupKey identifies a (supernode, neighbor-cluster) removal group.
type groupKey struct{ v, c int32 }

// joinRec records that a supernode joins a sampled cluster via an edge.
type joinRec struct {
	center int32
	orig   int
}

// iterPlan is the outcome of planning one grow iteration under a particular
// coin assignment, before any state is mutated. The Congested Clique mode
// (Theorem 8.1) plans the same iteration under several independent coin sets
// and applies only the chosen one.
type iterPlan struct {
	sampled     []int32 // sampled cluster centers (in active order)
	removeGroup map[groupKey]struct{}
	joins       map[int32]joinRec
	adds        []int // spanner additions (may repeat edges already chosen)
	newEdges    int   // additions not already in the spanner
}

// vJoin is a join decision ordered by its supernode, the shard-local record
// the parallel grow loop emits before the decisions merge into plan.joins.
type vJoin struct {
	v   int32
	rec joinRec
}

// planPart is one shard's share of an iteration plan. Concatenating parts in
// shard order reproduces the serial supernode-order decision sequence.
type planPart struct {
	adds    []int
	joins   []vJoin
	removes []groupKey
}

// iterate performs one grow iteration (Step B of §5.1) at sampling
// probability p, identified cross-plane by (epoch, iter).
func (e *engine) iterate(p float64, epoch, iter uint64) {
	coin := func(center int32) bool {
		return xrand.CoinAt(p, e.seed, CoinDomainPhase1, epoch, iter, uint64(center))
	}
	e.applyIteration(e.planIteration(coin))
}

// planIteration evaluates Steps B1-B4 under the given coin without mutating
// any engine state (the sampled-flag scratch is restored before returning).
func (e *engine) planIteration(coin func(center int32) bool) *iterPlan {
	plan := &iterPlan{
		removeGroup: make(map[groupKey]struct{}),
		joins:       make(map[int32]joinRec),
	}
	// Step B1: sample the live clusters. The coin for a cluster is keyed by
	// its center's *original vertex*, which is stable across execution
	// planes and contractions; coins are pure functions, so they evaluate in
	// parallel and assemble in active order.
	spCoins := e.tracer.StartSpan("spanner.b1-coins").SetInt("clusters", int64(len(e.active)))
	flags := par.Map(e.workers, len(e.active), func(i int) bool {
		return coin(e.centerVertex[e.active[i]])
	})
	// Assign every active flag (not just the sampled ones): clusters that
	// survived the previous iteration still carry a stale true flag that a
	// false coin must overwrite.
	for i, c := range e.active {
		e.sampledFlag[c] = flags[i]
		if flags[i] {
			plan.sampled = append(plan.sampled, c)
		}
	}
	spCoins.SetInt("sampled", int64(len(plan.sampled))).End()
	defer func() {
		for _, c := range e.active {
			e.sampledFlag[c] = false
		}
	}()

	// Steps B2-B4: process every supernode not inside a sampled cluster.
	// Decisions are taken against the iteration-start snapshot, matching the
	// parallel (per-machine) semantics of the MPC implementation — which is
	// exactly why the supernode space shards cleanly: every worker reads the
	// same snapshot and appends decisions for its own index range.
	parts := make([]planPart, e.workers)
	par.ForShard(e.workers, e.nSuper, func(shard, lo, hi int) {
		e.planRange(&e.scratch[shard], &parts[shard], int32(lo), int32(hi))
	})
	for i := range parts {
		p := &parts[i]
		plan.adds = append(plan.adds, p.adds...)
		for _, j := range p.joins {
			plan.joins[j.v] = j.rec
		}
		for _, r := range p.removes {
			plan.removeGroup[r] = struct{}{}
		}
	}
	// newEdges counts distinct planned additions not already in the spanner
	// (the same minimum edge can be chosen from both endpoints).
	seen := make(map[int]struct{}, len(plan.adds))
	for _, orig := range plan.adds {
		if _, dup := seen[orig]; dup {
			continue
		}
		seen[orig] = struct{}{}
		if !e.inSpanner[orig] {
			plan.newEdges++
		}
	}
	return plan
}

// planRange evaluates Steps B2-B4 for supernodes [lo, hi) against the
// iteration-start snapshot. It writes only to the shard's own scratch and
// part, so ranges run concurrently.
func (e *engine) planRange(sc *growScratch, p *planPart, lo, hi int32) {
	for v := lo; v < hi; v++ {
		cv := e.clusterOf[v]
		if cv == cluster.None || e.sampledFlag[cv] {
			continue
		}
		// Gather the minimum-weight alive edge toward each neighboring
		// cluster (Definition 4.1's E(v, c) minima).
		sc.stamp++
		sc.nbr = sc.nbr[:0]
		for _, ei := range e.inc[v] {
			if !e.alive[ei] {
				continue
			}
			ed := e.edges[ei]
			u := ed.A
			if u == int(v) {
				u = ed.B
			}
			cu := e.clusterOf[u]
			if CheckInvariants && cu == cluster.None {
				panic(fmt.Sprintf("spanner: alive edge %d touches finished supernode %d", ei, u))
			}
			if sc.mark[cu] != sc.stamp {
				sc.mark[cu] = sc.stamp
				sc.bestW[cu] = ed.W
				sc.bestIdx[cu] = ei
				sc.nbr = append(sc.nbr, cu)
			} else if ed.W < sc.bestW[cu] || (ed.W == sc.bestW[cu] && ed.Orig < e.edges[sc.bestIdx[cu]].Orig) {
				sc.bestW[cu] = ed.W
				sc.bestIdx[cu] = ei
			}
		}
		if len(sc.nbr) == 0 {
			continue
		}
		// Step B3: closest sampled neighboring cluster, if any. Ties break
		// by (weight, center vertex id) for determinism.
		closest := int32(-1)
		for _, cu := range sc.nbr {
			if !e.sampledFlag[cu] {
				continue
			}
			if closest == -1 || sc.bestW[cu] < sc.bestW[closest] ||
				(sc.bestW[cu] == sc.bestW[closest] && e.centerVertex[cu] < e.centerVertex[closest]) {
				closest = cu
			}
		}
		if closest >= 0 {
			je := sc.bestIdx[closest]
			orig := e.edges[je].Orig
			p.adds = append(p.adds, orig)
			p.joins = append(p.joins, vJoin{v: v, rec: joinRec{center: closest, orig: orig}})
			p.removes = append(p.removes, groupKey{v, closest})
			w0 := sc.bestW[closest]
			// Step B3 second bullet: clusters reachable strictly cheaper
			// than the join edge also get their minimum edge, then all
			// their edges are discarded.
			for _, cu := range sc.nbr {
				if cu == closest || sc.bestW[cu] >= w0 {
					continue
				}
				p.adds = append(p.adds, e.edges[sc.bestIdx[cu]].Orig)
				p.removes = append(p.removes, groupKey{v, cu})
			}
		} else {
			// Step B4: no sampled neighbor — keep one minimum edge per
			// neighboring cluster and discard everything else.
			for _, cu := range sc.nbr {
				p.adds = append(p.adds, e.edges[sc.bestIdx[cu]].Orig)
				p.removes = append(p.removes, groupKey{v, cu})
			}
		}
	}
}

// applyIteration commits a plan: spanner additions, removals, cluster
// formation (Step B5), intra-cluster cleanup (Step B6), and the new live
// cluster set.
func (e *engine) applyIteration(plan *iterPlan) {
	for _, c := range plan.sampled {
		e.sampledFlag[c] = true
	}
	for _, orig := range plan.adds {
		if e.addSpanner(orig) {
			e.stats.Phase1Edges++
		}
	}

	// Apply removals against the snapshot clustering (the removal map is
	// read-only inside the sharded sweep).
	spSweep := e.tracer.StartSpan("spanner.removal-sweep").
		SetInt("remove_groups", int64(len(plan.removeGroup)))
	if len(plan.removeGroup) > 0 {
		e.killEdges(func(ei int) bool {
			ed := &e.edges[ei]
			if _, ok := plan.removeGroup[groupKey{int32(ed.A), e.clusterOf[ed.B]}]; ok {
				return true
			}
			_, ok := plan.removeGroup[groupKey{int32(ed.B), e.clusterOf[ed.A]}]
			return ok
		})
	}
	spSweep.SetInt("alive_edges", int64(e.nAlive)).End()

	// Step B5: form D_j — sampled clusters keep their members and absorb the
	// joining supernodes; everything else dissolves. Serial: recordMerge
	// mutates the cluster-tree union-find, and the pass is O(nSuper).
	for v := int32(0); int(v) < e.nSuper; v++ {
		cv := e.clusterOf[v]
		if cv == cluster.None {
			continue
		}
		if e.sampledFlag[cv] {
			continue // stays
		}
		if j, ok := plan.joins[v]; ok {
			e.clusterOf[v] = j.center
			e.recordMerge(v, j.orig)
		} else {
			e.clusterOf[v] = cluster.None
		}
	}

	// Step B6: drop intra-cluster edges (cluster labels are stable now).
	e.killEdges(func(ei int) bool {
		ed := &e.edges[ei]
		ca, cb := e.clusterOf[ed.A], e.clusterOf[ed.B]
		if CheckInvariants && (ca == cluster.None || cb == cluster.None) {
			panic(fmt.Sprintf("spanner: post-join alive edge %d has finished endpoint", ei))
		}
		return ca == cb
	})

	// New live cluster set: the sampled centers, in increasing order
	// (e.active was sorted, so the filtered list stays sorted).
	next := e.active[:0]
	for _, c := range e.active {
		if e.sampledFlag[c] {
			next = append(next, c)
		} else {
			e.sampledFlag[c] = false
		}
	}
	e.active = next
}

// killEdges disables every alive edge satisfying pred: edges shard across
// workers (pred must be a pure read of engine state; each edge writes only
// its own alive slot) and per-shard kill counts sum in shard order into
// nAlive.
func (e *engine) killEdges(pred func(ei int) bool) {
	dead := make([]int, e.workers)
	par.ForShard(e.workers, len(e.edges), func(shard, lo, hi int) {
		killed := 0
		for ei := lo; ei < hi; ei++ {
			if e.alive[ei] && pred(ei) {
				e.alive[ei] = false
				killed++
			}
		}
		dead[shard] = killed
	})
	for _, d := range dead {
		e.nAlive -= d
	}
}

// recordMerge notes that supernode v was absorbed via original edge orig:
// the edge joins v's tree component to the engulfing cluster's component,
// whose root (center) survives.
func (e *engine) recordMerge(v int32, orig int) {
	ed := e.g.Edge(orig)
	joinerEnd, hostEnd := ed.U, ed.V
	if int32(e.part.Super(ed.U)) != v {
		joinerEnd, hostEnd = ed.V, ed.U
	}
	hostCenter := e.compCenter[e.treeUF.Find(hostEnd)]
	e.treeUF.Union(joinerEnd, hostEnd)
	e.compCenter[e.treeUF.Find(hostEnd)] = hostCenter
	e.treeEdges = append(e.treeEdges, orig)
}

// contract performs Step C: final clusters become the supernodes of the next
// epoch's quotient graph, keeping one minimum-weight edge per supernode pair.
func (e *engine) contract() {
	// New supernode ids: rank of cluster centers in increasing center order
	// (deterministic across planes because e.active is sorted).
	rank := make([]int32, e.nSuper)
	for i := range rank {
		rank[i] = cluster.None
	}
	newCenter := make([]int32, 0, len(e.active))
	for i, c := range e.active {
		rank[c] = int32(i)
		newCenter = append(newCenter, e.centerVertex[c])
	}
	newID := make([]int32, e.nSuper)
	par.For(e.workers, e.nSuper, func(v int) {
		if cv := e.clusterOf[v]; cv != cluster.None {
			newID[v] = rank[cv]
		} else {
			newID[v] = cluster.None
		}
	})
	if err := e.part.ContractWorkers(newID, len(e.active), e.workers); err != nil {
		panic(err) // internal relabeling is always well-formed
	}

	// Relabel the surviving edges into the new supernode space: sharded with
	// per-shard buffers concatenated in shard order, then a parallel-sort
	// dedup (Step C's min-weight representative per pair).
	parts := make([][]cluster.QEdge, e.workers)
	par.ForShard(e.workers, len(e.edges), func(shard, lo, hi int) {
		var kept []cluster.QEdge
		for ei := lo; ei < hi; ei++ {
			if !e.alive[ei] {
				continue
			}
			ed := e.edges[ei]
			a, b := newID[ed.A], newID[ed.B]
			if CheckInvariants && (a == cluster.None || b == cluster.None || a == b) {
				panic(fmt.Sprintf("spanner: contraction found ill-placed alive edge %d", ei))
			}
			kept = append(kept, cluster.QEdge{A: int(a), B: int(b), W: ed.W, Orig: ed.Orig})
		}
		parts[shard] = kept
	})
	kept := make([]cluster.QEdge, 0, e.nAlive)
	for _, p := range parts {
		kept = append(kept, p...)
	}
	e.edges = e.minDedup(kept)
	e.alive = make([]bool, len(e.edges))
	for i := range e.alive {
		e.alive[i] = true
	}
	e.nAlive = len(e.edges)

	e.nSuper = len(e.active)
	e.centerVertex = newCenter
	e.clusterOf = make([]int32, e.nSuper)
	e.resetEpochScratch()
	e.rebuildIncidence()
	e.resetActive()
	e.stats.SupernodeHistory = append(e.stats.SupernodeHistory, e.nSuper)
}

// phase2 connects what remains. In the general algorithm the surviving edges
// already carry one minimum-weight representative per final supernode pair
// (Step C), so all of them enter the spanner. The classic [BS07] variant
// instead adds, for every vertex with surviving edges, the minimum edge
// toward each final cluster.
func (e *engine) phase2() {
	if e.nAlive == 0 {
		return
	}
	if !e.cfg.classicBS {
		parts := make([][]cluster.QEdge, e.workers)
		par.ForShard(e.workers, len(e.edges), func(shard, lo, hi int) {
			var live []cluster.QEdge
			for ei := lo; ei < hi; ei++ {
				if e.alive[ei] {
					live = append(live, e.edges[ei])
				}
			}
			parts[shard] = live
		})
		live := make([]cluster.QEdge, 0, e.nAlive)
		for _, p := range parts {
			live = append(live, p...)
		}
		for _, ed := range e.minDedup(live) {
			e.addSpanner(ed.Orig)
		}
		return
	}
	// Classic Phase 2: per-vertex, per-cluster minima over the snapshot,
	// sharded like the grow iterations (per-shard scratch, per-shard adds
	// merged in shard order).
	adds := make([][]int, e.workers)
	par.ForShard(e.workers, e.nSuper, func(shard, lo, hi int) {
		sc := &e.scratch[shard]
		var out []int
		for v := int32(lo); int(v) < hi; v++ {
			sc.stamp++
			sc.nbr = sc.nbr[:0]
			for _, ei := range e.inc[v] {
				if !e.alive[ei] {
					continue
				}
				ed := e.edges[ei]
				u := ed.A
				if u == int(v) {
					u = ed.B
				}
				cu := e.clusterOf[u]
				if cu == cluster.None {
					continue
				}
				if sc.mark[cu] != sc.stamp {
					sc.mark[cu] = sc.stamp
					sc.bestW[cu] = ed.W
					sc.bestIdx[cu] = ei
					sc.nbr = append(sc.nbr, cu)
				} else if ed.W < sc.bestW[cu] || (ed.W == sc.bestW[cu] && ed.Orig < e.edges[sc.bestIdx[cu]].Orig) {
					sc.bestW[cu] = ed.W
					sc.bestIdx[cu] = ei
				}
			}
			for _, cu := range sc.nbr {
				out = append(out, e.edges[sc.bestIdx[cu]].Orig)
			}
		}
		adds[shard] = out
	})
	for _, p := range adds {
		for _, orig := range p {
			e.addSpanner(orig)
		}
	}
}

// measureRadius computes the radii of the final cluster trees: every tree
// component is measured from its surviving center.
func (e *engine) measureRadius() cluster.TreeStats {
	rootSet := make(map[int]bool)
	var roots []int
	for _, id := range e.treeEdges {
		r := int(e.compCenter[e.treeUF.Find(e.g.Edge(id).U)])
		if !rootSet[r] {
			rootSet[r] = true
			roots = append(roots, r)
		}
	}
	return cluster.MeasureTrees(e.g, e.treeEdges, roots)
}
