package spanner

import (
	"fmt"
	"math"

	"mpcspanner/internal/cluster"
	"mpcspanner/internal/graph"
	"mpcspanner/internal/xrand"
)

// CheckInvariants enables expensive structural assertions inside the engine
// (the Lemma 5.6 invariant that every unprocessed edge joins two distinct
// live clusters). Tests switch it on; it panics on violation.
var CheckInvariants bool

// engine holds the mutable state of one run of the general algorithm on one
// graph. All supernode-indexed slices are rebuilt at each contraction.
type engine struct {
	g    *graph.Graph
	k, t int
	seed uint64
	cfg  engineConfig

	// Quotient graph of the current epoch.
	nSuper int
	edges  []cluster.QEdge // edge set E of the current epoch
	alive  []bool          // alive[i] <=> edges[i] still unprocessed
	nAlive int
	inc    [][]int32 // supernode -> indexes into edges

	part         *cluster.Partition
	centerVertex []int32 // supernode -> original center vertex
	clusterOf    []int32 // supernode -> center supernode of its cluster (cluster.None = finished)
	active       []int32 // centers of the live clusters of D_{j-1}

	// Output.
	inSpanner []bool
	spanIDs   []int

	// Cluster-tree bookkeeping over original vertices, for radius stats:
	// every merge edge is recorded, and a union-find tracks which original
	// center is the root of each tree component.
	treeEdges  []int
	treeUF     *graph.UnionFind
	compCenter []int32

	// Scratch, sized nSuper per epoch.
	sampledFlag []bool
	mark        []int32
	bestW       []float64
	bestIdx     []int32
	stamp       int32

	stats Stats
}

// runEngine executes one full run and returns the spanner.
func runEngine(g *graph.Graph, k, t int, seed uint64, cfg engineConfig) *Result {
	e := newEngine(g, k, t, seed, cfg)
	if cfg.classicBS {
		e.stats.Algorithm = "baswana-sen"
	} else {
		e.stats.Algorithm = "general"
	}

	e.phase1()
	e.phase2()

	ids := sortedUnique(e.spanIDs)
	e.stats.Phase2Edges = len(ids) - e.stats.Phase1Edges
	if cfg.measureRadius {
		e.stats.Radius = e.measureRadius()
	}
	return &Result{EdgeIDs: ids, Stats: e.stats}
}

func (e *engine) resetEpochScratch() {
	e.sampledFlag = make([]bool, e.nSuper)
	e.mark = make([]int32, e.nSuper)
	e.bestW = make([]float64, e.nSuper)
	e.bestIdx = make([]int32, e.nSuper)
	for i := range e.mark {
		e.mark[i] = -1
	}
	e.stamp = -1
}

func (e *engine) rebuildIncidence() {
	e.inc = make([][]int32, e.nSuper)
	deg := make([]int32, e.nSuper)
	for i := range e.edges {
		if !e.alive[i] {
			continue
		}
		deg[e.edges[i].A]++
		deg[e.edges[i].B]++
	}
	for v := range e.inc {
		e.inc[v] = make([]int32, 0, deg[v])
	}
	for i := range e.edges {
		if !e.alive[i] {
			continue
		}
		e.inc[e.edges[i].A] = append(e.inc[e.edges[i].A], int32(i))
		e.inc[e.edges[i].B] = append(e.inc[e.edges[i].B], int32(i))
	}
}

// resetActive makes every supernode a live singleton cluster (start of an
// epoch: D_0 = singletons).
func (e *engine) resetActive() {
	e.active = e.active[:0]
	for v := 0; v < e.nSuper; v++ {
		e.clusterOf[v] = int32(v)
		e.active = append(e.active, int32(v))
	}
}

func (e *engine) addSpanner(orig int) bool {
	if e.inSpanner[orig] {
		return false
	}
	e.inSpanner[orig] = true
	e.spanIDs = append(e.spanIDs, orig)
	return true
}

// phase1 runs the shared epoch/iteration schedule (see Schedule): epoch i
// samples with exponent (t+1)^{i-1}/k per iteration, cumulative exponents
// clamp at (k-1)/k, and a contraction follows each epoch.
func (e *engine) phase1() {
	n := float64(e.g.N())
	if n < 2 {
		return
	}
	for _, spec := range Schedule(e.k, e.t) {
		if e.nAlive == 0 {
			return
		}
		if spec.Iter == 1 {
			e.stats.Probabilities = append(e.stats.Probabilities,
				math.Pow(n, -math.Pow(float64(e.t+1), float64(spec.Epoch-1))/float64(e.k)))
		}
		e.iterate(math.Pow(n, -spec.Exponent), uint64(spec.Epoch), uint64(spec.Iter))
		e.stats.Iterations++
		if spec.LastOfEpoch && !e.cfg.classicBS {
			e.contract()
			e.stats.Epochs++
		}
	}
}

// iterate performs one grow iteration (Step B of §5.1) at sampling
// probability p, identified cross-plane by (epoch, iter).
// groupKey identifies a (supernode, neighbor-cluster) removal group.
type groupKey struct{ v, c int32 }

// joinRec records that a supernode joins a sampled cluster via an edge.
type joinRec struct {
	center int32
	orig   int
}

// iterPlan is the outcome of planning one grow iteration under a particular
// coin assignment, before any state is mutated. The Congested Clique mode
// (Theorem 8.1) plans the same iteration under several independent coin sets
// and applies only the chosen one.
type iterPlan struct {
	sampled     []int32 // sampled cluster centers (in active order)
	removeGroup map[groupKey]struct{}
	joins       map[int32]joinRec
	adds        []int // spanner additions (may repeat edges already chosen)
	newEdges    int   // additions not already in the spanner
}

// iterate performs one grow iteration (Step B of §5.1) at sampling
// probability p, identified cross-plane by (epoch, iter).
func (e *engine) iterate(p float64, epoch, iter uint64) {
	coin := func(center int32) bool {
		return xrand.CoinAt(p, e.seed, CoinDomainPhase1, epoch, iter, uint64(center))
	}
	e.applyIteration(e.planIteration(coin))
}

// planIteration evaluates Steps B1-B4 under the given coin without mutating
// any engine state (the sampled-flag scratch is restored before returning).
func (e *engine) planIteration(coin func(center int32) bool) *iterPlan {
	plan := &iterPlan{
		removeGroup: make(map[groupKey]struct{}),
		joins:       make(map[int32]joinRec),
	}
	// Step B1: sample the live clusters. The coin for a cluster is keyed by
	// its center's *original vertex*, which is stable across execution
	// planes and contractions.
	for _, c := range e.active {
		s := coin(e.centerVertex[c])
		e.sampledFlag[c] = s
		if s {
			plan.sampled = append(plan.sampled, c)
		}
	}
	defer func() {
		for _, c := range e.active {
			e.sampledFlag[c] = false
		}
	}()

	addPlanned := func(orig int) {
		if !e.inSpanner[orig] {
			// Not exact under intra-plan duplicates; fixed up below.
			plan.newEdges++
		}
		plan.adds = append(plan.adds, orig)
	}

	// Steps B2-B4: process every supernode not inside a sampled cluster.
	// Decisions are taken against the iteration-start snapshot, matching the
	// parallel (per-machine) semantics of the MPC implementation.
	var nbr []int32
	for v := int32(0); int(v) < e.nSuper; v++ {
		cv := e.clusterOf[v]
		if cv == cluster.None || e.sampledFlag[cv] {
			continue
		}
		// Gather the minimum-weight alive edge toward each neighboring
		// cluster (Definition 4.1's E(v, c) minima).
		e.stamp++
		nbr = nbr[:0]
		for _, ei := range e.inc[v] {
			if !e.alive[ei] {
				continue
			}
			ed := e.edges[ei]
			u := ed.A
			if u == int(v) {
				u = ed.B
			}
			cu := e.clusterOf[u]
			if CheckInvariants && cu == cluster.None {
				panic(fmt.Sprintf("spanner: alive edge %d touches finished supernode %d", ei, u))
			}
			if e.mark[cu] != e.stamp {
				e.mark[cu] = e.stamp
				e.bestW[cu] = ed.W
				e.bestIdx[cu] = ei
				nbr = append(nbr, cu)
			} else if ed.W < e.bestW[cu] || (ed.W == e.bestW[cu] && ed.Orig < e.edges[e.bestIdx[cu]].Orig) {
				e.bestW[cu] = ed.W
				e.bestIdx[cu] = ei
			}
		}
		if len(nbr) == 0 {
			continue
		}
		// Step B3: closest sampled neighboring cluster, if any. Ties break
		// by (weight, center vertex id) for determinism.
		closest := int32(-1)
		for _, cu := range nbr {
			if !e.sampledFlag[cu] {
				continue
			}
			if closest == -1 || e.bestW[cu] < e.bestW[closest] ||
				(e.bestW[cu] == e.bestW[closest] && e.centerVertex[cu] < e.centerVertex[closest]) {
				closest = cu
			}
		}
		if closest >= 0 {
			je := e.bestIdx[closest]
			orig := e.edges[je].Orig
			addPlanned(orig)
			plan.joins[v] = joinRec{center: closest, orig: orig}
			plan.removeGroup[groupKey{v, closest}] = struct{}{}
			w0 := e.bestW[closest]
			// Step B3 second bullet: clusters reachable strictly cheaper
			// than the join edge also get their minimum edge, then all
			// their edges are discarded.
			for _, cu := range nbr {
				if cu == closest || e.bestW[cu] >= w0 {
					continue
				}
				addPlanned(e.edges[e.bestIdx[cu]].Orig)
				plan.removeGroup[groupKey{v, cu}] = struct{}{}
			}
		} else {
			// Step B4: no sampled neighbor — keep one minimum edge per
			// neighboring cluster and discard everything else.
			for _, cu := range nbr {
				addPlanned(e.edges[e.bestIdx[cu]].Orig)
				plan.removeGroup[groupKey{v, cu}] = struct{}{}
			}
		}
	}
	// Correct newEdges for duplicates planned twice within this iteration
	// (the same minimum edge chosen from both endpoints).
	if len(plan.adds) > 1 {
		seen := make(map[int]struct{}, len(plan.adds))
		fresh := 0
		for _, orig := range plan.adds {
			if _, dup := seen[orig]; dup {
				continue
			}
			seen[orig] = struct{}{}
			if !e.inSpanner[orig] {
				fresh++
			}
		}
		plan.newEdges = fresh
	}
	return plan
}

// applyIteration commits a plan: spanner additions, removals, cluster
// formation (Step B5), intra-cluster cleanup (Step B6), and the new live
// cluster set.
func (e *engine) applyIteration(plan *iterPlan) {
	for _, c := range plan.sampled {
		e.sampledFlag[c] = true
	}
	for _, orig := range plan.adds {
		if e.addSpanner(orig) {
			e.stats.Phase1Edges++
		}
	}

	// Apply removals against the snapshot clustering.
	if len(plan.removeGroup) > 0 {
		for ei := range e.edges {
			if !e.alive[ei] {
				continue
			}
			ed := &e.edges[ei]
			if _, ok := plan.removeGroup[groupKey{int32(ed.A), e.clusterOf[ed.B]}]; ok {
				e.alive[ei] = false
				e.nAlive--
				continue
			}
			if _, ok := plan.removeGroup[groupKey{int32(ed.B), e.clusterOf[ed.A]}]; ok {
				e.alive[ei] = false
				e.nAlive--
			}
		}
	}

	// Step B5: form D_j — sampled clusters keep their members and absorb the
	// joining supernodes; everything else dissolves.
	for v := int32(0); int(v) < e.nSuper; v++ {
		cv := e.clusterOf[v]
		if cv == cluster.None {
			continue
		}
		if e.sampledFlag[cv] {
			continue // stays
		}
		if j, ok := plan.joins[v]; ok {
			e.clusterOf[v] = j.center
			e.recordMerge(v, j.orig)
		} else {
			e.clusterOf[v] = cluster.None
		}
	}

	// Step B6: drop intra-cluster edges.
	for ei := range e.edges {
		if !e.alive[ei] {
			continue
		}
		ed := &e.edges[ei]
		ca, cb := e.clusterOf[ed.A], e.clusterOf[ed.B]
		if CheckInvariants && (ca == cluster.None || cb == cluster.None) {
			panic(fmt.Sprintf("spanner: post-join alive edge %d has finished endpoint", ei))
		}
		if ca == cb {
			e.alive[ei] = false
			e.nAlive--
		}
	}

	// New live cluster set: the sampled centers, in increasing order
	// (e.active was sorted, so the filtered list stays sorted).
	next := e.active[:0]
	for _, c := range e.active {
		if e.sampledFlag[c] {
			next = append(next, c)
		} else {
			e.sampledFlag[c] = false
		}
	}
	e.active = next
}

// recordMerge notes that supernode v was absorbed via original edge orig:
// the edge joins v's tree component to the engulfing cluster's component,
// whose root (center) survives.
func (e *engine) recordMerge(v int32, orig int) {
	ed := e.g.Edge(orig)
	joinerEnd, hostEnd := ed.U, ed.V
	if int32(e.part.Super(ed.U)) != v {
		joinerEnd, hostEnd = ed.V, ed.U
	}
	hostCenter := e.compCenter[e.treeUF.Find(hostEnd)]
	e.treeUF.Union(joinerEnd, hostEnd)
	e.compCenter[e.treeUF.Find(hostEnd)] = hostCenter
	e.treeEdges = append(e.treeEdges, orig)
}

// contract performs Step C: final clusters become the supernodes of the next
// epoch's quotient graph, keeping one minimum-weight edge per supernode pair.
func (e *engine) contract() {
	// New supernode ids: rank of cluster centers in increasing center order
	// (deterministic across planes because e.active is sorted).
	rank := make([]int32, e.nSuper)
	for i := range rank {
		rank[i] = cluster.None
	}
	newCenter := make([]int32, 0, len(e.active))
	for i, c := range e.active {
		rank[c] = int32(i)
		newCenter = append(newCenter, e.centerVertex[c])
	}
	newID := make([]int32, e.nSuper)
	for v := 0; v < e.nSuper; v++ {
		if cv := e.clusterOf[v]; cv != cluster.None {
			newID[v] = rank[cv]
		} else {
			newID[v] = cluster.None
		}
	}
	if err := e.part.Contract(newID, len(e.active)); err != nil {
		panic(err) // internal relabeling is always well-formed
	}

	kept := make([]cluster.QEdge, 0, e.nAlive)
	for ei := range e.edges {
		if !e.alive[ei] {
			continue
		}
		ed := e.edges[ei]
		a, b := newID[ed.A], newID[ed.B]
		if CheckInvariants && (a == cluster.None || b == cluster.None || a == b) {
			panic(fmt.Sprintf("spanner: contraction found ill-placed alive edge %d", ei))
		}
		kept = append(kept, cluster.QEdge{A: int(a), B: int(b), W: ed.W, Orig: ed.Orig})
	}
	e.edges = cluster.MinDedup(kept)
	e.alive = make([]bool, len(e.edges))
	for i := range e.alive {
		e.alive[i] = true
	}
	e.nAlive = len(e.edges)

	e.nSuper = len(e.active)
	e.centerVertex = newCenter
	e.clusterOf = make([]int32, e.nSuper)
	e.resetEpochScratch()
	e.rebuildIncidence()
	e.resetActive()
	e.stats.SupernodeHistory = append(e.stats.SupernodeHistory, e.nSuper)
}

// phase2 connects what remains. In the general algorithm the surviving edges
// already carry one minimum-weight representative per final supernode pair
// (Step C), so all of them enter the spanner. The classic [BS07] variant
// instead adds, for every vertex with surviving edges, the minimum edge
// toward each final cluster.
func (e *engine) phase2() {
	if e.nAlive == 0 {
		return
	}
	if !e.cfg.classicBS {
		live := make([]cluster.QEdge, 0, e.nAlive)
		for ei := range e.edges {
			if e.alive[ei] {
				live = append(live, e.edges[ei])
			}
		}
		for _, ed := range cluster.MinDedup(live) {
			e.addSpanner(ed.Orig)
		}
		return
	}
	// Classic Phase 2: per-vertex, per-cluster minima over the snapshot.
	var nbr []int32
	for v := int32(0); int(v) < e.nSuper; v++ {
		e.stamp++
		nbr = nbr[:0]
		for _, ei := range e.inc[v] {
			if !e.alive[ei] {
				continue
			}
			ed := e.edges[ei]
			u := ed.A
			if u == int(v) {
				u = ed.B
			}
			cu := e.clusterOf[u]
			if cu == cluster.None {
				continue
			}
			if e.mark[cu] != e.stamp {
				e.mark[cu] = e.stamp
				e.bestW[cu] = ed.W
				e.bestIdx[cu] = ei
				nbr = append(nbr, cu)
			} else if ed.W < e.bestW[cu] || (ed.W == e.bestW[cu] && ed.Orig < e.edges[e.bestIdx[cu]].Orig) {
				e.bestW[cu] = ed.W
				e.bestIdx[cu] = ei
			}
		}
		for _, cu := range nbr {
			e.addSpanner(e.edges[e.bestIdx[cu]].Orig)
		}
	}
}

// measureRadius computes the radii of the final cluster trees: every tree
// component is measured from its surviving center.
func (e *engine) measureRadius() cluster.TreeStats {
	rootSet := make(map[int]bool)
	var roots []int
	for _, id := range e.treeEdges {
		r := int(e.compCenter[e.treeUF.Find(e.g.Edge(id).U)])
		if !rootSet[r] {
			rootSet[r] = true
			roots = append(roots, r)
		}
	}
	return cluster.MeasureTrees(e.g, e.treeEdges, roots)
}
