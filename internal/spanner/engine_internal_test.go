package spanner

import (
	"testing"

	"mpcspanner/internal/graph"
)

// White-box tests of the plan/apply iteration split that the Theorem 8.1
// selection relies on: planning must be side-effect free and deterministic,
// and newEdges must count distinct fresh spanner additions.

func TestPlanIterationSideEffectFree(t *testing.T) {
	g := graph.GNP(120, 0.08, graph.UniformWeight(1, 9), 1)
	e := newEngine(g, 8, 2, 7, engineConfig{})
	coin := func(center int32) bool { return center%3 == 0 }

	snapshotCluster := append([]int32(nil), e.clusterOf...)
	snapshotAlive := append([]bool(nil), e.alive...)
	plan1 := e.planIteration(coin)
	// No state may have changed.
	for i := range snapshotCluster {
		if e.clusterOf[i] != snapshotCluster[i] {
			t.Fatal("planIteration mutated clusterOf")
		}
	}
	for i := range snapshotAlive {
		if e.alive[i] != snapshotAlive[i] {
			t.Fatal("planIteration mutated alive")
		}
	}
	for _, c := range e.active {
		if e.sampledFlag[c] {
			t.Fatal("planIteration leaked sampled flags")
		}
	}
	// Re-planning under the same coin is identical.
	plan2 := e.planIteration(coin)
	if len(plan1.sampled) != len(plan2.sampled) || plan1.newEdges != plan2.newEdges ||
		len(plan1.adds) != len(plan2.adds) || len(plan1.joins) != len(plan2.joins) {
		t.Fatal("planIteration not deterministic")
	}
}

func TestPlanNewEdgesCountsDistinctFresh(t *testing.T) {
	// Triangle with an extra pendant: under "nothing sampled", every
	// supernode emits its per-cluster minima; shared minima must be counted
	// once in newEdges.
	g := graph.MustNew(4, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 1}, {U: 2, V: 3, W: 1},
	})
	e := newEngine(g, 4, 1, 1, engineConfig{})
	plan := e.planIteration(func(int32) bool { return false })
	// All four edges are minima of some (v, c) group; none are in the
	// spanner yet.
	if plan.newEdges != 4 {
		t.Fatalf("newEdges = %d, want 4", plan.newEdges)
	}
	if len(plan.adds) <= plan.newEdges {
		t.Fatalf("adds (%d) should contain endpoint duplicates beyond newEdges (%d)",
			len(plan.adds), plan.newEdges)
	}
	// After applying, re-planning the same decisions yields zero fresh.
	e.applyIteration(plan)
	if e.nAlive != 0 {
		t.Fatalf("nothing-sampled iteration should consume all edges, %d alive", e.nAlive)
	}
}

func TestApplyIterationFormsClusters(t *testing.T) {
	// Path 0-1-2-3-4 with only center 2 sampled: neighbors 1 and 3 join it;
	// 0 and 4 resolve their edges and dissolve.
	g := graph.Path(5, graph.UnitWeight, 1)
	e := newEngine(g, 4, 1, 1, engineConfig{})
	plan := e.planIteration(func(center int32) bool { return center == 2 })
	e.applyIteration(plan)
	if e.clusterOf[1] != 2 || e.clusterOf[3] != 2 {
		t.Fatalf("vertices 1,3 should join cluster 2: %v", e.clusterOf)
	}
	if len(e.active) != 1 || e.active[0] != 2 {
		t.Fatalf("active clusters %v, want [2]", e.active)
	}
	// All edges resolved: 1-2 and 2-3 are join edges (removed from E),
	// 0-1 and 3-4 were emitted by the dissolving endpoints.
	if e.nAlive != 0 {
		t.Fatalf("%d edges still alive", e.nAlive)
	}
	if len(e.spanIDs) != 4 {
		t.Fatalf("spanner has %d of the path's 4 edges", len(e.spanIDs))
	}
}

func TestContractRelabelsDeterministically(t *testing.T) {
	// Two clusters after one iteration on two disjoint triangles; contract
	// and check the quotient is two isolated supernodes with centers in
	// increasing center-vertex order.
	g := graph.MustNew(6, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 1},
		{U: 3, V: 4, W: 1}, {U: 4, V: 5, W: 1}, {U: 3, V: 5, W: 1},
	})
	e := newEngine(g, 4, 1, 1, engineConfig{})
	plan := e.planIteration(func(center int32) bool { return center == 0 || center == 4 })
	e.applyIteration(plan)
	e.contract()
	if e.nSuper != 2 {
		t.Fatalf("supernodes after contraction: %d", e.nSuper)
	}
	if e.centerVertex[0] != 0 || e.centerVertex[1] != 4 {
		t.Fatalf("centers %v, want [0 4]", e.centerVertex)
	}
	if e.nAlive != 0 {
		t.Fatal("disjoint triangles should leave no inter-cluster edges")
	}
}
