package spanner

import (
	"reflect"
	"runtime"
	"testing"

	"mpcspanner/internal/graph"
)

// pinWorkers is the parallel worker count the determinism pins compare
// against Workers: 1. It exercises real concurrency even on small CI
// machines (goroutines interleave under -race regardless of core count).
func pinWorkers() int {
	w := runtime.NumCPU()
	if w < 4 {
		w = 4
	}
	return w
}

// TestWorkerCountInvariance is the engine's parallelization contract: equal
// seeds yield bit-identical spanners, iteration/epoch counts and stretch
// reports at every worker count, for every algorithm family.
func TestWorkerCountInvariance(t *testing.T) {
	w := pinWorkers()
	for name, g := range testGraphs() {
		builds := map[string]func(workers int) (*Result, error){
			"general": func(workers int) (*Result, error) {
				return General(g, 8, 2, Options{Seed: 99, Workers: workers, MeasureRadius: true})
			},
			"sqrt-k": func(workers int) (*Result, error) {
				return SqrtK(g, 9, Options{Seed: 101, Workers: workers})
			},
			"baswana-sen": func(workers int) (*Result, error) {
				return BaswanaSen(g, 4, Options{Seed: 103, Workers: workers})
			},
		}
		for alg, build := range builds {
			serial, err := build(1)
			if err != nil {
				t.Fatalf("%s/%s serial: %v", name, alg, err)
			}
			parallel, err := build(w)
			if err != nil {
				t.Fatalf("%s/%s workers=%d: %v", name, alg, w, err)
			}
			if !reflect.DeepEqual(serial.EdgeIDs, parallel.EdgeIDs) {
				t.Fatalf("%s/%s: spanner edges differ between Workers=1 and Workers=%d", name, alg, w)
			}
			if !reflect.DeepEqual(serial.Stats, parallel.Stats) {
				t.Fatalf("%s/%s: stats differ between worker counts:\n  1: %+v\n  %d: %+v",
					name, alg, serial.Stats, w, parallel.Stats)
			}
			// The stretch report (the verification-side artifact) must pin too.
			repS, err := Verify(g, serial, StretchBound(16, 4))
			if err != nil {
				t.Fatalf("%s/%s verify serial: %v", name, alg, err)
			}
			repP, err := Verify(g, parallel, StretchBound(16, 4))
			if err != nil {
				t.Fatalf("%s/%s verify parallel: %v", name, alg, err)
			}
			if !reflect.DeepEqual(repS, repP) {
				t.Fatalf("%s/%s: stretch reports differ between worker counts", name, alg)
			}
		}
	}
}

func TestWorkerCountInvarianceWHP(t *testing.T) {
	g := graph.GNP(260, 0.05, graph.UniformWeight(1, 40), 7)
	serial, whpS, err := GeneralWHP(g, 8, 2, 6, Options{Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, whpP, err := GeneralWHP(g, 8, 2, 6, Options{Seed: 11, Workers: pinWorkers()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.EdgeIDs, parallel.EdgeIDs) || !reflect.DeepEqual(serial.Stats, parallel.Stats) {
		t.Fatal("WHP spanner differs between worker counts")
	}
	if !reflect.DeepEqual(whpS, whpP) {
		t.Fatal("WHP selection statistics differ between worker counts")
	}
}

func TestWorkerCountInvarianceUnweighted(t *testing.T) {
	g := graph.GNP(300, 0.06, graph.UnitWeight, 13)
	serial, err := Unweighted(g, 3, UnweightedOptions{Seed: 17, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Unweighted(g, 3, UnweightedOptions{Seed: 17, Workers: pinWorkers()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.EdgeIDs, parallel.EdgeIDs) || !reflect.DeepEqual(serial.Stats, parallel.Stats) {
		t.Fatal("unweighted spanner differs between worker counts")
	}
}

// TestParallelRepetitionsDeterminism pins the per-shard-stream repetition
// runner: concurrent repetitions must select the same winner as serial ones.
func TestParallelRepetitionsDeterminism(t *testing.T) {
	g := graph.GNP(300, 0.05, graph.UniformWeight(1, 9), 23)
	serial, err := General(g, 6, 2, Options{Seed: 29, Repetitions: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := General(g, 6, 2, Options{Seed: 29, Repetitions: 8, Workers: pinWorkers()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.EdgeIDs, parallel.EdgeIDs) {
		t.Fatal("repetition winner differs between worker counts")
	}
	if serial.Stats.Repetition != parallel.Stats.Repetition {
		t.Fatalf("winning repetition index differs: %d vs %d",
			serial.Stats.Repetition, parallel.Stats.Repetition)
	}
}

func TestNegativeWorkersRejected(t *testing.T) {
	g := graph.Path(4, graph.UnitWeight, 1)
	if _, err := General(g, 4, 2, Options{Workers: -1}); err == nil {
		t.Fatal("General accepted Workers < 0")
	}
	if _, err := BaswanaSen(g, 4, Options{Workers: -2}); err == nil {
		t.Fatal("BaswanaSen accepted Workers < 0")
	}
	if _, _, err := GeneralWHP(g, 4, 2, 0, Options{Workers: -1}); err == nil {
		t.Fatal("GeneralWHP accepted Workers < 0")
	}
	unit := graph.Path(4, graph.UnitWeight, 1)
	if _, err := Unweighted(unit, 2, UnweightedOptions{Workers: -1}); err == nil {
		t.Fatal("Unweighted accepted Workers < 0")
	}
}
