package spanner

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"mpcspanner/internal/core"
	"mpcspanner/internal/graph"
)

// pinWorkers is the parallel worker count the determinism pins compare
// against Workers: 1. It exercises real concurrency even on small CI
// machines (goroutines interleave under -race regardless of core count).
func pinWorkers() int {
	w := runtime.NumCPU()
	if w < 4 {
		w = 4
	}
	return w
}

// TestWorkerCountInvariance is the engine's parallelization contract: equal
// seeds yield bit-identical spanners, iteration/epoch counts and stretch
// reports at every worker count, for every algorithm family.
func TestWorkerCountInvariance(t *testing.T) {
	w := pinWorkers()
	for name, g := range testGraphs() {
		builds := map[string]func(workers int) (*Result, error){
			"general": func(workers int) (*Result, error) {
				return General(g, 8, 2, Options{Seed: 99, Workers: workers, MeasureRadius: true})
			},
			"sqrt-k": func(workers int) (*Result, error) {
				return SqrtK(g, 9, Options{Seed: 101, Workers: workers})
			},
			"baswana-sen": func(workers int) (*Result, error) {
				return BaswanaSen(g, 4, Options{Seed: 103, Workers: workers})
			},
		}
		for alg, build := range builds {
			serial, err := build(1)
			if err != nil {
				t.Fatalf("%s/%s serial: %v", name, alg, err)
			}
			parallel, err := build(w)
			if err != nil {
				t.Fatalf("%s/%s workers=%d: %v", name, alg, w, err)
			}
			if !reflect.DeepEqual(serial.EdgeIDs, parallel.EdgeIDs) {
				t.Fatalf("%s/%s: spanner edges differ between Workers=1 and Workers=%d", name, alg, w)
			}
			if !reflect.DeepEqual(serial.Stats, parallel.Stats) {
				t.Fatalf("%s/%s: stats differ between worker counts:\n  1: %+v\n  %d: %+v",
					name, alg, serial.Stats, w, parallel.Stats)
			}
			// The stretch report (the verification-side artifact) must pin too.
			repS, err := Verify(g, serial, StretchBound(16, 4))
			if err != nil {
				t.Fatalf("%s/%s verify serial: %v", name, alg, err)
			}
			repP, err := Verify(g, parallel, StretchBound(16, 4))
			if err != nil {
				t.Fatalf("%s/%s verify parallel: %v", name, alg, err)
			}
			if !reflect.DeepEqual(repS, repP) {
				t.Fatalf("%s/%s: stretch reports differ between worker counts", name, alg)
			}
		}
	}
}

func TestWorkerCountInvarianceWHP(t *testing.T) {
	g := graph.GNP(260, 0.05, graph.UniformWeight(1, 40), 7)
	serial, whpS, err := GeneralWHP(g, 8, 2, 6, Options{Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, whpP, err := GeneralWHP(g, 8, 2, 6, Options{Seed: 11, Workers: pinWorkers()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.EdgeIDs, parallel.EdgeIDs) || !reflect.DeepEqual(serial.Stats, parallel.Stats) {
		t.Fatal("WHP spanner differs between worker counts")
	}
	if !reflect.DeepEqual(whpS, whpP) {
		t.Fatal("WHP selection statistics differ between worker counts")
	}
}

func TestWorkerCountInvarianceUnweighted(t *testing.T) {
	g := graph.GNP(300, 0.06, graph.UnitWeight, 13)
	serial, err := Unweighted(g, 3, UnweightedOptions{Seed: 17, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Unweighted(g, 3, UnweightedOptions{Seed: 17, Workers: pinWorkers()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.EdgeIDs, parallel.EdgeIDs) || !reflect.DeepEqual(serial.Stats, parallel.Stats) {
		t.Fatal("unweighted spanner differs between worker counts")
	}
}

// TestParallelRepetitionsDeterminism pins the per-shard-stream repetition
// runner: concurrent repetitions must select the same winner as serial ones.
func TestParallelRepetitionsDeterminism(t *testing.T) {
	g := graph.GNP(300, 0.05, graph.UniformWeight(1, 9), 23)
	serial, err := General(g, 6, 2, Options{Seed: 29, Repetitions: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := General(g, 6, 2, Options{Seed: 29, Repetitions: 8, Workers: pinWorkers()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.EdgeIDs, parallel.EdgeIDs) {
		t.Fatal("repetition winner differs between worker counts")
	}
	if serial.Stats.Repetition != parallel.Stats.Repetition {
		t.Fatalf("winning repetition index differs: %d vs %d",
			serial.Stats.Repetition, parallel.Stats.Repetition)
	}
}

func TestNegativeWorkersRejected(t *testing.T) {
	g := graph.Path(4, graph.UnitWeight, 1)
	if _, err := General(g, 4, 2, Options{Workers: -1}); err == nil {
		t.Fatal("General accepted Workers < 0")
	}
	if _, err := BaswanaSen(g, 4, Options{Workers: -2}); err == nil {
		t.Fatal("BaswanaSen accepted Workers < 0")
	}
	if _, _, err := GeneralWHP(g, 4, 2, 0, Options{Workers: -1}); err == nil {
		t.Fatal("GeneralWHP accepted Workers < 0")
	}
	unit := graph.Path(4, graph.UnitWeight, 1)
	if _, err := Unweighted(unit, 2, UnweightedOptions{Workers: -1}); err == nil {
		t.Fatal("Unweighted accepted Workers < 0")
	}
}

// TestCancellationSemantics pins the three promises of the context plumbing:
// a pre-canceled context fails fast with ctx.Err() classification; a cancel
// issued at a checkpoint is honored within a bounded number of further
// checkpoints; and supplying a live context never changes the output —
// equal-seed uncanceled runs are bit-identical to the context-free path at
// every worker count.
func TestCancellationSemantics(t *testing.T) {
	g := graph.GNP(500, 0.03, graph.UniformWeight(1, 60), 17)
	unit := graph.GNP(300, 0.04, graph.UnitWeight, 18)

	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	if _, err := GeneralCtx(pre, g, 6, 2, Options{Seed: 1}); !errors.Is(err, context.Canceled) || !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("GeneralCtx(canceled) = %v, want context.Canceled/core.ErrCanceled", err)
	}
	if _, err := BaswanaSenCtx(pre, g, 4, Options{Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("BaswanaSenCtx(canceled) = %v", err)
	}
	if _, _, err := GeneralWHPCtx(pre, g, 6, 2, 4, Options{Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("GeneralWHPCtx(canceled) = %v", err)
	}
	if _, err := UnweightedCtx(pre, unit, 2, UnweightedOptions{Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("UnweightedCtx(canceled) = %v", err)
	}

	// Mid-run cancel from the first checkpoint: the engine must stop within
	// a bounded number of further checkpoints (one trailing contract event
	// can share the canceling iteration's loop body; nothing after that).
	for _, workers := range []int{1, pinWorkers()} {
		ctx, cancel := context.WithCancel(context.Background())
		after := 0
		fired := false
		_, err := GeneralCtx(ctx, g, 8, 2, Options{Seed: 3, Workers: workers,
			Progress: func(ev core.ProgressEvent) {
				if fired {
					after++
				}
				fired = true
				cancel()
			}})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: mid-run cancel = %v, want context.Canceled", workers, err)
		}
		if after > 1 {
			t.Fatalf("workers=%d: %d checkpoints fired after the cancel, want <= 1", workers, after)
		}
	}

	// A live context changes nothing: bit-identical to the context-free path
	// at every worker count.
	for _, workers := range []int{1, pinWorkers()} {
		plain, err := General(g, 8, 2, Options{Seed: 41, Workers: workers, MeasureRadius: true})
		if err != nil {
			t.Fatal(err)
		}
		withCtx, err := GeneralCtx(context.Background(), g, 8, 2, Options{Seed: 41, Workers: workers, MeasureRadius: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, withCtx) {
			t.Fatalf("workers=%d: context-free and live-context runs differ", workers)
		}
	}

	// Repetitions: a canceled context stops the fan-out and drains every
	// in-flight run; no goroutines outlive the call.
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := GeneralCtx(ctx, g, 6, 2, Options{Seed: 5, Repetitions: 6, Workers: pinWorkers()}); !errors.Is(err, context.Canceled) {
		t.Fatalf("repetitions cancel = %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before+2 {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Fatalf("goroutines leaked after canceled repetitions: %d -> %d", before, n)
	}
}
