package spanner

import "math"

// CoinDomainPhase1 tags Phase 1 cluster-sampling coins in the xrand key
// space. Both execution planes (the sequential engine here and the simulated
// MPC driver in internal/mpc) key their coins as
// xrand.CoinAt(p, seed, CoinDomainPhase1, epoch, iter, centerVertex),
// which is what makes their runs bit-identical.
const CoinDomainPhase1 = 0x70313 // "p1"

// IterationSpec describes one grow iteration of the general algorithm's
// schedule. The sampling probability on an n-vertex input is n^{-Exponent}.
type IterationSpec struct {
	Epoch       int     // 1-based epoch index
	Iter        int     // 1-based iteration within the epoch
	Exponent    float64 // sampling exponent; p = n^{-Exponent}
	LastOfEpoch bool    // a contraction (Step C) follows this iteration
}

// Schedule returns the complete epoch/iteration schedule for General(k, t):
// epoch i contributes up to t iterations with exponent (t+1)^{i-1}/k, and
// the cumulative exponent is clamped at (k-1)/k (the paper's
// ((t+1)^l − 1)/k with (t+1)^l = k), so the final iteration may use a
// reduced exponent when log k / log(t+1) is not an integer. Both execution
// planes iterate this exact schedule.
func Schedule(k, t int) []IterationSpec {
	const eps = 1e-12
	if k <= 1 {
		return nil
	}
	target := float64(k-1) / float64(k)
	consumed := 0.0
	var specs []IterationSpec
	for epoch := 1; consumed < target-eps; epoch++ {
		exponent := math.Pow(float64(t+1), float64(epoch-1)) / float64(k)
		for j := 1; j <= t && consumed < target-eps; j++ {
			ex := exponent
			if consumed+ex > target {
				ex = target - consumed
			}
			consumed += ex
			specs = append(specs, IterationSpec{Epoch: epoch, Iter: j, Exponent: ex})
		}
		specs[len(specs)-1].LastOfEpoch = true
	}
	return specs
}
