package spanner

import (
	"math"
	"testing"
	"testing/quick"
)

func TestScheduleCumulativeExponent(t *testing.T) {
	for _, c := range []struct{ k, t int }{{2, 1}, {4, 1}, {16, 3}, {9, 2}, {16, 15}, {7, 5}, {100, 4}} {
		specs := Schedule(c.k, c.t)
		sum := 0.0
		for _, s := range specs {
			sum += s.Exponent
		}
		want := float64(c.k-1) / float64(c.k)
		if math.Abs(sum-want) > 1e-9 {
			t.Fatalf("k=%d t=%d: cumulative exponent %v, want %v", c.k, c.t, sum, want)
		}
	}
}

func TestScheduleShape(t *testing.T) {
	specs := Schedule(16, 3)
	// Epochs are 1-based, contiguous, with at most t iterations each, and
	// exactly one LastOfEpoch per epoch (its final iteration).
	perEpoch := map[int]int{}
	lastSeen := map[int]bool{}
	for i, s := range specs {
		perEpoch[s.Epoch]++
		if s.Iter != perEpoch[s.Epoch] {
			t.Fatalf("spec %d: iter %d out of order", i, s.Iter)
		}
		if s.Iter > 3 {
			t.Fatalf("epoch %d has more than t iterations", s.Epoch)
		}
		if s.LastOfEpoch {
			if lastSeen[s.Epoch] {
				t.Fatalf("epoch %d has two LastOfEpoch marks", s.Epoch)
			}
			lastSeen[s.Epoch] = true
		}
	}
	for e := range perEpoch {
		if !lastSeen[e] {
			t.Fatalf("epoch %d lacks a LastOfEpoch mark", e)
		}
	}
	if !specs[len(specs)-1].LastOfEpoch {
		t.Fatal("final spec must close its epoch")
	}
}

func TestScheduleBaswanaSenRegime(t *testing.T) {
	// t >= k-1: exactly k-1 iterations at exponent 1/k, one epoch.
	specs := Schedule(8, 8)
	if len(specs) != 7 {
		t.Fatalf("k=8 t=8: %d iterations, want 7", len(specs))
	}
	for _, s := range specs {
		if s.Epoch != 1 {
			t.Fatal("should be a single epoch")
		}
		if math.Abs(s.Exponent-1.0/8) > 1e-12 {
			t.Fatalf("exponent %v, want 1/8", s.Exponent)
		}
	}
}

func TestScheduleDegenerate(t *testing.T) {
	if Schedule(1, 3) != nil {
		t.Fatal("k=1 needs no phase-1 iterations")
	}
	specs := Schedule(2, 1)
	if len(specs) != 1 || math.Abs(specs[0].Exponent-0.5) > 1e-12 {
		t.Fatalf("k=2 t=1: %+v", specs)
	}
}

func TestScheduleExponentsNonDecreasingUntilClamp(t *testing.T) {
	f := func(seed uint64) bool {
		k := 2 + int(seed%60)
		tt := 1 + int((seed>>8)%6)
		specs := Schedule(k, tt)
		if len(specs) == 0 {
			return k == 1
		}
		// Exponents never decrease except possibly at the final clamped
		// iteration; total count matches the bound.
		for i := 1; i < len(specs)-1; i++ {
			if specs[i].Exponent < specs[i-1].Exponent-1e-12 {
				return false
			}
		}
		return len(specs) <= IterationBound(k, tt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
