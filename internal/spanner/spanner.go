// Package spanner implements the paper's spanner constructions:
//
//   - General: the §5 trade-off algorithm. Epoch i runs t grow iterations of
//     Baswana–Sen-style clustering on the current quotient graph with
//     sampling probability n^{−(t+1)^{i−1}/k}, then contracts (Step C).
//     It yields stretch O(k^s), s = log(2t+1)/log(t+1), size
//     O(n^{1+1/k}(t+log k)), in O(t·log k/log(t+1)) iterations (Thm 5.15).
//   - ClusterMerge: the §4 algorithm = General with t = 1 (stretch O(k^{log 3}),
//     log k epochs, Thm 4.14).
//   - SqrtK: the §3 algorithm = General with t = ⌈√k⌉ (stretch O(k), O(√k)
//     iterations, Thms 3.1/3.4).
//   - BaswanaSen: the classic [BS07] baseline (stretch 2k−1, k−1 iterations,
//     per-vertex Phase 2, no contraction), used as the paper's comparison
//     point and as a subroutine of the unweighted algorithm.
//   - Unweighted: the Appendix B adaptation of Parter–Yogev (stretch O(k/γ),
//     O(log k) rounds, extra O(n^{1+γ}) memory), for unweighted graphs.
//
// All algorithms are deterministic given Options.Seed: every sampling coin is
// the pure function xrand.CoinAt(p, seed, epoch, iteration, centerVertex), so
// the simulated MPC execution (internal/mpc) can replay identical runs.
package spanner

import (
	"context"
	"math"
	"sort"

	"mpcspanner/internal/cluster"
	"mpcspanner/internal/core"
	"mpcspanner/internal/graph"
	"mpcspanner/internal/obs"
	"mpcspanner/internal/par"
	"mpcspanner/internal/xrand"
)

// Options configures a spanner construction.
type Options struct {
	// Seed drives every random choice. Two runs with equal seeds and inputs
	// produce identical spanners.
	Seed uint64

	// Repetitions > 1 runs that many independent instances (derived seeds)
	// and keeps the smallest spanner — the "w.h.p. via O(log n) parallel
	// repetitions" mechanism of Theorem 8.1 / Section 6. Zero means 1.
	Repetitions int

	// Workers sizes the construction's worker pool (internal/par): 0 selects
	// runtime.GOMAXPROCS(0), 1 forces the serial path, larger values pin the
	// pool. Equal seeds yield bit-identical spanners, round counts and
	// stretch reports at every worker count; negative values are rejected
	// with an error.
	Workers int

	// MeasureRadius additionally computes the final cluster-tree radii
	// (hop and weighted), used by the stretch accounting experiments.
	MeasureRadius bool

	// Progress, when non-nil, receives one core.ProgressEvent per engine
	// checkpoint (grow iteration, contraction, phase 2, and one
	// "repetition" event per finished run when Repetitions > 1). Events are
	// emitted synchronously from the construction loop; the callback must
	// not block for long, must not call back into the engine, and must be
	// safe for concurrent use when Repetitions > 1 (repetitions run on the
	// worker pool).
	Progress func(core.ProgressEvent)

	// Metrics, when non-nil, attaches the engine's structural gauges and
	// counters (grow iterations, contractions, supernode/alive-edge levels,
	// per-iteration wall clock). nil runs fully uninstrumented — inert nil
	// handles, no clock reads — so the construction hot path is unchanged.
	Metrics *obs.Registry

	// Tracer, when non-nil, records per-phase spans (B1 coins, grow
	// iterations, removal sweeps, Step C contractions, Phase 2) with
	// durations and cluster counts. Safe for Repetitions > 1: concurrent
	// engines append to the same tracer.
	Tracer *obs.Tracer
}

func (o Options) reps() int {
	if o.Repetitions < 1 {
		return 1
	}
	return o.Repetitions
}

// validate rejects malformed option values with descriptive errors (the
// facade mirrors this check so misconfiguration fails loudly at either
// layer rather than silently misbehaving).
func (o Options) validate() error {
	return par.CheckWorkers("spanner: Options.Workers", o.Workers)
}

// Stats reports the structural costs of a run — the quantities the paper's
// theorems bound.
type Stats struct {
	Algorithm string
	K         int // stretch parameter
	T         int // grow iterations per epoch (General family)

	Epochs     int // number of contraction epochs executed
	Iterations int // total grow iterations = the algorithm's round driver

	Phase1Edges int // spanner edges added during Phase 1
	Phase2Edges int // spanner edges added during Phase 2

	// SupernodeHistory[i] is the supernode count after epoch i+1's
	// contraction (Lemma 5.12's quantity).
	SupernodeHistory []int

	// Probabilities[i] is the per-iteration sampling probability of epoch
	// i+1 (before any final-iteration clamping).
	Probabilities []float64

	// Tree radii of the final clustering (only if Options.MeasureRadius).
	Radius cluster.TreeStats

	// Repetition is the index of the winning run when Repetitions > 1.
	Repetition int
}

// Result is a constructed spanner: the selected edge identifiers (sorted,
// unique, indexes into the input graph's edge list) plus run statistics.
type Result struct {
	EdgeIDs []int
	Stats   Stats
}

// Size returns the number of spanner edges.
func (r *Result) Size() int { return len(r.EdgeIDs) }

// Spanner materializes the spanner as a graph on the same vertex set.
func (r *Result) Spanner(g *graph.Graph) *graph.Graph { return g.Subgraph(r.EdgeIDs) }

// General runs the §5 trade-off algorithm with parameters k ≥ 1 (stretch
// exponent base) and t ≥ 1 (grow iterations per epoch). Larger t lowers the
// stretch toward 2k−1 at the cost of more iterations; see StretchBound and
// IterationBound for the theoretical envelope.
func General(g *graph.Graph, k, t int, opt Options) (*Result, error) {
	return GeneralCtx(context.Background(), g, k, t, opt)
}

// GeneralCtx is General under a context: the engine checkpoints ctx at every
// grow iteration and contraction and returns core.Canceled(ctx.Err()) —
// matching errors.Is against both core.ErrCanceled and ctx.Err() — at the
// first checkpoint after cancellation, with all pool goroutines joined.
// Uncanceled runs are bit-identical to General at every worker count.
func GeneralCtx(ctx context.Context, g *graph.Graph, k, t int, opt Options) (*Result, error) {
	if err := validateKT(k, t); err != nil {
		return nil, err
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	return bestOf(ctx, opt, func(runCtx context.Context, seed uint64) (*Result, error) {
		return runEngine(runCtx, g, k, t, seed, engineConfig{
			measureRadius: opt.MeasureRadius,
			workers:       opt.Workers,
			progress:      opt.Progress,
			metrics:       opt.Metrics,
			tracer:        opt.Tracer,
		})
	})
}

// ClusterMerge runs the §4 cluster-cluster merging algorithm (t = 1):
// log k epochs, stretch O(k^{log 3}), size O(n^{1+1/k}·log k).
func ClusterMerge(g *graph.Graph, k int, opt Options) (*Result, error) {
	return ClusterMergeCtx(context.Background(), g, k, opt)
}

// ClusterMergeCtx is ClusterMerge under a context (see GeneralCtx).
func ClusterMergeCtx(ctx context.Context, g *graph.Graph, k int, opt Options) (*Result, error) {
	r, err := GeneralCtx(ctx, g, k, 1, opt)
	if err != nil {
		return nil, err
	}
	r.Stats.Algorithm = "cluster-merge"
	return r, nil
}

// SqrtK runs the §3 two-phase algorithm (t = ⌈√k⌉): O(√k) iterations,
// stretch O(k), size O(√k·n^{1+1/k}).
func SqrtK(g *graph.Graph, k int, opt Options) (*Result, error) {
	return SqrtKCtx(context.Background(), g, k, opt)
}

// SqrtKCtx is SqrtK under a context (see GeneralCtx).
func SqrtKCtx(ctx context.Context, g *graph.Graph, k int, opt Options) (*Result, error) {
	t := int(math.Ceil(math.Sqrt(float64(k))))
	if t < 1 {
		t = 1
	}
	r, err := GeneralCtx(ctx, g, k, t, opt)
	if err != nil {
		return nil, err
	}
	r.Stats.Algorithm = "sqrt-k"
	return r, nil
}

// BaswanaSen runs the classic [BS07] construction: k−1 grow iterations with
// probability n^{−1/k}, no contraction, and a per-vertex Phase 2. Its stretch
// is 2k−1 and its expected size O(k·n^{1+1/k}); it is the paper's baseline.
func BaswanaSen(g *graph.Graph, k int, opt Options) (*Result, error) {
	return BaswanaSenCtx(context.Background(), g, k, opt)
}

// BaswanaSenCtx is BaswanaSen under a context (see GeneralCtx).
func BaswanaSenCtx(ctx context.Context, g *graph.Graph, k int, opt Options) (*Result, error) {
	if err := validateKT(k, 1); err != nil {
		return nil, err
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	return bestOf(ctx, opt, func(runCtx context.Context, seed uint64) (*Result, error) {
		return runEngine(runCtx, g, k, k, seed, engineConfig{
			classicBS:     true,
			measureRadius: opt.MeasureRadius,
			workers:       opt.Workers,
			progress:      opt.Progress,
			metrics:       opt.Metrics,
			tracer:        opt.Tracer,
		})
	})
}

// StretchBound returns the paper's stretch guarantee for General(k, t):
// 2·k^s with s = log(2t+1)/log(t+1) (Theorem 5.11 / Corollary 5.10). Note
// that the classic BaswanaSen variant has the stronger guarantee 2k−1 — the
// general algorithm's contractions (Step C) trade that for fewer iterations
// even when t ≥ k−1.
func StretchBound(k, t int) float64 {
	if k <= 1 {
		return 1
	}
	s := math.Log(float64(2*t+1)) / math.Log(float64(t+1))
	return 2 * math.Pow(float64(k), s)
}

// IterationBound returns the paper's iteration guarantee for General(k, t):
// t·⌈log k/log(t+1)⌉ (Theorem 5.15), i.e. grow iterations across all epochs.
func IterationBound(k, t int) int {
	if k <= 1 {
		return 0
	}
	if t >= k-1 {
		return k - 1
	}
	l := int(math.Ceil(math.Log(float64(k)) / math.Log(float64(t+1))))
	return t * l
}

func validateKT(k, t int) error {
	if k < 1 {
		return &core.OptionError{Field: "spanner: k", Value: k,
			Reason: "stretch parameter must be >= 1"}
	}
	if t < 1 {
		return &core.OptionError{Field: "spanner: t", Value: t,
			Reason: "epoch length must be >= 1"}
	}
	return nil
}

// bestOf runs `run` Repetitions times with derived seeds and keeps the
// smallest spanner (ties: earliest repetition). Repetitions execute
// concurrently on the option's worker pool — each draws its seed from its
// own per-repetition stream (the per-shard pattern of internal/par), and the
// winner is reduced order-independently over the index-addressed results,
// so the outcome is identical at every worker count. Cancellation
// checkpoints between repetitions (par.ForCoarseCtx) and inside each run
// (the engine's per-iteration checks); on cancellation every in-flight
// repetition drains at its own next checkpoint before bestOf returns.
func bestOf(ctx context.Context, opt Options, run func(ctx context.Context, seed uint64) (*Result, error)) (*Result, error) {
	reps := opt.reps()
	if reps == 1 {
		r, err := run(ctx, opt.Seed)
		if err != nil {
			return nil, err
		}
		r.Stats.Repetition = 0
		return r, nil
	}
	// Per-repetition seeds keep the historical "reps"-tagged derivation so
	// Repetitions > 1 runs reproduce pre-parallelization outputs exactly;
	// par.Streams packages the same per-shard-stream derivation under its
	// own tag for new call sites.
	results := make([]*Result, reps)
	err := par.ForCoarseCtx(ctx, par.Workers(opt.Workers), reps, func(rep int) error {
		r, err := run(ctx, xrand.Split(opt.Seed, 0x72657073, uint64(rep)).Uint64()) // "reps"
		if err != nil {
			return err
		}
		r.Stats.Repetition = rep
		if opt.Progress != nil {
			opt.Progress(core.ProgressEvent{Stage: "repetition", Algorithm: r.Stats.Algorithm,
				Iteration: rep + 1, TotalIterations: reps, SpannerEdges: len(r.EdgeIDs)})
		}
		results[rep] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	best := results[0]
	for _, r := range results[1:] {
		if len(r.EdgeIDs) < len(best.EdgeIDs) {
			best = r
		}
	}
	return best, nil
}

// engineConfig selects engine variants.
type engineConfig struct {
	// classicBS reproduces [BS07] exactly: a single epoch of k−1 iterations
	// at probability n^{−1/k}, no contraction, per-vertex Phase 2.
	classicBS bool

	measureRadius bool

	// workers is the requested pool size (par conventions; resolved in
	// newEngine).
	workers int

	// progress, when non-nil, receives the engine's checkpoint events.
	progress func(core.ProgressEvent)

	// metrics/tracer, when non-nil, carry the engine's exposition handles
	// (see Options.Metrics / Options.Tracer).
	metrics *obs.Registry
	tracer  *obs.Tracer
}

// sortedUnique sorts ids and removes duplicates in place.
func sortedUnique(ids []int) []int {
	sort.Ints(ids)
	out := ids[:0]
	for i, id := range ids {
		if i > 0 && id == ids[i-1] {
			continue
		}
		out = append(out, id)
	}
	return out
}
