package spanner

import (
	"math"
	"testing"
	"testing/quick"

	"mpcspanner/internal/graph"
)

func init() { CheckInvariants = true }

// testGraphs is the workload family most tests sweep over.
func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"gnp-unit":     graph.GNP(300, 0.05, graph.UnitWeight, 1),
		"gnp-weighted": graph.GNP(300, 0.05, graph.UniformWeight(1, 100), 2),
		"gnp-exp":      graph.GNP(250, 0.06, graph.ExpWeight(10), 3),
		"grid":         graph.Grid(18, 18, graph.UniformWeight(1, 5), 4),
		"torus":        graph.Torus(15, 15, graph.UnitWeight, 5),
		"pa":           graph.PreferentialAttachment(300, 4, graph.UniformWeight(1, 10), 6),
		"complete":     graph.Complete(60, graph.PowerWeight(2, 6), 7),
		"cycle":        graph.Cycle(100, graph.UnitWeight, 8),
		"tree":         graph.RandomTree(200, graph.UniformWeight(1, 3), 9),
		"disconnected": graph.MustNew(20, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 2}, {U: 3, V: 4, W: 1}}),
	}
}

func TestBaswanaSenStretchBound(t *testing.T) {
	for name, g := range testGraphs() {
		for _, k := range []int{2, 3, 5} {
			r, err := BaswanaSen(g, k, Options{Seed: 11})
			if err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			rep, err := Verify(g, r, float64(2*k-1))
			if err != nil {
				t.Fatalf("%s k=%d: %v (max %.3f)", name, k, err, rep.Max)
			}
		}
	}
}

func TestGeneralStretchBound(t *testing.T) {
	for name, g := range testGraphs() {
		for _, k := range []int{2, 4, 8} {
			for _, tt := range []int{1, 2, 3} {
				r, err := General(g, k, tt, Options{Seed: 13})
				if err != nil {
					t.Fatalf("%s k=%d t=%d: %v", name, k, tt, err)
				}
				if _, err := Verify(g, r, StretchBound(k, tt)); err != nil {
					t.Fatalf("%s k=%d t=%d: %v", name, k, tt, err)
				}
			}
		}
	}
}

func TestSqrtKStretchBound(t *testing.T) {
	g := graph.GNP(400, 0.04, graph.UniformWeight(1, 50), 17)
	for _, k := range []int{4, 9, 16} {
		r, err := SqrtK(g, k, Options{Seed: 19})
		if err != nil {
			t.Fatal(err)
		}
		tt := int(math.Ceil(math.Sqrt(float64(k))))
		if _, err := Verify(g, r, StretchBound(k, tt)); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if r.Stats.Algorithm != "sqrt-k" {
			t.Fatalf("algorithm label %q", r.Stats.Algorithm)
		}
	}
}

func TestClusterMergeLabelAndBound(t *testing.T) {
	g := graph.GNP(300, 0.05, graph.UniformWeight(1, 10), 23)
	r, err := ClusterMerge(g, 8, Options{Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Algorithm != "cluster-merge" {
		t.Fatalf("algorithm label %q", r.Stats.Algorithm)
	}
	// Theorem 4.10: stretch <= k^{log 3} (we verify against 2k^{log3}).
	if _, err := Verify(g, r, StretchBound(8, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestIterationSchedule(t *testing.T) {
	g := graph.GNP(400, 0.05, graph.UnitWeight, 31)
	cases := []struct{ k, t int }{{4, 1}, {8, 1}, {16, 1}, {16, 3}, {9, 3}, {16, 15}, {5, 4}}
	for _, c := range cases {
		r, err := General(g, c.k, c.t, Options{Seed: 37})
		if err != nil {
			t.Fatal(err)
		}
		if r.Stats.Iterations > IterationBound(c.k, c.t) {
			t.Fatalf("k=%d t=%d: %d iterations exceeds bound %d",
				c.k, c.t, r.Stats.Iterations, IterationBound(c.k, c.t))
		}
	}
	// Baswana-Sen runs exactly k-1 iterations on a graph with enough edges.
	r, err := BaswanaSen(g, 4, Options{Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Iterations != 3 {
		t.Fatalf("BS07 k=4 ran %d iterations, want 3", r.Stats.Iterations)
	}
	if r.Stats.Epochs != 0 {
		t.Fatalf("BS07 should not contract, saw %d epochs", r.Stats.Epochs)
	}
}

func TestSizeBound(t *testing.T) {
	// Expected size is O(n^{1+1/k}(t+log k)); check a generous constant on a
	// deterministic run. The point is catching blowups, not the constant.
	g := graph.GNP(1000, 0.02, graph.UniformWeight(1, 10), 41)
	n := float64(g.N())
	for _, c := range []struct{ k, t int }{{3, 1}, {5, 2}, {8, 3}} {
		r, err := General(g, c.k, c.t, Options{Seed: 43})
		if err != nil {
			t.Fatal(err)
		}
		bound := 6 * math.Pow(n, 1+1/float64(c.k)) * (float64(c.t) + math.Log2(float64(c.k)) + 1)
		if float64(r.Size()) > bound {
			t.Fatalf("k=%d t=%d: size %d exceeds %1.f", c.k, c.t, r.Size(), bound)
		}
		if r.Size() > g.M() {
			t.Fatalf("spanner larger than graph: %d > %d", r.Size(), g.M())
		}
	}
}

func TestDeterminism(t *testing.T) {
	g := graph.GNP(300, 0.04, graph.UniformWeight(1, 7), 47)
	a, _ := General(g, 6, 2, Options{Seed: 53})
	b, _ := General(g, 6, 2, Options{Seed: 53})
	if len(a.EdgeIDs) != len(b.EdgeIDs) {
		t.Fatalf("sizes differ: %d vs %d", len(a.EdgeIDs), len(b.EdgeIDs))
	}
	for i := range a.EdgeIDs {
		if a.EdgeIDs[i] != b.EdgeIDs[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
	c, _ := General(g, 6, 2, Options{Seed: 54})
	if len(a.EdgeIDs) == len(c.EdgeIDs) {
		same := true
		for i := range a.EdgeIDs {
			if a.EdgeIDs[i] != c.EdgeIDs[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical spanners (suspicious)")
		}
	}
}

func TestRepetitionsPickSmallest(t *testing.T) {
	g := graph.GNP(400, 0.05, graph.UnitWeight, 59)
	single, _ := General(g, 5, 2, Options{Seed: 61})
	multi, _ := General(g, 5, 2, Options{Seed: 61, Repetitions: 8})
	if multi.Size() > single.Size() {
		// The winning repetition is the min over 8 runs including different
		// seeds; it can't be worse than the best of them, but the single run
		// uses the undived seed, so just check multi is min over its runs by
		// re-running each rep is overkill — instead assert it's not larger
		// than a fresh single run with its winning derived seed is
		// consistent: the cheap invariant is multi <= max over reps, and
		// that it's a valid spanner.
		t.Logf("note: multi-rep size %d vs single %d (different seed streams)", multi.Size(), single.Size())
	}
	if _, err := Verify(g, multi, StretchBound(5, 2)); err != nil {
		t.Fatal(err)
	}
	if multi.Stats.Repetition < 0 || multi.Stats.Repetition >= 8 {
		t.Fatalf("winning repetition %d out of range", multi.Stats.Repetition)
	}
}

func TestKOne(t *testing.T) {
	// k=1 means stretch 1: the spanner must preserve every edge's exact
	// distance, i.e. keep a minimum parallel edge for every adjacent pair.
	g := graph.MustNew(3, []graph.Edge{
		{U: 0, V: 1, W: 5}, {U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 1},
	})
	r, err := General(g, 1, 1, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(g, r, 1); err != nil {
		t.Fatal(err)
	}
	if r.Size() != 2 {
		t.Fatalf("k=1 spanner size %d, want 2 (min parallel edge kept)", r.Size())
	}
}

func TestInvalidParameters(t *testing.T) {
	g := graph.Path(4, graph.UnitWeight, 1)
	if _, err := General(g, 0, 1, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := General(g, 2, 0, Options{}); err == nil {
		t.Fatal("t=0 accepted")
	}
	if _, err := BaswanaSen(g, -1, Options{}); err == nil {
		t.Fatal("negative k accepted")
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	empty := graph.MustNew(0, nil)
	r, err := General(empty, 4, 2, Options{})
	if err != nil || r.Size() != 0 {
		t.Fatalf("empty graph: %v size=%d", err, r.Size())
	}
	single := graph.MustNew(1, nil)
	if r, err = General(single, 4, 2, Options{}); err != nil || r.Size() != 0 {
		t.Fatalf("single vertex: %v size=%d", err, r.Size())
	}
	pair := graph.MustNew(2, []graph.Edge{{U: 0, V: 1, W: 3}})
	r, err = General(pair, 4, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 1 {
		t.Fatalf("two-vertex graph spanner size %d, want 1", r.Size())
	}
}

func TestDisconnectedPreserved(t *testing.T) {
	g := graph.MustNew(9, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 0, W: 1},
		{U: 3, V: 4, W: 2}, {U: 4, V: 5, W: 2}, {U: 5, V: 3, W: 2},
	})
	for _, k := range []int{2, 4} {
		r, err := General(g, k, 2, Options{Seed: 67})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Verify(g, r, StretchBound(k, 2)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestParallelEdges(t *testing.T) {
	g := graph.MustNew(4, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 0, V: 1, W: 9}, {U: 1, V: 2, W: 1},
		{U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 4}, {U: 2, V: 3, W: 3},
	})
	r, err := General(g, 3, 1, Options{Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(g, r, StretchBound(3, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestSupernodeHistoryDecreases(t *testing.T) {
	g := graph.GNP(600, 0.03, graph.UnitWeight, 73)
	r, err := General(g, 8, 2, Options{Seed: 79})
	if err != nil {
		t.Fatal(err)
	}
	prev := g.N()
	for i, s := range r.Stats.SupernodeHistory {
		if s > prev {
			t.Fatalf("supernode count grew at epoch %d: %d -> %d", i+1, prev, s)
		}
		prev = s
	}
	if len(r.Stats.Probabilities) != r.Stats.Epochs && len(r.Stats.Probabilities) != r.Stats.Epochs+1 {
		t.Fatalf("probabilities %d vs epochs %d", len(r.Stats.Probabilities), r.Stats.Epochs)
	}
	for i := 1; i < len(r.Stats.Probabilities); i++ {
		if r.Stats.Probabilities[i] > r.Stats.Probabilities[i-1] {
			t.Fatal("sampling probabilities should be non-increasing across epochs")
		}
	}
}

func TestRadiusMeasurement(t *testing.T) {
	g := graph.GNP(500, 0.04, graph.UnitWeight, 83)
	for _, c := range []struct{ k, t int }{{8, 1}, {8, 2}, {9, 3}} {
		r, err := General(g, c.k, c.t, Options{Seed: 89, MeasureRadius: true})
		if err != nil {
			t.Fatal(err)
		}
		// Corollary 5.9: hop radius <= ((2t+1)^l - 1)/2 with l the number
		// of scheduled epochs (a partial final epoch still grows radius).
		specs := Schedule(c.k, c.t)
		l := specs[len(specs)-1].Epoch
		bound := (math.Pow(float64(2*c.t+1), float64(l)) - 1) / 2
		if float64(r.Stats.Radius.MaxHops) > bound+1e-9 {
			t.Fatalf("k=%d t=%d: hop radius %d exceeds Corollary 5.9 bound %.1f (epochs=%d)",
				c.k, c.t, r.Stats.Radius.MaxHops, bound, l)
		}
	}
}

func TestStretchBoundValues(t *testing.T) {
	if StretchBound(1, 1) != 1 {
		t.Fatal("k=1 bound should be 1")
	}
	// t=3, k=4: s = log7/log4, k^s = 7, bound = 14.
	if math.Abs(StretchBound(4, 3)-14) > 1e-9 {
		t.Fatalf("StretchBound(4,3) = %v, want 14", StretchBound(4, 3))
	}
	// t=1: 2k^{log2 3}.
	want := 2 * math.Pow(8, math.Log2(3))
	if math.Abs(StretchBound(8, 1)-want) > 1e-9 {
		t.Fatalf("StretchBound(8,1) = %v, want %v", StretchBound(8, 1), want)
	}
	// Monotone: bigger t never worsens the guarantee.
	for k := 4; k <= 64; k *= 2 {
		prev := math.Inf(1)
		for tt := 1; tt < k; tt++ {
			b := StretchBound(k, tt)
			if b > prev+1e-9 {
				t.Fatalf("StretchBound(%d,%d)=%v above StretchBound(%d,%d)=%v", k, tt, b, k, tt-1, prev)
			}
			prev = b
		}
	}
}

func TestIterationBoundValues(t *testing.T) {
	if IterationBound(16, 15) != 15 {
		t.Fatalf("BS07 regime: %d", IterationBound(16, 15))
	}
	if IterationBound(16, 1) != 4 {
		t.Fatalf("t=1, k=16 should be log2 k = 4, got %d", IterationBound(16, 1))
	}
	if IterationBound(1, 1) != 0 {
		t.Fatal("k=1 needs no iterations")
	}
}

func TestPropertyValidSpanner(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.GNP(120, 0.07, graph.UniformWeight(1, 20), seed)
		k := 2 + int(seed%5)
		tt := 1 + int((seed>>8)%3)
		r, err := General(g, k, tt, Options{Seed: seed ^ 0xabc})
		if err != nil {
			return false
		}
		_, err = Verify(g, r, StretchBound(k, tt))
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBaswanaSen(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.GNM(100, 400, graph.UniformWeight(1, 9), seed)
		k := 2 + int(seed%4)
		r, err := BaswanaSen(g, k, Options{Seed: seed})
		if err != nil {
			return false
		}
		_, err = Verify(g, r, float64(2*k-1))
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneralBeatsBSOnIterations(t *testing.T) {
	// The paper's headline: poly(log k) iterations instead of Θ(k), at a
	// modest stretch cost. Check the iteration counts actually separate.
	g := graph.GNP(800, 0.03, graph.UnitWeight, 97)
	k := 16
	bs, _ := BaswanaSen(g, k, Options{Seed: 101})
	cm, _ := ClusterMerge(g, k, Options{Seed: 101})
	if cm.Stats.Iterations >= bs.Stats.Iterations {
		t.Fatalf("cluster-merge used %d iterations, BS07 %d — no speedup",
			cm.Stats.Iterations, bs.Stats.Iterations)
	}
}
