package spanner

import (
	"context"
	"math"

	"mpcspanner/internal/cluster"
	"mpcspanner/internal/core"
	"mpcspanner/internal/dist"
	"mpcspanner/internal/graph"
	"mpcspanner/internal/par"
	"mpcspanner/internal/xrand"
)

// UnweightedOptions configures the Appendix B algorithm.
type UnweightedOptions struct {
	// Seed drives all randomness (ball-independent shared coins).
	Seed uint64

	// Gamma is the per-machine memory exponent γ ∈ (0, 1): balls are capped
	// at n^{γ/2} vertices and the hitting set has expected size
	// Õ(n^{1−γ/4}). Zero means 1/2.
	Gamma float64

	// Workers sizes the worker pool (par conventions: 0 = GOMAXPROCS,
	// 1 = serial); the ball growing and the embedded [BS07] runs fan out
	// over it. Negative values are rejected.
	Workers int

	// Progress, when non-nil, receives one event per stage of the
	// construction ("balls", "sparse", "dense") plus the events of the
	// embedded [BS07] runs. Same contract as Options.Progress.
	Progress func(core.ProgressEvent)
}

// UnweightedStats reports the structural quantities of an Unweighted run.
type UnweightedStats struct {
	K, SparseCount, DenseCount int
	BallCap                    int     // n^{γ/2} vertex cap per ball
	HittingSetSize             int     // |Z| including fallback promotions
	AuxNodes, AuxEdges         int     // auxiliary graph on Z
	AuxSpannerEdges            int     // spanner edges of the auxiliary graph
	PathEdges                  int     // BFS-path edges dense vertices add
	BS07Edges                  int     // region-restricted Baswana–Sen edges
	Rounds                     int     // simulated MPC rounds (see RoundsUnweighted)
	StretchBound               float64 // O(k/γ) guarantee actually certified
}

// UnweightedResult is the output of the Appendix B construction.
type UnweightedResult struct {
	EdgeIDs []int
	Stats   UnweightedStats
}

// Size returns the number of spanner edges.
func (r *UnweightedResult) Size() int { return len(r.EdgeIDs) }

// Spanner materializes the spanner subgraph.
func (r *UnweightedResult) Spanner(g *graph.Graph) *graph.Graph { return g.Subgraph(r.EdgeIDs) }

// Unweighted builds an O(k/γ)-stretch spanner of an unweighted graph with
// O(k·n^{1+1/k}) + O(k·n) edges in O((1/γ)(log k + 1/γ)) simulated MPC
// rounds, following Appendix B (the Parter–Yogev adaptation):
//
//   - every vertex grows a BFS ball of up to 4k hops, truncated at n^{γ/2}
//     vertices; complete balls mark the vertex sparse, truncated ones dense;
//   - edges with a sparse endpoint are covered by locally simulating [BS07]
//     with shared randomness — realized here by one global [BS07] run
//     restricted to the 2k-hop region around sparse vertices, which is
//     exactly what the joint local simulations compute;
//   - dense-dense edges are covered by a random hitting set Z (expected size
//     Õ(n^{1−γ/4})): every dense vertex keeps its BFS path to the nearest
//     z ∈ Z (vertices whose ball Z misses are promoted into Z, preserving
//     correctness on the low-probability tail), and a (2⌈2/γ⌉−1)-spanner of
//     the auxiliary graph on Z — whose edges are realized by original
//     edges — covers inter-assignment pairs.
//
// Unlike the weighted algorithms, this one differs from the paper in one
// documented way: the paper recurses on the contracted dense subgraph O(1)
// times, while this implementation resolves all dense-dense edges with a
// single hitting-set level. The stretch and size guarantees are unchanged
// (DESIGN.md, substitutions table).
func Unweighted(g *graph.Graph, k int, opt UnweightedOptions) (*UnweightedResult, error) {
	return UnweightedCtx(context.Background(), g, k, opt)
}

// UnweightedCtx is Unweighted under a context: ctx is checkpointed between
// the construction's stages (ball growing, the sparse-side [BS07] run, each
// dense-side subphase) and inside the embedded engine runs, returning
// core.Canceled(ctx.Err()) at the first checkpoint after cancellation.
// Uncanceled runs are bit-identical to Unweighted.
func UnweightedCtx(ctx context.Context, g *graph.Graph, k int, opt UnweightedOptions) (*UnweightedResult, error) {
	if k < 1 {
		return nil, &core.OptionError{Field: "spanner: k", Value: k,
			Reason: "stretch parameter must be >= 1"}
	}
	if !g.IsUnit() {
		return nil, &core.OptionError{Field: "spanner: graph", Value: "weighted",
			Reason: "Unweighted requires an unweighted (unit-weight) graph"}
	}
	gamma := opt.Gamma
	if gamma == 0 {
		gamma = 0.5
	}
	if gamma <= 0 || gamma >= 1 {
		return nil, &core.OptionError{Field: "spanner: UnweightedOptions.Gamma", Value: gamma,
			Reason: "must lie in (0,1)"}
	}
	if err := par.CheckWorkers("spanner: UnweightedOptions.Workers", opt.Workers); err != nil {
		return nil, err
	}
	workers := par.Workers(opt.Workers)
	emit := func(stage string, edges int) {
		if opt.Progress != nil {
			opt.Progress(core.ProgressEvent{Stage: stage, Algorithm: "unweighted",
				Supernodes: g.N(), SpannerEdges: edges})
		}
	}

	n := g.N()
	st := UnweightedStats{K: k}
	inSpanner := make([]bool, g.M())
	var ids []int
	add := func(id int) {
		if !inSpanner[id] {
			inSpanner[id] = true
			ids = append(ids, id)
		}
	}

	// --- Ball growing: sparse/dense split. -------------------------------
	ballCap := int(math.Ceil(math.Pow(float64(n), gamma/2)))
	if ballCap < 2 {
		ballCap = 2
	}
	st.BallCap = ballCap
	// The per-vertex balls are independent (the paper grows them in parallel
	// via graph exponentiation); each vertex writes only its own slot.
	if err := core.Check(ctx); err != nil {
		return nil, err
	}
	sparse := make([]bool, n)
	par.For(workers, n, func(v int) {
		_, truncated := dist.BFSBall(g, v, 4*k, ballCap)
		sparse[v] = !truncated
	})
	for v := 0; v < n; v++ {
		if sparse[v] {
			st.SparseCount++
		} else {
			st.DenseCount++
		}
	}
	emit("balls", 0)

	// --- Sparse side: region-restricted global [BS07]. -------------------
	// The 2k-hop region around sparse vertices contains every vertex of the
	// [BS07] spanning path of any sparse-incident edge (cluster radii are at
	// most k, so paths stay within 2k hops of a sparse endpoint).
	region := make([]bool, n)
	var sparseSet []int
	for v := 0; v < n; v++ {
		if sparse[v] {
			sparseSet = append(sparseSet, v)
		}
	}
	if len(sparseSet) > 0 {
		if err := core.Check(ctx); err != nil {
			return nil, err
		}
		hop, _ := dist.MultiSourceDijkstra(g, sparseSet) // unit weights: hops
		for v := 0; v < n; v++ {
			if hop[v] <= float64(2*k) {
				region[v] = true
			}
		}
		bs, err := BaswanaSenCtx(ctx, g, k, Options{Seed: xrand.Split(opt.Seed, 0x627337).Uint64(), Workers: opt.Workers, Progress: opt.Progress}) // "bs7"
		if err != nil {
			return nil, err
		}
		for _, id := range bs.EdgeIDs {
			e := g.Edge(id)
			if region[e.U] && region[e.V] {
				add(id)
				st.BS07Edges++
			}
		}
	}
	emit("sparse", len(ids))

	// --- Dense side: hitting set + auxiliary-graph spanner. --------------
	if st.DenseCount > 0 {
		if err := core.Check(ctx); err != nil {
			return nil, err
		}
		pZ := 4 * math.Log(float64(n)+2) / math.Pow(float64(n), gamma/4)
		inZ := make([]bool, n)
		var zs []int
		for v := 0; v < n; v++ {
			if !sparse[v] {
				if xrand.CoinAt(pZ, opt.Seed, 0x7a736574, uint64(v)) { // "zset"
					inZ[v] = true
					zs = append(zs, v)
				}
			}
		}
		// Fallback promotions keep the construction correct on the tail
		// where Z misses a dense ball: any dense vertex farther than 4k
		// hops from Z joins Z itself.
		for pass := 0; pass < 2; pass++ {
			hop, _ := dist.MultiSourceDijkstra(g, zs)
			promoted := false
			for v := 0; v < n; v++ {
				if !sparse[v] && !inZ[v] && hop[v] > float64(4*k) {
					inZ[v] = true
					zs = append(zs, v)
					promoted = true
				}
			}
			if !promoted {
				break
			}
		}
		st.HittingSetSize = len(zs)

		// Assignment: nearest z and the BFS path to it.
		_, nearest := dist.MultiSourceDijkstra(g, zs)
		parents := multiSourceParents(g, zs)
		assigned := make([]int, n)
		for v := range assigned {
			assigned[v] = -1
		}
		for v := 0; v < n; v++ {
			if sparse[v] || nearest[v] < 0 {
				continue
			}
			assigned[v] = zs[nearest[v]]
			for x := v; parents[x].edge >= 0; x = parents[x].to {
				if !inSpanner[parents[x].edge] {
					st.PathEdges++
				}
				add(parents[x].edge)
			}
		}

		// Auxiliary graph on Z: one node per hitting-set vertex, an edge per
		// assignment-crossing original dense-dense edge (min-id realizer).
		zIndex := make(map[int]int, len(zs))
		for i, z := range zs {
			zIndex[z] = i
		}
		var aux []cluster.QEdge
		for id, e := range g.Edges() {
			if sparse[e.U] || sparse[e.V] {
				continue
			}
			za, zb := assigned[e.U], assigned[e.V]
			if za < 0 || zb < 0 || za == zb {
				continue
			}
			aux = append(aux, cluster.QEdge{A: zIndex[za], B: zIndex[zb], W: 1, Orig: id})
		}
		aux = cluster.MinDedup(aux)
		st.AuxNodes, st.AuxEdges = len(zs), len(aux)

		if len(aux) > 0 {
			auxEdges := make([]graph.Edge, len(aux))
			for i, q := range aux {
				auxEdges[i] = graph.Edge{U: q.A, V: q.B, W: 1}
			}
			auxG := graph.MustNew(len(zs), auxEdges)
			kAux := int(math.Ceil(2 / gamma))
			auxR, err := BaswanaSenCtx(ctx, auxG, kAux, Options{Seed: xrand.Split(opt.Seed, 0x617578).Uint64(), Workers: opt.Workers, Progress: opt.Progress}) // "aux"
			if err != nil {
				return nil, err
			}
			for _, ai := range auxR.EdgeIDs {
				add(aux[ai].Orig)
				st.AuxSpannerEdges++
			}
			// Certified stretch for dense-dense edges:
			// 4k (to Z) + (2k'−1)·(8k+1) (aux path realized) + 4k (back).
			st.StretchBound = float64(8*k) + float64(2*kAux-1)*float64(8*k+1)
		}
	}
	if st.DenseCount > 0 {
		// Even with an empty auxiliary graph, same-assignment dense-dense
		// edges route through their hitting-set vertex: up to 8k hops.
		if pathBound := float64(8 * k); pathBound > st.StretchBound {
			st.StretchBound = pathBound
		}
	}
	if bsBound := float64(2*k - 1); bsBound > st.StretchBound {
		st.StretchBound = bsBound
	}
	emit("dense", len(ids))
	st.Rounds = RoundsUnweighted(k, gamma)
	return &UnweightedResult{EdgeIDs: sortedUnique(ids), Stats: st}, nil
}

// RoundsUnweighted returns the simulated MPC round count of the Appendix B
// algorithm with memory exponent γ: O(log k) graph-exponentiation doublings
// for ball collection plus ⌈2/γ⌉ locally-simulated [BS07] iterations on the
// auxiliary graph, each costing O(1/γ) rounds of sorting/aggregation
// (Theorem 1.3's O((1/γ)·log k) with the additive auxiliary term).
func RoundsUnweighted(k int, gamma float64) int {
	perPrimitive := int(math.Ceil(1 / gamma))
	doublings := int(math.Ceil(math.Log2(float64(4*k)))) + 1
	aux := int(math.Ceil(2 / gamma))
	return perPrimitive * (doublings + aux)
}

type parentArc struct {
	to   int
	edge int
}

// multiSourceParents returns, for every vertex, the parent arc of a
// multi-source BFS forest rooted at srcs (edge = -1 at roots/unreachable).
func multiSourceParents(g *graph.Graph, srcs []int) []parentArc {
	par := make([]parentArc, g.N())
	seen := make([]bool, g.N())
	for i := range par {
		par[i] = parentArc{to: -1, edge: -1}
	}
	queue := make([]int, 0, len(srcs))
	for _, s := range srcs {
		if !seen[s] {
			seen[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, a := range g.Adj(v) {
			if !seen[a.To] {
				seen[a.To] = true
				par[a.To] = parentArc{to: v, edge: a.Edge}
				queue = append(queue, a.To)
			}
		}
	}
	return par
}
