package spanner

import (
	"testing"
	"testing/quick"

	"mpcspanner/internal/dist"
	"mpcspanner/internal/graph"
)

func verifyUnweighted(t *testing.T, g *graph.Graph, r *UnweightedResult) dist.StretchReport {
	t.Helper()
	h := r.Spanner(g)
	if _, gc := g.Components(); true {
		_, hc := h.Components()
		if gc != hc {
			t.Fatalf("component count changed %d -> %d", gc, hc)
		}
	}
	rep, err := dist.EdgeStretch(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Max > r.Stats.StretchBound+1e-9 {
		t.Fatalf("measured stretch %.2f exceeds certified bound %.2f", rep.Max, r.Stats.StretchBound)
	}
	return rep
}

func TestUnweightedValid(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"gnp-dense":  graph.GNP(300, 0.08, graph.UnitWeight, 1), // mostly dense vertices
		"gnp-sparse": graph.GNP(300, 0.01, graph.UnitWeight, 2), // mostly sparse vertices
		"grid":       graph.Grid(17, 17, graph.UnitWeight, 3),
		"pa":         graph.PreferentialAttachment(300, 3, graph.UnitWeight, 4),
		"cycle":      graph.Cycle(150, graph.UnitWeight, 5),
		"complete":   graph.Complete(50, graph.UnitWeight, 6),
	}
	for name, g := range graphs {
		for _, k := range []int{2, 3} {
			r, err := Unweighted(g, k, UnweightedOptions{Seed: 7})
			if err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			rep := verifyUnweighted(t, g, r)
			t.Logf("%s k=%d: size=%d sparse=%d dense=%d |Z|=%d stretch max=%.2f",
				name, k, r.Size(), r.Stats.SparseCount, r.Stats.DenseCount,
				r.Stats.HittingSetSize, rep.Max)
		}
	}
}

func TestUnweightedSparseOnlyMatchesBS(t *testing.T) {
	// A graph where every vertex is sparse: on a cycle with k=2 the 4k-hop
	// ball has 17 vertices, below the cap n^{γ/2} = 1000^{0.475} ≈ 27. The
	// whole of BS07's output then lies in the sparse region, so the stretch
	// must meet the [BS07] bound 2k-1.
	g := graph.Cycle(1000, graph.UnitWeight, 11)
	r, err := Unweighted(g, 2, UnweightedOptions{Seed: 13, Gamma: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.DenseCount != 0 {
		t.Fatalf("cycle should have no dense vertices, got %d", r.Stats.DenseCount)
	}
	h := r.Spanner(g)
	rep, err := dist.EdgeStretch(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Max > float64(2*2-1) {
		t.Fatalf("sparse-only stretch %.2f exceeds 2k-1", rep.Max)
	}
}

func TestUnweightedDenseCore(t *testing.T) {
	// A clique forces dense vertices (balls truncate immediately).
	g := graph.Complete(120, graph.UnitWeight, 17)
	r, err := Unweighted(g, 2, UnweightedOptions{Seed: 19, Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.DenseCount == 0 {
		t.Fatal("clique should produce dense vertices")
	}
	if r.Stats.HittingSetSize == 0 {
		t.Fatal("dense graph needs a hitting set")
	}
	verifyUnweighted(t, g, r)
	// Size sanity: far below the clique's edge count.
	if r.Size() >= g.M()/2 {
		t.Fatalf("spanner size %d not sparse vs m=%d", r.Size(), g.M())
	}
}

func TestUnweightedRejectsWeighted(t *testing.T) {
	g := graph.GNP(50, 0.1, graph.UniformWeight(1, 5), 23)
	if _, err := Unweighted(g, 2, UnweightedOptions{}); err == nil {
		t.Fatal("weighted graph accepted")
	}
}

func TestUnweightedValidatesParams(t *testing.T) {
	g := graph.Cycle(10, graph.UnitWeight, 1)
	if _, err := Unweighted(g, 0, UnweightedOptions{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Unweighted(g, 2, UnweightedOptions{Gamma: 1.5}); err == nil {
		t.Fatal("gamma=1.5 accepted")
	}
	if _, err := Unweighted(g, 2, UnweightedOptions{Gamma: -0.1}); err == nil {
		t.Fatal("negative gamma accepted")
	}
}

func TestUnweightedDeterministic(t *testing.T) {
	g := graph.GNP(200, 0.06, graph.UnitWeight, 29)
	a, err := Unweighted(g, 3, UnweightedOptions{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Unweighted(g, 3, UnweightedOptions{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.EdgeIDs) != len(b.EdgeIDs) {
		t.Fatalf("sizes differ: %d vs %d", len(a.EdgeIDs), len(b.EdgeIDs))
	}
	for i := range a.EdgeIDs {
		if a.EdgeIDs[i] != b.EdgeIDs[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestUnweightedGammaTradeoff(t *testing.T) {
	// Smaller gamma -> smaller ball cap -> more sparse... no: smaller cap
	// means balls truncate earlier, so MORE dense vertices. Check direction.
	g := graph.GNP(400, 0.05, graph.UnitWeight, 37)
	lo, err := Unweighted(g, 2, UnweightedOptions{Seed: 41, Gamma: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Unweighted(g, 2, UnweightedOptions{Seed: 41, Gamma: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if lo.Stats.BallCap >= hi.Stats.BallCap {
		t.Fatalf("ball caps not increasing in gamma: %d vs %d", lo.Stats.BallCap, hi.Stats.BallCap)
	}
	if lo.Stats.DenseCount < hi.Stats.DenseCount {
		t.Fatalf("smaller gamma should not reduce dense count: %d vs %d",
			lo.Stats.DenseCount, hi.Stats.DenseCount)
	}
	verifyUnweighted(t, g, lo)
	verifyUnweighted(t, g, hi)
}

func TestRoundsUnweightedFormula(t *testing.T) {
	// Rounds grow logarithmically in k and inversely with gamma.
	if RoundsUnweighted(16, 0.5) <= 0 {
		t.Fatal("rounds must be positive")
	}
	if RoundsUnweighted(1024, 0.5) >= 4*RoundsUnweighted(4, 0.5) {
		t.Fatalf("rounds should grow ~log k: k=4 -> %d, k=1024 -> %d",
			RoundsUnweighted(4, 0.5), RoundsUnweighted(1024, 0.5))
	}
	if RoundsUnweighted(8, 0.25) <= RoundsUnweighted(8, 0.5) {
		t.Fatal("smaller gamma must cost more rounds")
	}
}

func TestUnweightedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.GNM(120, 500, graph.UnitWeight, seed)
		r, err := Unweighted(g, 2, UnweightedOptions{Seed: seed})
		if err != nil {
			return false
		}
		h := r.Spanner(g)
		rep, err := dist.EdgeStretch(g, h)
		if err != nil {
			return false
		}
		return rep.Max <= r.Stats.StretchBound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestUnweightedEmptyGraph(t *testing.T) {
	g := graph.MustNew(0, nil)
	r, err := Unweighted(g, 2, UnweightedOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 0 {
		t.Fatalf("empty graph spanner size %d", r.Size())
	}
}
