package spanner

import (
	"fmt"

	"mpcspanner/internal/dist"
	"mpcspanner/internal/graph"
)

// Verify checks that a Result is a valid spanner of g with multiplicative
// stretch at most maxStretch:
//
//  1. every edge id is a valid, unique index into g's edges (subgraph-ness);
//  2. the spanner preserves g's connectivity structure (every finite
//     distance stays finite); and
//  3. every edge of g is stretched at most maxStretch in the spanner — the
//     edge condition is equivalent to the all-pairs condition.
//
// It returns the measured stretch report on success.
func Verify(g *graph.Graph, r *Result, maxStretch float64) (dist.StretchReport, error) {
	seen := make(map[int]bool, len(r.EdgeIDs))
	for _, id := range r.EdgeIDs {
		if id < 0 || id >= g.M() {
			return dist.StretchReport{}, fmt.Errorf("spanner: edge id %d out of range [0,%d)", id, g.M())
		}
		if seen[id] {
			return dist.StretchReport{}, fmt.Errorf("spanner: duplicate edge id %d", id)
		}
		seen[id] = true
	}
	h := r.Spanner(g)

	gl, gc := g.Components()
	hl, hc := h.Components()
	if gc != hc {
		return dist.StretchReport{}, fmt.Errorf("spanner: component count changed %d -> %d", gc, hc)
	}
	// Same partition: vertices sharing a g-component must share an
	// h-component (h ⊆ g gives the other direction for free).
	repr := make(map[int]int, gc)
	for v := 0; v < g.N(); v++ {
		if first, ok := repr[gl[v]]; !ok {
			repr[gl[v]] = hl[v]
		} else if first != hl[v] {
			return dist.StretchReport{}, fmt.Errorf("spanner: vertex %d disconnected from its component", v)
		}
	}

	rep, err := dist.EdgeStretch(g, h)
	if err != nil {
		return dist.StretchReport{}, err
	}
	if rep.Max > maxStretch+1e-9 {
		return rep, fmt.Errorf("spanner: measured stretch %.4f exceeds bound %.4f", rep.Max, maxStretch)
	}
	return rep, nil
}
