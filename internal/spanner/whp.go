package spanner

import (
	"context"
	"math"

	"mpcspanner/internal/cluster"
	"mpcspanner/internal/core"
	"mpcspanner/internal/graph"
	"mpcspanner/internal/par"
	"mpcspanner/internal/xrand"
)

// CoinDomainWHP tags the per-run sampling coins of the Theorem 8.1
// parallel-repetition mechanism (keyed additionally by the run index).
const CoinDomainWHP = 0x77687 // "wh"

// IterationChoice records which of the parallel runs an iteration committed.
type IterationChoice struct {
	Epoch, Iter int
	Rep         int  // chosen run index
	Good        bool // chosen via the two-event criterion (vs. fallback)

	Active   int // live clusters before the iteration
	Sampled  int // clusters the chosen run sampled
	NewEdges int // spanner edges the chosen run added
}

// WHPStats reports the Theorem 8.1 selection behaviour.
type WHPStats struct {
	Runs      int // parallel runs simulated per iteration
	GoodCount int // iterations settled by the two-event criterion
	Choices   []IterationChoice
}

// whpConfig holds the two-event criterion constants:
//
//	event 1 (Chernoff): sampled ≤ max(C1·|C|·p, C1·ln n)
//	event 2 (Markov):   new spanner edges ≤ C2·|C|/p
//
// Each run is good with constant probability, so among Θ(log n) runs a good
// one exists w.h.p.; a bad iteration falls back to the fewest-edges run.
type whpConfig struct {
	runs   int
	c1, c2 float64
}

// GeneralWHP runs the general algorithm with the Congested Clique
// high-probability mechanism of Theorem 8.1: every grow iteration simulates
// `runs` independent sampling processes (runs ≤ the word size O(log n), so
// their outcomes travel in a single broadcast word), commits the first run
// satisfying the two-event criterion, and thereby guarantees the
// O(n^{1+1/k}(t+log k)) size bound with high probability rather than in
// expectation. runs ≤ 0 selects ⌈log₂ n⌉ + 1.
func GeneralWHP(g *graph.Graph, k, t, runs int, opt Options) (*Result, *WHPStats, error) {
	return GeneralWHPCtx(context.Background(), g, k, t, runs, opt)
}

// GeneralWHPCtx is GeneralWHP under a context: ctx is checkpointed once per
// grow iteration (before the parallel sampling runs are planned) and the
// function returns core.Canceled(ctx.Err()) at the first checkpoint after
// cancellation. Uncanceled runs are bit-identical to GeneralWHP.
func GeneralWHPCtx(ctx context.Context, g *graph.Graph, k, t, runs int, opt Options) (*Result, *WHPStats, error) {
	if err := validateKT(k, t); err != nil {
		return nil, nil, err
	}
	if err := opt.validate(); err != nil {
		return nil, nil, err
	}
	if runs <= 0 {
		runs = int(math.Ceil(math.Log2(float64(g.N()+2)))) + 1
	}
	return runEngineWHP(ctx, g, k, t, opt.Seed, whpConfig{runs: runs, c1: 4, c2: 4},
		engineConfig{measureRadius: opt.MeasureRadius, workers: opt.Workers, progress: opt.Progress})
}

// runEngineWHP is runEngine with the per-iteration spliced selection.
func runEngineWHP(ctx context.Context, g *graph.Graph, k, t int, seed uint64, wc whpConfig, cfg engineConfig) (*Result, *WHPStats, error) {
	e := newEngine(g, k, t, seed, cfg)
	e.stats.Algorithm = "general-whp"
	whp := &WHPStats{Runs: wc.runs}

	n := float64(g.N())
	if n >= 2 {
		lnN := math.Log(n)
		schedule := Schedule(k, t)
		for _, spec := range schedule {
			if err := core.Check(ctx); err != nil {
				return nil, nil, err
			}
			if e.nAlive == 0 {
				break
			}
			p := math.Pow(n, -spec.Exponent)
			active := float64(len(e.active))

			var chosen *iterPlan
			choice := IterationChoice{Epoch: spec.Epoch, Iter: spec.Iter, Active: len(e.active)}
			for rep := 0; rep < wc.runs; rep++ {
				coin := func(center int32) bool {
					return xrand.CoinAt(p, seed, CoinDomainWHP, uint64(rep),
						uint64(spec.Epoch), uint64(spec.Iter), uint64(center))
				}
				plan := e.planIteration(coin)
				okSample := float64(len(plan.sampled)) <= math.Max(wc.c1*active*p, wc.c1*lnN)
				okEdges := float64(plan.newEdges) <= wc.c2*active/p
				if okSample && okEdges {
					chosen, choice.Rep, choice.Good = plan, rep, true
					break
				}
				if chosen == nil || plan.newEdges < chosen.newEdges {
					chosen, choice.Rep = plan, rep
				}
			}
			choice.Sampled = len(chosen.sampled)
			choice.NewEdges = chosen.newEdges
			if choice.Good {
				whp.GoodCount++
			}
			whp.Choices = append(whp.Choices, choice)

			e.applyIteration(chosen)
			e.stats.Iterations++
			e.emit("grow", spec.Epoch, len(schedule))
			if spec.LastOfEpoch && !cfg.classicBS {
				e.contract()
				e.stats.Epochs++
				e.emit("contract", spec.Epoch, len(schedule))
			}
		}
	}
	if err := core.Check(ctx); err != nil {
		return nil, nil, err
	}
	e.phase2()
	e.emit("phase2", 0, 0)

	ids := sortedUnique(e.spanIDs)
	e.stats.Phase2Edges = len(ids) - e.stats.Phase1Edges
	if cfg.measureRadius {
		e.stats.Radius = e.measureRadius()
	}
	return &Result{EdgeIDs: ids, Stats: e.stats}, whp, nil
}

// SizeBoundWHP returns the explicit high-probability size budget certified
// by the two-event criterion: summing C2·|C_j|/p_j over the schedule is
// O(n^{1+1/k}·(t+log k)); we report the closed-form envelope
// C2·(iterations+1)·n^{1+1/k} plus the Phase 2 remainder n^{2/k}·(guarded).
func SizeBoundWHP(n, k, t int) float64 {
	if n < 2 {
		return 1
	}
	iters := len(Schedule(k, t))
	return 4*float64(iters+1)*math.Pow(float64(n), 1+1/float64(k)) +
		math.Pow(float64(n), 2/float64(k))
}

// newEngine constructs the engine state shared by runEngine and
// runEngineWHP.
func newEngine(g *graph.Graph, k, t int, seed uint64, cfg engineConfig) *engine {
	n := g.N()
	e := &engine{
		g: g, k: k, t: t, seed: seed, cfg: cfg,
		workers:      par.Workers(cfg.workers),
		nSuper:       n,
		edges:        cluster.FromGraph(g),
		part:         cluster.NewPartition(n),
		centerVertex: make([]int32, n),
		clusterOf:    make([]int32, n),
		inSpanner:    make([]bool, g.M()),
		treeUF:       graph.NewUnionFind(n),
		compCenter:   make([]int32, n),
	}
	for v := 0; v < n; v++ {
		e.centerVertex[v] = int32(v)
		e.clusterOf[v] = int32(v)
		e.compCenter[v] = int32(v)
	}
	e.alive = make([]bool, len(e.edges))
	for i := range e.alive {
		e.alive[i] = true
	}
	e.nAlive = len(e.edges)
	if !cfg.classicBS {
		// The classic [BS07] variant never contracts, so it would pay the
		// weight-rank precompute without ever running a keyed dedup.
		e.initDedupKey()
	}
	e.resetEpochScratch()
	e.rebuildIncidence()
	e.resetActive()
	e.initObs()
	e.stats = Stats{K: k, T: t}
	return e
}
