package spanner

import (
	"testing"

	"mpcspanner/internal/graph"
)

func TestGeneralWHPValidSpanner(t *testing.T) {
	g := graph.GNP(400, 0.05, graph.UniformWeight(1, 30), 1)
	res, whp, err := GeneralWHP(g, 8, 2, 0, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(g, res, StretchBound(8, 2)); err != nil {
		t.Fatal(err)
	}
	if whp.Runs < 2 {
		t.Fatalf("default runs %d too small", whp.Runs)
	}
	if len(whp.Choices) != res.Stats.Iterations {
		t.Fatalf("%d choices for %d iterations", len(whp.Choices), res.Stats.Iterations)
	}
	if float64(res.Size()) > SizeBoundWHP(g.N(), 8, 2) {
		t.Fatalf("size %d exceeds whp budget %.0f", res.Size(), SizeBoundWHP(g.N(), 8, 2))
	}
}

func TestGeneralWHPMostIterationsGood(t *testing.T) {
	// On benign random inputs the two-event criterion should settle almost
	// every iteration without the fallback.
	g := graph.GNP(600, 0.04, graph.UnitWeight, 5)
	_, whp, err := GeneralWHP(g, 16, 2, 0, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if whp.GoodCount < len(whp.Choices)-1 {
		t.Fatalf("only %d/%d iterations good", whp.GoodCount, len(whp.Choices))
	}
	for _, ch := range whp.Choices {
		if ch.Active <= 0 {
			t.Fatalf("iteration recorded without live clusters: %+v", ch)
		}
		if ch.Sampled > ch.Active {
			t.Fatalf("sampled more clusters than exist: %+v", ch)
		}
	}
}

func TestGeneralWHPDeterministic(t *testing.T) {
	g := graph.GNP(300, 0.05, graph.UniformWeight(1, 5), 9)
	a, _, err := GeneralWHP(g, 8, 2, 6, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := GeneralWHP(g, 8, 2, 6, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.EdgeIDs) != len(b.EdgeIDs) {
		t.Fatal("whp run not deterministic")
	}
	for i := range a.EdgeIDs {
		if a.EdgeIDs[i] != b.EdgeIDs[i] {
			t.Fatal("whp run not deterministic")
		}
	}
}

func TestGeneralWHPSingleRunFallback(t *testing.T) {
	// runs=1 degenerates to "commit whatever the single run did" — still a
	// valid spanner, possibly flagged not-good.
	g := graph.GNP(200, 0.06, graph.UnitWeight, 13)
	res, whp, err := GeneralWHP(g, 4, 1, 1, Options{Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if whp.Runs != 1 {
		t.Fatalf("runs = %d", whp.Runs)
	}
	if _, err := Verify(g, res, StretchBound(4, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestGeneralWHPValidates(t *testing.T) {
	g := graph.Path(4, graph.UnitWeight, 1)
	if _, _, err := GeneralWHP(g, 0, 1, 4, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, _, err := GeneralWHP(g, 2, 0, 4, Options{}); err == nil {
		t.Fatal("t=0 accepted")
	}
}

func TestGeneralWHPEmptyGraph(t *testing.T) {
	g := graph.MustNew(5, nil)
	res, whp, err := GeneralWHP(g, 4, 2, 0, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 0 || len(whp.Choices) != 0 {
		t.Fatal("edgeless graph should do nothing")
	}
}
