// Package xrand provides deterministic, splittable pseudo-randomness.
//
// Every algorithm in this repository takes an explicit 64-bit seed and derives
// all of its random choices through splittable streams keyed by structured
// tuples such as (seed, epoch, iteration, clusterID). Two executions of the
// same algorithm — e.g. the sequential reference implementation in
// internal/spanner and the simulated distributed execution in internal/mpc —
// therefore draw identical coins for identical logical events and produce
// bit-identical outputs, which the test suite relies on.
//
// The generator is splitmix64 (Steele, Lea, Flood 2014), which passes BigCrush
// and has a trivially splittable structure: hashing the key tuple into the
// state yields independent streams for distinct tuples.
package xrand

import "math"

// golden is the splitmix64 increment, 2^64 / phi rounded to odd.
const golden = 0x9e3779b97f4a7c15

// mix is the splitmix64 finalizer: a bijective avalanche function on 64 bits.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a deterministic random stream. The zero value is a valid stream
// seeded with 0; prefer New or Split to construct sources.
type Source struct {
	state uint64
}

// New returns a stream derived from seed alone.
func New(seed uint64) *Source {
	return &Source{state: mix(seed + golden)}
}

// Split derives an independent stream keyed by (seed, keys...). Distinct key
// tuples yield statistically independent streams; the same tuple always
// yields the same stream. This is the primitive that lets per-entity coins be
// re-drawn identically on different execution planes.
func Split(seed uint64, keys ...uint64) *Source {
	s := mix(seed + golden)
	for _, k := range keys {
		s = mix(s ^ mix(k+golden))
	}
	return &Source{state: s}
}

// Uint64 returns the next 64 uniformly random bits.
func (s *Source) Uint64() uint64 {
	s.state += golden
	return mix(s.state)
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63 returns a uniform non-negative int64.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Bool returns true with probability 1/2.
func (s *Source) Bool() bool {
	return s.Uint64()&1 == 1
}

// Coin returns true with probability p. Values of p outside [0, 1] are
// clamped: p <= 0 never fires, p >= 1 always fires.
func (s *Source) Coin(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Perm returns a uniform random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1,
// via inverse transform sampling. Used by weight generators.
func (s *Source) ExpFloat64() float64 {
	u := s.Float64()
	// Guard the log argument away from zero.
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1 - u)
}

// CoinAt is the cross-plane sampling primitive: it reports whether the coin
// for logical event (seed, keys...) with success probability p fires. The
// outcome is a pure function of its arguments, so any execution plane can
// evaluate the same event and observe the same outcome without communication.
func CoinAt(p float64, seed uint64, keys ...uint64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return Split(seed, keys...).Float64() < p
}
