// Package xrand provides deterministic, splittable pseudo-randomness.
//
// Every algorithm in this repository takes an explicit 64-bit seed and derives
// all of its random choices through splittable streams keyed by structured
// tuples such as (seed, epoch, iteration, clusterID). Two executions of the
// same algorithm — e.g. the sequential reference implementation in
// internal/spanner and the simulated distributed execution in internal/mpc —
// therefore draw identical coins for identical logical events and produce
// bit-identical outputs. That shared-randomness property is what the paper's
// §6 simulation and the Appendix B local [BS07] simulations assume, and the
// cross-plane equality checks of the test suite rely on it.
//
// The generator is splitmix64 (Steele, Lea, Flood 2014), which passes BigCrush
// and has a trivially splittable structure: hashing the key tuple into the
// state yields independent streams for distinct tuples.
package xrand

import (
	"math"
	"sort"
)

// golden is the splitmix64 increment, 2^64 / phi rounded to odd.
const golden = 0x9e3779b97f4a7c15

// mix is the splitmix64 finalizer: a bijective avalanche function on 64 bits.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a deterministic random stream. The zero value is a valid stream
// seeded with 0; prefer New or Split to construct sources.
type Source struct {
	state uint64
}

// New returns a stream derived from seed alone.
func New(seed uint64) *Source {
	return &Source{state: mix(seed + golden)}
}

// Split derives an independent stream keyed by (seed, keys...). Distinct key
// tuples yield statistically independent streams; the same tuple always
// yields the same stream. This is the primitive that lets per-entity coins be
// re-drawn identically on different execution planes.
func Split(seed uint64, keys ...uint64) *Source {
	s := mix(seed + golden)
	for _, k := range keys {
		s = mix(s ^ mix(k+golden))
	}
	return &Source{state: s}
}

// Uint64 returns the next 64 uniformly random bits.
func (s *Source) Uint64() uint64 {
	s.state += golden
	return mix(s.state)
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63 returns a uniform non-negative int64.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Bool returns true with probability 1/2.
func (s *Source) Bool() bool {
	return s.Uint64()&1 == 1
}

// Coin returns true with probability p. Values of p outside [0, 1] are
// clamped: p <= 0 never fires, p >= 1 always fires.
func (s *Source) Coin(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Perm returns a uniform random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1,
// via inverse transform sampling. Used by weight generators.
func (s *Source) ExpFloat64() float64 {
	u := s.Float64()
	// Guard the log argument away from zero.
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1 - u)
}

// Zipf draws from the Zipf distribution over [0, n): P(i) ∝ 1/(i+1)^s.
// It models the skewed (hot-source) query workloads the distance-oracle
// benchmarks serve, via inverse-CDF sampling over a precomputed table.
// Construction is O(n); each draw is O(log n). Deterministic given src.
type Zipf struct {
	src *Source
	cdf []float64 // cdf[i] = P(X <= i), cdf[n-1] = 1
}

// NewZipf returns a Zipf sampler over [0, n) with exponent s > 0 drawing
// its randomness from src. It panics if n <= 0 or s <= 0.
func NewZipf(src *Source, n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	if s <= 0 {
		panic("xrand: NewZipf with non-positive exponent")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1
	return &Zipf{src: src, cdf: cdf}
}

// Next returns the next Zipf-distributed value in [0, n).
func (z *Zipf) Next() int {
	u := z.src.Float64()
	// The first index with cdf[i] >= u is the bucket whose CDF interval
	// [cdf[i-1], cdf[i]) contains u; u < 1 = cdf[n-1] keeps it in range.
	return sort.SearchFloat64s(z.cdf, u)
}

// CoinAt is the cross-plane sampling primitive: it reports whether the coin
// for logical event (seed, keys...) with success probability p fires. The
// outcome is a pure function of its arguments, so any execution plane can
// evaluate the same event and observe the same outcome without communication.
//
// The evaluation inlines the first draw of the stream Split(seed, keys...)
// would yield — bit-identical to Split(seed, keys...).Float64() < p — but
// without materializing a Source, because CoinAt sits on the per-tuple hot
// paths of the construction pipeline (the MPC driver evaluates one coin per
// tuple endpoint per iteration) and a heap allocation per coin was the
// pipeline's single largest allocation source.
func CoinAt(p float64, seed uint64, keys ...uint64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	s := mix(seed + golden)
	for _, k := range keys {
		s = mix(s ^ mix(k+golden))
	}
	s += golden // first Uint64 draw of the derived stream
	return float64(mix(s)>>11)/(1<<53) < p
}
