package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestNewDistinctSeeds(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams for distinct seeds collided %d/64 times", same)
	}
}

func TestSplitKeyed(t *testing.T) {
	a := Split(7, 1, 2, 3)
	b := Split(7, 1, 2, 3)
	if a.Uint64() != b.Uint64() {
		t.Fatal("identical key tuples must yield identical streams")
	}
	c := Split(7, 1, 2, 4)
	d := Split(7, 1, 2, 3)
	if c.Uint64() == d.Uint64() {
		t.Fatal("distinct key tuples should (overwhelmingly) differ")
	}
}

func TestSplitKeyOrderMatters(t *testing.T) {
	if Split(9, 1, 2).Uint64() == Split(9, 2, 1).Uint64() {
		t.Fatal("key order should change the stream")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(5)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean %v too far from 0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(11)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		counts[s.Intn(7)]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn(7) value %d count %d outside plausible band", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestCoinExtremes(t *testing.T) {
	s := New(13)
	for i := 0; i < 100; i++ {
		if s.Coin(0) {
			t.Fatal("Coin(0) fired")
		}
		if !s.Coin(1) {
			t.Fatal("Coin(1) failed to fire")
		}
		if s.Coin(-0.5) {
			t.Fatal("Coin(-0.5) fired")
		}
		if !s.Coin(1.5) {
			t.Fatal("Coin(1.5) failed to fire")
		}
	}
}

func TestCoinRate(t *testing.T) {
	s := New(17)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Coin(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Coin(0.3) empirical rate %v", rate)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(19)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid entry %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestExpFloat64Positive(t *testing.T) {
	s := New(23)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		e := s.ExpFloat64()
		if e < 0 || math.IsInf(e, 0) || math.IsNaN(e) {
			t.Fatalf("bad exponential draw %v", e)
		}
		sum += e
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v too far from 1", mean)
	}
}

func TestCoinAtPureFunction(t *testing.T) {
	// CoinAt must be referentially transparent: same args, same outcome,
	// regardless of call ordering or interleaving.
	first := make([]bool, 1000)
	for i := range first {
		first[i] = CoinAt(0.5, 99, uint64(i), 7)
	}
	for i := len(first) - 1; i >= 0; i-- {
		if CoinAt(0.5, 99, uint64(i), 7) != first[i] {
			t.Fatalf("CoinAt not deterministic at key %d", i)
		}
	}
}

func TestCoinAtRate(t *testing.T) {
	hits := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if CoinAt(0.2, 1234, uint64(i)) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.2) > 0.01 {
		t.Fatalf("CoinAt(0.2) empirical rate %v", rate)
	}
}

func TestBoolBalance(t *testing.T) {
	s := New(29)
	trues := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool() {
			trues++
		}
	}
	if trues < 49000 || trues > 51000 {
		t.Fatalf("Bool imbalance: %d/%d", trues, n)
	}
}

func TestMixBijectiveSample(t *testing.T) {
	// mix is a bijection on 64 bits; sample-check injectivity on a range.
	seen := make(map[uint64]uint64, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		h := mix(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("mix collision: mix(%d) == mix(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestZipfRangeAndDeterminism(t *testing.T) {
	a := NewZipf(New(31), 100, 1.1)
	b := NewZipf(New(31), 100, 1.1)
	for i := 0; i < 5000; i++ {
		av, bv := a.Next(), b.Next()
		if av != bv {
			t.Fatalf("draw %d: %d != %d under equal seeds", i, av, bv)
		}
		if av < 0 || av >= 100 {
			t.Fatalf("Zipf draw %d out of [0,100)", av)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// With exponent 1 over [0,100), P(0) = 1/H_100 ≈ 0.193: the head must
	// dominate and the ranks must be (statistically) ordered.
	z := NewZipf(New(37), 100, 1)
	const n = 100000
	counts := make([]int, 100)
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	p0 := float64(counts[0]) / n
	if math.Abs(p0-0.193) > 0.01 {
		t.Fatalf("P(0) = %v, want ≈ 0.193", p0)
	}
	if counts[0] <= counts[1] || counts[1] <= counts[10] || counts[10] <= counts[90] {
		t.Fatalf("Zipf counts not decreasing: head %d, %d, mid %d, tail %d",
			counts[0], counts[1], counts[10], counts[90])
	}
}

func TestZipfPanics(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{0, 1}, {10, 0}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewZipf(%d, %v) should panic", tc.n, tc.s)
				}
			}()
			NewZipf(New(1), tc.n, tc.s)
		}()
	}
}

func TestQuickSplitDeterminism(t *testing.T) {
	f := func(seed, a, b uint64) bool {
		x := Split(seed, a, b).Uint64()
		y := Split(seed, a, b).Uint64()
		return x == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFloat64Bounds(t *testing.T) {
	f := func(seed uint64) bool {
		v := New(seed).Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
