// Package mpcspanner is the public facade of this repository: a Go
// implementation of "Massively Parallel Algorithms for Distance
// Approximation and Spanners" (Biswas, Dory, Ghaffari, Mitrović, Nazari —
// SPAA 2021).
//
// The v1 surface is two nouns and one verb set. Build constructs a spanner
// with any of the paper's algorithm families under a context, with
// functional options, progress reporting, and typed errors:
//
//	g := mpcspanner.GNP(10_000, 0.001, mpcspanner.UniformWeight(1, 100), 42)
//	res, err := mpcspanner.Build(ctx, g, mpcspanner.WithK(8), mpcspanner.WithSeed(1))
//	// res.EdgeIDs is the spanner; res.Stats carries iterations/size/radius.
//
// Serve wraps the §7 distance-approximation pipeline (or any frozen graph)
// in a cached, concurrency-safe serving Session:
//
//	s, err := mpcspanner.Serve(ctx, g, mpcspanner.WithSeed(1))
//	d, err := s.Query(ctx, 0, 99)
//
// Every error classifies through errors.Is against ErrInvalidOption or
// ErrCanceled (the latter also matching ctx.Err()); see errors.go. The flat
// functions below (BuildSpanner, BuildSpannerMPC, ApproxAPSP, NewOracle, …)
// are the pre-v1 surface, kept as thin deprecated wrappers over the same
// core so existing callers migrate incrementally — new code should call
// Build and Serve. See DESIGN.md §8 for the cancellation model and the
// old→new migration table.
package mpcspanner

import (
	"context"

	"mpcspanner/internal/apsp"
	"mpcspanner/internal/cclique"
	"mpcspanner/internal/dist"
	"mpcspanner/internal/graph"
	"mpcspanner/internal/mpc"
	"mpcspanner/internal/oracle"
	"mpcspanner/internal/par"
	"mpcspanner/internal/spanner"
)

// Graph, Edge and the workload generators are re-exported from the graph
// substrate so applications only import this package.
type (
	// Graph is a weighted undirected graph with frozen CSR adjacency.
	Graph = graph.Graph
	// Edge is an undirected weighted edge.
	Edge = graph.Edge
	// WeightFn draws edge weights inside generators.
	WeightFn = graph.WeightFn
)

// NewGraph builds a graph on n vertices from edges.
func NewGraph(n int, edges []Edge) (*Graph, error) { return graph.New(n, edges) }

// Synthetic workload generators, re-exported from internal/graph. Each takes
// a WeightFn and an explicit seed; equal seeds give identical graphs.
var (
	// GNP is the Erdős–Rényi G(n, p) random graph.
	GNP = graph.GNP
	// GNM is the uniform random graph with exactly m edges.
	GNM = graph.GNM
	// Grid is the 2-D lattice (road-network-like workloads).
	Grid = graph.Grid
	// Torus is the wrap-around 2-D lattice.
	Torus = graph.Torus
	// Cycle is the n-cycle.
	Cycle = graph.Cycle
	// Path is the n-vertex path.
	Path = graph.Path
	// Star is the n-vertex star.
	Star = graph.Star
	// Complete is the clique K_n.
	Complete = graph.Complete
	// RandomTree is a uniform random spanning tree on n vertices.
	RandomTree = graph.RandomTree
	// PreferentialAttachment is the Barabási–Albert scale-free generator
	// (social-network-like degree skew).
	PreferentialAttachment = graph.PreferentialAttachment
	// RandomGeometric connects points of the unit square within a radius.
	RandomGeometric = graph.RandomGeometric
	// Connectify bridges a disconnected graph's components so every
	// distance (and hence every stretch ratio) is finite.
	Connectify = graph.Connectify
	// UnitWeight assigns weight 1 to every edge.
	UnitWeight = graph.UnitWeight
	// UniformWeight draws weights uniformly from [lo, hi).
	UniformWeight = graph.UniformWeight
	// ExpWeight draws exponentially distributed weights.
	ExpWeight = graph.ExpWeight
	// PowerWeight draws heavy-tailed power-law weights.
	PowerWeight = graph.PowerWeight
)

// Algorithm selects a spanner construction family for Build.
type Algorithm string

const (
	// AlgoGeneral is the §5 trade-off algorithm parameterized by T.
	AlgoGeneral Algorithm = "general"
	// AlgoClusterMerge is the §4 algorithm (T = 1): fastest, stretch O(k^{log 3}).
	AlgoClusterMerge Algorithm = "cluster-merge"
	// AlgoSqrtK is the §3 algorithm (T = ⌈√k⌉): stretch O(k) in O(√k) rounds.
	AlgoSqrtK Algorithm = "sqrt-k"
	// AlgoBaswanaSen is the classic [BS07] baseline: stretch 2k−1 in k−1 rounds.
	AlgoBaswanaSen Algorithm = "baswana-sen"
	// AlgoUnweighted is the Appendix B construction for unit-weight graphs:
	// stretch O(K/Gamma) in O(log K) rounds. BuildResult.Unweighted carries
	// its statistics.
	AlgoUnweighted Algorithm = "unweighted"
	// AlgoMPC executes the general algorithm on the simulated
	// sublinear-memory MPC cluster (Theorem 1.1 / §6); the spanner is
	// bit-identical to AlgoGeneral under the same seed and
	// BuildResult.MPC carries the round/memory bill.
	AlgoMPC Algorithm = "mpc"
	// AlgoCongestedClique runs Theorem 8.1 (w.h.p. size via per-iteration
	// parallel-run selection); BuildResult.CC carries the clique round bill
	// and selection statistics.
	AlgoCongestedClique Algorithm = "congested-clique"
)

// SpannerStats reports the structural costs of an engine-family build — the
// quantities the paper's theorems bound.
type SpannerStats = spanner.Stats

// UnweightedStats reports the Appendix B construction's structural
// quantities.
type UnweightedStats = spanner.UnweightedStats

// SpannerOptions configures BuildSpanner.
//
// Deprecated: new code should pass functional options to Build.
type SpannerOptions struct {
	// Algorithm defaults to AlgoGeneral.
	Algorithm Algorithm
	// K is the stretch parameter (required, ≥ 1).
	K int
	// T is the epoch length for AlgoGeneral (default ⌈log₂ k⌉, the paper's
	// k^{1+o(1)}-stretch sweet spot); ignored by the other algorithms.
	T int
	// Seed drives all randomness; equal seeds give identical spanners.
	Seed uint64
	// Repetitions > 1 keeps the smallest of that many independent runs.
	Repetitions int
	// Workers sizes the construction's worker pool: 0 selects GOMAXPROCS
	// ("as fast as the hardware allows"), 1 forces the serial path, larger
	// values pin the pool. Equal seeds give bit-identical spanners at every
	// worker count; negative values are rejected with an error.
	Workers int
	// MeasureRadius additionally reports final cluster-tree radii.
	MeasureRadius bool
}

// SpannerResult is re-exported from the core package.
type SpannerResult = spanner.Result

// BuildSpanner constructs a spanner of g with the selected algorithm. It is
// a thin wrapper over Build with a background context: same spanners, same
// statistics, bit-identical under equal seeds.
//
// Deprecated: use Build, which adds cancellation, progress reporting, and
// typed errors.
func BuildSpanner(g *Graph, opt SpannerOptions) (*SpannerResult, error) {
	opts := []Option{
		WithAlgorithm(orDefault(opt.Algorithm)),
		WithK(opt.K),
		WithSeed(opt.Seed),
		WithWorkers(opt.Workers),
	}
	if opt.T > 0 {
		opts = append(opts, WithT(opt.T))
	}
	if opt.Repetitions > 0 {
		opts = append(opts, WithRepetitions(opt.Repetitions))
	}
	if opt.MeasureRadius {
		opts = append(opts, WithMeasureRadius())
	}
	res, err := Build(context.Background(), g, opts...)
	if err != nil {
		return nil, err
	}
	return &SpannerResult{EdgeIDs: res.EdgeIDs, Stats: res.Stats}, nil
}

// orDefault maps the flat API's zero Algorithm onto AlgoGeneral.
func orDefault(a Algorithm) Algorithm {
	if a == "" {
		return AlgoGeneral
	}
	return a
}

// defaultT is the paper's t = log k sweet spot (stretch k^{1+o(1)} in
// O(log² k / log log k) iterations).
func defaultT(k int) int {
	t := 0
	for v := k; v > 1; v >>= 1 {
		t++
	}
	if t < 1 {
		t = 1
	}
	return t
}

// UnweightedOptions and Unweighted expose the Appendix B construction for
// unit-weight graphs: stretch O(k/γ) in O(log k) rounds.
//
// Deprecated: new code should pass functional options to Build with
// WithAlgorithm(AlgoUnweighted).
type UnweightedOptions = spanner.UnweightedOptions

// UnweightedResult is the Appendix B result type.
type UnweightedResult = spanner.UnweightedResult

// BuildUnweightedSpanner runs the Appendix B algorithm. It is a thin
// wrapper over Build(WithAlgorithm(AlgoUnweighted)) with a background
// context, which also gives it the facade-level option validation every
// other entry point performs (a negative Workers is rejected before any
// graph inspection, matching the rest of the surface).
//
// Deprecated: use Build with WithAlgorithm(AlgoUnweighted).
func BuildUnweightedSpanner(g *Graph, k int, opt UnweightedOptions) (*UnweightedResult, error) {
	opts := []Option{
		WithAlgorithm(AlgoUnweighted),
		WithK(k),
		WithSeed(opt.Seed),
		WithWorkers(opt.Workers),
	}
	if opt.Gamma != 0 {
		opts = append(opts, WithGamma(opt.Gamma))
	}
	if opt.Progress != nil {
		opts = append(opts, WithProgress(opt.Progress))
	}
	res, err := Build(context.Background(), g, opts...)
	if err != nil {
		return nil, err
	}
	return &UnweightedResult{EdgeIDs: res.EdgeIDs, Stats: *res.Unweighted}, nil
}

// StretchBound returns the certified stretch of General(k, t): 2k^s with
// s = log(2t+1)/log(t+1).
func StretchBound(k, t int) float64 { return spanner.StretchBound(k, t) }

// IterationBound returns the iteration guarantee of General(k, t).
func IterationBound(k, t int) int { return spanner.IterationBound(k, t) }

// Verify checks that a result is a valid spanner of g within maxStretch and
// returns the measured stretch.
func Verify(g *Graph, r *SpannerResult, maxStretch float64) (dist.StretchReport, error) {
	return spanner.Verify(g, r, maxStretch)
}

// MPCResult is the distributed-execution result (rounds, memory, spanner).
type MPCResult = mpc.Result

// MPCOptions configures BuildSpannerMPCOpts: the machines' memory exponent
// Gamma and the real Workers pool that executes their local passes.
type MPCOptions = mpc.Options

// BuildSpannerMPC executes the general algorithm on the simulated
// sublinear-memory MPC cluster (Theorem 1.1 / Section 6) and reports rounds
// and memory alongside the spanner, which is bit-identical to
// BuildSpanner(AlgoGeneral) under the same seed. The simulated machines'
// local passes run on a GOMAXPROCS pool; use BuildSpannerMPCOpts to pin it.
//
// Wall-clock: the simulator's global sorts run as radix-keyed shuffles over
// order-preserving uint64 encodings of the paper's comparators, on a scratch
// arena reused across rounds (DESIGN.md §7) — the simulated round/sort/tree
// accounting is identical to the comparator realization, only faster.
//
// Deprecated: use Build with WithAlgorithm(AlgoMPC); BuildResult.MPC carries
// this function's result.
func BuildSpannerMPC(g *Graph, k, t int, gamma float64, seed uint64) (*MPCResult, error) {
	return mpc.BuildSpannerCtx(context.Background(), g, k, t, seed, MPCOptions{Gamma: gamma})
}

// BuildSpannerMPCOpts is BuildSpannerMPC with the full option surface
// (Workers follows the par conventions; rounds and the spanner are
// bit-identical at every worker count).
//
// Deprecated: use Build with WithAlgorithm(AlgoMPC).
func BuildSpannerMPCOpts(g *Graph, k, t int, seed uint64, opt MPCOptions) (*MPCResult, error) {
	if err := par.CheckWorkers("mpcspanner: MPCOptions.Workers", opt.Workers); err != nil {
		return nil, err
	}
	return mpc.BuildSpannerCtx(context.Background(), g, k, t, seed, opt)
}

// APSPOptions configures the §7 distance-approximation pipeline.
type APSPOptions = apsp.Options

// APSPResult is a completed §7 run.
type APSPResult = apsp.Result

// ApproxAPSP runs Corollary 1.4: an O(log^{1+o(1)} n)-approximate APSP
// oracle built in poly(log log n) simulated MPC rounds. APSPOptions.Workers
// sizes the real pool behind both the build and the serving oracle.
//
// Deprecated: use Serve (which wraps the pipeline in a serving Session) or
// ApproxAPSPCtx (same result type, cancelable).
func ApproxAPSP(g *Graph, opt APSPOptions) (*APSPResult, error) {
	return ApproxAPSPCtx(context.Background(), g, opt)
}

// The distance-oracle serving layer (internal/oracle): the §7 regime where
// the spanner is built once and then serves many queries locally.
type (
	// Oracle is a concurrency-safe cached distance oracle over a frozen
	// graph: sharded per-source row LRU, singleflight miss dedup, and a
	// deterministic batched query API.
	Oracle = oracle.Oracle
	// OracleOptions configures NewOracle (shards, row budget, workers).
	OracleOptions = oracle.Options
	// OracleStats is a snapshot of the oracle's cache counters.
	OracleStats = oracle.Stats
	// Pair is one (source, target) query of Oracle.QueryMany.
	Pair = oracle.Pair
)

// NewOracle wraps a frozen graph — typically the spanner of a Build or
// ApproxAPSP run, via g.Subgraph(res.EdgeIDs) or res.Spanner() — in a
// cached serving layer. Point queries hit Oracle.Query, batches
// Oracle.QueryMany; Oracle.Stats reports hits/misses/evictions. The
// context-aware QueryCtx/RowCtx/QueryManyCtx methods back the Session
// surface and are available here too.
//
// Deprecated: use Serve, whose Session carries the same oracle behind
// context-aware query methods.
func NewOracle(g *Graph, opt OracleOptions) *Oracle { return oracle.New(g, opt) }

// CCSpannerResult and CCAPSPResult expose the Congested Clique layer (§8).
type (
	// CCSpannerResult is a Theorem 8.1 construction.
	CCSpannerResult = cclique.SpannerResult
	// CCAPSPResult is a Corollary 1.5 run.
	CCAPSPResult = cclique.APSPResult
)

// BuildSpannerCongestedClique runs Theorem 8.1 (w.h.p. size via per-iteration
// parallel-run selection). The simulated nodes' local work runs on a
// GOMAXPROCS pool; use BuildSpannerCongestedCliqueWorkers to pin it.
//
// Deprecated: use Build with WithAlgorithm(AlgoCongestedClique);
// BuildResult.CC carries this function's result.
func BuildSpannerCongestedClique(g *Graph, k, t int, seed uint64) (*CCSpannerResult, error) {
	return cclique.BuildSpannerCtx(context.Background(), g, k, t, seed, cclique.BuildOptions{})
}

// BuildSpannerCongestedCliqueWorkers is BuildSpannerCongestedClique with an
// explicit worker pool size (par conventions; bit-identical results at
// every count).
//
// Deprecated: use Build with WithAlgorithm(AlgoCongestedClique) and
// WithWorkers.
func BuildSpannerCongestedCliqueWorkers(g *Graph, k, t int, seed uint64, workers int) (*CCSpannerResult, error) {
	if err := par.CheckWorkers("mpcspanner: workers", workers); err != nil {
		return nil, err
	}
	return cclique.BuildSpannerCtx(context.Background(), g, k, t, seed, cclique.BuildOptions{Workers: workers})
}

// ApproxAPSPCongestedClique runs Corollary 1.5: the first sublogarithmic
// weighted-APSP approximation in the Congested Clique.
//
// Deprecated: use ApproxAPSPCongestedCliqueCtx, which is cancelable.
func ApproxAPSPCongestedClique(g *Graph, seed uint64) (*CCAPSPResult, error) {
	return ApproxAPSPCongestedCliqueCtx(context.Background(), g, WithSeed(seed))
}

// ApproxAPSPCongestedCliqueCtx is the context-aware Corollary 1.5 pipeline:
// the WHP spanner build checkpoints ctx per grow iteration. It accepts the
// shared functional options WithSeed, WithWorkers and WithProgress; the
// algorithm parameters are fixed by the corollary (k = ⌈log₂ n⌉,
// t = ⌈log₂ log₂ n⌉), so the structural options are rejected like every
// other foreign option.
func ApproxAPSPCongestedCliqueCtx(ctx context.Context, g *Graph, opts ...Option) (*CCAPSPResult, error) {
	cfg, err := newConfig("ApproxAPSPCongestedCliqueCtx", cliqueAPSPForeign, opts)
	if err != nil {
		return nil, err
	}
	return cclique.ApproxAPSPCtx(ctx, g, cfg.seed, cclique.BuildOptions{
		Workers: cfg.workers, Progress: cfg.progress,
	})
}
