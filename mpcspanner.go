// Package mpcspanner is the public facade of this repository: a Go
// implementation of "Massively Parallel Algorithms for Distance
// Approximation and Spanners" (Biswas, Dory, Ghaffari, Mitrović, Nazari —
// SPAA 2021).
//
// It exposes the paper's spanner constructions (the §5 general round/stretch
// trade-off and its §3/§4/[BS07]/Appendix-B special cases), the simulated
// execution substrates (MPC, Congested Clique, PRAM cost model), and the §7
// all-pairs-shortest-paths approximation built on top. See DESIGN.md for the
// system inventory and EXPERIMENTS.md for the reproduced theorem-level
// results.
//
// Quick start:
//
//	g := mpcspanner.GNP(10_000, 0.001, mpcspanner.UniformWeight(1, 100), 42)
//	res, err := mpcspanner.BuildSpanner(g, mpcspanner.SpannerOptions{K: 8, T: 2, Seed: 1})
//	// res.EdgeIDs is the spanner; res.Stats carries iterations/size/radius.
package mpcspanner

import (
	"fmt"

	"mpcspanner/internal/apsp"
	"mpcspanner/internal/cclique"
	"mpcspanner/internal/dist"
	"mpcspanner/internal/graph"
	"mpcspanner/internal/mpc"
	"mpcspanner/internal/oracle"
	"mpcspanner/internal/par"
	"mpcspanner/internal/spanner"
)

// Graph, Edge and the workload generators are re-exported from the graph
// substrate so applications only import this package.
type (
	// Graph is a weighted undirected graph with frozen CSR adjacency.
	Graph = graph.Graph
	// Edge is an undirected weighted edge.
	Edge = graph.Edge
	// WeightFn draws edge weights inside generators.
	WeightFn = graph.WeightFn
)

// NewGraph builds a graph on n vertices from edges.
func NewGraph(n int, edges []Edge) (*Graph, error) { return graph.New(n, edges) }

// Synthetic workload generators, re-exported from internal/graph. Each takes
// a WeightFn and an explicit seed; equal seeds give identical graphs.
var (
	// GNP is the Erdős–Rényi G(n, p) random graph.
	GNP = graph.GNP
	// GNM is the uniform random graph with exactly m edges.
	GNM = graph.GNM
	// Grid is the 2-D lattice (road-network-like workloads).
	Grid = graph.Grid
	// Torus is the wrap-around 2-D lattice.
	Torus = graph.Torus
	// Cycle is the n-cycle.
	Cycle = graph.Cycle
	// Path is the n-vertex path.
	Path = graph.Path
	// Star is the n-vertex star.
	Star = graph.Star
	// Complete is the clique K_n.
	Complete = graph.Complete
	// RandomTree is a uniform random spanning tree on n vertices.
	RandomTree = graph.RandomTree
	// PreferentialAttachment is the Barabási–Albert scale-free generator
	// (social-network-like degree skew).
	PreferentialAttachment = graph.PreferentialAttachment
	// RandomGeometric connects points of the unit square within a radius.
	RandomGeometric = graph.RandomGeometric
	// Connectify bridges a disconnected graph's components so every
	// distance (and hence every stretch ratio) is finite.
	Connectify = graph.Connectify
	// UnitWeight assigns weight 1 to every edge.
	UnitWeight = graph.UnitWeight
	// UniformWeight draws weights uniformly from [lo, hi).
	UniformWeight = graph.UniformWeight
	// ExpWeight draws exponentially distributed weights.
	ExpWeight = graph.ExpWeight
	// PowerWeight draws heavy-tailed power-law weights.
	PowerWeight = graph.PowerWeight
)

// Algorithm selects a spanner construction family.
type Algorithm string

const (
	// AlgoGeneral is the §5 trade-off algorithm parameterized by T.
	AlgoGeneral Algorithm = "general"
	// AlgoClusterMerge is the §4 algorithm (T = 1): fastest, stretch O(k^{log 3}).
	AlgoClusterMerge Algorithm = "cluster-merge"
	// AlgoSqrtK is the §3 algorithm (T = ⌈√k⌉): stretch O(k) in O(√k) rounds.
	AlgoSqrtK Algorithm = "sqrt-k"
	// AlgoBaswanaSen is the classic [BS07] baseline: stretch 2k−1 in k−1 rounds.
	AlgoBaswanaSen Algorithm = "baswana-sen"
)

// SpannerOptions configures BuildSpanner.
type SpannerOptions struct {
	// Algorithm defaults to AlgoGeneral.
	Algorithm Algorithm
	// K is the stretch parameter (required, ≥ 1).
	K int
	// T is the epoch length for AlgoGeneral (default ⌈log₂ k⌉, the paper's
	// k^{1+o(1)}-stretch sweet spot); ignored by the other algorithms.
	T int
	// Seed drives all randomness; equal seeds give identical spanners.
	Seed uint64
	// Repetitions > 1 keeps the smallest of that many independent runs.
	Repetitions int
	// Workers sizes the construction's worker pool: 0 selects GOMAXPROCS
	// ("as fast as the hardware allows"), 1 forces the serial path, larger
	// values pin the pool. Equal seeds give bit-identical spanners at every
	// worker count; negative values are rejected with an error.
	Workers int
	// MeasureRadius additionally reports final cluster-tree radii.
	MeasureRadius bool
}

// SpannerResult is re-exported from the core package.
type SpannerResult = spanner.Result

// BuildSpanner constructs a spanner of g with the selected algorithm.
func BuildSpanner(g *Graph, opt SpannerOptions) (*SpannerResult, error) {
	if err := par.CheckWorkers("mpcspanner: SpannerOptions.Workers", opt.Workers); err != nil {
		return nil, err
	}
	inner := spanner.Options{
		Seed:          opt.Seed,
		Repetitions:   opt.Repetitions,
		Workers:       opt.Workers,
		MeasureRadius: opt.MeasureRadius,
	}
	switch opt.Algorithm {
	case AlgoGeneral, "":
		t := opt.T
		if t <= 0 {
			t = defaultT(opt.K)
		}
		return spanner.General(g, opt.K, t, inner)
	case AlgoClusterMerge:
		return spanner.ClusterMerge(g, opt.K, inner)
	case AlgoSqrtK:
		return spanner.SqrtK(g, opt.K, inner)
	case AlgoBaswanaSen:
		return spanner.BaswanaSen(g, opt.K, inner)
	default:
		return nil, fmt.Errorf("mpcspanner: unknown algorithm %q", opt.Algorithm)
	}
}

// defaultT is the paper's t = log k sweet spot (stretch k^{1+o(1)} in
// O(log² k / log log k) iterations).
func defaultT(k int) int {
	t := 0
	for v := k; v > 1; v >>= 1 {
		t++
	}
	if t < 1 {
		t = 1
	}
	return t
}

// UnweightedOptions and Unweighted expose the Appendix B construction for
// unit-weight graphs: stretch O(k/γ) in O(log k) rounds.
type UnweightedOptions = spanner.UnweightedOptions

// UnweightedResult is the Appendix B result type.
type UnweightedResult = spanner.UnweightedResult

// BuildUnweightedSpanner runs the Appendix B algorithm.
func BuildUnweightedSpanner(g *Graph, k int, opt UnweightedOptions) (*UnweightedResult, error) {
	return spanner.Unweighted(g, k, opt)
}

// StretchBound returns the certified stretch of General(k, t): 2k^s with
// s = log(2t+1)/log(t+1).
func StretchBound(k, t int) float64 { return spanner.StretchBound(k, t) }

// IterationBound returns the iteration guarantee of General(k, t).
func IterationBound(k, t int) int { return spanner.IterationBound(k, t) }

// Verify checks that a result is a valid spanner of g within maxStretch and
// returns the measured stretch.
func Verify(g *Graph, r *SpannerResult, maxStretch float64) (dist.StretchReport, error) {
	return spanner.Verify(g, r, maxStretch)
}

// MPCResult is the distributed-execution result (rounds, memory, spanner).
type MPCResult = mpc.Result

// MPCOptions configures BuildSpannerMPCOpts: the machines' memory exponent
// Gamma and the real Workers pool that executes their local passes.
type MPCOptions = mpc.Options

// BuildSpannerMPC executes the general algorithm on the simulated
// sublinear-memory MPC cluster (Theorem 1.1 / Section 6) and reports rounds
// and memory alongside the spanner, which is bit-identical to
// BuildSpanner(AlgoGeneral) under the same seed. The simulated machines'
// local passes run on a GOMAXPROCS pool; use BuildSpannerMPCOpts to pin it.
//
// Wall-clock: the simulator's global sorts run as radix-keyed shuffles over
// order-preserving uint64 encodings of the paper's comparators, on a scratch
// arena reused across rounds (DESIGN.md §7) — the simulated round/sort/tree
// accounting is identical to the comparator realization, only faster.
func BuildSpannerMPC(g *Graph, k, t int, gamma float64, seed uint64) (*MPCResult, error) {
	return mpc.BuildSpanner(g, k, t, gamma, seed)
}

// BuildSpannerMPCOpts is BuildSpannerMPC with the full option surface
// (Workers follows the par conventions; rounds and the spanner are
// bit-identical at every worker count).
func BuildSpannerMPCOpts(g *Graph, k, t int, seed uint64, opt MPCOptions) (*MPCResult, error) {
	if err := par.CheckWorkers("mpcspanner: MPCOptions.Workers", opt.Workers); err != nil {
		return nil, err
	}
	return mpc.BuildSpannerOpts(g, k, t, seed, opt)
}

// APSPOptions configures the §7 distance-approximation pipeline.
type APSPOptions = apsp.Options

// APSPResult is a completed §7 run.
type APSPResult = apsp.Result

// ApproxAPSP runs Corollary 1.4: an O(log^{1+o(1)} n)-approximate APSP
// oracle built in poly(log log n) simulated MPC rounds. APSPOptions.Workers
// sizes the real pool behind both the build and the serving oracle.
func ApproxAPSP(g *Graph, opt APSPOptions) (*APSPResult, error) {
	if err := par.CheckWorkers("mpcspanner: APSPOptions.Workers", opt.Workers); err != nil {
		return nil, err
	}
	return apsp.Approx(g, opt)
}

// The distance-oracle serving layer (internal/oracle): the §7 regime where
// the spanner is built once and then serves many queries locally.
type (
	// Oracle is a concurrency-safe cached distance oracle over a frozen
	// graph: sharded per-source row LRU, singleflight miss dedup, and a
	// deterministic batched query API.
	Oracle = oracle.Oracle
	// OracleOptions configures NewOracle (shards, row budget, workers).
	OracleOptions = oracle.Options
	// OracleStats is a snapshot of the oracle's cache counters.
	OracleStats = oracle.Stats
	// Pair is one (source, target) query of Oracle.QueryMany.
	Pair = oracle.Pair
)

// NewOracle wraps a frozen graph — typically the spanner of a BuildSpanner
// or ApproxAPSP run, via g.Subgraph(res.EdgeIDs) or res.Spanner() — in a
// cached serving layer. Point queries hit Oracle.Query, batches
// Oracle.QueryMany; Oracle.Stats reports hits/misses/evictions.
func NewOracle(g *Graph, opt OracleOptions) *Oracle { return oracle.New(g, opt) }

// CCSpannerResult and CCAPSPResult expose the Congested Clique layer (§8).
type (
	// CCSpannerResult is a Theorem 8.1 construction.
	CCSpannerResult = cclique.SpannerResult
	// CCAPSPResult is a Corollary 1.5 run.
	CCAPSPResult = cclique.APSPResult
)

// BuildSpannerCongestedClique runs Theorem 8.1 (w.h.p. size via per-iteration
// parallel-run selection). The simulated nodes' local work runs on a
// GOMAXPROCS pool; use BuildSpannerCongestedCliqueWorkers to pin it.
func BuildSpannerCongestedClique(g *Graph, k, t int, seed uint64) (*CCSpannerResult, error) {
	return cclique.BuildSpanner(g, k, t, seed)
}

// BuildSpannerCongestedCliqueWorkers is BuildSpannerCongestedClique with an
// explicit worker pool size (par conventions; bit-identical results at
// every count).
func BuildSpannerCongestedCliqueWorkers(g *Graph, k, t int, seed uint64, workers int) (*CCSpannerResult, error) {
	if err := par.CheckWorkers("mpcspanner: workers", workers); err != nil {
		return nil, err
	}
	return cclique.BuildSpannerOpts(g, k, t, seed, workers)
}

// ApproxAPSPCongestedClique runs Corollary 1.5: the first sublogarithmic
// weighted-APSP approximation in the Congested Clique.
func ApproxAPSPCongestedClique(g *Graph, seed uint64) (*CCAPSPResult, error) {
	return cclique.ApproxAPSP(g, seed)
}
