package mpcspanner

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
	"testing"
)

// TestPublicAPISurface is the golden API gate: the exported identifier set
// of package mpcspanner must exactly match the checked-in api/v1.txt, so a
// PR can neither break the v1 surface nor bloat it silently. The file has
// two sections — the stable v1 surface and a "# deprecated" allowlist for
// the grandfathered flat facade; names may move between sections only with
// an explicit file edit, which makes every surface change reviewable.
//
// To regenerate after an intentional change:
//
//	UPDATE_API=1 go test -run TestPublicAPISurface .
func TestPublicAPISurface(t *testing.T) {
	got := exportedSurface(t)
	want, deprecated := readSurfaceFile(t, "api/v1.txt")

	if os.Getenv("UPDATE_API") != "" {
		writeSurfaceFile(t, got, deprecated)
		return
	}

	union := make(map[string]bool, len(want)+len(deprecated))
	for name := range want {
		union[name] = true
	}
	for name := range deprecated {
		union[name] = true
	}

	var missing, extra []string
	for name := range union {
		if !got[name] {
			missing = append(missing, name)
		}
	}
	for name := range got {
		if !union[name] {
			extra = append(extra, name)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	if len(missing) > 0 {
		t.Errorf("exported surface lost identifiers (breaking change):\n  %s",
			strings.Join(missing, "\n  "))
	}
	if len(extra) > 0 {
		t.Errorf("exported surface gained identifiers not declared in api/v1.txt:\n  %s\n"+
			"add them to api/v1.txt (stable section) deliberately, or unexport them",
			strings.Join(extra, "\n  "))
	}
}

// exportedSurface type-checks the package (source importer, so the aliased
// internal types resolve too) and returns every exported identifier
// reachable through it: funcs, types, consts, vars, and the exported method
// sets of exported types as "Type.Method" — including methods that live on
// internal types re-exported here as aliases (Oracle, Graph, APSPResult, …),
// which a pure AST scan of this package would never see.
func exportedSurface(t *testing.T) map[string]bool {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	astPkg, ok := pkgs["mpcspanner"]
	if !ok {
		t.Fatalf("package mpcspanner not found in %v", pkgs)
	}
	var files []*ast.File
	for _, f := range astPkg.Files {
		files = append(files, f)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("mpcspanner", fset, files, nil)
	if err != nil {
		t.Fatalf("type-checking the public package: %v", err)
	}
	out := make(map[string]bool)
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		out[name] = true
		tn, ok := obj.(*types.TypeName)
		if !ok {
			continue
		}
		// *T's method set is a superset of T's, so one enumeration covers
		// both value and pointer receivers.
		ms := types.NewMethodSet(types.NewPointer(tn.Type()))
		for i := 0; i < ms.Len(); i++ {
			if m := ms.At(i).Obj(); m.Exported() {
				out[name+"."+m.Name()] = true
			}
		}
	}
	return out
}

// readSurfaceFile parses api/v1.txt into the stable set and the deprecated
// allowlist. Lines are identifiers; '#' starts a comment; the literal
// section marker "# deprecated" switches to the allowlist.
func readSurfaceFile(t *testing.T, path string) (stable, deprecated map[string]bool) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden API file: %v (regenerate with UPDATE_API=1)", err)
	}
	stable = make(map[string]bool)
	deprecated = make(map[string]bool)
	cur := stable
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "#") {
			if strings.HasPrefix(strings.ToLower(line), "# deprecated") {
				cur = deprecated
			}
			continue
		}
		if line == "" {
			continue
		}
		cur[line] = true
	}
	return stable, deprecated
}

// writeSurfaceFile regenerates api/v1.txt, keeping the previously recorded
// deprecated section and placing everything else in the stable section.
func writeSurfaceFile(t *testing.T, got, deprecated map[string]bool) {
	t.Helper()
	var stable, dep []string
	for name := range got {
		if deprecated[name] {
			dep = append(dep, name)
		} else {
			stable = append(stable, name)
		}
	}
	sort.Strings(stable)
	sort.Strings(dep)
	var b strings.Builder
	b.WriteString("# Golden exported surface of package mpcspanner (v1).\n")
	b.WriteString("# Checked by TestPublicAPISurface; edit deliberately, one identifier per line.\n")
	for _, name := range stable {
		fmt.Fprintln(&b, name)
	}
	b.WriteString("\n# deprecated (grandfathered flat facade; do not extend)\n")
	for _, name := range dep {
		fmt.Fprintln(&b, name)
	}
	if err := os.WriteFile("api/v1.txt", []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("api/v1.txt regenerated: %d stable + %d deprecated identifiers", len(stable), len(dep))
}
