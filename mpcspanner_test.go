package mpcspanner

import (
	"reflect"
	"runtime"
	"testing"

	"mpcspanner/internal/dist"
)

func TestFacadeAlgorithms(t *testing.T) {
	g := GNP(300, 0.05, UniformWeight(1, 10), 1)
	for _, algo := range []Algorithm{AlgoGeneral, AlgoClusterMerge, AlgoSqrtK, AlgoBaswanaSen} {
		r, err := BuildSpanner(g, SpannerOptions{Algorithm: algo, K: 4, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if r.Size() == 0 || r.Size() > g.M() {
			t.Fatalf("%s: implausible size %d", algo, r.Size())
		}
		bound := StretchBound(4, 4) // loosest family bound covers all four here
		if algo == AlgoClusterMerge || algo == AlgoGeneral {
			bound = StretchBound(4, 1)
		}
		if _, err := Verify(g, r, bound); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
	if _, err := BuildSpanner(g, SpannerOptions{Algorithm: "nope", K: 4}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestFacadeDefaultT(t *testing.T) {
	// Default T is ⌈log₂ k⌉.
	if defaultT(16) != 4 || defaultT(2) != 1 || defaultT(1) != 1 {
		t.Fatalf("defaultT wrong: %d %d %d", defaultT(16), defaultT(2), defaultT(1))
	}
	g := GNP(200, 0.06, UnitWeight, 3)
	r, err := BuildSpanner(g, SpannerOptions{K: 16, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.T != 4 {
		t.Fatalf("default T = %d, want 4", r.Stats.T)
	}
}

func TestFacadeMPCAndReferenceAgree(t *testing.T) {
	g := Grid(14, 14, UniformWeight(1, 5), 5)
	ref, err := BuildSpanner(g, SpannerOptions{K: 6, T: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	mpcRes, err := BuildSpannerMPC(g, 6, 2, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.EdgeIDs) != len(mpcRes.EdgeIDs) {
		t.Fatalf("facade planes disagree: %d vs %d edges", len(ref.EdgeIDs), len(mpcRes.EdgeIDs))
	}
}

func TestFacadeAPSP(t *testing.T) {
	g := Connectify(GNP(300, 0.04, UniformWeight(1, 8), 9), 2)
	res, err := ApproxAPSP(g, APSPOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := res.Measure(10, 13)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Max > res.Bound {
		t.Fatalf("approximation %.2f above bound %.2f", rep.Max, res.Bound)
	}
}

func TestFacadeOracle(t *testing.T) {
	g := Connectify(GNP(200, 0.05, UniformWeight(1, 8), 25), 2)
	res, err := ApproxAPSP(g, APSPOptions{Seed: 27})
	if err != nil {
		t.Fatal(err)
	}
	// NewOracle over the collected spanner must agree with an independent
	// cache-free Dijkstra on the spanner, and with the result's shared
	// oracle (which also backs DistancesFrom).
	o := NewOracle(res.Spanner(), OracleOptions{Shards: 4, MaxRows: 16})
	pairs := []Pair{{U: 0, V: 10}, {U: 0, V: 20}, {U: 5, V: 0}, {U: 199, V: 3}}
	got := o.QueryMany(pairs)
	for i, p := range pairs {
		if want := dist.Dijkstra(res.Spanner(), p.U)[p.V]; got[i] != want {
			t.Fatalf("pair %v: oracle %v != Dijkstra %v", p, got[i], want)
		}
		if shared := res.Oracle().Query(p.U, p.V); got[i] != shared {
			t.Fatalf("pair %v: standalone %v != shared %v", p, got[i], shared)
		}
	}
	s := o.Stats()
	if s.Misses != 3 || s.Resident != 3 {
		t.Fatalf("stats %+v, want 3 misses / 3 resident for 3 distinct sources", s)
	}
}

func TestFacadeCongestedClique(t *testing.T) {
	g := Connectify(GNP(250, 0.05, UniformWeight(1, 5), 15), 1)
	sp, err := BuildSpannerCongestedClique(g, 6, 2, 17)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Rounds <= 0 {
		t.Fatal("CC spanner must cost rounds")
	}
	ap, err := ApproxAPSPCongestedClique(g, 19)
	if err != nil {
		t.Fatal(err)
	}
	if ap.Rounds <= sp.Rounds/10 {
		t.Fatal("CC APSP round bill implausible")
	}
}

func TestFacadeUnweighted(t *testing.T) {
	g := Cycle(200, UnitWeight, 21)
	r, err := BuildUnweightedSpanner(g, 2, UnweightedOptions{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() == 0 {
		t.Fatal("empty unweighted spanner")
	}
}

func TestFacadeWorkersValidation(t *testing.T) {
	g := Path(6, UnitWeight, 1)
	if _, err := BuildSpanner(g, SpannerOptions{K: 4, Workers: -1}); err == nil {
		t.Fatal("BuildSpanner accepted Workers < 0")
	}
	if _, err := ApproxAPSP(g, APSPOptions{Workers: -3}); err == nil {
		t.Fatal("ApproxAPSP accepted Workers < 0")
	}
	if _, err := BuildSpannerMPCOpts(g, 4, 2, 1, MPCOptions{Gamma: 0.5, Workers: -1}); err == nil {
		t.Fatal("BuildSpannerMPCOpts accepted Workers < 0")
	}
	if _, err := BuildSpannerCongestedCliqueWorkers(g, 4, 2, 1, -1); err == nil {
		t.Fatal("BuildSpannerCongestedCliqueWorkers accepted Workers < 0")
	}
}

// TestFacadeWorkerCountInvariance pins the facade-level determinism
// contract end to end: a serial and a parallel run of every entry point
// produce identical artifacts.
func TestFacadeWorkerCountInvariance(t *testing.T) {
	g := GNP(300, 0.05, UniformWeight(1, 20), 3)
	w := runtime.NumCPU()
	if w < 4 {
		w = 4
	}
	serial, err := BuildSpanner(g, SpannerOptions{K: 8, T: 2, Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := BuildSpanner(g, SpannerOptions{K: 8, T: 2, Seed: 5, Workers: w})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("facade spanners differ between worker counts")
	}
	apsS, err := ApproxAPSP(g, APSPOptions{Seed: 9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	apsP, err := ApproxAPSP(g, APSPOptions{Seed: 9, Workers: w})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(apsS.SpannerEdgeIDs, apsP.SpannerEdgeIDs) || apsS.Rounds != apsP.Rounds {
		t.Fatal("facade APSP runs differ between worker counts")
	}
}
