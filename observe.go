package mpcspanner

import (
	"time"

	"mpcspanner/internal/obs"
	"mpcspanner/internal/par"
)

// Metrics is a process-local registry of counters, gauges and fixed-bucket
// histograms. One registry may be shared across any number of Build and
// Serve calls (series aggregate, Prometheus-style); expose it over HTTP with
// Metrics.Handler, or dump it with WriteProm / WriteJSON. All mutation is
// lock-free and allocation-free, so instrumented hot paths stay 0 allocs/op.
type Metrics = obs.Registry

// MetricsSnapshot is a consistent point-in-time copy of a Metrics registry,
// sorted by series name so its encodings are byte-identical for equal state.
type MetricsSnapshot = obs.Snapshot

// HistogramSnapshot is one histogram inside a MetricsSnapshot; its Quantile
// method interpolates p50/p95/p99-style summaries from the bucket counts.
type HistogramSnapshot = obs.HistogramSnap

// NewMetrics returns an empty registry. Passing it to WithMetrics
// instruments the call; a nil *Metrics (or omitting the option) runs the
// exact same code paths uninstrumented and bit-identically.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// Tracer records named phase spans (B1 coin flips, grow iterations, removal
// sweeps, Step C contractions, Phase 2) with durations and integer
// attributes. Retention is capped; Tracer.Dropped reports overflow.
type Tracer = obs.Tracer

// Span is one recorded phase span.
type Span = obs.Span

// SpanSummary aggregates the spans of one name (count, total/min/max
// duration), as returned by Tracer.Summary.
type SpanSummary = obs.SpanSummary

// NewTracer returns an empty tracer for WithTracer.
func NewTracer() *Tracer { return obs.NewTracer() }

// WithMetrics instruments the call on r: Build fills the mpc_* / spanner_* /
// par_* series, Serve additionally fills the oracle_* serving series. nil
// restores the default (uninstrumented); either way results are
// bit-identical — metrics observe the computation without steering it.
func WithMetrics(r *Metrics) Option {
	return func(c *config) { c.metrics = r; c.mark("Metrics") }
}

// WithTracer records the construction's phase spans into tr. The local
// engine families (AlgoGeneral, AlgoClusterMerge, AlgoSqrtK, AlgoBaswanaSen)
// emit real timed spans from inside the engine; the simulated planes
// (AlgoMPC, AlgoUnweighted, AlgoCongestedClique) and Serve's §7 pipeline
// mirror their progress checkpoints as zero-duration marker spans. nil
// restores the default (no tracing). Build-side only: rejected by Serve's
// WithExact mode, where no construction runs.
func WithTracer(tr *Tracer) Option {
	return func(c *config) { c.tracer = tr; c.mark("Tracer") }
}

// hookPoolMetrics attaches the process-global worker-pool series (par_*) to
// cfg.metrics. The hook is last-writer-wins across the process, so it is
// only installed for instrumented calls — a plain Build must never detach a
// concurrent instrumented one.
func (c *config) hookPoolMetrics() {
	if c.metrics != nil {
		par.SetMetrics(c.metrics)
	}
}

// traceProgress mirrors every progress checkpoint of a simulated-plane
// construction into tr as a zero-duration "checkpoint.<stage>" span, then
// forwards the event to next. Used where the construction has no native
// span instrumentation; returns next unchanged when tr is nil.
func traceProgress(tr *Tracer, next func(ProgressEvent)) func(ProgressEvent) {
	if tr == nil {
		return next
	}
	return func(ev ProgressEvent) {
		tr.Record(Span{
			Name:  "checkpoint." + ev.Stage,
			Start: time.Now(),
			Attrs: []obs.Attr{
				{Key: "iteration", Val: int64(ev.Iteration)},
				{Key: "alive_edges", Val: int64(ev.AliveEdges)},
				{Key: "spanner_edges", Val: int64(ev.SpannerEdges)},
				{Key: "rounds", Val: int64(ev.Rounds)},
			},
		})
		if next != nil {
			next(ev)
		}
	}
}
