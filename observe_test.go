package mpcspanner

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// TestWithMetricsBitIdentity pins the observability contract: metrics watch
// the computation without steering it. For the engine and MPC families, a
// build with no metrics option, with WithMetrics(nil), and with a live
// registry must produce bit-identical results.
func TestWithMetricsBitIdentity(t *testing.T) {
	g := testGraphSmall()
	ctx := context.Background()

	base, err := Build(ctx, g, WithK(6), WithSeed(21), WithMeasureRadius())
	if err != nil {
		t.Fatal(err)
	}
	nilOpt, err := Build(ctx, g, WithK(6), WithSeed(21), WithMeasureRadius(), WithMetrics(nil))
	if err != nil {
		t.Fatal(err)
	}
	live, err := Build(ctx, g, WithK(6), WithSeed(21), WithMeasureRadius(),
		WithMetrics(NewMetrics()), WithTracer(NewTracer()))
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]*BuildResult{"WithMetrics(nil)": nilOpt, "instrumented": live} {
		if !reflect.DeepEqual(base.EdgeIDs, r.EdgeIDs) || !reflect.DeepEqual(base.Stats, r.Stats) {
			t.Fatalf("%s build differs from the uninstrumented build", name)
		}
	}

	baseM, err := Build(ctx, g, WithAlgorithm(AlgoMPC), WithK(6), WithT(2), WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	liveM, err := Build(ctx, g, WithAlgorithm(AlgoMPC), WithK(6), WithT(2), WithSeed(21),
		WithMetrics(NewMetrics()), WithTracer(NewTracer()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(baseM.MPC, liveM.MPC) {
		t.Fatal("instrumented MPC build differs from the uninstrumented build")
	}
}

// TestWithMetricsSeries checks that one shared registry accumulates the
// paper-native series of every instrumented layer: spanner_* from the local
// engine, mpc_* from the simulated cluster, par_* from the worker pool, and
// oracle_* from a serving session.
func TestWithMetricsSeries(t *testing.T) {
	g := testGraphSmall()
	ctx := context.Background()
	reg := NewMetrics()

	if _, err := Build(ctx, g, WithK(6), WithSeed(21), WithWorkers(4), WithMetrics(reg)); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(ctx, g, WithAlgorithm(AlgoMPC), WithK(6), WithT(2), WithSeed(21),
		WithMetrics(reg)); err != nil {
		t.Fatal(err)
	}
	s, err := Serve(ctx, g, WithSeed(11), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.QueryMany(ctx, []Pair{{U: 0, V: 1}, {U: 2, V: 3}, {U: 0, V: 5}}); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	for _, c := range []string{"spanner_grow_iterations_total", "mpc_rounds_total",
		"mpc_sorts_total", "oracle_row_misses_total", "par_parallel_dispatch_total"} {
		v, ok := snap.Counter(c)
		if !ok {
			t.Fatalf("counter %s missing from snapshot", c)
		}
		if c != "par_parallel_dispatch_total" && v <= 0 {
			t.Fatalf("counter %s = %d, want > 0", c, v)
		}
	}
	if v, ok := snap.Gauge("mpc_peak_machine_load_tuples"); !ok || v <= 0 {
		t.Fatalf("mpc_peak_machine_load_tuples = (%d, %v), want a positive peak", v, ok)
	}
	for _, h := range []string{"mpc_round_tuples", "mpc_shuffle_bytes",
		"spanner_iteration_seconds", "oracle_batch_seconds", "oracle_row_seconds"} {
		hs := snap.Histogram(h)
		if hs == nil || hs.Count == 0 {
			t.Fatalf("histogram %s missing or empty", h)
		}
	}

	// The Prometheus encoding carries the same series end to end.
	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# TYPE mpc_round_tuples histogram",
		"mpc_peak_machine_load_tuples", `oracle_batch_seconds_bucket{le="+Inf"}`} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("Prometheus exposition misses %q", want)
		}
	}

	// Session counters and the registry tell one story.
	stats := s.Stats()
	if v, _ := snap.Counter("oracle_row_misses_total"); v != stats.Misses {
		t.Fatalf("oracle_row_misses_total = %d, Session.Stats().Misses = %d", v, stats.Misses)
	}
}

// TestWithTracerSpans checks both tracing modes: native engine spans with
// real durations for the local families, and checkpoint marker spans mirrored
// from progress events on the simulated planes.
func TestWithTracerSpans(t *testing.T) {
	g := testGraphSmall()
	ctx := context.Background()

	tr := NewTracer()
	if _, err := Build(ctx, g, WithK(6), WithSeed(21), WithTracer(tr)); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, sum := range tr.Summary() {
		names[sum.Name] = true
	}
	for _, want := range []string{"spanner.b1-coins", "spanner.grow",
		"spanner.removal-sweep", "spanner.phase2"} {
		if !names[want] {
			t.Fatalf("engine trace misses span %q (got %v)", want, names)
		}
	}

	trM := NewTracer()
	events := 0
	if _, err := Build(ctx, g, WithAlgorithm(AlgoMPC), WithK(6), WithT(2), WithSeed(21),
		WithTracer(trM), WithProgress(func(ProgressEvent) { events++ })); err != nil {
		t.Fatal(err)
	}
	spans := trM.Spans()
	if len(spans) != events {
		t.Fatalf("MPC bridge recorded %d spans for %d progress events", len(spans), events)
	}
	for _, sp := range spans {
		if !strings.HasPrefix(sp.Name, "checkpoint.") {
			t.Fatalf("MPC bridge span %q does not carry the checkpoint prefix", sp.Name)
		}
	}
}

// TestObserveOptionRejection pins where the observability options are not
// accepted: the fixed-parameter clique pipeline takes neither, and exact
// serving (no build) takes no tracer — but keeps WithMetrics, which
// instruments the serving oracle.
func TestObserveOptionRejection(t *testing.T) {
	g := testGraphSmall()
	ctx := context.Background()
	if _, err := ApproxAPSPCongestedCliqueCtx(ctx, g, WithMetrics(NewMetrics())); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("clique pipeline WithMetrics = %v, want ErrInvalidOption", err)
	}
	if _, err := ApproxAPSPCongestedCliqueCtx(ctx, g, WithTracer(NewTracer())); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("clique pipeline WithTracer = %v, want ErrInvalidOption", err)
	}
	if _, err := Serve(ctx, g, WithExact(), WithTracer(NewTracer())); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("Serve(WithExact, WithTracer) = %v, want ErrInvalidOption", err)
	}
	reg := NewMetrics()
	s, err := Serve(ctx, g, WithExact(), WithMetrics(reg))
	if err != nil {
		t.Fatalf("Serve(WithExact, WithMetrics) = %v, want it accepted", err)
	}
	if _, err := s.Query(ctx, 0, 5); err != nil {
		t.Fatal(err)
	}
	if v, ok := reg.Snapshot().Counter("oracle_row_misses_total"); !ok || v != 1 {
		t.Fatalf("exact serving miss counter = (%d, %v), want exactly one miss", v, ok)
	}
}
