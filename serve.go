package mpcspanner

import (
	"context"

	"mpcspanner/internal/apsp"
	"mpcspanner/internal/artifact"
	"mpcspanner/internal/core"
	"mpcspanner/internal/oracle"
	"mpcspanner/internal/par"
)

// Session is the serving half of the v1 surface: a concurrency-safe cached
// distance service over a frozen graph — the paper's §7 regime where a
// spanner is built once and then answers many queries locally. Create one
// with Serve; every query method takes a context and checkpoints it between
// row computations, so a slow batch can be timed out or canceled without
// leaking goroutines.
type Session struct {
	input  *Graph
	served *Graph
	oracle *Oracle
	apsp   *APSPResult // nil when serving WithExact or WithArtifact

	// Persistence identity: fp is what Session.Fingerprint reports and
	// Session.Save records; art and frozen are set only for sessions
	// loaded with WithArtifact.
	fp     artifact.Fingerprint
	art    *Artifact
	frozen *artifact.Rows
}

// Serve builds a distance-serving session over g under ctx.
//
// By default it runs the full Corollary 1.4 pipeline — a near-linear spanner
// with k = ⌈log₂ n⌉ built on the simulated MPC cluster (honoring WithT,
// WithGamma, WithSeed, WithWorkers, WithProgress), collected onto one
// machine and wrapped in the cached oracle — so queries answer with the
// certified O(log^{1+o(1)} n) approximation. With WithExact the pipeline is
// skipped and distances are served on g as given; use that for exact
// serving, or to serve a spanner built separately with Build:
//
//	res, _ := mpcspanner.Build(ctx, g, mpcspanner.WithK(8))
//	s, _ := mpcspanner.Serve(ctx, res.Spanner(), mpcspanner.WithExact())
//	d, err := s.Query(ctx, 0, 99)
//
// WithCacheShards and WithCacheRows size the serving cache. Cancellation and
// error classification follow the Build contract (ErrCanceled /
// ErrInvalidOption via errors.Is).
func Serve(ctx context.Context, g *Graph, opts ...Option) (*Session, error) {
	cfg, err := newConfig("Serve", buildOnly, opts)
	if err != nil {
		return nil, err
	}
	if cfg.art != nil {
		// Artifact serving runs no pipeline either; only the cache and
		// observability knobs combine with it, and the graph argument must
		// be nil — the artifact is the graph.
		if g != nil {
			return nil, &OptionError{Field: "mpcspanner: Artifact", Value: "(set)",
				Reason: "pass a nil graph when serving from an artifact"}
		}
		for _, field := range []string{"Seed", "T", "Gamma", "Progress", "Tracer", "Exact", "MemoryBudget"} {
			if cfg.set[field] {
				return nil, &OptionError{Field: "mpcspanner: " + field, Value: "(set)",
					Reason: "not accepted together with WithArtifact (no build runs)"}
			}
		}
		if err := core.Check(ctx); err != nil {
			return nil, err
		}
		cfg.hookPoolMetrics()
		ag := cfg.art.Graph()
		s := &Session{input: ag, served: ag, fp: cfg.art.Fingerprint(), art: cfg.art}
		oopts := oracle.Options{
			Shards: cfg.shards, MaxRows: cfg.maxRows, Workers: cfg.workers,
			Metrics: cfg.metrics, SSSP: cfg.sssp, Delta: cfg.delta,
		}
		if rows := artifact.RowsOf(cfg.art); rows != nil {
			s.frozen = rows
			oopts.Frozen = rows
		}
		s.oracle = oracle.New(ag, oopts)
		return s, nil
	}
	if g == nil {
		return nil, &OptionError{Field: "mpcspanner: Graph", Value: nil,
			Reason: "Serve needs a graph (or WithArtifact)"}
	}
	if cfg.exact {
		// Exact mode runs no pipeline, so the pipeline-only options would
		// be dead weight; reject them like every other foreign option.
		// WithMetrics stays accepted: it instruments the serving oracle.
		for _, field := range []string{"Seed", "T", "Gamma", "Progress", "Tracer", "MemoryBudget"} {
			if cfg.set[field] {
				return nil, &OptionError{Field: "mpcspanner: " + field, Value: "(set)",
					Reason: "not accepted together with WithExact (no build runs)"}
			}
		}
	}
	if err := core.Check(ctx); err != nil {
		return nil, err
	}
	s := &Session{input: g, served: g,
		fp: artifact.Fingerprint{Algorithm: "exact", Workers: cfg.workers}}
	cfg.hookPoolMetrics()
	if !cfg.exact {
		res, err := apsp.ApproxCtx(ctx, g, apsp.Options{
			Seed: cfg.seed, T: cfg.t, Gamma: cfg.gamma,
			Workers: cfg.workers, Progress: traceProgress(cfg.tracer, cfg.progress),
			Metrics: cfg.metrics, SSSP: cfg.sssp, Delta: cfg.delta,
			MemoryBudget: cfg.memBudget,
		})
		if err != nil {
			return nil, err
		}
		s.apsp = res
		s.served = res.Spanner()
		s.fp = artifact.Fingerprint{Algorithm: "apsp-mpc", Seed: cfg.seed,
			K: res.K, T: res.T, Gamma: cfg.gamma, Workers: cfg.workers}
		if cfg.shards == 0 && cfg.maxRows == 0 {
			// Default cache sizing: share the pipeline result's oracle, so
			// Session queries and APSPResult.DistancesFrom hit one cache
			// instead of recomputing identical rows into two.
			s.oracle = res.Oracle()
			return s, nil
		}
	}
	s.oracle = oracle.New(s.served, oracle.Options{
		Shards: cfg.shards, MaxRows: cfg.maxRows, Workers: cfg.workers,
		Metrics: cfg.metrics, SSSP: cfg.sssp, Delta: cfg.delta,
	})
	return s, nil
}

// Query returns the distance from u to v on the served graph (Inf when
// unreachable), caching the source row. Invalid vertices return
// ErrInvalidOption-classified errors; a done context returns an
// ErrCanceled-classified error at the next per-row checkpoint.
func (s *Session) Query(ctx context.Context, u, v int) (float64, error) {
	return s.oracle.QueryCtx(ctx, u, v)
}

// QueryMany answers a batch: out[i] is the distance for pairs[i]. Resident
// sources answer immediately; the remaining distinct sources fan out over
// the session's worker pool, which re-checks ctx before each source. The
// output is a pure function of (served graph, pairs) regardless of
// scheduling and cache state.
func (s *Session) QueryMany(ctx context.Context, pairs []Pair) ([]float64, error) {
	return s.oracle.QueryManyCtx(ctx, pairs)
}

// Row returns the full distance row from src, computing and caching it on a
// miss. The returned slice is shared with the cache: callers must not mutate
// it.
func (s *Session) Row(ctx context.Context, src int) ([]float64, error) {
	return s.oracle.RowCtx(ctx, src)
}

// Stats snapshots the serving cache's hit/miss/eviction counters.
func (s *Session) Stats() OracleStats { return s.oracle.Stats() }

// CacheRows returns the serving cache's effective row budget (the ceiling on
// resident distance rows across all shards, after defaulting). A serving
// daemon derives its admission-control in-flight ceiling from it, so the
// load it admits can never thrash the cache it depends on — see cmd/oracled.
func (s *Session) CacheRows() int { return s.oracle.MaxRows() }

// SSSPInfo reports a session's resolved row-fill engine — what actually
// answers cold queries after SSSPAuto resolution, so fleet operators can
// confirm replicas agree (oracled advertises it on /v1/info).
type SSSPInfo struct {
	// Engine is the resolved engine name: "heap" or "delta-stepping"
	// (never "auto" — resolution happens at session creation).
	Engine string
	// Delta is the effective bucket width; 0 when Engine is "heap".
	Delta float64
}

// SSSP reports the engine behind the session's row fills after WithSSSP /
// WithDelta defaulting and auto-resolution.
func (s *Session) SSSP() SSSPInfo {
	e, d := s.oracle.SSSP()
	return SSSPInfo{Engine: e.String(), Delta: d}
}

// Served returns the graph queries are answered on: the collected spanner,
// or the input graph under WithExact.
func (s *Session) Served() *Graph { return s.served }

// Input returns the graph Serve was called with.
func (s *Session) Input() *Graph { return s.input }

// APSP returns the Corollary 1.4 build artifact behind the session (rounds,
// certified bound, spanner size), or nil when the session was created with
// WithExact.
func (s *Session) APSP() *APSPResult { return s.apsp }

// ApproxAPSPCtx is the context-aware §7 pipeline (Corollary 1.4): identical
// to the deprecated ApproxAPSP but cancelable at every simulated grow
// iteration and able to report progress through APSPOptions.Progress. Use
// Serve when you want the result wrapped in a serving Session.
func ApproxAPSPCtx(ctx context.Context, g *Graph, opt APSPOptions) (*APSPResult, error) {
	if err := par.CheckWorkers("mpcspanner: APSPOptions.Workers", opt.Workers); err != nil {
		return nil, err
	}
	return apsp.ApproxCtx(ctx, g, opt)
}
