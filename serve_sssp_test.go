package mpcspanner

import (
	"context"
	"errors"
	"math"
	"testing"
)

// TestServeSSSPSelection pins the facade contract of WithSSSP/WithDelta:
// the session reports its resolved engine, and the distances served are
// bit-identical across engines (the dist exactness contract surfacing here).
func TestServeSSSPSelection(t *testing.T) {
	ctx := context.Background()
	g := Connectify(GNP(500, 0.02, UniformWeight(1, 100), 11), 11)

	heap, err := Serve(ctx, g, WithExact(), WithSSSP(SSSPHeap))
	if err != nil {
		t.Fatal(err)
	}
	if info := heap.SSSP(); info.Engine != "heap" || info.Delta != 0 {
		t.Fatalf("heap session reports %+v", info)
	}

	delta, err := Serve(ctx, g, WithExact(), WithSSSP(SSSPDeltaStepping), WithDelta(2.5))
	if err != nil {
		t.Fatal(err)
	}
	if info := delta.SSSP(); info.Engine != "delta-stepping" || info.Delta != 2.5 {
		t.Fatalf("delta session reports %+v", info)
	}

	for _, src := range []int{0, 7, 499} {
		dh, err := heap.Row(ctx, src)
		if err != nil {
			t.Fatal(err)
		}
		dd, err := delta.Row(ctx, src)
		if err != nil {
			t.Fatal(err)
		}
		for v := range dh {
			if math.Float64bits(dh[v]) != math.Float64bits(dd[v]) {
				t.Fatalf("src %d: engines disagree at %d: heap %v delta %v", src, v, dh[v], dd[v])
			}
		}
	}

	// SSSPAuto on a small graph resolves to the heap; the resolved name —
	// never "auto" — is what the session advertises.
	auto, err := Serve(ctx, g, WithExact())
	if err != nil {
		t.Fatal(err)
	}
	if info := auto.SSSP(); info.Engine != "heap" {
		t.Fatalf("auto on n=500 resolved to %+v, want heap", info)
	}
}

// TestSSSPOptionValidation pins the rejection surface of the new options.
func TestSSSPOptionValidation(t *testing.T) {
	ctx := context.Background()
	g := Path(8, UnitWeight, 0)
	bad := [][]Option{
		{WithExact(), WithDelta(0)},
		{WithExact(), WithDelta(-1)},
		{WithExact(), WithDelta(math.NaN())},
		{WithExact(), WithDelta(math.Inf(1))},
		{WithExact(), WithSSSP(SSSPHeap), WithDelta(1)},
		{WithExact(), WithSSSP(SSSPEngine(99))},
	}
	for i, opts := range bad {
		if _, err := Serve(ctx, g, opts...); !errors.Is(err, ErrInvalidOption) {
			t.Fatalf("case %d: want ErrInvalidOption, got %v", i, err)
		}
	}

	// A Δ override under SSSPAuto (or an explicit delta engine) is fine.
	if _, err := Serve(ctx, g, WithExact(), WithDelta(3)); err != nil {
		t.Fatalf("WithDelta under auto rejected: %v", err)
	}

	// Build accepts the options (validated, inert) — same spanner either way.
	plain, err := Build(ctx, g, WithK(2), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := Build(ctx, g, WithK(2), WithSeed(5), WithSSSP(SSSPDeltaStepping), WithDelta(1))
	if err != nil {
		t.Fatalf("Build rejected WithSSSP/WithDelta: %v", err)
	}
	if len(plain.EdgeIDs) != len(tuned.EdgeIDs) {
		t.Fatalf("SSSP options changed the build: %d vs %d edges", len(plain.EdgeIDs), len(tuned.EdgeIDs))
	}

	// The Corollary 1.5 clique pipeline takes no serving options at all.
	if _, err := ApproxAPSPCongestedCliqueCtx(ctx, g, WithSSSP(SSSPHeap)); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("clique pipeline accepted WithSSSP: %v", err)
	}
}

// TestServeArtifactSSSP: the row-fill engine combines with artifact serving —
// cold (non-frozen) sources fill through the selected engine.
func TestServeArtifactSSSP(t *testing.T) {
	ctx := context.Background()
	g := Connectify(GNP(300, 0.03, UniformWeight(1, 50), 3), 3)
	res, err := Build(ctx, g, WithK(3), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/sp.art"
	if err := res.Save(path); err != nil {
		t.Fatal(err)
	}
	a, err := Open(ctx, path)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	s, err := Serve(ctx, nil, WithArtifact(a), WithSSSP(SSSPDeltaStepping))
	if err != nil {
		t.Fatal(err)
	}
	if info := s.SSSP(); info.Engine != "delta-stepping" || info.Delta <= 0 {
		t.Fatalf("artifact session reports %+v", info)
	}
	ref, err := Serve(ctx, res.Spanner(), WithExact(), WithSSSP(SSSPHeap))
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []int{0, 150, 299} {
		da, err := s.Row(ctx, src)
		if err != nil {
			t.Fatal(err)
		}
		dr, err := ref.Row(ctx, src)
		if err != nil {
			t.Fatal(err)
		}
		for v := range da {
			if math.Float64bits(da[v]) != math.Float64bits(dr[v]) {
				t.Fatalf("src %d: artifact delta row differs at %d", src, v)
			}
		}
	}
}
